(* Command-line front end: run protocols, regenerate the paper's figures,
   and machine-check the specifications. *)

open Cmdliner

(* ---------------- shared options ---------------- *)

let nodes =
  Arg.(value & opt int 100 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Ring size.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let mean =
  Arg.(
    value
    & opt float 10.0
    & info [ "mean" ] ~docv:"T"
        ~doc:"Mean request interarrival time (global Poisson workload).")

let serves =
  Arg.(
    value
    & opt int 1000
    & info [ "serves" ] ~docv:"K" ~doc:"Stop after K served requests.")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (for smoke runs).")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Domains for parallel sweeps (default: all cores). Results are \
           byte-identical to -j 1 — seeded determinism survives parallelism.")

(* [0] (the default) means "all cores". A pool of 1 domain is just the
   calling domain, so only J >= 2 spawns anything. *)
let with_jobs jobs f =
  let domains = if jobs <= 0 then Tr_sim.Pool.default_domains () else jobs in
  if domains <= 1 then f None
  else Tr_sim.Pool.with_pool ~domains (fun pool -> f (Some pool))

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol to run. One of: %s."
      (String.concat ", " Tokenring.Registry.names)
  in
  Arg.(value & opt string "binsearch" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun { Tokenring.Registry.name; describe; kind; _ } ->
        let tag =
          match kind with
          | `Baseline -> "baseline"
          | `Paper -> "paper"
          | `Optimization -> "optimization"
          | `Extension -> "extension"
        in
        Format.printf "%-20s [%-12s] %s@." name tag describe)
      Tokenring.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available protocols") Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let run protocol n seed mean serves workload_spec network_spec json histogram
      profile =
    let workload =
      match workload_spec with
      | None -> Ok (Tokenring.Workload.Global_poisson { mean_interarrival = mean })
      | Some spec -> Tokenring.Scenario.workload_of_string spec
    in
    let network =
      match network_spec with
      | None -> Ok Tokenring.Network.default
      | Some spec -> Tokenring.Scenario.network_of_string spec
    in
    match (workload, network) with
    | Error e, _ | _, Error e -> Format.printf "error: %s@." e; exit 2
    | Ok workload, Ok network ->
        let config =
          { (Tokenring.Engine.default_config ~n ~seed) with workload; network }
        in
        let t0 = Unix.gettimeofday () in
        let outcome =
          Tokenring.Runner.run_named protocol config
            ~stop:
              (Tokenring.Engine.First_of
                 [ Tokenring.Engine.After_serves serves;
                   Tokenring.Engine.At_time 5e6 ])
        in
        let wall = Unix.gettimeofday () -. t0 in
        (* stderr so that --json output stays machine-parseable *)
        if profile then
          Format.eprintf "profile: %d events in %.4f s (%.0f events/sec)@."
            outcome.Tokenring.Runner.events wall
            (float_of_int outcome.Tokenring.Runner.events /. wall);
        if json then print_string (Tokenring.Export.outcome_to_json outcome)
        else begin
          Format.printf "%a@." Tokenring.Runner.pp_outcome outcome;
          if histogram then begin
            let q =
              Tokenring.Metrics.responsiveness_quantiles
                outcome.Tokenring.Runner.metrics
            in
            let samples = Tr_stats.Quantile.to_sorted_array q in
            if Array.length samples > 1 then begin
              let hi = samples.(Array.length samples - 1) +. 1e-9 in
              let h = Tr_stats.Histogram.create ~lo:0.0 ~hi ~bins:16 in
              Array.iter (Tr_stats.Histogram.add h) samples;
              Format.printf "responsiveness distribution:@.%a@."
                Tr_stats.Histogram.pp h
            end
          end
        end
  in
  let workload_spec =
    let doc =
      Printf.sprintf "Workload spec, e.g. %s. Overrides --mean."
        (String.concat ", " Tokenring.Scenario.workload_examples)
    in
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"SPEC" ~doc)
  in
  let network_spec =
    let doc =
      Printf.sprintf "Network spec, e.g. %s."
        (String.concat ", " Tokenring.Scenario.network_examples)
    in
    Arg.(value & opt (some string) None & info [ "net"; "network" ] ~docv:"SPEC" ~doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol under a configurable scenario")
    Term.(
      const run $ protocol_arg $ nodes $ seed $ mean $ serves $ workload_spec
      $ network_spec
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the outcome as JSON.")
      $ Arg.(
          value & flag
          & info [ "histogram" ] ~doc:"Also print the responsiveness histogram.")
      $ Arg.(
          value & flag
          & info [ "profile" ]
              ~doc:"Print events processed, wall time and events/sec."))

(* ---------------- exp ---------------- *)

let exp_cmd =
  let run id quick seed csv json jobs =
    let results =
      with_jobs jobs (fun pool -> Tokenring.Experiments.all ?pool ~quick ~seed ())
    in
    let wanted r =
      String.equal id "all"
      || String.equal (String.uppercase_ascii id) r.Tokenring.Experiments.id
    in
    let matched = List.filter wanted results in
    if matched = [] then
      Format.printf "unknown experiment %S; known: %s@." id
        (String.concat ", "
           (List.map (fun r -> r.Tokenring.Experiments.id) results))
    else
      List.iter
        (fun r ->
          if json then
            print_string (Tokenring.Export.result_to_json r)
          else if csv then
            Format.printf "# %s: %s@.%s@." r.Tokenring.Experiments.id
              r.Tokenring.Experiments.title
              (Tokenring.Series.Table.to_csv r.Tokenring.Experiments.table)
          else Format.printf "%a@." Tokenring.Experiments.pp_result r)
        matched
  in
  let id =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (FIG9, FIG10, LEM4, ... or all).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated tables only.")
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate the paper's figures and claims as tables")
    Term.(
      const run $ id $ quick $ seed $ csv
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit results as JSON.")
      $ jobs)

(* ---------------- compare ---------------- *)

let compare_cmd =
  let run protocols n seed serves workload_spec network_spec =
    let workload =
      match workload_spec with
      | None -> Ok (Tokenring.Workload.Global_poisson { mean_interarrival = 10.0 })
      | Some spec -> Tokenring.Scenario.workload_of_string spec
    in
    let network =
      match network_spec with
      | None -> Ok Tokenring.Network.default
      | Some spec -> Tokenring.Scenario.network_of_string spec
    in
    match (workload, network) with
    | Error e, _ | _, Error e ->
        Format.printf "error: %s@." e;
        exit 2
    | Ok workload, Ok network ->
        let names =
          if protocols = [] then [ "ring"; "binsearch" ] else protocols
        in
        let config =
          { (Tokenring.Engine.default_config ~n ~seed) with workload; network }
        in
        let stop =
          Tokenring.Engine.First_of
            [ Tokenring.Engine.After_serves serves;
              Tokenring.Engine.At_time 5e6 ]
        in
        Format.printf "%-22s %10s %10s %10s %12s %12s %8s@." "protocol" "resp"
          "wait-p50" "wait-p99" "tok-msg/srv" "ctl-msg/srv" "fair";
        List.iter
          (fun name ->
            let o = Tokenring.Runner.run_named name config ~stop in
            let m = o.Tokenring.Runner.metrics in
            let serves_f =
              float_of_int (Stdlib.max 1 (Tokenring.Metrics.serves m))
            in
            Format.printf "%-22s %10.2f %10.2f %10.2f %12.1f %12.1f %8.2f@."
              name
              (Tokenring.Summary.mean (Tokenring.Metrics.responsiveness m))
              (Tr_stats.Quantile.median (Tokenring.Metrics.waiting_quantiles m))
              (Tr_stats.Quantile.p99 (Tokenring.Metrics.waiting_quantiles m))
              (float_of_int (Tokenring.Metrics.token_messages m) /. serves_f)
              (float_of_int (Tokenring.Metrics.control_messages m) /. serves_f)
              (Tokenring.Metrics.waiting_fairness m))
          names
  in
  let protocols =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PROTOCOL"
          ~doc:"Protocols to compare (default: ring binsearch; 'all' for every one).")
  in
  let expand = function
    | [ "all" ] -> Tokenring.Registry.names
    | names -> names
  in
  let workload_spec =
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"SPEC"
           ~doc:"Workload spec (see 'run --help').")
  in
  let network_spec =
    Arg.(value & opt (some string) None & info [ "net"; "network" ] ~docv:"SPEC"
           ~doc:"Network spec (see 'run --help').")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run several protocols on the same scenario and tabulate them")
    Term.(
      const run
      $ (const expand $ protocols)
      $ nodes $ seed $ serves $ workload_spec $ network_spec)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let run n max_states =
    Format.printf "-- prefix property (exhaustive/bounded exploration) --@.";
    List.iter
      (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
      (Tokenring.Verify.prefix_checks ~max_states ~ns:[ 2; n ] ());
    Format.printf "-- refinement chain (simulation check) --@.";
    List.iter
      (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
      (Tokenring.Verify.refinement_checks ~max_states:(max_states / 4) ~n ());
    Format.printf "-- liveness (bounded AG EF + deadlock freedom) --@.";
    List.iter
      (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
      (Tokenring.Verify.liveness_checks ~max_states:(max_states / 2) ~n:2 ())
  in
  let n =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Spec instance size.")
  in
  let max_states =
    Arg.(
      value & opt int 5000
      & info [ "max-states" ] ~docv:"K" ~doc:"State-space exploration bound.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Machine-check the prefix property and the refinement chain")
    Term.(const run $ n $ max_states)

(* ---------------- spec ---------------- *)

let spec_systems n =
  [
    ("S", Tr_specs.System_s.system ~n, Tr_specs.System_s.initial ~n);
    ("S1", Tr_specs.System_s1.system ~n, Tr_specs.System_s1.initial ~n);
    ("token", Tr_specs.System_token.system ~n, Tr_specs.System_token.initial ~n);
    ( "msgpass",
      Tr_specs.System_msgpass.system ~n,
      Tr_specs.System_msgpass.initial ~n );
    ("search", Tr_specs.System_search.system ~n, Tr_specs.System_search.initial ~n);
    ( "binsearch",
      Tr_specs.System_binsearch.system ~n,
      Tr_specs.System_binsearch.initial ~n );
  ]

let spec_cmd =
  let run which n budget dot steps =
    match
      List.find_opt (fun (name, _, _) -> String.equal name which) (spec_systems n)
    with
    | None ->
        Format.printf "unknown system %S; known: %s@." which
          (String.concat ", " (List.map (fun (s, _, _) -> s) (spec_systems n)))
    | Some (name, system, initial) -> (
        let init = initial ~data_budget:budget in
        Format.printf "%a@." Tr_trs.System.pp system;
        Format.printf "initial state:@.  %a@." Tr_trs.Term.pp init;
        (if steps > 0 then begin
           Format.printf "@.a fair reduction (%d steps):@." steps;
           let path =
             Tr_trs.System.reduce system
               ~strategy:(Tr_trs.Strategy.round_robin ())
               ~init ~steps
           in
           List.iteri
             (fun i state ->
               Format.printf "  %2d: %a@." i Tr_trs.Term.pp state)
             path
         end);
        match dot with
        | None -> ()
        | Some path ->
            let graph =
              Tr_trs.Explore.to_dot ~max_states:300 system ~init
            in
            let oc = open_out path in
            output_string oc graph;
            close_out oc;
            Format.printf "@.wrote %s (%s state graph, <=300 states)@." path name)
  in
  let which =
    Arg.(
      value & pos 0 string "binsearch"
      & info [] ~docv:"SYSTEM" ~doc:"S, S1, token, msgpass, search, binsearch.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Instance size.") in
  let budget =
    Arg.(value & opt int 1 & info [ "budget" ] ~docv:"B" ~doc:"Per-node datum budget.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the explored state graph as Graphviz.")
  in
  let steps =
    Arg.(
      value & opt int 0
      & info [ "reduce" ] ~docv:"K" ~doc:"Show a K-step fair reduction from the initial state.")
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:"Print a system's rewriting rules; optionally reduce or export its state graph")
    Term.(const run $ which $ n $ budget $ dot $ steps)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let run protocol n seed mean until =
    let config =
      {
        (Tokenring.Engine.default_config ~n ~seed) with
        workload = Tokenring.Workload.Global_poisson { mean_interarrival = mean };
        trace = true;
      }
    in
    let outcome =
      Tokenring.Runner.run_named protocol config
        ~stop:(Tokenring.Engine.At_time until)
    in
    Format.printf "%a@." Tokenring.Trace.pp outcome.Tokenring.Runner.trace
  in
  let until =
    Arg.(
      value & opt float 50.0
      & info [ "until" ] ~docv:"T" ~doc:"Virtual time to trace up to.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump a full event trace of a short run")
    Term.(const run $ protocol_arg $ nodes $ seed $ mean $ until)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "tokenring-cli" ~version:"1.0.0"
      ~doc:"Adaptive token-passing protocols (Englert-Rudolph-Shvartsman 2001)"
  in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd; run_cmd; compare_cmd; exp_cmd; verify_cmd; spec_cmd; trace_cmd ]))
