(* Command-line front end: run protocols, regenerate the paper's figures,
   and machine-check the specifications. *)

open Cmdliner

(* ---------------- shared options ---------------- *)

let nodes =
  Arg.(value & opt int 100 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Ring size.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let mean =
  Arg.(
    value
    & opt float 10.0
    & info [ "mean" ] ~docv:"T"
        ~doc:"Mean request interarrival time (global Poisson workload).")

let serves =
  Arg.(
    value
    & opt int 1000
    & info [ "serves" ] ~docv:"K" ~doc:"Stop after K served requests.")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps (for smoke runs).")

let jobs =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Domains for parallel sweeps (default: all cores). Results are \
           byte-identical to -j 1 — seeded determinism survives parallelism.")

(* [0] (the default) means "all cores". A pool of 1 domain is just the
   calling domain, so only J >= 2 spawns anything. *)
let with_jobs jobs f =
  let domains = if jobs <= 0 then Tr_sim.Pool.default_domains () else jobs in
  if domains <= 1 then f None
  else Tr_sim.Pool.with_pool ~domains (fun pool -> f (Some pool))

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol to run. One of: %s."
      (String.concat ", " Tokenring.Registry.names)
  in
  Arg.(value & opt string "binsearch" & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun { Tokenring.Registry.name; describe; kind; _ } ->
        let tag =
          match kind with
          | `Baseline -> "baseline"
          | `Paper -> "paper"
          | `Optimization -> "optimization"
          | `Extension -> "extension"
        in
        Format.printf "%-20s [%-12s] %s@." name tag describe)
      Tokenring.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available protocols") Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let run protocol n seed mean serves workload_spec network_spec json histogram
      profile =
    let workload =
      match workload_spec with
      | None -> Ok (Tokenring.Workload.Global_poisson { mean_interarrival = mean })
      | Some spec -> Tokenring.Scenario.workload_of_string spec
    in
    let network =
      match network_spec with
      | None -> Ok Tokenring.Network.default
      | Some spec -> Tokenring.Scenario.network_of_string spec
    in
    match (workload, network) with
    | Error e, _ | _, Error e -> Format.printf "error: %s@." e; exit 2
    | Ok workload, Ok network ->
        let config =
          { (Tokenring.Engine.default_config ~n ~seed) with workload; network }
        in
        let t0 = Unix.gettimeofday () in
        let outcome =
          Tokenring.Runner.run_named protocol config
            ~stop:
              (Tokenring.Engine.First_of
                 [ Tokenring.Engine.After_serves serves;
                   Tokenring.Engine.At_time 5e6 ])
        in
        let wall = Unix.gettimeofday () -. t0 in
        (* stderr so that --json output stays machine-parseable *)
        if profile then
          Format.eprintf "profile: %d events in %.4f s (%.0f events/sec)@."
            outcome.Tokenring.Runner.events wall
            (float_of_int outcome.Tokenring.Runner.events /. wall);
        if json then print_string (Tokenring.Export.outcome_to_json outcome)
        else begin
          Format.printf "%a@." Tokenring.Runner.pp_outcome outcome;
          if histogram then begin
            let q =
              Tokenring.Metrics.responsiveness_quantiles
                outcome.Tokenring.Runner.metrics
            in
            let samples = Tr_stats.Quantile.to_sorted_array q in
            if Array.length samples > 1 then begin
              let hi = samples.(Array.length samples - 1) +. 1e-9 in
              let h = Tr_stats.Histogram.create ~lo:0.0 ~hi ~bins:16 in
              Array.iter (Tr_stats.Histogram.add h) samples;
              Format.printf "responsiveness distribution:@.%a@."
                Tr_stats.Histogram.pp h
            end
          end
        end
  in
  let workload_spec =
    let doc =
      Printf.sprintf "Workload spec, e.g. %s. Overrides --mean."
        (String.concat ", " Tokenring.Scenario.workload_examples)
    in
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"SPEC" ~doc)
  in
  let network_spec =
    let doc =
      Printf.sprintf "Network spec, e.g. %s."
        (String.concat ", " Tokenring.Scenario.network_examples)
    in
    Arg.(value & opt (some string) None & info [ "net"; "network" ] ~docv:"SPEC" ~doc)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol under a configurable scenario")
    Term.(
      const run $ protocol_arg $ nodes $ seed $ mean $ serves $ workload_spec
      $ network_spec
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit the outcome as JSON.")
      $ Arg.(
          value & flag
          & info [ "histogram" ] ~doc:"Also print the responsiveness histogram.")
      $ Arg.(
          value & flag
          & info [ "profile" ]
              ~doc:"Print events processed, wall time and events/sec."))

(* ---------------- exp ---------------- *)

let exp_cmd =
  let run id quick seed csv json jobs =
    let results =
      with_jobs jobs (fun pool -> Tokenring.Experiments.all ?pool ~quick ~seed ())
    in
    let wanted r =
      String.equal id "all"
      || String.equal (String.uppercase_ascii id) r.Tokenring.Experiments.id
    in
    let matched = List.filter wanted results in
    if matched = [] then
      Format.printf "unknown experiment %S; known: %s@." id
        (String.concat ", "
           (List.map (fun r -> r.Tokenring.Experiments.id) results))
    else
      List.iter
        (fun r ->
          if json then
            print_string (Tokenring.Export.result_to_json r)
          else if csv then
            Format.printf "# %s: %s@.%s@." r.Tokenring.Experiments.id
              r.Tokenring.Experiments.title
              (Tokenring.Series.Table.to_csv r.Tokenring.Experiments.table)
          else Format.printf "%a@." Tokenring.Experiments.pp_result r)
        matched
  in
  let id =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (FIG9, FIG10, LEM4, ... or all).")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated tables only.")
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Regenerate the paper's figures and claims as tables")
    Term.(
      const run $ id $ quick $ seed $ csv
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit results as JSON.")
      $ jobs)

(* ---------------- compare ---------------- *)

let compare_cmd =
  let run protocols n seed serves workload_spec network_spec =
    let workload =
      match workload_spec with
      | None -> Ok (Tokenring.Workload.Global_poisson { mean_interarrival = 10.0 })
      | Some spec -> Tokenring.Scenario.workload_of_string spec
    in
    let network =
      match network_spec with
      | None -> Ok Tokenring.Network.default
      | Some spec -> Tokenring.Scenario.network_of_string spec
    in
    match (workload, network) with
    | Error e, _ | _, Error e ->
        Format.printf "error: %s@." e;
        exit 2
    | Ok workload, Ok network ->
        let names =
          if protocols = [] then [ "ring"; "binsearch" ] else protocols
        in
        let config =
          { (Tokenring.Engine.default_config ~n ~seed) with workload; network }
        in
        let stop =
          Tokenring.Engine.First_of
            [ Tokenring.Engine.After_serves serves;
              Tokenring.Engine.At_time 5e6 ]
        in
        Format.printf "%-22s %10s %10s %10s %12s %12s %8s@." "protocol" "resp"
          "wait-p50" "wait-p99" "tok-msg/srv" "ctl-msg/srv" "fair";
        List.iter
          (fun name ->
            let o = Tokenring.Runner.run_named name config ~stop in
            let m = o.Tokenring.Runner.metrics in
            let serves_f =
              float_of_int (Stdlib.max 1 (Tokenring.Metrics.serves m))
            in
            Format.printf "%-22s %10.2f %10.2f %10.2f %12.1f %12.1f %8.2f@."
              name
              (Tokenring.Summary.mean (Tokenring.Metrics.responsiveness m))
              (Tr_stats.Quantile.median (Tokenring.Metrics.waiting_quantiles m))
              (Tr_stats.Quantile.p99 (Tokenring.Metrics.waiting_quantiles m))
              (float_of_int (Tokenring.Metrics.token_messages m) /. serves_f)
              (float_of_int (Tokenring.Metrics.control_messages m) /. serves_f)
              (Tokenring.Metrics.waiting_fairness m))
          names
  in
  let protocols =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PROTOCOL"
          ~doc:"Protocols to compare (default: ring binsearch; 'all' for every one).")
  in
  let expand = function
    | [ "all" ] -> Tokenring.Registry.names
    | names -> names
  in
  let workload_spec =
    Arg.(value & opt (some string) None & info [ "w"; "workload" ] ~docv:"SPEC"
           ~doc:"Workload spec (see 'run --help').")
  in
  let network_spec =
    Arg.(value & opt (some string) None & info [ "net"; "network" ] ~docv:"SPEC"
           ~doc:"Network spec (see 'run --help').")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run several protocols on the same scenario and tabulate them")
    Term.(
      const run
      $ (const expand $ protocols)
      $ nodes $ seed $ serves $ workload_spec $ network_spec)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let run n max_states =
    Format.printf "-- prefix property (exhaustive/bounded exploration) --@.";
    List.iter
      (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
      (Tokenring.Verify.prefix_checks ~max_states ~ns:[ 2; n ] ());
    Format.printf "-- refinement chain (simulation check) --@.";
    List.iter
      (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
      (Tokenring.Verify.refinement_checks ~max_states:(max_states / 4) ~n ());
    Format.printf "-- liveness (bounded AG EF + deadlock freedom) --@.";
    List.iter
      (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
      (Tokenring.Verify.liveness_checks ~max_states:(max_states / 2) ~n:2 ())
  in
  let n =
    Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Spec instance size.")
  in
  let max_states =
    Arg.(
      value & opt int 5000
      & info [ "max-states" ] ~docv:"K" ~doc:"State-space exploration bound.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Machine-check the prefix property and the refinement chain")
    Term.(const run $ n $ max_states)

(* ---------------- spec ---------------- *)

let spec_systems n =
  [
    ("S", Tr_specs.System_s.system ~n, Tr_specs.System_s.initial ~n);
    ("S1", Tr_specs.System_s1.system ~n, Tr_specs.System_s1.initial ~n);
    ("token", Tr_specs.System_token.system ~n, Tr_specs.System_token.initial ~n);
    ( "msgpass",
      Tr_specs.System_msgpass.system ~n,
      Tr_specs.System_msgpass.initial ~n );
    ("search", Tr_specs.System_search.system ~n, Tr_specs.System_search.initial ~n);
    ( "binsearch",
      Tr_specs.System_binsearch.system ~n,
      Tr_specs.System_binsearch.initial ~n );
  ]

let spec_cmd =
  let run which n budget dot steps =
    match
      List.find_opt (fun (name, _, _) -> String.equal name which) (spec_systems n)
    with
    | None ->
        Format.printf "unknown system %S; known: %s@." which
          (String.concat ", " (List.map (fun (s, _, _) -> s) (spec_systems n)))
    | Some (name, system, initial) -> (
        let init = initial ~data_budget:budget in
        Format.printf "%a@." Tr_trs.System.pp system;
        Format.printf "initial state:@.  %a@." Tr_trs.Term.pp init;
        (if steps > 0 then begin
           Format.printf "@.a fair reduction (%d steps):@." steps;
           let path =
             Tr_trs.System.reduce system
               ~strategy:(Tr_trs.Strategy.round_robin ())
               ~init ~steps
           in
           List.iteri
             (fun i state ->
               Format.printf "  %2d: %a@." i Tr_trs.Term.pp state)
             path
         end);
        match dot with
        | None -> ()
        | Some path ->
            let graph =
              Tr_trs.Explore.to_dot ~max_states:300 system ~init
            in
            let oc = open_out path in
            output_string oc graph;
            close_out oc;
            Format.printf "@.wrote %s (%s state graph, <=300 states)@." path name)
  in
  let which =
    Arg.(
      value & pos 0 string "binsearch"
      & info [] ~docv:"SYSTEM" ~doc:"S, S1, token, msgpass, search, binsearch.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Instance size.") in
  let budget =
    Arg.(value & opt int 1 & info [ "budget" ] ~docv:"B" ~doc:"Per-node datum budget.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the explored state graph as Graphviz.")
  in
  let steps =
    Arg.(
      value & opt int 0
      & info [ "reduce" ] ~docv:"K" ~doc:"Show a K-step fair reduction from the initial state.")
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:"Print a system's rewriting rules; optionally reduce or export its state graph")
    Term.(const run $ which $ n $ budget $ dot $ steps)

(* ---------------- explore ---------------- *)

let explore_cmd =
  let run which n budget max_states max_depth jobs spill json =
    let systems =
      spec_systems n
      @ [
          ( "msgpass-faulty",
            Tr_specs.System_msgpass.system_faulty ~n,
            Tr_specs.System_msgpass.initial ~n );
        ]
    in
    match List.find_opt (fun (name, _, _) -> String.equal name which) systems with
    | None ->
        Format.printf "unknown system %S; known: %s@." which
          (String.concat ", " (List.map (fun (s, _, _) -> s) systems));
        exit 2
    | Some (name, system, initial) ->
        let check =
          match name with
          | "S" -> Tr_specs.Prefix.check_s
          | "S1" -> Tr_specs.Prefix.check_s1
          | "token" -> Tr_specs.Prefix.check_token
          | "msgpass" | "msgpass-faulty" -> Tr_specs.Prefix.check_msgpass
          | "search" -> Tr_specs.Prefix.check_search
          | "binsearch" -> Tr_specs.Prefix.check_binsearch
          | _ -> fun _ -> Ok ()
        in
        let init = initial ~data_budget:budget in
        let o =
          with_jobs jobs (fun pool ->
              Tr_trs.Explore.explore ~max_states ?max_depth ~check ?pool
                ?spill_dir:spill system ~init)
        in
        let s = o.Tr_trs.Explore.stats in
        let p = o.Tr_trs.Explore.perf in
        (* perf goes to stderr: stdout is deterministic across domain
           counts and runs, so CI can diff -j 1 against -j 2 output. *)
        Format.eprintf
          "explore: %.2f s, %.0f states/s, %d domain%s, peak RSS %d kB, %d \
           spilled layers (%d bytes)@."
          p.Tr_trs.Explore.wall_s p.Tr_trs.Explore.states_per_s
          p.Tr_trs.Explore.domains_used
          (if p.Tr_trs.Explore.domains_used = 1 then "" else "s")
          p.Tr_trs.Explore.peak_rss_kb p.Tr_trs.Explore.spilled_layers
          p.Tr_trs.Explore.spilled_bytes;
        if json then
          Format.printf
            "{\"system\": \"%s\", \"n\": %d, \"budget\": %d, \"states\": %d, \
             \"transitions\": %d, \"max_depth\": %d, \"truncated\": %b, \
             \"violations\": %d, \"wall_s\": %.4f, \"states_per_s\": %.0f, \
             \"domains\": %d, \"peak_rss_kb\": %d, \"spilled_layers\": %d, \
             \"spilled_bytes\": %d}@."
            name n budget s.Tr_trs.Explore.states s.Tr_trs.Explore.transitions
            s.Tr_trs.Explore.max_depth s.Tr_trs.Explore.truncated
            (List.length o.Tr_trs.Explore.violations) p.Tr_trs.Explore.wall_s
            p.Tr_trs.Explore.states_per_s p.Tr_trs.Explore.domains_used
            p.Tr_trs.Explore.peak_rss_kb p.Tr_trs.Explore.spilled_layers
            p.Tr_trs.Explore.spilled_bytes
        else begin
          Format.printf "system: %s@.states: %d@.transitions: %d@.max-depth: \
                         %d@.truncated: %b@.violations: %d@."
            name s.Tr_trs.Explore.states s.Tr_trs.Explore.transitions
            s.Tr_trs.Explore.max_depth s.Tr_trs.Explore.truncated
            (List.length o.Tr_trs.Explore.violations);
          List.iteri
            (fun i v ->
              if i < 10 then
                Format.printf "  violation at depth %d: %s@."
                  v.Tr_trs.Explore.depth v.Tr_trs.Explore.message)
            o.Tr_trs.Explore.violations;
          if List.length o.Tr_trs.Explore.violations > 10 then
            Format.printf "  ... (%d more)@."
              (List.length o.Tr_trs.Explore.violations - 10)
        end
  in
  let which =
    Arg.(
      value & pos 0 string "msgpass"
      & info [] ~docv:"SYSTEM"
          ~doc:"S, S1, token, msgpass, search, binsearch, msgpass-faulty.")
  in
  let n = Arg.(value & opt int 2 & info [ "n" ] ~docv:"N" ~doc:"Instance size.") in
  let budget =
    Arg.(value & opt int 1 & info [ "budget" ] ~docv:"B" ~doc:"Per-node datum budget.")
  in
  let max_states =
    Arg.(
      value & opt int 100_000
      & info [ "max-states" ] ~docv:"M" ~doc:"Visited-state cap.")
  in
  let max_depth =
    Arg.(
      value & opt (some int) None
      & info [ "max-depth" ] ~docv:"D" ~doc:"BFS depth bound.")
  in
  let spill =
    Arg.(
      value & opt (some string) None
      & info [ "spill" ] ~docv:"DIR"
          ~doc:
            "Spill frontier layers to temp files under $(docv) and keep only \
             marshalled visited keys in memory (bounds RSS; forgoes the \
             in-memory visited order).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively explore a system's state space, checking the prefix \
          property on every state (parallel with -j, memory-bounded with \
          --spill)")
    Term.(
      const run $ which $ n $ budget $ max_states $ max_depth $ jobs $ spill
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit stats+perf as JSON."))

(* ---------------- trace ---------------- *)

let trace_cmd =
  let run protocol n seed mean until =
    let config =
      {
        (Tokenring.Engine.default_config ~n ~seed) with
        workload = Tokenring.Workload.Global_poisson { mean_interarrival = mean };
        trace = true;
      }
    in
    let outcome =
      Tokenring.Runner.run_named protocol config
        ~stop:(Tokenring.Engine.At_time until)
    in
    Format.printf "%a@." Tokenring.Trace.pp outcome.Tokenring.Runner.trace
  in
  let until =
    Arg.(
      value & opt float 50.0
      & info [ "until" ] ~docv:"T" ~doc:"Virtual time to trace up to.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump a full event trace of a short run")
    Term.(const run $ protocol_arg $ nodes $ seed $ mean $ until)

(* ---------------- live cluster commands ---------------- *)

module Cluster = Tr_net_rt.Cluster
module Live_export = Tr_net_rt.Live_export
module Live_transport = Tr_net_rt.Transport

let die fmt = Format.kasprintf (fun msg -> Format.eprintf "error: %s@." msg; exit 2) fmt

(* "0-3,7" -> [0;1;2;3;7] *)
let parse_id_ranges spec =
  let id s =
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> die "bad node id %S in %S (expected e.g. \"0-3,7\")" s spec
  in
  spec
  |> String.split_on_char ','
  |> List.filter (fun s -> s <> "")
  |> List.concat_map (fun part ->
         match String.index_opt part '-' with
         | None -> [ id part ]
         | Some i ->
             let lo = id (String.sub part 0 i) in
             let hi = id (String.sub part (i + 1) (String.length part - i - 1)) in
             if lo > hi then die "inverted range %S in %S" part spec;
             List.init (hi - lo + 1) (fun k -> lo + k))

let unit_arg =
  Arg.(
    value & opt float 1e-3
    & info [ "unit" ] ~docv:"S" ~doc:"Wall seconds per time unit.")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"J" ~doc:"Shard domains hosting the nodes (0 = auto).")

let max_wall_arg =
  Arg.(
    value & opt float 60.0
    & info [ "max-wall" ] ~docv:"S" ~doc:"Hard wall-clock safety cap in seconds.")

let grants_stop_arg =
  Arg.(
    value & opt (some int) None
    & info [ "grants" ] ~docv:"K" ~doc:"Stop after K served requests.")

let duration_arg =
  Arg.(
    value & opt float 1000.0
    & info [ "duration" ] ~docv:"T"
        ~doc:"Stop after T time units (ignored when --grants is given).")

let uds_arg =
  Arg.(
    value & opt (some string) None
    & info [ "uds" ] ~docv:"DIR"
        ~doc:"Cluster over Unix-domain sockets $(docv)/node-<i>.sock.")

let tcp_base_arg =
  Arg.(
    value & opt (some int) None
    & info [ "tcp-base" ] ~docv:"PORT"
        ~doc:"Cluster over TCP; node i listens on $(docv)+i.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Host for --tcp-base addresses.")

let own_arg =
  Arg.(
    value & opt (some string) None
    & info [ "own" ] ~docv:"IDS"
        ~doc:
          "Node ids this process hosts, as ranges (e.g. 0-3,7). Defaults to \
           all N nodes; give disjoint subsets to split one cluster across \
           processes.")

let readiness_arg =
  Arg.(
    value & opt (some string) None
    & info [ "readiness" ] ~docv:"BACKEND"
        ~doc:
          "Force the socket wait backend: uring, epoll, poll or select. \
           uring switches the transport into io_uring completion mode \
           (batched submissions, one enter per wait). Default picks the \
           best available of epoll/poll (TR_READINESS also honoured); an \
           unavailable forced backend falls back loudly.")

let spin_arg =
  Arg.(
    value & flag
    & info [ "spin" ]
        ~doc:
          "Adaptive spin-then-block before each shard wait: busy-poll \
           user-space signals (completion queue, in-process mailboxes) \
           for a window sized by the recent inter-event gap (TR_SPIN \
           also honoured).")

let inproc_arg =
  Arg.(
    value & flag
    & info [ "inproc" ]
        ~doc:
          "Deliver frames between co-hosted nodes through in-process \
           mailboxes instead of sockets: identical framing and ordering, \
           zero syscalls per hop (TR_INPROC also honoured).")

let pin_arg =
  Arg.(
    value & flag
    & info [ "pin" ]
        ~doc:"Pin each shard domain to one CPU core (sched_setaffinity).")

let parse_readiness = function
  | None -> None
  | Some s -> (
      match Tr_net_rt.Readiness.backend_of_string s with
      | Ok b -> Some b
      | Error e -> die "--readiness: %s" e)

let live_config ?(spin = false) ?(inproc = false) ~n ~seed ~unit_s ~shards
    ~max_wall_s ~load ~grants ~duration ~readiness ~pin () =
  if n < 1 then die "need at least one node";
  let stop =
    match grants with
    | Some k -> Cluster.Grants k
    | None -> Cluster.Duration duration
  in
  let config =
    {
      (Cluster.default_config ~n ~seed) with
      unit_s;
      load;
      stop;
      max_wall_s;
      readiness = parse_readiness readiness;
      pin_cores = pin;
      spin;
      inproc;
    }
  in
  if shards > 0 then { config with shards } else config

let resolve_backend ~n ~own ~uds ~tcp_base ~host =
  let owned =
    match own with
    | None -> List.init n Fun.id
    | Some spec -> parse_id_ranges spec
  in
  match (uds, tcp_base) with
  | Some _, Some _ -> die "choose one of --uds and --tcp-base"
  | Some dir, None ->
      Some (Cluster.Sockets { owned; addrs = Live_transport.uds_addrs ~dir ~n })
  | None, Some port ->
      Some
        (Cluster.Sockets
           { owned; addrs = Live_transport.tcp_addrs ~host ~base_port:port ~n () })
  | None, None ->
      if own <> None then
        die "--own only makes sense with a socket backend (--uds or --tcp-base)";
      None

let find_packed name =
  match Tr_wire.Codecs.find name with
  | Some p -> p
  | None ->
      die "unknown protocol %S; known: %s" name
        (String.concat ", " Tr_wire.Codecs.names)

let run_live ?backend config packed =
  match backend with
  | None -> Cluster.run_packed config packed
  | Some b -> Cluster.run_packed ~backend:b config packed

(* ---------------- serve ---------------- *)

let serve_cmd =
  let run protocol n seed unit_s shards max_wall own uds tcp_base host grants
      duration readiness spin inproc pin =
    if uds = None && tcp_base = None then
      die "serve needs a socket backend: --uds DIR or --tcp-base PORT";
    let backend = resolve_backend ~n ~own ~uds ~tcp_base ~host in
    let config =
      live_config ~spin ~inproc ~n ~seed ~unit_s ~shards ~max_wall_s:max_wall
        ~load:Cluster.No_load ~grants ~duration ~readiness ~pin ()
    in
    let report = run_live ?backend config (find_packed protocol) in
    print_string (Live_export.json_of_report report)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host (a subset of) a live cluster's nodes over real sockets; \
          protocol logic is the simulator's, byte-for-byte")
    Term.(
      const run $ protocol_arg $ nodes $ seed $ unit_arg $ shards_arg
      $ max_wall_arg $ own_arg $ uds_arg $ tcp_base_arg $ host_arg
      $ grants_stop_arg $ duration_arg $ readiness_arg $ spin_arg $ inproc_arg
      $ pin_arg)

(* ---------------- loadgen ---------------- *)

let loadgen_cmd =
  let run protocol n seed unit_s shards max_wall own uds tcp_base host grants
      duration closed open_mean readiness spin inproc pin =
    let load =
      match (closed, open_mean) with
      | Some _, Some _ -> die "choose one of --closed and --open"
      | Some depth, None -> Cluster.Closed_loop { depth }
      | None, Some mean_interarrival -> Cluster.Open_loop { mean_interarrival }
      | None, None -> Cluster.Closed_loop { depth = 1 }
    in
    let backend = resolve_backend ~n ~own ~uds ~tcp_base ~host in
    let config =
      live_config ~spin ~inproc ~n ~seed ~unit_s ~shards ~max_wall_s:max_wall
        ~load ~grants ~duration ~readiness ~pin ()
    in
    let report = run_live ?backend config (find_packed protocol) in
    print_string (Live_export.json_of_report report)
  in
  let closed =
    Arg.(
      value & opt (some int) None
      & info [ "closed" ] ~docv:"DEPTH"
          ~doc:"Closed-loop load: keep DEPTH requests outstanding per node.")
  in
  let open_mean =
    Arg.(
      value & opt (some float) None
      & info [ "open" ] ~docv:"MEAN"
          ~doc:"Open-loop load: Poisson arrivals with MEAN interarrival units.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a live cluster (in-process loopback by default, or this \
          process's share of a socket cluster) with open- or closed-loop \
          load; prints a stamped JSON report")
    Term.(
      const run $ protocol_arg $ nodes $ seed $ unit_arg $ shards_arg
      $ max_wall_arg $ own_arg $ uds_arg $ tcp_base_arg $ host_arg
      $ grants_stop_arg $ duration_arg $ closed $ open_mean $ readiness_arg
      $ spin_arg $ inproc_arg $ pin_arg)

(* ---------------- service / service-loadgen ---------------- *)

module Service = Tr_service.Server
module Service_client = Tr_service.Client
module Policy = Tr_service.Policy

let parse_app = function
  | "mutex" -> Service.Mutex
  | "total-order" | "total_order" -> Service.Total_order
  | s -> die "unknown app %S (expected mutex or total-order)" s

let app_arg =
  Arg.(
    value & opt string "mutex"
    & info [ "app" ] ~docv:"APP" ~doc:"Application: mutex or total-order.")

let service_cmd =
  let run app n seed unit_s shards max_wall listen_uds listen_tcp host duration
      cs adaptive pinned hi lo window park report_every quiet json =
    let app = parse_app app in
    if n < 1 then die "need at least one node";
    if cs <= 0. then die "--cs must be positive";
    if duration <= 0. then die "--duration must be positive";
    if report_every <= 0. then die "--report-every must be positive";
    let listen =
      match (listen_uds, listen_tcp) with
      | Some _, Some _ -> die "choose one of --listen-uds and --listen-tcp"
      | Some path, None -> Unix.ADDR_UNIX path
      | None, Some port -> (
          if port < 0 || port > 65535 then die "bad --listen-tcp port %d" port;
          try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
          with Failure _ -> die "bad --host %S" host)
      | None, None -> die "service needs --listen-uds PATH or --listen-tcp PORT"
    in
    let cluster =
      {
        (Cluster.default_config ~n ~seed) with
        unit_s;
        load = Cluster.External;
        stop = Cluster.Duration duration;
        max_wall_s = max_wall;
      }
    in
    let cluster = if shards > 0 then { cluster with shards } else cluster in
    let mode =
      if adaptive then begin
        let base = Policy.default_config ~n ~hop_s:cluster.Cluster.hop_delay in
        let cfg =
          {
            base with
            Policy.hi = Option.value hi ~default:base.Policy.hi;
            lo = Option.value lo ~default:base.Policy.lo;
            window_s = Option.value window ~default:base.Policy.window_s;
            park_after = (match park with Some k -> Some k | None -> base.Policy.park_after);
          }
        in
        if not (cfg.Policy.hi > cfg.Policy.lo) then
          die "--hi (%g) must exceed --lo (%g)" cfg.Policy.hi cfg.Policy.lo;
        if cfg.Policy.window_s <= 0. then die "--window must be positive";
        Service.Adaptive (Policy.create cfg)
      end
      else begin
        if hi <> None || lo <> None || window <> None then
          die "--hi/--lo/--window only make sense with --adaptive";
        let m =
          match pinned with
          | "search" -> Tr_apps.Movement.Search
          | "rotate" -> Tr_apps.Movement.Rotate
          | s -> die "unknown --mode %S (expected search or rotate)" s
        in
        Service.Pinned { Tr_apps.Movement.mode = m; park_after = park }
      end
    in
    let config =
      {
        Service.cluster;
        listen;
        app;
        cs_duration = cs;
        mode;
        report_every_s = report_every;
        verbose = not quiet;
      }
    in
    let outcome = Service.run config in
    List.iter
      (fun (s : Policy.switch_event) ->
        Format.eprintf "[policy] t=%.1fu switch %s -> %s (per_rev=%.2f)@."
          s.Policy.at
          (Tr_apps.Movement.mode_to_string s.Policy.from_mode)
          (Tr_apps.Movement.mode_to_string s.Policy.to_mode)
          s.Policy.per_rev)
      outcome.Service.switches;
    if json then begin
      print_endline (Service.stats_json ~outcome ~app ~adaptive);
      print_string (Live_export.json_of_report outcome.Service.report)
    end
    else begin
      let st = outcome.Service.stats in
      Format.printf
        "service %s: %d requests, %d grants, %d released, %d committed, %d \
         rejected, %d decode errors, %d switches@."
        (Service.app_name app) st.Service.requests st.Service.grants_sent
        st.Service.released_sent st.Service.committed_sent
        st.Service.rejected_sent st.Service.decode_errors
        (List.length outcome.Service.switches)
    end
  in
  let listen_uds =
    Arg.(
      value & opt (some string) None
      & info [ "listen-uds" ] ~docv:"PATH"
          ~doc:"Serve clients on a Unix-domain socket at $(docv).")
  in
  let listen_tcp =
    Arg.(
      value & opt (some int) None
      & info [ "listen-tcp" ] ~docv:"PORT"
          ~doc:"Serve clients on TCP $(docv) (0 picks a free port).")
  in
  let cs =
    Arg.(
      value & opt float 2.0
      & info [ "cs" ] ~docv:"T"
          ~doc:"Mutex lease (critical-section) length, time units.")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Switch ring/binsearch token movement online from the observed \
             request rate per token revolution (the Figure 10 crossover as \
             a runtime policy).")
  in
  let pinned =
    Arg.(
      value & opt string "search"
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Pinned movement mode when not --adaptive: search or rotate.")
  in
  let hi =
    Arg.(
      value & opt (some float) None
      & info [ "hi" ] ~docv:"R"
          ~doc:"Adaptive: switch to rotation at >= R requests/revolution.")
  in
  let lo =
    Arg.(
      value & opt (some float) None
      & info [ "lo" ] ~docv:"R"
          ~doc:"Adaptive: switch back to search at <= R requests/revolution.")
  in
  let window =
    Arg.(
      value & opt (some float) None
      & info [ "window" ] ~docv:"T"
          ~doc:"Adaptive rate-estimation window, time units.")
  in
  let park =
    Arg.(
      value & opt (some int) None
      & info [ "park" ] ~docv:"K"
          ~doc:"Park an idle token after K idle hops (search mode only).")
  in
  let report_every =
    Arg.(
      value & opt float 1.0
      & info [ "report-every" ] ~docv:"S"
          ~doc:"Seconds between periodic SLO/queue reports.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No periodic reports.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON reports at the end.")
  in
  Cmd.v
    (Cmd.info "service"
       ~doc:
         "Run the mutex/total-order service: a live cluster behind a \
          client-facing socket front-end, optionally with online adaptive \
          ring/binsearch switching")
    Term.(
      const run $ app_arg $ nodes $ seed $ unit_arg $ shards_arg
      $ max_wall_arg $ listen_uds $ listen_tcp $ host_arg $ duration_arg $ cs
      $ adaptive $ pinned $ hi $ lo $ window $ park $ report_every $ quiet
      $ json)

let service_loadgen_cmd =
  let run app connect_uds connect_tcp host clients conns closed think rate ramp
      duration seed report_every drain quiet json =
    let app = parse_app app in
    let connect =
      match (connect_uds, connect_tcp) with
      | Some _, Some _ -> die "choose one of --connect-uds and --connect-tcp"
      | Some path, None -> Unix.ADDR_UNIX path
      | None, Some port -> (
          if port <= 0 || port > 65535 then die "bad --connect-tcp port %d" port;
          try Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
          with Failure _ -> die "bad --host %S" host)
      | None, None ->
          die "service-loadgen needs --connect-uds PATH or --connect-tcp PORT"
    in
    if clients <= 0 then die "--clients must be >= 1";
    if conns <= 0 then die "--conns must be >= 1";
    if conns > clients then
      die "--conns (%d) cannot exceed --clients (%d)" conns clients;
    if duration <= 0. then die "--duration must be positive";
    if think < 0. then die "--think cannot be negative";
    (* A closed loop has no rate knob — completions set the pace. *)
    if closed && rate <> None then
      die "--closed is a closed loop; it cannot take --rate";
    if ramp <> None && (closed || rate <> None || think <> 0.) then
      die "--ramp replaces --closed/--rate/--think";
    let parse_ramp spec =
      spec
      |> String.split_on_char ','
      |> List.filter (fun s -> s <> "")
      |> List.map (fun part ->
             match String.index_opt part ':' with
             | None ->
                 die "bad ramp phase %S (expected RATE:SECONDS)" part
             | Some i -> (
                 let rate_s = String.sub part 0 i
                 and dur_s =
                   String.sub part (i + 1) (String.length part - i - 1)
                 in
                 match
                   (float_of_string_opt rate_s, float_of_string_opt dur_s)
                 with
                 | Some r, Some d when r > 0. && d > 0. ->
                     {
                       Service_client.duration_s = d;
                       workload = Service_client.Open { rate = r };
                     }
                 | _ ->
                     die
                       "bad ramp phase %S (need positive RATE:SECONDS)" part))
    in
    let phases =
      match ramp with
      | Some spec -> (
          match parse_ramp spec with
          | [] -> die "empty --ramp"
          | ps -> ps)
      | None -> (
          match rate with
          | Some r ->
              if r <= 0. then die "--rate must be positive";
              [
                {
                  Service_client.duration_s = duration;
                  workload = Service_client.Open { rate = r };
                };
              ]
          | None ->
              [
                {
                  Service_client.duration_s = duration;
                  workload = Service_client.Closed { think_s = think };
                };
              ])
    in
    let config =
      {
        Service_client.connect;
        clients;
        conns;
        app;
        phases;
        seed;
        report_every_s = report_every;
        drain_s = drain;
        verbose = not quiet;
      }
    in
    let result =
      try Service_client.run config with
      | Invalid_argument msg -> die "%s" msg
      | Unix.Unix_error (e, fn, _) ->
          die "cannot connect: %s (%s)" (Unix.error_message e) fn
    in
    if json then print_endline (Service_client.result_json result)
    else begin
      let s = result.Service_client.slo in
      let ms v = Format.asprintf "%a" Tr_service.Slo.pp_ms v in
      Format.printf
        "loadgen: sent %d, %d grants, %d released, %d committed, %d rejects, \
         %d outstanding, %d decode errors; grant latency p50=%s p99=%s \
         p999=%s@."
        result.Service_client.sent result.Service_client.grants
        result.Service_client.releaseds result.Service_client.committeds
        result.Service_client.rejects result.Service_client.outstanding
        result.Service_client.decode_errors
        (ms s.Tr_service.Slo.p50) (ms s.Tr_service.Slo.p99)
        (ms s.Tr_service.Slo.p999)
    end
  in
  let connect_uds =
    Arg.(
      value & opt (some string) None
      & info [ "connect-uds" ] ~docv:"PATH"
          ~doc:"Connect to a service on a Unix-domain socket at $(docv).")
  in
  let connect_tcp =
    Arg.(
      value & opt (some int) None
      & info [ "connect-tcp" ] ~docv:"PORT" ~doc:"Connect to TCP $(docv).")
  in
  let clients =
    Arg.(
      value & opt int 100
      & info [ "clients" ] ~docv:"K" ~doc:"Logical clients to simulate.")
  in
  let conns =
    Arg.(
      value & opt int 8
      & info [ "conns" ] ~docv:"C"
          ~doc:"Sockets the clients multiplex over (C <= K).")
  in
  let closed =
    Arg.(
      value & flag
      & info [ "closed" ]
          ~doc:"Closed loop: one request in flight per client (default).")
  in
  let think =
    Arg.(
      value & opt float 0.0
      & info [ "think" ] ~docv:"S"
          ~doc:"Closed-loop think time between cycles, seconds.")
  in
  let rate =
    Arg.(
      value & opt (some float) None
      & info [ "rate" ] ~docv:"R"
          ~doc:"Open loop: aggregate Poisson arrivals at R requests/s.")
  in
  let ramp =
    Arg.(
      value & opt (some string) None
      & info [ "ramp" ] ~docv:"SPEC"
          ~doc:
            "Open-loop rate ramp, e.g. 50:5,2000:10,50:5 \
             (RATE:SECONDS phases).")
  in
  let lg_duration =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"S"
          ~doc:"Single-phase run length in seconds (--ramp overrides).")
  in
  let report_every =
    Arg.(
      value & opt float 1.0
      & info [ "report-every" ] ~docv:"S"
          ~doc:"Seconds between periodic SLO reports.")
  in
  let drain =
    Arg.(
      value & opt float 3.0
      & info [ "drain" ] ~docv:"S"
          ~doc:"Grace period for in-flight responses after the last phase.")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No periodic reports.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON result line.")
  in
  Cmd.v
    (Cmd.info "service-loadgen"
       ~doc:
         "Drive a running service with thousands of concurrent logical \
          clients (closed loop, fixed-rate open loop, or an open-loop rate \
          ramp) and report grant-latency SLOs")
    Term.(
      const run $ app_arg $ connect_uds $ connect_tcp $ host_arg $ clients
      $ conns $ closed $ think $ rate $ ramp $ lg_duration $ seed
      $ report_every $ drain $ quiet $ json)

(* ---------------- cluster-bench ---------------- *)

(* The fork/aggregate machinery lives in Cluster.run_fleet; the CLI only
   validates, launches and prints. *)
let run_fleet ~procs ~addrs ~config packed =
  match Cluster.run_fleet ~procs ~addrs config packed with
  | lines -> lines
  | exception Failure msg -> die "%s" msg

let cluster_bench_cmd =
  let run protocols ns_spec seed grants mean closed unit_s shards max_wall json
      uds procs readiness spin inproc pin duration =
    let protocols = if protocols = [] then [ "ring"; "binsearch" ] else protocols in
    let ns = parse_id_ranges ns_spec in
    if ns = [] then die "empty -N sweep";
    if procs < 1 then die "--procs must be >= 1";
    if procs > 1 && uds = None then die "--procs needs --uds";
    if procs > 1 && json then die "--json is per-process; not available with --procs";
    List.iter (fun p -> ignore (find_packed p)) protocols;
    let load =
      match closed with
      | Some depth -> Cluster.Closed_loop { depth }
      | None -> Cluster.Open_loop { mean_interarrival = mean }
    in
    let reports = ref [] in
    let rows =
      List.map
        (fun n ->
          let values =
            List.map
              (fun protocol ->
                let mk_config ~grants ~duration =
                  live_config ~spin ~inproc ~n ~seed ~unit_s ~shards
                    ~max_wall_s:max_wall ~load ~grants ~duration ~readiness
                    ~pin ()
                in
                let backend_desc dir =
                  Printf.sprintf "unix[%s]"
                    (match parse_readiness readiness with
                    | Some b -> Tr_net_rt.Readiness.backend_name b
                    | None -> "auto")
                  ^ if procs > 1 then Printf.sprintf " procs=%d" procs else ""
                  |> fun s -> ignore dir; s
                in
                match uds with
                | Some dir when procs > 1 ->
                    (* Fleet: fixed duration, grants summed after the fact. *)
                    let config = mk_config ~grants:None ~duration in
                    let addrs = Live_transport.uds_addrs ~dir ~n in
                    let lines =
                      run_fleet ~procs ~addrs ~config (find_packed protocol)
                    in
                    if List.length lines < procs then
                      die "%s n=%d: only %d/%d fleet children reported"
                        protocol n (List.length lines) procs;
                    let total_grants =
                      List.fold_left (fun a l -> a + l.Cluster.m_grants) 0 lines
                    in
                    let decode_errors =
                      List.fold_left
                        (fun a l -> a + l.Cluster.m_decode_errors)
                        0 lines
                    in
                    if decode_errors > 0 then
                      die "%s n=%d: %d decode errors" protocol n decode_errors;
                    let wall =
                      List.fold_left
                        (fun a l -> Float.max a l.Cluster.m_wall_s)
                        0.0 lines
                    in
                    let resp =
                      if total_grants = 0 then Float.nan
                      else
                        List.fold_left
                          (fun a l ->
                            if Float.is_nan l.Cluster.m_resp_mean then a
                            else
                              a
                              +. l.Cluster.m_resp_mean
                                 *. float_of_int l.Cluster.m_grants)
                          0.0 lines
                        /. float_of_int total_grants
                    in
                    let waits =
                      List.fold_left (fun a l -> a + l.Cluster.m_wait_calls) 0 lines
                    in
                    let fds =
                      List.fold_left
                        (fun a l -> a + l.Cluster.m_fds_registered)
                        0 lines
                    in
                    Format.eprintf
                      "bench %-12s n=%5d %s: %7d grants, %8.0f grants/s, resp \
                       %8.2f, %.1fs wall, %d waits, %d fds@."
                      protocol n (backend_desc dir) total_grants
                      (float_of_int total_grants /. Float.max 1e-9 wall)
                      resp wall waits fds;
                    resp
                | _ ->
                    let config = mk_config ~grants:(Some grants) ~duration:0.0 in
                    let backend =
                      match uds with
                      | None -> None
                      | Some dir ->
                          Some
                            (Cluster.Sockets
                               {
                                 owned = List.init n Fun.id;
                                 addrs = Live_transport.uds_addrs ~dir ~n;
                               })
                    in
                    let report = run_live ?backend config (find_packed protocol) in
                    reports := report :: !reports;
                    if report.Cluster.decode_errors > 0 then
                      die "%s n=%d: %d decode errors" protocol n
                        report.Cluster.decode_errors;
                    Format.eprintf
                      "bench %-12s n=%5d %s/%s: %7d grants, %8.0f grants/s, \
                       resp %8.2f, %.1fs wall, %d waits, %d fds, %.1f \
                       ready/wait, %.2f syscalls/grant@."
                      protocol n report.Cluster.backend
                      report.Cluster.readiness report.Cluster.grants
                      (float_of_int report.Cluster.grants
                      /. Float.max 1e-9 report.Cluster.wall_s)
                      (Tr_stats.Summary.mean
                         (Tr_sim.Metrics.responsiveness report.Cluster.metrics))
                      report.Cluster.wall_s report.Cluster.wait_calls
                      report.Cluster.fds_registered
                      report.Cluster.avg_ready_per_wait
                      report.Cluster.syscalls_per_grant;
                    Tr_stats.Summary.mean
                      (Tr_sim.Metrics.responsiveness report.Cluster.metrics))
              protocols
          in
          (float_of_int n, values))
        ns
    in
    if json then
      List.iter
        (fun r -> print_string (Live_export.json_of_report r))
        (List.rev !reports)
    else begin
      (* FIG9-schema CSV, stamped with provenance comment lines. *)
      Printf.printf "# live cluster-bench: mean responsiveness (time units) vs N\n";
      Printf.printf
        "# protocols=%s seed=%d grants=%d load=%s unit=%g backend=%s procs=%d git=%s\n"
        (String.concat "+" protocols) seed grants
        (match closed with
        | Some d -> Printf.sprintf "closed:%d" d
        | None -> Printf.sprintf "open:%g" mean)
        unit_s
        (if uds = None then "loopback" else "unix")
        procs
        (Live_export.git_describe ());
      print_string (Live_export.csv_of_table ~x_label:"n" ~cols:protocols rows)
    end
  in
  let protocols =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PROTOCOL"
          ~doc:"Protocols to sweep (default: ring binsearch).")
  in
  let ns_spec =
    Arg.(
      value & opt string "4,8,16,32"
      & info [ "N"; "sizes" ] ~docv:"LIST" ~doc:"Cluster sizes, e.g. 4,8,16,32.")
  in
  let grants =
    Arg.(
      value & opt int 200
      & info [ "grants" ] ~docv:"K" ~doc:"Served requests per point.")
  in
  let mean =
    Arg.(
      value & opt float 10.0
      & info [ "open" ] ~docv:"MEAN" ~doc:"Poisson mean interarrival (units).")
  in
  let closed =
    Arg.(
      value & opt (some int) None
      & info [ "closed" ] ~docv:"DEPTH"
          ~doc:
            "Closed-loop load instead of open-loop: keep DEPTH requests \
             outstanding per node (the saturation mode for high-N socket \
             sweeps).")
  in
  let bench_unit =
    Arg.(
      value & opt float 5e-4
      & info [ "unit" ] ~docv:"S" ~doc:"Wall seconds per time unit.")
  in
  let procs =
    Arg.(
      value & opt int 1
      & info [ "procs" ] ~docv:"P"
          ~doc:
            "Fork P processes, each hosting a contiguous slice of the \
             cluster over --uds sockets; all run --duration wall units and \
             grants are summed (needs --uds).")
  in
  let bench_duration =
    Arg.(
      value & opt float 2000.0
      & info [ "duration" ] ~docv:"T"
          ~doc:"Run length in time units for --procs fleet mode.")
  in
  Cmd.v
    (Cmd.info "cluster-bench"
       ~doc:
         "Sweep live clusters over N (in-process loopback by default, \
          --uds for real sockets, --procs for a multi-process fleet) and \
          emit the paper's figure-9 comparison (ring O(N) vs delegated \
          binsearch O(log N)) as stamped CSV, or per-run JSON reports with \
          --json")
    Term.(
      const run $ protocols $ ns_spec $ seed $ grants $ mean $ closed
      $ bench_unit $ shards_arg $ max_wall_arg
      $ Arg.(
          value & flag
          & info [ "json" ] ~doc:"Emit one JSON report per run instead of CSV.")
      $ uds_arg $ procs $ readiness_arg $ spin_arg $ inproc_arg $ pin_arg
      $ bench_duration)

(* ---------------- chaos ---------------- *)

let chaos_cmd =
  let run protocol n seed spec backend uds mean deadline unit_s shards json =
    (match Tr_chaos.Scenario.of_string spec with
    | Error e -> die "bad --spec: %s" e
    | Ok s -> (
        match Tr_chaos.Scenario.validate s ~n with
        | Error e -> die "bad --spec: %s" e
        | Ok () -> ()));
    let outcome =
      match backend with
      | "sim" ->
          if uds <> None then die "--uds needs --backend uds";
          Tr_chaos_run.Chaos_run.run_sim ~protocol ~n ~seed ~spec ~mean
            ?deadline ()
      | "loopback" ->
          Tr_chaos_run.Chaos_run.run_live ~protocol ~n ~seed ~spec ~mean
            ?deadline ~unit_s ~shards ()
      | "uds" ->
          let dir =
            match uds with
            | Some d -> d
            | None -> die "--backend uds needs --uds DIR"
          in
          Tr_chaos_run.Chaos_run.run_live ~protocol ~n ~seed ~spec
            ~backend:
              (Cluster.Sockets
                 {
                   owned = List.init n Fun.id;
                   addrs = Live_transport.uds_addrs ~dir ~n;
                 })
            ~mean ?deadline ~unit_s ~shards ()
      | b -> die "unknown --backend %S (expected sim, loopback or uds)" b
    in
    if json then print_string (Tr_chaos_run.Chaos_run.outcome_json outcome)
    else begin
      let o = outcome in
      Format.printf
        "chaos %s on %s (%s): %d grants, %d faults injected, %s@."
        o.Tr_chaos_run.Chaos_run.protocol o.Tr_chaos_run.Chaos_run.backend
        o.Tr_chaos_run.Chaos_run.spec o.Tr_chaos_run.Chaos_run.grants
        o.Tr_chaos_run.Chaos_run.total_injected
        (if o.Tr_chaos_run.Chaos_run.recovered then
           Printf.sprintf "recovered %.1f units after faults cleared"
             o.Tr_chaos_run.Chaos_run.recovery_time
         else
           Printf.sprintf "FLAGGED: %d nodes never recovered by t=%.0f"
             o.Tr_chaos_run.Chaos_run.unrecovered_nodes
             o.Tr_chaos_run.Chaos_run.deadline);
      List.iter
        (fun (k, v) -> if v > 0 then Format.printf "  %s=%d@." k v)
        o.Tr_chaos_run.Chaos_run.injected
    end
  in
  let spec_arg =
    let doc =
      Printf.sprintf
        "Fault scenario: '+'-joined windows. Examples: %s."
        (String.concat "; "
           (List.map
              (fun (s, d) -> Printf.sprintf "%s (%s)" s d)
              Tr_chaos.Scenario.examples))
    in
    Arg.(
      value
      & opt string "partition:0-3|4-7@50-150+corrupt:0.02@20-200"
      & info [ "spec" ] ~docv:"SPEC" ~doc)
  in
  let backend_arg =
    Arg.(
      value & opt string "sim"
      & info [ "backend" ] ~docv:"B"
          ~doc:"Backend: sim (discrete-event), loopback (live in-process) \
                or uds (live sockets, needs --uds DIR).")
  in
  let mean_arg =
    Arg.(
      value & opt float 10.0
      & info [ "mean" ] ~docv:"T"
          ~doc:"Background request interarrival while faults are open, units.")
  in
  let deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"T"
          ~doc:"Recovery deadline after the last fault window closes, \
                units (default 40n).")
  in
  let chaos_nodes =
    Arg.(
      value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Inject a declarative fault scenario (partitions, loss, \
          duplication, reordering, corruption, clock skew, churn) into a \
          protocol on the simulator or the live runtime, probe every node \
          when the faults clear, and report whether the protocol \
          self-stabilized within the deadline")
    Term.(
      const run $ protocol_arg $ chaos_nodes $ seed $ spec_arg $ backend_arg
      $ uds_arg $ mean_arg $ deadline_arg $ unit_arg $ shards_arg
      $ Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON result line."))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "tokenring-cli" ~version:"1.0.0"
      ~doc:"Adaptive token-passing protocols (Englert-Rudolph-Shvartsman 2001)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ list_cmd; run_cmd; compare_cmd; exp_cmd; verify_cmd; spec_cmd;
            explore_cmd; trace_cmd; serve_cmd; loadgen_cmd; cluster_bench_cmd;
            service_cmd; service_loadgen_cmd; chaos_cmd ]))
