(* Tests for Tr_specs: the paper's systems encoded as rewriting systems,
   the prefix-property checker, and the machine-checked refinement chain
   (Lemmas 1-3, Theorem 1). Bounds are kept small so the suite stays
   fast; the bench/CLI run the same checks at larger bounds. *)

open Tr_trs
open Tr_specs

let term = Alcotest.testable Term.pp Term.equal

let explore_ok ?(max_states = 3000) name system initial checker =
  let stats, violations = Explore.bfs ~max_states system ~init:initial ~check:checker in
  (match violations with
  | [] -> ()
  | { Explore.message; state; _ } :: _ ->
      Alcotest.failf "%s: %s in state %s" name message (Term.to_string state));
  stats

(* ---------------- System S ---------------- *)

let test_s_initial_shape () =
  let init = System_s.initial ~n:3 ~data_budget:2 in
  Alcotest.check term "empty global history" (Term.seq [])
    (System_s.global_history init);
  Alcotest.(check int) "three queue entries" 3
    (List.length (System_s.pending_data init))

let test_s_rules_applicable () =
  let init = System_s.initial ~n:2 ~data_budget:1 in
  let succs = System.successors (System_s.system ~n:2) init in
  (* rule new at either node, rule broadcast of empty data (stutter,
     dedups to the initial state itself). *)
  Alcotest.(check bool) "has successors" true (List.length succs >= 2)

let test_s_prefix_exhaustive () =
  let stats =
    explore_ok "S" (System_s.system ~n:2)
      (System_s.initial ~n:2 ~data_budget:2)
      Prefix.check_s
  in
  Alcotest.(check bool) "exhaustive" false stats.Explore.truncated

let test_s_history_grows () =
  (* Drive: new at node 0, then broadcast; H must gain datum(0,_). *)
  let system = System_s.system ~n:2 in
  let init = System_s.initial ~n:2 ~data_budget:1 in
  let after_new =
    List.find
      (fun s -> not (Term.equal s init))
      (System.successors system init)
  in
  let broadcasted =
    List.filter
      (fun s ->
        match System_s.global_history s with
        | Term.Seq (_ :: _) -> true
        | _ -> false)
      (System.successors system after_new)
  in
  Alcotest.(check bool) "broadcast appends" true (broadcasted <> [])

(* ---------------- System S1 ---------------- *)

let test_s1_prefix_exhaustive () =
  let stats =
    explore_ok "S1" (System_s1.system ~n:2)
      (System_s1.initial ~n:2 ~data_budget:2)
      Prefix.check_s1
  in
  Alcotest.(check bool) "exhaustive" false stats.Explore.truncated

let test_s1_copy_rule () =
  (* After a broadcast, the copy rule can bring a node's local history up
     to the global one. *)
  let system = System_s1.system ~n:2 in
  let reachable =
    Explore.reachable ~max_states:2000 system
      ~init:(System_s1.initial ~n:2 ~data_budget:1)
  in
  let some_caught_up =
    List.exists
      (fun s ->
        let global = System_s1.global_history s in
        match global with
        | Term.Seq (_ :: _) ->
            List.exists
              (fun (_, h) -> Term.equal h global)
              (System_s1.local_histories s)
        | _ -> false)
      reachable
  in
  Alcotest.(check bool) "a node catches up" true some_caught_up

(* ---------------- System Token ---------------- *)

let test_token_prefix_exhaustive () =
  let stats =
    explore_ok "Token" (System_token.system ~n:2)
      (System_token.initial ~n:2 ~data_budget:2)
      Prefix.check_token
  in
  Alcotest.(check bool) "exhaustive" false stats.Explore.truncated

let test_token_only_holder_broadcasts () =
  (* In every reachable transition labelled "broadcast", the source
     state's holder is the broadcasting node: check via edge inspection —
     broadcasting changes H, and the new H's last datum names the
     holder. *)
  let edges =
    Explore.edges ~max_states:1500 (System_token.system ~n:2)
      ~init:(System_token.initial ~n:2 ~data_budget:1)
  in
  List.iter
    (fun (src, rule, dst) ->
      if rule = "broadcast" then begin
        let h_src = System_token.global_history src in
        let h_dst = System_token.global_history dst in
        if not (Term.equal h_src h_dst) then
          match h_dst with
          | Term.Seq items ->
              let holder = System_token.holder src in
              let last = List.nth items (List.length items - 1) in
              (match last with
              | Term.App ("datum", [ Term.Int x; _ ]) ->
                  if x <> holder then
                    Alcotest.failf "node %d broadcast while %d held the token"
                      x holder
              | _ -> ())
          | _ -> ()
      end)
    edges

let test_token_initial_holder () =
  Alcotest.(check int) "node 0 starts with the token" 0
    (System_token.holder (System_token.initial ~n:3 ~data_budget:1))

(* ---------------- System Message-Passing ---------------- *)

let test_msgpass_prefix_exhaustive () =
  let stats =
    explore_ok "MP" (System_msgpass.system ~n:2)
      (System_msgpass.initial ~n:2 ~data_budget:1)
      Prefix.check_msgpass
  in
  Alcotest.(check bool) "exhaustive" false stats.Explore.truncated

let test_msgpass_ring_restricts () =
  (* Rule 3' restricts rule 3: the ring variant's reachable set is a
     subset of the arbitrary-send variant's. *)
  let free =
    Explore.reachable ~max_states:5000 (System_msgpass.system ~n:3)
      ~init:(System_msgpass.initial ~n:3 ~data_budget:1)
  in
  let ring =
    Explore.reachable ~max_states:5000 (System_msgpass.system_ring ~n:3)
      ~init:(System_msgpass.initial ~n:3 ~data_budget:1)
  in
  let module TSet = Set.Make (Term) in
  let free_set = TSet.of_list free in
  Alcotest.(check bool) "ring ⊆ free" true
    (List.for_all (fun s -> TSet.mem s free_set) ring);
  Alcotest.(check bool) "strictly smaller here" true
    (List.length ring < List.length free)

let test_msgpass_token_in_transit () =
  (* From the initial state, the holder can send; then T = ⊥ and exactly
     one token is in flight. *)
  let init = System_msgpass.initial ~n:2 ~data_budget:1 in
  let sent =
    List.filter
      (fun s -> System_msgpass.holder s = None)
      (System.successors (System_msgpass.system ~n:2) init)
  in
  Alcotest.(check bool) "send reachable" true (sent <> []);
  List.iter
    (fun s ->
      Alcotest.(check int) "one token in flight" 1
        (List.length (System_msgpass.in_flight_tokens s)))
    sent

(* ---------------- System Search ---------------- *)

let test_search_prefix_bounded () =
  ignore
    (explore_ok ~max_states:4000 "Search" (System_search.system ~n:2)
       (System_search.initial ~n:2 ~data_budget:1)
       Prefix.check_search)

let test_search_traps_appear () =
  let reachable =
    Explore.reachable ~max_states:3000 (System_search.system ~n:2)
      ~init:(System_search.initial ~n:2 ~data_budget:1)
  in
  Alcotest.(check bool) "a trap is set somewhere" true
    (List.exists (fun s -> System_search.traps s <> []) reachable)

let test_search_cyclic_restricts () =
  (* Lemma 5's cyclic system only removes behaviours: its reachable set
     is contained in the unrestricted Search system's. *)
  (* The free space at n=2, budget 1 has ~10.5k states; explore it fully
     so the inclusion test is meaningful. *)
  let free =
    Explore.reachable ~max_states:12000 (System_search.system ~n:2)
      ~init:(System_search.initial ~n:2 ~data_budget:1)
  in
  let cyclic =
    Explore.reachable ~max_states:12000 (System_search.system_cyclic ~n:2)
      ~init:(System_search.initial ~n:2 ~data_budget:1)
  in
  let module TSet = Set.Make (Term) in
  let free_set = TSet.of_list free in
  Alcotest.(check bool) "cyclic ⊆ free" true
    (List.for_all (fun s -> TSet.mem s free_set) cyclic)

let test_search_cyclic_prefix () =
  ignore
    (explore_ok ~max_states:3000 "Search-cyclic"
       (System_search.system_cyclic ~n:3)
       (System_search.initial ~n:3 ~data_budget:1)
       Prefix.check_search)

(* ---------------- System BinarySearch ---------------- *)

let test_binsearch_prefix_bounded () =
  ignore
    (explore_ok ~max_states:4000 "BinarySearch" (System_binsearch.system ~n:2)
       (System_binsearch.initial ~n:2 ~data_budget:1)
       Prefix.check_binsearch)

let test_binsearch_prefix_bounded_n4 () =
  ignore
    (explore_ok ~max_states:3000 "BinarySearch n=4"
       (System_binsearch.system ~n:4)
       (System_binsearch.initial ~n:4 ~data_budget:1)
       Prefix.check_binsearch)

let test_binsearch_token_unique_everywhere () =
  let reachable =
    Explore.reachable ~max_states:3000 (System_binsearch.system ~n:3)
      ~init:(System_binsearch.initial ~n:3 ~data_budget:1)
  in
  List.iter
    (fun s ->
      if System_binsearch.token_count s <> 1 then
        Alcotest.failf "token count %d in %s"
          (System_binsearch.token_count s)
          (Term.to_string s))
    reachable

let test_binsearch_loan_occurs () =
  (* The serve rule (loan) must actually fire somewhere in the bounded
     exploration of a 4-ring. *)
  let edges =
    Explore.edges ~max_states:4000 (System_binsearch.system ~n:4)
      ~init:(System_binsearch.initial ~n:4 ~data_budget:1)
  in
  Alcotest.(check bool) "serve fires" true
    (List.exists (fun (_, rule, _) -> rule = "serve") edges);
  Alcotest.(check bool) "use_return fires" true
    (List.exists (fun (_, rule, _) -> rule = "use_return") edges);
  Alcotest.(check bool) "forward fires" true
    (List.exists (fun (_, rule, _) -> rule = "forward") edges)

let test_binsearch_stamp_order_equals_projection_order () =
  (* Deviation #4 discharged: the executable protocols replace the ⊂_C
     history comparison by a hop-stamp comparison. That is sound exactly
     when, in every reachable state, the rot-projections of any two local
     histories are prefix-ordered BY LENGTH — then "who saw the token
     later" (the stamp order) and "whose projection is a prefix of
     whose" (⊂_C) coincide. Check it over a bounded exploration. *)
  let reachable =
    Explore.reachable ~max_states:4000 (System_binsearch.system ~n:4)
      ~init:(System_binsearch.initial ~n:4 ~data_budget:1)
  in
  List.iter
    (fun state ->
      let projections =
        List.map
          (fun (x, h) -> (x, Notation.rot_projection h))
          (System_binsearch.local_histories state)
      in
      let len h = match h with Term.Seq items -> List.length items | _ -> -1 in
      List.iter
        (fun (x, hx) ->
          List.iter
            (fun (z, hz) ->
              if x < z then begin
                let by_prefix =
                  if Term.seq_is_prefix hx hz then `Le
                  else if Term.seq_is_prefix hz hx then `Ge
                  else `Incomparable
                in
                let by_length = if len hx <= len hz then `Le else `Ge in
                match by_prefix with
                | `Incomparable ->
                    Alcotest.failf
                      "projections incomparable in %s" (Term.to_string state)
                | `Le when by_length <> `Le ->
                    Alcotest.fail "prefix order disagrees with length order"
                | `Ge when len hx < len hz ->
                    Alcotest.fail "prefix order disagrees with length order"
                | `Le | `Ge -> ()
              end)
            projections)
        projections)
    reachable

(* ---------------- rule coverage ---------------- *)

let test_every_rule_fires () =
  (* A rule that never fires in a bounded exploration of a 4-ring is a
     dead rule — an encoding bug. Check full coverage for each system. *)
  let check name system initial max_states =
    let fired = List.map fst (Explore.rule_counts ~max_states system ~init:initial) in
    List.iter
      (fun rule ->
        if not (List.mem (Rule.name rule) fired) then
          Alcotest.failf "%s: rule %s never fires" name (Rule.name rule))
      (System.rules system)
  in
  check "S" (System_s.system ~n:2) (System_s.initial ~n:2 ~data_budget:1) 500;
  check "S1" (System_s1.system ~n:2) (System_s1.initial ~n:2 ~data_budget:1) 500;
  check "Token" (System_token.system ~n:2)
    (System_token.initial ~n:2 ~data_budget:1)
    500;
  check "Message-Passing" (System_msgpass.system ~n:2)
    (System_msgpass.initial ~n:2 ~data_budget:1)
    500;
  check "Search" (System_search.system ~n:2)
    (System_search.initial ~n:2 ~data_budget:1)
    3000;
  check "BinarySearch" (System_binsearch.system ~n:4)
    (System_binsearch.initial ~n:4 ~data_budget:1)
    5000

(* ---------------- liveness ---------------- *)

let test_token_liveness () =
  (* From every reachable Token state, node 1 can always still get the
     token: exhaustively checked at n=2 (the space is finite). *)
  let report =
    Explore.eventually
      ~goal:(fun s -> System_token.holder s = 1)
      (System_token.system ~n:2)
      ~init:(System_token.initial ~n:2 ~data_budget:1)
  in
  Alcotest.(check (list (Alcotest.testable Term.pp Term.equal)))
    "no state locks node 1 out" [] report.Explore.cannot_reach;
  Alcotest.(check bool) "exhaustive (no undecided)" true
    (report.undecided = 0)

let test_msgpass_ring_liveness () =
  (* The ring variant (rule 3') keeps circulating: node 1 always
     eventually holds the token. *)
  let report =
    Explore.eventually
      ~goal:(fun s -> System_msgpass.holder s = Some 1)
      (System_msgpass.system_ring ~n:3)
      ~init:(System_msgpass.initial ~n:3 ~data_budget:1)
  in
  Alcotest.(check int) "no livelocks" 0 (List.length report.Explore.cannot_reach)

let test_specs_no_deadlock () =
  (* The budget-exhausted systems still rotate: broadcasting the empty
     datum is always possible, so no reachable state is stuck. *)
  List.iter
    (fun (name, deadlocked) ->
      if deadlocked <> [] then Alcotest.failf "%s has a deadlock" name)
    [
      ( "Token",
        Explore.deadlocks ~max_states:2000 (System_token.system ~n:2)
          ~init:(System_token.initial ~n:2 ~data_budget:1) );
      ( "Message-Passing",
        Explore.deadlocks ~max_states:2000 (System_msgpass.system ~n:2)
          ~init:(System_msgpass.initial ~n:2 ~data_budget:1) );
      ( "BinarySearch",
        Explore.deadlocks ~max_states:2000 (System_binsearch.system ~n:2)
          ~init:(System_binsearch.initial ~n:2 ~data_budget:1) );
    ]

(* ---------------- Prefix checker self-test ---------------- *)

let test_prefix_checker_catches_violation () =
  (* A deliberately broken system: broadcast appends the datum twice.
     The duplicate-delivery check must flag it. *)
  let open Notation in
  let wrap q h = Term.App ("S", [ q; h ]) in
  let broken_broadcast =
    Rule.make ~name:"broadcast2"
      ~lhs:
        (wrap
           (Term.Bag
              [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
           (Term.Var "H"))
      ~rhs:
        (wrap
           (Term.Bag
              [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
           (Term.App
              ("append", [ Term.App ("append", [ Term.Var "H"; Term.Var "d" ]); Term.Var "d" ])))
      ()
  in
  let sys = System.make ~name:"broken" ~rules:[ broken_broadcast ] in
  (* Seed node 0 with one pending datum so the double-append shows. *)
  let init =
    wrap
      (Term.bag
         [ qent (node 0) (Term.seq [ Term.datum 0 1 ]) (Term.Int 0);
           qent (node 1) empty_history (Term.Int 0) ])
      empty_history
  in
  let _, violations =
    Explore.bfs ~max_states:50 sys ~init ~check:Prefix.check_s
  in
  Alcotest.(check bool) "violation detected" true (violations <> [])

let test_chain_detects_incomparable () =
  let a = Term.seq [ Term.Int 1; Term.Int 2 ] in
  let b = Term.seq [ Term.Int 1; Term.Int 3 ] in
  Alcotest.(check bool) "incomparable flagged" true
    (match Prefix.chain [ a; b ] with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "comparable ok" true
    (match Prefix.chain [ a; Term.seq [ Term.Int 1 ] ] with
    | Ok () -> true
    | Error _ -> false)

(* ---------------- Refinement chain ---------------- *)

let check_refinement name ~abstraction ~abstract_system ~concrete ~initial
    ~max_states =
  let edges = Explore.edges ~max_states concrete ~init:initial in
  let report = Refine.check_simulation ~abstraction ~abstract_system ~edges () in
  if not (Refine.holds report) then
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" Refine.pp_report report);
  Alcotest.(check bool) (name ^ " checked some edges") true (report.Refine.edges > 0)

let test_refine_s1_to_s () =
  check_refinement "S1→S" ~abstraction:System_s1.to_s
    ~abstract_system:(System_s.system ~n:2)
    ~concrete:(System_s1.system ~n:2)
    ~initial:(System_s1.initial ~n:2 ~data_budget:2)
    ~max_states:800

let test_refine_token_to_s1 () =
  check_refinement "Token→S1" ~abstraction:System_token.to_s1
    ~abstract_system:(System_s1.system ~n:2)
    ~concrete:(System_token.system ~n:2)
    ~initial:(System_token.initial ~n:2 ~data_budget:2)
    ~max_states:800

let test_refine_msgpass_to_s1 () =
  check_refinement "MP→S1" ~abstraction:System_msgpass.to_s1
    ~abstract_system:(System_s1.system ~n:2)
    ~concrete:(System_msgpass.system ~n:2)
    ~initial:(System_msgpass.initial ~n:2 ~data_budget:1)
    ~max_states:800

let test_refine_search_to_msgpass () =
  check_refinement "Search→MP+pass" ~abstraction:System_search.to_msgpass
    ~abstract_system:(System_msgpass.system_with_pass ~n:2)
    ~concrete:(System_search.system ~n:2)
    ~initial:(System_search.initial ~n:2 ~data_budget:1)
    ~max_states:600

let test_refine_binsearch_to_msgpass () =
  check_refinement "BinarySearch→MP+pass"
    ~abstraction:System_binsearch.to_msgpass
    ~abstract_system:(System_msgpass.system_with_pass ~n:2)
    ~concrete:(System_binsearch.system ~n:2)
    ~initial:(System_binsearch.initial ~n:2 ~data_budget:1)
    ~max_states:600

let test_refine_binsearch_n3 () =
  check_refinement "BinarySearch→MP+pass (n=3)"
    ~abstraction:System_binsearch.to_msgpass
    ~abstract_system:(System_msgpass.system_with_pass ~n:3)
    ~concrete:(System_binsearch.system ~n:3)
    ~initial:(System_binsearch.initial ~n:3 ~data_budget:1)
    ~max_states:400

let test_refine_detects_broken_abstraction () =
  (* Sanity: a nonsense abstraction must be rejected. Map every
     Message-Passing state to a FIXED non-initial abstract state; steps
     whose image should move then stutter, but transitions out of the
     initial image are unreachable... build instead an abstraction that
     swaps histories, breaking broadcast edges. *)
  let bogus state =
    match System_msgpass.to_s1 state with
    | Term.App ("S1", [ q; _; p ]) ->
        (* Claim the global history is always the non-empty sentinel. *)
        Term.App ("S1", [ q; Term.seq [ Term.Int 999 ]; p ])
    | other -> other
  in
  let edges =
    Explore.edges ~max_states:300 (System_msgpass.system ~n:2)
      ~init:(System_msgpass.initial ~n:2 ~data_budget:1)
  in
  let report =
    Refine.check_simulation ~abstraction:bogus
      ~abstract_system:(System_s1.system ~n:2)
      ~edges ()
  in
  Alcotest.(check bool) "bogus abstraction fails" false (Refine.holds report)

(* ---------------- Verify facade ---------------- *)

let test_verify_facade () =
  let checks = Tokenring.Verify.prefix_checks ~max_states:800 ~ns:[ 2 ] () in
  Alcotest.(check int) "six systems" 6 (List.length checks);
  List.iter
    (fun c ->
      if not c.Tokenring.Verify.ok then
        Alcotest.failf "verify failed: %s (%s)" c.Tokenring.Verify.name c.detail)
    checks;
  let refinements = Tokenring.Verify.refinement_checks ~max_states:300 ~n:2 () in
  Alcotest.(check int) "seven refinements" 7 (List.length refinements);
  List.iter
    (fun c ->
      if not c.Tokenring.Verify.ok then
        Alcotest.failf "refinement failed: %s (%s)" c.Tokenring.Verify.name
          c.detail)
    refinements;
  let liveness = Tokenring.Verify.liveness_checks ~max_states:500 ~n:2 () in
  Alcotest.(check int) "six liveness checks" 6 (List.length liveness);
  List.iter
    (fun c ->
      if not c.Tokenring.Verify.ok then
        Alcotest.failf "liveness failed: %s (%s)" c.Tokenring.Verify.name
          c.detail)
    liveness

(* ---------------- parallel/sequential exploration parity ---------------- *)

(* The sharded layer-synchronous engine must be observationally identical
   to the sequential BFS for every domain count: same visited states in
   the same order, same stats, same rule counts, same violations. *)

let parity_systems =
  [
    ( "S",
      System_s.system ~n:2,
      System_s.initial ~n:2 ~data_budget:2,
      Prefix.check_s );
    ( "S1",
      System_s1.system ~n:2,
      System_s1.initial ~n:2 ~data_budget:2,
      Prefix.check_s1 );
    ( "Token",
      System_token.system ~n:2,
      System_token.initial ~n:2 ~data_budget:2,
      Prefix.check_token );
    ( "MsgPass",
      System_msgpass.system ~n:2,
      System_msgpass.initial ~n:2 ~data_budget:1,
      Prefix.check_msgpass );
    ( "MsgPass+faults",
      System_msgpass.system_faulty ~n:2,
      System_msgpass.initial ~n:2 ~data_budget:1,
      Prefix.check_msgpass );
    ( "Search",
      System_search.system ~n:2,
      System_search.initial ~n:2 ~data_budget:1,
      Prefix.check_search );
    ( "BinSearch",
      System_binsearch.system ~n:2,
      System_binsearch.initial ~n:2 ~data_budget:1,
      Prefix.check_binsearch );
  ]

let check_outcome_equal label (a : Explore.outcome) (b : Explore.outcome) =
  Alcotest.(check int) (label ^ ": states") a.Explore.stats.Explore.states
    b.Explore.stats.Explore.states;
  Alcotest.(check int)
    (label ^ ": transitions")
    a.Explore.stats.Explore.transitions b.Explore.stats.Explore.transitions;
  Alcotest.(check int) (label ^ ": max_depth") a.Explore.stats.Explore.max_depth
    b.Explore.stats.Explore.max_depth;
  Alcotest.(check bool) (label ^ ": truncated")
    a.Explore.stats.Explore.truncated b.Explore.stats.Explore.truncated;
  Alcotest.(check (list term))
    (label ^ ": visited order") a.Explore.visited_order b.Explore.visited_order;
  Alcotest.(check int)
    (label ^ ": edge count")
    (List.length a.Explore.edge_list)
    (List.length b.Explore.edge_list);
  List.iter2
    (fun (s1, r1, t1) (s2, r2, t2) ->
      Alcotest.(check string) (label ^ ": edge rule") r1 r2;
      Alcotest.(check term) (label ^ ": edge src") s1 s2;
      Alcotest.(check term) (label ^ ": edge dst") t1 t2)
    a.Explore.edge_list b.Explore.edge_list;
  Alcotest.(check int)
    (label ^ ": violation count")
    (List.length a.Explore.violations)
    (List.length b.Explore.violations);
  List.iter2
    (fun (v1 : Explore.violation) (v2 : Explore.violation) ->
      Alcotest.(check term) (label ^ ": violation state") v1.Explore.state
        v2.Explore.state;
      Alcotest.(check int) (label ^ ": violation depth") v1.Explore.depth
        v2.Explore.depth;
      Alcotest.(check string)
        (label ^ ": violation message")
        v1.Explore.message v2.Explore.message)
    a.Explore.violations b.Explore.violations

(* Caps chosen to also exercise mid-layer truncation (the 700 cap cuts a
   BFS layer of the bigger systems in half). *)
let test_parity_all_systems () =
  List.iter
    (fun (name, system, init, checker) ->
      List.iter
        (fun max_states ->
          let seq =
            Explore.explore ~max_states ~check:checker ~want_edges:true system
              ~init
          in
          List.iter
            (fun domains ->
              let par =
                Explore.explore ~max_states ~check:checker ~want_edges:true
                  ~domains system ~init
              in
              check_outcome_equal
                (Printf.sprintf "%s cap=%d D=%d" name max_states domains)
                seq par)
            [ 1; 2; 4 ])
        [ 700; 3000 ])
    parity_systems

let test_parity_rule_counts () =
  List.iter
    (fun (name, system, init, _) ->
      let seq = Explore.rule_counts ~max_states:1200 system ~init in
      let par = Explore.rule_counts ~max_states:1200 ~domains:3 system ~init in
      Alcotest.(check (list (pair string int))) (name ^ ": rule counts") seq par)
    parity_systems

let test_parity_max_depth () =
  List.iter
    (fun (name, system, init, checker) ->
      let seq =
        Explore.explore ~max_depth:4 ~check:checker ~want_edges:true system
          ~init
      in
      let par =
        Explore.explore ~max_depth:4 ~check:checker ~want_edges:true ~domains:2
          system ~init
      in
      check_outcome_equal (name ^ " depth=4") seq par)
    parity_systems

(* Spill mode retains no terms, so parity covers stats + violation
   positions (depth/message) — the visited {e set} equality is implied by
   states/transitions/max_depth equality layer by layer. *)
let test_parity_spill () =
  let dir = Filename.get_temp_dir_name () in
  List.iter
    (fun (name, system, init, checker) ->
      let seq = Explore.explore ~max_states:1500 ~check:checker system ~init in
      let spill =
        Explore.explore ~max_states:1500 ~check:checker ~domains:2
          ~spill_dir:dir ~spill_chunk:64 system ~init
      in
      Alcotest.(check int) (name ^ ": states") seq.Explore.stats.Explore.states
        spill.Explore.stats.Explore.states;
      Alcotest.(check int)
        (name ^ ": transitions")
        seq.Explore.stats.Explore.transitions
        spill.Explore.stats.Explore.transitions;
      Alcotest.(check int) (name ^ ": max_depth")
        seq.Explore.stats.Explore.max_depth
        spill.Explore.stats.Explore.max_depth;
      Alcotest.(check bool) (name ^ ": truncated")
        seq.Explore.stats.Explore.truncated
        spill.Explore.stats.Explore.truncated;
      Alcotest.(check int)
        (name ^ ": violations")
        (List.length seq.Explore.violations)
        (List.length spill.Explore.violations);
      List.iter2
        (fun (v1 : Explore.violation) (v2 : Explore.violation) ->
          Alcotest.(check int) (name ^ ": violation depth") v1.Explore.depth
            v2.Explore.depth;
          Alcotest.(check string)
            (name ^ ": violation message")
            v1.Explore.message v2.Explore.message)
        seq.Explore.violations spill.Explore.violations;
      Alcotest.(check (list term)) (name ^ ": spill retains no terms") []
        spill.Explore.visited_order)
    parity_systems

(* Rule order determines candidate order inside a state's expansion; the
   engines must agree for {e any} declaration order, not just the shipped
   one. *)
let test_parity_random_rule_orders =
  let arbitrary_perm =
    QCheck.make
      ~print:(fun (which, perm) -> Printf.sprintf "%s %s" which
                (String.concat "," (List.map string_of_int perm)))
      QCheck.Gen.(
        let* which = oneofl [ "MsgPass+faults"; "BinSearch" ] in
        let rules =
          match which with
          | "MsgPass+faults" ->
              System.rules (System_msgpass.system_faulty ~n:2)
          | _ -> System.rules (System_binsearch.system ~n:2)
        in
        let+ perm = shuffle_l (List.init (List.length rules) Fun.id) in
        (which, perm))
  in
  QCheck.Test.make ~name:"parallel parity under random rule orders" ~count:12
    arbitrary_perm (fun (which, perm) ->
      let system, init, checker =
        match which with
        | "MsgPass+faults" ->
            ( System_msgpass.system_faulty ~n:2,
              System_msgpass.initial ~n:2 ~data_budget:1,
              Prefix.check_msgpass )
        | _ ->
            ( System_binsearch.system ~n:2,
              System_binsearch.initial ~n:2 ~data_budget:1,
              Prefix.check_binsearch )
      in
      let rules = System.rules system in
      let shuffled =
        System.make ~name:"shuffled"
          ~rules:(List.map (List.nth rules) perm)
      in
      let seq =
        Explore.explore ~max_states:600 ~check:checker ~want_edges:true
          shuffled ~init
      in
      let par =
        Explore.explore ~max_states:600 ~check:checker ~want_edges:true
          ~domains:3 shuffled ~init
      in
      seq.Explore.visited_order = par.Explore.visited_order
      && seq.Explore.stats = par.Explore.stats
      && seq.Explore.edge_list = par.Explore.edge_list
      && seq.Explore.violations = par.Explore.violations)

(* ---------------- fault transitions ---------------- *)

let test_faulty_msgpass_violates () =
  (* The opt-in lose/dup-token rules must make the explorer surface
     prefix-property violations (token uniqueness breaks both ways),
     while the fault-free system stays clean on the same bounds. *)
  let init = System_msgpass.initial ~n:2 ~data_budget:1 in
  let clean, no_violations =
    Explore.bfs ~max_states:4000 ~check:Prefix.check_msgpass
      (System_msgpass.system ~n:2) ~init
  in
  Alcotest.(check bool) "fault-free exhaustive" false
    clean.Explore.truncated;
  Alcotest.(check int) "fault-free clean" 0 (List.length no_violations);
  let _, violations =
    Explore.bfs ~max_states:4000 ~max_depth:6 ~check:Prefix.check_msgpass
      (System_msgpass.system_faulty ~n:2)
      ~init
  in
  let messages =
    List.sort_uniq String.compare
      (List.map (fun v -> v.Explore.message) violations)
  in
  Alcotest.(check bool) "violations surfaced" true (violations <> []);
  Alcotest.(check bool) "token loss detected" true
    (List.exists
       (fun m -> m = "token uniqueness violated: 0 tokens")
       messages);
  Alcotest.(check bool) "token duplication detected" true
    (List.exists
       (fun m -> m = "token uniqueness violated: 2 tokens")
       messages)

let test_faulty_rules_fire () =
  let fired =
    List.map fst
      (Explore.rule_counts ~max_states:2000 ~max_depth:5
         (System_msgpass.system_faulty ~n:2)
         ~init:(System_msgpass.initial ~n:2 ~data_budget:1))
  in
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " fires") true (List.mem rule fired))
    [
      "lose-token"; "dup-token"; "stale-gimme"; "gimme-regenerate";
      "crash-holder";
    ]

let () =
  Alcotest.run "specs"
    [
      ( "system-s",
        [
          Alcotest.test_case "initial shape" `Quick test_s_initial_shape;
          Alcotest.test_case "rules applicable" `Quick test_s_rules_applicable;
          Alcotest.test_case "prefix exhaustive" `Quick test_s_prefix_exhaustive;
          Alcotest.test_case "history grows" `Quick test_s_history_grows;
        ] );
      ( "system-s1",
        [
          Alcotest.test_case "prefix exhaustive" `Quick test_s1_prefix_exhaustive;
          Alcotest.test_case "copy rule" `Quick test_s1_copy_rule;
        ] );
      ( "system-token",
        [
          Alcotest.test_case "prefix exhaustive" `Quick test_token_prefix_exhaustive;
          Alcotest.test_case "only holder broadcasts" `Quick
            test_token_only_holder_broadcasts;
          Alcotest.test_case "initial holder" `Quick test_token_initial_holder;
        ] );
      ( "system-msgpass",
        [
          Alcotest.test_case "prefix exhaustive" `Quick test_msgpass_prefix_exhaustive;
          Alcotest.test_case "ring restricts" `Quick test_msgpass_ring_restricts;
          Alcotest.test_case "token in transit" `Quick test_msgpass_token_in_transit;
        ] );
      ( "system-search",
        [
          Alcotest.test_case "prefix bounded" `Quick test_search_prefix_bounded;
          Alcotest.test_case "traps appear" `Quick test_search_traps_appear;
          Alcotest.test_case "cyclic restricts (Lemma 5)" `Quick
            test_search_cyclic_restricts;
          Alcotest.test_case "cyclic prefix" `Quick test_search_cyclic_prefix;
        ] );
      ( "system-binsearch",
        [
          Alcotest.test_case "prefix bounded" `Quick test_binsearch_prefix_bounded;
          Alcotest.test_case "prefix bounded n=4" `Quick
            test_binsearch_prefix_bounded_n4;
          Alcotest.test_case "token unique" `Quick
            test_binsearch_token_unique_everywhere;
          Alcotest.test_case "loan occurs" `Quick test_binsearch_loan_occurs;
        ] );
      ( "stamp-order",
        [
          Alcotest.test_case "stamps agree with ⊂_C" `Quick
            test_binsearch_stamp_order_equals_projection_order;
        ] );
      ( "rule-coverage",
        [ Alcotest.test_case "every rule fires" `Quick test_every_rule_fires ] );
      ( "liveness",
        [
          Alcotest.test_case "token: node 1 always reachable" `Quick
            test_token_liveness;
          Alcotest.test_case "ring circulation" `Quick test_msgpass_ring_liveness;
          Alcotest.test_case "no deadlocks" `Quick test_specs_no_deadlock;
        ] );
      ( "prefix-checker",
        [
          Alcotest.test_case "catches violation" `Quick
            test_prefix_checker_catches_violation;
          Alcotest.test_case "chain comparability" `Quick
            test_chain_detects_incomparable;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "S1 -> S" `Quick test_refine_s1_to_s;
          Alcotest.test_case "Token -> S1" `Quick test_refine_token_to_s1;
          Alcotest.test_case "MP -> S1" `Quick test_refine_msgpass_to_s1;
          Alcotest.test_case "Search -> MP+pass" `Quick test_refine_search_to_msgpass;
          Alcotest.test_case "BinarySearch -> MP+pass" `Quick
            test_refine_binsearch_to_msgpass;
          Alcotest.test_case "BinarySearch n=3" `Slow test_refine_binsearch_n3;
          Alcotest.test_case "broken abstraction rejected" `Quick
            test_refine_detects_broken_abstraction;
        ] );
      ("verify-facade", [ Alcotest.test_case "facade" `Quick test_verify_facade ]);
      ( "explore-parity",
        [
          Alcotest.test_case "all systems, D in {1,2,4}" `Quick
            test_parity_all_systems;
          Alcotest.test_case "rule counts" `Quick test_parity_rule_counts;
          Alcotest.test_case "depth bound" `Quick test_parity_max_depth;
          Alcotest.test_case "spill mode" `Quick test_parity_spill;
          QCheck_alcotest.to_alcotest test_parity_random_rule_orders;
        ] );
      ( "faults",
        [
          Alcotest.test_case "faulty msgpass violates prefix" `Quick
            test_faulty_msgpass_violates;
          Alcotest.test_case "fault rules fire" `Quick test_faulty_rules_fire;
        ] );
    ]
