(* Service-layer tests: client wire codec round-trips and fuzz, the
   adaptive switching policy, loadgen config validation, and a live
   two-process UDS mutex run asserting the lock discipline holds across
   a node kill. *)

module Movement = Tr_apps.Movement
module Frame = Tr_wire.Frame
module Codec = Tr_wire.Codec
module Network = Tr_sim.Network
module Wire = Tr_service.Service_wire
module App_codecs = Tr_service.App_codecs
module Policy = Tr_service.Policy
module Slo = Tr_service.Slo
module Server = Tr_service.Server
module Client = Tr_service.Client

(* ---------------- generators ---------------- *)

let any_int =
  QCheck.Gen.oneof
    [
      QCheck.Gen.int_range (-1000) 1000;
      QCheck.Gen.oneofl [ min_int; min_int + 1; max_int; max_int - 1; 0; -1; 1 ];
      QCheck.Gen.map2
        (fun h l -> (h lsl 32) lxor l)
        (QCheck.Gen.int_range (-0x40000000) 0x3FFFFFFF)
        (QCheck.Gen.int_range 0 0xFFFFFFFF);
    ]

let small_nat = QCheck.Gen.int_range 0 512
let channel_gen = QCheck.Gen.oneofl [ Network.Reliable; Network.Cheap ]
let mode_gen = QCheck.Gen.oneofl [ Movement.Search; Movement.Rotate ]

let payload_gen =
  QCheck.Gen.string_size ~gen:QCheck.Gen.printable (QCheck.Gen.int_range 0 64)

let request_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun client -> Wire.Hello { client }) small_nat;
      QCheck.Gen.map2
        (fun client seq -> Wire.Acquire { client; seq })
        small_nat any_int;
      QCheck.Gen.map2
        (fun client seq -> Wire.Release { client; seq })
        small_nat any_int;
      QCheck.Gen.map3
        (fun client seq payload -> Wire.Publish { client; seq; payload })
        small_nat any_int payload_gen;
    ]

let response_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.map2
        (fun client node -> Wire.Welcome { client; node })
        small_nat small_nat;
      QCheck.Gen.map2
        (fun client seq -> Wire.Grant { client; seq })
        small_nat any_int;
      QCheck.Gen.map2
        (fun client seq -> Wire.Released { client; seq })
        small_nat any_int;
      QCheck.Gen.map3
        (fun client seq global_seq -> Wire.Committed { client; seq; global_seq })
        small_nat any_int any_int;
      QCheck.Gen.map3
        (fun client seq reason -> Wire.Rejected { client; seq; reason })
        small_nat any_int payload_gen;
    ]

let mutex_gen =
  let open Tr_apps.Mutex in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map3
        (fun stamp mode idle_hops -> Token { stamp; mode; idle_hops })
        any_int mode_gen small_nat;
      QCheck.Gen.map (fun stamp -> Loan { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Return { stamp }) any_int;
      QCheck.Gen.map3
        (fun requester span stamp -> Gimme { requester; span; stamp })
        small_nat small_nat any_int;
    ]

let total_order_gen =
  let open Tr_apps.Total_order in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map3
        (fun (stamp, next_seq) mode idle_hops ->
          Token { stamp; next_seq; mode; idle_hops })
        (QCheck.Gen.pair any_int any_int)
        mode_gen small_nat;
      QCheck.Gen.map2
        (fun stamp next_seq -> Loan { stamp; next_seq })
        any_int any_int;
      QCheck.Gen.map2
        (fun stamp next_seq -> Return { stamp; next_seq })
        any_int any_int;
      QCheck.Gen.map3
        (fun requester span stamp -> Gimme { requester; span; stamp })
        small_nat small_nat any_int;
      QCheck.Gen.map3
        (fun seq origin origin_seq ->
          Bcast { seq; payload = { origin; origin_seq } })
        any_int small_nat any_int;
    ]

(* ---------------- round-trips through the chunked decoder ---------- *)

let roundtrip_test (type m) name (codec : m Codec.t) (msg_gen : m QCheck.Gen.t)
    =
  let case_gen =
    QCheck.Gen.quad
      (QCheck.Gen.int_range 0 10_000)
      channel_gen msg_gen
      (QCheck.Gen.int_range 1 64)
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: envelope round-trips" name)
    ~count:300 (QCheck.make case_gen)
    (fun (src, channel, msg, chunk) ->
      let frame = Codec.encode_envelope codec ~src ~channel msg in
      let dec = Frame.Decoder.create () in
      let len = String.length frame in
      let pos = ref 0 in
      let result = ref None in
      while !pos < len do
        let k = Stdlib.min chunk (len - !pos) in
        Frame.Decoder.feed dec (String.sub frame !pos k);
        pos := !pos + k;
        match Frame.Decoder.next dec with
        | Frame.Decoder.Frame payload -> result := Some payload
        | Frame.Decoder.Await | Frame.Decoder.Skip _ -> ()
      done;
      match !result with
      | None -> false
      | Some payload -> (
          match Codec.decode_envelope codec payload with
          | Ok e ->
              e.Codec.src = src && e.Codec.channel = channel && e.Codec.msg = msg
          | Error _ -> false))

(* ---------------- fuzz: decoding never raises ---------------- *)

let fuzz_codec_test (type m) name (codec : m Codec.t) (msg_gen : m QCheck.Gen.t)
    =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: truncation/garbage decode cleanly" name)
    ~count:300
    (QCheck.make
       (QCheck.Gen.triple msg_gen
          (QCheck.Gen.int_range 0 50)
          (QCheck.Gen.string_size ~gen:QCheck.Gen.char
             (QCheck.Gen.int_range 0 60))))
    (fun (msg, cut, junk) ->
      let frame = Codec.encode_envelope codec ~src:3 ~channel:Network.Reliable msg in
      (* Every strict prefix of the payload must decode to Error, never
         raise. *)
      let truncated =
        String.sub frame 0 (Stdlib.min cut (String.length frame - 1))
      in
      (match Codec.decode_envelope codec truncated with
      | Ok _ -> ()
      | Error _ -> ());
      (* Garbage through the stream decoder: skips or awaits, no raise.
         A synced leading frame always survives whatever trails it. *)
      let dec = Frame.Decoder.create () in
      Frame.Decoder.feed dec (frame ^ junk);
      let first = ref None in
      let rec drain () =
        match Frame.Decoder.next dec with
        | Frame.Decoder.Frame payload ->
            if !first = None then first := Some payload;
            drain ()
        | Frame.Decoder.Skip _ -> drain ()
        | Frame.Decoder.Await -> ()
      in
      drain ();
      match !first with
      | None -> false
      | Some payload -> (
          match Codec.decode_envelope codec payload with
          | Ok e -> e.Codec.msg = msg
          | Error _ -> false))

let wire_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      roundtrip_test "service-request" Wire.request_codec request_gen;
      roundtrip_test "service-response" Wire.response_codec response_gen;
      roundtrip_test "app-mutex" App_codecs.mutex mutex_gen;
      roundtrip_test "app-total-order" App_codecs.total_order total_order_gen;
      fuzz_codec_test "service-request" Wire.request_codec request_gen;
      fuzz_codec_test "service-response" Wire.response_codec response_gen;
      fuzz_codec_test "app-mutex" App_codecs.mutex mutex_gen;
      fuzz_codec_test "app-total-order" App_codecs.total_order total_order_gen;
    ]

let test_wire_keys_disjoint () =
  (* Client-facing keys must never collide with the protocol registry:
     a client frame hitting a cluster port has to fail loudly. *)
  let registry_keys =
    List.map (fun (Tr_wire.Codecs.Packed (_, c)) -> c.Codec.key) Tr_wire.Codecs.all
  in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "key %d not in registry" key)
        false
        (List.mem key registry_keys))
    [
      Wire.request_codec.Codec.key;
      Wire.response_codec.Codec.key;
      App_codecs.mutex.Codec.key;
      App_codecs.total_order.Codec.key;
    ]

(* ---------------- policy ---------------- *)

let policy_cfg =
  {
    (Policy.default_config ~n:8 ~hop_s:1.0) with
    Policy.window_s = 100.;
    hi = 2.0;
    lo = 0.75;
  }

let test_policy_switches_up_and_down () =
  let p = Policy.create policy_cfg in
  Alcotest.(check string)
    "starts in search" "search"
    (Movement.mode_to_string (Policy.mode p));
  (* 10 requests per unit, fed past the window boundary so it rolls:
     per_rev = 10*8 = 80 >> hi. *)
  for i = 1 to 1100 do
    Policy.note_request p ~now:(0.1 *. float_of_int i)
  done;
  Alcotest.(check string)
    "heavy load rotates" "rotate"
    (Movement.mode_to_string (Policy.mode p));
  (* Idle ticks decay the estimate back through lo. *)
  Policy.tick p ~now:300.;
  Policy.tick p ~now:500.;
  Alcotest.(check string)
    "idle returns to search" "search"
    (Movement.mode_to_string (Policy.mode p));
  let switches = Policy.switches p in
  Alcotest.(check int) "two switches" 2 (List.length switches);
  (match switches with
  | [ up; down ] ->
      Alcotest.(check string)
        "up is search->rotate" "rotate"
        (Movement.mode_to_string up.Policy.to_mode);
      Alcotest.(check string)
        "down is rotate->search" "search"
        (Movement.mode_to_string down.Policy.to_mode);
      Alcotest.(check bool) "ordered" true (up.Policy.at < down.Policy.at)
  | _ -> Alcotest.fail "expected exactly two switch events")

let test_policy_hysteresis_band () =
  (* A rate between lo and hi must never flip the mode in either
     direction — that band is what stops thrashing at the crossover. *)
  let p = Policy.create policy_cfg in
  (* per_rev = rate * n * hop = 0.15 * 8 = 1.2, inside [0.75, 2.0]. *)
  for i = 1 to 150 do
    Policy.note_request p ~now:(float_of_int i /. 0.15)
  done;
  Alcotest.(check string)
    "stays in search inside the band" "search"
    (Movement.mode_to_string (Policy.mode p));
  Alcotest.(check int) "no switches" 0 (List.length (Policy.switches p))

let test_policy_directive () =
  let p = Policy.create { policy_cfg with Policy.park_after = Some 16 } in
  let d = Policy.directive p () in
  Alcotest.(check bool)
    "search directive parks" true
    (d.Movement.mode = Movement.Search && d.Movement.park_after = Some 16);
  for i = 1 to 1100 do
    Policy.note_request p ~now:(0.1 *. float_of_int i)
  done;
  let d = Policy.directive p () in
  Alcotest.(check bool)
    "rotate directive never parks" true
    (d.Movement.mode = Movement.Rotate && d.Movement.park_after = None)

let test_policy_rejects_inverted_band () =
  Alcotest.check_raises "hi <= lo rejected"
    (Invalid_argument "Policy.create: need hi > lo for hysteresis") (fun () ->
      ignore (Policy.create { policy_cfg with Policy.hi = 0.5; lo = 0.75 }))

(* ---------------- SLO accumulator ---------------- *)

let test_slo_percentiles () =
  let slo = Slo.create () in
  for i = 1 to 1000 do
    Slo.note_started slo;
    Slo.note_latency slo ~kind:`Grant (float_of_int i /. 1000.)
  done;
  let s = Slo.snapshot slo in
  Alcotest.(check int) "samples" 1000 s.Slo.samples;
  Alcotest.(check int) "grants" 1000 s.Slo.grants;
  Alcotest.(check bool) "p50 near 0.5" true (Float.abs (s.Slo.p50 -. 0.5) < 0.05);
  Alcotest.(check bool) "p99 near 0.99" true (Float.abs (s.Slo.p99 -. 0.99) < 0.05);
  Alcotest.(check bool) "ordered" true (s.Slo.p50 <= s.Slo.p99);
  Alcotest.(check string) "NaN renders as dash" "-"
    (Format.asprintf "%a" Slo.pp_ms Float.nan)

(* ---------------- loadgen config validation ---------------- *)

let lg_base =
  Client.default_config ~connect:(Unix.ADDR_UNIX "/tmp/nonexistent.sock")
    ~clients:10

let expect_invalid name cfg =
  match Client.validate cfg with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_loadgen_validation () =
  Client.validate lg_base;
  expect_invalid "zero clients" { lg_base with Client.clients = 0 };
  expect_invalid "conns > clients" { lg_base with Client.conns = 11 };
  expect_invalid "zero conns" { lg_base with Client.conns = 0 };
  expect_invalid "no phases" { lg_base with Client.phases = [] };
  expect_invalid "inverted duration"
    {
      lg_base with
      Client.phases =
        [ { Client.duration_s = -1.0; workload = Client.Closed { think_s = 0. } } ];
    };
  expect_invalid "negative think"
    {
      lg_base with
      Client.phases =
        [ { Client.duration_s = 1.0; workload = Client.Closed { think_s = -0.1 } } ];
    };
  expect_invalid "non-positive rate"
    {
      lg_base with
      Client.phases =
        [ { Client.duration_s = 1.0; workload = Client.Open { rate = 0. } } ];
    }

let test_server_rejects_internal_load () =
  let cfg =
    Server.default_config ~n:4 ~seed:1 ~listen:(Unix.ADDR_UNIX "/tmp/x.sock")
  in
  let cfg =
    {
      cfg with
      Server.cluster =
        {
          cfg.Server.cluster with
          Tr_net_rt.Cluster.load = Tr_net_rt.Cluster.No_load;
        };
    }
  in
  match Server.run cfg with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------------- live: lock discipline across a node kill ---------- *)

(* The child process drives [clients] closed-loop mutex clients over ONE
   connection. Responses on one connection arrive in server send order,
   so the lock discipline is directly observable as an alternation
   property of the stream: a Grant may only arrive when nobody holds the
   lease, and a Released must match the current holder. *)
let mutex_discipline_child ~sock_path ~clients ~run_s ~out_fd =
  let rec connect tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
        Unix.close fd;
        Unix.sleepf 0.05;
        connect (tries - 1)
  in
  let fd = connect 100 in
  let scratch = Codec.scratch () in
  let send client msg =
    let buf =
      Codec.encode_frame scratch Wire.request_codec ~src:client
        ~channel:Network.Reliable msg
    in
    let s = Buffer.contents buf in
    let n = Unix.write_substring fd s 0 (String.length s) in
    assert (n = String.length s)
  in
  for client = 0 to clients - 1 do
    send client (Wire.Acquire { client; seq = 0 })
  done;
  let next_seq = Array.make clients 1 in
  let dec = Frame.Decoder.create () in
  let buf = Bytes.create 65536 in
  let holder = ref None in
  let grants = ref 0 and violations = ref 0 in
  let deadline = Unix.gettimeofday () +. run_s in
  (try
     while Unix.gettimeofday () < deadline do
       let readable, _, _ =
         Unix.select [ fd ] [] [] (Float.max 0.05 (deadline -. Unix.gettimeofday ()))
       in
       if readable <> [] then begin
         match Unix.read fd buf 0 (Bytes.length buf) with
         | 0 -> raise Exit
         | len ->
             Frame.Decoder.feed_sub dec buf ~pos:0 ~len;
             let continue = ref true in
             while !continue do
               match Frame.Decoder.next_view dec with
               | Frame.Decoder.Await_view -> continue := false
               | Frame.Decoder.Skip_view _ -> incr violations
               | Frame.Decoder.View v -> (
                   match Codec.decode_view Wire.response_codec v with
                   | Error _ -> incr violations
                   | Ok env -> (
                       match env.Codec.msg with
                       | Wire.Grant { client; seq } ->
                           incr grants;
                           if !holder <> None then incr violations;
                           holder := Some (client, seq)
                       | Wire.Released { client; seq } ->
                           if !holder <> Some (client, seq) then incr violations;
                           holder := None;
                           let seq' = next_seq.(client) in
                           next_seq.(client) <- seq' + 1;
                           send client (Wire.Acquire { client; seq = seq' })
                       | Wire.Welcome _ | Wire.Committed _ | Wire.Rejected _ ->
                           ()))
             done
       end
     done
   with Exit -> ());
  let line = Printf.sprintf "grants=%d violations=%d\n" !grants !violations in
  ignore (Unix.write_substring out_fd line 0 (String.length line));
  Unix.close out_fd;
  Unix.close fd

let test_live_mutex_discipline_across_kill () =
  let sock_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tr-service-test-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let r, w = Unix.pipe () in
  (* Fork before any domain exists — the server spawns domains, and
     fork and domains don't mix. *)
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      (try mutex_discipline_child ~sock_path ~clients:8 ~run_s:3.0 ~out_fd:w
       with _ -> ());
      Stdlib.exit 0
  | child ->
      Unix.close w;
      let n = 4 in
      let cfg =
        {
          (Server.default_config ~n ~seed:5 ~listen:(Unix.ADDR_UNIX sock_path)) with
          Server.app = Server.Mutex;
          (* 10 ms leases with 2 ms hops: the gap between one node's
             exit and the next node's entry is wide enough that the
             server relays the events in order across shards. *)
          cs_duration = 5.0;
          cluster =
            {
              (Tr_net_rt.Cluster.default_config ~n ~seed:5) with
              Tr_net_rt.Cluster.load = Tr_net_rt.Cluster.External;
              unit_s = 0.002;
              stop = Tr_net_rt.Cluster.Duration 1_000_000.;
              max_wall_s = 30.;
            };
        }
      in
      let control_slot = Atomic.make None in
      let server =
        Domain.spawn (fun () ->
            Server.run
              ~on_ready:(fun ~addr:_ ~control ->
                Atomic.set control_slot (Some control))
              cfg)
      in
      let rec await_control tries =
        match Atomic.get control_slot with
        | Some c -> c
        | None ->
            if tries = 0 then failwith "server never became ready";
            Unix.sleepf 0.05;
            await_control (tries - 1)
      in
      let control = await_control 100 in
      (* Let grants flow, then crash a node mid-run. Safety must hold
         through the kill; liveness is allowed to degrade (the apps have
         no token regeneration). *)
      Unix.sleepf 1.2;
      control.Tr_net_rt.Cluster.kill (n - 1);
      let line =
        let ic = Unix.in_channel_of_descr r in
        let l = input_line ic in
        close_in ic;
        l
      in
      let _, status = Unix.waitpid [] child in
      Alcotest.(check bool) "child exited cleanly" true
        (status = Unix.WEXITED 0);
      control.Tr_net_rt.Cluster.request_stop ();
      let outcome = Domain.join server in
      let grants, violations =
        Scanf.sscanf line "grants=%d violations=%d" (fun g v -> (g, v))
      in
      Alcotest.(check bool)
        (Printf.sprintf "clients were granted the lock (%d grants)" grants)
        true (grants > 0);
      Alcotest.(check int) "no concurrent lease holders" 0 violations;
      Alcotest.(check int) "no decode errors at the server" 0
        outcome.Server.stats.Server.decode_errors

let () =
  Alcotest.run "service"
    [
      ( "wire",
        wire_tests
        @ [
            Alcotest.test_case "service keys disjoint from registry" `Quick
              test_wire_keys_disjoint;
          ] );
      ( "policy",
        [
          Alcotest.test_case "switches up under load, down when idle" `Quick
            test_policy_switches_up_and_down;
          Alcotest.test_case "hysteresis band does not thrash" `Quick
            test_policy_hysteresis_band;
          Alcotest.test_case "directive carries mode and parking" `Quick
            test_policy_directive;
          Alcotest.test_case "inverted band rejected" `Quick
            test_policy_rejects_inverted_band;
        ] );
      ( "slo",
        [ Alcotest.test_case "P2 percentiles stream" `Quick test_slo_percentiles ] );
      ( "validation",
        [
          Alcotest.test_case "loadgen rejects nonsense configs" `Quick
            test_loadgen_validation;
          Alcotest.test_case "server rejects internal load modes" `Quick
            test_server_rejects_internal_load;
        ] );
      ( "live",
        [
          Alcotest.test_case "mutex lock discipline across a node kill" `Slow
            test_live_mutex_discipline_across_kill;
        ] );
    ]
