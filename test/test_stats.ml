(* Unit and property tests for Tr_stats: summaries, quantiles,
   histograms, series tables. *)

module Summary = Tr_stats.Summary
module Quantile = Tr_stats.Quantile
module Histogram = Tr_stats.Histogram
module Series = Tr_stats.Series

let check_float = Alcotest.(check (float 1e-9))
let check_close msg expected got = Alcotest.(check (float 1e-6)) msg expected got

(* ---------------- Summary ---------------- *)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "min nan" true (Float.is_nan (Summary.min s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Summary.variance s))

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 42.0;
  check_float "mean" 42.0 (Summary.mean s);
  check_float "min" 42.0 (Summary.min s);
  check_float "max" 42.0 (Summary.max s);
  check_float "total" 42.0 (Summary.total s);
  Alcotest.(check bool) "variance of 1 sample is nan" true
    (Float.is_nan (Summary.variance s))

let test_summary_known_values () =
  let s = Summary.create () in
  Summary.add_many s [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "mean" 5.0 (Summary.mean s);
  (* Sample variance with n-1: sum of squared devs = 32, 32/7. *)
  check_close "variance" (32.0 /. 7.0) (Summary.variance s);
  check_float "min" 2.0 (Summary.min s);
  check_float "max" 9.0 (Summary.max s);
  check_float "last" 9.0 (Summary.last s)

let test_summary_nan_excluded () =
  let s = Summary.create () in
  Summary.add s 1.0;
  Summary.add s nan;
  Summary.add s 3.0;
  Alcotest.(check int) "count" 2 (Summary.count s);
  Alcotest.(check int) "nan_count" 1 (Summary.nan_count s);
  check_close "mean" 2.0 (Summary.mean s)

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () in
  Summary.add_many a [ 1.0; 2.0; 3.0 ];
  Summary.add_many b [ 10.0; 20.0 ];
  let m = Summary.merge a b in
  let direct = Summary.create () in
  Summary.add_many direct [ 1.0; 2.0; 3.0; 10.0; 20.0 ];
  Alcotest.(check int) "count" (Summary.count direct) (Summary.count m);
  check_close "mean" (Summary.mean direct) (Summary.mean m);
  check_close "variance" (Summary.variance direct) (Summary.variance m);
  check_float "min" 1.0 (Summary.min m);
  check_float "max" 20.0 (Summary.max m);
  (* merge must not mutate its arguments *)
  Alcotest.(check int) "a untouched" 3 (Summary.count a)

let test_summary_merge_empty () =
  let a = Summary.create () and b = Summary.create () in
  Summary.add b 5.0;
  check_close "empty+b" 5.0 (Summary.mean (Summary.merge a b));
  check_close "b+empty" 5.0 (Summary.mean (Summary.merge b a))

let test_summary_copy_independent () =
  let a = Summary.create () in
  Summary.add a 1.0;
  let b = Summary.copy a in
  Summary.add b 100.0;
  Alcotest.(check int) "a unchanged" 1 (Summary.count a);
  Alcotest.(check int) "b extended" 2 (Summary.count b)

let prop_welford_matches_two_pass =
  QCheck.Test.make ~name:"welford variance = two-pass variance" ~count:200
    QCheck.(list_of_size Gen.(2 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (List.length xs >= 2);
      let s = Summary.create () in
      Summary.add_many s xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (n -. 1.0)
      in
      Float.abs (Summary.variance s -. var) < 1e-6 *. (1.0 +. var))

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Summary.create () in
      Summary.add_many s xs;
      Summary.mean s >= Summary.min s -. 1e-9
      && Summary.mean s <= Summary.max s +. 1e-9)

(* ---------------- Quantile ---------------- *)

let test_quantile_empty () =
  let q = Quantile.create () in
  Alcotest.(check bool) "nan" true (Float.is_nan (Quantile.median q))

let test_quantile_extremes () =
  let q = Quantile.create () in
  Quantile.add_many q [ 5.0; 1.0; 3.0 ];
  check_float "q0 = min" 1.0 (Quantile.quantile q 0.0);
  check_float "q1 = max" 5.0 (Quantile.quantile q 1.0);
  check_float "median" 3.0 (Quantile.median q)

let test_quantile_interpolation () =
  let q = Quantile.create () in
  Quantile.add_many q [ 0.0; 10.0 ];
  check_float "q0.25 interpolates" 2.5 (Quantile.quantile q 0.25)

let test_quantile_invalid () =
  let q = Quantile.create () in
  Quantile.add q 1.0;
  Alcotest.check_raises "q > 1" (Invalid_argument "Quantile.quantile: q outside [0,1]")
    (fun () -> ignore (Quantile.quantile q 1.5))

let test_quantile_add_after_query () =
  let q = Quantile.create () in
  Quantile.add_many q [ 1.0; 2.0; 3.0 ];
  ignore (Quantile.median q);
  Quantile.add q 100.0;
  check_float "max updated" 100.0 (Quantile.quantile q 1.0)

(* ---------------- P2 (streaming quantiles) ---------------- *)

module P2 = Tr_stats.P2

let test_p2_empty_and_exact_prefix () =
  let s = P2.create ~p:0.5 in
  Alcotest.(check bool) "nan before data" true (Float.is_nan (P2.estimate s));
  List.iter (P2.add s) [ 5.0; 1.0; 3.0 ];
  (* <= 5 samples: exact interpolated quantile of {1,3,5}. *)
  check_float "exact median" 3.0 (P2.estimate s);
  Alcotest.(check int) "count" 3 (P2.count s);
  check_float "probability" 0.5 (P2.probability s)

let test_p2_invalid_p () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p = %g rejected" p)
        true
        (try
           ignore (P2.create ~p);
           false
         with Invalid_argument _ -> true))
    [ 0.0; 1.0; -0.5; 1.5 ]

(* Accuracy against the exact (sample-retaining) estimator on a smooth
   stream: P² should land within a few percent of the true quantile. *)
let test_p2_tracks_exact () =
  let rng = Tr_sim.Rng.create 99 in
  List.iter
    (fun p ->
      let sketch = P2.create ~p in
      let exact = Quantile.create () in
      for _ = 1 to 10_000 do
        let x = Tr_sim.Rng.exponential rng ~mean:7.0 in
        P2.add sketch x;
        Quantile.add exact x
      done;
      let truth = Quantile.quantile exact p in
      let err = Float.abs (P2.estimate sketch -. truth) /. truth in
      if err > 0.05 then
        Alcotest.failf "p=%g: sketch %.4f vs exact %.4f (err %.1f%%)" p
          (P2.estimate sketch) truth (100.0 *. err))
    [ 0.5; 0.9; 0.99 ]

let prop_p2_within_sample_range =
  QCheck.Test.make ~name:"P2 estimate stays within [min,max]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 60) (float_bound_exclusive 100.0))
        (float_range 0.01 0.99))
    (fun (xs, p) ->
      let s = P2.create ~p in
      List.iter (P2.add s) xs;
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let est = P2.estimate s in
      est >= lo -. 1e-9 && est <= hi +. 1e-9)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0))
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      let t = Quantile.create () in
      Quantile.add_many t xs;
      Quantile.quantile t lo <= Quantile.quantile t hi +. 1e-9)

let prop_iqr_nonnegative =
  QCheck.Test.make ~name:"IQR >= 0" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_exclusive 100.0))
    (fun xs ->
      let t = Quantile.create () in
      Quantile.add_many t xs;
      Quantile.iqr t >= -1e-9)

(* ---------------- Histogram ---------------- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Histogram.add_many h [ 0.5; 1.5; 2.5; 9.9; -1.0; 10.0; 11.0 ];
  Alcotest.(check int) "count includes flows" 7 (Histogram.count h);
  Alcotest.(check int) "bin 0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 1 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 4" 1 (Histogram.bin_count h 4);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow (hi inclusive above)" 2 (Histogram.overflow h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin 1 lo" 0.25 lo;
  check_float "bin 1 hi" 0.5 hi

let test_histogram_invalid () =
  Alcotest.check_raises "hi<=lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:3));
  Alcotest.check_raises "bins<1" (Invalid_argument "Histogram.create: bins < 1")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0))

let test_histogram_mode () =
  let h = Histogram.create ~lo:0.0 ~hi:4.0 ~bins:4 in
  Alcotest.(check int) "empty mode" (-1) (Histogram.mode_bin h);
  Histogram.add_many h [ 2.1; 2.2; 0.5 ];
  Alcotest.(check int) "mode" 2 (Histogram.mode_bin h)

let prop_histogram_conserves_count =
  QCheck.Test.make ~name:"bins + flows = count" ~count:100
    QCheck.(list_of_size Gen.(0 -- 60) (float_range (-5.0) 15.0))
    (fun xs ->
      let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:7 in
      Histogram.add_many h xs;
      let bins = List.init 7 (fun i -> Histogram.bin_count h i) in
      List.fold_left ( + ) 0 bins + Histogram.underflow h + Histogram.overflow h
      = Histogram.count h)

(* ---------------- Series ---------------- *)

let test_series_basic () =
  let s = Series.create ~name:"s" in
  Series.add s ~x:1.0 ~y:10.0;
  Series.add s ~x:2.0 ~y:20.0;
  Alcotest.(check int) "length" 2 (Series.length s);
  Alcotest.(check (option (float 1e-9))) "y_at 2" (Some 20.0) (Series.y_at s 2.0);
  Alcotest.(check (option (float 1e-9))) "y_at missing" None (Series.y_at s 3.0)

let test_series_last_wins () =
  let s = Series.create ~name:"s" in
  Series.add s ~x:1.0 ~y:10.0;
  Series.add s ~x:1.0 ~y:99.0;
  Alcotest.(check (option (float 1e-9))) "last value" (Some 99.0) (Series.y_at s 1.0)

let test_series_map_y () =
  let s = Series.create ~name:"s" in
  Series.add s ~x:1.0 ~y:10.0;
  let doubled = Series.map_y s ~f:(fun y -> 2.0 *. y) in
  Alcotest.(check (option (float 1e-9))) "doubled" (Some 20.0) (Series.y_at doubled 1.0);
  Alcotest.(check (option (float 1e-9))) "original intact" (Some 10.0) (Series.y_at s 1.0)

let test_table_union_and_missing () =
  let a = Series.create ~name:"a" and b = Series.create ~name:"b" in
  Series.add a ~x:1.0 ~y:1.0;
  Series.add a ~x:2.0 ~y:2.0;
  Series.add b ~x:2.0 ~y:20.0;
  Series.add b ~x:3.0 ~y:30.0;
  let table = Series.Table.of_series ~x_label:"x" [ a; b ] in
  let text = Format.asprintf "%a" Series.Table.pp table in
  Alcotest.(check bool) "header has names" true
    (Astring.String.is_infix ~affix:"a" text && Astring.String.is_infix ~affix:"b" text);
  let csv = Series.Table.to_csv table in
  (* x = 1 has no b value; x = 3 has no a value *)
  Alcotest.(check bool) "missing cells rendered" true
    (Astring.String.is_infix ~affix:"1,1,-" csv
    && Astring.String.is_infix ~affix:"3,-,30" csv)

(* ---------------- Plot ---------------- *)

let test_plot_empty () =
  Alcotest.(check string) "placeholder" "(empty plot)\n" (Tr_stats.Plot.render [])

let test_plot_contains_glyphs_and_legend () =
  let a = Series.create ~name:"alpha" and b = Series.create ~name:"beta" in
  List.iter (fun x -> Series.add a ~x ~y:x) [ 1.0; 2.0; 3.0 ];
  List.iter (fun x -> Series.add b ~x ~y:(10.0 -. x)) [ 1.0; 2.0; 3.0 ];
  let out = Tr_stats.Plot.render ~width:30 ~height:8 [ a; b ] in
  Alcotest.(check bool) "legend names" true
    (Astring.String.is_infix ~affix:"alpha" out
    && Astring.String.is_infix ~affix:"beta" out);
  Alcotest.(check bool) "both glyphs plotted" true
    (String.contains out '*' && String.contains out '+')

let test_plot_log_scale_skips_nonpositive () =
  let s = Series.create ~name:"s" in
  Series.add s ~x:1.0 ~y:(-5.0);
  Series.add s ~x:2.0 ~y:100.0;
  let out = Tr_stats.Plot.render ~y_scale:Tr_stats.Plot.Log [ s ] in
  (* The negative point is dropped; the plot still renders. *)
  Alcotest.(check bool) "renders" true (String.length out > 20)

let test_plot_single_point () =
  let s = Series.create ~name:"s" in
  Series.add s ~x:5.0 ~y:5.0;
  let out = Tr_stats.Plot.render [ s ] in
  Alcotest.(check bool) "single point ok" true (String.contains out '*')

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "single" `Quick test_summary_single;
          Alcotest.test_case "known values" `Quick test_summary_known_values;
          Alcotest.test_case "nan excluded" `Quick test_summary_nan_excluded;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          Alcotest.test_case "merge empty" `Quick test_summary_merge_empty;
          Alcotest.test_case "copy independent" `Quick test_summary_copy_independent;
        ]
        @ qsuite [ prop_welford_matches_two_pass; prop_mean_bounded ] );
      ( "quantile",
        [
          Alcotest.test_case "empty" `Quick test_quantile_empty;
          Alcotest.test_case "extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "invalid q" `Quick test_quantile_invalid;
          Alcotest.test_case "add after query" `Quick test_quantile_add_after_query;
        ]
        @ qsuite [ prop_quantile_monotone; prop_iqr_nonnegative ] );
      ( "p2",
        [
          Alcotest.test_case "empty/exact prefix" `Quick
            test_p2_empty_and_exact_prefix;
          Alcotest.test_case "invalid p" `Quick test_p2_invalid_p;
          Alcotest.test_case "tracks exact estimator" `Quick
            test_p2_tracks_exact;
        ]
        @ qsuite [ prop_p2_within_sample_range ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "bounds" `Quick test_histogram_bounds;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid;
          Alcotest.test_case "mode" `Quick test_histogram_mode;
        ]
        @ qsuite [ prop_histogram_conserves_count ] );
      ( "series",
        [
          Alcotest.test_case "basic" `Quick test_series_basic;
          Alcotest.test_case "last wins" `Quick test_series_last_wins;
          Alcotest.test_case "map_y" `Quick test_series_map_y;
          Alcotest.test_case "table union/missing" `Quick test_table_union_and_missing;
        ] );
      ( "plot",
        [
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "glyphs and legend" `Quick
            test_plot_contains_glyphs_and_legend;
          Alcotest.test_case "log scale" `Quick test_plot_log_scale_skips_nonpositive;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
        ] );
    ]
