(* Chaos engine: scenario grammar, injector determinism (the contract
   that makes one fault schedule replay identically on both backends),
   corruption vs the frame decoder's resync path, the stabilization
   monitor, and end-to-end recovery/starvation on the simulator. *)

module Scenario = Tr_chaos.Scenario
module Injector = Tr_chaos.Injector
module Monitor = Tr_chaos.Monitor
module Chaos_run = Tr_chaos_run.Chaos_run
module Frame = Tr_wire.Frame

(* ---------------- scenario grammar ---------------- *)

let test_scenario_examples () =
  List.iter
    (fun (spec, _desc) ->
      match Scenario.of_string spec with
      | Error e -> Alcotest.failf "example %S rejected: %s" spec e
      | Ok s ->
          Alcotest.(check string) (spec ^ " round-trips") spec (Scenario.spec s);
          (match Scenario.validate s ~n:100 with
          | Ok () -> ()
          | Error e -> Alcotest.failf "example %S invalid at n=100: %s" spec e);
          Alcotest.(check bool)
            (spec ^ " has a clear time") true
            (Scenario.clear_time s > 0.0))
    Scenario.examples

let test_scenario_errors () =
  List.iter
    (fun spec ->
      match Scenario.of_string spec with
      | Ok _ -> Alcotest.failf "malformed spec %S accepted" spec
      | Error _ -> ())
    [
      "partition:@10-20";
      "loss:xyz";
      "dup:1.5@5-30";
      "dup:0.1@30-5";
      "reorder:0.2@5-30";
      "skew:3@10-50";
      "churn:@20-60";
      "frobnicate:1@2-3";
      "dup:0.1";
    ]

let test_scenario_validate () =
  let s = Scenario.of_string_exn "churn:7@20-60" in
  (match Scenario.validate s ~n:8 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "churn:7 valid at n=8, got: %s" e);
  match Scenario.validate s ~n:7 with
  | Ok () -> Alcotest.fail "churn:7 accepted at n=7"
  | Error _ -> ()

let test_scenario_windows () =
  let s = Scenario.of_string_exn "partition:0-1|2-3@10-25+corrupt:0.1@5-30" in
  Alcotest.(check int) "two clauses" 2 (List.length (Scenario.faults s));
  Alcotest.(check (float 1e-9)) "clear at last close" 30.0 (Scenario.clear_time s);
  let w = Scenario.window_of (List.hd (Scenario.faults s)) in
  Alcotest.(check bool) "inactive before" false (Scenario.active w ~now:9.9);
  Alcotest.(check bool) "active inside" true (Scenario.active w ~now:10.0);
  Alcotest.(check bool) "inactive after" false (Scenario.active w ~now:25.0)

(* ---------------- injector determinism ---------------- *)

let canned_specs =
  [|
    "partition:0-2|3-5@10-40";
    "loss:*>3,0.4@5-50";
    "dup:0.3@5-50";
    "reorder:0.4,5@5-50";
    "corrupt:0.2@5-50";
    "churn:1@10-30";
    "partition:0-1|2-5@10-30+dup:0.2@5-40+corrupt:0.1@5-40";
  |]

(* One query stream as (src, dst, now) with now nondecreasing. *)
let arbitrary_stream =
  QCheck.make
    ~print:(fun (seed, si, qs) ->
      Printf.sprintf "seed=%d spec=%s queries=%d" seed canned_specs.(si)
        (List.length qs))
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* si = int_bound (Array.length canned_specs - 1) in
      let* len = int_range 20 200 in
      let* raw =
        list_repeat len (triple (int_bound 5) (int_bound 5) (float_range 0.0 60.0))
      in
      let qs =
        List.mapi
          (fun i (s, d, t) -> (s, d, t +. (float_of_int i *. 0.01)))
          (List.sort (fun (_, _, a) (_, _, b) -> compare a b) raw)
      in
      return (seed, si, qs))

(* Same seed, same scenario, same query stream: two independently
   created injectors must produce the identical action sequence, counts
   and digest — the replay property the qcheck satellite asks for. *)
let test_injector_replay =
  QCheck.Test.make ~name:"same-seed injectors replay identically" ~count:50
    arbitrary_stream (fun (seed, si, qs) ->
      let spec = canned_specs.(si) in
      let mk () = Injector.create ~seed ~n:6 (Scenario.of_string_exn spec) in
      let a = mk () and b = mk () in
      let run inj =
        List.map (fun (src, dst, now) -> Injector.on_send inj ~now ~src ~dst) qs
      in
      run a = run b
      && Injector.schedule_digest a = Injector.schedule_digest b
      && Injector.counts a = Injector.counts b)

(* Cross-backend interleaving: two backends process the same per-link
   traffic in different global orders (shard scheduling, event-heap
   ties). Decisions are per-link pure hashes, so any interleaving that
   preserves per-link order must inject the same schedule: actions match
   query-for-query and the digest is order-independent. *)
let test_injector_interleaving =
  QCheck.Test.make ~name:"schedule survives cross-link reordering" ~count:50
    (QCheck.pair arbitrary_stream (QCheck.make QCheck.Gen.(int_bound 9999)))
    (fun ((seed, si, qs), shuffle_seed) ->
      let spec = canned_specs.(si) in
      let mk () = Injector.create ~seed ~n:6 (Scenario.of_string_exn spec) in
      (* Riffle: pick a random link at each step, preserving each link's
         own query order — a different global interleaving of the same
         per-link streams. *)
      let by_link = Hashtbl.create 16 in
      List.iter
        (fun (s, d, t) ->
          let key = (s, d) in
          let q = try Hashtbl.find by_link key with Not_found -> Queue.create () in
          Queue.push (s, d, t) q;
          Hashtbl.replace by_link key q)
        qs;
      let links = Array.of_seq (Hashtbl.to_seq_values by_link) in
      let rng = Random.State.make [| shuffle_seed |] in
      let riffled = ref [] in
      let remaining = ref (List.length qs) in
      while !remaining > 0 do
        let q = links.(Random.State.int rng (Array.length links)) in
        if not (Queue.is_empty q) then begin
          riffled := Queue.pop q :: !riffled;
          decr remaining
        end
      done;
      let riffled = List.rev !riffled in
      let a = mk () and b = mk () in
      let tag inj order =
        List.map
          (fun (src, dst, now) -> ((src, dst), Injector.on_send inj ~now ~src ~dst))
          order
      in
      let ra = tag a qs and rb = tag b riffled in
      let sort l = List.sort compare l in
      sort ra = sort rb
      && Injector.schedule_digest a = Injector.schedule_digest b)

let test_corrupt_payload_deterministic () =
  let inj =
    Injector.create ~seed:9 ~n:4 (Scenario.of_string_exn "corrupt:1.0@0-10")
  in
  let payload = String.init 40 (fun i -> Char.chr (i * 7 mod 256)) in
  let m1 = Injector.corrupt_payload inj ~src:1 ~dst:2 ~k:3 payload in
  let m2 = Injector.corrupt_payload inj ~src:1 ~dst:2 ~k:3 payload in
  Alcotest.(check string) "same (seed,link,k), same mangling" m1 m2;
  Alcotest.(check bool) "mangling changes bytes" true (m1 <> payload);
  let other = Injector.corrupt_payload inj ~src:1 ~dst:2 ~k:4 payload in
  Alcotest.(check bool) "different k, different mangling" true (other <> m1)

(* ---------------- decoder resync fuzz ---------------- *)

(* Chaos-corrupted frames through the incremental decoder: whatever the
   flips hit (magic, version, length or payload), the decoder must never
   raise, must terminate, and must keep its skip count bounded by the
   bytes fed. Clean frames riding behind the garbage must still emerge:
   the stream re-locks on the next magic byte. *)
let test_decoder_resync_fuzz =
  QCheck.Test.make ~name:"decoder absorbs chaos corruption" ~count:200
    (QCheck.make
       ~print:(fun (seed, payloads) ->
         Printf.sprintf "seed=%d frames=%d" seed (List.length payloads))
       QCheck.Gen.(
         let* seed = int_bound 100_000 in
         let* n = int_range 1 12 in
         let* payloads = list_repeat n (string_size ~gen:char (int_range 0 80)) in
         return (seed, payloads)))
    (fun (seed, payloads) ->
      let inj =
        Injector.create ~seed ~n:4 (Scenario.of_string_exn "corrupt:1.0@0-1000")
      in
      let stream = Buffer.create 256 in
      let k = ref 0 in
      List.iter
        (fun p ->
          incr k;
          let frame = Frame.to_string p in
          (* Corrupt every other frame; the clean ones must survive. *)
          let frame =
            if !k mod 2 = 0 then Injector.corrupt_payload inj ~src:0 ~dst:1 ~k:!k frame
            else frame
          in
          Buffer.add_string stream frame)
        payloads;
      let bytes = Buffer.contents stream in
      let dec = Frame.Decoder.create () in
      let rng = Random.State.make [| seed; 77 |] in
      let decoded = ref 0 in
      let pos = ref 0 in
      let len = String.length bytes in
      (try
         while !pos < len do
           let chunk = 1 + Random.State.int rng 16 in
           let chunk = Stdlib.min chunk (len - !pos) in
           Frame.Decoder.feed dec (String.sub bytes !pos chunk);
           pos := !pos + chunk;
           let rec drain () =
             match Frame.Decoder.next dec with
             | Frame.Decoder.Frame _ ->
                 incr decoded;
                 drain ()
             | Frame.Decoder.Skip _ -> drain ()
             | Frame.Decoder.Await -> ()
           in
           drain ()
         done
       with e ->
         Alcotest.failf "decoder raised %s" (Printexc.to_string e));
      let clean = (List.length payloads + 1) / 2 in
      (* A corrupted length prefix can swallow at most the stream's tail,
         but a clean frame ahead of any corruption always decodes; at
         least one must emerge whenever a clean frame leads. *)
      Frame.Decoder.skipped_events dec <= len
      && !decoded >= Stdlib.min clean 1 - (if clean = 0 then 0 else 0)
      && !decoded >= 1 && !decoded <= List.length payloads)

(* ---------------- monitor ---------------- *)

let test_monitor () =
  let m = Monitor.create ~n:4 ~clear_time:10.0 ~deadline:20.0 in
  for i = 0 to 3 do
    Monitor.note_probe m ~node:i
  done;
  Monitor.note_serve m ~now:5.0 ~node:0;
  Alcotest.(check bool) "pre-clear serves ignored" false (Monitor.recovered m);
  Monitor.note_serve m ~now:11.0 ~node:0;
  Monitor.note_serve m ~now:12.5 ~node:1;
  Monitor.note_serve m ~now:11.5 ~node:2;
  Alcotest.(check bool) "one node still pending" false (Monitor.recovered m);
  Alcotest.(check (list int)) "pending node" [ 3 ] (Monitor.pending_nodes m);
  Alcotest.(check bool) "flagged past deadline" true (Monitor.flagged m ~now:25.0);
  Monitor.note_serve m ~now:14.0 ~node:3;
  Alcotest.(check bool) "recovered" true (Monitor.recovered m);
  (match Monitor.stabilized_at m with
  | Some t -> Alcotest.(check (float 1e-9)) "last serve wins" 14.0 t
  | None -> Alcotest.fail "no stabilization time");
  (match Monitor.recovery_time m with
  | Some t -> Alcotest.(check (float 1e-9)) "relative to clear" 4.0 t
  | None -> Alcotest.fail "no recovery time");
  Alcotest.(check bool) "not flagged once recovered" false
    (Monitor.flagged m ~now:25.0)

let test_monitor_invalid () =
  Alcotest.check_raises "deadline before clear"
    (Invalid_argument "Monitor.create: deadline before clear") (fun () ->
      ignore (Monitor.create ~n:2 ~clear_time:10.0 ~deadline:10.0))

(* ---------------- end-to-end on the simulator ---------------- *)

(* The tentpole demonstration at test size: churn destroys the token at
   a downed node. The ring never regenerates it — the harness must flag
   the run — while the self-stabilizing random walk times out and mints
   a fresh generation, recovering every probed node. *)
let test_sim_churn_ring_flagged () =
  let o =
    Chaos_run.run_sim ~protocol:"ring" ~n:6 ~seed:3 ~spec:"churn:2@40-80" ()
  in
  Alcotest.(check bool) "ring flagged" true o.Chaos_run.flagged;
  Alcotest.(check bool) "ring not recovered" false o.Chaos_run.recovered;
  Alcotest.(check bool) "churn was injected" true (o.Chaos_run.total_injected > 0)

let test_sim_churn_random_walk_recovers () =
  let o =
    Chaos_run.run_sim ~protocol:"random-walk" ~n:6 ~seed:3 ~spec:"churn:2@40-80" ()
  in
  Alcotest.(check bool) "random walk recovered" true o.Chaos_run.recovered;
  Alcotest.(check bool) "not flagged" false o.Chaos_run.flagged;
  Alcotest.(check bool) "positive recovery time" true
    (o.Chaos_run.recovery_time > 0.0)

(* End-to-end seed determinism: the whole sim chaos run — fault
   schedule, digest, grants, recovery instant — replays bit-for-bit. *)
let test_sim_replay_deterministic () =
  let run () =
    Chaos_run.run_sim ~protocol:"binsearch" ~n:6 ~seed:11
      ~spec:"partition:0-2|3-5@20-60+dup:0.1@10-70" ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "digest replays" a.Chaos_run.digest b.Chaos_run.digest;
  Alcotest.(check int) "grants replay" a.Chaos_run.grants b.Chaos_run.grants;
  Alcotest.(check (float 1e-9)) "duration replays" a.Chaos_run.duration
    b.Chaos_run.duration;
  Alcotest.(check bool) "recovery verdict replays" a.Chaos_run.recovered
    b.Chaos_run.recovered

let () =
  Alcotest.run "chaos"
    [
      ( "scenario",
        [
          Alcotest.test_case "examples parse" `Quick test_scenario_examples;
          Alcotest.test_case "malformed rejected" `Quick test_scenario_errors;
          Alcotest.test_case "node ids validated" `Quick test_scenario_validate;
          Alcotest.test_case "windows and clear time" `Quick
            test_scenario_windows;
        ] );
      ( "injector",
        [
          QCheck_alcotest.to_alcotest test_injector_replay;
          QCheck_alcotest.to_alcotest test_injector_interleaving;
          Alcotest.test_case "corruption deterministic" `Quick
            test_corrupt_payload_deterministic;
        ] );
      ( "decoder-resync",
        [ QCheck_alcotest.to_alcotest test_decoder_resync_fuzz ] );
      ( "monitor",
        [
          Alcotest.test_case "stabilization accounting" `Quick test_monitor;
          Alcotest.test_case "invalid create" `Quick test_monitor_invalid;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "churn flags the ring" `Quick
            test_sim_churn_ring_flagged;
          Alcotest.test_case "random walk self-stabilizes" `Quick
            test_sim_churn_random_walk_recovers;
          Alcotest.test_case "sim replay deterministic" `Quick
            test_sim_replay_deterministic;
        ] );
    ]
