(* Behavioural tests for every executable protocol: the complexity
   claims (Lemmas 4-6, Theorems 2-3), message accounting, fault
   tolerance, and cross-protocol liveness properties. *)

open Tr_sim

let log2 x = log x /. log 2.0

let run_with (module P : Node_intf.PROTOCOL) ?(n = 32) ?(seed = 1)
    ?(workload = Workload.Nothing) ?(network = Network.default) ?(trace = false)
    ?(crashes = []) ~stop () =
  let config =
    { Engine.n; seed; network; workload; trace; trace_window = None; crashes;
      chaos = None }
  in
  Tokenring.Runner.run (module P) { config with trace } ~stop

let poisson mean = Workload.Global_poisson { mean_interarrival = mean }

let serves o = Metrics.serves o.Tokenring.Runner.metrics
let mean_resp o = Tr_stats.Summary.mean (Metrics.responsiveness o.Tokenring.Runner.metrics)
let max_wait o = Tr_stats.Summary.max (Metrics.waiting o.Tokenring.Runner.metrics)

(* Worst-case single-request probe at an explicit node. *)
let single_request (module P : Node_intf.PROTOCOL) ~n ~node =
  let at = (3.0 *. float_of_int n) +. 0.25 in
  run_with (module P) ~n ~workload:(Workload.Script [ (at, node) ])
    ~stop:(Engine.First_of [ Engine.After_serves 1; Engine.At_time (at +. (20.0 *. float_of_int n)) ])
    ()

(* ---------------- ring ---------------- *)

let test_ring_wait_equals_distance () =
  (* The token moves one hop per unit; a request waits exactly the ring
     distance from the token's position at request time. With request at
     t = 96.25 on a 32-ring, the token was delivered to node (96 mod 32)
     = node 0 at t=96; a request at node 10 waits 10 - 0.25 hops. *)
  let o = single_request Tr_proto.Ring.protocol ~n:32 ~node:10 in
  Alcotest.(check int) "served" 1 (serves o);
  Alcotest.(check (float 1e-6)) "distance wait" 9.75 (max_wait o)

let test_ring_linear_scaling () =
  let worst n =
    List.fold_left
      (fun acc node -> Stdlib.max acc (max_wait (single_request Tr_proto.Ring.protocol ~n ~node)))
      0.0
      [ 1; n / 2; n - 1 ]
  in
  let w8 = worst 8 and w64 = worst 64 in
  Alcotest.(check bool) "linear growth" true (w64 > 5.0 *. w8)

let test_ring_no_control_messages () =
  let o =
    run_with Tr_proto.Ring.protocol ~workload:(poisson 5.0)
      ~stop:(Engine.After_serves 100) ()
  in
  Alcotest.(check int) "pure token protocol" 0
    (Metrics.control_messages o.Tokenring.Runner.metrics)

let test_ring_possession_balance () =
  let o =
    run_with Tr_proto.Ring.protocol ~workload:(poisson 5.0)
      ~stop:(Engine.After_token_messages 3200) ()
  in
  Alcotest.(check bool) "imbalance ~ 1" true
    (Metrics.possession_imbalance o.Tokenring.Runner.metrics < 1.1)

(* ---------------- binsearch ---------------- *)

let test_binsearch_log_wait () =
  List.iter
    (fun n ->
      let worst =
        List.fold_left
          (fun acc node ->
            Stdlib.max acc
              (max_wait (single_request Tr_proto.Binsearch.protocol ~n ~node)))
          0.0
          [ 1; n / 2; n - 1 ]
      in
      let bound = 4.0 *. log2 (float_of_int n) in
      if worst > bound then
        Alcotest.failf "n=%d: worst wait %.1f exceeds 4 log2 n = %.1f" n worst
          bound)
    [ 16; 64; 256 ]

let test_binsearch_forwards_logarithmic () =
  List.iter
    (fun n ->
      let o = single_request Tr_proto.Binsearch.protocol ~n ~node:(n / 2) in
      let forwards = Metrics.search_forwards o.Tokenring.Runner.metrics in
      let bound = int_of_float (log2 (float_of_int n)) + 2 in
      if forwards > bound then
        Alcotest.failf "n=%d: %d forwards > %d" n forwards bound)
    [ 16; 64; 256 ]

let test_binsearch_beats_ring_under_load () =
  let run p =
    mean_resp
      (run_with p ~n:128 ~workload:(poisson 10.0)
         ~stop:(Engine.After_serves 800) ())
  in
  let ring = run Tr_proto.Ring.protocol in
  let bin = run Tr_proto.Binsearch.protocol in
  Alcotest.(check bool) "binsearch faster" true (bin < ring);
  Alcotest.(check bool) "binsearch bounded by ~log n" true
    (bin < 2.0 *. log2 128.0)

let test_binsearch_trap_fifo () =
  (* Two requests from distinct far nodes while the token is pinned far
     away; the earlier requester must be served first. *)
  let o =
    run_with Tr_proto.Binsearch.protocol ~n:64 ~trace:true
      ~workload:(Workload.Script [ (100.2, 40); (100.4, 45) ])
      ~stop:(Engine.After_serves 2) ()
  in
  let served_order =
    List.filter_map
      (fun { Trace.event; _ } ->
        match event with Trace.Served { node; _ } -> Some node | _ -> None)
      (Trace.events o.Tokenring.Runner.trace)
  in
  Alcotest.(check (list int)) "FIFO service" [ 40; 45 ] served_order

let test_binsearch_all_requests_served () =
  (* Liveness under sustained load: everything injected gets served. *)
  let o =
    run_with Tr_proto.Binsearch.protocol ~n:32 ~workload:(poisson 3.0)
      ~stop:(Engine.After_serves 500) ()
  in
  Alcotest.(check bool) "served target reached" true (serves o >= 500)

let prop_binsearch_liveness_random_seeds =
  QCheck.Test.make ~name:"binsearch liveness across seeds/loads" ~count:25
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, mean) ->
      let o =
        run_with Tr_proto.Binsearch.protocol ~n:24 ~seed
          ~workload:(poisson (float_of_int mean))
          ~stop:
            (Engine.First_of
               [ Engine.After_serves 60; Engine.At_time 100000.0 ])
          ()
      in
      serves o >= 60)

let prop_binsearch_deterministic =
  QCheck.Test.make ~name:"identical seeds give identical runs" ~count:10
    QCheck.small_int (fun seed ->
      let run () =
        let o =
          run_with Tr_proto.Binsearch.protocol ~n:16 ~seed
            ~workload:(poisson 4.0) ~stop:(Engine.After_serves 100) ()
        in
        ( o.Tokenring.Runner.duration,
          Metrics.token_messages o.Tokenring.Runner.metrics,
          Metrics.control_messages o.Tokenring.Runner.metrics )
      in
      run () = run ())

let test_binsearch_state_introspection () =
  let module P = (val Tr_proto.Binsearch.make ~throttle:true ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:16 ~seed:0) with
      (* Pin the token far away, then request: the searching flag and
         remote traps become observable. *)
      workload = Workload.Script [ (32.2, 3) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.At_time 34.0);
  Alcotest.(check bool) "requester flagged searching" true
    (Tr_proto.Binsearch.is_searching (E.state t 3));
  let trapped_somewhere =
    List.exists
      (fun i -> List.mem 3 (Tr_proto.Binsearch.trap_queue (E.state t i)))
      (List.init 16 (fun i -> i))
  in
  Alcotest.(check bool) "a trap for the requester exists" true trapped_somewhere;
  Alcotest.(check bool) "stamps advanced" true
    (Tr_proto.Binsearch.last_stamp (E.state t 0) > 0)

(* ---------------- throttle / directed / seq-search ---------------- *)

let test_throttle_fewer_messages () =
  (* Hammer one node with bursts so unthrottled search spams. *)
  let workload = Workload.Hotspot { mean_interarrival = 1.0; hot = 7; bias = 0.9 } in
  let run p =
    Metrics.control_messages
      (run_with p ~n:64 ~workload ~stop:(Engine.After_serves 400) ())
        .Tokenring.Runner.metrics
  in
  let plain = run Tr_proto.Binsearch.protocol in
  let throttled = run Tr_proto.Binsearch.protocol_throttled in
  Alcotest.(check bool) "throttling reduces gimmes" true (throttled < plain)

let test_directed_doubles_messages () =
  let run p =
    let o =
      run_with p ~n:64 ~workload:(poisson 20.0) ~stop:(Engine.After_serves 300) ()
    in
    float_of_int (Metrics.control_messages o.Tokenring.Runner.metrics)
    /. float_of_int (serves o)
  in
  let delegated = run Tr_proto.Binsearch.protocol in
  let directed = run Tr_proto.Directed.protocol in
  Alcotest.(check bool) "directed costs more" true (directed > delegated);
  Alcotest.(check bool) "but within ~3x" true (directed < 3.5 *. delegated)

let test_seq_search_linear_messages () =
  let o =
    run_with Tr_proto.Seq_search.protocol ~n:64 ~workload:(poisson 20.0)
      ~stop:(Engine.After_serves 200) ()
  in
  let per_serve =
    float_of_int (Metrics.control_messages o.Tokenring.Runner.metrics)
    /. float_of_int (serves o)
  in
  (* Sequential search burns ~n messages per request. *)
  Alcotest.(check bool) "Θ(n) messages" true (per_serve > 20.0)

let test_seq_search_still_serves () =
  let o =
    run_with Tr_proto.Seq_search.protocol ~n:16 ~workload:(poisson 8.0)
      ~stop:(Engine.After_serves 100) ()
  in
  Alcotest.(check bool) "liveness" true (serves o >= 100)

(* ---------------- cleanup variants ---------------- *)

let test_gc_rotation_serves_and_helps () =
  let run p =
    let o =
      run_with p ~n:64 ~seed:5 ~workload:(poisson 10.0)
        ~stop:(Engine.After_serves 500) ()
    in
    (serves o, Metrics.token_messages o.Tokenring.Runner.metrics)
  in
  let s_plain, _ = run Tr_proto.Binsearch.protocol in
  let s_gc, _ = run Tr_proto.Cleanup.protocol_rotation in
  Alcotest.(check bool) "plain liveness" true (s_plain >= 500);
  Alcotest.(check bool) "gc liveness" true (s_gc >= 500)

let test_gc_rotation_fewer_stale_loans () =
  (* Stale traps cause loans to nodes with nothing pending. Count loans
     via possessions: each wasted loan adds 2 possessions. Under bursty
     traffic the collector should not do worse than the base. *)
  let run p =
    let o =
      run_with p ~n:64 ~seed:5
        ~workload:(Workload.Burst { period = 30.0; size = 6 })
        ~stop:(Engine.After_serves 300) ()
    in
    Metrics.total_possessions o.Tokenring.Runner.metrics
  in
  let plain = run Tr_proto.Binsearch.protocol in
  let collected = run Tr_proto.Cleanup.protocol_rotation in
  Alcotest.(check bool) "not more wasted possessions" true
    (collected <= plain + (plain / 10))

let test_gc_inverse_serves () =
  let o =
    run_with Tr_proto.Cleanup.protocol_inverse ~n:32 ~workload:(poisson 10.0)
      ~stop:(Engine.After_serves 300) ()
  in
  Alcotest.(check bool) "liveness" true (serves o >= 300)

(* ---------------- adaptive ---------------- *)

let test_adaptive_matches_binsearch_under_load () =
  let run p =
    mean_resp
      (run_with p ~n:64 ~workload:(poisson 5.0) ~stop:(Engine.After_serves 400) ())
  in
  let bin = run Tr_proto.Binsearch.protocol in
  let ad = run Tr_proto.Adaptive.protocol in
  Alcotest.(check (float 0.5)) "same hot-path behaviour" bin ad

let test_adaptive_saves_idle_messages () =
  let run p =
    let o =
      run_with p ~n:64
        ~workload:(poisson 400.0)
        ~stop:(Engine.First_of [ Engine.After_serves 60; Engine.At_time 50000.0 ])
        ()
    in
    ( Metrics.token_messages o.Tokenring.Runner.metrics,
      o.Tokenring.Runner.duration )
  in
  let ring_msgs, ring_t = run Tr_proto.Ring.protocol in
  let ad_msgs, ad_t = run Tr_proto.Adaptive.protocol in
  let ring_rate = float_of_int ring_msgs /. ring_t in
  let ad_rate = float_of_int ad_msgs /. ad_t in
  Alcotest.(check bool) "idle token traffic at least halved" true
    (ad_rate < 0.5 *. ring_rate)

let test_adaptive_responsiveness_still_good_when_idle () =
  let o =
    run_with Tr_proto.Adaptive.protocol ~n:64 ~workload:(poisson 400.0)
      ~stop:(Engine.First_of [ Engine.After_serves 50; Engine.At_time 80000.0 ])
      ()
  in
  Alcotest.(check bool) "bounded by ~2 log n + idle delay" true
    (mean_resp o < (2.0 *. log2 64.0) +. 8.0)

let test_adaptive_parks_state_visible () =
  let module P = (val Tr_proto.Adaptive.make ~idle_delay:6.0 ()) in
  let module E = Engine.Make (P) in
  let t = E.create (Engine.default_config ~n:8 ~seed:0) in
  (* With zero demand, after a full idle revolution some node is parked. *)
  E.run t ~stop:(Engine.At_time 40.0);
  let parked =
    List.exists (fun i -> Tr_proto.Adaptive.is_parked (E.state t i))
      (List.init 8 (fun i -> i))
  in
  Alcotest.(check bool) "token parked somewhere" true parked

(* ---------------- pushpull ---------------- *)

let test_pushpull_parks_token () =
  let o =
    run_with Tr_proto.Pushpull.protocol ~n:32 ~workload:(poisson 100.0)
      ~stop:(Engine.First_of [ Engine.After_serves 50; Engine.At_time 50000.0 ])
      ()
  in
  let per_serve =
    float_of_int (Metrics.token_messages o.Tokenring.Runner.metrics)
    /. float_of_int (serves o)
  in
  Alcotest.(check bool) "liveness" true (serves o >= 50);
  Alcotest.(check bool) "O(1) expensive messages per serve" true (per_serve < 5.0)

let test_pushpull_parked_immediately () =
  let module P = (val Tr_proto.Pushpull.make ()) in
  let module E = Engine.Make (P) in
  let t = E.create (Engine.default_config ~n:6 ~seed:0) in
  E.run t ~stop:(Engine.At_time 1.0);
  Alcotest.(check bool) "initial holder parks" true
    (Tr_proto.Pushpull.is_parked (E.state t 0))

let test_pushpull_under_load () =
  let o =
    run_with Tr_proto.Pushpull.protocol ~n:32 ~workload:(poisson 3.0)
      ~stop:(Engine.After_serves 300) ()
  in
  Alcotest.(check bool) "liveness under load" true (serves o >= 300)

(* ---------------- failure ---------------- *)

let test_failsafe_no_crash_baseline () =
  let o =
    run_with Tr_proto.Failure.protocol ~n:24 ~workload:(poisson 10.0)
      ~stop:(Engine.After_serves 200) ()
  in
  Alcotest.(check bool) "serves fine" true (serves o >= 200)

let test_failsafe_nonholder_crash () =
  (* Crash a node while the token is elsewhere: hop acknowledgements
     route around it, no regeneration needed. *)
  let module P = (val Tr_proto.Failure.make ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:12 ~seed:2) with
      workload = poisson 10.0;
      (* node 9 holds around t = 1.5*9 - 0.5; crash it while the token is
         far away (just after it passed, t = 14). *)
      crashes = [ (14.0, 9) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 150; Engine.At_time 50000.0 ]);
  Alcotest.(check bool) "service continues" true (Metrics.serves (E.metrics t) >= 150);
  let max_gen =
    List.fold_left
      (fun acc i ->
        if E.crashed t i then acc
        else Stdlib.max acc (Tr_proto.Failure.generation (E.state t i)))
      0
      (List.init 12 (fun i -> i))
  in
  Alcotest.(check int) "no regeneration needed" 1 max_gen

let test_failsafe_holder_crash_regenerates () =
  let module P = (val Tr_proto.Failure.make ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:12 ~seed:2) with
      workload = poisson 10.0;
      (* node 4 holds during [1.5*4 - 0.5, 1.5*4) = [5.5, 6). *)
      crashes = [ (5.7, 4) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 150; Engine.At_time 50000.0 ]);
  Alcotest.(check bool) "service recovers" true (Metrics.serves (E.metrics t) >= 150);
  let max_gen =
    List.fold_left
      (fun acc i ->
        if E.crashed t i then acc
        else Stdlib.max acc (Tr_proto.Failure.generation (E.state t i)))
      0
      (List.init 12 (fun i -> i))
  in
  Alcotest.(check bool) "token regenerated" true (max_gen >= 2)

let test_failsafe_two_crashes () =
  let module P = (val Tr_proto.Failure.make ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:16 ~seed:4) with
      workload = poisson 8.0;
      crashes = [ (5.7, 4); (200.0, 10) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 120; Engine.At_time 80000.0 ]);
  Alcotest.(check bool) "survives two failures" true (Metrics.serves (E.metrics t) >= 120)

(* ---------------- failsafe binsearch ---------------- *)

let test_failsafe_search_baseline () =
  let o =
    run_with Tr_proto.Failsafe_search.protocol ~n:24 ~workload:(poisson 10.0)
      ~stop:(Engine.First_of [ Engine.After_serves 200; Engine.At_time 80000.0 ])
      ()
  in
  Alcotest.(check bool) "serves without crashes" true (serves o >= 200)

let test_failsafe_search_still_logarithmic () =
  (* Hardening must not destroy the headline property: light-load
     responsiveness stays well under the ring's N/2. *)
  let o =
    run_with Tr_proto.Failsafe_search.protocol ~n:64 ~workload:(poisson 100.0)
      ~stop:(Engine.First_of [ Engine.After_serves 100; Engine.At_time 80000.0 ])
      ()
  in
  (* Hops cost 1 + 0.5 hold, so the scale stretches by 1.5x; still far
     from the ring's ~48. *)
  Alcotest.(check bool) "responsiveness ~ log n, not ~ n/2" true
    (mean_resp o < 20.0)

let test_failsafe_search_holder_crash () =
  let module P = (val Tr_proto.Failsafe_search.make ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:12 ~seed:6) with
      workload = poisson 10.0;
      (* Node 0 holds [0, 0.5); node k is delivered the token at 1.5k and
         holds [1.5k, 1.5k + 0.5). Crash node 4 inside its hold window —
         after it has acknowledged receipt — so the token is genuinely
         lost (an in-flight loss would be masked by the Ack machinery). *)
      crashes = [ (6.2, 4) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 150; Engine.At_time 80000.0 ]);
  Alcotest.(check bool) "service recovers" true (Metrics.serves (E.metrics t) >= 150);
  let max_gen =
    List.fold_left
      (fun acc i ->
        if E.crashed t i then acc
        else Stdlib.max acc (Tr_proto.Failsafe_search.generation (E.state t i)))
      0
      (List.init 12 (fun i -> i))
  in
  Alcotest.(check bool) "token regenerated" true (max_gen >= 2)

let test_failsafe_search_inflight_loss_masked () =
  (* Crash node 4 just BEFORE the token reaches it: the delivery is
     dropped, the predecessor's missing Ack re-routes around the corpse,
     and no regeneration is ever needed (generation stays 1). *)
  let module P = (val Tr_proto.Failsafe_search.make ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:12 ~seed:6) with
      workload = poisson 10.0;
      crashes = [ (5.7, 4) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 150; Engine.At_time 80000.0 ]);
  Alcotest.(check bool) "service continues" true (Metrics.serves (E.metrics t) >= 150);
  let max_gen =
    List.fold_left
      (fun acc i ->
        if E.crashed t i then acc
        else Stdlib.max acc (Tr_proto.Failsafe_search.generation (E.state t i)))
      0
      (List.init 12 (fun i -> i))
  in
  Alcotest.(check int) "acks recovered it without regeneration" 1 max_gen

let test_failsafe_search_borrower_crash () =
  (* Crash a node that is about to be served via a loan: schedule its
     request, then kill it while the loan is in flight / in use. The
     lender's loan timer must reissue the token and service continue. *)
  let module P = (val Tr_proto.Failsafe_search.make ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:16 ~seed:3) with
      workload =
        Workload.Script
          (List.init 40 (fun i -> (20.0 +. (5.0 *. float_of_int i), (i * 7) mod 16)));
      (* Node 9 requests at some point; crash it shortly after one of its
         requests so a loan can be lost. *)
      crashes = [ (62.3, 9) ];
    }
  in
  let t = E.create config in
  E.run t
    ~stop:(Engine.First_of [ Engine.After_serves 30; Engine.At_time 80000.0 ]);
  (* All requests at live nodes get served; node 9's own post-crash
     requests are never injected. *)
  Alcotest.(check bool) "service continues past the lost loan" true
    (Metrics.serves (E.metrics t) >= 30)

(* ---------------- tree ---------------- *)

let test_tree_serves () =
  let o =
    run_with Tr_proto.Tree.protocol ~n:31 ~workload:(poisson 5.0)
      ~stop:(Engine.After_serves 300) ()
  in
  Alcotest.(check bool) "liveness" true (serves o >= 300)

let test_tree_message_bound () =
  let o =
    run_with Tr_proto.Tree.protocol ~n:63 ~workload:(poisson 30.0)
      ~stop:(Engine.After_serves 200) ()
  in
  let m = o.Tokenring.Runner.metrics in
  let msgs_per_serve =
    float_of_int (Metrics.token_messages m + Metrics.control_messages m)
    /. float_of_int (serves o)
  in
  (* Raymond's bound: ~4 log n messages per CS on a balanced tree. *)
  Alcotest.(check bool) "O(log n) messages" true
    (msgs_per_serve < 4.0 *. log2 63.0)

let test_tree_concentrates_load () =
  let run p =
    let o =
      run_with p ~n:63 ~seed:3 ~workload:(poisson 5.0)
        ~stop:(Engine.After_serves 400) ()
    in
    Metrics.possession_imbalance o.Tokenring.Runner.metrics
  in
  let tree = run Tr_proto.Tree.protocol in
  let ring = run Tr_proto.Ring.protocol in
  Alcotest.(check bool) "tree concentrates possessions" true (tree > 2.0 *. ring)

let test_tree_single_request () =
  let o = single_request Tr_proto.Tree.protocol ~n:31 ~node:30 in
  Alcotest.(check int) "served" 1 (serves o);
  (* Tree diameter is 2 log n; waiting should be well under a ring trip. *)
  Alcotest.(check bool) "short wait" true (max_wait o < 31.0)

(* ---------------- suzuki-kasami ---------------- *)

let test_sk_liveness () =
  let o =
    run_with Tr_proto.Suzuki_kasami.protocol ~n:16 ~workload:(poisson 5.0)
      ~stop:(Engine.After_serves 300) ()
  in
  Alcotest.(check bool) "liveness" true (serves o >= 300)

let test_sk_broadcast_cost () =
  let o =
    run_with Tr_proto.Suzuki_kasami.protocol ~n:32 ~workload:(poisson 20.0)
      ~stop:(Engine.After_serves 200) ()
  in
  let per_serve =
    float_of_int (Metrics.control_messages o.Tokenring.Runner.metrics)
    /. float_of_int (serves o)
  in
  (* Each request broadcasts to n-1 = 31 nodes; coalescing when the
     holder serves its own requests can only lower it. *)
  Alcotest.(check bool) "~n-1 control messages per serve" true
    (per_serve > 20.0 && per_serve < 35.0)

let test_sk_parks_when_idle () =
  let o =
    run_with Tr_proto.Suzuki_kasami.protocol ~n:32
      ~workload:(poisson 200.0)
      ~stop:(Engine.First_of [ Engine.After_serves 40; Engine.At_time 50000.0 ])
      ()
  in
  let per_serve =
    float_of_int (Metrics.token_messages o.Tokenring.Runner.metrics)
    /. float_of_int (serves o)
  in
  Alcotest.(check bool) "at most ~1 token transfer per serve" true
    (per_serve <= 1.2)

let test_sk_fifo_grants () =
  (* Two far requests while the token is parked at node 0: they are
     granted in request order. *)
  let o =
    run_with Tr_proto.Suzuki_kasami.protocol ~n:16 ~trace:true
      ~workload:(Workload.Script [ (10.0, 7); (10.5, 12) ])
      ~stop:(Engine.After_serves 2) ()
  in
  let served_order =
    List.filter_map
      (fun { Trace.event; _ } ->
        match event with Trace.Served { node; _ } -> Some node | _ -> None)
      (Trace.events o.Tokenring.Runner.trace)
  in
  Alcotest.(check (list int)) "grant order" [ 7; 12 ] served_order

(* ---------------- heterogeneous links / fairness ---------------- *)

let test_ring_waiting_fairness () =
  let o =
    run_with Tr_proto.Ring.protocol ~n:32 ~workload:(poisson 5.0)
      ~stop:(Engine.After_serves 600) ()
  in
  (* The rotating token gives every node the same expected wait. *)
  Alcotest.(check bool) "Jain index ~ 1" true
    (Metrics.waiting_fairness o.Tokenring.Runner.metrics > 0.85)

let test_binsearch_on_heterogeneous_links () =
  (* One pathologically slow node (all its outgoing links take 5 units):
     the protocol must stay live and safe, just slower through that arc. *)
  let network =
    Network.create
      ~reliable_delay:
        (Network.Per_link (fun ~src ~dst:_ -> if src = 5 then 5.0 else 1.0))
      ~cheap_delay:
        (Network.Per_link (fun ~src ~dst:_ -> if src = 5 then 5.0 else 1.0))
      ()
  in
  let o =
    run_with Tr_proto.Binsearch.protocol ~n:16 ~network ~workload:(poisson 8.0)
      ~stop:(Engine.First_of [ Engine.After_serves 150; Engine.At_time 50000.0 ])
      ()
  in
  Alcotest.(check bool) "liveness through the slow node" true (serves o >= 150)

let test_tree_waiting_less_fair_than_ring () =
  (* Leaves of the Raymond tree wait longer than interior nodes under
     contention; the ring treats everyone alike. *)
  let run p =
    Metrics.waiting_fairness
      (run_with p ~n:31 ~seed:9 ~workload:(poisson 3.0)
         ~stop:(Engine.After_serves 600) ())
        .Tokenring.Runner.metrics
  in
  let ring = run Tr_proto.Ring.protocol in
  let tree = run Tr_proto.Tree.protocol in
  Alcotest.(check bool) "ring at least as fair" true (ring >= tree -. 0.05)

(* ---------------- membership ---------------- *)

let test_membership_defaults_to_ring () =
  let o =
    run_with Tr_proto.Membership.protocol ~n:16 ~workload:(poisson 8.0)
      ~stop:(Engine.After_serves 100) ()
  in
  Alcotest.(check bool) "liveness" true (serves o >= 100)

let test_membership_join () =
  (* Start with 4 members of 8; nodes 5 and 7 join at t=20/40. Requests
     at the joiners (scripted after their joins) must be served, and the
     token must visit them. *)
  let module P =
    (val Tr_proto.Membership.make ~initial_members:4
           ~joins:[ (5, 20.0); (7, 40.0) ] ())
  in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:8 ~seed:3) with
      workload = Workload.Script [ (60.0, 5); (62.0, 7); (64.0, 2) ];
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 3; Engine.At_time 500.0 ]);
  Alcotest.(check int) "all three served" 3 (Metrics.serves (E.metrics t));
  Alcotest.(check bool) "node 5 is a member" true
    (Tr_proto.Membership.is_member (E.state t 5));
  Alcotest.(check bool) "node 7 is a member" true
    (Tr_proto.Membership.is_member (E.state t 7));
  let visited =
    List.sort_uniq compare (List.map snd (Trace.token_possessions (E.trace t)))
  in
  Alcotest.(check bool) "token visited the joiners" true
    (List.mem 5 visited && List.mem 7 visited);
  Alcotest.(check bool) "dormant node 6 never visited" true
    (not (List.mem 6 visited))

let test_membership_leave () =
  (* Node 2 leaves at t=30; after the departure the token never visits
     it again and the remaining members keep being served. *)
  let module P = (val Tr_proto.Membership.make ~leaves:[ (2, 30.0) ] ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:6 ~seed:4) with
      workload = Workload.Global_poisson { mean_interarrival = 10.0 };
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 80; Engine.At_time 5000.0 ]);
  Alcotest.(check bool) "service continues" true (Metrics.serves (E.metrics t) >= 80);
  Alcotest.(check bool) "node 2 left" false
    (Tr_proto.Membership.is_member (E.state t 2));
  let late_visits_to_2 =
    List.filter
      (fun (time, node) -> node = 2 && time > 50.0)
      (Trace.token_possessions (E.trace t))
  in
  Alcotest.(check (list (pair (float 1e-9) int))) "no visits after leaving" []
    late_visits_to_2

let test_membership_churn () =
  (* Joins and leaves interleaved under load: nothing deadlocks and the
     serve stream keeps flowing. *)
  let module P =
    (val Tr_proto.Membership.make ~initial_members:6
           ~joins:[ (6, 15.0); (7, 35.0); (8, 55.0) ]
           ~leaves:[ (1, 25.0); (3, 45.0); (7, 90.0) ]
           ())
  in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:10 ~seed:5) with
      (* Steer requests to nodes that are members for the whole run. *)
      workload =
        Workload.Script
          (List.init 40 (fun i -> (10.0 +. (7.0 *. float_of_int i), [| 0; 2; 4; 5 |].(i mod 4))));
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 40; Engine.At_time 5000.0 ]);
  Alcotest.(check int) "everything served through churn" 40
    (Metrics.serves (E.metrics t));
  Alcotest.(check bool) "node 6 in" true (Tr_proto.Membership.is_member (E.state t 6));
  Alcotest.(check bool) "node 1 out" false (Tr_proto.Membership.is_member (E.state t 1));
  Alcotest.(check bool) "node 7 joined then left" false
    (Tr_proto.Membership.is_member (E.state t 7))

let test_membership_invalid_schedules () =
  let expect_invalid name make_fn =
    Alcotest.(check bool) name true
      (try
         let module P = (val (make_fn () : (module Node_intf.PROTOCOL
                                             with type state = Tr_proto.Membership.state
                                              and type msg = Tr_proto.Membership.msg))) in
         let module E = Engine.Make (P) in
         ignore (E.create (Engine.default_config ~n:6 ~seed:0));
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "contact cannot leave" (fun () ->
      Tr_proto.Membership.make ~leaves:[ (0, 5.0) ] ());
  expect_invalid "initial member cannot join" (fun () ->
      Tr_proto.Membership.make ~initial_members:4 ~joins:[ (2, 5.0) ] ());
  expect_invalid "contact must be member" (fun () ->
      Tr_proto.Membership.make ~initial_members:2 ~contact:5 ())

(* ---------------- cross-protocol properties ---------------- *)

let all_protocols =
  List.map
    (fun e -> (e.Tokenring.Registry.name, e.Tokenring.Registry.protocol))
    Tokenring.Registry.all

let test_every_protocol_serves_everything () =
  List.iter
    (fun (name, p) ->
      let o =
        run_with p ~n:16 ~seed:8 ~workload:(poisson 12.0)
          ~stop:(Engine.First_of [ Engine.After_serves 80; Engine.At_time 60000.0 ])
          ()
      in
      if serves o < 80 then
        Alcotest.failf "%s starved: only %d serves" name (serves o))
    all_protocols

let test_every_protocol_single_shot () =
  List.iter
    (fun (name, p) ->
      let o = single_request p ~n:16 ~node:9 in
      if serves o <> 1 then Alcotest.failf "%s failed to serve one request" name)
    all_protocols

let prop_membership_random_churn =
  QCheck.Test.make ~name:"membership survives random join/leave schedules"
    ~count:12
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let rng = Tr_sim.Rng.create seed in
      let n = 10 in
      let initial = 5 in
      (* Random joiners from the dormant pool, random leavers from the
         non-contact initial members, at staggered random times. *)
      let joins =
        List.filter (fun _ -> Tr_sim.Rng.bool rng) [ 5; 6; 7; 8; 9 ]
        |> List.mapi (fun i node -> (node, 15.0 +. (20.0 *. float_of_int i)))
      in
      ignore initial;
      let leaves =
        List.filter (fun _ -> Tr_sim.Rng.bool rng) [ 1; 2; 3 ]
        |> List.mapi (fun i node -> (node, 25.0 +. (30.0 *. float_of_int i)))
      in
      let module P =
        (val Tr_proto.Membership.make ~initial_members:5 ~joins ~leaves ())
      in
      let module E = Engine.Make (P) in
      (* Requests only at nodes that are members throughout: 0 and 4. *)
      let config =
        {
          (Engine.default_config ~n ~seed) with
          workload =
            Workload.Script
              (List.init 20 (fun i ->
                   (10.0 +. (8.0 *. float_of_int i), if i mod 2 = 0 then 0 else 4)));
        }
      in
      let t = E.create config in
      E.run t
        ~stop:(Engine.First_of [ Engine.After_serves 20; Engine.At_time 5000.0 ]);
      Metrics.serves (E.metrics t) >= 20)

let prop_metric_invariants =
  QCheck.Test.make ~name:"metric invariants across protocols and loads" ~count:10
    QCheck.(pair (int_range 1 500) (int_range 2 30))
    (fun (seed, mean) ->
      List.for_all
        (fun (_, p) ->
          let o =
            run_with p ~n:16 ~seed
              ~workload:(poisson (float_of_int mean))
              ~stop:
                (Engine.First_of
                   [ Engine.After_serves 50; Engine.At_time 40000.0 ])
              ()
          in
          let m = o.Tokenring.Runner.metrics in
          let resp = Metrics.responsiveness m in
          let wait = Metrics.waiting m in
          Tr_stats.Summary.min resp >= 0.0
          && Tr_stats.Summary.min wait >= 0.0
          && Metrics.serves m <= Metrics.serves m + Metrics.total_pending m
          && Metrics.cheap_messages m
             <= Metrics.token_messages m + Metrics.control_messages m
          && Metrics.total_possessions m >= 0)
        all_protocols)

let prop_every_protocol_random_burst =
  QCheck.Test.make ~name:"all protocols survive random bursts" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      List.for_all
        (fun (_, p) ->
          let o =
            run_with p ~n:16 ~seed
              ~workload:(Workload.Burst { period = 25.0; size = 5 })
              ~stop:
                (Engine.First_of
                   [ Engine.After_serves 40; Engine.At_time 50000.0 ])
              ()
          in
          serves o >= 40)
        all_protocols)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "proto"
    [
      ( "ring",
        [
          Alcotest.test_case "wait = distance" `Quick test_ring_wait_equals_distance;
          Alcotest.test_case "linear scaling" `Quick test_ring_linear_scaling;
          Alcotest.test_case "no control messages" `Quick test_ring_no_control_messages;
          Alcotest.test_case "possession balance" `Quick test_ring_possession_balance;
        ] );
      ( "binsearch",
        [
          Alcotest.test_case "log wait" `Quick test_binsearch_log_wait;
          Alcotest.test_case "log forwards (Lemma 6)" `Quick
            test_binsearch_forwards_logarithmic;
          Alcotest.test_case "beats ring under load" `Quick
            test_binsearch_beats_ring_under_load;
          Alcotest.test_case "trap FIFO (Theorem 2)" `Quick test_binsearch_trap_fifo;
          Alcotest.test_case "all served" `Quick test_binsearch_all_requests_served;
          Alcotest.test_case "state introspection" `Quick
            test_binsearch_state_introspection;
        ]
        @ qsuite [ prop_binsearch_liveness_random_seeds; prop_binsearch_deterministic ]
      );
      ( "variants",
        [
          Alcotest.test_case "throttle reduces messages" `Quick
            test_throttle_fewer_messages;
          Alcotest.test_case "directed ~2x messages" `Quick
            test_directed_doubles_messages;
          Alcotest.test_case "seq-search Θ(n) messages" `Quick
            test_seq_search_linear_messages;
          Alcotest.test_case "seq-search liveness" `Quick test_seq_search_still_serves;
        ] );
      ( "cleanup",
        [
          Alcotest.test_case "gc-rotation liveness" `Quick
            test_gc_rotation_serves_and_helps;
          Alcotest.test_case "gc-rotation fewer stale loans" `Quick
            test_gc_rotation_fewer_stale_loans;
          Alcotest.test_case "gc-inverse liveness" `Quick test_gc_inverse_serves;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "hot path unchanged" `Quick
            test_adaptive_matches_binsearch_under_load;
          Alcotest.test_case "idle savings" `Quick test_adaptive_saves_idle_messages;
          Alcotest.test_case "idle responsiveness" `Quick
            test_adaptive_responsiveness_still_good_when_idle;
          Alcotest.test_case "parked state visible" `Quick
            test_adaptive_parks_state_visible;
        ] );
      ( "pushpull",
        [
          Alcotest.test_case "parks token" `Quick test_pushpull_parks_token;
          Alcotest.test_case "parked immediately" `Quick
            test_pushpull_parked_immediately;
          Alcotest.test_case "under load" `Quick test_pushpull_under_load;
        ] );
      ( "failure",
        [
          Alcotest.test_case "no crash baseline" `Quick test_failsafe_no_crash_baseline;
          Alcotest.test_case "non-holder crash" `Quick test_failsafe_nonholder_crash;
          Alcotest.test_case "holder crash regenerates" `Quick
            test_failsafe_holder_crash_regenerates;
          Alcotest.test_case "two crashes" `Quick test_failsafe_two_crashes;
        ] );
      ( "failsafe-binsearch",
        [
          Alcotest.test_case "baseline" `Quick test_failsafe_search_baseline;
          Alcotest.test_case "still logarithmic" `Quick
            test_failsafe_search_still_logarithmic;
          Alcotest.test_case "holder crash" `Quick test_failsafe_search_holder_crash;
          Alcotest.test_case "in-flight loss masked" `Quick
            test_failsafe_search_inflight_loss_masked;
          Alcotest.test_case "borrower crash" `Quick
            test_failsafe_search_borrower_crash;
        ] );
      ( "tree",
        [
          Alcotest.test_case "liveness" `Quick test_tree_serves;
          Alcotest.test_case "message bound" `Quick test_tree_message_bound;
          Alcotest.test_case "concentrates load" `Quick test_tree_concentrates_load;
          Alcotest.test_case "single request" `Quick test_tree_single_request;
        ] );
      ( "suzuki-kasami",
        [
          Alcotest.test_case "liveness" `Quick test_sk_liveness;
          Alcotest.test_case "broadcast cost" `Quick test_sk_broadcast_cost;
          Alcotest.test_case "parks when idle" `Quick test_sk_parks_when_idle;
          Alcotest.test_case "fifo grants" `Quick test_sk_fifo_grants;
        ] );
      ( "fairness-links",
        [
          Alcotest.test_case "ring waiting fairness" `Quick
            test_ring_waiting_fairness;
          Alcotest.test_case "heterogeneous links" `Quick
            test_binsearch_on_heterogeneous_links;
          Alcotest.test_case "tree less fair" `Quick
            test_tree_waiting_less_fair_than_ring;
        ] );
      ( "membership",
        [
          Alcotest.test_case "defaults to ring" `Quick test_membership_defaults_to_ring;
          Alcotest.test_case "join" `Quick test_membership_join;
          Alcotest.test_case "leave" `Quick test_membership_leave;
          Alcotest.test_case "churn" `Quick test_membership_churn;
          Alcotest.test_case "invalid schedules" `Quick
            test_membership_invalid_schedules;
        ]
        @ qsuite [ prop_membership_random_churn ] );
      ( "cross-protocol",
        [
          Alcotest.test_case "everyone serves" `Quick
            test_every_protocol_serves_everything;
          Alcotest.test_case "single shot" `Quick test_every_protocol_single_shot;
        ]
        @ qsuite [ prop_every_protocol_random_burst; prop_metric_invariants ] );
    ]
