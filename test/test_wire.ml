(* Wire-layer tests: envelope round-trips for every protocol codec
   (qcheck), streaming-decoder chunking, and fuzz over truncated and
   garbage inputs — decoding must return [Error]/[Skip], never raise. *)

open Tr_sim
module Buf = Tr_wire.Buf
module Frame = Tr_wire.Frame
module Codec = Tr_wire.Codec
module Codecs = Tr_wire.Codecs

(* ---------------- generators ---------------- *)

let any_int =
  QCheck.Gen.oneof
    [
      QCheck.Gen.int_range (-1000) 1000;
      QCheck.Gen.oneofl
        [ min_int; min_int + 1; max_int; max_int - 1; 0; -1; 1 ];
      QCheck.Gen.map2
        (fun h l -> (h lsl 32) lxor l)
        (QCheck.Gen.int_range (-0x40000000) 0x3FFFFFFF)
        (QCheck.Gen.int_range 0 0xFFFFFFFF);
    ]

let small_nat = QCheck.Gen.int_range 0 512
let channel_gen = QCheck.Gen.oneofl [ Network.Reliable; Network.Cheap ]

let ring_gen =
  QCheck.Gen.map (fun stamp -> Tr_proto.Ring.Token { stamp }) any_int

let tree_gen = QCheck.Gen.oneofl [ Tr_proto.Tree.Token; Tr_proto.Tree.Request ]

let suzuki_gen =
  let open Tr_proto.Suzuki_kasami in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map2
        (fun requester seq -> Request { requester; seq })
        small_nat any_int;
      QCheck.Gen.map2
        (fun ln queue -> Token { ln = Array.of_list ln; queue })
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) any_int)
        (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) small_nat);
    ]

let seq_search_gen =
  let open Tr_proto.Seq_search in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun stamp -> Token { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Loan { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Return { stamp }) any_int;
      QCheck.Gen.map2
        (fun requester ttl -> Gimme { requester; ttl })
        small_nat any_int;
    ]

let binsearch_gen =
  let open Tr_proto.Binsearch in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun stamp -> Token { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Loan { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Return { stamp }) any_int;
      QCheck.Gen.map3
        (fun requester span stamp -> Gimme { requester; span; stamp })
        small_nat small_nat any_int;
    ]

let directed_gen =
  let open Tr_proto.Directed in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun stamp -> Token { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Loan { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Return { stamp }) any_int;
      QCheck.Gen.map (fun requester -> Probe { requester }) small_nat;
      QCheck.Gen.map (fun stamp -> Reply { stamp }) any_int;
    ]

let rotation_gen =
  let open Tr_proto.Cleanup in
  let satisfied = QCheck.Gen.list_size (QCheck.Gen.int_range 0 32) any_int in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map2
        (fun stamp s -> RToken { stamp; satisfied = Array.of_list s })
        any_int satisfied;
      QCheck.Gen.map2
        (fun stamp s -> RLoan { stamp; satisfied = Array.of_list s })
        any_int satisfied;
      QCheck.Gen.map2
        (fun stamp s -> RReturn { stamp; satisfied = Array.of_list s })
        any_int satisfied;
      QCheck.Gen.map3
        (fun requester (seq, span) stamp ->
          RGimme { requester; seq; span; stamp })
        small_nat
        (QCheck.Gen.pair any_int small_nat)
        any_int;
    ]

let inverse_gen =
  let open Tr_proto.Cleanup in
  let trail = QCheck.Gen.list_size (QCheck.Gen.int_range 0 32) small_nat in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun stamp -> IToken { stamp }) any_int;
      QCheck.Gen.map3
        (fun stamp requester trail -> ILoanVia { stamp; requester; trail })
        any_int small_nat trail;
      QCheck.Gen.map (fun stamp -> IReturn { stamp }) any_int;
      QCheck.Gen.map3
        (fun (requester, span) stamp trail ->
          IGimme { requester; span; stamp; trail })
        (QCheck.Gen.pair small_nat small_nat)
        any_int trail;
    ]

let adaptive_gen =
  let open Tr_proto.Adaptive in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map2
        (fun stamp idle_hops -> Token { stamp; idle_hops })
        any_int small_nat;
      QCheck.Gen.map (fun stamp -> Loan { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Return { stamp }) any_int;
      QCheck.Gen.map3
        (fun requester span stamp -> Gimme { requester; span; stamp })
        small_nat small_nat any_int;
    ]

let pushpull_gen =
  let open Tr_proto.Pushpull in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map (fun stamp -> Token { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Loan { stamp }) any_int;
      QCheck.Gen.map (fun stamp -> Return { stamp }) any_int;
      QCheck.Gen.map3
        (fun requester span stamp -> Gimme { requester; span; stamp })
        small_nat small_nat any_int;
      QCheck.Gen.map2 (fun holder ttl -> Probe { holder; ttl }) small_nat
        small_nat;
      QCheck.Gen.map (fun requester -> Want { requester }) small_nat;
    ]

let failure_gen =
  let open Tr_proto.Failure in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map2 (fun gen stamp -> Token { gen; stamp }) any_int any_int;
      QCheck.Gen.map2 (fun gen stamp -> Ack { gen; stamp }) any_int any_int;
      QCheck.Gen.map (fun initiator -> WhoHas { initiator }) small_nat;
      QCheck.Gen.map2 (fun gen stamp -> Status { gen; stamp }) any_int any_int;
      QCheck.Gen.map (fun gen -> Regenerate { gen }) any_int;
    ]

let failsafe_gen =
  let open Tr_proto.Failsafe_search in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map2 (fun gen stamp -> Token { gen; stamp }) any_int any_int;
      QCheck.Gen.map2 (fun gen stamp -> Ack { gen; stamp }) any_int any_int;
      QCheck.Gen.map2 (fun gen stamp -> Loan { gen; stamp }) any_int any_int;
      QCheck.Gen.map2 (fun gen stamp -> Return { gen; stamp }) any_int any_int;
      QCheck.Gen.map3
        (fun requester span stamp -> Gimme { requester; span; stamp })
        small_nat small_nat any_int;
      QCheck.Gen.map (fun initiator -> WhoHas { initiator }) small_nat;
      QCheck.Gen.map2 (fun gen stamp -> Status { gen; stamp }) any_int any_int;
      QCheck.Gen.map (fun gen -> Regenerate { gen }) any_int;
    ]

let membership_gen =
  let open Tr_proto.Membership in
  QCheck.Gen.oneof
    [
      QCheck.Gen.map3
        (fun stamp pred bypass -> Token { stamp; pred; bypass })
        any_int small_nat
        (QCheck.Gen.opt small_nat);
      QCheck.Gen.map (fun joiner -> JoinReq { joiner }) small_nat;
      QCheck.Gen.map (fun succ -> Welcome { succ }) small_nat;
      QCheck.Gen.map2
        (fun leaver new_succ -> Relink { leaver; new_succ })
        small_nat small_nat;
    ]

let random_walk_gen =
  QCheck.Gen.map2
    (fun gen serial -> Tr_proto.Random_walk.Token { gen; serial })
    any_int any_int

(* ---------------- round-trip property ---------------- *)

(* Encode a full envelope frame, push it through the streaming decoder
   in random-sized chunks, decode the payload, compare structurally. *)
let roundtrip_test (type m) name (codec : m Codec.t) (msg_gen : m QCheck.Gen.t)
    =
  let case_gen =
    QCheck.Gen.quad (QCheck.Gen.int_range 0 10_000) channel_gen msg_gen
      (QCheck.Gen.int_range 1 64)
  in
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: envelope round-trips" name)
    ~count:300 (QCheck.make case_gen)
    (fun (src, channel, msg, chunk) ->
      let frame = Codec.encode_envelope codec ~src ~channel msg in
      let dec = Frame.Decoder.create () in
      let len = String.length frame in
      let pos = ref 0 in
      let result = ref None in
      while !pos < len do
        let k = Stdlib.min chunk (len - !pos) in
        Frame.Decoder.feed dec (String.sub frame !pos k);
        pos := !pos + k;
        match Frame.Decoder.next dec with
        | Frame.Decoder.Frame payload -> result := Some payload
        | Frame.Decoder.Await | Frame.Decoder.Skip _ -> ()
      done;
      match !result with
      | None -> false
      | Some payload -> (
          match Codec.decode_envelope codec payload with
          | Ok e -> e.Codec.src = src && e.Codec.channel = channel && e.Codec.msg = msg
          | Error _ -> false))

let roundtrip_tests =
  [
    roundtrip_test "ring" Codecs.ring ring_gen;
    roundtrip_test "tree" Codecs.tree tree_gen;
    roundtrip_test "suzuki-kasami" Codecs.suzuki_kasami suzuki_gen;
    roundtrip_test "seq-search" Codecs.seq_search seq_search_gen;
    roundtrip_test "binsearch" Codecs.binsearch binsearch_gen;
    roundtrip_test "directed" Codecs.directed directed_gen;
    roundtrip_test "binsearch-gc-rotation" Codecs.cleanup_rotation rotation_gen;
    roundtrip_test "binsearch-gc-inverse" Codecs.cleanup_inverse inverse_gen;
    roundtrip_test "adaptive" Codecs.adaptive adaptive_gen;
    roundtrip_test "pushpull" Codecs.pushpull pushpull_gen;
    roundtrip_test "failure" Codecs.failure failure_gen;
    roundtrip_test "failsafe-search" Codecs.failsafe_search failsafe_gen;
    roundtrip_test "membership" Codecs.membership membership_gen;
    roundtrip_test "random-walk" Codecs.random_walk random_walk_gen;
  ]

(* ---------------- fuzz: decoding never raises ---------------- *)

let drain_all dec =
  let frames = ref 0 and skips = ref 0 in
  let rec go () =
    match Frame.Decoder.next dec with
    | Frame.Decoder.Frame _ ->
        incr frames;
        go ()
    | Frame.Decoder.Skip _ ->
        incr skips;
        go ()
    | Frame.Decoder.Await -> ()
  in
  go ();
  (!frames, !skips)

let prop_truncated_never_raises =
  QCheck.Test.make ~name:"truncated frames never raise" ~count:500
    (QCheck.make
       (QCheck.Gen.pair (QCheck.Gen.int_range 0 10_000) any_int))
    (fun (src, stamp) ->
      let frame =
        Codec.encode_envelope Codecs.ring ~src ~channel:Network.Reliable
          (Tr_proto.Ring.Token { stamp })
      in
      (* Every strict prefix must decode to Await (or a clean skip) and
         an envelope decode of a truncated payload must return Error. *)
      let ok = ref true in
      for cut = 0 to String.length frame - 1 do
        let dec = Frame.Decoder.create () in
        Frame.Decoder.feed dec (String.sub frame 0 cut);
        let frames, _ = drain_all dec in
        if frames <> 0 then ok := false
      done;
      (match
         Codec.decode_envelope Codecs.ring
           (String.sub frame 0 (Stdlib.max 0 (String.length frame - 3)))
       with
      | Ok _ -> ok := false
      | Error _ -> ());
      !ok)

let prop_garbage_never_raises =
  QCheck.Test.make ~name:"garbage bytes never raise" ~count:500
    (QCheck.make
       (QCheck.Gen.string_size ~gen:QCheck.Gen.char
          (QCheck.Gen.int_range 0 200)))
    (fun junk ->
      let dec = Frame.Decoder.create () in
      Frame.Decoder.feed dec junk;
      let _ = drain_all dec in
      (* Envelope decode over raw junk must be a clean [Error]. *)
      (match Codec.decode_envelope Codecs.binsearch junk with
      | Ok _ -> true (* vanishingly unlikely, but not a failure mode *)
      | Error _ -> true))

let prop_resync_recovers =
  QCheck.Test.make ~name:"decoder resyncs after garbage between frames"
    ~count:300
    (QCheck.make
       (QCheck.Gen.pair
          (QCheck.Gen.string_size ~gen:QCheck.Gen.char
             (QCheck.Gen.int_range 1 50))
          (QCheck.Gen.pair any_int any_int)))
    (fun (junk, (s1, s2)) ->
      let f1 =
        Codec.encode_envelope Codecs.ring ~src:1 ~channel:Network.Reliable
          (Tr_proto.Ring.Token { stamp = s1 })
      in
      let f2 =
        Codec.encode_envelope Codecs.ring ~src:2 ~channel:Network.Reliable
          (Tr_proto.Ring.Token { stamp = s2 })
      in
      let dec = Frame.Decoder.create () in
      Frame.Decoder.feed dec (f1 ^ junk ^ f2);
      let payloads = ref [] in
      let rec go () =
        match Frame.Decoder.next dec with
        | Frame.Decoder.Frame p ->
            payloads := p :: !payloads;
            go ()
        | Frame.Decoder.Skip _ -> go ()
        | Frame.Decoder.Await -> ()
      in
      go ();
      let decoded =
        List.rev_map
          (fun p ->
            match Codec.decode_envelope Codecs.ring p with
            | Ok e -> Some e.Codec.msg
            | Error _ -> None)
          !payloads
      in
      (* The first frame always survives; the second must be recovered
         whenever the junk didn't happen to parse as a frame that
         swallowed it. Either way nothing raises and the first decoded
         payload is intact. *)
      match decoded with
      | Some (Tr_proto.Ring.Token { stamp }) :: _ -> stamp = s1
      | _ -> false)

(* ---------------- adversarial chunking ---------------- *)

(* A multi-frame stream must decode to the same frame sequence no matter
   how the transport fragments it: byte-at-a-time feeds, splits that
   straddle the length varint, and coalesced chunks carrying several
   frames at once all exercise different decoder resume points. Views
   are borrowed (valid only until the next feed), so each feed's yield
   is materialised before the next chunk goes in. *)
let drain_views dec acc =
  let rec go acc =
    match Frame.Decoder.next_view dec with
    | Frame.Decoder.View v -> go (Frame.view_to_string v :: acc)
    | Frame.Decoder.Skip_view _ -> go acc
    | Frame.Decoder.Await_view -> acc
  in
  go acc

let chunk_plan_gen stream_len =
  (* Cut positions characterise the chunking, whatever the strategy:
     0 cuts = the whole stream coalesced into one chunk. *)
  let open QCheck.Gen in
  if stream_len <= 1 then return []
  else
    oneof
      [
        (* one-byte feeds: cut everywhere *)
        return (List.init (stream_len - 1) (fun i -> i + 1));
        (* coalesced: a handful of cuts, so chunks span whole frames *)
        ( list_size (int_range 0 3) (int_range 1 (stream_len - 1))
        >|= fun cuts -> List.sort_uniq compare cuts );
        (* fine-grained: many cuts, guaranteed to straddle the 2-byte
           header and the length varint of most frames *)
        ( list_size (int_range stream_len (2 * stream_len))
            (int_range 1 (stream_len - 1))
        >|= fun cuts -> List.sort_uniq compare cuts );
      ]

let prop_chunking_invariance =
  let case_gen =
    let open QCheck.Gen in
    list_size (int_range 1 8)
      (triple (int_range 0 10_000) channel_gen binsearch_gen)
    >>= fun msgs ->
    let frames =
      List.map
        (fun (src, channel, msg) ->
          Codec.encode_envelope Codecs.binsearch ~src ~channel msg)
        msgs
    in
    let stream = String.concat "" frames in
    chunk_plan_gen (String.length stream) >|= fun cuts -> (frames, stream, cuts)
  in
  QCheck.Test.make ~name:"chunking does not change the decoded stream"
    ~count:400 (QCheck.make case_gen)
    (fun (frames, stream, cuts) ->
      (* Reference: each frame fed whole, one at a time. *)
      let reference =
        let dec = Frame.Decoder.create () in
        List.concat_map
          (fun f ->
            Frame.Decoder.feed dec f;
            List.rev (drain_views dec []))
          frames
      in
      (* Adversarial: the same bytes under the generated chunking. *)
      let adversarial =
        let dec = Frame.Decoder.create () in
        let bounds = cuts @ [ String.length stream ] in
        let got, _ =
          List.fold_left
            (fun (acc, prev) cut ->
              Frame.Decoder.feed dec (String.sub stream prev (cut - prev));
              (drain_views dec acc, cut))
            ([], 0) bounds
        in
        List.rev got
      in
      reference = adversarial
      && List.length reference = List.length frames)

(* ---------------- directed cases ---------------- *)

let test_wrong_codec_key () =
  let frame =
    Codec.encode_envelope Codecs.ring ~src:0 ~channel:Network.Reliable
      (Tr_proto.Ring.Token { stamp = 7 })
  in
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec frame;
  match Frame.Decoder.next dec with
  | Frame.Decoder.Frame payload -> (
      match Codec.decode_envelope Codecs.tree payload with
      | Ok _ -> Alcotest.fail "tree codec accepted a ring frame"
      | Error _ -> ())
  | _ -> Alcotest.fail "expected a complete frame"

let test_trailing_bytes_rejected () =
  let open Tr_proto.Ring in
  let b = Buffer.create 32 in
  Codecs.ring.Codec.encode_msg b (Token { stamp = 3 });
  (* Build an envelope payload by hand with junk appended. *)
  let payload = Buffer.create 32 in
  Tr_wire.Buf.Enc.uvarint payload Codecs.ring.Codec.key;
  Tr_wire.Buf.Enc.byte payload Codecs.ring.Codec.version;
  Tr_wire.Buf.Enc.uvarint payload 0;
  Tr_wire.Buf.Enc.byte payload 0;
  Buffer.add_buffer payload b;
  Buffer.add_string payload "junk";
  match Codec.decode_envelope Codecs.ring (Buffer.contents payload) with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error _ -> ()

let test_oversized_length_is_skip () =
  (* magic, version, then a length far beyond max_payload. *)
  let b = Buffer.create 16 in
  Buffer.add_char b (Char.chr Frame.magic);
  Buffer.add_char b (Char.chr Frame.version);
  Tr_wire.Buf.Enc.uvarint b (Frame.max_payload + 1);
  Buffer.add_string b "xxxx";
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec (Buffer.contents b);
  let _frames, skips = drain_all dec in
  Alcotest.(check bool) "skipped" true (skips > 0);
  Alcotest.(check bool)
    "skip counter advanced" true
    (Frame.Decoder.skipped_events dec > 0)

let test_registry_complete () =
  Alcotest.(check int) "15 packed protocols" 15 (List.length Codecs.all);
  List.iter
    (fun name ->
      match Codecs.find name with
      | Some _ -> ()
      | None -> Alcotest.failf "registry missing %s" name)
    [
      "ring"; "tree"; "suzuki-kasami"; "seq-search"; "binsearch";
      "binsearch-throttle"; "directed"; "binsearch-gc-rotation";
      "binsearch-gc-inverse"; "adaptive"; "pushpull"; "ring-failsafe";
      "binsearch-failsafe"; "ring-membership"; "random-walk";
    ]

let test_zigzag_extremes () =
  List.iter
    (fun v ->
      let b = Buffer.create 16 in
      Buf.Enc.int b v;
      let d = Buf.Dec.of_string (Buffer.contents b) in
      match Buf.Dec.int d with
      | Ok got -> Alcotest.(check int) (string_of_int v) v got
      | Error _ -> Alcotest.failf "decode failed for %d" v)
    [ 0; 1; -1; 63; -64; max_int; min_int; min_int + 1; max_int - 1 ]

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "wire"
    [
      ("roundtrip", qsuite roundtrip_tests);
      ( "fuzz",
        qsuite
          [
            prop_truncated_never_raises;
            prop_garbage_never_raises;
            prop_resync_recovers;
          ] );
      ("chunking", qsuite [ prop_chunking_invariance ]);
      ( "framing",
        [
          Alcotest.test_case "wrong codec key" `Quick test_wrong_codec_key;
          Alcotest.test_case "trailing bytes" `Quick
            test_trailing_bytes_rejected;
          Alcotest.test_case "oversized length" `Quick
            test_oversized_length_is_skip;
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "zigzag extremes" `Quick test_zigzag_extremes;
        ] );
    ]
