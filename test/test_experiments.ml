(* End-to-end checks of the experiment harness: every figure/claim
   regenerates (in quick mode) with the paper's qualitative shape. *)

module Exp = Tokenring.Experiments
module Series = Tr_stats.Series

let find_result id results =
  List.find (fun r -> String.equal r.Exp.id id) results

(* Run the quick experiments once for the whole file. *)
let results = lazy (Exp.all ~quick:true ~seed:11 ())

let test_all_present () =
  let ids = List.map (fun r -> r.Exp.id) (Lazy.force results) in
  Alcotest.(check (list string)) "experiment index"
    [ "FIG9"; "FIG10"; "LARGE-N"; "LEM4"; "LEM6"; "THM2"; "THM3"; "OPT-MSG";
      "TREE"; "ADAPT"; "DIST"; "WARMUP"; "SPACE" ]
    ids

let test_tables_render () =
  List.iter
    (fun r ->
      let text = Format.asprintf "%a" Exp.pp_result r in
      if String.length text < 50 then
        Alcotest.failf "%s: table suspiciously small" r.Exp.id)
    (Lazy.force results)

(* The quick FIG9 sweep covers n in {8,16,32}; rebuild the raw series to
   assert shapes numerically. *)
let rerun_fig9 = lazy (Exp.fig9 ~quick:true ~seed:11 ())

let table_cell table x col =
  (* Parse the rendered CSV: x,ring,binsearch,log2(n) *)
  let csv = Series.Table.to_csv table in
  let lines = String.split_on_char '\n' csv in
  let headers =
    match lines with h :: _ -> String.split_on_char ',' h | [] -> []
  in
  let col_idx =
    match List.find_index (String.equal col) headers with
    | Some i -> i
    | None -> Alcotest.failf "column %s not found" col
  in
  let row =
    List.find_opt
      (fun line ->
        match String.split_on_char ',' line with
        | x_str :: _ -> ( try float_of_string x_str = x with _ -> false)
        | [] -> false)
      lines
  in
  match row with
  | Some line -> float_of_string (List.nth (String.split_on_char ',' line) col_idx)
  | None -> Alcotest.failf "row x=%g not found" x

let test_fig9_shape () =
  let r = Lazy.force rerun_fig9 in
  (* At the largest quick size, binsearch beats ring and stays within
     ~2x log2(n). *)
  let ring = table_cell r.Exp.table 32.0 "ring" in
  let bin = table_cell r.Exp.table 32.0 "binsearch" in
  Alcotest.(check bool) "binsearch <= ring at n=32" true (bin <= ring);
  Alcotest.(check bool) "binsearch ~ log2 n" true (bin < 2.0 *. 5.0)

let test_fig10_shape () =
  let r = find_result "FIG10" (Lazy.force results) in
  let ring_light = table_cell r.Exp.table 400.0 "ring" in
  let bin_light = table_cell r.Exp.table 400.0 "binsearch" in
  (* Light load: ring tends toward n/2 = 50, binsearch toward log2 100. *)
  Alcotest.(check bool) "ring -> n/2" true (ring_light > 30.0);
  Alcotest.(check bool) "binsearch -> log2 n" true (bin_light < 12.0);
  Alcotest.(check bool) "separation" true (ring_light > 3.0 *. bin_light)

let test_lem4_linear () =
  let r = find_result "LEM4" (Lazy.force results) in
  let w8 = table_cell r.Exp.table 8.0 "ring-worst-wait" in
  let w32 = table_cell r.Exp.table 32.0 "ring-worst-wait" in
  Alcotest.(check bool) "scales ~linearly" true (w32 > 2.5 *. w8)

let test_lem6_logarithmic () =
  let r = find_result "LEM6" (Lazy.force results) in
  let f8 = table_cell r.Exp.table 8.0 "search-forwards" in
  let f32 = table_cell r.Exp.table 32.0 "search-forwards" in
  Alcotest.(check bool) "8-node forwards <= log2+2" true (f8 <= 5.0);
  Alcotest.(check bool) "32-node forwards <= log2+2" true (f32 <= 7.0)

let test_thm2_logarithmic () =
  let r = find_result "THM2" (Lazy.force results) in
  let w32 = table_cell r.Exp.table 32.0 "binsearch-worst-wait" in
  Alcotest.(check bool) "bounded by ~4 log2 n" true (w32 <= 4.0 *. 5.0)

let test_thm3_fairness () =
  let r = find_result "THM3" (Lazy.force results) in
  List.iter
    (fun n ->
      let x = float_of_int n in
      let single = table_cell r.Exp.table x "max-by-one-node" in
      let total = table_cell r.Exp.table x "total-possessions" in
      let logn = log x /. log 2.0 in
      if single > (3.0 *. logn) +. 3.0 then
        Alcotest.failf "n=%d: one node held the token %.0f times" n single;
      if total > (2.0 *. x) +. (3.0 *. logn) then
        Alcotest.failf "n=%d: %.0f total possessions" n total)
    [ 8; 32 ]

let test_opt_messages_ordering () =
  let r = find_result "OPT-MSG" (Lazy.force results) in
  let seq = table_cell r.Exp.table 64.0 "seq-search" in
  let bin = table_cell r.Exp.table 64.0 "binsearch" in
  let directed = table_cell r.Exp.table 64.0 "directed" in
  Alcotest.(check bool) "sequential >> delegated" true (seq > 4.0 *. bin);
  Alcotest.(check bool) "directed > delegated" true (directed > bin)

let test_tree_imbalance () =
  let r = find_result "TREE" (Lazy.force results) in
  let tree = table_cell r.Exp.table 63.0 "tree-imbalance" in
  let ring = table_cell r.Exp.table 63.0 "ring-imbalance" in
  Alcotest.(check bool) "tree concentrates" true (tree > 2.0 *. ring)

let test_dist_dominance () =
  let r = find_result "DIST" (Lazy.force results) in
  (* binsearch is at least as good as ring at the median and p99. *)
  let ring50 = table_cell r.Exp.table 50.0 "ring" in
  let bin50 = table_cell r.Exp.table 50.0 "binsearch" in
  let ring99 = table_cell r.Exp.table 99.0 "ring" in
  let bin99 = table_cell r.Exp.table 99.0 "binsearch" in
  Alcotest.(check bool) "median dominance" true (bin50 <= ring50 +. 1e-9);
  Alcotest.(check bool) "tail dominance" true (bin99 <= ring99 +. 1e-9)

let test_adapt_idle_costs () =
  let r = find_result "ADAPT" (Lazy.force results) in
  let ring = table_cell r.Exp.table 200.0 "ring-tok/serve" in
  let adaptive = table_cell r.Exp.table 200.0 "adaptive-tok/serve" in
  let pushpull = table_cell r.Exp.table 200.0 "pushpull-tok/serve" in
  Alcotest.(check bool) "adaptive cheaper than ring" true (adaptive < ring);
  Alcotest.(check bool) "pushpull cheapest" true (pushpull < adaptive)

(* ---------------- JSON export ---------------- *)

let balanced text =
  let depth = ref 0 and ok = ref true and in_string = ref false in
  String.iteri
    (fun i c ->
      if !in_string then begin
        if c = '"' && (i = 0 || text.[i - 1] <> '\\') then in_string := false
      end
      else
        match c with
        | '"' -> in_string := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    text;
  !ok && !depth = 0

let test_export_escape () =
  Alcotest.(check string) "quotes and backslashes" {|a\"b\\c|}
    (Tokenring.Export.escape_string {|a"b\c|});
  Alcotest.(check string) "newline" {|x\ny|}
    (Tokenring.Export.escape_string "x\ny")

let test_export_outcome_json () =
  let config =
    {
      (Tokenring.Engine.default_config ~n:8 ~seed:1) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 5.0 };
    }
  in
  let o =
    Tokenring.Runner.run_named "ring" config
      ~stop:(Tokenring.Engine.After_serves 20)
  in
  let json = Tokenring.Export.outcome_to_json o in
  Alcotest.(check bool) "balanced" true (balanced json);
  List.iter
    (fun key ->
      if not (Astring.String.is_infix ~affix:(Printf.sprintf "\"%s\"" key) json)
      then Alcotest.failf "missing key %s" key)
    [ "protocol"; "serves"; "responsiveness"; "waiting_quantiles";
      "token_messages"; "waiting_fairness" ]

let test_export_result_json () =
  let r = Tokenring.Experiments.fig9 ~quick:true ~seed:3 () in
  let json = Tokenring.Export.result_to_json r in
  Alcotest.(check bool) "balanced" true (balanced json);
  Alcotest.(check bool) "has series" true
    (Astring.String.is_infix ~affix:"\"binsearch\"" json)

(* ---------------- runner facade ---------------- *)

let test_run_named () =
  let config =
    {
      (Tokenring.Engine.default_config ~n:16 ~seed:0) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 5.0 };
    }
  in
  let o =
    Tokenring.Runner.run_named "binsearch" config
      ~stop:(Tokenring.Engine.After_serves 50)
  in
  Alcotest.(check string) "name" "binsearch" o.Tokenring.Runner.protocol_name;
  Alcotest.(check bool) "served" true
    (Tokenring.Metrics.serves o.Tokenring.Runner.metrics >= 50)

let test_run_named_unknown () =
  let config = Tokenring.Engine.default_config ~n:4 ~seed:0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Tokenring.Runner.run_named "no-such-protocol" config
            ~stop:(Tokenring.Engine.At_time 1.0));
       false
     with Invalid_argument _ -> true)

let test_registry_names_unique () =
  let names = Tokenring.Registry.names in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_run_many_ensemble () =
  let config =
    {
      (Tokenring.Engine.default_config ~n:16 ~seed:0) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 8.0 };
    }
  in
  let ensemble =
    Tokenring.Runner.run_many Tr_proto.Binsearch.protocol config
      ~seeds:[ 1; 2; 3; 4 ]
      ~stop:(Tokenring.Engine.After_serves 80)
  in
  Alcotest.(check int) "four runs" 4 (List.length ensemble.Tokenring.Runner.outcomes);
  let resp = ensemble.Tokenring.Runner.responsiveness_means in
  Alcotest.(check int) "four means" 4 (Tokenring.Summary.count resp);
  Alcotest.(check bool) "error bar is finite and positive" true
    (let half = Tokenring.Summary.ci95_halfwidth resp in
     half > 0.0 && half < Tokenring.Summary.mean resp);
  Alcotest.(check bool) "empty seeds rejected" true
    (try
       ignore
         (Tokenring.Runner.run_many Tr_proto.Binsearch.protocol config ~seeds:[]
            ~stop:(Tokenring.Engine.At_time 1.0));
       false
     with Invalid_argument _ -> true)

(* ---------------- parallel determinism ---------------- *)

(* The tentpole guarantee: a pool changes wall-clock, never data. Tables
   must come out byte-identical because every sweep point is an
   independent seeded run and results are reassembled in sweep order. *)
let csv r = Series.Table.to_csv r.Exp.table

let test_parallel_experiments_deterministic () =
  Tr_sim.Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun (label, seq, par) ->
          Alcotest.(check string)
            (label ^ " byte-identical with and without pool")
            (csv (seq ())) (csv (par pool)))
        [
          ( "FIG9",
            (fun () -> Exp.fig9 ~quick:true ~seed:11 ()),
            fun pool -> Exp.fig9 ~pool ~quick:true ~seed:11 () );
          ( "FIG10",
            (fun () -> Exp.fig10 ~quick:true ~seed:11 ()),
            fun pool -> Exp.fig10 ~pool ~quick:true ~seed:11 () );
          ( "LEM4",
            (fun () -> Exp.lem4 ~quick:true ~seed:11 ()),
            fun pool -> Exp.lem4 ~pool ~quick:true ~seed:11 () );
          ( "THM2",
            (fun () -> Exp.thm2 ~quick:true ~seed:11 ()),
            fun pool -> Exp.thm2 ~pool ~quick:true ~seed:11 () );
          ( "SPACE",
            (fun () -> Exp.spec_space ~quick:true ()),
            fun pool -> Exp.spec_space ~pool ~quick:true () );
        ])

let test_parallel_run_many_deterministic () =
  let config =
    {
      (Tokenring.Engine.default_config ~n:16 ~seed:0) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 8.0 };
    }
  in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let stop = Tokenring.Engine.After_serves 60 in
  let seq = Tokenring.Runner.run_many Tr_proto.Binsearch.protocol config ~seeds ~stop in
  let par =
    Tr_sim.Pool.with_pool ~domains:4 (fun pool ->
        Tokenring.Runner.run_many ~pool Tr_proto.Binsearch.protocol config ~seeds
          ~stop)
  in
  let digest e =
    List.map
      (fun o ->
        ( o.Tokenring.Runner.seed,
          o.Tokenring.Runner.duration,
          Tokenring.Metrics.token_messages o.Tokenring.Runner.metrics,
          Tokenring.Summary.mean (Tokenring.Metrics.responsiveness o.Tokenring.Runner.metrics) ))
      e.Tokenring.Runner.outcomes
  in
  Alcotest.(check bool) "outcomes identical in seed order" true
    (digest seq = digest par);
  Alcotest.(check (float 0.0)) "aggregates identical"
    (Tokenring.Summary.mean seq.Tokenring.Runner.responsiveness_means)
    (Tokenring.Summary.mean par.Tokenring.Runner.responsiveness_means)

let test_run_many_trace_retention () =
  let config =
    {
      (Tokenring.Engine.default_config ~n:8 ~seed:0) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 5.0 };
      trace = true;
    }
  in
  let stop = Tokenring.Engine.After_serves 10 in
  let ensemble =
    Tokenring.Runner.run_many Tr_proto.Ring.protocol config ~seeds:[ 1; 2 ] ~stop
  in
  List.iter
    (fun o ->
      Alcotest.(check int) "ensembles drop traces by default" 0
        (Tokenring.Trace.length o.Tokenring.Runner.trace))
    ensemble.Tokenring.Runner.outcomes;
  let traced =
    Tokenring.Runner.run_many ~record_trace:true Tr_proto.Ring.protocol config
      ~seeds:[ 1; 2 ] ~stop
  in
  List.iter
    (fun o ->
      Alcotest.(check bool) "record_trace:true keeps them" true
        (Tokenring.Trace.length o.Tokenring.Runner.trace > 0))
    traced.Tokenring.Runner.outcomes

let test_rounds_stop () =
  match Tokenring.Runner.rounds_stop ~n:10 ~rounds:100 with
  | Tokenring.Engine.After_token_messages 1000 -> ()
  | _ -> Alcotest.fail "rounds_stop mis-scaled"

let test_spec_space_growth () =
  let r = find_result "SPACE" (Lazy.force results) in
  let s = table_cell r.Exp.table 2.0 "S" in
  let bs = table_cell r.Exp.table 2.0 "BinSearch" in
  Alcotest.(check bool) "refinement blows up the space" true (bs > 10.0 *. s)

let test_warmup_converges () =
  let r = find_result "WARMUP" (Lazy.force results) in
  (* By the last checkpoint binsearch's running mean sits below ring's. *)
  let ring = table_cell r.Exp.table 400.0 "ring" in
  let bin = table_cell r.Exp.table 400.0 "binsearch" in
  Alcotest.(check bool) "levels separate" true (bin < ring)

(* ---------------- scenario specs ---------------- *)

let test_scenario_workloads () =
  let ok spec expected =
    match Tokenring.Scenario.workload_of_string spec with
    | Ok w when w = expected -> ()
    | Ok _ -> Alcotest.failf "%S parsed to the wrong workload" spec
    | Error e -> Alcotest.failf "%S rejected: %s" spec e
  in
  ok "nothing" Tokenring.Workload.Nothing;
  ok "poisson:10" (Tokenring.Workload.Global_poisson { mean_interarrival = 10.0 });
  ok "pernode:50.5"
    (Tokenring.Workload.Per_node_poisson { mean_interarrival = 50.5 });
  ok "burst:25,4" (Tokenring.Workload.Burst { period = 25.0; size = 4 });
  ok "hotspot:10,3,0.8"
    (Tokenring.Workload.Hotspot { mean_interarrival = 10.0; hot = 3; bias = 0.8 });
  ok "continuous:2" (Tokenring.Workload.Continuous { node = 2 })

let test_scenario_workload_errors () =
  List.iter
    (fun spec ->
      match Tokenring.Scenario.workload_of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" spec)
    [ ""; "poisson"; "poisson:abc"; "burst:1"; "zipf:2"; "hotspot:1,2" ]

let test_scenario_networks () =
  List.iter
    (fun spec ->
      match Tokenring.Scenario.network_of_string spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%S rejected: %s" spec e)
    Tokenring.Scenario.network_examples;
  (* Behavioural spot-checks. *)
  let rng = Tr_sim.Rng.create 0 in
  (match Tokenring.Scenario.network_of_string "const:2.5" with
  | Ok net ->
      Alcotest.(check (float 1e-9)) "const delay" 2.5
        (Tr_sim.Network.sample_delay net rng Tr_sim.Network.Reliable ~src:0 ~dst:1)
  | Error e -> Alcotest.fail e);
  match Tokenring.Scenario.network_of_string "const:1+slow:5,8" with
  | Ok net ->
      Alcotest.(check (float 1e-9)) "slow node" 8.0
        (Tr_sim.Network.sample_delay net rng Tr_sim.Network.Reliable ~src:5 ~dst:0);
      Alcotest.(check (float 1e-9)) "normal node" 1.0
        (Tr_sim.Network.sample_delay net rng Tr_sim.Network.Reliable ~src:0 ~dst:5)
  | Error e -> Alcotest.fail e

let test_scenario_network_errors () =
  List.iter
    (fun spec ->
      match Tokenring.Scenario.network_of_string spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" spec)
    [ "warp:1"; "uniform:2,1"; "lossy:1.5"; "uniform:1"; "slow:1" ]

let test_scenario_runs_end_to_end () =
  match
    ( Tokenring.Scenario.workload_of_string "burst:15,3",
      Tokenring.Scenario.network_of_string "uniform:0.5,1.5" )
  with
  | Ok workload, Ok network ->
      let config =
        { (Tokenring.Engine.default_config ~n:12 ~seed:5) with workload; network }
      in
      let o =
        Tokenring.Runner.run_named "binsearch" config
          ~stop:(Tokenring.Engine.After_serves 60)
      in
      Alcotest.(check bool) "lives" true
        (Tokenring.Metrics.serves o.Tokenring.Runner.metrics >= 60)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* ---------------- golden files ---------------- *)

(* The CSVs and traces under test/golden/ were captured before the
   flat-queue/pooled-event engine rewrite; byte-identity here is the
   refactor's correctness bar — the optimized simulator must replay the
   exact same event streams. *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_golden_csv id golden () =
  let r = find_result id (Lazy.force results) in
  Alcotest.(check string)
    (id ^ " table byte-identical to pre-refactor capture")
    (read_file ("golden/" ^ golden))
    (Series.Table.to_csv r.Exp.table)

let golden_trace_config =
  {
    (Tokenring.Engine.default_config ~n:8 ~seed:3) with
    workload = Tokenring.Workload.Global_poisson { mean_interarrival = 5.0 };
    trace = true;
  }

let test_golden_trace protocol golden () =
  let o =
    Tokenring.Runner.run protocol golden_trace_config
      ~stop:(Tokenring.Engine.After_serves 20)
  in
  Alcotest.(check string) "trace byte-identical to pre-refactor capture"
    (read_file ("golden/" ^ golden))
    (Format.asprintf "%a" Tokenring.Trace.pp o.Tokenring.Runner.trace)

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "all present" `Quick test_all_present;
          Alcotest.test_case "tables render" `Quick test_tables_render;
        ] );
      ( "golden",
        [
          Alcotest.test_case "FIG9 csv" `Quick
            (test_golden_csv "FIG9" "fig9_quick_seed11.csv");
          Alcotest.test_case "FIG10 csv" `Quick
            (test_golden_csv "FIG10" "fig10_quick_seed11.csv");
          Alcotest.test_case "ring trace" `Quick
            (test_golden_trace Tr_proto.Ring.protocol "trace_ring_n8_seed3.txt");
          Alcotest.test_case "binsearch trace" `Quick
            (test_golden_trace Tr_proto.Binsearch.protocol
               "trace_binsearch_n8_seed3.txt");
        ] );
      ( "shapes",
        [
          Alcotest.test_case "FIG9" `Quick test_fig9_shape;
          Alcotest.test_case "FIG10" `Quick test_fig10_shape;
          Alcotest.test_case "LEM4" `Quick test_lem4_linear;
          Alcotest.test_case "LEM6" `Quick test_lem6_logarithmic;
          Alcotest.test_case "THM2" `Quick test_thm2_logarithmic;
          Alcotest.test_case "THM3" `Quick test_thm3_fairness;
          Alcotest.test_case "OPT-MSG" `Quick test_opt_messages_ordering;
          Alcotest.test_case "TREE" `Quick test_tree_imbalance;
          Alcotest.test_case "ADAPT" `Quick test_adapt_idle_costs;
          Alcotest.test_case "DIST" `Quick test_dist_dominance;
          Alcotest.test_case "WARMUP" `Quick test_warmup_converges;
          Alcotest.test_case "SPACE" `Quick test_spec_space_growth;
        ] );
      ( "export",
        [
          Alcotest.test_case "escape" `Quick test_export_escape;
          Alcotest.test_case "outcome json" `Quick test_export_outcome_json;
          Alcotest.test_case "result json" `Quick test_export_result_json;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "workloads" `Quick test_scenario_workloads;
          Alcotest.test_case "workload errors" `Quick test_scenario_workload_errors;
          Alcotest.test_case "networks" `Quick test_scenario_networks;
          Alcotest.test_case "network errors" `Quick test_scenario_network_errors;
          Alcotest.test_case "end to end" `Quick test_scenario_runs_end_to_end;
        ] );
      ( "runner",
        [
          Alcotest.test_case "run_named" `Quick test_run_named;
          Alcotest.test_case "unknown protocol" `Quick test_run_named_unknown;
          Alcotest.test_case "registry unique" `Quick test_registry_names_unique;
          Alcotest.test_case "run_many ensemble" `Quick test_run_many_ensemble;
          Alcotest.test_case "rounds stop" `Quick test_rounds_stop;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "sweeps deterministic under pool" `Quick
            test_parallel_experiments_deterministic;
          Alcotest.test_case "run_many deterministic under pool" `Quick
            test_parallel_run_many_deterministic;
          Alcotest.test_case "run_many trace retention" `Quick
            test_run_many_trace_retention;
        ] );
    ]
