(* The domain pool: completion, result ordering, exception propagation,
   graceful shutdown — plus a qcheck equivalence with List.map. *)

open Tr_sim

let test_map_completes_all_jobs () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 250 Fun.id in
      Alcotest.(check (list int))
        "every job ran, results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_map_edge_sizes () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 7 ]
        (Pool.map pool (fun x -> x + 1) [ 6 ]))

let test_single_domain_is_sequential () =
  (* domains = 1 spawns nothing: the caller runs every job itself. *)
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check int) "one domain" 1 (Pool.domains pool);
  Alcotest.(check (list string)) "works" [ "0"; "1"; "2" ]
    (Pool.map pool string_of_int [ 0; 1; 2 ]);
  Pool.shutdown pool

let test_exception_propagates_and_pool_survives () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 50 Fun.id in
      (match Pool.map pool (fun x -> if x mod 7 = 3 then failwith "boom" else x) xs with
      | _ -> Alcotest.fail "exception was swallowed"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* All jobs completed despite the failures; the pool is reusable. *)
      Alcotest.(check (list int)) "reusable after an exception"
        (List.map (fun x -> x * 2) xs)
        (Pool.map pool (fun x -> x * 2) xs))

let test_invalid_domain_count () =
  Alcotest.(check bool) "domains < 1 rejected" true
    (try
       ignore (Pool.create ~domains:0 ());
       false
     with Invalid_argument _ -> true)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* After shutdown the caller degrades to running jobs itself. *)
  Alcotest.(check (list int)) "degrades to sequential" [ 2; 4 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2 ])

let prop_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map for any job list" ~count:50
    (QCheck.list_of_size (QCheck.Gen.int_range 0 40) QCheck.small_int)
    (fun xs ->
      Pool.with_pool ~domains:3 (fun pool ->
          Pool.map pool (fun x -> (x * 31) + 1) xs
          = List.map (fun x -> (x * 31) + 1) xs))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "completes all jobs" `Quick test_map_completes_all_jobs;
          Alcotest.test_case "edge sizes" `Quick test_map_edge_sizes;
          Alcotest.test_case "single domain" `Quick test_single_domain_is_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates_and_pool_survives;
          Alcotest.test_case "invalid domains" `Quick test_invalid_domain_count;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_map_equals_list_map ] );
    ]
