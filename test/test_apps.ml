(* Tests for the applications: total-order broadcast (agreement and
   gap-freedom, including under message loss and reordering), the mutex
   service (no overlapping critical sections), and the weighted
   round-robin scheduler (proportional shares). *)

open Tr_sim

(* ---------------- total order ---------------- *)

module TO = Engine.Make (Tr_apps.Total_order.Impl)

let run_total_order ?(n = 8) ?(seed = 3) ?(network = Network.default)
    ~workload ~serves () =
  let config = { (Engine.default_config ~n ~seed) with network; workload } in
  let t = TO.create config in
  TO.run t ~stop:(Engine.After_serves serves);
  (* Drain in-flight broadcasts so logs settle. *)
  TO.run t ~stop:(Engine.At_time (TO.now t +. 100.0));
  t

let logs_of t n = List.init n (fun i -> Tr_apps.Total_order.delivered (TO.state t i))

let is_prefix a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && go a' b'
  in
  go a b

let assert_total_order t n =
  let logs = logs_of t n in
  let longest =
    List.fold_left (fun acc l -> if List.length l > List.length acc then l else acc)
      [] logs
  in
  List.iteri
    (fun i log ->
      if not (is_prefix log longest) then
        Alcotest.failf "node %d's log is not a prefix of the longest" i)
    logs;
  longest

let test_total_order_agreement () =
  let t =
    run_total_order ~workload:(Workload.Global_poisson { mean_interarrival = 4.0 })
      ~serves:100 ()
  in
  let longest = assert_total_order t 8 in
  Alcotest.(check bool) "everything delivered" true (List.length longest >= 100)

let test_total_order_under_random_delays () =
  let network =
    Network.create
      ~reliable_delay:(Network.Uniform (0.2, 3.0))
      ~cheap_delay:(Network.Uniform (0.2, 6.0))
      ()
  in
  let t =
    run_total_order ~network
      ~workload:(Workload.Burst { period = 7.0; size = 3 })
      ~serves:90 ()
  in
  ignore (assert_total_order t 8)

let test_total_order_survives_cheap_loss () =
  (* Dropping 30% of cheap messages (searches) must not break agreement
     — the paper's claim that cheap messages never affect safety. *)
  let network = Network.create ~cheap_drop_probability:0.3 () in
  let t =
    run_total_order ~network
      ~workload:(Workload.Global_poisson { mean_interarrival = 5.0 })
      ~serves:80 ()
  in
  ignore (assert_total_order t 8)

let test_total_order_no_gaps_no_duplicates () =
  let t =
    run_total_order ~workload:(Workload.Global_poisson { mean_interarrival = 3.0 })
      ~serves:120 ()
  in
  List.iteri
    (fun i log ->
      (* Each (origin, origin_seq) pair appears at most once. *)
      let keys =
        List.map
          (fun p -> Tr_apps.Total_order.(p.origin, p.origin_seq))
          log
      in
      if List.length keys <> List.length (List.sort_uniq compare keys) then
        Alcotest.failf "node %d delivered a duplicate" i;
      (* No buffered leftovers: gap-free delivery after the drain. *)
      Alcotest.(check int)
        (Printf.sprintf "node %d buffer empty" i)
        0
        (Tr_apps.Total_order.buffered_count (TO.state t i)))
    (logs_of t 8)

let test_total_order_origin_sequences_ordered () =
  (* Per-origin FIFO: broadcasts from the same origin appear in their
     origin_seq order inside every log. *)
  let t =
    run_total_order ~workload:(Workload.Per_node_poisson { mean_interarrival = 30.0 })
      ~serves:100 ()
  in
  List.iter
    (fun log ->
      let per_origin = Hashtbl.create 8 in
      List.iter
        (fun p ->
          let open Tr_apps.Total_order in
          let last =
            Option.value (Hashtbl.find_opt per_origin p.origin) ~default:0
          in
          if p.origin_seq <= last then Alcotest.fail "origin order violated";
          Hashtbl.replace per_origin p.origin p.origin_seq)
        log)
    (logs_of t 8)

let test_total_order_safe_under_crash () =
  (* Crash a node mid-run: delivery may stall (the sequencer offers no
     recovery — that is Failure/Failsafe_search's job), but safety must
     hold: the live nodes' logs remain prefixes of the longest log. *)
  let config =
    {
      (Engine.default_config ~n:8 ~seed:5) with
      workload = Workload.Global_poisson { mean_interarrival = 4.0 };
      crashes = [ (60.0, 3) ];
    }
  in
  let t = TO.create config in
  TO.run t ~stop:(Engine.First_of [ Engine.After_serves 60; Engine.At_time 2000.0 ]);
  TO.run t ~stop:(Engine.At_time (TO.now t +. 50.0));
  let logs =
    List.filter_map
      (fun i ->
        if i = 3 then None else Some (Tr_apps.Total_order.delivered (TO.state t i)))
      (List.init 8 (fun i -> i))
  in
  let longest =
    List.fold_left
      (fun acc l -> if List.length l > List.length acc then l else acc)
      [] logs
  in
  List.iter
    (fun log ->
      if not (is_prefix log longest) then
        Alcotest.fail "a live node's log diverged after the crash")
    logs

let prop_total_order_random_seeds =
  QCheck.Test.make ~name:"total order across random seeds" ~count:10
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let t =
        run_total_order ~seed
          ~workload:(Workload.Global_poisson { mean_interarrival = 4.0 })
          ~serves:60 ()
      in
      let logs = logs_of t 8 in
      let longest =
        List.fold_left
          (fun acc l -> if List.length l > List.length acc then l else acc)
          [] logs
      in
      List.for_all (fun l -> is_prefix l longest) logs)

(* ---------------- mutex ---------------- *)

let run_mutex ?(n = 16) ?(seed = 2) ?(cs_duration = 1.0) ?(network = Network.default)
    ~serves () =
  let module P = (val Tr_apps.Mutex.make ~cs_duration ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n ~seed) with
      network;
      workload = Workload.Global_poisson { mean_interarrival = 3.0 };
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves serves);
  (E.trace t, E.metrics t)

let test_mutex_no_overlap () =
  let trace, _ = run_mutex ~serves:150 () in
  let intervals = Tr_apps.Mutex.cs_intervals trace in
  Alcotest.(check bool) "sections completed" true (List.length intervals >= 140);
  Alcotest.(check bool) "no overlap" false (Tr_apps.Mutex.intervals_overlap intervals)

let test_mutex_no_overlap_random_delays () =
  let network = Network.create ~reliable_delay:(Network.Uniform (0.3, 2.5)) () in
  let trace, _ = run_mutex ~network ~serves:120 () in
  Alcotest.(check bool) "no overlap with jitter" false
    (Tr_apps.Mutex.intervals_overlap (Tr_apps.Mutex.cs_intervals trace))

let test_mutex_cs_duration_respected () =
  let trace, _ = run_mutex ~cs_duration:2.0 ~serves:60 () in
  List.iter
    (fun (_, enter, exit) ->
      if exit -. enter < 2.0 -. 1e-6 then
        Alcotest.failf "critical section too short: %.3f" (exit -. enter))
    (Tr_apps.Mutex.cs_intervals trace)

let test_mutex_throughput_bounded_by_cs () =
  (* With 1-unit critical sections, at most ~1 serve per time unit. *)
  let module P = (val Tr_apps.Mutex.make ~cs_duration:1.0 ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:8 ~seed:1) with
      workload = Workload.Global_poisson { mean_interarrival = 0.5 };
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves 100);
  Alcotest.(check bool) "duration >= serves * cs" true (E.now t >= 100.0)

let prop_mutex_safety_random_seeds =
  QCheck.Test.make ~name:"mutex safety across seeds" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let trace, _ = run_mutex ~seed ~serves:60 () in
      not (Tr_apps.Mutex.intervals_overlap (Tr_apps.Mutex.cs_intervals trace)))

let test_intervals_overlap_detector () =
  (* Validate the checker itself. *)
  Alcotest.(check bool) "disjoint" false
    (Tr_apps.Mutex.intervals_overlap [ (0, 0.0, 1.0); (1, 1.5, 2.0) ]);
  Alcotest.(check bool) "touching is fine" false
    (Tr_apps.Mutex.intervals_overlap [ (0, 0.0, 1.0); (1, 1.0, 2.0) ]);
  Alcotest.(check bool) "overlapping" true
    (Tr_apps.Mutex.intervals_overlap [ (0, 0.0, 1.0); (1, 0.5, 2.0) ])

(* ---------------- app transcript goldens ---------------- *)

(* Full-transcript pins for the mutex and total-order applications. The
   sim engine is deterministic from the seed, so the complete trace —
   every send/recv/request/serve/possession/note — is reproducible
   byte-for-byte. These were generated from the pre-service-layer code
   and guard the hybrid-movement refactor: with default options (Search
   movement, no directive, no parking, no hooks) the apps must produce
   the identical transcript, proving the service layer changed no app
   semantics. Regenerate with TR_APP_GOLDEN_REGEN=<dir>. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_app_golden ~file log =
  match Sys.getenv_opt "TR_APP_GOLDEN_REGEN" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir file) in
      output_string oc log;
      close_out oc
  | None -> Alcotest.(check string) file (read_file ("golden/" ^ file)) log

let render_transcript ?(keep = 800) trace =
  let lines =
    List.filteri (fun i _ -> i < keep) (Trace.events trace)
    |> List.map (fun { Trace.time; event } ->
           Format.asprintf "%.3f %a" time Trace.pp_event event)
  in
  String.concat "\n" lines ^ "\n"

let test_golden_mutex_transcript () =
  let module P = (val Tr_apps.Mutex.make ~cs_duration:2.0 ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:8 ~seed:11) with
      workload = Workload.Global_poisson { mean_interarrival = 3.0 };
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves 30);
  check_app_golden ~file:"app_mutex_n8_seed11.txt" (render_transcript (E.trace t))

let test_golden_total_order_transcript () =
  let t =
    let config =
      {
        (Engine.default_config ~n:8 ~seed:11) with
        workload = Workload.Global_poisson { mean_interarrival = 4.0 };
        trace = true;
      }
    in
    let t = TO.create config in
    TO.run t ~stop:(Engine.After_serves 25);
    t
  in
  check_app_golden ~file:"app_total_order_n8_seed11.txt"
    (render_transcript (TO.trace t))

(* ---------------- scheduler ---------------- *)

let run_scheduler ~weight ~n ~serves =
  let module P = (val Tr_apps.Scheduler.make ~weight ~slot_cost:0.5 ()) in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n ~seed:6) with
      (* Saturate every queue so shares reflect weights, not arrivals. *)
      workload = Workload.Per_node_poisson { mean_interarrival = 1.0 };
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves serves);
  E.metrics t

let test_scheduler_round_robin_fair () =
  let m = run_scheduler ~weight:(fun _ -> 1) ~n:8 ~serves:400 in
  let counts =
    List.init 8 (fun _i -> 0)
    |> List.mapi (fun i _ -> Metrics.possessions m ~node:i)
  in
  ignore counts;
  (* Equal weights: possession imbalance stays near 1. *)
  Alcotest.(check bool) "fair shares" true (Metrics.possession_imbalance m < 1.2)

let test_scheduler_weighted_shares () =
  (* Node 0 has weight 4, everyone else 1: under saturation node 0 should
     complete ~4x the work of an average other node. We cannot read
     served counts per node from Metrics directly, but waiting times
     reflect shares; instead count serves via a per-node trace. *)
  let module P =
    (val Tr_apps.Scheduler.make ~weight:(fun i -> if i = 0 then 4 else 1)
           ~slot_cost:0.5 ())
  in
  let module E = Engine.Make (P) in
  let config =
    {
      (Engine.default_config ~n:6 ~seed:6) with
      workload = Workload.Per_node_poisson { mean_interarrival = 0.8 };
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves 500);
  let served = Array.make 6 0 in
  List.iter
    (fun { Trace.event; _ } ->
      match event with
      | Trace.Served { node; _ } -> served.(node) <- served.(node) + 1
      | _ -> ())
    (Trace.events (E.trace t));
  let others_avg =
    float_of_int (Array.fold_left ( + ) 0 served - served.(0)) /. 5.0
  in
  let ratio = float_of_int served.(0) /. others_avg in
  if ratio < 2.5 || ratio > 6.0 then
    Alcotest.failf "weighted share off: node0=%d others-avg=%.1f (ratio %.2f)"
      served.(0) others_avg ratio

let test_scheduler_invalid_weight () =
  let module P = (val Tr_apps.Scheduler.make ~weight:(fun _ -> 0) ()) in
  let module E = Engine.Make (P) in
  Alcotest.(check bool) "raises at init" true
    (try
       ignore (E.create (Engine.default_config ~n:4 ~seed:0));
       false
     with Invalid_argument _ -> true)

let test_scheduler_work_takes_time () =
  let m = run_scheduler ~weight:(fun _ -> 1) ~n:4 ~serves:50 in
  (* Each slot costs 0.5; waiting times can't all be ~0. *)
  Alcotest.(check bool) "work occupies the resource" true
    (Tr_stats.Summary.mean (Metrics.waiting m) > 0.4)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "apps"
    [
      ( "total-order",
        [
          Alcotest.test_case "agreement" `Quick test_total_order_agreement;
          Alcotest.test_case "random delays" `Quick test_total_order_under_random_delays;
          Alcotest.test_case "cheap loss" `Quick test_total_order_survives_cheap_loss;
          Alcotest.test_case "no gaps/duplicates" `Quick
            test_total_order_no_gaps_no_duplicates;
          Alcotest.test_case "per-origin order" `Quick
            test_total_order_origin_sequences_ordered;
          Alcotest.test_case "safe under crash" `Quick
            test_total_order_safe_under_crash;
        ]
        @ qsuite [ prop_total_order_random_seeds ] );
      ( "mutex",
        [
          Alcotest.test_case "no overlap" `Quick test_mutex_no_overlap;
          Alcotest.test_case "no overlap (jitter)" `Quick
            test_mutex_no_overlap_random_delays;
          Alcotest.test_case "cs duration respected" `Quick
            test_mutex_cs_duration_respected;
          Alcotest.test_case "throughput bound" `Quick test_mutex_throughput_bounded_by_cs;
          Alcotest.test_case "overlap detector" `Quick test_intervals_overlap_detector;
        ]
        @ qsuite [ prop_mutex_safety_random_seeds ] );
      ( "golden",
        [
          Alcotest.test_case "mutex transcript" `Quick test_golden_mutex_transcript;
          Alcotest.test_case "total-order transcript" `Quick
            test_golden_total_order_transcript;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round-robin fair" `Quick test_scheduler_round_robin_fair;
          Alcotest.test_case "weighted shares" `Quick test_scheduler_weighted_shares;
          Alcotest.test_case "invalid weight" `Quick test_scheduler_invalid_weight;
          Alcotest.test_case "work takes time" `Quick test_scheduler_work_takes_time;
        ] );
    ]
