(* Live-runtime tests: loopback cluster smoke, sim-vs-live trend
   cross-validation (ring O(N) vs binsearch O(log N)), token
   regeneration after killing a live node, a socket-backend exchange
   over Unix-domain sockets, and delay-model validation. *)

open Tr_sim
module Cluster = Tr_net_rt.Cluster
module Transport = Tr_net_rt.Transport
module Readiness = Tr_net_rt.Readiness
module Wakeup = Tr_net_rt.Wakeup
module Codecs = Tr_wire.Codecs

(* Fast wall clock: 0.2 ms per unit keeps every run below a second. *)
let quick_config ?(unit_s = 2e-4) ~n ~seed ~load ~stop () =
  { (Cluster.default_config ~n ~seed) with unit_s; load; stop }

(* ---------------- loopback smoke ---------------- *)

let test_loopback_smoke () =
  let config =
    quick_config ~n:4 ~seed:11
      ~load:(Cluster.Closed_loop { depth = 1 })
      ~stop:(Cluster.Grants 300) ()
  in
  let report = Cluster.run_packed config (Codecs.find_exn "binsearch") in
  Alcotest.(check bool) "grants reached" true (report.Cluster.grants >= 300);
  Alcotest.(check int) "zero decode errors" 0 report.Cluster.decode_errors;
  Alcotest.(check string) "backend" "loopback" report.Cluster.backend;
  Alcotest.(check string) "no readiness set on loopback" "none"
    report.Cluster.readiness;
  Alcotest.(check bool)
    "frames flowed" true
    (report.Cluster.frames_received > 0)

(* Every protocol in the registry must at least circulate and serve a
   little load over the live loopback runtime. *)
let test_all_protocols_live () =
  List.iter
    (fun name ->
      let config =
        quick_config ~n:4 ~seed:7
          ~load:(Cluster.Closed_loop { depth = 1 })
          ~stop:(Cluster.Grants 40) ()
      in
      let report = Cluster.run_packed config (Codecs.find_exn name) in
      if report.Cluster.grants < 40 then
        Alcotest.failf "%s: only %d grants live" name report.Cluster.grants;
      if report.Cluster.decode_errors <> 0 then
        Alcotest.failf "%s: %d decode errors" name
          report.Cluster.decode_errors)
    [
      "ring"; "tree"; "suzuki-kasami"; "seq-search"; "binsearch";
      "binsearch-throttle"; "directed"; "binsearch-gc-rotation";
      "binsearch-gc-inverse"; "adaptive"; "pushpull"; "ring-failsafe";
      "binsearch-failsafe"; "ring-membership"; "random-walk";
    ]

(* ---------------- sim-vs-live trend cross-validation ---------------- *)

(* Figure 9's shape must survive the move to wall time: under light
   Poisson load the ring's responsiveness grows linearly with N while
   delegated binary search stays logarithmic. Live scheduling adds
   jitter, so the assertions are about trends and ordering, not exact
   values. *)
let live_responsiveness ~protocol ~n =
  let config =
    quick_config ~n ~seed:42
      ~load:(Cluster.Open_loop { mean_interarrival = 10.0 })
      ~stop:(Cluster.Duration 500.0) ()
  in
  let report = Cluster.run_packed config (Codecs.find_exn protocol) in
  Alcotest.(check int)
    (Printf.sprintf "%s n=%d decode errors" protocol n)
    0 report.Cluster.decode_errors;
  Tr_stats.Summary.mean (Metrics.responsiveness report.Cluster.metrics)

let test_trend_ring_vs_binsearch () =
  let ns = [ 4; 16 ] in
  let ring = List.map (fun n -> live_responsiveness ~protocol:"ring" ~n) ns in
  let bin =
    List.map (fun n -> live_responsiveness ~protocol:"binsearch" ~n) ns
  in
  match (ring, bin) with
  | [ ring4; ring16 ], [ bin4; bin16 ] ->
      (* Ring scales with N: 4x the nodes should cost clearly more than
         half the proportional increase. *)
      Alcotest.(check bool)
        (Printf.sprintf "ring grows with N (%.2f -> %.2f)" ring4 ring16)
        true
        (ring16 > ring4 *. 1.8);
      (* Binsearch stays within a log-factor envelope: going 4 -> 16
         doubles log2 N, so allow at most ~3x. *)
      Alcotest.(check bool)
        (Printf.sprintf "binsearch stays sub-linear (%.2f -> %.2f)" bin4 bin16)
        true
        (bin16 < bin4 *. 3.0);
      (* And at N=16 the ordering is unambiguous. *)
      Alcotest.(check bool)
        (Printf.sprintf "binsearch beats ring at n=16 (%.2f < %.2f)" bin16
           ring16)
        true (bin16 < ring16)
  | _ -> assert false

(* ---------------- failure regeneration, live ---------------- *)

let test_live_regeneration () =
  let n = 5 in
  let victim = 2 in
  let mu = Mutex.create () in
  let histories = Array.make n [] in
  let killed_at_grants = ref (-1) in
  let module F = struct
    (* Observe every processed ring-failsafe token; kill the victim just
       after it handles (and acks) a token once things are warmed up, so
       it crashes while holding and the token is genuinely lost. *)
    let tap (control : Cluster.control) ~self msg =
      match msg with
      | Tr_proto.Failure.Token { gen; stamp } ->
          Mutex.lock mu;
          histories.(self) <- (gen, stamp) :: histories.(self);
          let do_kill = self = victim && stamp > 10 && !killed_at_grants < 0 in
          if do_kill then killed_at_grants := stamp;
          Mutex.unlock mu;
          if do_kill then control.Cluster.kill victim
      | _ -> ()
  end in
  let config =
    (* One shard and a 5 ms unit keep scheduling jitter far below the
       protocol's ack window — the margin is ack_wait minus the 2-unit
       hop+ack round trip, i.e. one unit of wall slack, and at 1 ms
       units a single busy-box hiccup forged a spurious ack timeout
       (peer marked dead, token duplicated) often enough to flake. The
       sparse Poisson load (mirroring the sim-side crash tests) keeps
       watch timers rare, so the induced crash is the only recovery
       trigger and cascading re-regenerations don't muddy the
       histories; 500 units comfortably covers kill (~25), watch
       timeout (60) and post-regeneration circulation. *)
    {
      (Cluster.default_config ~n ~seed:3) with
      unit_s = 5e-3;
      shards = 1;
      load = Cluster.Open_loop { mean_interarrival = 10.0 };
      stop = Cluster.Duration 500.0;
    }
  in
  let report =
    (* A watch timeout far above live scheduling jitter: the only token
       loss — hence the only regeneration — is the induced crash. *)
    Cluster.run ~tap:F.tap config
      (module (val Tr_proto.Failure.make ~timeout:60.0 ())
        : Tr_sim.Node_intf.PROTOCOL with type msg = Tr_proto.Failure.msg)
      Codecs.failure
  in
  Alcotest.(check bool) "victim was killed" true (!killed_at_grants > 0);
  let survivors =
    List.filter (fun i -> i <> victim) (List.init n Fun.id)
  in
  (* The regenerated token must have reached every survivor. (Once it
     circulates, late watch timers armed during the outage can trigger
     further — legitimate — regenerations, so we assert reach, not an
     exact generation count.) *)
  List.iter
    (fun i ->
      let saw_regen = List.exists (fun (g, _) -> g >= 2) histories.(i) in
      if not saw_regen then
        Alcotest.failf "node %d never saw a regenerated (gen >= 2) token" i)
    survivors;
  (* Before the crash there is exactly one generation-1 token, minted
     once at node 0 — so each survivor's gen-1 sightings are strictly
     increasing and no stamp is witnessed twice anywhere. *)
  let gen1 i = List.rev (List.filter_map
    (fun (g, s) -> if g = 1 then Some s else None) histories.(i))
  in
  List.iter
    (fun i ->
      let rec check = function
        | s1 :: (s2 :: _ as rest) ->
            if s2 <= s1 then
              Alcotest.failf "node %d gen-1 stamps not increasing: %d then %d"
                i s1 s2;
            check rest
        | _ -> ()
      in
      check (gen1 i))
    survivors;
  let seen = Hashtbl.create 256 in
  List.iter
    (fun i ->
      List.iter
        (fun s ->
          if Hashtbl.mem seen s then
            Alcotest.failf "gen-1 stamp %d witnessed twice" s;
          Hashtbl.add seen s ())
        (gen1 i))
    survivors;
  (* Liveness after the kill: survivors kept being served. *)
  Alcotest.(check bool)
    (Printf.sprintf "grants continued (%d total)" report.Cluster.grants)
    true
    (report.Cluster.grants > 20)

(* The fail-safe binsearch keeps the full search machinery (gimmes,
   traps, loans) on top of acknowledged rotation, so the live kill test
   asserts recovery (a higher-generation token reaches the survivors)
   and continued service rather than exact token paths. *)
let test_live_failsafe_search_regeneration () =
  let n = 5 in
  let victim = 1 in
  let mu = Mutex.create () in
  let regen_seen = Array.make n false in
  let killed = ref false in
  let tap (control : Cluster.control) ~self msg =
    match msg with
    | Tr_proto.Failsafe_search.Token { gen; stamp } ->
        let do_kill =
          Mutex.lock mu;
          if gen >= 2 then regen_seen.(self) <- true;
          let k = (not !killed) && self = victim && stamp > 10 in
          if k then killed := true;
          Mutex.unlock mu;
          k
        in
        if do_kill then control.Cluster.kill victim
    | _ -> ()
  in
  let config =
    (* Same 5 ms unit as the ring-failsafe test above: the ack window
       leaves one unit of wall slack, and 1 ms units let scheduling
       hiccups forge ack timeouts that mark live peers dead. *)
    {
      (Cluster.default_config ~n ~seed:9) with
      unit_s = 5e-3;
      shards = 1;
      load = Cluster.Open_loop { mean_interarrival = 10.0 };
      stop = Cluster.Duration 500.0;
    }
  in
  let report =
    Cluster.run ~tap config
      (module (val Tr_proto.Failsafe_search.make ~timeout:60.0 ())
        : Tr_sim.Node_intf.PROTOCOL with type msg = Tr_proto.Failsafe_search.msg)
      Codecs.failsafe_search
  in
  Alcotest.(check bool) "victim was killed" true !killed;
  Alcotest.(check int) "zero decode errors" 0 report.Cluster.decode_errors;
  let reached =
    List.filter (fun i -> i <> victim && regen_seen.(i)) (List.init n Fun.id)
  in
  Alcotest.(check bool)
    (Printf.sprintf "regenerated token reached survivors (%d of %d)"
       (List.length reached) (n - 1))
    true
    (List.length reached >= n - 2);
  Alcotest.(check bool)
    (Printf.sprintf "service continued (%d grants)" report.Cluster.grants)
    true
    (report.Cluster.grants > 20)

(* ---------------- sockets backend ---------------- *)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tr-net-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Unix.unlink (Filename.concat dir f) with _ -> ())
        (try Sys.readdir dir with _ -> [||]);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

let test_unix_sockets_cluster () =
  with_temp_dir (fun dir ->
      let n = 3 in
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        {
          (Cluster.default_config ~n ~seed:5) with
          unit_s = 1e-3;
          load = Cluster.Closed_loop { depth = 1 };
          stop = Cluster.Grants 60;
          max_wall_s = 30.0;
        }
      in
      let report =
        Cluster.run_packed
          ~backend:(Cluster.Sockets { owned = [ 0; 1; 2 ]; addrs })
          config
          (Codecs.find_exn "ring")
      in
      Alcotest.(check bool) "grants reached" true (report.Cluster.grants >= 60);
      Alcotest.(check int) "zero decode errors" 0 report.Cluster.decode_errors;
      Alcotest.(check string) "backend" "unix" report.Cluster.backend)

(* ---------------- readiness backends ---------------- *)

(* Uring joins the pool when this kernel can create a ring, so the
   parity/chunking tests below cover the completion transport too. The
   skip is loud: a CI lane silently never exercising uring is exactly
   the kind of gap the forced-backend machinery exists to prevent. *)
let uring_skip_notice =
  lazy
    (if not (Readiness.available Readiness.Uring) then
       Printf.eprintf
         "[test_net_rt] SKIP: io_uring unavailable on this kernel (or \
          TR_URING_DISABLE set); uring legs of the parity/chunking tests \
          will not run\n\
          %!")

let available_backends () =
  Lazy.force uring_skip_notice;
  List.filter Readiness.available
    [ Readiness.Uring; Readiness.Epoll; Readiness.Poll; Readiness.Select ]

(* Register / report / level-trigger / remove, for every backend this
   build can create. *)
let test_readiness_basic () =
  List.iter
    (fun backend ->
      let name = Readiness.backend_name backend in
      let rd = Readiness.create ~backend () in
      let r, w = Unix.pipe () in
      Readiness.set rd r ~read:true ~write:false;
      Alcotest.(check int) (name ^ ": registered") 1 (Readiness.fds_registered rd);
      let cb ~fd:_ ~readable:_ ~writable:_ = () in
      Alcotest.(check int)
        (name ^ ": idle pipe not ready")
        0
        (Readiness.wait rd ~timeout_s:0.0 cb);
      ignore (Unix.write_substring w "x" 0 1);
      Alcotest.(check int)
        (name ^ ": ready after write")
        1
        (Readiness.wait rd ~timeout_s:1.0 cb);
      Alcotest.(check int)
        (name ^ ": level-triggered re-report")
        1
        (Readiness.wait rd ~timeout_s:0.0 cb);
      Readiness.remove rd r;
      Alcotest.(check int)
        (name ^ ": removed fd silent")
        0
        (Readiness.wait rd ~timeout_s:0.0 cb);
      Unix.close r;
      Unix.close w;
      Readiness.close rd)
    (available_backends ())

(* Unknown backend names fail loudly (a forced backend silently
   downgrading would invalidate benchmarks), and the unforced default
   follows the epoll -> poll fallback chain. *)
let test_readiness_config () =
  (match Readiness.backend_of_string "bogus" with
  | Error e ->
      Alcotest.(check bool)
        "error names the choices" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "bogus backend accepted");
  (match Readiness.backend_of_string " Poll " with
  | Ok Readiness.Poll -> ()
  | _ -> Alcotest.fail "trimmed/cased parse failed");
  let saved = Sys.getenv_opt "TR_READINESS" in
  Unix.putenv "TR_READINESS" "bogus";
  (match Readiness.default_backend () with
  | exception Failure msg ->
      Alcotest.(check bool)
        "failure names TR_READINESS" true
        (String.length msg >= 12 && String.sub msg 0 12 = "TR_READINESS")
  | _ -> Alcotest.fail "unknown TR_READINESS did not fail");
  (* An empty value reads as unset, so restoring is always possible. *)
  Unix.putenv "TR_READINESS" (Option.value saved ~default:"");
  if saved = None || saved = Some "" then begin
    let expect =
      if Readiness.available Readiness.Epoll then Readiness.Epoll
      else Readiness.Poll
    in
    Alcotest.(check string)
      "default is first of the fallback chain"
      (Readiness.backend_name expect)
      (Readiness.backend_name (Readiness.default_backend ()))
  end

(* A burst of wakes must fully drain: stale readability would turn every
   later wait into an immediate return and spin the shard at 100% CPU. *)
let test_wakeup_drain () =
  let wake = Wakeup.create () in
  let rd = Readiness.create () in
  Readiness.set rd (Wakeup.read_fd wake) ~read:true ~write:false;
  let cb ~fd:_ ~readable:_ ~writable:_ = () in
  for _ = 1 to 1000 do
    Wakeup.wake wake
  done;
  Alcotest.(check int)
    "wake burst visible" 1
    (Readiness.wait rd ~timeout_s:1.0 cb);
  Wakeup.drain wake;
  Alcotest.(check int)
    "drained pipe is silent" 0
    (Readiness.wait rd ~timeout_s:0.0 cb);
  Wakeup.wake wake;
  Alcotest.(check int)
    "wake after drain still wakes" 1
    (Readiness.wait rd ~timeout_s:1.0 cb);
  Wakeup.drain wake;
  Alcotest.(check int)
    "second drain silent again" 0
    (Readiness.wait rd ~timeout_s:0.0 cb);
  Readiness.remove rd (Wakeup.read_fd wake);
  Readiness.close rd;
  Wakeup.close wake

(* The env var must reach a real transport end-to-end: a sockets
   transport created with no explicit backend under TR_READINESS=poll
   waits in poll. *)
let test_readiness_env_forcing () =
  let saved = Sys.getenv_opt "TR_READINESS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "TR_READINESS" (Option.value saved ~default:""))
    (fun () ->
      Unix.putenv "TR_READINESS" "poll";
      with_temp_dir (fun dir ->
          let addrs = Transport.uds_addrs ~dir ~n:2 in
          let clock = Tr_net_rt.Clock.create ~unit_s:1e-3 () in
          let t = Transport.sockets ~clock ~n:2 ~owned:[ 0; 1 ] ~addrs () in
          Fun.protect
            ~finally:(fun () -> Transport.close t)
            (fun () ->
              Alcotest.(check string)
                "TR_READINESS=poll forces the transport backend" "poll"
                (Transport.readiness_backend t))))

(* The uring link of the fallback chain: parsing, the TR_URING_DISABLE
   kill-switch (simulating an ENOSYS/EPERM kernel), and the loud
   degradation uring -> epoll -> ... reaching an actual transport. *)
let test_uring_fallback_chain () =
  (match Readiness.backend_of_string "uring" with
  | Ok Readiness.Uring -> ()
  | _ -> Alcotest.fail "\"uring\" did not parse");
  (match Readiness.backend_of_string "io_uring" with
  | Ok Readiness.Uring -> ()
  | _ -> Alcotest.fail "\"io_uring\" alias did not parse");
  let saved = Sys.getenv_opt "TR_URING_DISABLE" in
  Fun.protect
    ~finally:(fun () ->
      (* Empty reads as unset, so restoring is always possible. *)
      Unix.putenv "TR_URING_DISABLE" (Option.value saved ~default:""))
    (fun () ->
      Unix.putenv "TR_URING_DISABLE" "1";
      Alcotest.(check bool)
        "kill-switch makes uring unavailable" false
        (Readiness.available Readiness.Uring);
      let next =
        if Readiness.available Readiness.Epoll then Readiness.Epoll
        else Readiness.Poll
      in
      Alcotest.(check string)
        "resolve falls down the chain"
        (Readiness.backend_name next)
        (Readiness.backend_name (Readiness.resolve ~source:"test" Readiness.Uring));
      (* End to end: a transport forced onto uring under the kill-switch
         must come up on the fallback and say so in its report label. *)
      with_temp_dir (fun dir ->
          let addrs = Transport.uds_addrs ~dir ~n:2 in
          let clock = Tr_net_rt.Clock.create ~unit_s:1e-3 () in
          let t =
            Transport.sockets ~readiness:Readiness.Uring ~clock ~n:2
              ~owned:[ 0; 1 ] ~addrs ()
          in
          Fun.protect
            ~finally:(fun () -> Transport.close t)
            (fun () ->
              Alcotest.(check string)
                "forced uring fell back loudly"
                (Readiness.backend_name next)
                (Transport.readiness_backend t))))

(* ---------------- backend parity over real sockets ---------------- *)

(* The same closed-loop UDS ring, forced onto each backend in turn: the
   token is unique, so a single-shard run's processed-token sequence is
   deterministic and must be byte-identical across epoll, poll and
   select. Also pins the observability satellite: the report names the
   forced backend and carries live wait counters. *)
let capture_sockets_ring_log ?(spin = false) ?(inproc = false) ?(shards = 1)
    ~backend ~n ~grants ~keep () =
  with_temp_dir (fun dir ->
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        {
          (Cluster.default_config ~n ~seed:7) with
          unit_s = 1e-3;
          shards;
          load = Cluster.Closed_loop { depth = 1 };
          stop = Cluster.Grants grants;
          max_wall_s = 30.0;
          readiness = Some backend;
          spin;
          inproc;
        }
      in
      let mu = Mutex.create () in
      let log = ref [] in
      let count = ref 0 in
      let tap _control ~self (Tr_proto.Ring.Token { stamp }) =
        Mutex.lock mu;
        if !count < keep then begin
          log := Printf.sprintf "%d T %d" self stamp :: !log;
          incr count
        end;
        Mutex.unlock mu
      in
      let report =
        Cluster.run ~tap
          ~backend:(Cluster.Sockets { owned = List.init n Fun.id; addrs })
          config
          (module Tr_proto.Ring)
          Codecs.ring
      in
      (report, String.concat "\n" (List.rev !log)))

let test_backend_parity () =
  let runs =
    List.map
      (fun backend ->
        let report, log =
          capture_sockets_ring_log ~backend ~n:3 ~grants:60 ~keep:40 ()
        in
        let name = Readiness.backend_name backend in
        Alcotest.(check string)
          (name ^ ": report names the backend")
          name report.Cluster.readiness;
        Alcotest.(check int)
          (name ^ ": zero decode errors")
          0 report.Cluster.decode_errors;
        Alcotest.(check bool)
          (name ^ ": waits counted")
          true
          (report.Cluster.wait_calls > 0);
        Alcotest.(check bool)
          (name ^ ": fd gauge positive")
          true
          (report.Cluster.fds_registered > 0);
        Alcotest.(check bool)
          (name ^ ": ready-per-wait sane")
          true
          (report.Cluster.avg_ready_per_wait > 0.0);
        (name, log))
      (available_backends ())
  in
  match runs with
  | [] -> Alcotest.fail "no readiness backend available"
  | (name0, log0) :: rest ->
      List.iter
        (fun (name, log) ->
          Alcotest.(check string)
            (Printf.sprintf "%s token log == %s token log" name name0)
            log0 log)
        rest

(* The in-process fast path must be invisible on the wire: the same
   forced-backend closed-loop ring, with every hop short-circuited
   through lock-free mailboxes, must produce a byte-identical processed
   token log — and the report must prove the fast path actually carried
   frames. *)
let test_inproc_parity () =
  let backend =
    if Readiness.available Readiness.Epoll then Readiness.Epoll
    else Readiness.Poll
  in
  let plain, log_plain =
    capture_sockets_ring_log ~backend ~n:3 ~grants:60 ~keep:40 ()
  in
  let fast, log_fast =
    capture_sockets_ring_log ~inproc:true ~backend ~n:3 ~grants:60 ~keep:40 ()
  in
  Alcotest.(check int)
    "no inproc frames when disabled" 0 plain.Cluster.inproc_frames;
  Alcotest.(check bool)
    "fast path carried frames" true
    (fast.Cluster.inproc_frames > 0);
  Alcotest.(check int) "zero decode errors" 0 fast.Cluster.decode_errors;
  Alcotest.(check string)
    "token log identical through the fast path" log_plain log_fast;
  (* Co-hosted hops never touch a socket, so the syscall bill collapses. *)
  Alcotest.(check bool)
    (Printf.sprintf "syscalls/grant dropped (%.2f -> %.2f)"
       plain.Cluster.syscalls_per_grant fast.Cluster.syscalls_per_grant)
    true
    (fast.Cluster.syscalls_per_grant < plain.Cluster.syscalls_per_grant)

(* The adaptive spin window only arms when there is a user-space signal
   to poll (completion ring or in-process mailboxes) and the shard would
   otherwise block; two shards passing the token back and forth block
   between hops, so the hit/miss counters must move — except on a
   single-CPU host, where the transport gates spinning off (the idle
   shard's busy-poll would steal the working shard's only core) and the
   counters must stay exactly zero. Both branches are real assertions:
   this test pins the gate itself. *)
let test_spin_smoke () =
  let backend =
    if Readiness.available Readiness.Epoll then Readiness.Epoll
    else Readiness.Poll
  in
  let report, _ =
    capture_sockets_ring_log ~spin:true ~inproc:true ~shards:2 ~backend ~n:4
      ~grants:60 ~keep:0 ()
  in
  let windows = report.Cluster.spin_hits + report.Cluster.spin_misses in
  if Readiness.ncpus () > 1 then
    Alcotest.(check bool)
      (Printf.sprintf "spin windows ran (hits=%d misses=%d)"
         report.Cluster.spin_hits report.Cluster.spin_misses)
      true (windows > 0)
  else
    Alcotest.(check int) "single-CPU host: spin gated off" 0 windows;
  Alcotest.(check int) "zero decode errors" 0 report.Cluster.decode_errors

(* Regression guard for the teardown race in report assembly: totals
   must come from one coherent [snapshot], not field-by-field re-reads
   of live atomics. Quiescent, two snapshots and the raw counters must
   agree exactly — and [snapshot_of_stats] (the service front-end's
   path, which only holds the bare stats record) must match too. *)
let test_stats_snapshot_coherent () =
  with_temp_dir (fun dir ->
      let n = 2 in
      let addrs = Transport.uds_addrs ~dir ~n in
      let clock = Tr_net_rt.Clock.create ~unit_s:1e-3 () in
      let t = Transport.sockets ~clock ~n ~owned:[ 0; 1 ] ~addrs () in
      Fun.protect
        ~finally:(fun () -> Transport.close t)
        (fun () ->
          let frame stamp =
            Tr_wire.Codec.encode_envelope Codecs.ring ~src:0
              ~channel:Network.Reliable
              (Tr_proto.Ring.Token { stamp })
          in
          let got = ref 0 in
          Transport.send t ~src:0 ~dst:1 ~delay:0.0 (frame 1);
          let deadline = Unix.gettimeofday () +. 5.0 in
          while !got < 1 && Unix.gettimeofday () < deadline do
            Transport.wait t ~owners:[ 0; 1 ] ~timeout_s:0.05 ();
            (* Polling the sender flushes its coalesced outgoing buffer. *)
            Transport.poll t ~owner:0 (fun _view -> ());
            Transport.poll t ~owner:1 (fun _view -> incr got)
          done;
          Alcotest.(check int) "frame arrived" 1 !got;
          let stats = Transport.stats t in
          let a = Transport.snapshot t in
          let b = Transport.snapshot_of_stats stats in
          Alcotest.(check bool) "snapshots agree" true (a = b);
          Alcotest.(check int)
            "frames_sent coherent"
            (Atomic.get stats.Transport.frames_sent)
            a.Transport.snap_frames_sent;
          Alcotest.(check int)
            "frames_received coherent"
            (Atomic.get stats.Transport.frames_received)
            a.Transport.snap_frames_received;
          Alcotest.(check bool)
            "write syscalls counted" true
            (a.Transport.snap_write_syscalls > 0)));
  (* The race itself: a reporter snapshotting while shard domains still
     mutate the counters (and then tear the transport down) must never
     crash or read a torn record. Run a short cluster and snapshot its
     stats from the control block mid-flight, exactly as the service
     front-end does. *)
  with_temp_dir (fun dir ->
      let n = 3 in
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        {
          (Cluster.default_config ~n ~seed:13) with
          unit_s = 1e-3;
          shards = 2;
          load = Cluster.Closed_loop { depth = 1 };
          stop = Cluster.Grants 120;
          max_wall_s = 30.0;
        }
      in
      let snaps = ref [] in
      let tap (control : Cluster.control) ~self:_ _msg =
        if List.length !snaps < 50 then
          snaps :=
            Transport.snapshot_of_stats control.Cluster.transport_stats
            :: !snaps
      in
      let report =
        Cluster.run ~tap
          ~backend:(Cluster.Sockets { owned = List.init n Fun.id; addrs })
          config
          (module Tr_proto.Ring)
          Codecs.ring
      in
      Alcotest.(check bool) "cluster ran" true (report.Cluster.grants >= 120);
      Alcotest.(check bool) "mid-run snapshots taken" true (!snaps <> []);
      (* Monotone counters must read monotone across snapshots taken in
         tap order on one shard's timeline... they interleave across
         shards, so just require every snapshot internally sane. *)
      List.iter
        (fun (s : Transport.snapshot) ->
          Alcotest.(check bool)
            "non-negative counters" true
            (s.Transport.snap_frames_sent >= 0
            && s.Transport.snap_frames_received >= 0
            && s.Transport.snap_wait_calls >= 0))
        !snaps)

(* Feed frames to a hosted listener through a raw socket in adversarial
   chunks (byte-by-byte, then 3-byte slices) under each forced backend:
   the stream decoder must deliver each frame exactly once, with no
   resync skips and no decode errors, regardless of how reads split. *)
let test_adversarial_chunking () =
  List.iter
    (fun backend ->
      let name = Readiness.backend_name backend in
      with_temp_dir (fun dir ->
          let n = 2 in
          let addrs = Transport.uds_addrs ~dir ~n in
          let clock = Tr_net_rt.Clock.create ~unit_s:1e-3 () in
          let t =
            Transport.sockets ~readiness:backend ~clock ~n ~owned:[ 1 ] ~addrs
              ()
          in
          Fun.protect
            ~finally:(fun () -> Transport.close t)
            (fun () ->
              let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Fun.protect
                ~finally:(fun () -> try Unix.close s with _ -> ())
                (fun () ->
                  Unix.connect s addrs.(1);
                  let frame stamp =
                    Tr_wire.Codec.encode_envelope Codecs.ring ~src:0
                      ~channel:Network.Reliable
                      (Tr_proto.Ring.Token { stamp })
                  in
                  let got = ref [] in
                  let on_frame view =
                    match Tr_wire.Codec.decode_view Codecs.ring view with
                    | Ok
                        {
                          Tr_wire.Codec.src;
                          msg = Tr_proto.Ring.Token { stamp };
                          _;
                        } ->
                        got := (src, stamp) :: !got
                    | Error _ -> Alcotest.failf "%s: decode error" name
                  in
                  let pump_until k =
                    let deadline = Unix.gettimeofday () +. 5.0 in
                    while
                      List.length !got < k && Unix.gettimeofday () < deadline
                    do
                      Transport.wait t ~owners:[ 1 ] ~timeout_s:0.05 ();
                      Transport.poll t ~owner:1 on_frame
                    done
                  in
                  let send_chunked data ~chunk =
                    String.iteri
                      (fun i _ ->
                        if i mod chunk = 0 then begin
                          let len =
                            Stdlib.min chunk (String.length data - i)
                          in
                          ignore (Unix.write_substring s data i len);
                          (* Let the reader see this fragment alone. *)
                          Transport.wait t ~owners:[ 1 ] ~timeout_s:0.002 ();
                          Transport.poll t ~owner:1 on_frame
                        end)
                      data
                  in
                  let f1 = frame 11 in
                  (* All but the last byte: nothing may be delivered. *)
                  send_chunked
                    (String.sub f1 0 (String.length f1 - 1))
                    ~chunk:1;
                  Alcotest.(check int)
                    (name ^ ": partial frame not delivered")
                    0 (List.length !got);
                  ignore
                    (Unix.write_substring s f1 (String.length f1 - 1) 1);
                  pump_until 1;
                  send_chunked (frame 12) ~chunk:3;
                  pump_until 2;
                  Alcotest.(check (list (pair int int)))
                    (name ^ ": both frames exactly once")
                    [ (0, 11); (0, 12) ]
                    (List.rev !got);
                  let stats = Transport.stats t in
                  Alcotest.(check int)
                    (name ^ ": no resync skips")
                    0
                    (Atomic.get stats.Transport.resync_skips);
                  Alcotest.(check int)
                    (name ^ ": no decode errors")
                    0
                    (Atomic.get stats.Transport.decode_errors)))))
    (available_backends ())

(* ---------------- loopback golden guard ---------------- *)

(* Semantic byte-identity of the live loopback runtime across I/O
   rewrites, in the same spirit as test/golden/: a single-shard
   closed-loop run's processed-message sequence is deterministic (ring
   and binsearch use no timers, all channels share the one-unit hop
   delay, and a single shard processes deliveries in due-time order =
   emission order), so the tap log must match a committed golden file.

   Two guards against wall-clock jitter: the unit scale is far above
   scheduling noise, and only the first [keep] lines are compared — the
   tail after the stop condition fires depends on how many in-flight
   messages the final iteration drains, which is timing-sensitive.

   Regenerate with TR_LIVE_GOLDEN_REGEN=<dir> (writes <dir>/<file>
   instead of comparing). *)

let live_log_config ~n ~seed ~unit_s ~grants =
  {
    (Cluster.default_config ~n ~seed) with
    unit_s;
    shards = 1;
    load = Cluster.Closed_loop { depth = 1 };
    stop = Cluster.Grants grants;
    max_wall_s = 30.0;
  }

let capture_live_log (type m) ~(protocol : (module Tr_sim.Node_intf.PROTOCOL
                                              with type msg = m))
    ~(codec : m Tr_wire.Codec.t) ~(render : m -> string)
    ?(filter = fun _ -> true) ~config ~keep () =
  let mu = Mutex.create () in
  let log = ref [] in
  let count = ref 0 in
  let tap _control ~self msg =
    Mutex.lock mu;
    (if !count < keep then
       let line = Printf.sprintf "%d %s" self (render msg) in
       if filter line then begin
         log := line :: !log;
         incr count
       end);
    Mutex.unlock mu
  in
  let report = Cluster.run ~tap config protocol codec in
  Alcotest.(check int) "zero decode errors" 0 report.Cluster.decode_errors;
  Alcotest.(check bool) "no frames dropped" true
    (report.Cluster.frames_dropped = 0);
  String.concat "\n" (List.rev !log) ^ "\n"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_live_golden ~file log =
  match Sys.getenv_opt "TR_LIVE_GOLDEN_REGEN" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir file) in
      output_string oc log;
      close_out oc
  | None -> Alcotest.(check string) file (read_file ("golden/" ^ file)) log

let test_golden_live_ring () =
  let log =
    capture_live_log
      ~protocol:(module Tr_proto.Ring)
      ~codec:Codecs.ring
      ~render:(fun (Tr_proto.Ring.Token { stamp }) ->
        Printf.sprintf "T %d" stamp)
      ~config:(live_log_config ~n:8 ~seed:21 ~unit_s:1e-3 ~grants:80)
      ~keep:64 ()
  in
  check_live_golden ~file:"live_ring_n8_seed21.txt" log

let test_golden_live_binsearch () =
  let render msg =
    let open Tr_proto.Binsearch in
    match msg with
    | Token { stamp } -> Printf.sprintf "T %d" stamp
    | Loan { stamp } -> Printf.sprintf "L %d" stamp
    | Return { stamp } -> Printf.sprintf "R %d" stamp
    | Gimme { requester; span; stamp } ->
        Printf.sprintf "G %d %d %d" requester span stamp
  in
  (* Binsearch floods Gimme requests from several nodes concurrently;
     their relative arrival order carries wall-clock jitter even at a
     4 ms unit. Token movement and the Loan/Return chain are serialized
     by the unique token, so that subsequence is the deterministic
     semantic core — verified identical across 8 repeat runs. *)
  let filter line =
    match String.index_opt line ' ' with
    | Some i -> i + 1 < String.length line && line.[i + 1] <> 'G'
    | None -> false
  in
  let log =
    capture_live_log
      ~protocol:(module (val Tr_proto.Binsearch.make ()))
      ~codec:Codecs.binsearch ~render ~filter
      ~config:(live_log_config ~n:8 ~seed:21 ~unit_s:4e-3 ~grants:60)
      ~keep:40 ()
  in
  check_live_golden ~file:"live_binsearch_n8_seed21.txt" log

(* ---------------- delay-model validation ---------------- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_network_validation () =
  expect_invalid "uniform lo>hi" (fun () ->
      Network.create ~reliable_delay:(Network.Uniform (3.0, 1.0)) ());
  expect_invalid "uniform negative" (fun () ->
      Network.create ~cheap_delay:(Network.Uniform (-1.0, 2.0)) ());
  expect_invalid "uniform nan" (fun () ->
      Network.create ~reliable_delay:(Network.Uniform (Float.nan, 1.0)) ());
  expect_invalid "constant negative" (fun () ->
      Network.create ~reliable_delay:(Network.Constant (-0.5)) ());
  expect_invalid "exponential zero" (fun () ->
      Network.create ~cheap_delay:(Network.Exponential 0.0) ());
  (* Valid models still construct. *)
  let (_ : Network.t) =
    Network.create
      ~reliable_delay:(Network.Uniform (0.2, 3.0))
      ~cheap_delay:(Network.Exponential 1.5) ()
  in
  ()

let test_per_link_guard () =
  let net =
    Network.create
      ~reliable_delay:(Network.Per_link (fun ~src ~dst:_ -> if src = 1 then -1.0 else 2.0))
      ()
  in
  let rng = Rng.create 1 in
  let d = Network.sample_delay net rng Network.Reliable ~src:0 ~dst:1 in
  Alcotest.(check (float 1e-9)) "good link" 2.0 d;
  expect_invalid "bad per-link sample" (fun () ->
      Network.sample_delay net rng Network.Reliable ~src:1 ~dst:0)

let test_scenario_network_error () =
  match Tokenring.Scenario.network_of_string "uniform:3,1" with
  | Ok _ -> Alcotest.fail "inverted uniform accepted"
  | Error msg ->
      Alcotest.(check bool)
        "message mentions uniform" true
        (Astring.String.is_infix ~affix:"niform" msg)

let () =
  Alcotest.run "net_rt"
    [
      ( "loopback",
        [
          Alcotest.test_case "smoke" `Quick test_loopback_smoke;
          Alcotest.test_case "all protocols live" `Slow
            test_all_protocols_live;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "ring O(N) vs binsearch O(log N)" `Slow
            test_trend_ring_vs_binsearch;
        ] );
      ( "failure",
        [
          Alcotest.test_case "live regeneration" `Quick test_live_regeneration;
          Alcotest.test_case "failsafe-search live regeneration" `Quick
            test_live_failsafe_search_regeneration;
        ] );
      ( "sockets",
        [ Alcotest.test_case "unix-domain cluster" `Quick
            test_unix_sockets_cluster ] );
      ( "readiness",
        [
          Alcotest.test_case "register/report/remove" `Quick
            test_readiness_basic;
          Alcotest.test_case "config errors + fallback chain" `Quick
            test_readiness_config;
          Alcotest.test_case "TR_READINESS reaches the transport" `Quick
            test_readiness_env_forcing;
          Alcotest.test_case "wake pipe drains to EAGAIN" `Quick
            test_wakeup_drain;
          Alcotest.test_case "backend parity on a UDS ring" `Quick
            test_backend_parity;
          Alcotest.test_case "adversarial chunking per backend" `Quick
            test_adversarial_chunking;
          Alcotest.test_case "uring fallback chain" `Quick
            test_uring_fallback_chain;
          Alcotest.test_case "inproc fast-path parity" `Quick
            test_inproc_parity;
          Alcotest.test_case "adaptive spin counters" `Quick test_spin_smoke;
          Alcotest.test_case "stats snapshot coherent" `Quick
            test_stats_snapshot_coherent;
        ] );
      ( "golden",
        [
          Alcotest.test_case "loopback ring token sequence" `Quick
            test_golden_live_ring;
          Alcotest.test_case "loopback binsearch message sequence" `Quick
            test_golden_live_binsearch;
        ] );
      ( "network-validation",
        [
          Alcotest.test_case "delay models" `Quick test_network_validation;
          Alcotest.test_case "per-link guard" `Quick test_per_link_guard;
          Alcotest.test_case "scenario error" `Quick
            test_scenario_network_error;
        ] );
    ]
