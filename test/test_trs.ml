(* Unit and property tests for Tr_trs: terms, substitutions, AC pattern
   matching, rules, systems, strategies, and the explorer. *)

open Tr_trs

let term = Alcotest.testable Term.pp Term.equal

(* Random ground-term generator for property tests. *)
let ground_term_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self size ->
      if size <= 1 then
        oneof [ map (fun i -> Term.Int i) (int_bound 5);
                map (fun c -> Term.Const (Printf.sprintf "c%d" c)) (int_bound 3) ]
      else
        let smaller = self (size / 3) in
        oneof
          [
            map (fun i -> Term.Int i) (int_bound 5);
            map (fun xs -> Term.App ("f", xs)) (list_size (1 -- 3) smaller);
            map (fun xs -> Term.Bag xs) (list_size (0 -- 3) smaller);
            map (fun xs -> Term.Seq xs) (list_size (0 -- 3) smaller);
          ])

let arbitrary_ground = QCheck.make ~print:Term.to_string ground_term_gen

(* ---------------- Term ---------------- *)

let test_term_bag_ac_equal () =
  let a = Term.bag [ Term.Int 1; Term.Int 2; Term.Int 3 ] in
  let b = Term.bag [ Term.Int 3; Term.Int 1; Term.Int 2 ] in
  Alcotest.check term "bags equal modulo order" a b

let test_term_bag_flattening () =
  let nested = Term.bag [ Term.Bag [ Term.Int 1; Term.Int 2 ]; Term.Int 3 ] in
  let flat = Term.bag [ Term.Int 1; Term.Int 2; Term.Int 3 ] in
  Alcotest.check term "nested bags flatten" flat nested

let test_term_seq_ordered () =
  let a = Term.seq [ Term.Int 1; Term.Int 2 ] in
  let b = Term.seq [ Term.Int 2; Term.Int 1 ] in
  Alcotest.(check bool) "sequences keep order" false (Term.equal a b)

let test_term_append () =
  let h = Term.seq [ Term.Int 1 ] in
  Alcotest.check term "append item"
    (Term.seq [ Term.Int 1; Term.Int 2 ])
    (Term.seq_append h (Term.Int 2));
  Alcotest.check term "append phi is identity" h (Term.seq_append h (Term.phi 0));
  Alcotest.check term "append empty seq is identity" h
    (Term.seq_append h (Term.seq []));
  Alcotest.check term "append seq concatenates"
    (Term.seq [ Term.Int 1; Term.Int 2; Term.Int 3 ])
    (Term.seq_append h (Term.seq [ Term.Int 2; Term.Int 3 ]))

let test_term_append_invalid () =
  Alcotest.(check bool) "append to non-seq raises" true
    (try
       ignore (Term.seq_append (Term.Int 1) (Term.Int 2));
       false
     with Invalid_argument _ -> true)

let test_term_prefix () =
  let short = Term.seq [ Term.Int 1; Term.Int 2 ] in
  let long = Term.seq [ Term.Int 1; Term.Int 2; Term.Int 3 ] in
  Alcotest.(check bool) "prefix" true (Term.seq_is_prefix short long);
  Alcotest.(check bool) "not prefix" false (Term.seq_is_prefix long short);
  Alcotest.(check bool) "reflexive" true (Term.seq_is_prefix long long);
  Alcotest.(check bool) "diverging" false
    (Term.seq_is_prefix (Term.seq [ Term.Int 9 ]) long)

let test_term_project () =
  let h = Term.seq [ Term.rot 0; Term.datum 1 1; Term.rot 2 ] in
  let rots =
    Term.seq_project ~keep:(function Term.App ("rot", _) -> true | _ -> false) h
  in
  Alcotest.check term "projection" (Term.seq [ Term.rot 0; Term.rot 2 ]) rots

let test_term_vars_and_ground () =
  let t = Term.App ("f", [ Term.Var "X"; Term.Bag [ Term.Var "Y"; Term.Var "X" ] ]) in
  Alcotest.(check (list string)) "vars in first-occurrence order" [ "X"; "Y" ]
    (Term.vars t);
  Alcotest.(check bool) "not ground" false (Term.is_ground t);
  Alcotest.(check bool) "ground" true (Term.is_ground (Term.Int 3))

let prop_canonicalize_idempotent =
  QCheck.Test.make ~name:"canonicalize idempotent" ~count:300 arbitrary_ground
    (fun t ->
      let once = Term.canonicalize t in
      Term.equal once (Term.canonicalize once))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300
    (QCheck.pair arbitrary_ground arbitrary_ground) (fun (a, b) ->
      let a = Term.canonicalize a and b = Term.canonicalize b in
      let c1 = Term.compare a b and c2 = Term.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_canonicalize_sharing =
  (* Idempotence, strengthened to physical equality: re-canonicalising a
     canonical term must return it unchanged (the allocation-free fast
     path the explorer's hot loop relies on). *)
  QCheck.Test.make ~name:"canonicalize shares canonical terms" ~count:300
    arbitrary_ground (fun t ->
      let c = Term.canonicalize t in
      Term.canonicalize c == c && Term.is_canonical c)

let prop_hash_stable_under_canonicalize =
  QCheck.Test.make ~name:"hash t = hash (canonicalize t) for canonical t"
    ~count:300 arbitrary_ground (fun t ->
      let c = Term.canonicalize t in
      Term.hash c = Term.hash (Term.canonicalize c) && Term.hash c >= 0)

let prop_hash_respects_ac_equality =
  QCheck.Test.make ~name:"AC-equal bags hash alike after canonicalize"
    ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 5) arbitrary_ground)
    (fun items ->
      let a = Term.canonicalize (Term.Bag items) in
      let b = Term.canonicalize (Term.Bag (List.rev items)) in
      Term.equal a b && Term.hash a = Term.hash b)

let test_term_hashed_tbl () =
  let a = Term.bag [ Term.Int 1; Term.Int 2 ] in
  let b = Term.bag [ Term.Int 2; Term.Int 1 ] in
  let tbl = Term.Tbl.create 16 in
  Term.Tbl.replace tbl (Term.Hashed.make a) ();
  Alcotest.(check bool) "AC-equal key found" true
    (Term.Tbl.mem tbl (Term.Hashed.make b));
  Alcotest.(check bool) "distinct term absent" false
    (Term.Tbl.mem tbl (Term.Hashed.make (Term.Int 3)));
  let h = Term.Hashed.make a in
  Alcotest.(check int) "cached hash is the structural hash" (Term.hash a)
    (Term.Hashed.hash h);
  Alcotest.check term "round-trips the term" a (Term.Hashed.term h)

(* ---------------- Subst ---------------- *)

let test_subst_basics () =
  let s = Subst.bind Subst.empty "X" (Term.Int 1) in
  Alcotest.(check (option term)) "find" (Some (Term.Int 1)) (Subst.find s "X");
  Alcotest.(check bool) "mem" true (Subst.mem s "X");
  Alcotest.(check int) "find_int" 1 (Subst.find_int s "X")

let test_subst_merge () =
  let a = Subst.bind Subst.empty "X" (Term.Int 1) in
  let b = Subst.bind Subst.empty "Y" (Term.Int 2) in
  let conflicting = Subst.bind Subst.empty "X" (Term.Int 9) in
  Alcotest.(check bool) "consistent merge" true
    (Option.is_some (Subst.merge_consistent a b));
  Alcotest.(check bool) "conflict detected" true
    (Option.is_none (Subst.merge_consistent a conflicting))

let test_subst_apply_append () =
  let s =
    Subst.bind
      (Subst.bind Subst.empty "H" (Term.seq [ Term.Int 1 ]))
      "d" (Term.Int 2)
  in
  let rhs = Term.App ("append", [ Term.Var "H"; Term.Var "d" ]) in
  Alcotest.check term "append evaluated"
    (Term.seq [ Term.Int 1; Term.Int 2 ])
    (Subst.apply s rhs)

let test_subst_apply_leaves_unbound () =
  let out = Subst.apply Subst.empty (Term.Var "Z") in
  Alcotest.check term "unbound stays" (Term.Var "Z") out

(* ---------------- Matching ---------------- *)

let test_match_constants () =
  Alcotest.(check bool) "same const" true
    (Matching.is_instance ~pattern:(Term.Const "a") (Term.Const "a"));
  Alcotest.(check bool) "diff const" false
    (Matching.is_instance ~pattern:(Term.Const "a") (Term.Const "b"))

let test_match_var_binding () =
  match Matching.matches ~pattern:(Term.Var "X") (Term.Int 7) with
  | Some s -> Alcotest.(check int) "bound" 7 (Subst.find_int s "X")
  | None -> Alcotest.fail "expected match"

let test_match_repeated_var () =
  let pattern = Term.App ("f", [ Term.Var "X"; Term.Var "X" ]) in
  Alcotest.(check bool) "equal args" true
    (Matching.is_instance ~pattern (Term.App ("f", [ Term.Int 1; Term.Int 1 ])));
  Alcotest.(check bool) "unequal args" false
    (Matching.is_instance ~pattern (Term.App ("f", [ Term.Int 1; Term.Int 2 ])))

let test_match_wildcard () =
  Alcotest.(check bool) "wild matches anything" true
    (Matching.is_instance ~pattern:Term.Wild (Term.App ("f", [ Term.Int 1 ])));
  match Matching.matches ~pattern:Term.Wild (Term.Int 1) with
  | Some s -> Alcotest.(check bool) "binds nothing" true (Subst.is_empty s)
  | None -> Alcotest.fail "wild must match"

let test_match_bag_rest () =
  let pattern = Term.Bag [ Term.Var "Q"; Term.Int 1 ] in
  let subject = Term.bag [ Term.Int 1; Term.Int 2; Term.Int 3 ] in
  match Matching.matches ~pattern subject with
  | Some s ->
      Alcotest.check term "rest bound to remainder"
        (Term.bag [ Term.Int 2; Term.Int 3 ])
        (Option.get (Subst.find s "Q"))
  | None -> Alcotest.fail "expected match"

let test_match_bag_rest_empty () =
  let pattern = Term.Bag [ Term.Var "Q"; Term.Int 1 ] in
  match Matching.matches ~pattern (Term.bag [ Term.Int 1 ]) with
  | Some s ->
      Alcotest.check term "rest empty" (Term.bag [])
        (Option.get (Subst.find s "Q"))
  | None -> Alcotest.fail "expected match"

let test_match_bag_enumerates_choices () =
  (* (x, d) against a bag of two pairs: two ways to choose x. *)
  let pattern =
    Term.Bag [ Term.Var "Q"; Term.pair (Term.Var "x") (Term.Var "d") ]
  in
  let subject =
    Term.bag [ Term.pair (Term.Int 0) (Term.Int 10); Term.pair (Term.Int 1) (Term.Int 11) ]
  in
  let matches = Matching.all_matches ~pattern subject in
  Alcotest.(check int) "two matches" 2 (List.length matches);
  let xs =
    List.sort compare (List.map (fun s -> Subst.find_int s "x") matches)
  in
  Alcotest.(check (list int)) "both elements tried" [ 0; 1 ] xs

let test_match_bag_distinct_members () =
  (* Two element patterns must match two distinct members. *)
  let e v = Term.App ("e", [ v ]) in
  let pattern = Term.Bag [ e (Term.Var "X"); e (Term.Var "Y") ] in
  Alcotest.(check bool) "needs two members" false
    (Matching.is_instance ~pattern (Term.bag [ e (Term.Int 1) ]));
  Alcotest.(check bool) "two members match" true
    (Matching.is_instance ~pattern (Term.bag [ e (Term.Int 1); e (Term.Int 2) ]))

let test_match_two_rest_vars_invalid () =
  let pattern = Term.Bag [ Term.Var "A"; Term.Var "B"; Term.Int 1 ] in
  ignore pattern;
  (* A and B are both rest candidates only if both are bare... here the
     elements are [Int 1] and rests A, B: invalid. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Matching.all_matches ~pattern (Term.bag [ Term.Int 1; Term.Int 2 ]));
       false
     with Invalid_argument _ -> true)

let test_match_requires_ground_subject () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Matching.all_matches ~pattern:Term.Wild (Term.Var "X"));
       false
     with Invalid_argument _ -> true)

let test_match_seq_lengths () =
  let pattern = Term.Seq [ Term.Var "A"; Term.Var "B" ] in
  Alcotest.(check bool) "same length" true
    (Matching.is_instance ~pattern (Term.seq [ Term.Int 1; Term.Int 2 ]));
  Alcotest.(check bool) "different length" false
    (Matching.is_instance ~pattern (Term.seq [ Term.Int 1 ]))

let prop_match_self =
  QCheck.Test.make ~name:"every ground term matches itself" ~count:300
    arbitrary_ground (fun t ->
      let t = Term.canonicalize t in
      Matching.is_instance ~pattern:t t)

let prop_match_instance_roundtrip =
  QCheck.Test.make ~name:"substitution applied to pattern gives subject"
    ~count:200 arbitrary_ground (fun t ->
      let t = Term.canonicalize t in
      (* Pattern (Var X) against t: applying the substitution to the
         pattern must reproduce t. *)
      match Matching.matches ~pattern:(Term.Var "X") t with
      | Some s -> Term.equal (Term.canonicalize (Subst.apply s (Term.Var "X"))) t
      | None -> false)

(* ---------------- Rule ---------------- *)

let test_rule_wildcard_pairing () =
  (* (X, -) -> (inc X, -): the second field passes through unchanged. *)
  let rule =
    Rule.make ~name:"inc"
      ~lhs:(Term.App ("s", [ Term.Var "X"; Term.Wild ]))
      ~rhs:(Term.App ("s", [ Term.App ("inc", [ Term.Var "X" ]); Term.Wild ]))
      ()
  in
  let state = Term.App ("s", [ Term.Int 1; Term.Const "payload" ]) in
  match Rule.instances rule state with
  | [ (_, out) ] ->
      Alcotest.check term "payload preserved"
        (Term.App ("s", [ Term.App ("inc", [ Term.Int 1 ]); Term.Const "payload" ]))
        out
  | other -> Alcotest.failf "expected 1 instance, got %d" (List.length other)

let test_rule_unpaired_rhs_wild_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Rule.make ~name:"bad" ~lhs:(Term.Var "X")
            ~rhs:(Term.App ("f", [ Term.Wild ]))
            ());
       false
     with Invalid_argument _ -> true)

let test_rule_guard () =
  let rule =
    Rule.make ~name:"guarded" ~lhs:(Term.Var "X") ~rhs:(Term.Const "fired")
      ~guard:(fun s -> Subst.find_int s "X" > 0)
      ()
  in
  Alcotest.(check int) "guard true" 1 (List.length (Rule.instances rule (Term.Int 5)));
  Alcotest.(check int) "guard false" 0 (List.length (Rule.instances rule (Term.Int 0)))

let test_rule_extend_enumerates () =
  let rule =
    Rule.make ~name:"choose" ~lhs:(Term.Var "X") ~rhs:(Term.Var "Y")
      ~extend:(fun s ->
        List.map (fun k -> Subst.bind s "Y" (Term.Int k)) [ 1; 2; 3 ])
      ()
  in
  let outs = List.map snd (Rule.instances rule (Term.Int 0)) in
  Alcotest.(check (list term)) "three results"
    [ Term.Int 1; Term.Int 2; Term.Int 3 ]
    outs

let test_rule_nonground_rhs_rejected () =
  let rule = Rule.make ~name:"oops" ~lhs:(Term.Var "X") ~rhs:(Term.Var "Y") () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rule.instances rule (Term.Int 1));
       false
     with Invalid_argument _ -> true)

(* ---------------- System / Strategy / Explore ---------------- *)

(* A bounded counter: inc until 3, or reset to 0 from anywhere. *)
let counter_system =
  (* Guards are total: non-integer states are normal forms, not errors. *)
  let as_int s = match Subst.find_exn s "X" with Term.Int i -> Some i | _ -> None in
  let inc =
    Rule.make ~name:"inc" ~lhs:(Term.Var "X")
      ~rhs:(Term.Var "X'")
      ~guard:(fun s -> match as_int s with Some i -> i < 3 | None -> false)
      ~extend:(fun s ->
        match as_int s with
        | Some i -> [ Subst.bind s "X'" (Term.Int (i + 1)) ]
        | None -> [])
      ()
  in
  let reset =
    Rule.make ~name:"reset" ~lhs:(Term.Var "X") ~rhs:(Term.Int 0)
      ~guard:(fun s -> match as_int s with Some i -> i > 0 | None -> false)
      ()
  in
  System.make ~name:"counter" ~rules:[ inc; reset ]

let test_system_successors () =
  Alcotest.(check (list term)) "from 1: 0 and 2"
    [ Term.Int 0; Term.Int 2 ]
    (System.successors counter_system (Term.Int 1));
  Alcotest.(check (list term)) "from 0: only 1" [ Term.Int 1 ]
    (System.successors counter_system (Term.Int 0))

let test_system_normal_form () =
  Alcotest.(check bool) "const is stuck" true
    (System.is_normal_form counter_system (Term.Const "stuck"));
  Alcotest.(check bool) "int 1 is live" false
    (System.is_normal_form counter_system (Term.Int 1))

let test_system_reduce_first () =
  let path =
    System.reduce counter_system ~strategy:Strategy.first ~init:(Term.Int 0)
      ~steps:4
  in
  (* "first" always picks inc until 3, then reset. *)
  Alcotest.(check (list term)) "path"
    [ Term.Int 0; Term.Int 1; Term.Int 2; Term.Int 3; Term.Int 0 ]
    path

let test_system_reduce_round_robin () =
  let path =
    System.reduce counter_system
      ~strategy:(Strategy.round_robin ())
      ~init:(Term.Int 0) ~steps:3
  in
  Alcotest.(check int) "path length" 4 (List.length path)

let test_strategy_custom_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Strategy.choose (Strategy.custom (fun ~count -> count)) ~count:2);
       false
     with Invalid_argument _ -> true)

let test_explore_counts () =
  let stats, violations =
    Explore.bfs counter_system ~init:(Term.Int 0)
  in
  Alcotest.(check int) "4 states" 4 stats.Explore.states;
  Alcotest.(check bool) "not truncated" false stats.truncated;
  Alcotest.(check int) "no violations" 0 (List.length violations)

let test_explore_detects_violation () =
  let check t =
    match t with
    | Term.Int 2 -> Error "two is illegal"
    | _ -> Ok ()
  in
  let _, violations = Explore.bfs ~check counter_system ~init:(Term.Int 0) in
  Alcotest.(check int) "one violation" 1 (List.length violations);
  let v = List.hd violations in
  Alcotest.check term "at state 2" (Term.Int 2) v.Explore.state;
  Alcotest.(check int) "depth 2" 2 v.depth

let test_explore_max_states_truncates () =
  let stats, _ = Explore.bfs ~max_states:2 counter_system ~init:(Term.Int 0) in
  Alcotest.(check bool) "truncated" true stats.Explore.truncated;
  Alcotest.(check int) "bounded" 2 stats.states

let test_explore_max_depth () =
  let stats, _ = Explore.bfs ~max_depth:1 counter_system ~init:(Term.Int 0) in
  (* Depth 1: init and its successors only. *)
  Alcotest.(check int) "two states" 2 stats.Explore.states

let test_explore_edges () =
  let edges = Explore.edges counter_system ~init:(Term.Int 0) in
  Alcotest.(check bool) "inc edge present" true
    (List.exists
       (fun (s, r, t) ->
         Term.equal s (Term.Int 0) && r = "inc" && Term.equal t (Term.Int 1))
       edges);
  Alcotest.(check bool) "reset edge present" true
    (List.exists
       (fun (s, r, t) ->
         Term.equal s (Term.Int 3) && r = "reset" && Term.equal t (Term.Int 0))
       edges)

let test_explore_eventually_holds () =
  (* In the counter, 0 is always eventually reachable (reset). *)
  let report =
    Explore.eventually ~goal:(Term.equal (Term.Int 0)) counter_system
      ~init:(Term.Int 0)
  in
  Alcotest.(check int) "all states can reach 0" report.Explore.explored
    report.can_reach;
  Alcotest.(check (list term)) "no livelocks" [] report.cannot_reach;
  Alcotest.(check int) "no frontier" 0 report.undecided

let test_explore_eventually_detects_livelock () =
  (* A one-way counter: inc only. From 3 (a normal form, not the goal) the
     goal 0 is unreachable. *)
  let inc_only =
    System.make ~name:"inc-only"
      ~rules:[ Option.get (System.find_rule counter_system "inc") ]
  in
  let report =
    Explore.eventually ~goal:(Term.equal (Term.Int 0)) inc_only
      ~init:(Term.Int 1)
  in
  (* 1,2,3 are explored; none can come back to 0. *)
  Alcotest.(check int) "goal unreachable anywhere" 0 report.Explore.can_reach;
  Alcotest.(check int) "three livelocked states" 3
    (List.length report.cannot_reach)

let test_explore_eventually_undecided_on_truncation () =
  let report =
    Explore.eventually ~max_states:2 ~goal:(Term.equal (Term.Int 3))
      counter_system ~init:(Term.Int 0)
  in
  (* Exploration is cut before the goal: nothing should be declared a
     definite livelock. *)
  Alcotest.(check (list term)) "no false livelocks" [] report.Explore.cannot_reach;
  Alcotest.(check bool) "some states undecided" true (report.undecided > 0)

let test_explore_deadlocks () =
  let inc_only =
    System.make ~name:"inc-only"
      ~rules:[ Option.get (System.find_rule counter_system "inc") ]
  in
  Alcotest.(check (list term)) "3 is stuck" [ Term.Int 3 ]
    (Explore.deadlocks inc_only ~init:(Term.Int 0));
  Alcotest.(check (list term)) "full counter never deadlocks" []
    (Explore.deadlocks counter_system ~init:(Term.Int 0))

let test_explore_rule_counts_sorted () =
  (* Pins both the counts and the sort order: alphabetical by rule name
     (explicit comparator, not polymorphic compare). *)
  Alcotest.(check (list (pair string int)))
    "alphabetical by rule name"
    [ ("inc", 3); ("reset", 3) ]
    (Explore.rule_counts counter_system ~init:(Term.Int 0))

let test_explore_shared_pool () =
  (* A caller-supplied pool is borrowed, not consumed: several
     explorations can share it, and results match the sequential run. *)
  Tr_sim.Pool.with_pool ~domains:2 (fun pool ->
      let a = Explore.explore ~pool counter_system ~init:(Term.Int 0) in
      let b = Explore.explore ~pool counter_system ~init:(Term.Int 1) in
      let seq = Explore.explore counter_system ~init:(Term.Int 0) in
      Alcotest.(check int) "domains recorded" 2 a.Explore.perf.Explore.domains_used;
      Alcotest.(check (list term)) "same order" seq.Explore.visited_order
        a.Explore.visited_order;
      Alcotest.(check int) "second exploration" 4 b.Explore.stats.Explore.states)

let test_explore_perf_fields () =
  let o = Explore.explore counter_system ~init:(Term.Int 0) in
  Alcotest.(check int) "one domain" 1 o.Explore.perf.Explore.domains_used;
  Alcotest.(check bool) "wall time non-negative" true
    (o.Explore.perf.Explore.wall_s >= 0.0);
  Alcotest.(check bool) "throughput non-negative" true
    (o.Explore.perf.Explore.states_per_s >= 0.0);
  Alcotest.(check int) "nothing spilled" 0 o.Explore.perf.Explore.spilled_layers;
  (* /proc is available on the platforms we test on. *)
  Alcotest.(check bool) "rss sampled" true (o.Explore.perf.Explore.peak_rss_kb > 0)

let test_explore_spill_smoke () =
  let dir = Filename.get_temp_dir_name () in
  let o =
    Explore.explore ~spill_dir:dir ~spill_chunk:2 counter_system
      ~init:(Term.Int 0)
  in
  Alcotest.(check int) "4 states" 4 o.Explore.stats.Explore.states;
  Alcotest.(check (list term)) "no retained terms" [] o.Explore.visited_order;
  Alcotest.(check bool) "layers spilled" true
    (o.Explore.perf.Explore.spilled_layers > 0);
  Alcotest.(check bool) "bytes accounted" true
    (o.Explore.perf.Explore.spilled_bytes > 0)

let test_explore_invalid_args () =
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "want_edges + spill rejected" true
    (raises (fun () ->
         Explore.explore ~want_edges:true
           ~spill_dir:(Filename.get_temp_dir_name ())
           counter_system ~init:(Term.Int 0)));
  Alcotest.(check bool) "domains < 1 rejected" true
    (raises (fun () ->
         Explore.explore ~domains:0 counter_system ~init:(Term.Int 0)));
  Alcotest.(check bool) "spill_chunk < 1 rejected" true
    (raises (fun () ->
         Explore.explore ~spill_chunk:0 counter_system ~init:(Term.Int 0)))

(* ---------------- Parse ---------------- *)

let test_parse_atoms () =
  Alcotest.check term "int" (Term.Int 42) (Parse.term "42");
  Alcotest.check term "negative int" (Term.Int (-3)) (Parse.term "-3");
  Alcotest.check term "constant" (Term.Const "bot") (Parse.term "bot");
  Alcotest.check term "variable" (Term.Var "Q") (Parse.term "Q");
  Alcotest.check term "wild" Term.Wild (Parse.term "_")

let test_parse_structures () =
  Alcotest.check term "application"
    (Term.App ("phi", [ Term.Int 0 ]))
    (Parse.term "phi(0)");
  Alcotest.check term "bag"
    (Term.bag [ Term.Int 1; Term.Int 2 ])
    (Parse.term "{ 2 | 1 }");
  Alcotest.check term "empty bag" (Term.bag []) (Parse.term "{}");
  Alcotest.check term "sequence"
    (Term.seq [ Term.Int 1; Term.Int 2 ])
    (Parse.term "<1, 2>");
  Alcotest.check term "empty sequence" (Term.seq []) (Parse.term "<>");
  Alcotest.check term "tuple"
    (Term.tuple [ Term.Int 1; Term.Const "a" ])
    (Parse.term "(1, a)");
  Alcotest.check term "grouping is transparent" (Term.Int 5) (Parse.term "((5))")

let test_parse_nested () =
  Alcotest.check term "message"
    (Term.App
       ("msg", [ Term.Int 0; Term.Int 1; Term.App ("tok", [ Term.Seq [] ]) ]))
    (Parse.term "msg(0, 1, tok(<>))");
  (* Lower-case identifiers are constants (the §2 convention). *)
  Alcotest.check term "pattern with rest variable"
    (Term.bag
       [ Term.Var "Q";
         Term.App ("qent", [ Term.Const "x"; Term.Const "d"; Term.Const "b" ]) ])
    (Parse.term "{Q | qent(x, d, b)}");
  Alcotest.check term "uppercase arguments are variables"
    (Term.bag
       [ Term.Var "Q";
         Term.App ("qent", [ Term.Var "X"; Term.Var "D"; Term.Var "B" ]) ])
    (Parse.term "{Q | qent(X, D, B)}")

let test_parse_pattern_matches_spec_state () =
  (* The parsed pattern must match the real initial state of System S. *)
  let pattern = Parse.term "S({Q | qent(X, D, B)}, H)" in
  let subject =
    Term.App
      ( "S",
        [ Term.bag
            [ Term.App ("qent", [ Term.Int 0; Term.Seq []; Term.Int 1 ]);
              Term.App ("qent", [ Term.Int 1; Term.Seq []; Term.Int 1 ]) ];
          Term.Seq [] ] )
  in
  Alcotest.(check int) "two ways to pick the entry" 2
    (List.length (Matching.all_matches ~pattern subject))

let test_parse_errors () =
  let expect_error input =
    match Parse.term_opt input with
    | None -> ()
    | Some t -> Alcotest.failf "%S parsed to %s" input (Term.to_string t)
  in
  expect_error "";
  expect_error "(";
  expect_error "()";
  expect_error "f()";
  expect_error "1 2";
  expect_error "{1 , 2}";
  expect_error "<1 | 2>"

let test_parse_error_position () =
  match Parse.term "{1 , 2}" with
  | exception Parse.Parse_error { position; _ } ->
      Alcotest.(check int) "points at the comma" 3 position
  | t -> Alcotest.failf "parsed to %s" (Term.to_string t)

let test_explore_to_dot () =
  let dot = Explore.to_dot counter_system ~init:(Term.Int 0) in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "has inc edges" true
    (Astring.String.is_infix ~affix:"label=\"inc\"" dot);
  Alcotest.(check bool) "initial state doubled" true
    (Astring.String.is_infix ~affix:"peripheries=2" dot)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "trs"
    [
      ( "term",
        [
          Alcotest.test_case "bag AC equality" `Quick test_term_bag_ac_equal;
          Alcotest.test_case "bag flattening" `Quick test_term_bag_flattening;
          Alcotest.test_case "seq ordered" `Quick test_term_seq_ordered;
          Alcotest.test_case "append" `Quick test_term_append;
          Alcotest.test_case "append invalid" `Quick test_term_append_invalid;
          Alcotest.test_case "prefix" `Quick test_term_prefix;
          Alcotest.test_case "project" `Quick test_term_project;
          Alcotest.test_case "vars/ground" `Quick test_term_vars_and_ground;
          Alcotest.test_case "hashed table" `Quick test_term_hashed_tbl;
        ]
        @ qsuite
            [
              prop_canonicalize_idempotent;
              prop_compare_total_order;
              prop_canonicalize_sharing;
              prop_hash_stable_under_canonicalize;
              prop_hash_respects_ac_equality;
            ] );
      ( "subst",
        [
          Alcotest.test_case "basics" `Quick test_subst_basics;
          Alcotest.test_case "merge" `Quick test_subst_merge;
          Alcotest.test_case "apply append" `Quick test_subst_apply_append;
          Alcotest.test_case "unbound stays" `Quick test_subst_apply_leaves_unbound;
        ] );
      ( "matching",
        [
          Alcotest.test_case "constants" `Quick test_match_constants;
          Alcotest.test_case "var binding" `Quick test_match_var_binding;
          Alcotest.test_case "repeated var" `Quick test_match_repeated_var;
          Alcotest.test_case "wildcard" `Quick test_match_wildcard;
          Alcotest.test_case "bag rest" `Quick test_match_bag_rest;
          Alcotest.test_case "bag rest empty" `Quick test_match_bag_rest_empty;
          Alcotest.test_case "bag enumerates" `Quick test_match_bag_enumerates_choices;
          Alcotest.test_case "bag distinct members" `Quick
            test_match_bag_distinct_members;
          Alcotest.test_case "two rest vars invalid" `Quick
            test_match_two_rest_vars_invalid;
          Alcotest.test_case "ground subject required" `Quick
            test_match_requires_ground_subject;
          Alcotest.test_case "seq lengths" `Quick test_match_seq_lengths;
        ]
        @ qsuite [ prop_match_self; prop_match_instance_roundtrip ] );
      ( "rule",
        [
          Alcotest.test_case "wildcard pairing" `Quick test_rule_wildcard_pairing;
          Alcotest.test_case "unpaired rhs wild" `Quick
            test_rule_unpaired_rhs_wild_rejected;
          Alcotest.test_case "guard" `Quick test_rule_guard;
          Alcotest.test_case "extend enumerates" `Quick test_rule_extend_enumerates;
          Alcotest.test_case "nonground rhs" `Quick test_rule_nonground_rhs_rejected;
        ] );
      ( "system",
        [
          Alcotest.test_case "successors" `Quick test_system_successors;
          Alcotest.test_case "normal form" `Quick test_system_normal_form;
          Alcotest.test_case "reduce first" `Quick test_system_reduce_first;
          Alcotest.test_case "reduce round-robin" `Quick test_system_reduce_round_robin;
          Alcotest.test_case "custom strategy range" `Quick
            test_strategy_custom_out_of_range;
        ] );
      ( "explore",
        [
          Alcotest.test_case "counts" `Quick test_explore_counts;
          Alcotest.test_case "detects violation" `Quick test_explore_detects_violation;
          Alcotest.test_case "max states truncates" `Quick
            test_explore_max_states_truncates;
          Alcotest.test_case "max depth" `Quick test_explore_max_depth;
          Alcotest.test_case "edges" `Quick test_explore_edges;
          Alcotest.test_case "to_dot" `Quick test_explore_to_dot;
          Alcotest.test_case "eventually holds" `Quick test_explore_eventually_holds;
          Alcotest.test_case "eventually detects livelock" `Quick
            test_explore_eventually_detects_livelock;
          Alcotest.test_case "eventually undecided on truncation" `Quick
            test_explore_eventually_undecided_on_truncation;
          Alcotest.test_case "deadlocks" `Quick test_explore_deadlocks;
          Alcotest.test_case "shared pool" `Quick test_explore_shared_pool;
          Alcotest.test_case "perf fields" `Quick test_explore_perf_fields;
          Alcotest.test_case "spill smoke" `Quick test_explore_spill_smoke;
          Alcotest.test_case "invalid args" `Quick test_explore_invalid_args;
          Alcotest.test_case "rule counts sorted" `Quick
            test_explore_rule_counts_sorted;
        ] );
      ( "parse",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "structures" `Quick test_parse_structures;
          Alcotest.test_case "nested" `Quick test_parse_nested;
          Alcotest.test_case "pattern vs spec state" `Quick
            test_parse_pattern_matches_spec_state;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error position" `Quick test_parse_error_position;
        ] );
    ]
