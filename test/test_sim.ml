(* Unit and property tests for Tr_sim: RNG, priority queue, network
   model, workloads, metrics semantics, traces, and the event engine. *)

open Tr_sim

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 20 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_int_invalid () =
  let r = Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.create 7 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:5.0 in
    if x <= 0.0 then Alcotest.fail "exponential must be positive";
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean ~ 5" true (mean > 4.7 && mean < 5.3)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" false (Int64.equal xa xb)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int within [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float within [0,bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.float r bound in
      x >= 0.0 && x < bound)

(* ---------------- Pqueue ---------------- *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  List.iter (fun t -> Pqueue.push q ~time:t t) [ 3.0; 1.0; 2.0; 0.5 ];
  let order = List.init 4 (fun _ -> Option.get (Pqueue.pop q)) in
  Alcotest.(check (list (float 1e-9)))
    "sorted" [ 0.5; 1.0; 2.0; 3.0 ]
    (List.map fst order);
  Alcotest.(check bool) "drained" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~time:1.0 p) [ "a"; "b"; "c" ];
  let payloads = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "insertion order on equal keys"
    [ "a"; "b"; "c" ] payloads

let test_pqueue_peek_clear () =
  let q = Pqueue.create () in
  Alcotest.(check (option (float 1e-9))) "peek empty" None (Pqueue.peek_time q);
  Pqueue.push q ~time:2.0 ();
  Alcotest.(check (option (float 1e-9))) "peek" (Some 2.0) (Pqueue.peek_time q);
  Pqueue.clear q;
  Alcotest.(check int) "cleared" 0 (Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pops come out sorted" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_bound_exclusive 1000.0))
    (fun times ->
      let q = Pqueue.create () in
      List.iter (fun t -> Pqueue.push q ~time:t ()) times;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (t, ()) -> drain (t :: acc)
      in
      let out = drain [] in
      List.sort Float.compare times = out)

(* Reference model: a stable sorted association list. Times are drawn
   from a tiny grid so equal keys are common and the FIFO tie-break is
   exercised on every run, interleaved with pops and peeks. *)
let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches sorted-list model" ~count:300
    QCheck.(list_of_size Gen.(0 -- 200) (option (int_range 0 5)))
    (fun ops ->
      let q = Pqueue.create () in
      let model = ref [] in
      let next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
          | Some grid ->
              let time = float_of_int grid in
              Pqueue.push q ~time !next_id;
              let rec ins = function
                | (t', id') :: rest when t' <= time -> (t', id') :: ins rest
                | rest -> (time, !next_id) :: rest
              in
              model := ins !model;
              incr next_id
          | None -> (
              match (Pqueue.pop q, !model) with
              | None, [] -> ()
              | Some (t, id), (t', id') :: rest when t = t' && id = id' ->
                  model := rest
              | _ -> ok := false));
          match (Pqueue.peek_time q, !model) with
          | None, [] -> ()
          | Some t, (t', _) :: _ when t = t' -> ()
          | _ -> ok := false)
        ops;
      !ok && Pqueue.length q = List.length !model)

(* Popping must blank the vacated slot: a queue that stays alive (here
   via its keeper entry) must not pin payloads it already handed out. *)
let test_pqueue_popped_slot_released () =
  let q = Pqueue.create () in
  Pqueue.push q ~time:2.0 "keeper";
  let w = Weak.create 1 in
  let () =
    let payload = String.init 32 (fun i -> Char.chr (65 + (i mod 26))) in
    Weak.set w 0 (Some payload);
    Pqueue.push q ~time:1.0 payload
  in
  (match Pqueue.pop q with
  | Some (t, _) -> check_float "popped the early entry" 1.0 t
  | None -> Alcotest.fail "queue was non-empty");
  ignore (Sys.opaque_identity (Array.make 64 0));
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" true (Weak.get w 0 = None);
  Alcotest.(check int) "keeper still queued" 1 (Pqueue.length q)

(* [clear] empties the queue but deliberately does NOT reset the
   sequence counter (per-run numbering comes from a fresh queue, as
   Engine.create makes one); FIFO tie order must survive a clear. *)
let test_pqueue_clear_keeps_fifo () =
  let q = Pqueue.create () in
  List.iter (fun p -> Pqueue.push q ~time:1.0 p) [ "old1"; "old2" ];
  Pqueue.clear q;
  Alcotest.(check bool) "empty after clear" true (Pqueue.is_empty q);
  List.iter (fun p -> Pqueue.push q ~time:1.0 p) [ "x"; "y"; "z" ];
  let payloads = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  Alcotest.(check (list string)) "ties still FIFO after clear"
    [ "x"; "y"; "z" ] payloads

(* ---------------- Network ---------------- *)

let test_network_constant_delay () =
  let net = Network.create ~reliable_delay:(Network.Constant 2.5) () in
  let rng = Rng.create 0 in
  check_float "constant" 2.5
    (Network.sample_delay net rng Network.Reliable ~src:0 ~dst:1)

let test_network_uniform_delay_bounds () =
  let net = Network.create ~cheap_delay:(Network.Uniform (1.0, 3.0)) () in
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let d = Network.sample_delay net rng Network.Cheap ~src:0 ~dst:1 in
    if d < 1.0 || d > 3.0 then Alcotest.failf "delay %g out of range" d
  done

let test_network_per_link_delay () =
  let net =
    Network.create
      ~reliable_delay:
        (Network.Per_link (fun ~src ~dst -> if src = 0 && dst = 1 then 7.0 else 1.0))
      ()
  in
  let rng = Rng.create 0 in
  check_float "slow link" 7.0
    (Network.sample_delay net rng Network.Reliable ~src:0 ~dst:1);
  check_float "normal link" 1.0
    (Network.sample_delay net rng Network.Reliable ~src:1 ~dst:0)

let test_network_drop_probability () =
  let never = Network.create ~cheap_drop_probability:0.0 () in
  let always = Network.create ~cheap_drop_probability:1.0 () in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "never drops" false
    (Network.dropped never rng Network.Cheap ~src:0 ~dst:1);
  Alcotest.(check bool) "always drops cheap" true
    (Network.dropped always rng Network.Cheap ~src:0 ~dst:1);
  Alcotest.(check bool) "reliable immune to loss" false
    (Network.dropped always rng Network.Reliable ~src:0 ~dst:1)

let test_network_partition () =
  let net = Network.create ~partitioned:(fun s d -> s = 0 && d = 1) () in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "partitioned link drops reliable" true
    (Network.dropped net rng Network.Reliable ~src:0 ~dst:1);
  Alcotest.(check bool) "other links fine" false
    (Network.dropped net rng Network.Reliable ~src:1 ~dst:0)

let test_network_invalid () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Network.create: drop probability outside [0,1]")
    (fun () -> ignore (Network.create ~cheap_drop_probability:1.5 ()))

(* ---------------- Workload ---------------- *)

let test_workload_validation () =
  let rng = Rng.create 0 in
  let expect_invalid name spec =
    Alcotest.(check bool)
      name true
      (try
         ignore (Workload.make spec ~n:4 ~rng);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "bad mean" (Workload.Global_poisson { mean_interarrival = 0.0 });
  expect_invalid "bad node" (Workload.Continuous { node = 9 });
  expect_invalid "bad burst" (Workload.Burst { period = 1.0; size = 9 });
  expect_invalid "bad bias"
    (Workload.Hotspot { mean_interarrival = 1.0; hot = 0; bias = 2.0 });
  expect_invalid "unsorted script" (Workload.Script [ (2.0, 1); (1.0, 0) ])

let test_workload_script_batches () =
  let rng = Rng.create 0 in
  let w =
    Workload.make (Workload.Script [ (1.0, 0); (1.0, 2); (5.0, 1) ]) ~n:4 ~rng
  in
  (match Workload.first w with
  | Some (t, nodes) ->
      check_float "time" 1.0 t;
      Alcotest.(check (list int)) "simultaneous batch" [ 0; 2 ] nodes
  | None -> Alcotest.fail "expected first batch");
  (match Workload.next w ~after:1.0 with
  | Some (t, nodes) ->
      check_float "second" 5.0 t;
      Alcotest.(check (list int)) "single" [ 1 ] nodes
  | None -> Alcotest.fail "expected second batch");
  Alcotest.(check bool) "exhausted" true (Workload.next w ~after:5.0 = None)

let test_workload_poisson_monotone () =
  let rng = Rng.create 9 in
  let w =
    Workload.make (Workload.Global_poisson { mean_interarrival = 2.0 }) ~n:8 ~rng
  in
  let rec walk last remaining =
    if remaining = 0 then ()
    else
      match Workload.next w ~after:last with
      | Some (t, [ node ]) ->
          if t <= last then Alcotest.fail "time must advance";
          if node < 0 || node >= 8 then Alcotest.fail "node out of range";
          walk t (remaining - 1)
      | Some _ -> Alcotest.fail "poisson emits single nodes"
      | None -> Alcotest.fail "poisson is endless"
  in
  let t0, _ = Option.get (Workload.first w) in
  walk t0 50

let test_workload_burst_distinct () =
  let rng = Rng.create 4 in
  let w = Workload.make (Workload.Burst { period = 3.0; size = 4 }) ~n:6 ~rng in
  match Workload.first w with
  | Some (t, nodes) ->
      check_float "period" 3.0 t;
      Alcotest.(check int) "size" 4 (List.length nodes);
      Alcotest.(check int) "distinct" 4
        (List.length (List.sort_uniq compare nodes))
  | None -> Alcotest.fail "burst has arrivals"

let test_workload_hotspot_bias () =
  let rng = Rng.create 2 in
  let w =
    Workload.make
      (Workload.Hotspot { mean_interarrival = 1.0; hot = 3; bias = 0.8 })
      ~n:8 ~rng
  in
  let hot = ref 0 and total = 500 in
  let last = ref 0.0 in
  for _ = 1 to total do
    match Workload.next w ~after:!last with
    | Some (t, [ node ]) ->
        if node = 3 then incr hot;
        last := t
    | _ -> Alcotest.fail "hotspot emits single nodes"
  done;
  let share = float_of_int !hot /. float_of_int total in
  Alcotest.(check bool) "hot node gets ~80%+" true (share > 0.7)

let test_workload_per_node_poisson () =
  let rng = Rng.create 6 in
  let w =
    Workload.make (Workload.Per_node_poisson { mean_interarrival = 5.0 }) ~n:3
      ~rng
  in
  let counts = Array.make 3 0 in
  let last = ref (-1.0) in
  for _ = 1 to 300 do
    match Workload.next w ~after:!last with
    | Some (t, [ node ]) ->
        if t < !last then Alcotest.fail "time went backwards";
        counts.(node) <- counts.(node) + 1;
        last := t
    | _ -> Alcotest.fail "per-node poisson emits single nodes"
  done;
  Array.iter
    (fun c -> if c < 60 then Alcotest.failf "node starved: %d arrivals" c)
    counts

let test_workload_continuous () =
  let rng = Rng.create 1 in
  let w = Workload.make (Workload.Continuous { node = 2 }) ~n:4 ~rng in
  Alcotest.(check bool) "single initial arrival" true
    (Workload.first w = Some (0.0, [ 2 ]));
  Alcotest.(check bool) "no scheduled repeats" true
    (Workload.next w ~after:0.0 = None);
  Alcotest.(check bool) "rerequest flag" true
    (Workload.wants_immediate_rerequest w 2);
  Alcotest.(check bool) "only that node" false
    (Workload.wants_immediate_rerequest w 1)

(* ---------------- Metrics ---------------- *)

let test_metrics_responsiveness_semantics () =
  let m = Metrics.create ~n:4 in
  (* Busy window: r1 at t=1, r2 at t=2; serves at t=5 and t=9. The first
     sample measures from the window opening (t=1); the second from the
     previous service (t=5), because demand never drained. *)
  Metrics.on_request m ~time:1.0 ~node:0;
  Metrics.on_request m ~time:2.0 ~node:1;
  Metrics.on_serve m ~time:5.0 ~node:0;
  Metrics.on_serve m ~time:9.0 ~node:1;
  let q = Metrics.responsiveness_quantiles m in
  check_float "first sample" 4.0 (Tr_stats.Quantile.quantile q 0.0);
  check_float "second sample" 4.0 (Tr_stats.Quantile.quantile q 1.0);
  check_float "mean waiting" 5.5 (Tr_stats.Summary.mean (Metrics.waiting m))

let test_metrics_idle_gap_resets_window () =
  let m = Metrics.create ~n:2 in
  Metrics.on_request m ~time:1.0 ~node:0;
  Metrics.on_serve m ~time:2.0 ~node:0;
  (* System idle in (2, 10): the next window opens at the request. *)
  Metrics.on_request m ~time:10.0 ~node:1;
  Metrics.on_serve m ~time:12.0 ~node:1;
  let q = Metrics.responsiveness_quantiles m in
  check_float "second window" 2.0 (Tr_stats.Quantile.quantile q 1.0)

let test_metrics_serve_without_request () =
  let m = Metrics.create ~n:2 in
  Alcotest.(check bool) "raises" true
    (try
       Metrics.on_serve m ~time:1.0 ~node:0;
       false
     with Invalid_argument _ -> true)

let test_metrics_fifo_waiting () =
  let m = Metrics.create ~n:1 in
  Metrics.on_request m ~time:1.0 ~node:0;
  Metrics.on_request m ~time:5.0 ~node:0;
  Metrics.on_serve m ~time:6.0 ~node:0;
  (* served the t=1 request: waited 5; t=5 request still queued *)
  check_float "oldest first" 5.0 (Tr_stats.Summary.last (Metrics.waiting m));
  Alcotest.(check (option (float 1e-9)))
    "next oldest" (Some 5.0)
    (Metrics.oldest_arrival m ~node:0)

let test_metrics_messages_and_possessions () =
  let m = Metrics.create ~n:3 in
  Metrics.on_message m Network.Reliable Metrics.Token_msg;
  Metrics.on_message m Network.Cheap Metrics.Control_msg;
  Metrics.on_message m Network.Cheap Metrics.Token_msg;
  Alcotest.(check int) "token" 2 (Metrics.token_messages m);
  Alcotest.(check int) "control" 1 (Metrics.control_messages m);
  Alcotest.(check int) "cheap channel" 2 (Metrics.cheap_messages m);
  Metrics.on_token_possession m ~node:1;
  Metrics.on_token_possession m ~node:1;
  Metrics.on_token_possession m ~node:2;
  Alcotest.(check int) "max possessions" 2 (Metrics.max_possessions m);
  check_float "imbalance" 2.0 (Metrics.possession_imbalance m)

let test_metrics_waiting_fairness () =
  let m = Metrics.create ~n:3 in
  Alcotest.(check bool) "nan before serves" true
    (Float.is_nan (Metrics.waiting_fairness m));
  (* Two nodes wait equally -> index 1. *)
  Metrics.on_request m ~time:0.0 ~node:0;
  Metrics.on_serve m ~time:2.0 ~node:0;
  Metrics.on_request m ~time:10.0 ~node:1;
  Metrics.on_serve m ~time:12.0 ~node:1;
  check_float "equal waits" 1.0 (Metrics.waiting_fairness m);
  (* A third node waiting much longer drags the index below 1. *)
  Metrics.on_request m ~time:20.0 ~node:2;
  Metrics.on_serve m ~time:40.0 ~node:2;
  Alcotest.(check bool) "skew detected" true (Metrics.waiting_fairness m < 0.7);
  check_float "per-node summary" 20.0
    (Tr_stats.Summary.mean (Metrics.waiting_by_node m ~node:2))

(* ---------------- Trace ---------------- *)

let test_trace_disabled () =
  let t = Trace.create ~enabled:false () in
  Trace.record t ~time:1.0 (Trace.Request { node = 0 });
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t)

let test_trace_possessions () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 (Trace.Token_at { node = 0 });
  Trace.record t ~time:2.0 (Trace.Request { node = 1 });
  Trace.record t ~time:3.0 (Trace.Token_at { node = 1 });
  Alcotest.(check (list (pair (float 1e-9) int)))
    "possessions"
    [ (1.0, 0); (3.0, 1) ]
    (Trace.token_possessions t)

let test_trace_series () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 (Trace.Request { node = 0 });
  Trace.record t ~time:2.0 (Trace.Request { node = 1 });
  Trace.record t ~time:3.0 (Trace.Served { node = 0; waited = 2.0 });
  Trace.record t ~time:5.0 (Trace.Served { node = 1; waited = 3.0 });
  Alcotest.(check (list (pair (float 1e-9) int)))
    "pending"
    [ (1.0, 1); (2.0, 2); (3.0, 1); (5.0, 0) ]
    (Trace.pending_series t);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "served" [ (3.0, 1); (5.0, 2) ] (Trace.served_series t);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "running mean (window 2)"
    [ (3.0, 2.0); (5.0, 2.5) ]
    (Trace.running_mean_waiting t ~window:2)

let test_trace_running_mean_window_slides () =
  let t = Trace.create () in
  List.iteri
    (fun i w ->
      Trace.record t ~time:(float_of_int i) (Trace.Served { node = 0; waited = w }))
    [ 10.0; 20.0; 30.0; 40.0 ];
  let last = List.nth (Trace.running_mean_waiting t ~window:2) 3 in
  Alcotest.(check (pair (float 1e-9) (float 1e-9)))
    "last two only" (3.0, 35.0) last

(* Accessors must not rebuild the entry list on every call (the old list
   representation re-reversed it each time): repeated [events] calls
   return the memoized list itself, and recording invalidates it. *)
let test_trace_events_memoized () =
  let t = Trace.create () in
  for i = 1 to 100 do
    Trace.record t ~time:(float_of_int i) (Trace.Request { node = i })
  done;
  let first = Trace.events t in
  Alcotest.(check bool) "second call returns the memoized list" true
    (Trace.events t == first);
  let bytes_before = Gc.allocated_bytes () in
  for _ = 1 to 50 do
    ignore (Sys.opaque_identity (Trace.events t))
  done;
  let per_call = (Gc.allocated_bytes () -. bytes_before) /. 50.0 in
  Alcotest.(check bool) "memoized calls allocate ~nothing" true
    (per_call < 128.0);
  Trace.record t ~time:101.0 (Trace.Request { node = 0 });
  Alcotest.(check bool) "recording invalidates the memo" true
    (Trace.events t != first);
  Alcotest.(check int) "still complete" 101 (List.length (Trace.events t))

let test_trace_ring_window () =
  let t = Trace.create ~window:3 () in
  Alcotest.(check (option int)) "window exposed" (Some 3) (Trace.ring_window t);
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) (Trace.Request { node = i })
  done;
  Alcotest.(check int) "total ever recorded" 5 (Trace.length t);
  Alcotest.(check int) "bounded retention" 3 (Trace.stored_length t);
  Alcotest.(check int) "dropped count" 2 (Trace.dropped t);
  let nodes =
    List.map
      (fun { Trace.event; _ } ->
        match event with Trace.Request { node } -> node | _ -> -1)
      (Trace.events t)
  in
  Alcotest.(check (list int)) "keeps the most recent, in order" [ 3; 4; 5 ]
    nodes

let test_trace_window_invalid () =
  Alcotest.(check bool) "window 0 rejected" true
    (try
       ignore (Trace.create ~window:0 ());
       false
     with Invalid_argument _ -> true)

(* ---------------- Engine ---------------- *)

(* A minimal ping protocol: node 0 sends Ping around the ring forever;
   each node serves local requests on receipt. *)
module Ping = struct
  type state = { seen : int }
  type msg = Ping of int

  let name = "ping"
  let describe = "test protocol"
  let classify (Ping _) = Metrics.Token_msg
  let label (Ping k) = Printf.sprintf "ping%d" k

  let init (ctx : msg Node_intf.ctx) =
    if ctx.self = 0 then ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Ping 1);
    { seen = 0 }

  let on_message (ctx : msg Node_intf.ctx) state ~src:_ (Ping k) =
    ctx.possession ();
    while ctx.pending () > 0 do
      ctx.serve ()
    done;
    ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self) (Ping (k + 1));
    { seen = state.seen + 1 }

  let on_timer _ctx state ~key:_ = state
  let on_request _ctx state = state
end

module E = Engine.Make (Ping)

let test_engine_unit_delay_rotation () =
  let t = E.create (Engine.default_config ~n:4 ~seed:0) in
  E.run t ~stop:(Engine.At_time 10.0);
  (* One hop per unit: the init send plus one per delivery through t=10. *)
  Alcotest.(check int) "token messages" 11 (Metrics.token_messages (E.metrics t));
  Alcotest.(check bool) "clock within bound" true (E.now t <= 10.0)

let test_engine_serves_and_stops () =
  let config =
    {
      (Engine.default_config ~n:4 ~seed:0) with
      workload = Workload.Script [ (2.5, 2); (3.5, 3) ];
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves 2);
  Alcotest.(check int) "both served" 2 (Metrics.serves (E.metrics t));
  let w = Metrics.waiting (E.metrics t) in
  (* Each request waits at most one full revolution of the ping. *)
  Alcotest.(check bool) "waited for next visit" true
    (Tr_stats.Summary.max w <= 4.0)

let test_engine_determinism () =
  let run seed =
    let config =
      {
        (Engine.default_config ~n:5 ~seed) with
        workload = Workload.Global_poisson { mean_interarrival = 3.0 };
      }
    in
    let t = E.create config in
    E.run t ~stop:(Engine.After_serves 50);
    (E.now t, Metrics.token_messages (E.metrics t))
  in
  Alcotest.(check (pair (float 1e-9) int)) "same seed same run" (run 5) (run 5);
  Alcotest.(check bool) "different seed differs" true (run 5 <> run 6)

let test_engine_crash_blackholes () =
  let config =
    { (Engine.default_config ~n:3 ~seed:0) with crashes = [ (4.5, 2) ] }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.At_time 20.0);
  Alcotest.(check bool) "crashed flag" true (E.crashed t 2);
  (* The ping dies when it hits the crashed node. *)
  Alcotest.(check bool) "rotation stopped" true
    (Metrics.token_messages (E.metrics t) < 8)

let test_engine_request_now () =
  let t = E.create (Engine.default_config ~n:4 ~seed:0) in
  E.run t ~stop:(Engine.At_time 1.5);
  E.request_now t ~node:3;
  E.run t ~stop:(Engine.After_serves 1);
  Alcotest.(check int) "served the manual request" 1 (Metrics.serves (E.metrics t))

module Timers = struct
  type state = { fired : int list }
  type msg = Never [@warning "-37"] (* the protocol never sends *)

  let name = "timers"
  let describe = "timer test protocol"
  let classify Never = Metrics.Control_msg
  let label Never = "never"

  let init (ctx : msg Node_intf.ctx) =
    if ctx.self = 0 then begin
      ctx.set_timer ~delay:1.0 ~key:1;
      ctx.set_timer ~delay:2.0 ~key:2;
      ctx.set_timer ~delay:3.0 ~key:1
    end;
    { fired = [] }

  let on_message _ctx state ~src:_ Never = state

  let on_timer (ctx : msg Node_intf.ctx) state ~key =
    (* Cancelling inside a handler voids the later key-1 timer. *)
    if key = 2 then ctx.cancel_timers ~key:1;
    { fired = key :: state.fired }

  let on_request _ctx state = state
end

module Rogue = struct
  type state = unit
  type msg = Out

  let name = "rogue"
  let describe = "sends out of range"
  let classify Out = Metrics.Control_msg
  let label Out = "out"

  let init (ctx : msg Node_intf.ctx) =
    if ctx.self = 0 then ctx.send ~dst:99 Out;
    ()

  let on_message _ctx state ~src:_ Out = state
  let on_timer _ctx state ~key:_ = state
  let on_request _ctx state = state
end

let test_engine_rejects_bad_send () =
  let module ER = Engine.Make (Rogue) in
  Alcotest.(check bool) "out-of-range dst raises at init" true
    (try
       ignore (ER.create (Engine.default_config ~n:4 ~seed:0));
       false
     with Invalid_argument _ -> true)

module NegTimer = struct
  type state = unit
  type msg = Never2 [@warning "-37"]

  let name = "neg-timer"
  let describe = "sets a negative timer"
  let classify Never2 = Metrics.Control_msg
  let label Never2 = "never"

  let init (ctx : msg Node_intf.ctx) =
    if ctx.self = 0 then ctx.set_timer ~delay:(-1.0) ~key:1;
    ()

  let on_message _ctx state ~src:_ Never2 = state
  let on_timer _ctx state ~key:_ = state
  let on_request _ctx state = state
end

let test_engine_rejects_negative_timer () =
  let module EN = Engine.Make (NegTimer) in
  Alcotest.(check bool) "negative delay raises" true
    (try
       ignore (EN.create (Engine.default_config ~n:2 ~seed:0));
       false
     with Invalid_argument _ -> true)

let test_engine_n_too_small () =
  Alcotest.(check bool) "n < 2 rejected" true
    (try
       ignore (E.create (Engine.default_config ~n:1 ~seed:0));
       false
     with Invalid_argument _ -> true)

let test_engine_timer_cancellation () =
  let module ET = Engine.Make (Timers) in
  let t = ET.create (Engine.default_config ~n:2 ~seed:0) in
  ET.run t ~stop:(Engine.At_time 10.0);
  Alcotest.(check (list int)) "t=3 key-1 cancelled by key-2 at t=2" [ 2; 1 ]
    (ET.state t 0).Timers.fired

let test_engine_events_counter () =
  let t = E.create (Engine.default_config ~n:4 ~seed:0) in
  Alcotest.(check int) "no events before run" 0 (E.events_processed t);
  E.run t ~stop:(Engine.At_time 10.0);
  (* Unit-delay rotation: exactly one delivery per time unit. *)
  Alcotest.(check int) "ten deliveries" 10 (E.events_processed t);
  E.run t ~stop:(Engine.At_time 15.0);
  Alcotest.(check int) "counter accumulates across runs" 15
    (E.events_processed t)

let test_engine_trace_window () =
  let config =
    {
      (Engine.default_config ~n:4 ~seed:0) with
      trace = true;
      trace_window = Some 5;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.At_time 20.0);
  let trace = E.trace t in
  Alcotest.(check (option int)) "ring window wired" (Some 5)
    (Trace.ring_window trace);
  Alcotest.(check bool) "recorded more than the window" true
    (Trace.length trace > 5);
  Alcotest.(check int) "retention bounded" 5 (Trace.stored_length trace)

(* Protocols use small positive timer keys; a key beyond the initial
   scalar-table bound must grow the table, not corrupt epochs. *)
module BigKey = struct
  type state = { fired : int list }
  type msg = Never3 [@warning "-37"]

  let name = "big-key"
  let describe = "uses a timer key past the initial keyspace"
  let classify Never3 = Metrics.Control_msg
  let label Never3 = "never"

  let init (ctx : msg Node_intf.ctx) =
    if ctx.self = 0 then begin
      ctx.set_timer ~delay:1.0 ~key:97;
      ctx.set_timer ~delay:2.0 ~key:97;
      ctx.set_timer ~delay:3.0 ~key:2
    end;
    { fired = [] }

  let on_message _ctx state ~src:_ Never3 = state

  let on_timer (ctx : msg Node_intf.ctx) state ~key =
    (* First key-97 firing cancels the second one. *)
    if key = 97 && state.fired = [] then ctx.cancel_timers ~key:97;
    { fired = key :: state.fired }

  let on_request _ctx state = state
end

let test_engine_large_timer_key () =
  let module EB = Engine.Make (BigKey) in
  let t = EB.create (Engine.default_config ~n:2 ~seed:0) in
  EB.run t ~stop:(Engine.At_time 10.0);
  Alcotest.(check (list int)) "key-97 fires once, key-2 unaffected" [ 2; 97 ]
    (EB.state t 0).BigKey.fired

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_changes_stream;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        ]
        @ qsuite [ prop_rng_int_bounds; prop_rng_float_bounds ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek/clear" `Quick test_pqueue_peek_clear;
          Alcotest.test_case "popped slot released" `Quick
            test_pqueue_popped_slot_released;
          Alcotest.test_case "clear keeps fifo" `Quick
            test_pqueue_clear_keeps_fifo;
        ]
        @ qsuite [ prop_pqueue_sorted; prop_pqueue_model ] );
      ( "network",
        [
          Alcotest.test_case "constant delay" `Quick test_network_constant_delay;
          Alcotest.test_case "uniform bounds" `Quick test_network_uniform_delay_bounds;
          Alcotest.test_case "per-link delay" `Quick test_network_per_link_delay;
          Alcotest.test_case "drop probability" `Quick test_network_drop_probability;
          Alcotest.test_case "partition" `Quick test_network_partition;
          Alcotest.test_case "invalid" `Quick test_network_invalid;
        ] );
      ( "workload",
        [
          Alcotest.test_case "validation" `Quick test_workload_validation;
          Alcotest.test_case "script batches" `Quick test_workload_script_batches;
          Alcotest.test_case "poisson monotone" `Quick test_workload_poisson_monotone;
          Alcotest.test_case "burst distinct" `Quick test_workload_burst_distinct;
          Alcotest.test_case "hotspot bias" `Quick test_workload_hotspot_bias;
          Alcotest.test_case "per-node poisson" `Quick test_workload_per_node_poisson;
          Alcotest.test_case "continuous" `Quick test_workload_continuous;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "responsiveness semantics" `Quick
            test_metrics_responsiveness_semantics;
          Alcotest.test_case "idle gap resets window" `Quick
            test_metrics_idle_gap_resets_window;
          Alcotest.test_case "serve without request" `Quick
            test_metrics_serve_without_request;
          Alcotest.test_case "fifo waiting" `Quick test_metrics_fifo_waiting;
          Alcotest.test_case "messages/possessions" `Quick
            test_metrics_messages_and_possessions;
          Alcotest.test_case "waiting fairness" `Quick test_metrics_waiting_fairness;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "possessions" `Quick test_trace_possessions;
          Alcotest.test_case "series" `Quick test_trace_series;
          Alcotest.test_case "running-mean window" `Quick
            test_trace_running_mean_window_slides;
          Alcotest.test_case "events memoized" `Quick test_trace_events_memoized;
          Alcotest.test_case "ring window" `Quick test_trace_ring_window;
          Alcotest.test_case "window invalid" `Quick test_trace_window_invalid;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unit delay rotation" `Quick
            test_engine_unit_delay_rotation;
          Alcotest.test_case "serves and stops" `Quick test_engine_serves_and_stops;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "crash blackholes" `Quick test_engine_crash_blackholes;
          Alcotest.test_case "request_now" `Quick test_engine_request_now;
          Alcotest.test_case "timer cancellation" `Quick
            test_engine_timer_cancellation;
          Alcotest.test_case "rejects bad send" `Quick test_engine_rejects_bad_send;
          Alcotest.test_case "rejects negative timer" `Quick
            test_engine_rejects_negative_timer;
          Alcotest.test_case "n too small" `Quick test_engine_n_too_small;
          Alcotest.test_case "events counter" `Quick test_engine_events_counter;
          Alcotest.test_case "trace window" `Quick test_engine_trace_window;
          Alcotest.test_case "large timer key" `Quick
            test_engine_large_timer_key;
        ] );
    ]
