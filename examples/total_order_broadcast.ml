(* Total-order broadcast on the adaptive token (the paper's group
   communication motivation, §1.1).

   The token is a roving sequencer: whoever holds it stamps its pending
   broadcasts with consecutive global sequence numbers. We run 16 nodes
   under a bursty workload over a network with RANDOMIZED delays and a
   lossy cheap channel, then check the application-level prefix property:
   every node's delivery log is a prefix of the global sequence. Search
   messages get dropped (they are "cheap" hints), yet safety holds — the
   paper's two-tier message discipline in action.

   Run with: dune exec examples/total_order_broadcast.exe *)

open Tr_sim
module E = Engine.Make (Tr_apps.Total_order.Impl)

let () =
  let n = 16 in
  let network =
    Network.create
      ~reliable_delay:(Network.Uniform (0.5, 2.0))
      ~cheap_delay:(Network.Uniform (0.5, 4.0))
      ~cheap_drop_probability:0.2 ()
  in
  let config =
    {
      (Engine.default_config ~n ~seed:7) with
      network;
      workload = Workload.Burst { period = 9.0; size = 3 };
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves 120);
  (* Drain in-flight broadcasts. *)
  E.run t ~stop:(Engine.At_time (E.now t +. 50.0));

  let logs =
    List.init n (fun i -> Tr_apps.Total_order.delivered (E.state t i))
  in
  let lengths = List.map List.length logs in
  let longest = List.fold_left Stdlib.max 0 lengths in
  let reference =
    List.find (fun log -> List.length log = longest) logs
  in
  let is_prefix a b =
    let rec go a b =
      match (a, b) with
      | [], _ -> true
      | _, [] -> false
      | x :: a', y :: b' -> x = y && go a' b'
    in
    go a b
  in
  let all_prefixes = List.for_all (fun log -> is_prefix log reference) logs in
  Format.printf "nodes: %d, sequenced broadcasts: %d@." n longest;
  Format.printf "delivery log lengths: %s@."
    (String.concat " " (List.map string_of_int lengths));
  Format.printf "all logs are prefixes of the longest: %b@." all_prefixes;
  Format.printf
    "(random delays + 20%% cheap-message loss: ordering still total,@.\
     because sequencing rides the token, not the network)@.";
  if not all_prefixes then exit 1
