(* Distributed mutual exclusion with real critical sections.

   32 nodes contend for a resource; each critical section occupies it for
   1.5 time units. The token both serializes access (safety: critical
   sections never overlap — checked from the trace) and keeps access fair
   (the possession spread stays flat). Message delays are randomized to
   show safety does not depend on timing.

   Run with: dune exec examples/mutex_service.exe *)

open Tr_sim
module P = (val Tr_apps.Mutex.make ~cs_duration:1.5 ())
module E = Engine.Make (P)

let () =
  let n = 32 in
  let config =
    {
      (Engine.default_config ~n ~seed:11) with
      network = Network.create ~reliable_delay:(Network.Uniform (0.5, 1.5)) ();
      workload = Workload.Per_node_poisson { mean_interarrival = 120.0 };
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.After_serves 200);

  let intervals = Tr_apps.Mutex.cs_intervals (E.trace t) in
  let overlap = Tr_apps.Mutex.intervals_overlap intervals in
  let m = E.metrics t in
  Format.printf "critical sections completed: %d@." (List.length intervals);
  Format.printf "any two sections overlap:    %b@." overlap;
  Format.printf "mean waiting time:           %.2f@."
    (Tr_stats.Summary.mean (Metrics.waiting m));
  Format.printf "p99 waiting time:            %.2f@."
    (Tr_stats.Quantile.p99 (Metrics.waiting_quantiles m));
  let holders =
    List.sort_uniq compare (List.map (fun (node, _, _) -> node) intervals)
  in
  Format.printf "distinct nodes that entered: %d / %d@." (List.length holders) n;
  if overlap then exit 1
