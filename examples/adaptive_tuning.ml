(* Adaptive tuning: what the §4.4 speed control and the push-pull dual
   buy you when the system is mostly idle.

   Same light workload (one request per ~300 time units on a 64-node
   ring) under three regimes:
     - the plain ring keeps the token spinning: ~300 expensive messages
       per served request;
     - adaptive speed slows the idle rotation by ~8x;
     - push-pull parks the token entirely and pays O(1) expensive
       messages per serve, at the cost of cheap probe traffic.

   Run with: dune exec examples/adaptive_tuning.exe *)

let () =
  let n = 64 and seed = 9 in
  let config =
    {
      (Tokenring.Engine.default_config ~n ~seed) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 300.0 };
    }
  in
  let stop =
    Tokenring.Engine.First_of
      [ Tokenring.Engine.After_serves 150; Tokenring.Engine.At_time 100000.0 ]
  in
  Format.printf "%-10s %12s %12s %14s %16s@." "protocol" "resp" "wait"
    "token-msgs/srv" "control-msgs/srv";
  List.iter
    (fun name ->
      let o = Tokenring.Runner.run_named name config ~stop in
      let m = o.Tokenring.Runner.metrics in
      let serves = float_of_int (Stdlib.max 1 (Tokenring.Metrics.serves m)) in
      Format.printf "%-10s %12.2f %12.2f %14.1f %16.1f@." name
        (Tokenring.Summary.mean (Tokenring.Metrics.responsiveness m))
        (Tokenring.Summary.mean (Tokenring.Metrics.waiting m))
        (float_of_int (Tokenring.Metrics.token_messages m) /. serves)
        (float_of_int (Tokenring.Metrics.control_messages m) /. serves))
    [ "ring"; "binsearch"; "adaptive"; "pushpull" ];
  Format.printf
    "@.The trade the paper describes: cheap messages may be spent freely@.\
     to steer the system; expensive (token) messages are what adaptive@.\
     speed and push-pull save when demand is low.@."
