(* Token-loss recovery (the paper's §5 extension).

   A 24-node fail-safe ring. At t = 100 we crash node 5 — while it holds
   the token, thanks to the protocol's per-visit hold time, so the token
   dies with it. A later requester times out, polls the survivors for the
   last sighting, and the best witness regenerates a generation-2 token.
   We print the recovery milestones from the trace and show service
   continues afterwards.

   Run with: dune exec examples/failure_recovery.exe *)

open Tr_sim
module P = (val Tr_proto.Failure.make ())
module E = Engine.Make (P)

let () =
  let n = 24 in
  (* Node 0 passes immediately at t = 0; each later node holds for 0.5
     after a 1.0 hop, so node k (k >= 1) holds during [1.5k - 0.5, 1.5k).
     Crash node 5 in the middle of its hold window, token in hand. *)
  let crash_time = (1.5 *. 5.0) -. 0.5 in
  let config =
    {
      (Engine.default_config ~n ~seed:3) with
      workload = Workload.Global_poisson { mean_interarrival = 15.0 };
      crashes = [ (crash_time +. 0.2, 5) ];
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 150; Engine.At_time 20000.0 ]);

  let m = E.metrics t in
  Format.printf "crashed node 5 at t = %.1f (while holding the token)@."
    (crash_time +. 0.2);
  Format.printf "requests served despite the loss: %d@." (Metrics.serves m);
  let milestones =
    Trace.filter (E.trace t) ~f:(fun { Trace.event; _ } ->
        match event with
        | Trace.Crashed _ -> true
        | Trace.Note { text; _ } ->
            String.length text > 0
            && (String.equal text "token loss suspected; broadcasting WhoHas"
               || String.length text >= 12
                  && String.equal (String.sub text 0 12) "regenerating")
        | _ -> false)
  in
  Format.printf "recovery milestones:@.";
  List.iter
    (fun { Trace.time; event } ->
      Format.printf "  %8.1f  %a@." time Trace.pp_event event)
    milestones;
  let final_gen =
    List.fold_left
      (fun acc i -> Stdlib.max acc (Tr_proto.Failure.generation (E.state t i)))
      0
      (List.init n (fun i -> i))
  in
  Format.printf "final token generation: %d@." final_gen;
  if Metrics.serves m < 100 || final_gen < 2 then exit 1
