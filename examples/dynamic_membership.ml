(* Dynamic ring membership (the paper's §5 future work).

   A 10-node simulator world starts with a 5-member logical ring. Nodes
   6, 7 and 8 join at staggered times; node 2 later leaves. All splices
   are token-ordered, so the ring never tears even while requests keep
   flowing. We print the membership timeline from the trace and show the
   token's visit pattern before and after.

   Run with: dune exec examples/dynamic_membership.exe *)

open Tr_sim

module P =
  (val Tr_proto.Membership.make ~initial_members:5
         ~joins:[ (6, 25.0); (7, 50.0); (8, 75.0) ]
         ~leaves:[ (2, 100.0) ]
         ())

module E = Engine.Make (P)

let () =
  let n = 10 in
  let config =
    {
      (Engine.default_config ~n ~seed:21) with
      workload = Workload.Script
          (List.init 30 (fun i ->
               (6.0 *. float_of_int (i + 1), [| 0; 1; 3; 4; 6 |].(i mod 5))));
      trace = true;
    }
  in
  let t = E.create config in
  E.run t ~stop:(Engine.First_of [ Engine.After_serves 30; Engine.At_time 2000.0 ]);

  Format.printf "membership timeline:@.";
  List.iter
    (fun { Trace.time; event } ->
      match event with
      | Trace.Note { node; text } -> Format.printf "  %6.1f  node %d: %s@." time node text
      | _ -> ())
    (Trace.events (E.trace t));

  let members =
    List.filter (fun i -> Tr_proto.Membership.is_member (E.state t i))
      (List.init n (fun i -> i))
  in
  Format.printf "final members: %s@."
    (String.concat " " (List.map string_of_int members));
  let late_possessions =
    List.filter (fun (time, _) -> time > 120.0) (Trace.token_possessions (E.trace t))
  in
  let visited = List.sort_uniq compare (List.map snd late_possessions) in
  Format.printf "token visits after t=120: %s@."
    (String.concat " " (List.map string_of_int visited));
  Format.printf "requests served: %d / 30@." (Metrics.serves (E.metrics t));
  if Metrics.serves (E.metrics t) < 30 then exit 1
