(* Quickstart: run the paper's headline comparison once.

   A 100-node ring under the Figure 9 load (one request every 10 time
   units on average, uniformly placed). The regular ring's responsiveness
   settles near the interarrival time; the adaptive BinarySearch protocol
   answers in ~log2(100) ~ 6.6 time units with a handful of cheap search
   messages per request.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let n = 100 and seed = 1 in
  let config =
    {
      (Tokenring.Engine.default_config ~n ~seed) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = 10.0 };
    }
  in
  let stop = Tokenring.Runner.rounds_stop ~n ~rounds:1000 in
  List.iter
    (fun name ->
      let outcome = Tokenring.Runner.run_named name config ~stop in
      Format.printf "--- %s ---@.%a@." name Tokenring.Runner.pp_outcome outcome)
    [ "ring"; "binsearch" ];
  Format.printf
    "The shapes to look for: ring responsiveness ~ 10 (the load's mean@.\
     interarrival), binsearch responsiveness ~ log2(100) = 6.6 — the@.\
     paper's Figure 9 at n = 100.@."
