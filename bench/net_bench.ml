(* Live-I/O throughput benchmark -> BENCH_net.json.

   Three angles on the wire path, mirroring BENCH_sim.json's policy
   (wall-clock best of 3, committed baseline measured at the pre-refactor
   commit on the same host):

   - loopback_frames: encode->send->poll->decode pipeline through the
     in-process loopback transport, zero delay, batched pump. Measures
     the allocation discipline of the codec/frame layers plus the
     mailbox/heap hop.

   - uds_frames: the same pump over a real Unix-domain stream socket
     pair hosted in one process. Measures syscall batching: the
     pre-refactor path paid one write(2) per frame; the batched path
     coalesces a whole pump iteration into one write.

   - grants_per_s: end-to-end live loopback clusters (closed-loop
     binsearch/ring) at small unit scale — the protocol-visible number
     the wire path ultimately serves.

   Allocation rates come from Gc.quick_stat deltas around the timed
   section (minor+major words per frame). *)

module Clock = Tr_net_rt.Clock
module Transport = Tr_net_rt.Transport
module Cluster = Tr_net_rt.Cluster
module Readiness = Tr_net_rt.Readiness
module Codec = Tr_wire.Codec
module Codecs = Tr_wire.Codecs
module Metrics = Tr_sim.Metrics
module Quantile = Tr_stats.Quantile

let quick = Array.exists (String.equal "--quick") Sys.argv

let best_of reps f =
  let rec go best left =
    if left = 0 then best
    else begin
      let t0 = Unix.gettimeofday () in
      f ();
      go (Stdlib.min best (Unix.gettimeofday () -. t0)) (left - 1)
    end
  in
  go infinity reps

(* Words allocated by [f ()] (minor + major), and its result. *)
let alloc_words f =
  let s0 = Gc.quick_stat () in
  let r = f () in
  let s1 = Gc.quick_stat () in
  let words =
    s1.Gc.minor_words -. s0.Gc.minor_words
    +. (s1.Gc.major_words -. s0.Gc.major_words)
  in
  (r, words)

(* ------------------------------------------------------------------ *)
(* Frame pumps                                                         *)
(* ------------------------------------------------------------------ *)

(* One pump iteration sends [batch] envelope frames 0 -> 1 and drains
   the receiver; [total] frames flow end to end. The message is a ring
   token — the smallest real protocol payload, so the numbers bound the
   per-frame overhead rather than payload memcpy. *)
let batch = 64

let pump_loopback ~total () =
  let clock = Clock.create ~unit_s:1e-3 () in
  let t = Transport.loopback ~clock ~n:2 in
  let scratch = Codec.scratch () in
  let received = ref 0 in
  let sent = ref 0 in
  let on_frame view =
    match Codec.decode_view Codecs.ring view with
    | Ok _ -> incr received
    | Error _ -> failwith "net_bench: loopback decode error"
  in
  while !received < total do
    let k = Stdlib.min batch (total - !sent) in
    for _ = 1 to k do
      let frame =
        Codec.encode_frame scratch Codecs.ring ~src:0
          ~channel:Tr_sim.Network.Reliable
          (Tr_proto.Ring.Token { stamp = !sent })
      in
      Transport.send_frame t ~src:0 ~dst:1 ~delay:0.0 frame;
      incr sent
    done;
    Transport.poll t ~owner:1 on_frame
  done;
  Transport.close t;
  let stats = Transport.stats t in
  (Atomic.get stats.Transport.frames_sent, Atomic.get stats.Transport.bytes_sent)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tr-net-bench-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Unix.unlink (Filename.concat dir f) with _ -> ())
        (try Sys.readdir dir with _ -> [||]);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

(* Same pump over a Unix-domain stream socket (both ends hosted in this
   process: node 0 writes, node 1 reads; poll 0 flushes, poll 1 drains).
   Returns (frames_sent, bytes_sent, write_syscalls, read_syscalls) —
   one poll now flushes a whole batch with a single write(2), where the
   pre-refactor path paid one write(2) per frame. *)
let pump_uds ~total () =
  with_temp_dir (fun dir ->
      let clock = Clock.create ~unit_s:1e-3 () in
      let addrs = Transport.uds_addrs ~dir ~n:2 in
      let t = Transport.sockets ~clock ~n:2 ~owned:[ 0; 1 ] ~addrs () in
      let scratch = Codec.scratch () in
      let received = ref 0 in
      let sent = ref 0 in
      let on_frame view =
        match Codec.decode_view Codecs.ring view with
        | Ok _ -> incr received
        | Error _ -> failwith "net_bench: uds decode error"
      in
      while !received < total do
        let k = Stdlib.min batch (total - !sent) in
        for _ = 1 to k do
          let frame =
            Codec.encode_frame scratch Codecs.ring ~src:0
              ~channel:Tr_sim.Network.Reliable
              (Tr_proto.Ring.Token { stamp = !sent })
          in
          Transport.send_frame t ~src:0 ~dst:1 ~delay:0.0 frame;
          incr sent
        done;
        (* Flush node 0's coalesced buffer, then drain node 1's socket. *)
        Transport.poll t ~owner:0 (fun _ -> ());
        Transport.poll t ~owner:1 on_frame
      done;
      let stats = Transport.stats t in
      let counters =
        ( Atomic.get stats.Transport.frames_sent,
          Atomic.get stats.Transport.bytes_sent,
          Atomic.get stats.Transport.write_syscalls,
          Atomic.get stats.Transport.read_syscalls )
      in
      Transport.close t;
      counters)

(* ------------------------------------------------------------------ *)
(* End-to-end live clusters: grants/s vs N                             *)
(* ------------------------------------------------------------------ *)

let grants_case ~protocol ~n ~grants =
  let config =
    {
      (Cluster.default_config ~n ~seed:42) with
      unit_s = 1e-4;
      load = Cluster.Closed_loop { depth = 2 };
      stop = Cluster.Grants grants;
      max_wall_s = 60.0;
    }
  in
  let report = Cluster.run_packed config (Codecs.find_exn protocol) in
  if report.Cluster.decode_errors > 0 then
    failwith
      (Printf.sprintf "net_bench: %s n=%d live decode errors" protocol n);
  report

(* ------------------------------------------------------------------ *)
(* Live scaling: UDS grants/s vs N per readiness backend               *)
(* ------------------------------------------------------------------ *)

(* One socket ring hosted in this process (every node owned, one shard),
   closed-loop depth 1, under a forced readiness backend. These rows are
   single-shot, not best-of-3: a run is seconds long and its throughput
   is an average over ~10^4..10^6 grants already. *)
let scaling_config ~n ~readiness ~stop ~max_wall_s =
  {
    (Cluster.default_config ~n ~seed:42) with
    unit_s = 1e-4;
    shards = 1;
    load = Cluster.Closed_loop { depth = 1 };
    stop;
    max_wall_s;
    readiness;
  }

let scaling_row ~readiness ~procs ~n ~grants ~wall_s ~resp_p99 ~wait_calls
    ~fds_registered ~avg_ready =
  Printf.sprintf
    {|    { "protocol": "ring", "n": %d, "readiness": %S, "procs": %d,
      "load": "closed:1", "grants": %d, "wall_s": %.3f, "grants_per_s": %.0f,
      "resp_p99_units": %.3f, "wait_calls": %d, "fds_registered": %d,
      "avg_ready_per_wait": %s }|}
    n readiness procs grants wall_s
    (float_of_int grants /. Float.max 1e-9 wall_s)
    resp_p99 wait_calls fds_registered
    (match avg_ready with
    | None -> "null"
    | Some a -> Printf.sprintf "%.2f" a)

let scaling_case ~backend ~n ~grants =
  with_temp_dir (fun dir ->
      Format.eprintf "live uds ring n=%d %s (%d grants)...@." n
        (Readiness.backend_name backend)
        grants;
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        scaling_config ~n ~readiness:(Some backend)
          ~stop:(Cluster.Grants grants)
          ~max_wall_s:300.0
      in
      let r =
        Cluster.run_packed
          ~backend:(Cluster.Sockets { owned = List.init n Fun.id; addrs })
          config (Codecs.find_exn "ring")
      in
      if r.Cluster.decode_errors > 0 then
        failwith (Printf.sprintf "net_bench: uds n=%d live decode errors" n);
      scaling_row
        ~readiness:r.Cluster.readiness ~procs:1 ~n ~grants:r.Cluster.grants
        ~wall_s:r.Cluster.wall_s
        ~resp_p99:
          (Quantile.quantile (Metrics.responsiveness_quantiles r.Cluster.metrics) 0.99)
        ~wait_calls:r.Cluster.wait_calls
        ~fds_registered:r.Cluster.fds_registered
        ~avg_ready:(Some r.Cluster.avg_ready_per_wait))

(* Beyond ~6.6k nodes a single process blows RLIMIT_NOFILE (20k here,
   un-raisable in this container: ~3 fds per self-hosted node), so the
   10k point runs as a forked fleet — each child hosts a contiguous
   slice and the per-process fd bill halves. Duration-stopped: grants
   are summed after the fact. *)
let fleet_case ~procs ~n ~duration_units =
  with_temp_dir (fun dir ->
      Format.eprintf "live uds ring n=%d epoll fleet procs=%d (%.0f units)...@."
        n procs duration_units;
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        scaling_config ~n ~readiness:(Some Readiness.Epoll)
          ~stop:(Cluster.Duration duration_units)
          ~max_wall_s:120.0
      in
      let members =
        Cluster.run_fleet ~procs ~addrs config (Codecs.find_exn "ring")
      in
      if List.length members < procs then
        failwith "net_bench: fleet child missing";
      let sum f = List.fold_left (fun a m -> a + f m) 0 members in
      let fmax f = List.fold_left (fun a m -> Float.max a (f m)) 0.0 members in
      if sum (fun m -> m.Cluster.m_decode_errors) > 0 then
        failwith "net_bench: fleet decode errors";
      scaling_row ~readiness:"epoll" ~procs ~n
        ~grants:(sum (fun m -> m.Cluster.m_grants))
        ~wall_s:(fmax (fun m -> m.Cluster.m_wall_s))
        ~resp_p99:(fmax (fun m -> m.Cluster.m_resp_p99))
        ~wait_calls:(sum (fun m -> m.Cluster.m_wait_calls))
        ~fds_registered:(sum (fun m -> m.Cluster.m_fds_registered))
        ~avg_ready:None)

(* ------------------------------------------------------------------ *)
(* Syscall floor: completion backend, spin-wait and the inproc path    *)
(* ------------------------------------------------------------------ *)

(* The PR6 epoll transport pays ~3 syscalls per grant on a closed ring
   (one write, one read, one epoll_wait per hop). These rows measure
   how far the completion backend (batched io_uring submissions, one
   enter per wait), the adaptive spin window (a hit skips the blocking
   enter; gated off loudly on single-CPU hosts) and the in-process
   delivery path (co-hosted hops bypass the kernel, and a wait with
   work already in hand elides the kernel visit entirely) push below
   that floor, against an epoll baseline from the same harness. One
   shard, all nodes self-hosted, like the live_scaling rows. Best of 2
   runs per config: single-shot grants/s on a shared host carries
   ~10-20% scheduling noise, which would swamp the baseline
   comparison. The epoll row is the denominator for
   [reduction_vs_baseline]. *)
let floor_case ~label ~backend ~spin ~inproc ~n ~grants =
  with_temp_dir (fun dir ->
      Format.eprintf "syscall floor n=%d %s (%d grants, best of 2)...@." n
        label grants;
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        {
          (scaling_config ~n ~readiness:(Some backend)
             ~stop:(Cluster.Grants grants)
             ~max_wall_s:300.0)
          with
          spin;
          inproc;
        }
      in
      let one () =
        let r =
          Cluster.run_packed
            ~backend:(Cluster.Sockets { owned = List.init n Fun.id; addrs })
            config (Codecs.find_exn "ring")
        in
        if r.Cluster.decode_errors > 0 then
          failwith
            (Printf.sprintf "net_bench: syscall floor %s n=%d decode errors"
               label n);
        r
      in
      let a = one () in
      let b = one () in
      let best = if a.Cluster.wall_s <= b.Cluster.wall_s then a else b in
      (label, spin, inproc, best))

let floor_rows ~n ~grants =
  let cases =
    (* The epoll baseline must come first: it is every row's
       denominator. Uring rows degrade to the actual backend loudly
       (recorded in the row's "readiness" field) when this kernel
       cannot create a ring. Plain uring is deliberately absent: on a
       single-CPU host the completion path's ~1 enter/grant costs
       slightly more wall time than epoll's 3 cheap syscalls, so it
       reduces the syscall bill without beating baseline throughput —
       the configurations here are the ones that deliver both. *)
    [ ("epoll", Readiness.Epoll, false, false);
      ("epoll+inproc", Readiness.Epoll, false, true);
      ("uring+inproc", Readiness.Uring, false, true);
      ("uring+spin+inproc", Readiness.Uring, true, true);
    ]
    |> List.filter (fun (_, b, _, _) -> Readiness.available b)
  in
  let runs =
    List.map
      (fun (label, backend, spin, inproc) ->
        floor_case ~label ~backend ~spin ~inproc ~n ~grants)
      cases
  in
  match runs with
  | [] -> []
  | (_, _, _, base) :: _ ->
      let base_spg = base.Cluster.syscalls_per_grant in
      let base_gps =
        float_of_int base.Cluster.grants /. Float.max 1e-9 base.Cluster.wall_s
      in
      List.map
        (fun (label, spin, inproc, (r : Cluster.report)) ->
          let gps =
            float_of_int r.Cluster.grants /. Float.max 1e-9 r.Cluster.wall_s
          in
          Printf.sprintf
            {|    { "config": %S, "n": %d, "readiness": %S, "spin": %b, "inproc": %b,
      "grants": %d, "wall_s": %.3f, "grants_per_s": %.0f,
      "syscalls_per_grant": %.3f, "wait_calls": %d, "sqes_submitted": %d,
      "spin_hits": %d, "spin_misses": %d, "inproc_frames": %d,
      "reduction_vs_baseline": %.2f, "grants_per_s_vs_baseline": %.3f }|}
            label n r.Cluster.readiness spin inproc r.Cluster.grants
            r.Cluster.wall_s gps r.Cluster.syscalls_per_grant
            r.Cluster.wait_calls r.Cluster.sqes_submitted r.Cluster.spin_hits
            r.Cluster.spin_misses r.Cluster.inproc_frames
            (base_spg /. Float.max 1e-9 r.Cluster.syscalls_per_grant)
            (gps /. Float.max 1e-9 base_gps))
        runs

(* Demonstrate the select wall rather than assert it: a 512-node
   self-hosted ring builds ~1537 fds once the token has visited the
   whole ring (connections dial lazily, ~2 fds per first-time hop), at
   which point fd values pass FD_SETSIZE and Unix.select refuses. The
   grants target forces at least a full circulation. Record the error
   string verbatim. *)
let select_wall_probe () =
  with_temp_dir (fun dir ->
      let n = 512 in
      let addrs = Transport.uds_addrs ~dir ~n in
      let config =
        scaling_config ~n ~readiness:(Some Readiness.Select)
          ~stop:(Cluster.Grants 5_000) ~max_wall_s:20.0
      in
      match
        Cluster.run_packed
          ~backend:(Cluster.Sockets { owned = List.init n Fun.id; addrs })
          config (Codecs.find_exn "ring")
      with
      | (_ : Cluster.report) -> "completed (unexpected)"
      | exception e -> Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Readiness wait cost: K idle registered fds + one hot one            *)
(* ------------------------------------------------------------------ *)

(* ns per wait with [k] idle socketpair read-ends registered plus one
   holding an unread byte (level-triggered, so every wait reports
   exactly that fd). Isolates what one poll costs as the registration
   count grows — the number that separates O(registered) select/poll
   from O(ready) epoll. Select is capped below K=512: its fd values
   must stay under FD_SETSIZE=1024 and each idle entry burns a pair. *)
let wait_cost_ns ~backend ~k =
  let rd = Readiness.create ~backend () in
  let pairs =
    Array.init (k + 1) (fun _ ->
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  Array.iter (fun (r, _) -> Readiness.set rd r ~read:true ~write:false) pairs;
  let hot_r, hot_w = pairs.(k) in
  ignore (Unix.write_substring hot_w "x" 0 1);
  let ready = ref 0 in
  let cb ~fd:_ ~readable:_ ~writable:_ = incr ready in
  let one () = ignore (Readiness.wait rd ~timeout_s:0.0 cb) in
  one ();
  if !ready = 0 then failwith "net_bench: wait_cost hot fd not ready";
  (* Time-boxed batches: poll at K=4096 is ~100x costlier per wait than
     epoll, so a fixed iteration count would either starve the fast
     backends of resolution or stall the bench. *)
  let box = if quick then 0.05 else 0.25 in
  let measure () =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < box do
      for _ = 1 to 500 do
        one ()
      done;
      iters := !iters + 500
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int !iters *. 1e9
  in
  let reps = if quick then 1 else 3 in
  let rec best b left = if left = 0 then b else best (Float.min b (measure ())) (left - 1) in
  let ns = best infinity reps in
  ignore hot_r;
  Array.iter
    (fun (r, w) ->
      Readiness.remove rd r;
      Unix.close r;
      Unix.close w)
    pairs;
  Readiness.close rd;
  ns

let wait_cost_rows () =
  let combos =
    if quick then
      List.filter_map
        (fun b -> if Readiness.available b then Some (b, 64) else None)
        [ Readiness.Epoll; Readiness.Poll; Readiness.Select ]
    else
      List.concat_map
        (fun b ->
          let ks =
            match b with
            | Readiness.Select -> [ 64; 256; 448 ]
            | _ -> [ 64; 256; 448; 1024; 4096 ]
          in
          if Readiness.available b then List.map (fun k -> (b, k)) ks else [])
        [ Readiness.Epoll; Readiness.Poll; Readiness.Select ]
  in
  List.map
    (fun (b, k) ->
      Format.eprintf "wait cost %s K=%d...@." (Readiness.backend_name b) k;
      let ns = wait_cost_ns ~backend:b ~k in
      Printf.sprintf
        {|    { "backend": %S, "fds_registered": %d, "fds_ready": 1, "ns_per_wait": %.0f }|}
        (Readiness.backend_name b)
        (k + 1) ns)
    combos

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

(* Pre-refactor numbers, measured on this host at commit a628964 with
   this harness (same totals, same best-of-3 policy, same container).
   The old socket path issued one write(2) per frame by construction. *)
type baseline = { frames_per_s : float; syscalls_per_frame : float option }

let loopback_baseline =
  Some { frames_per_s = 2_398_786.0; syscalls_per_frame = None }

let uds_baseline = Some { frames_per_s = 992_474.0; syscalls_per_frame = Some 1.0 }

let case_json ~name ~frames ~bytes ~wall_s ~words_per_frame ~syscalls
    ~(baseline : baseline option) =
  let fps = float_of_int frames /. wall_s in
  let base =
    match baseline with
    | None -> {|"baseline_frames_per_s": null, "speedup": null|}
    | Some b ->
        Printf.sprintf
          {|"baseline_frames_per_s": %.0f, "speedup": %.2f%s|} b.frames_per_s
          (fps /. b.frames_per_s)
          (match b.syscalls_per_frame with
          | None -> ""
          | Some s ->
              Printf.sprintf {|, "baseline_write_syscalls_per_frame": %.2f|} s)
  in
  let sys =
    match syscalls with
    | None -> {|"write_syscalls_per_frame": null|}
    | Some (w, r) ->
        Printf.sprintf
          {|"write_syscalls_per_frame": %.4f, "read_syscalls_per_frame": %.4f|}
          (float_of_int w /. float_of_int frames)
          (float_of_int r /. float_of_int frames)
  in
  Printf.sprintf
    {|    { "case": %S, "frames": %d, "bytes": %d, "wall_s": %.4f,
      "frames_per_s": %.0f, "alloc_words_per_frame": %.1f,
      %s, %s }|}
    name frames bytes wall_s fps words_per_frame sys base

(* Per-stage breakdown of the loopback pipeline — run with --micro to
   see where a frame's nanoseconds go before reaching for a profiler. *)
let micro () =
  let iters = 1_000_000 in
  let stage name f =
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    let s1 = Gc.quick_stat () in
    let words =
      s1.Gc.minor_words -. s0.Gc.minor_words
      +. (s1.Gc.major_words -. s0.Gc.major_words)
    in
    Printf.printf "%-24s %8.1f ns/op %8.1f words/op\n%!" name
      (dt /. float_of_int iters *. 1e9)
      (words /. float_of_int iters)
  in
  let clock = Clock.create ~unit_s:1e-3 () in
  stage "clock_now" (fun () ->
      for _ = 1 to iters do
        ignore (Clock.now clock)
      done);
  let scratch = Codec.scratch () in
  let chan = Tr_sim.Network.Reliable in
  stage "encode_frame" (fun () ->
      for i = 1 to iters do
        ignore
          (Codec.encode_frame scratch Codecs.ring ~src:0 ~channel:chan
             (Tr_proto.Ring.Token { stamp = i }))
      done);
  let frame =
    Codec.encode_envelope Codecs.ring ~src:0 ~channel:chan
      (Tr_proto.Ring.Token { stamp = 123456 })
  in
  stage "decode_exact" (fun () ->
      for _ = 1 to iters do
        match Tr_wire.Frame.decode_exact frame with
        | Ok _ -> ()
        | Error _ -> assert false
      done);
  stage "decode_exact+view" (fun () ->
      for _ = 1 to iters do
        match Tr_wire.Frame.decode_exact frame with
        | Ok v -> (
            match Codec.decode_view Codecs.ring v with
            | Ok _ -> ()
            | Error _ -> assert false)
        | Error _ -> assert false
      done);
  let mb = Tr_net_rt.Mailbox.create () in
  stage "mailbox_push_drain" (fun () ->
      for _ = 1 to iters / 64 do
        for _ = 1 to 64 do
          Tr_net_rt.Mailbox.push mb (0.0, frame)
        done;
        ignore (Tr_net_rt.Mailbox.drain mb)
      done);
  let pq = Tr_sim.Pqueue.create () in
  stage "pqueue_push_pop" (fun () ->
      for _ = 1 to iters / 64 do
        for i = 1 to 64 do
          Tr_sim.Pqueue.push pq ~time:(float_of_int i) frame
        done;
        for _ = 1 to 64 do
          ignore (Tr_sim.Pqueue.pop_exn pq)
        done
      done)

let () =
  if Array.exists (String.equal "--micro") Sys.argv then begin
    micro ();
    exit 0
  end;
  let reps = if quick then 1 else 3 in
  let total = if quick then 20_000 else 2_000_000 in
  ignore (Readiness.raise_nofile ());
  (* The forked fleet must run before anything else: every in-process
     cluster case spawns shard domains, and OCaml forbids Unix.fork once
     any domain has been created. *)
  let fleet_rows =
    if quick then []
    else [ fleet_case ~procs:2 ~n:10_000 ~duration_units:150_000.0 ]
  in
  Format.eprintf "timing loopback pump (%d frames)...@." total;
  let loop_wall = best_of reps (fun () -> ignore (pump_loopback ~total ())) in
  let (loop_frames, loop_bytes), loop_words =
    alloc_words (fun () -> pump_loopback ~total ())
  in
  Format.eprintf "timing uds pump (%d frames)...@." total;
  let uds_total = if quick then 20_000 else 1_000_000 in
  let uds_wall = best_of reps (fun () -> ignore (pump_uds ~total:uds_total ())) in
  let (uds_frames, uds_bytes, uds_writes, uds_reads), uds_words =
    alloc_words (fun () -> pump_uds ~total:uds_total ())
  in
  let ns = if quick then [ 4 ] else [ 4; 8; 16 ] in
  let grants = if quick then 200 else 2000 in
  let grant_rows =
    List.concat_map
      (fun protocol ->
        List.map
          (fun n ->
            Format.eprintf "live %s n=%d (%d grants)...@." protocol n grants;
            let r = grants_case ~protocol ~n ~grants in
            Printf.sprintf
              {|    { "protocol": %S, "n": %d, "grants": %d, "wall_s": %.3f,
      "grants_per_s": %.0f, "frames_per_grant": %.2f }|}
              protocol n r.Cluster.grants r.Cluster.wall_s
              (float_of_int r.Cluster.grants /. r.Cluster.wall_s)
              (float_of_int r.Cluster.frames_sent
              /. float_of_int (Stdlib.max 1 r.Cluster.grants)))
          ns)
      [ "ring"; "binsearch" ]
  in
  (* Live scaling sweep: forced backends where each can run at all.
     select is honest only up to N=256 (a 512-node self-hosted ring
     needs ~1537 fds and Unix.select EINVALs past FD_SETSIZE — probed
     below and recorded verbatim). The N=4096 epoll row is the
     million-grant acceptance run; N=10000 runs as a 2-process fleet. *)
  let scaling_rows =
    if quick then
      List.filter_map
        (fun b ->
          if Readiness.available b then
            Some (scaling_case ~backend:b ~n:64 ~grants:2_000)
          else None)
        [ Readiness.Epoll; Readiness.Poll; Readiness.Select ]
    else
      List.map
        (fun (b, n, grants) -> scaling_case ~backend:b ~n ~grants)
        ([ (Readiness.Epoll, 64, 50_000);
           (Readiness.Epoll, 256, 50_000);
           (Readiness.Epoll, 1024, 50_000);
           (Readiness.Epoll, 4096, 1_000_000);
           (Readiness.Poll, 64, 50_000);
           (Readiness.Poll, 256, 50_000);
           (Readiness.Poll, 1024, 20_000);
           (Readiness.Select, 64, 50_000);
           (Readiness.Select, 256, 20_000);
         ]
        |> List.filter (fun (b, _, _) -> Readiness.available b))
      @ fleet_rows
  in
  let syscall_floor_rows =
    if quick then floor_rows ~n:64 ~grants:2_000
    else floor_rows ~n:1024 ~grants:50_000
  in
  let select_wall = if quick then "not probed (quick mode)" else select_wall_probe () in
  let wait_rows = wait_cost_rows () in
  let json =
    Printf.sprintf
      {|{
  "host": { "cores": %d, "ocaml": %S },
  "mode": %S,
  "policy": "wall-clock best of %d; %d-frame loopback pump, %d-frame uds pump, batch %d; alloc from Gc.quick_stat deltas; live_scaling rows single-shot (seconds-long runs averaging 1e4..1e6 grants); wait_cost best of %d time-boxed batches",
  "cases": [
%s
  ],
  "grants_vs_n": [
%s
  ],
  "live_scaling": [
%s
  ],
  "syscall_floor": [
%s
  ],
  "select_wall_at_n512": %S,
  "wait_cost": [
%s
  ]
}
|}
      (Domain.recommended_domain_count ())
      Sys.ocaml_version
      (if quick then "quick" else "full")
      reps total uds_total batch reps
      (String.concat ",\n"
         [
           case_json ~name:"loopback_frames" ~frames:loop_frames
             ~bytes:loop_bytes ~wall_s:loop_wall
             ~words_per_frame:(loop_words /. float_of_int loop_frames)
             ~syscalls:None ~baseline:loopback_baseline;
           case_json ~name:"uds_frames" ~frames:uds_frames ~bytes:uds_bytes
             ~wall_s:uds_wall
             ~words_per_frame:(uds_words /. float_of_int uds_frames)
             ~syscalls:(Some (uds_writes, uds_reads)) ~baseline:uds_baseline;
         ])
      (String.concat ",\n" grant_rows)
      (String.concat ",\n" scaling_rows)
      (String.concat ",\n" syscall_floor_rows)
      select_wall
      (String.concat ",\n" wait_rows)
  in
  let oc = open_out "BENCH_net.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_net.json (%s mode)@."
    (if quick then "quick" else "full")
