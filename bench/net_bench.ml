(* Live-I/O throughput benchmark -> BENCH_net.json.

   Three angles on the wire path, mirroring BENCH_sim.json's policy
   (wall-clock best of 3, committed baseline measured at the pre-refactor
   commit on the same host):

   - loopback_frames: encode->send->poll->decode pipeline through the
     in-process loopback transport, zero delay, batched pump. Measures
     the allocation discipline of the codec/frame layers plus the
     mailbox/heap hop.

   - uds_frames: the same pump over a real Unix-domain stream socket
     pair hosted in one process. Measures syscall batching: the
     pre-refactor path paid one write(2) per frame; the batched path
     coalesces a whole pump iteration into one write.

   - grants_per_s: end-to-end live loopback clusters (closed-loop
     binsearch/ring) at small unit scale — the protocol-visible number
     the wire path ultimately serves.

   Allocation rates come from Gc.quick_stat deltas around the timed
   section (minor+major words per frame). *)

module Clock = Tr_net_rt.Clock
module Transport = Tr_net_rt.Transport
module Cluster = Tr_net_rt.Cluster
module Codec = Tr_wire.Codec
module Codecs = Tr_wire.Codecs

let quick = Array.exists (String.equal "--quick") Sys.argv

let best_of reps f =
  let rec go best left =
    if left = 0 then best
    else begin
      let t0 = Unix.gettimeofday () in
      f ();
      go (Stdlib.min best (Unix.gettimeofday () -. t0)) (left - 1)
    end
  in
  go infinity reps

(* Words allocated by [f ()] (minor + major), and its result. *)
let alloc_words f =
  let s0 = Gc.quick_stat () in
  let r = f () in
  let s1 = Gc.quick_stat () in
  let words =
    s1.Gc.minor_words -. s0.Gc.minor_words
    +. (s1.Gc.major_words -. s0.Gc.major_words)
  in
  (r, words)

(* ------------------------------------------------------------------ *)
(* Frame pumps                                                         *)
(* ------------------------------------------------------------------ *)

(* One pump iteration sends [batch] envelope frames 0 -> 1 and drains
   the receiver; [total] frames flow end to end. The message is a ring
   token — the smallest real protocol payload, so the numbers bound the
   per-frame overhead rather than payload memcpy. *)
let batch = 64

let pump_loopback ~total () =
  let clock = Clock.create ~unit_s:1e-3 () in
  let t = Transport.loopback ~clock ~n:2 in
  let scratch = Codec.scratch () in
  let received = ref 0 in
  let sent = ref 0 in
  let on_frame view =
    match Codec.decode_view Codecs.ring view with
    | Ok _ -> incr received
    | Error _ -> failwith "net_bench: loopback decode error"
  in
  while !received < total do
    let k = Stdlib.min batch (total - !sent) in
    for _ = 1 to k do
      let frame =
        Codec.encode_frame scratch Codecs.ring ~src:0
          ~channel:Tr_sim.Network.Reliable
          (Tr_proto.Ring.Token { stamp = !sent })
      in
      Transport.send_frame t ~src:0 ~dst:1 ~delay:0.0 frame;
      incr sent
    done;
    Transport.poll t ~owner:1 on_frame
  done;
  Transport.close t;
  let stats = Transport.stats t in
  (Atomic.get stats.Transport.frames_sent, Atomic.get stats.Transport.bytes_sent)

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tr-net-bench-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Unix.unlink (Filename.concat dir f) with _ -> ())
        (try Sys.readdir dir with _ -> [||]);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

(* Same pump over a Unix-domain stream socket (both ends hosted in this
   process: node 0 writes, node 1 reads; poll 0 flushes, poll 1 drains).
   Returns (frames_sent, bytes_sent, write_syscalls, read_syscalls) —
   one poll now flushes a whole batch with a single write(2), where the
   pre-refactor path paid one write(2) per frame. *)
let pump_uds ~total () =
  with_temp_dir (fun dir ->
      let clock = Clock.create ~unit_s:1e-3 () in
      let addrs = Transport.uds_addrs ~dir ~n:2 in
      let t = Transport.sockets ~clock ~n:2 ~owned:[ 0; 1 ] ~addrs in
      let scratch = Codec.scratch () in
      let received = ref 0 in
      let sent = ref 0 in
      let on_frame view =
        match Codec.decode_view Codecs.ring view with
        | Ok _ -> incr received
        | Error _ -> failwith "net_bench: uds decode error"
      in
      while !received < total do
        let k = Stdlib.min batch (total - !sent) in
        for _ = 1 to k do
          let frame =
            Codec.encode_frame scratch Codecs.ring ~src:0
              ~channel:Tr_sim.Network.Reliable
              (Tr_proto.Ring.Token { stamp = !sent })
          in
          Transport.send_frame t ~src:0 ~dst:1 ~delay:0.0 frame;
          incr sent
        done;
        (* Flush node 0's coalesced buffer, then drain node 1's socket. *)
        Transport.poll t ~owner:0 (fun _ -> ());
        Transport.poll t ~owner:1 on_frame
      done;
      let stats = Transport.stats t in
      let counters =
        ( Atomic.get stats.Transport.frames_sent,
          Atomic.get stats.Transport.bytes_sent,
          Atomic.get stats.Transport.write_syscalls,
          Atomic.get stats.Transport.read_syscalls )
      in
      Transport.close t;
      counters)

(* ------------------------------------------------------------------ *)
(* End-to-end live clusters: grants/s vs N                             *)
(* ------------------------------------------------------------------ *)

let grants_case ~protocol ~n ~grants =
  let config =
    {
      (Cluster.default_config ~n ~seed:42) with
      unit_s = 1e-4;
      load = Cluster.Closed_loop { depth = 2 };
      stop = Cluster.Grants grants;
      max_wall_s = 60.0;
    }
  in
  let report = Cluster.run_packed config (Codecs.find_exn protocol) in
  if report.Cluster.decode_errors > 0 then
    failwith
      (Printf.sprintf "net_bench: %s n=%d live decode errors" protocol n);
  report

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

(* Pre-refactor numbers, measured on this host at commit a628964 with
   this harness (same totals, same best-of-3 policy, same container).
   The old socket path issued one write(2) per frame by construction. *)
type baseline = { frames_per_s : float; syscalls_per_frame : float option }

let loopback_baseline =
  Some { frames_per_s = 2_398_786.0; syscalls_per_frame = None }

let uds_baseline = Some { frames_per_s = 992_474.0; syscalls_per_frame = Some 1.0 }

let case_json ~name ~frames ~bytes ~wall_s ~words_per_frame ~syscalls
    ~(baseline : baseline option) =
  let fps = float_of_int frames /. wall_s in
  let base =
    match baseline with
    | None -> {|"baseline_frames_per_s": null, "speedup": null|}
    | Some b ->
        Printf.sprintf
          {|"baseline_frames_per_s": %.0f, "speedup": %.2f%s|} b.frames_per_s
          (fps /. b.frames_per_s)
          (match b.syscalls_per_frame with
          | None -> ""
          | Some s ->
              Printf.sprintf {|, "baseline_write_syscalls_per_frame": %.2f|} s)
  in
  let sys =
    match syscalls with
    | None -> {|"write_syscalls_per_frame": null|}
    | Some (w, r) ->
        Printf.sprintf
          {|"write_syscalls_per_frame": %.4f, "read_syscalls_per_frame": %.4f|}
          (float_of_int w /. float_of_int frames)
          (float_of_int r /. float_of_int frames)
  in
  Printf.sprintf
    {|    { "case": %S, "frames": %d, "bytes": %d, "wall_s": %.4f,
      "frames_per_s": %.0f, "alloc_words_per_frame": %.1f,
      %s, %s }|}
    name frames bytes wall_s fps words_per_frame sys base

(* Per-stage breakdown of the loopback pipeline — run with --micro to
   see where a frame's nanoseconds go before reaching for a profiler. *)
let micro () =
  let iters = 1_000_000 in
  let stage name f =
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    let s1 = Gc.quick_stat () in
    let words =
      s1.Gc.minor_words -. s0.Gc.minor_words
      +. (s1.Gc.major_words -. s0.Gc.major_words)
    in
    Printf.printf "%-24s %8.1f ns/op %8.1f words/op\n%!" name
      (dt /. float_of_int iters *. 1e9)
      (words /. float_of_int iters)
  in
  let clock = Clock.create ~unit_s:1e-3 () in
  stage "clock_now" (fun () ->
      for _ = 1 to iters do
        ignore (Clock.now clock)
      done);
  let scratch = Codec.scratch () in
  let chan = Tr_sim.Network.Reliable in
  stage "encode_frame" (fun () ->
      for i = 1 to iters do
        ignore
          (Codec.encode_frame scratch Codecs.ring ~src:0 ~channel:chan
             (Tr_proto.Ring.Token { stamp = i }))
      done);
  let frame =
    Codec.encode_envelope Codecs.ring ~src:0 ~channel:chan
      (Tr_proto.Ring.Token { stamp = 123456 })
  in
  stage "decode_exact" (fun () ->
      for _ = 1 to iters do
        match Tr_wire.Frame.decode_exact frame with
        | Ok _ -> ()
        | Error _ -> assert false
      done);
  stage "decode_exact+view" (fun () ->
      for _ = 1 to iters do
        match Tr_wire.Frame.decode_exact frame with
        | Ok v -> (
            match Codec.decode_view Codecs.ring v with
            | Ok _ -> ()
            | Error _ -> assert false)
        | Error _ -> assert false
      done);
  let mb = Tr_net_rt.Mailbox.create () in
  stage "mailbox_push_drain" (fun () ->
      for _ = 1 to iters / 64 do
        for _ = 1 to 64 do
          Tr_net_rt.Mailbox.push mb (0.0, frame)
        done;
        ignore (Tr_net_rt.Mailbox.drain mb)
      done);
  let pq = Tr_sim.Pqueue.create () in
  stage "pqueue_push_pop" (fun () ->
      for _ = 1 to iters / 64 do
        for i = 1 to 64 do
          Tr_sim.Pqueue.push pq ~time:(float_of_int i) frame
        done;
        for _ = 1 to 64 do
          ignore (Tr_sim.Pqueue.pop_exn pq)
        done
      done)

let () =
  if Array.exists (String.equal "--micro") Sys.argv then begin
    micro ();
    exit 0
  end;
  let reps = if quick then 1 else 3 in
  let total = if quick then 20_000 else 2_000_000 in
  Format.eprintf "timing loopback pump (%d frames)...@." total;
  let loop_wall = best_of reps (fun () -> ignore (pump_loopback ~total ())) in
  let (loop_frames, loop_bytes), loop_words =
    alloc_words (fun () -> pump_loopback ~total ())
  in
  Format.eprintf "timing uds pump (%d frames)...@." total;
  let uds_total = if quick then 20_000 else 1_000_000 in
  let uds_wall = best_of reps (fun () -> ignore (pump_uds ~total:uds_total ())) in
  let (uds_frames, uds_bytes, uds_writes, uds_reads), uds_words =
    alloc_words (fun () -> pump_uds ~total:uds_total ())
  in
  let ns = if quick then [ 4 ] else [ 4; 8; 16 ] in
  let grants = if quick then 200 else 2000 in
  let grant_rows =
    List.concat_map
      (fun protocol ->
        List.map
          (fun n ->
            Format.eprintf "live %s n=%d (%d grants)...@." protocol n grants;
            let r = grants_case ~protocol ~n ~grants in
            Printf.sprintf
              {|    { "protocol": %S, "n": %d, "grants": %d, "wall_s": %.3f,
      "grants_per_s": %.0f, "frames_per_grant": %.2f }|}
              protocol n r.Cluster.grants r.Cluster.wall_s
              (float_of_int r.Cluster.grants /. r.Cluster.wall_s)
              (float_of_int r.Cluster.frames_sent
              /. float_of_int (Stdlib.max 1 r.Cluster.grants)))
          ns)
      [ "ring"; "binsearch" ]
  in
  let json =
    Printf.sprintf
      {|{
  "host": { "cores": %d, "ocaml": %S },
  "mode": %S,
  "policy": "wall-clock best of %d; %d-frame loopback pump, %d-frame uds pump, batch %d; alloc from Gc.quick_stat deltas",
  "cases": [
%s
  ],
  "grants_vs_n": [
%s
  ]
}
|}
      (Domain.recommended_domain_count ())
      Sys.ocaml_version
      (if quick then "quick" else "full")
      reps total uds_total batch
      (String.concat ",\n"
         [
           case_json ~name:"loopback_frames" ~frames:loop_frames
             ~bytes:loop_bytes ~wall_s:loop_wall
             ~words_per_frame:(loop_words /. float_of_int loop_frames)
             ~syscalls:None ~baseline:loopback_baseline;
           case_json ~name:"uds_frames" ~frames:uds_frames ~bytes:uds_bytes
             ~wall_s:uds_wall
             ~words_per_frame:(uds_words /. float_of_int uds_frames)
             ~syscalls:(Some (uds_writes, uds_reads)) ~baseline:uds_baseline;
         ])
      (String.concat ",\n" grant_rows)
  in
  let oc = open_out "BENCH_net.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_net.json (%s mode)@."
    (if quick then "quick" else "full")
