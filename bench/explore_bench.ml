(* The sharded explorer at scale -> BENCH_explore.json.

   One committed artefact answering three questions about the parallel,
   memory-bounded exploration engine:

   - throughput: states/s on a >= 10^6-state spec instance (BinarySearch
     n=3, the largest system in the refinement chain) for D in {1, 2, 4};
   - speedup: wall-clock vs the D=1 baseline (the sequential engine —
     that is what the library dispatches to at one domain). On a 1-core
     container the extra domains only timeshare, so ~1.0x is the honest
     expectation there; the speedup column means something on multi-core
     hosts only;
   - memory bounding: the same instance in spill mode (frontier layers
     streamed through temp files chunk by chunk, visited keys compacted
     to 16-byte digests) against the in-memory run's peak RSS.

   Each config runs in a forked child process. OCaml's heap never
   shrinks, so in one process every run after the first would inherit
   the previous run's resident set and peak-RSS resets could never go
   below it — fork is the only way to get a true per-run high-water
   mark. The child ships a slim scalar row back through a temp file.

   Usage: dune exec bench/explore_bench.exe [-- --quick]
   --quick shrinks the cap to 20k states for CI smoke runs. *)

module E = Tr_trs.Explore

let quick = Array.exists (String.equal "--quick") Sys.argv

let system_name = "BinarySearch"
let n = 3
let data_budget = 1
let cap = if quick then 20_000 else 1_000_000

type row = {
  config : string;
  domains : int;
  states : int;
  transitions : int;
  max_depth : int;
  truncated : bool;
  wall_s : float;
  states_per_s : float;
  peak_rss_kb : int;
  rss_reset : bool;  (* peak RSS re-armed before this run? *)
  spilled_layers : int;
  spilled_bytes : int;
}

let run ~config ~domains ?spill_dir () =
  Format.eprintf "explore-bench: %s, %d domain(s), cap %d...@." config domains
    cap;
  let rss_reset = E.reset_peak_rss () in
  let system = Tr_specs.System_binsearch.system ~n in
  let init = Tr_specs.System_binsearch.initial ~n ~data_budget in
  let o = E.explore ~max_states:cap ~domains ?spill_dir system ~init in
  Format.eprintf "  %d states in %.2f s (%.0f states/s), peak RSS %d kB%s@."
    o.E.stats.E.states o.E.perf.E.wall_s o.E.perf.E.states_per_s
    o.E.perf.E.peak_rss_kb
    (if rss_reset then "" else " (cumulative: RSS reset unavailable)");
  {
    config;
    domains;
    states = o.E.stats.E.states;
    transitions = o.E.stats.E.transitions;
    max_depth = o.E.stats.E.max_depth;
    truncated = o.E.stats.E.truncated;
    wall_s = o.E.perf.E.wall_s;
    states_per_s = o.E.perf.E.states_per_s;
    peak_rss_kb = o.E.perf.E.peak_rss_kb;
    rss_reset;
    spilled_layers = o.E.perf.E.spilled_layers;
    spilled_bytes = o.E.perf.E.spilled_bytes;
  }

(* Run one config in a forked child so its peak RSS is measured against
   a fresh heap, and read the row back through a temp file. *)
let run_forked ~config ~domains ?spill_dir () =
  let path = Filename.temp_file "tr-explore-bench-" ".row" in
  match Unix.fork () with
  | 0 ->
      let code =
        match run ~config ~domains ?spill_dir () with
        | row ->
            let oc = open_out_bin path in
            Marshal.to_channel oc row [];
            close_out oc;
            0
        | exception e ->
            Format.eprintf "  bench child failed: %s@." (Printexc.to_string e);
            1
      in
      exit code
  | pid -> (
      match snd (Unix.waitpid [] pid) with
      | Unix.WEXITED 0 ->
          let ic = open_in_bin path in
          let row = (Marshal.from_channel ic : row) in
          close_in ic;
          Sys.remove path;
          row
      | _ ->
          (try Sys.remove path with Sys_error _ -> ());
          failwith (config ^ ": bench child failed"))

let () =
  (* Explicit sequencing: list literals evaluate right-to-left, and the
     runs should execute (and narrate) in the order they are reported. *)
  let d1 = run_forked ~config:"in-memory" ~domains:1 () in
  let d2 = run_forked ~config:"in-memory" ~domains:2 () in
  let d4 = run_forked ~config:"in-memory" ~domains:4 () in
  let spill =
    run_forked ~config:"spill" ~domains:2
      ~spill_dir:(Filename.get_temp_dir_name ())
      ()
  in
  let rows = [ d1; d2; d4; spill ] in
  let base_wall = match rows with r :: _ -> r.wall_s | [] -> 1.0 in
  let row_json r =
    Printf.sprintf
      {|    { "config": %S, "domains": %d, "states": %d, "transitions": %d,
      "max_depth": %d, "truncated": %b, "wall_s": %.3f, "states_per_s": %.0f,
      "speedup_vs_1": %.2f, "peak_rss_kb": %d, "rss_reset": %b,
      "spilled_layers": %d, "spilled_bytes": %d }|}
      r.config r.domains r.states r.transitions r.max_depth r.truncated
      r.wall_s r.states_per_s (base_wall /. r.wall_s) r.peak_rss_kb r.rss_reset
      r.spilled_layers r.spilled_bytes
  in
  let json =
    Printf.sprintf
      {|{
  "host": { "cores": %d, "recommended_domains": %d, "ocaml": %S },
  "mode": %S,
  "instance": { "system": %S, "n": %d, "data_budget": %d, "max_states": %d },
  "note": "Visited sets, stats and violations are identical across all configs (deterministic layer-synchronous merge). speedup_vs_1 is wall(D=1)/wall(D): on a 1-core container the domains timeshare one core, so ~1.0x (or slightly below, from sharding overhead) is the honest reading there; the column measures parallelism only on multi-core hosts. Each config runs in a forked child process so peak_rss_kb is a true per-run high-water mark (OCaml's heap never shrinks, so a shared process would carry the largest earlier run's RSS forward). Spill mode bounds term-graph residency by streaming frontier layers through disk chunk by chunk and compacting visited keys to 16-byte digests (collision odds ~1e-25 at 10^6 states); its peak_rss_kb vs the in-memory runs is the memory-bounding claim.",
  "runs": [
%s
  ]
}
|}
      (Domain.recommended_domain_count ())
      (Tr_sim.Pool.default_domains ())
      Sys.ocaml_version
      (if quick then "quick" else "full")
      system_name n data_budget cap
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_explore.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_explore.json (%s mode)@."
    (if quick then "quick" else "full")
