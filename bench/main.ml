(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper's evaluation
   (Figures 9 and 10) and of its stated complexity claims (Lemmas 4/6,
   Theorems 2/3), plus the §4.4/§5 ablations, printing the same series
   the paper plots together with the expected shape. Pass --quick for a
   smoke-sized run.

   Part 2 re-runs the formal safety artillery (prefix property +
   refinement chain) at bench-sized bounds.

   Part 3 is a Bechamel micro-benchmark suite: one Test.make per
   experiment id, each timing the underlying simulation workload at a
   fixed size, plus engine/TRS throughput primitives. *)

open Bechamel
open Toolkit

let quick = Array.exists (String.equal "--quick") Sys.argv

(* --jobs N / -j N: domains for the parallel sweeps (default: all cores). *)
let jobs =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then Tr_sim.Pool.default_domains ()
    else if String.equal Sys.argv.(i) "--jobs" || String.equal Sys.argv.(i) "-j"
    then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some j when j >= 1 -> j
      | _ -> failwith "usage: --jobs N (N >= 1)"
    else scan (i + 1)
  in
  scan 1

(* ------------------------------------------------------------------ *)
(* Part 1: figure regeneration                                         *)
(* ------------------------------------------------------------------ *)

let regenerate_figures () =
  Format.printf "==================================================@.";
  Format.printf "  Paper artefact regeneration (%s mode, %d domains)@."
    (if quick then "quick" else "full")
    jobs;
  Format.printf "==================================================@.@.";
  let results =
    if jobs <= 1 then Tokenring.Experiments.all ~quick ~seed:42 ()
    else
      Tr_sim.Pool.with_pool ~domains:jobs (fun pool ->
          Tokenring.Experiments.all ~pool ~quick ~seed:42 ())
  in
  List.iter (fun r -> Format.printf "%a@." Tokenring.Experiments.pp_result r) results

(* ------------------------------------------------------------------ *)
(* Part 2: formal checks                                               *)
(* ------------------------------------------------------------------ *)

let formal_checks () =
  Format.printf "==================================================@.";
  Format.printf "  Formal checks (prefix property, refinement chain)@.";
  Format.printf "==================================================@.";
  let max_states = if quick then 1000 else 8000 in
  List.iter
    (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
    (Tokenring.Verify.prefix_checks ~max_states ~ns:[ 2; 3 ] ());
  List.iter
    (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
    (Tokenring.Verify.refinement_checks ~max_states:(max_states / 5) ~n:2 ());
  List.iter
    (fun c -> Format.printf "%a@." Tokenring.Verify.pp_check c)
    (Tokenring.Verify.liveness_checks ~max_states:(max_states / 4) ~n:2 ());
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let simulate protocol ~n ~mean ~serves () =
  let config =
    {
      (Tokenring.Engine.default_config ~n ~seed:7) with
      workload = Tokenring.Workload.Global_poisson { mean_interarrival = mean };
    }
  in
  ignore
    (Tokenring.Runner.run protocol config
       ~stop:
         (Tokenring.Engine.First_of
            [ Tokenring.Engine.After_serves serves;
              Tokenring.Engine.At_time 100000.0 ]))

let bench_tests =
  let t name fn = Test.make ~name (Staged.stage fn) in
  [
    (* One Test.make per reproduced artefact: the simulation kernel that
       generates that table's data points, at a fixed representative size. *)
    t "fig9:ring-n64" (simulate Tr_proto.Ring.protocol ~n:64 ~mean:10.0 ~serves:200);
    t "fig9:binsearch-n64"
      (simulate Tr_proto.Binsearch.protocol ~n:64 ~mean:10.0 ~serves:200);
    t "fig10:ring-light-n100"
      (simulate Tr_proto.Ring.protocol ~n:100 ~mean:100.0 ~serves:50);
    t "fig10:binsearch-light-n100"
      (simulate Tr_proto.Binsearch.protocol ~n:100 ~mean:100.0 ~serves:50);
    t "lem4:ring-single-n256" (fun () ->
        simulate Tr_proto.Ring.protocol ~n:256 ~mean:5000.0 ~serves:2 ());
    t "lem6+thm2:binsearch-single-n256" (fun () ->
        simulate Tr_proto.Binsearch.protocol ~n:256 ~mean:5000.0 ~serves:2 ());
    t "thm3:continuous-competitor" (fun () ->
        let config =
          {
            (Tokenring.Engine.default_config ~n:32 ~seed:7) with
            workload = Tokenring.Workload.Continuous { node = 1 };
          }
        in
        ignore
          (Tokenring.Runner.run Tr_proto.Binsearch.protocol config
             ~stop:(Tokenring.Engine.After_serves 100)));
    t "opt-msg:throttled"
      (simulate Tr_proto.Binsearch.protocol_throttled ~n:64 ~mean:10.0 ~serves:200);
    t "opt-msg:directed"
      (simulate Tr_proto.Directed.protocol ~n:64 ~mean:10.0 ~serves:200);
    t "opt-msg:gc-rotation"
      (simulate Tr_proto.Cleanup.protocol_rotation ~n:64 ~mean:10.0 ~serves:200);
    t "tree:raymond-n63" (simulate Tr_proto.Tree.protocol ~n:63 ~mean:10.0 ~serves:200);
    t "adapt:adaptive-light"
      (simulate Tr_proto.Adaptive.protocol ~n:64 ~mean:100.0 ~serves:50);
    t "adapt:pushpull-light"
      (simulate Tr_proto.Pushpull.protocol ~n:64 ~mean:100.0 ~serves:50);
    t "baseline:suzuki-kasami"
      (simulate Tr_proto.Suzuki_kasami.protocol ~n:64 ~mean:10.0 ~serves:200);
    t "ext:membership-churn" (fun () ->
        let module P =
          (val Tr_proto.Membership.make ~initial_members:48
                 ~joins:[ (50, 20.0); (51, 40.0) ]
                 ~leaves:[ (3, 30.0) ]
                 ())
        in
        let config =
          {
            (Tokenring.Engine.default_config ~n:64 ~seed:7) with
            workload = Tokenring.Workload.Global_poisson { mean_interarrival = 10.0 };
          }
        in
        ignore
          (Tokenring.Runner.run (module P) config
             ~stop:
               (Tokenring.Engine.First_of
                  [ Tokenring.Engine.After_serves 150;
                    Tokenring.Engine.At_time 50000.0 ])));
    (* Substrate primitives. *)
    t "substrate:trs-explore-binsearch" (fun () ->
        ignore
          (Tr_trs.Explore.bfs ~max_states:300
             (Tr_specs.System_binsearch.system ~n:2)
             ~init:(Tr_specs.System_binsearch.initial ~n:2 ~data_budget:1)));
    t "substrate:engine-idle-rotation" (fun () ->
        simulate Tr_proto.Ring.protocol ~n:128 ~mean:1e6 ~serves:1 ());
  ]

let run_bechamel () =
  Format.printf "==================================================@.";
  Format.printf "  Bechamel micro-benchmarks (ns per simulation run)@.";
  Format.printf "==================================================@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~stabilize:false ()
  in
  let tests = Test.make_grouped ~name:"tokenring" ~fmt:"%s/%s" bench_tests in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (Instance.monotonic_clock :> Measure.witness) raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Format.printf "%-45s %15s@." "benchmark" "time/run";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%8.3f s " (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%8.3f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%8.3f us" (est /. 1e3)
            else Printf.sprintf "%8.0f ns" est
          in
          Format.printf "%-45s %15s@." name pretty
      | Some _ | None -> Format.printf "%-45s %15s@." name "n/a")
    rows

(* ------------------------------------------------------------------ *)
(* Part 4: sequential-vs-parallel report (BENCH_parallel.json)         *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of [f ()], best of [reps] so one scheduling hiccup does
   not pollute the committed numbers. *)
let best_of reps f =
  let rec go best left =
    if left = 0 then best
    else begin
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      go (Stdlib.min best (Unix.gettimeofday () -. t0)) (left - 1)
    end
  in
  go infinity reps

let series_work result =
  (* Sum of a result's first series' y values — for SPACE this is the
     total explored-state count. *)
  match result.Tokenring.Experiments.series with
  | [] -> 0.0
  | all ->
      List.fold_left
        (fun acc s ->
          List.fold_left (fun acc (_, y) -> acc +. y) acc
            (Tokenring.Series.points s))
        0.0 all

let parallel_report () =
  let reps = if quick then 1 else 3 in
  let pool = Tr_sim.Pool.create ~domains:jobs () in
  let experiments =
    [
      (* (id, work unit, nominal work, sequential thunk, parallel thunk) *)
      ( "FIG9",
        "serves (nominal)",
        (fun _ -> if quick then 3.0 *. 300.0 *. 2.0 else 8.0 *. 2000.0 *. 2.0),
        (fun () -> Tokenring.Experiments.fig9 ~quick ~seed:42 ()),
        fun () -> Tokenring.Experiments.fig9 ~pool ~quick ~seed:42 () );
      ( "FIG10",
        "serves (nominal)",
        (fun _ -> if quick then 3.0 *. 200.0 *. 2.0 else 10.0 *. 1500.0 *. 2.0),
        (fun () -> Tokenring.Experiments.fig10 ~quick ~seed:42 ()),
        fun () -> Tokenring.Experiments.fig10 ~pool ~quick ~seed:42 () );
      ( "SPACE",
        "explored states",
        series_work,
        (fun () -> Tokenring.Experiments.spec_space ~quick ()),
        fun () -> Tokenring.Experiments.spec_space ~pool ~quick () );
    ]
  in
  let rows =
    List.map
      (fun (id, unit_label, work_of, seq, par) ->
        Format.eprintf "timing %s (sequential)...@." id;
        let seq_s = best_of reps seq in
        Format.eprintf "timing %s (parallel, %d domains)...@." id jobs;
        let par_s = best_of reps par in
        let result = seq () in
        let work = work_of result in
        Printf.sprintf
          {|    { "id": %S, "work_unit": %S, "work": %.0f,
      "sequential_s": %.4f, "parallel_s": %.4f, "speedup": %.2f,
      "work_per_s_sequential": %.0f, "work_per_s_parallel": %.0f }|}
          id unit_label work seq_s par_s (seq_s /. par_s) (work /. seq_s)
          (work /. par_s))
      experiments
  in
  Tr_sim.Pool.shutdown pool;
  let json =
    Printf.sprintf
      {|{
  "host": { "cores": %d, "recommended_domains": %d, "ocaml": %S },
  "jobs": %d,
  "mode": %S,
  "note": "Seeded sweeps produce byte-identical tables with and without the pool; speedup scales with available cores (a 1-core container reports ~1.0x or below for parallelism while still benefiting from the hashed TRS hot path). FIG9/FIG10 fan independent runs across the pool; SPACE parallelises inside each exploration via the sharded layer-synchronous engine (see BENCH_explore.json for that engine at 10^6-state scale), so its parallel leg pays sharding overhead that only pays off on multi-core hosts.",
  "experiments": [
%s
  ],
  "trs_hot_path": {
    "workload": "spec_space full (6 specs x n in {2,3}, cap 8000)",
    "baseline_commit": "57494be (Set.Make(Term) visited set)",
    "baseline_s": 4.842, "baseline_states_per_s": 7389,
    "optimized_s": 1.221, "optimized_states_per_s": 29301,
    "speedup": 3.96
  }
}
|}
      (Domain.recommended_domain_count ())
      (Tr_sim.Pool.default_domains ())
      Sys.ocaml_version jobs
      (if quick then "quick" else "full")
      (String.concat ",\n" rows)
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_parallel.json (jobs=%d)@." jobs

(* ------------------------------------------------------------------ *)
(* Part 5: simulator-core throughput report (BENCH_sim.json)           *)
(* ------------------------------------------------------------------ *)

(* Four workloads that stress the simulator core from different angles:
   pure event-loop rotation (no serves, no metrics samples), the two
   Figure 9 protocol kernels at N = 1024, and a trace-enabled run (the
   one case where per-event label formatting is unavoidable). Event
   counts are deterministic, so the committed pre-refactor wall-clock
   numbers below — measured at commit f295206 with the same seeds,
   stops and best-of-3 policy on the same host session — divide by the
   same event totals the optimized code reports. *)
let sim_cases quick =
  let scale k = if quick then Stdlib.max 1 (k / 10) else k in
  let poisson mean =
    Tokenring.Workload.Global_poisson { mean_interarrival = mean }
  in
  let case ?(trace = false) name ~baseline_s protocol ~n ~workload ~stop =
    let thunk () =
      let config =
        { (Tokenring.Engine.default_config ~n ~seed:7) with workload; trace }
      in
      Tokenring.Runner.run protocol config ~stop
    in
    (name, baseline_s, thunk)
  in
  [
    case "idle_rotation_ring_n4096" ~baseline_s:0.7398 Tr_proto.Ring.protocol
      ~n:4096 ~workload:Tokenring.Workload.Nothing
      ~stop:
        (Tokenring.Engine.At_time (if quick then 200_000.0 else 2_000_000.0));
    case "fig9_ring_n1024" ~baseline_s:0.1651 Tr_proto.Ring.protocol ~n:1024
      ~workload:(poisson 10.0)
      ~stop:(Tokenring.Engine.After_serves (scale 20000));
    case "fig9_binsearch_n1024" ~baseline_s:0.4768 Tr_proto.Binsearch.protocol
      ~n:1024 ~workload:(poisson 10.0)
      ~stop:(Tokenring.Engine.After_serves (scale 20000));
    case ~trace:true "trace_on_ring_n256" ~baseline_s:0.1252
      Tr_proto.Ring.protocol ~n:256 ~workload:(poisson 10.0)
      ~stop:(Tokenring.Engine.After_serves (scale 10000));
  ]

let sim_throughput_report () =
  let reps = if quick then 1 else 3 in
  let rows =
    List.map
      (fun (name, baseline_s, thunk) ->
        Format.eprintf "timing %s...@." name;
        let best_s = best_of reps thunk in
        let outcome = thunk () in
        let events = outcome.Tokenring.Runner.events in
        let events_f = float_of_int events in
        (* Baseline wall-clock only applies to the full-sized stops it
           was measured with. *)
        let baseline =
          if quick then
            {|"baseline_s": null, "baseline_events_per_s": null, "speedup": null|}
          else
            Printf.sprintf
              {|"baseline_s": %.4f, "baseline_events_per_s": %.0f, "speedup": %.2f|}
              baseline_s (events_f /. baseline_s) (baseline_s /. best_s)
        in
        Printf.sprintf
          {|    { "case": %S, "events": %d, "wall_s": %.4f,
      "events_per_s": %.0f, %s }|}
          name events best_s (events_f /. best_s) baseline)
      (sim_cases quick)
  in
  Format.eprintf "running LARGE-N sweep...@.";
  let t0 = Unix.gettimeofday () in
  let large = Tokenring.Experiments.large_n ~quick ~seed:42 () in
  let large_s = Unix.gettimeofday () -. t0 in
  let max_n =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc (x, _) -> Stdlib.max acc x) acc
          (Tokenring.Series.points s))
      0.0 large.Tokenring.Experiments.series
  in
  let json =
    Printf.sprintf
      {|{
  "host": { "cores": %d, "ocaml": %S },
  "mode": %S,
  "baseline_commit": "f295206 (boxed pqueue entries, tuple-keyed timer epochs, list trace, unconditional label formatting)",
  "policy": "wall-clock best of %d, seed 7; event counts are deterministic and identical before/after the refactor (verified byte-identical FIG9/FIG10 tables and traces)",
  "cases": [
%s
  ],
  "large_n": { "max_n": %.0f, "wall_s": %.2f, "completed": true }
}
|}
      (Domain.recommended_domain_count ())
      Sys.ocaml_version
      (if quick then "quick" else "full")
      reps
      (String.concat ",\n" rows)
      max_n large_s
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_sim.json (%s mode)@."
    (if quick then "quick" else "full")

let () =
  if Array.exists (String.equal "--parallel-report") Sys.argv then
    parallel_report ()
  else if Array.exists (String.equal "--sim-throughput") Sys.argv then
    sim_throughput_report ()
  else begin
    regenerate_figures ();
    formal_checks ();
    run_bechamel ()
  end
