(* Chaos matrix: grant latency and recovery time for ring, binsearch and
   the self-stabilizing random walk under every fault class, on both
   backends, same seed. Emits BENCH_chaos.json.

   Determinism evidence per cell: the sim run is repeated with the same
   seed and must reproduce the injected-event schedule digest exactly
   (bit-for-bit replay of the fault sequence); the live digest is
   recorded alongside — the injector's decisions are a pure hash of
   (seed, fault, link, k), so any backend observing the same per-link
   traffic injects the identical sequence. *)

module CR = Tr_chaos_run.Chaos_run

let n = 8
let seed = 42
let protocols = [ "ring"; "binsearch"; "random-walk" ]

(* Seven fault classes; each clears by t=200 and leaves the standard
   probe deadline to recover. *)
let scenarios =
  [
    ("partition", "partition:0-3|4-7@50-150");
    ("loss", "loss:*>*,0.3@50-150");
    (* Duplication on a protocol with no dedup is a supercritical
       branching process (every copy keeps circulating and re-duplicating
       — the 2-token state the TRS dup-token rule flags, multiplied).
       The window stays short so the ring/binsearch cells terminate;
       the random walk destroys duplicates outright. *)
    ("dup", "dup:0.15@50-80");
    ("reorder", "reorder:0.3,6@50-150");
    ("corrupt", "corrupt:0.05@50-150");
    ("skew", "skew:3,3.0@50-150");
    ("churn", "churn:3@50-150");
  ]

let jf f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else Printf.sprintf "%.4g" f

let cell_json ~fault ~protocol (sim : CR.outcome) (sim2 : CR.outcome)
    (live : CR.outcome) =
  Printf.sprintf
    "    { \"fault\": %S, \"protocol\": %S, \"spec\": %S,\n\
    \      \"sim\": { \"grants\": %d, \"grant_latency_mean\": %s, \
     \"grant_latency_p99\": %s, \"recovered\": %b, \"recovery_time\": %s, \
     \"flagged\": %b, \"total_injected\": %d, \"digest\": %d },\n\
    \      \"sim_replay_digest_equal\": %b,\n\
    \      \"live\": { \"backend\": %S, \"grants\": %d, \
     \"grant_latency_mean\": %s, \"grant_latency_p99\": %s, \"recovered\": \
     %b, \"recovery_time\": %s, \"flagged\": %b, \"total_injected\": %d, \
     \"digest\": %d, \"corrupt_frames_detected\": %d } }"
    fault protocol sim.CR.spec sim.CR.grants
    (jf sim.CR.grant_latency_mean)
    (jf sim.CR.grant_latency_p99)
    sim.CR.recovered
    (jf sim.CR.recovery_time)
    sim.CR.flagged sim.CR.total_injected sim.CR.digest
    (sim.CR.digest = sim2.CR.digest)
    live.CR.backend live.CR.grants
    (jf live.CR.grant_latency_mean)
    (jf live.CR.grant_latency_p99)
    live.CR.recovered
    (jf live.CR.recovery_time)
    live.CR.flagged live.CR.total_injected live.CR.digest
    live.CR.corrupt_frames_detected

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_chaos.json" in
  let cells = ref [] in
  List.iter
    (fun (fault, spec) ->
      List.iter
        (fun protocol ->
          let sim = CR.run_sim ~protocol ~n ~seed ~spec () in
          let sim2 = CR.run_sim ~protocol ~n ~seed ~spec () in
          if sim.CR.digest <> sim2.CR.digest then
            Printf.eprintf
              "WARNING: %s/%s same-seed replay digest mismatch (%d vs %d)\n%!"
              fault protocol sim.CR.digest sim2.CR.digest;
          let live = CR.run_live ~protocol ~n ~seed ~spec () in
          Printf.eprintf
            "chaos_bench %-9s %-12s sim: %s%s  live: %s%s\n%!" fault protocol
            (if sim.CR.recovered then
               Printf.sprintf "recovered@%.1f" sim.CR.recovery_time
             else "FLAGGED")
            (Printf.sprintf " (lat p99 %.1f)" sim.CR.grant_latency_p99)
            (if live.CR.recovered then
               Printf.sprintf "recovered@%.1f" live.CR.recovery_time
             else "FLAGGED")
            (Printf.sprintf " (lat p99 %.1f)" live.CR.grant_latency_p99);
          cells := cell_json ~fault ~protocol sim sim2 live :: !cells)
        protocols)
    scenarios;
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"n\": %d, \"seed\": %d,\n\
    \  \"policy\": \"probe-based recovery: background load every 10 units \
     while fault windows are open; at clear, one probe per node; recovery \
     = last node's queue drain; deadline 40n units after clear. Sim cells \
     are replayed with the same seed and must reproduce the injected \
     schedule digest (sim_replay_digest_equal); the injector's decisions \
     are a pure hash of (seed, fault, link, k), so any backend observing \
     the same per-link traffic injects the identical fault sequence.\",\n\
    \  \"fault_classes\": %d,\n\
    \  \"cells\": [\n%s\n  ]\n}\n"
    n seed
    (List.length scenarios)
    (String.concat ",\n" (List.rev !cells));
  close_out oc;
  Printf.eprintf "wrote %s\n%!" out
