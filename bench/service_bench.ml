(* FIG10-LIVE: the paper's ring/binsearch crossover as a runtime policy,
   measured end to end through the service layer -> BENCH_service.json.

   One process hosts both sides: the service front-end (its own domain,
   cluster shards beneath it) and the loadgen (main domain) talking over
   a Unix-domain socket. Each row drives the same three-phase open-loop
   ramp — idle-ish, heavily loaded, idle-ish — through a different
   movement policy:

   - adaptive:      Policy hysteresis, expected to switch Search→Rotate
                    on the ramp up and back on the ramp down;
   - pinned_search: the protocol Figure 10 favours at LOW load, pinned;
   - pinned_rotate: the protocol Figure 10 favours at HIGH load, pinned.

   The claim under test: the adaptive row's latency tracks whichever
   pinned protocol is favoured in each phase, so end-to-end it beats
   BOTH single-protocol rows run over the full ramp. Grant latency
   percentiles come from the loadgen's P2 sketches; switch events are
   recorded verbatim with their requests-per-revolution estimates. *)

module Movement = Tr_apps.Movement
module Cluster = Tr_net_rt.Cluster
module Server = Tr_service.Server
module Client = Tr_service.Client
module Policy = Tr_service.Policy
module Slo = Tr_service.Slo

let quick = Array.exists (String.equal "--quick") Sys.argv

let n = 8

(* 5 ms units keep the protocol-time differences well above this
   host's OS scheduling jitter, and 0.2-unit leases keep token
   movement (the thing the two protocols differ on), not
   critical-section residence, the bottleneck. Probed operating points:
   at 120 req/s rotation grants at p50 ~25 ms while search queues to
   ~39 ms — the high side of Figure 10's crossover — and rotation's
   ~166 grants/s ceiling leaves enough headroom to drain the backlog
   the policy's detection lag admits. At 2 req/s latencies converge
   (n=8 is small) but the wire costs diverge both ways: under load,
   search pays O(log n) control messages per token transfer where
   rotation pays ~one hop (Figure 10's message axis), while idle,
   pinned rotation burns one frame per hop forever where a parked
   search token sends nothing (§4.4's adaptive token speed). The long
   light phases make the idle-circulation cost visible, so
   frames-per-grant punishes BOTH pinned rows and only the adaptive
   policy tracks the cheap side of each regime. per_rev crosses the
   default [0.75, 2.0] band at both edges of the ramp (0.08 and 4.8). *)
let unit_s = 0.005
let cs_duration = 0.2

(* 30-unit (150 ms) estimation windows: at 120/s that is ~18 requests
   per window — a stable estimate — while cutting the ramp-up
   detection lag (and the backlog it accrues) to a couple hundred ms. *)
let policy_window = 30.
let clients = if quick then 300 else 1200
let conns = 16
let lo_rate = 2.
let hi_rate = 120.
let lo_s = if quick then 1.5 else 6.0
let hi_s = if quick then 2.0 else 8.0

let ramp =
  [
    { Client.duration_s = lo_s; workload = Client.Open { rate = lo_rate } };
    { Client.duration_s = hi_s; workload = Client.Open { rate = hi_rate } };
    { Client.duration_s = lo_s; workload = Client.Open { rate = lo_rate } };
  ]

type row = {
  label : string;
  client : Client.result;
  outcome : Server.outcome;
  adaptive : bool;
  wall_s : float;
}

let run_row ~label ~mode ~adaptive ~seed =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tr-service-bench-%d-%s.sock" (Unix.getpid ()) label)
  in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let cfg =
    {
      (Server.default_config ~n ~seed ~listen:(Unix.ADDR_UNIX sock)) with
      Server.mode;
      cs_duration;
      cluster =
        {
          (Cluster.default_config ~n ~seed) with
          Cluster.load = Cluster.External;
          unit_s;
          stop = Cluster.Duration 1e9;
          max_wall_s = 300.;
        };
    }
  in
  let ready = Atomic.make None in
  let server =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun ~addr:_ ~control -> Atomic.set ready (Some control))
          cfg)
  in
  let rec await tries =
    match Atomic.get ready with
    | Some c -> c
    | None ->
        if tries = 0 then failwith (label ^ ": server never became ready");
        Unix.sleepf 0.05;
        await (tries - 1)
  in
  let control = await 100 in
  let ccfg =
    {
      (Client.default_config ~connect:(Unix.ADDR_UNIX sock) ~clients) with
      Client.conns;
      phases = ramp;
      seed = seed + 1;
      drain_s = 2.0;
    }
  in
  let t0 = Unix.gettimeofday () in
  let client = Client.run ccfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  control.Cluster.request_stop ();
  let outcome = Domain.join server in
  Format.printf
    "%-14s grants=%d mean=%a p50=%a p99=%a p999=%a frames/grant=%.1f \
     switches=%d@."
    label client.Client.grants Slo.pp_ms client.Client.slo.Slo.mean Slo.pp_ms
    client.Client.slo.Slo.p50 Slo.pp_ms client.Client.slo.Slo.p99 Slo.pp_ms
    client.Client.slo.Slo.p999
    (float_of_int outcome.Server.report.Cluster.frames_sent
    /. float_of_int (Stdlib.max 1 client.Client.grants))
    (List.length outcome.Server.switches);
  List.iter
    (fun (s : Policy.switch_event) ->
      Format.printf "  switch t=%.1fu %s -> %s (per_rev=%.2f)@." s.Policy.at
        (Movement.mode_to_string s.Policy.from_mode)
        (Movement.mode_to_string s.Policy.to_mode)
        s.Policy.per_rev)
    outcome.Server.switches;
  { label; client; outcome; adaptive; wall_s }

let row_json r =
  let switch_json (s : Policy.switch_event) =
    Printf.sprintf
      {|{ "at_units": %.1f, "from": %S, "to": %S, "per_rev": %.3f }|}
      s.Policy.at
      (Movement.mode_to_string s.Policy.from_mode)
      (Movement.mode_to_string s.Policy.to_mode)
      s.Policy.per_rev
  in
  let driven = (2. *. lo_s) +. hi_s in
  Printf.sprintf
    {|    { "label": %S,
      "grants_per_s": %.1f,
      "frames_per_grant": %.1f,
      "wall_s": %.2f,
      "switch_events": [%s],
      "server": %s,
      "client": %s }|}
    r.label
    (float_of_int r.client.Client.grants /. driven)
    (float_of_int r.outcome.Server.report.Cluster.frames_sent
    /. float_of_int (Stdlib.max 1 r.client.Client.grants))
    r.wall_s
    (String.concat ", " (List.map switch_json r.outcome.Server.switches))
    (Server.stats_json ~outcome:r.outcome ~app:Server.Mutex
       ~adaptive:r.adaptive)
    (Client.result_json r.client)

let () =
  let rows =
    [
      run_row ~label:"adaptive"
        ~mode:
          (Server.Adaptive
             (Policy.create
                {
                  (Policy.default_config ~n ~hop_s:1.0) with
                  Policy.window_s = policy_window;
                }))
        ~adaptive:true ~seed:11;
      run_row ~label:"pinned_search"
        ~mode:
          (Server.Pinned { Movement.mode = Search; park_after = Some (2 * n) })
        ~adaptive:false ~seed:21;
      run_row ~label:"pinned_rotate"
        ~mode:(Server.Pinned { Movement.mode = Rotate; park_after = None })
        ~adaptive:false ~seed:31;
    ]
  in
  let json =
    Printf.sprintf
      {|{
  "host": { "cores": %d, "ocaml": %S },
  "mode": %S,
  "experiment": "FIG10-LIVE",
  "policy": "single-shot end-to-end runs; %d open-loop clients over %d conns on UDS; ramp %.0f/s for %.1fs, %.0f/s for %.1fs, %.0f/s for %.1fs; n=%d, 5ms units, 0.2-unit leases; latency is Acquire->Grant wall seconds from P2 sketches; frames_per_grant is cluster frames_sent / grants (idle-token wire economy)",
  "rows": [
%s
  ]
}
|}
      (Domain.recommended_domain_count ())
      Sys.ocaml_version
      (if quick then "quick" else "full")
      clients conns lo_rate lo_s hi_rate hi_s lo_rate lo_s n
      (String.concat ",\n" (List.map row_json rows))
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc json;
  close_out oc;
  Format.printf "wrote BENCH_service.json (%s mode)@."
    (if quick then "quick" else "full")
