(** The formal side of the reproduction, packaged for CLI/bench use:
    exhaustive safety checks and refinement checks over the TRS
    specifications of §3–§4, on bounded instances. *)

type check = {
  name : string;
  states : int;  (** States explored / concrete edges checked. *)
  ok : bool;
  detail : string;
}

val prefix_checks : ?max_states:int -> ns:int list -> unit -> check list
(** Explore every system ({!Tr_specs.System_s} … {!System_binsearch}) for
    each ring size and report prefix-property (and token-uniqueness)
    violations. *)

val refinement_checks : ?max_states:int -> n:int -> unit -> check list
(** Machine-check the paper's refinement chain:
    S1→S, Token→S1, Message-Passing→S1 (plain, ring, with-pass),
    Search→MP+pass, BinarySearch→MP+pass. *)

val liveness_checks : ?max_states:int -> n:int -> unit -> check list
(** Bounded liveness: no reachable deadlocks, and "node 1 can always
    still obtain the token" (AG EF) for Token, the ring Message-Passing
    variant, and BinarySearch. *)

val pp_check : Format.formatter -> check -> unit
