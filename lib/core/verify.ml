open Tr_trs
open Tr_specs

type check = { name : string; states : int; ok : bool; detail : string }

let prefix_one ~max_states ~name system initial checker =
  let stats, violations =
    Explore.bfs ~max_states system ~init:initial ~check:checker
  in
  {
    name;
    states = stats.Explore.states;
    ok = violations = [];
    detail =
      (match violations with
      | [] ->
          Printf.sprintf "%d states, %d transitions%s" stats.Explore.states
            stats.transitions
            (if stats.truncated then " (bounded)" else " (exhaustive)")
      | { Explore.message; _ } :: _ ->
          Printf.sprintf "VIOLATION: %s" message);
  }

let prefix_checks ?(max_states = 5000) ~ns () =
  List.concat_map
    (fun n ->
      let b = 1 in
      [
        prefix_one ~max_states
          ~name:(Printf.sprintf "S prefix (n=%d)" n)
          (System_s.system ~n)
          (System_s.initial ~n ~data_budget:2)
          Prefix.check_s;
        prefix_one ~max_states
          ~name:(Printf.sprintf "S1 prefix (n=%d)" n)
          (System_s1.system ~n)
          (System_s1.initial ~n ~data_budget:2)
          Prefix.check_s1;
        prefix_one ~max_states
          ~name:(Printf.sprintf "Token prefix (n=%d)" n)
          (System_token.system ~n)
          (System_token.initial ~n ~data_budget:2)
          Prefix.check_token;
        prefix_one ~max_states
          ~name:(Printf.sprintf "Message-Passing prefix (n=%d)" n)
          (System_msgpass.system ~n)
          (System_msgpass.initial ~n ~data_budget:b)
          Prefix.check_msgpass;
        prefix_one ~max_states
          ~name:(Printf.sprintf "Search prefix (n=%d)" n)
          (System_search.system ~n)
          (System_search.initial ~n ~data_budget:b)
          Prefix.check_search;
        prefix_one ~max_states
          ~name:(Printf.sprintf "BinarySearch prefix (n=%d)" n)
          (System_binsearch.system ~n)
          (System_binsearch.initial ~n ~data_budget:b)
          Prefix.check_binsearch;
      ])
    ns

let refinement_one ~max_states ~name ~abstraction ~abstract_system ~concrete
    ~initial =
  let edges = Explore.edges ~max_states concrete ~init:initial in
  let report = Refine.check_simulation ~abstraction ~abstract_system ~edges () in
  {
    name;
    states = report.Refine.edges;
    ok = Refine.holds report;
    detail = Format.asprintf "%a" Refine.pp_report report;
  }

let refinement_checks ?(max_states = 1200) ~n () =
  [
    refinement_one ~max_states ~name:"S1 refines S"
      ~abstraction:System_s1.to_s
      ~abstract_system:(System_s.system ~n)
      ~concrete:(System_s1.system ~n)
      ~initial:(System_s1.initial ~n ~data_budget:2);
    refinement_one ~max_states ~name:"Token refines S1"
      ~abstraction:System_token.to_s1
      ~abstract_system:(System_s1.system ~n)
      ~concrete:(System_token.system ~n)
      ~initial:(System_token.initial ~n ~data_budget:2);
    refinement_one ~max_states ~name:"Message-Passing refines S1"
      ~abstraction:System_msgpass.to_s1
      ~abstract_system:(System_s1.system ~n)
      ~concrete:(System_msgpass.system ~n)
      ~initial:(System_msgpass.initial ~n ~data_budget:1);
    refinement_one ~max_states ~name:"Message-Passing (ring 3') refines S1"
      ~abstraction:System_msgpass.to_s1
      ~abstract_system:(System_s1.system ~n)
      ~concrete:(System_msgpass.system_ring ~n)
      ~initial:(System_msgpass.initial ~n ~data_budget:1);
    refinement_one ~max_states ~name:"Message-Passing+pass refines S1"
      ~abstraction:System_msgpass.to_s1
      ~abstract_system:(System_s1.system ~n)
      ~concrete:(System_msgpass.system_with_pass ~n)
      ~initial:(System_msgpass.initial ~n ~data_budget:1);
    refinement_one ~max_states ~name:"Search refines Message-Passing+pass"
      ~abstraction:System_search.to_msgpass
      ~abstract_system:(System_msgpass.system_with_pass ~n)
      ~concrete:(System_search.system ~n)
      ~initial:(System_search.initial ~n ~data_budget:1);
    refinement_one ~max_states ~name:"BinarySearch refines Message-Passing+pass"
      ~abstraction:System_binsearch.to_msgpass
      ~abstract_system:(System_msgpass.system_with_pass ~n)
      ~concrete:(System_binsearch.system ~n)
      ~initial:(System_binsearch.initial ~n ~data_budget:1);
  ]

let liveness_checks ?(max_states = 2000) ~n () =
  let eventually name system initial goal =
    let report = Explore.eventually ~max_states ~goal system ~init:initial in
    {
      name;
      states = report.Explore.explored;
      ok = report.Explore.cannot_reach = [];
      detail =
        (match report.Explore.cannot_reach with
        | [] ->
            Printf.sprintf "%d states: %d reach the goal, %d undecided (frontier)"
              report.explored report.can_reach report.undecided
        | state :: _ ->
            Printf.sprintf "LIVELOCK from %s" (Term.to_string state));
    }
  in
  let no_deadlock name system initial =
    let stuck = Explore.deadlocks ~max_states system ~init:initial in
    {
      name;
      states = max_states;
      ok = stuck = [];
      detail =
        (match stuck with
        | [] -> "no reachable normal forms"
        | state :: _ -> Printf.sprintf "DEADLOCK at %s" (Term.to_string state));
    }
  in
  [
    eventually "Token: node 1 eventually holds (AG EF)"
      (System_token.system ~n)
      (System_token.initial ~n ~data_budget:1)
      (fun s -> System_token.holder s = 1);
    eventually "Message-Passing ring: node 1 eventually holds (AG EF)"
      (System_msgpass.system_ring ~n)
      (System_msgpass.initial ~n ~data_budget:1)
      (fun s -> System_msgpass.holder s = Some 1);
    eventually "BinarySearch: node 1 eventually holds (AG EF)"
      (System_binsearch.system ~n)
      (System_binsearch.initial ~n ~data_budget:1)
      (fun s -> System_binsearch.holder s = Some 1);
    no_deadlock "Token: deadlock freedom" (System_token.system ~n)
      (System_token.initial ~n ~data_budget:1);
    no_deadlock "Message-Passing: deadlock freedom" (System_msgpass.system ~n)
      (System_msgpass.initial ~n ~data_budget:1);
    no_deadlock "BinarySearch: deadlock freedom" (System_binsearch.system ~n)
      (System_binsearch.initial ~n ~data_budget:1);
  ]

let pp_check ppf c =
  Format.fprintf ppf "[%s] %-45s %s"
    (if c.ok then "ok" else "FAIL")
    c.name c.detail
