(** One-call simulation runs over any registered protocol. *)

open Tr_sim

type outcome = {
  protocol_name : string;
  n : int;
  seed : int;
  duration : float;  (** Final virtual time. *)
  events : int;  (** Simulation events processed (throughput numerator). *)
  metrics : Metrics.t;
  trace : Trace.t;  (** Empty unless the config enabled tracing. *)
}

val run :
  (module Node_intf.PROTOCOL) ->
  Engine.config ->
  stop:Engine.stop ->
  outcome

val run_named : string -> Engine.config -> stop:Engine.stop -> outcome
(** Resolve through {!Registry}. @raise Invalid_argument on unknown
    names. *)

type ensemble = {
  outcomes : outcome list;
  responsiveness_means : Tr_stats.Summary.t;
      (** Distribution of the per-run mean responsiveness across seeds;
          [Tr_stats.Summary.ci95_halfwidth] gives the error bar. *)
  waiting_means : Tr_stats.Summary.t;
  token_messages_means : Tr_stats.Summary.t;
}

val run_many :
  ?pool:Pool.t ->
  ?record_trace:bool ->
  (module Node_intf.PROTOCOL) ->
  Engine.config ->
  seeds:int list ->
  stop:Engine.stop ->
  ensemble
(** Repeat the run once per seed (overriding [config.seed]) and aggregate
    the per-run summary statistics — the cheap way to put confidence
    intervals on any experiment point.

    [pool] fans the replicates out across domains (each run owns its RNG
    and engine state, so replicates are data-race-free); outcomes come
    back in seed order, identical to the sequential result.

    [record_trace] (default [false]) controls whether replicates keep
    their event traces: an ensemble of traced runs holds O(events)
    memory per seed, so traces are disabled for ensembles unless asked
    for — even when [config.trace] is set. Single {!run}s are unaffected
    and still honour [config.trace].
    @raise Invalid_argument on an empty seed list. *)

val rounds_stop : n:int -> rounds:int -> Engine.stop
(** The paper's "1000 rounds" termination: stop after [rounds * n]
    token-class messages, i.e. the token has visited each node [rounds]
    times on average. *)

val pp_outcome : Format.formatter -> outcome -> unit
