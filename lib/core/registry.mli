(** Catalogue of every protocol implementation in the library. *)

open Tr_sim

type entry = {
  name : string;
  describe : string;
  kind : [ `Baseline | `Paper | `Optimization | `Extension ];
  protocol : (module Node_intf.PROTOCOL);
}

val all : entry list
(** Stable order: baselines, the paper's systems, §4.4 optimizations,
    §5 extensions. *)

val names : string list

val find : string -> entry option
(** Lookup by [name]; [None] for unknown names. *)

val find_exn : string -> entry
(** @raise Invalid_argument with the list of valid names. *)
