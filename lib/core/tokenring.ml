(** Adaptive token-passing protocols — public API.

    This library reproduces Englert, Rudolph & Shvartsman, {e "Developing
    and Refining an Adaptive Token-Passing Strategy"} (ICDCS 2001 / MIT
    CSG Memo 440): a family of token-rotation protocols developed by
    safety-preserving refinement, culminating in the ring + binary-search
    protocol with O(log N) responsiveness.

    Typical use:
    {[
      let cfg =
        { (Tokenring.Engine.default_config ~n:100 ~seed:1) with
          workload = Tokenring.Workload.Global_poisson { mean_interarrival = 10.0 } }
      in
      let outcome =
        Tokenring.Runner.run_named "binsearch" cfg
          ~stop:(Tokenring.Runner.rounds_stop ~n:100 ~rounds:1000)
      in
      Format.printf "%a" Tokenring.Runner.pp_outcome outcome
    ]}

    Layers:
    - {!Registry}, {!Runner}, {!Experiments}, {!Verify} — this facade;
    - [Tr_proto] — the protocol implementations (ring, binsearch, §4.4
      variants, §5 extensions, Raymond tree);
    - [Tr_sim] — the deterministic discrete-event simulator;
    - [Tr_trs] / [Tr_specs] — the term-rewriting framework and the
      paper's systems S, S1, Token, Message-Passing, Search,
      BinarySearch, with machine-checked prefix and refinement proofs;
    - [Tr_stats] — summaries, quantiles, histograms, sweep tables. *)

module Registry = Registry
module Runner = Runner
module Experiments = Experiments
module Verify = Verify
module Scenario = Scenario
module Export = Export

(** {1 Re-exported simulation vocabulary}

    Aliases so that straightforward uses need only this module. *)

module Engine = Tr_sim.Engine
module Workload = Tr_sim.Workload
module Network = Tr_sim.Network
module Metrics = Tr_sim.Metrics
module Trace = Tr_sim.Trace
module Node_intf = Tr_sim.Node_intf
module Summary = Tr_stats.Summary
module Series = Tr_stats.Series
