(** Compact textual specs for workloads and networks (CLI surface).

    Workloads:
    {v
    nothing                      no requests
    poisson:MEAN                 global Poisson, uniform requester
    pernode:MEAN                 independent Poisson per node
    burst:PERIOD,SIZE            SIZE distinct nodes every PERIOD
    hotspot:MEAN,NODE,BIAS       biased global Poisson
    continuous:NODE              re-requests immediately when served
    v}

    Networks (clauses combined with [+]):
    {v
    unit                         constant 1.0 both channels (default)
    const:D                      constant D both channels
    uniform:LO,HI                uniform delay both channels
    exp:MEAN                     exponential delay both channels
    lossy:P                      cheap-channel drop probability P
    slow:NODE,FACTOR             all links out of NODE cost FACTOR
    v}

    Examples: ["poisson:10"], ["burst:25,4"],
    ["uniform:0.5,2+lossy:0.1"], ["const:1+slow:5,8"]. *)

val workload_of_string : string -> (Tr_sim.Workload.spec, string) result
val network_of_string : string -> (Tr_sim.Network.t, string) result

val workload_examples : string list
(** One representative spec per workload kind (for help texts). *)

val network_examples : string list
