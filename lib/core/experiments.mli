(** Reproductions of the paper's evaluation artefacts.

    Each function regenerates one figure, lemma or theorem as a data
    table: the same series the paper plots, produced by the simulator.
    [quick:true] shrinks sweeps and sample counts for use in the test
    suite; the defaults match the paper's setup (1000+ rounds, the
    Figure 9/10 workloads).

    The [expectation] field records what the paper predicts for the
    table's shape, so EXPERIMENTS.md can be checked against the output
    mechanically.

    Sweeps that fan over independent seeded runs (FIG9, FIG10, the
    LEM4/LEM6/THM2 placement probes, SPACE) accept an optional
    [?pool] and distribute their points across its domains. Results are
    reassembled in sweep order, so tables and plots are byte-identical
    with and without a pool — parallelism never perturbs the data. *)

type result = {
  id : string;  (** "FIG9", "LEM6", ... — DESIGN.md's experiment index. *)
  title : string;
  expectation : string;
  notes : (string * string) list;
      (** Run metadata (throughput, domains, peak RSS, ...) — printed
          after the expectation and exported as the JSON "meta" object.
          Unlike [table], notes may vary run to run (timings). *)
  series : Tr_stats.Series.t list;  (** The raw curves the table aligns. *)
  table : Tr_stats.Series.Table.t;
}

val fig9 : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** Figure 9: fixed load (one request per 10 time units on average),
    sweep the ring size. Columns: ring and binsearch average
    responsiveness, with log₂ N for reference. *)

val fig10 : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** Figure 10: fixed N = 100, sweep the mean interarrival. Ring
    approaches N/2 = 50 as the load lightens; binsearch approaches
    log₂ N ≈ 6.6 from below. *)

val large_n : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** The asymptotic gap at scale: ring vs binsearch responsiveness (mean
    and streaming-P² p99) for N up to 16384 under light load
    (interarrival N/4). Runs trace-free with O(N) memory — the sweep the
    zero-allocation core exists for. [quick:true] caps N at 512. *)

val lem4 : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** Lemma 4: worst-case single-request waiting time of the ring grows
    linearly with N. *)

val lem6 : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** Lemma 6: a binsearch request is forwarded O(log N) times. *)

val thm2 : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** Theorem 2: worst-case single-request waiting time of binsearch grows
    logarithmically with N. *)

val thm3 : ?quick:bool -> ?seed:int -> unit -> result
(** Theorem 3 (log N fairness): while a continuous competitor hammers the
    token, a second requester is served after at most ~log N possessions
    by any single node and ~N + log N possessions in total. *)

val opt_messages : ?quick:bool -> ?seed:int -> unit -> result
(** §4.4 message-cost comparison: control messages per served request for
    the search variants (delegated, throttled, directed, sequential, and
    both trap collectors). *)

val tree_balance : ?quick:bool -> ?seed:int -> unit -> result
(** §5's load-concentration contrast: possession imbalance of ring,
    binsearch and the Raymond tree under uniform load. *)

val adaptive_idle : ?quick:bool -> ?seed:int -> unit -> result
(** §4.4 adaptive speed + push-pull: token messages per served request as
    the load lightens, for ring / adaptive / push-pull. *)

val dist : ?quick:bool -> ?seed:int -> unit -> result
(** Beyond the paper: the full responsiveness distribution (percentiles)
    under the Figure 9 load — averages hide the ring's long tail. *)

val warmup : ?quick:bool -> ?seed:int -> unit -> result
(** Convergence of the running-mean waiting time — evidence for the
    paper's 1000-rounds steady-state horizon. *)

val spec_space : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result
(** Methodology artefact: reachable-state counts of the six
    specifications — how much detail each refinement step adds. A pool
    parallelises {e inside} each exploration via the sharded engine
    (counts are deterministic, the table is byte-identical across domain
    counts); [notes] carries aggregate states/s, domains, and peak RSS. *)

val all : ?pool:Tr_sim.Pool.t -> ?quick:bool -> ?seed:int -> unit -> result list
(** Every experiment, in DESIGN.md index order. *)

val pp_result : Format.formatter -> result -> unit
