open Tr_sim

type entry = {
  name : string;
  describe : string;
  kind : [ `Baseline | `Paper | `Optimization | `Extension ];
  protocol : (module Node_intf.PROTOCOL);
}

let entry kind protocol =
  let module P = (val protocol : Node_intf.PROTOCOL) in
  { name = P.name; describe = P.describe; kind; protocol }

let all =
  [
    entry `Baseline Tr_proto.Ring.protocol;
    entry `Baseline Tr_proto.Tree.protocol;
    entry `Baseline Tr_proto.Suzuki_kasami.protocol;
    entry `Paper Tr_proto.Seq_search.protocol;
    entry `Paper Tr_proto.Binsearch.protocol;
    entry `Optimization Tr_proto.Binsearch.protocol_throttled;
    entry `Optimization Tr_proto.Directed.protocol;
    entry `Optimization Tr_proto.Cleanup.protocol_rotation;
    entry `Optimization Tr_proto.Cleanup.protocol_inverse;
    entry `Optimization Tr_proto.Adaptive.protocol;
    entry `Extension Tr_proto.Pushpull.protocol;
    entry `Extension Tr_proto.Failure.protocol;
    entry `Extension Tr_proto.Failsafe_search.protocol;
    entry `Extension Tr_proto.Membership.protocol;
    entry `Extension Tr_proto.Random_walk.protocol;
  ]

let names = List.map (fun e -> e.name) all
let find name = List.find_opt (fun e -> String.equal e.name name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown protocol %S (valid: %s)" name
           (String.concat ", " names))
