open Tr_sim

type outcome = {
  protocol_name : string;
  n : int;
  seed : int;
  duration : float;
  events : int;
  metrics : Metrics.t;
  trace : Trace.t;
}

let run (module P : Node_intf.PROTOCOL) (config : Engine.config) ~stop =
  let module E = Engine.Make (P) in
  let t = E.create config in
  E.run t ~stop;
  {
    protocol_name = P.name;
    n = config.n;
    seed = config.seed;
    duration = E.now t;
    events = E.events_processed t;
    metrics = E.metrics t;
    trace = E.trace t;
  }

let run_named name config ~stop =
  let entry = Registry.find_exn name in
  run entry.protocol config ~stop

type ensemble = {
  outcomes : outcome list;
  responsiveness_means : Tr_stats.Summary.t;
  waiting_means : Tr_stats.Summary.t;
  token_messages_means : Tr_stats.Summary.t;
}

let run_many ?pool ?(record_trace = false) protocol (config : Engine.config)
    ~seeds ~stop =
  if seeds = [] then invalid_arg "Runner.run_many: empty seed list";
  (* Ensembles drop traces by default: every replicate would otherwise
     hold O(events) memory for the whole sweep. *)
  let config = if record_trace then config else { config with trace = false } in
  let one seed = run protocol { config with seed } ~stop in
  let outcomes =
    match pool with
    | None -> List.map one seeds
    | Some pool -> Pool.map pool one seeds
  in
  let collect f =
    let s = Tr_stats.Summary.create () in
    List.iter (fun o -> Tr_stats.Summary.add s (f o)) outcomes;
    s
  in
  {
    outcomes;
    responsiveness_means =
      collect (fun o -> Tr_stats.Summary.mean (Metrics.responsiveness o.metrics));
    waiting_means =
      collect (fun o -> Tr_stats.Summary.mean (Metrics.waiting o.metrics));
    token_messages_means =
      collect (fun o -> float_of_int (Metrics.token_messages o.metrics));
  }

let rounds_stop ~n ~rounds = Engine.After_token_messages (rounds * n)

let pp_outcome ppf outcome =
  Format.fprintf ppf "%s (n=%d, seed=%d, t=%.1f)@\n%a" outcome.protocol_name
    outcome.n outcome.seed outcome.duration Metrics.report outcome.metrics
