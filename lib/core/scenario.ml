open Tr_sim

let ( let* ) r f = Result.bind r f

let split_head spec =
  match String.index_opt spec ':' with
  | None -> (spec, "")
  | Some i ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )

let args_of text =
  if String.equal text "" then [] else String.split_on_char ',' text

let parse_float name text =
  match float_of_string_opt (String.trim text) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: not a number: %S" name text)

let parse_int name text =
  match int_of_string_opt (String.trim text) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "%s: not an integer: %S" name text)

let arity name expected got =
  Error
    (Printf.sprintf "%s expects %d argument(s), got %d" name expected
       (List.length got))

let workload_of_string spec =
  let head, rest = split_head (String.trim spec) in
  let args = args_of rest in
  match (head, args) with
  | "nothing", [] -> Ok Workload.Nothing
  | "poisson", [ mean ] ->
      let* mean = parse_float "poisson" mean in
      Ok (Workload.Global_poisson { mean_interarrival = mean })
  | "pernode", [ mean ] ->
      let* mean = parse_float "pernode" mean in
      Ok (Workload.Per_node_poisson { mean_interarrival = mean })
  | "burst", [ period; size ] ->
      let* period = parse_float "burst" period in
      let* size = parse_int "burst" size in
      Ok (Workload.Burst { period; size })
  | "hotspot", [ mean; node; bias ] ->
      let* mean = parse_float "hotspot" mean in
      let* node = parse_int "hotspot" node in
      let* bias = parse_float "hotspot" bias in
      Ok (Workload.Hotspot { mean_interarrival = mean; hot = node; bias })
  | "continuous", [ node ] ->
      let* node = parse_int "continuous" node in
      Ok (Workload.Continuous { node })
  | ("nothing" | "poisson" | "pernode" | "burst" | "hotspot" | "continuous"), _
    ->
      arity head
        (match head with
        | "nothing" -> 0
        | "burst" -> 2
        | "hotspot" -> 3
        | _ -> 1)
        args
  | other, _ ->
      Error
        (Printf.sprintf
           "unknown workload %S (try poisson:10, pernode:50, burst:25,4, \
            hotspot:10,3,0.8, continuous:0, nothing)"
           other)

type net_accum = {
  delay : Network.delay_model;
  drop : float;
  slow : (int * float) list;
}

let apply_clause acc clause =
  let head, rest = split_head (String.trim clause) in
  let args = args_of rest in
  match (head, args) with
  | "unit", [] -> Ok { acc with delay = Network.Constant 1.0 }
  | "const", [ d ] ->
      let* d = parse_float "const" d in
      Ok { acc with delay = Network.Constant d }
  | "uniform", [ lo; hi ] ->
      let* lo = parse_float "uniform" lo in
      let* hi = parse_float "uniform" hi in
      if hi < lo then Error "uniform: HI < LO"
      else Ok { acc with delay = Network.Uniform (lo, hi) }
  | "exp", [ mean ] ->
      let* mean = parse_float "exp" mean in
      Ok { acc with delay = Network.Exponential mean }
  | "lossy", [ p ] ->
      let* p = parse_float "lossy" p in
      if p < 0.0 || p > 1.0 then Error "lossy: probability outside [0,1]"
      else Ok { acc with drop = p }
  | "slow", [ node; factor ] ->
      let* node = parse_int "slow" node in
      let* factor = parse_float "slow" factor in
      Ok { acc with slow = (node, factor) :: acc.slow }
  | ("unit" | "const" | "uniform" | "exp" | "lossy" | "slow"), _ ->
      arity head
        (match head with
        | "unit" -> 0
        | "uniform" | "slow" -> 2
        | _ -> 1)
        args
  | other, _ ->
      Error
        (Printf.sprintf
           "unknown network clause %S (try unit, const:2, uniform:0.5,2, \
            exp:1.5, lossy:0.1, slow:5,8)"
           other)

let network_of_string spec =
  let clauses = String.split_on_char '+' (String.trim spec) in
  let* acc =
    List.fold_left
      (fun acc clause ->
        let* acc = acc in
        apply_clause acc clause)
      (Ok { delay = Network.Constant 1.0; drop = 0.0; slow = [] })
      clauses
  in
  let delay =
    match acc.slow with
    | [] -> acc.delay
    | slows ->
        (* A slow node stretches every delay sampled for its outgoing
           links. Randomized base models would need the RNG here, so slow
           composes with deterministic bases only. *)
        let base =
          match acc.delay with
          | Network.Constant d -> d
          | Network.Uniform (lo, hi) -> (lo +. hi) /. 2.0
          | Network.Exponential mean -> mean
          | Network.Per_link _ -> 1.0
        in
        Network.Per_link
          (fun ~src ~dst:_ ->
            match List.assoc_opt src slows with
            | Some factor -> base *. factor
            | None -> base)
  in
  match
    Network.create ~reliable_delay:delay ~cheap_delay:delay
      ~cheap_drop_probability:acc.drop ()
  with
  | network -> Ok network
  | exception Invalid_argument msg ->
      (* Config-time validation (inverted uniform bounds and the like)
         surfaces as a parse error, not a crash mid-run. *)
      Error msg

let workload_examples =
  [ "poisson:10"; "pernode:50"; "burst:25,4"; "hotspot:10,3,0.8";
    "continuous:0"; "nothing" ]

let network_examples =
  [ "unit"; "const:2"; "uniform:0.5,2"; "exp:1.5"; "uniform:0.5,2+lossy:0.1";
    "const:1+slow:5,8" ]
