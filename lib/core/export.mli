(** JSON rendering of run outcomes and experiment results, for scripting
    around the CLI ([run --json], [exp --json]). Hand-rolled writer — no
    external dependency; strings are escaped per RFC 8259, floats printed
    with [%.9g] ([NaN]/infinities become [null]). *)

val outcome_to_json : Runner.outcome -> string
(** Protocol name, configuration echoes, and the full metrics block
    (responsiveness/waiting summaries and percentiles, message counts,
    possession and fairness figures). One JSON object, newline-terminated. *)

val result_to_json : Experiments.result -> string
(** Experiment id/title/expectation plus each series as an array of
    [[x, y]] pairs. *)

val escape_string : string -> string
(** Exposed for tests: JSON string-body escaping (without the quotes). *)
