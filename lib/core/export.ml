module Metrics = Tr_sim.Metrics
module Summary = Tr_stats.Summary
module Quantile = Tr_stats.Quantile

let escape_string s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_string s = Printf.sprintf "\"%s\"" (escape_string s)

let json_float f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else Printf.sprintf "%.9g" f

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v) fields)
  ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let summary_json s =
  obj
    [
      ("count", string_of_int (Summary.count s));
      ("mean", json_float (Summary.mean s));
      ("stddev", json_float (Summary.stddev s));
      ("min", json_float (Summary.min s));
      ("max", json_float (Summary.max s));
    ]

let quantiles_json q =
  obj
    (List.map
       (fun (label, p) -> (label, json_float (Quantile.quantile q p)))
       [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ])

let outcome_to_json (o : Runner.outcome) =
  let m = o.metrics in
  obj
    [
      ("protocol", json_string o.protocol_name);
      ("n", string_of_int o.n);
      ("seed", string_of_int o.seed);
      ("duration", json_float o.duration);
      ("events", string_of_int o.events);
      ("serves", string_of_int (Metrics.serves m));
      ("pending", string_of_int (Metrics.total_pending m));
      ("responsiveness", summary_json (Metrics.responsiveness m));
      ("responsiveness_quantiles", quantiles_json (Metrics.responsiveness_quantiles m));
      ("waiting", summary_json (Metrics.waiting m));
      ("waiting_quantiles", quantiles_json (Metrics.waiting_quantiles m));
      ("token_messages", string_of_int (Metrics.token_messages m));
      ("control_messages", string_of_int (Metrics.control_messages m));
      ("cheap_channel_messages", string_of_int (Metrics.cheap_messages m));
      ("search_forwards", string_of_int (Metrics.search_forwards m));
      ("total_possessions", string_of_int (Metrics.total_possessions m));
      ("possession_imbalance", json_float (Metrics.possession_imbalance m));
      ("waiting_fairness", json_float (Metrics.waiting_fairness m));
    ]
  ^ "\n"

let series_json s =
  arr
    (List.map
       (fun (x, y) -> arr [ json_float x; json_float y ])
       (Tr_stats.Series.points s))

let result_to_json (r : Experiments.result) =
  (* Notes whose value parses as a number are exported as JSON numbers
     (throughput, RSS), the rest as strings. *)
  let meta =
    match r.notes with
    | [] -> []
    | notes ->
        [
          ( "meta",
            obj
              (List.map
                 (fun (k, v) ->
                   ( k,
                     match float_of_string_opt v with
                     | Some _ -> v
                     | None -> json_string v ))
                 notes) );
        ]
  in
  obj
    ([
       ("id", json_string r.id);
       ("title", json_string r.title);
       ("expectation", json_string r.expectation);
     ]
    @ meta
    @ [
        ( "series",
          obj
            (List.map
               (fun s -> (Tr_stats.Series.name s, series_json s))
               r.series) );
      ])
  ^ "\n"
