open Tr_sim
module Series = Tr_stats.Series
module Summary = Tr_stats.Summary

type result = {
  id : string;
  title : string;
  expectation : string;
  notes : (string * string) list;
  series : Series.t list;
  table : Series.Table.t;
}

let log2 x = log x /. log 2.0

(* Sweep points are independent seeded runs, so a pool may fan them out
   across domains; results always come back in input order, which keeps
   every table byte-identical to the sequential run. *)
let pmap ?pool f xs =
  match pool with None -> List.map f xs | Some pool -> Pool.map pool f xs

let config ~n ~seed ~workload =
  { (Engine.default_config ~n ~seed) with workload }

let poisson mean = Workload.Global_poisson { mean_interarrival = mean }

(* A run long enough for steady-state statistics: the serve target plays
   the role of the paper's 1000 rounds, with a generous time cap as a
   safety net against degenerate configurations. *)
let steady_stop serves = Engine.First_of [ Engine.After_serves serves; Engine.At_time 5e6 ]

let mean_responsiveness outcome =
  Summary.mean (Metrics.responsiveness outcome.Runner.metrics)

(* ------------------------------------------------------------------ *)
(* Figure 9: fixed load, sweep N                                       *)
(* ------------------------------------------------------------------ *)

let fig9 ?pool ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 8; 16; 32 ] else [ 4; 8; 16; 32; 64; 100; 128; 256 ] in
  let serves = if quick then 300 else 2000 in
  let ring = Series.create ~name:"ring" in
  let bin = Series.create ~name:"binsearch" in
  let reference = Series.create ~name:"log2(n)" in
  (* One job per (size, protocol) point for load balance: the ring runs
     dominate, so pairing them with the cheap binsearch runs in a single
     job would leave domains idle. *)
  let jobs =
    List.concat_map
      (fun n -> [ (n, Tr_proto.Ring.protocol); (n, Tr_proto.Binsearch.protocol) ])
      ns
  in
  let ys =
    pmap ?pool
      (fun (n, protocol) ->
        let cfg = config ~n ~seed ~workload:(poisson 10.0) in
        mean_responsiveness (Runner.run protocol cfg ~stop:(steady_stop serves)))
      jobs
  in
  let rec fill ns ys =
    match (ns, ys) with
    | [], [] -> ()
    | n :: ns', y_ring :: y_bin :: ys' ->
        let x = float_of_int n in
        Series.add ring ~x ~y:y_ring;
        Series.add bin ~x ~y:y_bin;
        Series.add reference ~x ~y:(log2 x);
        fill ns' ys'
    | _ -> assert false
  in
  fill ns ys;
  {
    id = "FIG9";
    title = "Average responsiveness vs ring size (fixed load, 1 request / 10 time units)";
    expectation =
      "ring approaches 10 (the mean interarrival) as N grows; binsearch \
       stays bounded by ~log2(N)";
    notes = [];
    series = [ ring; bin; reference ];
    table = Series.Table.of_series ~x_label:"n" [ ring; bin; reference ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 10: fixed N, sweep load                                      *)
(* ------------------------------------------------------------------ *)

let fig10 ?pool ?(quick = false) ?(seed = 42) () =
  let n = 100 in
  let means =
    if quick then [ 5.0; 50.0; 400.0 ]
    else [ 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 400.0; 1000.0 ]
  in
  let serves = if quick then 200 else 1500 in
  let ring = Series.create ~name:"ring" in
  let bin = Series.create ~name:"binsearch" in
  let half_n = Series.create ~name:"n/2" in
  let logn = Series.create ~name:"log2(n)" in
  let jobs =
    List.concat_map
      (fun mean ->
        [ (mean, Tr_proto.Ring.protocol); (mean, Tr_proto.Binsearch.protocol) ])
      means
  in
  let ys =
    pmap ?pool
      (fun (mean, protocol) ->
        let cfg = config ~n ~seed ~workload:(poisson mean) in
        mean_responsiveness (Runner.run protocol cfg ~stop:(steady_stop serves)))
      jobs
  in
  let rec fill means ys =
    match (means, ys) with
    | [], [] -> ()
    | mean :: means', y_ring :: y_bin :: ys' ->
        Series.add ring ~x:mean ~y:y_ring;
        Series.add bin ~x:mean ~y:y_bin;
        Series.add half_n ~x:mean ~y:(float_of_int n /. 2.0);
        Series.add logn ~x:mean ~y:(log2 (float_of_int n));
        fill means' ys'
    | _ -> assert false
  in
  fill means ys;
  {
    id = "FIG10";
    title =
      Printf.sprintf
        "Average responsiveness vs mean interarrival (n = %d)" n;
    expectation =
      "as the load decreases, ring's responsiveness approaches n/2 = 50 \
       while binsearch approaches log2(100) ~ 6.6 from below";
    notes = [];
    series = [ ring; bin; half_n; logn ];
    table = Series.Table.of_series ~x_label:"interarrival" [ ring; bin; half_n; logn ];
  }

(* ------------------------------------------------------------------ *)
(* Large-N responsiveness: the O(N) / O(log N) gap at scale            *)
(* ------------------------------------------------------------------ *)

(* Figures 9/10 stop at N = 256 — small enough that constants blur the
   asymptotic story. This sweep pushes to N = 16384 with traces off and
   tail statistics read from the streaming P² sketches, so memory stays
   O(N) however long the run. Load scales with N (mean interarrival
   N/4): light enough that the ring pays its ~N/2 rotation while
   binsearch stays logarithmic — at N = 16384 the gap exceeds two
   orders of magnitude. *)
let large_n ?pool ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 256; 512 ] else [ 1024; 2048; 4096; 8192; 16384 ] in
  let serves = if quick then 60 else 150 in
  let ring = Series.create ~name:"ring" in
  let ring_p99 = Series.create ~name:"ring-p99" in
  let bin = Series.create ~name:"binsearch" in
  let bin_p99 = Series.create ~name:"binsearch-p99" in
  let half_n = Series.create ~name:"n/2" in
  let logn = Series.create ~name:"log2(n)" in
  let jobs =
    List.concat_map
      (fun n -> [ (n, Tr_proto.Ring.protocol); (n, Tr_proto.Binsearch.protocol) ])
      ns
  in
  let measure (n, protocol) =
    let workload = poisson (float_of_int n /. 4.0) in
    let cfg = config ~n ~seed ~workload in
    let o = Runner.run protocol cfg ~stop:(steady_stop serves) in
    let sk = Metrics.responsiveness_sketches o.Runner.metrics in
    (mean_responsiveness o, Tr_stats.P2.estimate sk.Metrics.q99)
  in
  let ys = pmap ?pool measure jobs in
  let rec fill ns ys =
    match (ns, ys) with
    | [], [] -> ()
    | n :: ns', (ring_mean, ring_q99) :: (bin_mean, bin_q99) :: ys' ->
        let x = float_of_int n in
        Series.add ring ~x ~y:ring_mean;
        Series.add ring_p99 ~x ~y:ring_q99;
        Series.add bin ~x ~y:bin_mean;
        Series.add bin_p99 ~x ~y:bin_q99;
        Series.add half_n ~x ~y:(x /. 2.0);
        Series.add logn ~x ~y:(log2 x);
        fill ns' ys'
    | _ -> assert false
  in
  fill ns ys;
  {
    id = "LARGE-N";
    title =
      "Responsiveness at large ring sizes (light load, interarrival = N/4, \
       streaming tail statistics)";
    expectation =
      "ring's mean and p99 grow linearly with N while binsearch stays \
       within a small multiple of log2(N); the gap exceeds two orders of \
       magnitude by N = 16384";
    notes = [];
    series = [ ring; ring_p99; bin; bin_p99; half_n; logn ];
    table =
      Series.Table.of_series ~x_label:"n"
        [ ring; ring_p99; bin; bin_p99; half_n; logn ];
  }

(* ------------------------------------------------------------------ *)
(* Worst-case single-request probes (Lemma 4, Theorem 2, Lemma 6)      *)
(* ------------------------------------------------------------------ *)

(* Let the idle rotation reach a steady state, then fire one request at a
   sampled node; repeat for several nodes and keep the worst result. *)
let probe_placements n = List.map (fun node -> node mod n) [ 1; n / 4; n / 2; (3 * n / 4) + 1 ]

let probe_run protocol ~n ~seed ~node =
  let at = (3.0 *. float_of_int n) +. 0.37 in
  let cfg = config ~n ~seed ~workload:(Workload.Script [ (at, node) ]) in
  Runner.run protocol cfg
    ~stop:
      (Engine.First_of
         [ Engine.After_serves 1; Engine.At_time (at +. (10.0 *. float_of_int n)) ])

(* Worst probe result per ring size, the whole (size × placement) sweep
   flattened into independent pool jobs. The per-size [max] folds in
   placement order, exactly as the sequential loop did. *)
let worst_probes ?pool protocol ~ns ~seed ~measure =
  let jobs =
    List.concat_map (fun n -> List.map (fun node -> (n, node)) (probe_placements n)) ns
  in
  let values =
    pmap ?pool (fun (n, node) -> measure (probe_run protocol ~n ~seed ~node)) jobs
  in
  let rec group ns values =
    match ns with
    | [] ->
        assert (values = []);
        []
    | n :: ns' ->
        let rec take k worst = function
          | rest when k = 0 -> (worst, rest)
          | v :: rest -> take (k - 1) (Stdlib.max worst v) rest
          | [] -> assert false
        in
        let worst, rest =
          take (List.length (probe_placements n)) neg_infinity values
        in
        (n, worst) :: group ns' rest
  in
  group ns values

let lem4 ?pool ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128; 256; 512 ] in
  let waiting = Series.create ~name:"ring-worst-wait" in
  let linear = Series.create ~name:"n" in
  List.iter
    (fun (n, w) ->
      Series.add waiting ~x:(float_of_int n) ~y:w;
      Series.add linear ~x:(float_of_int n) ~y:(float_of_int n))
    (worst_probes ?pool Tr_proto.Ring.protocol ~ns ~seed ~measure:(fun o ->
         Summary.max (Metrics.waiting o.Runner.metrics)));
  {
    id = "LEM4";
    title = "Worst-case single-request waiting time, ring";
    expectation = "grows linearly: O(N) responsiveness (Lemma 4)";
    notes = [];
    series = [ waiting; linear ];
    table = Series.Table.of_series ~x_label:"n" [ waiting; linear ];
  }

let thm2 ?pool ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128; 256; 512 ] in
  let waiting = Series.create ~name:"binsearch-worst-wait" in
  let reference = Series.create ~name:"3*log2(n)" in
  List.iter
    (fun (n, w) ->
      Series.add waiting ~x:(float_of_int n) ~y:w;
      Series.add reference ~x:(float_of_int n) ~y:(3.0 *. log2 (float_of_int n)))
    (worst_probes ?pool Tr_proto.Binsearch.protocol ~ns ~seed ~measure:(fun o ->
         Summary.max (Metrics.waiting o.Runner.metrics)));
  {
    id = "THM2";
    title = "Worst-case single-request waiting time, binsearch";
    expectation = "grows logarithmically: O(log N) responsiveness (Theorem 2)";
    notes = [];
    series = [ waiting; reference ];
    table = Series.Table.of_series ~x_label:"n" [ waiting; reference ];
  }

let lem6 ?pool ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128; 256; 512 ] in
  let forwards = Series.create ~name:"search-forwards" in
  let reference = Series.create ~name:"log2(n)" in
  List.iter
    (fun (n, f) ->
      Series.add forwards ~x:(float_of_int n) ~y:f;
      Series.add reference ~x:(float_of_int n) ~y:(log2 (float_of_int n)))
    (worst_probes ?pool Tr_proto.Binsearch.protocol ~ns ~seed ~measure:(fun o ->
         float_of_int (Metrics.search_forwards o.Runner.metrics)));
  {
    id = "LEM6";
    title = "Search-message forwards per request, binsearch";
    expectation = "a request is forwarded O(log N) times (Lemma 6)";
    notes = [];
    series = [ forwards; reference ];
    table = Series.Table.of_series ~x_label:"n" [ forwards; reference ];
  }

(* ------------------------------------------------------------------ *)
(* Theorem 3: log N fairness                                           *)
(* ------------------------------------------------------------------ *)

let thm3 ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 8; 32 ] else [ 8; 16; 32; 64; 128; 256 ] in
  let single = Series.create ~name:"max-by-one-node" in
  let total = Series.create ~name:"total-possessions" in
  let logn = Series.create ~name:"log2(n)" in
  let budget = Series.create ~name:"n+log2(n)" in
  List.iter
    (fun n ->
      let module P = (val Tr_proto.Binsearch.protocol : Node_intf.PROTOCOL) in
      let module E = Engine.Make (P) in
      let competitor = 1 in
      let observer = (n / 2) + 1 in
      let cfg =
        {
          (Engine.default_config ~n ~seed) with
          workload = Workload.Continuous { node = competitor };
          trace = true;
        }
      in
      let t = E.create cfg in
      (* Warm up with the competitor hammering the token... *)
      E.run t ~stop:(Engine.At_time (6.0 *. float_of_int n));
      (* ...then the observer asks once and we watch the window. *)
      let t0 = E.now t in
      E.request_now t ~node:observer;
      E.run t
        ~stop:
          (Engine.At_time (t0 +. (20.0 *. float_of_int n)));
      let trace = E.trace t in
      let served_at =
        List.find_map
          (fun { Trace.time; event } ->
            match event with
            | Trace.Served { node; _ } when node = observer && time >= t0 ->
                Some time
            | _ -> None)
          (Trace.events trace)
      in
      let t1 = Option.value served_at ~default:infinity in
      let window =
        List.filter
          (fun (time, node) -> time >= t0 && time <= t1 && node <> observer)
          (Trace.token_possessions trace)
      in
      let by_node = Hashtbl.create 16 in
      List.iter
        (fun (_, node) ->
          Hashtbl.replace by_node node
            (1 + Option.value (Hashtbl.find_opt by_node node) ~default:0))
        window;
      let max_single = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) by_node 0 in
      let x = float_of_int n in
      Series.add single ~x ~y:(float_of_int max_single);
      Series.add total ~x ~y:(float_of_int (List.length window));
      Series.add logn ~x ~y:(log2 x);
      Series.add budget ~x ~y:(x +. log2 x))
    ns;
  {
    id = "THM3";
    title =
      "Possessions while a request waits, against a continuous competitor";
    expectation =
      "no single other node holds the token more than ~log N times, and \
       total possessions stay within ~N + log N (Theorem 3)";
    notes = [];
    series = [ single; total; logn; budget ];
    table = Series.Table.of_series ~x_label:"n" [ single; total; logn; budget ];
  }

(* ------------------------------------------------------------------ *)
(* §4.4 message costs                                                  *)
(* ------------------------------------------------------------------ *)

let per_serve metric outcome =
  let serves = Stdlib.max 1 (Metrics.serves outcome.Runner.metrics) in
  float_of_int (metric outcome.Runner.metrics) /. float_of_int serves

let opt_messages ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 16; 64 ] else [ 16; 32; 64; 128; 256 ] in
  let serves = if quick then 200 else 1000 in
  let contenders =
    [
      ("binsearch", Tr_proto.Binsearch.protocol);
      ("throttled", Tr_proto.Binsearch.protocol_throttled);
      ("directed", Tr_proto.Directed.protocol);
      ("seq-search", Tr_proto.Seq_search.protocol);
      ("gc-rotation", Tr_proto.Cleanup.protocol_rotation);
      ("gc-inverse", Tr_proto.Cleanup.protocol_inverse);
      ("suzuki-kasami", Tr_proto.Suzuki_kasami.protocol);
    ]
  in
  let series =
    List.map
      (fun (label, protocol) ->
        let s = Series.create ~name:label in
        List.iter
          (fun n ->
            let cfg = config ~n ~seed ~workload:(poisson 10.0) in
            let o = Runner.run protocol cfg ~stop:(steady_stop serves) in
            Series.add s ~x:(float_of_int n)
              ~y:(per_serve Metrics.control_messages o))
          ns;
        s)
      contenders
  in
  {
    id = "OPT-MSG";
    title = "Control (search) messages per served request";
    expectation =
      "delegated binsearch ~log N; directed ~2 log N; sequential ~N; \
       Suzuki-Kasami broadcasts ~N; throttling and trap GC reduce the \
       delegated count";
    notes = [];
    series;
    table = Series.Table.of_series ~x_label:"n" series;
  }

(* ------------------------------------------------------------------ *)
(* Tree contrast                                                       *)
(* ------------------------------------------------------------------ *)

let tree_balance ?(quick = false) ?(seed = 42) () =
  let ns = if quick then [ 15; 63 ] else [ 15; 31; 63; 127; 255 ] in
  let serves = if quick then 200 else 1000 in
  let contenders =
    [
      ("ring", Tr_proto.Ring.protocol);
      ("binsearch", Tr_proto.Binsearch.protocol);
      ("tree", Tr_proto.Tree.protocol);
    ]
  in
  let series =
    List.map
      (fun (label, protocol) ->
        let s = Series.create ~name:(label ^ "-imbalance") in
        List.iter
          (fun n ->
            let cfg = config ~n ~seed ~workload:(poisson 10.0) in
            let o = Runner.run protocol cfg ~stop:(steady_stop serves) in
            Series.add s ~x:(float_of_int n)
              ~y:(Metrics.possession_imbalance o.Runner.metrics))
          ns;
        s)
      contenders
  in
  {
    id = "TREE";
    title = "Token-possession imbalance (max node / mean)";
    expectation =
      "ring and binsearch spread possessions evenly (imbalance ~1); the \
       fixed tree concentrates traffic on interior nodes (§5)";
    notes = [];
    series;
    table = Series.Table.of_series ~x_label:"n" series;
  }

(* ------------------------------------------------------------------ *)
(* Adaptive speed / push-pull idle cost                                *)
(* ------------------------------------------------------------------ *)

let adaptive_idle ?(quick = false) ?(seed = 42) () =
  let means = if quick then [ 20.0; 200.0 ] else [ 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 ] in
  let n = if quick then 32 else 100 in
  let serves = if quick then 150 else 600 in
  let contenders =
    [
      ("ring", Tr_proto.Ring.protocol);
      ("adaptive", Tr_proto.Adaptive.protocol);
      ("pushpull", Tr_proto.Pushpull.protocol);
      ("suzuki-kasami", Tr_proto.Suzuki_kasami.protocol);
    ]
  in
  let series =
    List.map
      (fun (label, protocol) ->
        let s = Series.create ~name:(label ^ "-tok/serve") in
        List.iter
          (fun mean ->
            let cfg = config ~n ~seed ~workload:(poisson mean) in
            let o = Runner.run protocol cfg ~stop:(steady_stop serves) in
            Series.add s ~x:mean ~y:(per_serve Metrics.token_messages o))
          means;
        s)
      contenders
  in
  {
    id = "ADAPT";
    title =
      Printf.sprintf "Token messages per served request vs load (n = %d)" n;
    expectation =
      "the plain ring burns ~interarrival token hops per serve; adaptive \
       speed caps the idle cost; push-pull parks the token and pays O(1) \
       expensive messages per serve";
    notes = [];
    series;
    table = Series.Table.of_series ~x_label:"interarrival" series;
  }

(* ------------------------------------------------------------------ *)
(* Responsiveness distribution (beyond the paper's averages)           *)
(* ------------------------------------------------------------------ *)

let dist ?(quick = false) ?(seed = 42) () =
  let n = if quick then 32 else 100 in
  let serves = if quick then 400 else 3000 in
  let contenders =
    [ ("ring", Tr_proto.Ring.protocol); ("binsearch", Tr_proto.Binsearch.protocol) ]
  in
  let quantile_points = [ 0.10; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99 ] in
  let series =
    List.map
      (fun (label, protocol) ->
        let cfg = config ~n ~seed ~workload:(poisson 10.0) in
        let o = Runner.run protocol cfg ~stop:(steady_stop serves) in
        let q = Metrics.responsiveness_quantiles o.Runner.metrics in
        let s = Series.create ~name:label in
        List.iter
          (fun p -> Series.add s ~x:(100.0 *. p) ~y:(Tr_stats.Quantile.quantile q p))
          quantile_points;
        s)
      contenders
  in
  {
    id = "DIST";
    title =
      Printf.sprintf
        "Responsiveness percentiles (n = %d, fixed load) — tail behaviour          the paper's averages hide" n;
    expectation =
      "binsearch dominates at every percentile; the ring's tail stretches        toward the full rotation time while binsearch's stays within a few        log2(n)";
    notes = [];
    series;
    table = Series.Table.of_series ~x_label:"percentile" series;
  }

(* ------------------------------------------------------------------ *)
(* Warm-up / convergence (the "1000 rounds" methodology)               *)
(* ------------------------------------------------------------------ *)

let warmup ?(quick = false) ?(seed = 42) () =
  let n = if quick then 32 else 100 in
  let serves = if quick then 600 else 3000 in
  let checkpoints =
    List.filter (fun k -> k <= serves) [ 25; 50; 100; 200; 400; 800; 1600; 3000 ]
  in
  let window = 100 in
  let series =
    List.map
      (fun (label, protocol) ->
        let cfg =
          { (config ~n ~seed ~workload:(poisson 10.0)) with trace = true }
        in
        let o = Runner.run protocol cfg ~stop:(steady_stop serves) in
        let curve = Trace.running_mean_waiting o.Runner.trace ~window in
        let s = Series.create ~name:label in
        List.iteri
          (fun i (_, mean) ->
            if List.mem (i + 1) checkpoints then
              Series.add s ~x:(float_of_int (i + 1)) ~y:mean)
          curve;
        s)
      [ ("ring", Tr_proto.Ring.protocol); ("binsearch", Tr_proto.Binsearch.protocol) ]
  in
  {
    id = "WARMUP";
    title =
      Printf.sprintf
        "Running mean waiting time vs serves (window %d, n = %d)" window n;
    expectation =
      "both protocols converge to their steady-state statistic well before        the paper's 1000-rounds horizon; binsearch's level sits below the        ring's";
    notes = [];
    series;
    table = Series.Table.of_series ~x_label:"serves" series;
  }

(* ------------------------------------------------------------------ *)
(* State-space growth of the specifications (methodology)              *)
(* ------------------------------------------------------------------ *)

let spec_space ?pool ?(quick = false) ?seed:_ () =
  let cap = if quick then 1500 else 8000 in
  let specs =
    [
      ("S", fun n -> (Tr_specs.System_s.system ~n, Tr_specs.System_s.initial ~n ~data_budget:1));
      ("S1", fun n -> (Tr_specs.System_s1.system ~n, Tr_specs.System_s1.initial ~n ~data_budget:1));
      ("Token", fun n -> (Tr_specs.System_token.system ~n, Tr_specs.System_token.initial ~n ~data_budget:1));
      ("MsgPass", fun n -> (Tr_specs.System_msgpass.system ~n, Tr_specs.System_msgpass.initial ~n ~data_budget:1));
      ("Search", fun n -> (Tr_specs.System_search.system ~n, Tr_specs.System_search.initial ~n ~data_budget:1));
      ("BinSearch", fun n -> (Tr_specs.System_binsearch.system ~n, Tr_specs.System_binsearch.initial ~n ~data_budget:1));
    ]
  in
  let sizes = [ 2; 3 ] in
  (* Unlike the sweep experiments, a pool here parallelises {e inside}
     each exploration (the sharded engine), not across jobs — Pool.map
     cannot be re-entered from worker jobs, and a single big exploration
     is exactly the workload the sharded engine exists for. The visited
     counts are deterministic across domain counts, so the table stays
     byte-identical with and without a pool. *)
  let results =
    List.concat_map
      (fun (_, make_spec) ->
        List.map
          (fun n ->
            let system, init = make_spec n in
            Tr_trs.Explore.explore ~max_states:cap ?pool system ~init)
          sizes)
      specs
  in
  let remaining = ref results in
  let series =
    List.map
      (fun (label, _) ->
        let s = Series.create ~name:label in
        List.iter
          (fun n ->
            match !remaining with
            | o :: rest ->
                remaining := rest;
                Series.add s ~x:(float_of_int n)
                  ~y:(float_of_int o.Tr_trs.Explore.stats.Tr_trs.Explore.states)
            | [] -> assert false)
          sizes;
        s)
      specs
  in
  let total_states, total_wall, domains =
    List.fold_left
      (fun (states, wall, _) (o : Tr_trs.Explore.outcome) ->
        ( states + o.stats.Tr_trs.Explore.states,
          wall +. o.perf.Tr_trs.Explore.wall_s,
          o.perf.Tr_trs.Explore.domains_used ))
      (0, 0.0, 1) results
  in
  {
    id = "SPACE";
    title =
      Printf.sprintf
        "Reachable states per specification (budget 1, capped at %d)" cap;
    expectation =
      "each refinement step multiplies the state space: the abstract        systems stay tiny while the distributed ones hit the exploration        cap — the reason the paper separates correctness from performance";
    notes =
      [
        ( "states_per_s",
          Printf.sprintf "%.0f"
            (if total_wall > 0.0 then float_of_int total_states /. total_wall
             else 0.0) );
        ("domains", string_of_int domains);
        ("peak_rss_kb", string_of_int (Tr_trs.Explore.peak_rss_kb ()));
      ];
    series;
    table = Series.Table.of_series ~x_label:"n" series;
  }

let all ?pool ?(quick = false) ?(seed = 42) () =
  [
    fig9 ?pool ~quick ~seed ();
    fig10 ?pool ~quick ~seed ();
    large_n ?pool ~quick ~seed ();
    lem4 ?pool ~quick ~seed ();
    lem6 ?pool ~quick ~seed ();
    thm2 ?pool ~quick ~seed ();
    thm3 ~quick ~seed ();
    opt_messages ~quick ~seed ();
    tree_balance ~quick ~seed ();
    adaptive_idle ~quick ~seed ();
    dist ~quick ~seed ();
    warmup ~quick ~seed ();
    spec_space ?pool ~quick ();
  ]

let pp_result ppf r =
  let pp_plot ppf series =
    Tr_stats.Plot.pp ~width:60 ~height:14 ~x_label:"x" ~y_label:"y" ppf series
  in
  let pp_notes ppf = function
    | [] -> ()
    | notes ->
        List.iter (fun (k, v) -> Format.fprintf ppf "%s: %s@\n" k v) notes
  in
  Format.fprintf ppf "=== %s: %s ===@\nexpectation: %s@\n%a%a@\n%a" r.id r.title
    r.expectation pp_notes r.notes Series.Table.pp r.table pp_plot r.series
