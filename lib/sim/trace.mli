(** Structured execution traces.

    A trace records what happened and when, at a level of detail chosen by
    the caller. Tests use traces to assert ordering properties (FIFO trap
    service, fairness windows, token uniqueness); debugging uses the
    pretty-printed form.

    Storage is a growable pair of flat arrays (unboxed times + events):
    recording is O(1) per event with no per-entry cons cell, iteration is
    forward, and derived views are memoized until the next record. A
    disabled trace costs one branch per event.

    {b Ring mode.} [create ~window:w] bounds the trace to the most recent
    [w] entries (O(window) memory however long the run); older entries are
    silently discarded, {!length} still counts everything ever recorded,
    and {!dropped} says how much the window lost. Derived series
    reconstructed from a windowed trace see only the retained suffix. *)

type event =
  | Sent of { src : int; dst : int; channel : Network.channel; label : string }
  | Delivered of { src : int; dst : int; label : string }
  | Dropped of { src : int; dst : int; label : string }
  | Request of { node : int }
  | Served of { node : int; waited : float }
  | Token_at of { node : int }  (** Token possession began at [node]. *)
  | Crashed of { node : int }
  | Note of { node : int; text : string }

type entry = { time : float; event : event }
type t

val create : ?enabled:bool -> ?window:int -> unit -> t
(** [window] bounds the trace to its most recent [window] entries (ring
    mode); omitted means unbounded.
    @raise Invalid_argument if [window < 1]. *)

val enabled : t -> bool

val ring_window : t -> int option
(** The ring capacity, or [None] for an unbounded trace. *)

val record : t -> time:float -> event -> unit

val events : t -> entry list
(** Chronological (recording order); in ring mode, the retained window
    only. Memoized: repeated calls without an intervening {!record}
    return the same list without rebuilding it. *)

val length : t -> int
(** Total number of events ever recorded (including any discarded by a
    ring window). *)

val stored_length : t -> int
(** Number of events currently held ([length] minus {!dropped}). *)

val dropped : t -> int
(** Events discarded by the ring window (0 for unbounded traces). *)

val filter : t -> f:(entry -> bool) -> entry list

val token_possessions : t -> (float * int) list
(** Times and holders of every [Token_at] event, chronological. *)

val pending_series : t -> (float * int) list
(** Outstanding-request count over time, one point per change
    (reconstructed from [Request]/[Served] events). Useful for warm-up
    and saturation analysis. *)

val served_series : t -> (float * int) list
(** Cumulative serves over time, one point per [Served] event. *)

val running_mean_waiting : t -> window:int -> (float * float) list
(** Sliding-window mean of the last [window] waiting times, one point per
    [Served] event — how long the statistic takes to converge (the
    paper's "1000 rounds" steady-state question).
    @raise Invalid_argument if [window < 1]. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
