(** Structured execution traces.

    A trace records what happened and when, at a level of detail chosen by
    the caller. Tests use traces to assert ordering properties (FIFO trap
    service, fairness windows, token uniqueness); debugging uses the
    pretty-printed form. Recording is O(1) per event into a growable
    buffer; a disabled trace costs one branch per event. *)

type event =
  | Sent of { src : int; dst : int; channel : Network.channel; label : string }
  | Delivered of { src : int; dst : int; label : string }
  | Dropped of { src : int; dst : int; label : string }
  | Request of { node : int }
  | Served of { node : int; waited : float }
  | Token_at of { node : int }  (** Token possession began at [node]. *)
  | Crashed of { node : int }
  | Note of { node : int; text : string }

type entry = { time : float; event : event }
type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val record : t -> time:float -> event -> unit
val events : t -> entry list
(** Chronological (recording order). *)

val length : t -> int

val filter : t -> f:(entry -> bool) -> entry list

val token_possessions : t -> (float * int) list
(** Times and holders of every [Token_at] event, chronological. *)

val pending_series : t -> (float * int) list
(** Outstanding-request count over time, one point per change
    (reconstructed from [Request]/[Served] events). Useful for warm-up
    and saturation analysis. *)

val served_series : t -> (float * int) list
(** Cumulative serves over time, one point per [Served] event. *)

val running_mean_waiting : t -> window:int -> (float * float) list
(** Sliding-window mean of the last [window] waiting times, one point per
    [Served] event — how long the statistic takes to converge (the
    paper's "1000 rounds" steady-state question).
    @raise Invalid_argument if [window < 1]. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
