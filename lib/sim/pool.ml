type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  pending : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  total : int;
}

let default_domains () = Domain.recommended_domain_count ()

(* Workers sleep on [has_work] until a job or shutdown arrives. Jobs are
   pre-wrapped closures that never raise (see [map]), so a worker's loop
   needs no handler of its own. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec take () =
    match Queue.take_opt t.pending with
    | Some job ->
        Mutex.unlock t.mutex;
        Some job
    | None ->
        if t.closing then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.has_work t.mutex;
          take ()
        end
  in
  match take () with
  | None -> ()
  | Some job ->
      job ();
      worker_loop t

let create ?domains () =
  let total =
    match domains with Some d -> d | None -> default_domains ()
  in
  if total < 1 then invalid_arg "Pool.create: domains < 1";
  let t =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      pending = Queue.create ();
      closing = false;
      workers = [||];
      total;
    }
  in
  t.workers <- Array.init (total - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.total

let map t f items =
  match items with
  | [] -> []
  | [ only ] -> [ f only ]
  | _ ->
      let inputs = Array.of_list items in
      let n = Array.length inputs in
      let results = Array.make n None in
      let first_error = ref None in
      let remaining = ref n in
      let finished = Condition.create () in
      let job i () =
        let outcome =
          try Ok (f inputs.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock t.mutex;
        (match outcome with
        | Ok v -> results.(i) <- Some v
        | Error (e, bt) -> (
            (* Keep the lowest-indexed failure so which exception
               propagates does not depend on scheduling. *)
            match !first_error with
            | Some (j, _, _) when j < i -> ()
            | _ -> first_error := Some (i, e, bt)));
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.push (job i) t.pending
      done;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      (* The submitting domain works too: drain jobs (possibly including
         another concurrent map's) until the queue is empty... *)
      let rec drain () =
        Mutex.lock t.mutex;
        match Queue.take_opt t.pending with
        | Some job ->
            Mutex.unlock t.mutex;
            job ();
            drain ()
        | None -> Mutex.unlock t.mutex
      in
      drain ();
      (* ...then sleep until the last in-flight worker job lands. *)
      Mutex.lock t.mutex;
      while !remaining > 0 do
        Condition.wait finished t.mutex
      done;
      Mutex.unlock t.mutex;
      (match !first_error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closing <- true;
  t.workers <- [||];
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
