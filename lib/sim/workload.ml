type spec =
  | Nothing
  | Global_poisson of { mean_interarrival : float }
  | Per_node_poisson of { mean_interarrival : float }
  | Burst of { period : float; size : int }
  | Hotspot of { mean_interarrival : float; hot : int; bias : float }
  | Continuous of { node : int }
  | Script of (float * int) list

type t = {
  spec : spec;
  n : int;
  rng : Rng.t;
  (* Per_node_poisson keeps one next-arrival time per node so that the
     per-node streams are genuinely independent. *)
  mutable per_node_next : float array;
  mutable script_rest : (float * int) list;
}

let validate spec n =
  let check_mean mean =
    if mean <= 0.0 then invalid_arg "Workload.make: non-positive mean"
  in
  let check_node node =
    if node < 0 || node >= n then invalid_arg "Workload.make: node id out of range"
  in
  match spec with
  | Nothing -> ()
  | Global_poisson { mean_interarrival } -> check_mean mean_interarrival
  | Per_node_poisson { mean_interarrival } -> check_mean mean_interarrival
  | Burst { period; size } ->
      if period <= 0.0 then invalid_arg "Workload.make: non-positive period";
      if size < 1 || size > n then invalid_arg "Workload.make: burst size outside [1,n]"
  | Hotspot { mean_interarrival; hot; bias } ->
      check_mean mean_interarrival;
      check_node hot;
      if bias < 0.0 || bias > 1.0 then invalid_arg "Workload.make: bias outside [0,1]"
  | Continuous { node } -> check_node node
  | Script arrivals ->
      List.iter (fun (_, node) -> check_node node) arrivals;
      let rec sorted = function
        | [] | [ _ ] -> true
        | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && sorted rest
      in
      if not (sorted arrivals) then invalid_arg "Workload.make: unsorted script"

let make spec ~n ~rng =
  validate spec n;
  let script_rest = match spec with Script arrivals -> arrivals | _ -> [] in
  { spec; n; rng; per_node_next = [||]; script_rest }

let draw_uniform_node t = Rng.int t.rng t.n

let draw_hotspot_node t ~hot ~bias =
  if Rng.float t.rng 1.0 < bias then hot else draw_uniform_node t

let burst_nodes t size =
  let all = Array.init t.n (fun i -> i) in
  Rng.shuffle t.rng all;
  Array.to_list (Array.sub all 0 size)

let per_node_min t =
  let best = ref 0 in
  Array.iteri (fun i v -> if v < t.per_node_next.(!best) then best := i) t.per_node_next;
  !best

let next_from t ~after =
  match t.spec with
  | Nothing -> None
  | Continuous { node } ->
      (* One initial arrival at time 0; re-requests are handled by the
         engine through [wants_immediate_rerequest]. *)
      if after < 0.0 then Some (0.0, [ node ]) else None
  | Global_poisson { mean_interarrival } ->
      let base = Stdlib.max after 0.0 in
      let time = base +. Rng.exponential t.rng ~mean:mean_interarrival in
      Some (time, [ draw_uniform_node t ])
  | Hotspot { mean_interarrival; hot; bias } ->
      let base = Stdlib.max after 0.0 in
      let time = base +. Rng.exponential t.rng ~mean:mean_interarrival in
      Some (time, [ draw_hotspot_node t ~hot ~bias ])
  | Burst { period; size } ->
      let base = Stdlib.max after 0.0 in
      Some (base +. period, burst_nodes t size)
  | Per_node_poisson { mean_interarrival } ->
      if Array.length t.per_node_next = 0 then
        t.per_node_next <-
          Array.init t.n (fun _ -> Rng.exponential t.rng ~mean:mean_interarrival);
      let i = per_node_min t in
      let time = t.per_node_next.(i) in
      t.per_node_next.(i) <- time +. Rng.exponential t.rng ~mean:mean_interarrival;
      Some (time, [ i ])
  | Script _ -> (
      match t.script_rest with
      | [] -> None
      | (time, node) :: rest ->
          (* Group simultaneous arrivals into one batch. *)
          let rec take_same acc = function
            | (t2, node2) :: rest2 when t2 = time -> take_same (node2 :: acc) rest2
            | rest2 -> (List.rev acc, rest2)
          in
          let nodes, rest = take_same [ node ] rest in
          t.script_rest <- rest;
          Some (time, nodes))

let first t = next_from t ~after:(-1.0)
let next t ~after = next_from t ~after

let wants_immediate_rerequest t node =
  match t.spec with Continuous { node = c } -> c = node | _ -> false

let spec t = t.spec
