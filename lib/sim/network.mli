(** Complete-graph message fabric model.

    The paper distinguishes two communication modes: "expensive" messages
    with delivery guarantees (the token and the history it carries) and
    "cheap" messages without guarantees (search hints, traps, probes) that
    may be lost or delayed arbitrarily without affecting safety. The
    {!channel} type makes that distinction first-class; the simulation
    engine routes every send through {!sample_delay} / {!dropped}. *)

type channel =
  | Reliable  (** Expensive: always delivered, bounded delay. *)
  | Cheap     (** Performance hints: may be dropped or delayed further. *)

type delay_model =
  | Constant of float
      (** Every message takes exactly this long (the paper's figures assume
          one time unit per hop). *)
  | Uniform of float * float  (** Uniform in [\[lo, hi\]]. *)
  | Exponential of float      (** Exponential with the given mean. *)
  | Per_link of (src:int -> dst:int -> float)
      (** Heterogeneous topology: each directed link has its own latency
          (e.g. geographic rings, one slow node). Must return positive
          values. *)

type t

val create :
  ?reliable_delay:delay_model ->
  ?cheap_delay:delay_model ->
  ?cheap_drop_probability:float ->
  ?partitioned:(int -> int -> bool) ->
  unit ->
  t
(** Defaults: both channels [Constant 1.0], no drops, no partitions.
    [partitioned src dst] — when it returns [true] the link silently drops
    every message (used by fault-injection tests).

    Delay models are validated here, at configuration time: [Constant]
    must be finite and non-negative, [Uniform (lo, hi)] needs
    [0 <= lo <= hi] (both finite), [Exponential] needs a positive finite
    mean. [Per_link] functions are wrapped so a non-positive or
    non-finite sample raises a descriptive [Invalid_argument] naming the
    offending link instead of being silently clamped.
    @raise Invalid_argument if the drop probability is outside [0,1] or a
    delay model is malformed. *)

val default : t
(** [create ()] — unit delay, fully reliable. *)

val sample_delay : t -> Rng.t -> channel -> src:int -> dst:int -> float
(** Latency for the next message on [channel] over the ([src], [dst])
    link. Always > 0. *)

val dropped : t -> Rng.t -> channel -> src:int -> dst:int -> bool
(** Whether the fabric loses this message. [Reliable] messages are dropped
    only by a partition, never by the random loss process. *)

val pp_channel : Format.formatter -> channel -> unit
