(** The contract between protocol implementations and the engine.

    A protocol is a deterministic state machine per node. All effects —
    sending, timers, serving a request — go through the {!ctx} capabilities
    the engine passes to every handler, so protocols contain no global
    state and runs are reproducible from the seed. *)

type 'msg ctx = {
  self : int;  (** This node's identifier, [0 .. n-1]. *)
  n : int;  (** Number of nodes in the ring. *)
  now : unit -> float;  (** Current virtual time. *)
  rng : Rng.t;  (** Node-local random stream. *)
  send : ?channel:Network.channel -> dst:int -> 'msg -> unit;
      (** Queue a message; it arrives after the network's sampled delay
          unless dropped. Default channel is [Reliable]. *)
  set_timer : delay:float -> key:int -> unit;
      (** Fire [on_timer ~key] after [delay]. Multiple timers may share a
          key; [cancel_timers] voids all of them. *)
  cancel_timers : key:int -> unit;
  serve : unit -> unit;
      (** Consume this node's oldest outstanding request: the node holds
          the token and performs its broadcast / critical section. Raises
          if no request is outstanding — protocols must check {!pending}. *)
  pending : unit -> int;  (** Outstanding (unserved) requests at this node. *)
  possession : unit -> unit;
      (** Record that the token possession moved to this node (metrics). *)
  search_forward : unit -> unit;
      (** Record one forwarding hop of a search message (Lemma 6 metric). *)
  note : (unit -> string) -> unit;
      (** Trace annotation; the thunk only runs when tracing is enabled. *)
}

(** Cyclic successor/predecessor arithmetic used by every ring protocol. *)
let succ_node ~n x = (x + 1) mod n

let pred_node ~n x = (x + n - 1) mod n

let forward_node ~n x k = ((x + k) mod n + n) mod n
(** [forward_node ~n x k] is [x^{+k}] (negative [k] walks backwards). *)

let ring_distance ~n ~src ~dst = ((dst - src) mod n + n) mod n
(** Hops from [src] to [dst] travelling in the rotation direction. *)

module type PROTOCOL = sig
  type state
  type msg

  val name : string
  (** Short identifier used in benches and traces, e.g. ["ring"]. *)

  val describe : string
  (** One-line description of the variant. *)

  val classify : msg -> Metrics.msg_class
  (** Whether this message carries the token (expensive) or is a control
      hint (cheap). Drives message accounting. *)

  val label : msg -> string
  (** Compact rendering for traces. *)

  val init : msg ctx -> state
  (** Called once per node before time starts. By convention node 0 is
      the initial token holder; protocols bootstrap rotation here (e.g. by
      setting a zero-delay timer). *)

  val on_message : msg ctx -> state -> src:int -> msg -> state
  val on_timer : msg ctx -> state -> key:int -> state

  val on_request : msg ctx -> state -> state
  (** The node just became ready (one more outstanding request). The
      engine has already counted the request; the protocol decides how to
      chase the token. *)
end
