type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 output mix (Steele, Lea & Flood, OOPSLA 2014). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling on the top 62 bits to stay unbiased. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > (1 lsl 62) - bound then draw () else v
  in
  draw ()

let float t bound =
  (* 53 random bits scaled to [0, 1), then stretched. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean <= 0";
  (* 1 - u is in (0, 1], so log never sees 0. *)
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let uniform_range t ~lo ~hi = lo +. float t (hi -. lo)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
