module Summary = Tr_stats.Summary
module Quantile = Tr_stats.Quantile
module P2 = Tr_stats.P2

type msg_class = Token_msg | Control_msg

(* Streaming (O(1)-memory) percentile estimates of one sample stream —
   the tail statistics large-N sweeps read when exact sample retention
   would be wasteful. *)
type sketches = { q50 : P2.t; q90 : P2.t; q99 : P2.t }

let make_sketches () =
  { q50 = P2.create ~p:0.5; q90 = P2.create ~p:0.9; q99 = P2.create ~p:0.99 }

let sketch_add s x =
  P2.add s.q50 x;
  P2.add s.q90 x;
  P2.add s.q99 x

type t = {
  n : int;
  pending : float Queue.t array; (* arrival times, FIFO per node *)
  (* Global arrival log with lazy deletion: entries are
     [(node, per-node index, arrival)]. While arrivals come in
     non-decreasing time order (true under the engine, which processes
     events chronologically), the queue front — after discarding entries
     whose request was already served — IS the earliest outstanding
     arrival, making the responsiveness window lookup amortised O(1)
     instead of an O(n) scan per serve. If a caller ever feeds
     out-of-order arrivals directly, [fifo_monotone] trips and we fall
     back to the scan, so the value is exact either way. *)
  arrivals_fifo : (int * int * float) Queue.t;
  arrival_idx : int array; (* arrivals recorded per node *)
  served_idx : int array; (* serves recorded per node *)
  mutable fifo_monotone : bool;
  mutable last_arrival : float;
  mutable total_pending : int;
  mutable serves : int;
  mutable last_service_time : float;
  responsiveness : Summary.t;
  responsiveness_q : Quantile.t;
  responsiveness_sk : sketches;
  waiting : Summary.t;
  waiting_q : Quantile.t;
  waiting_sk : sketches;
  waiting_per_node : Summary.t array;
  mutable token_messages : int;
  mutable control_messages : int;
  mutable cheap_messages : int;
  mutable search_forwards : int;
  possessions : int array;
  mutable total_possessions : int;
}

let create ~n =
  if n < 1 then invalid_arg "Metrics.create: n < 1";
  {
    n;
    pending = Array.init n (fun _ -> Queue.create ());
    arrivals_fifo = Queue.create ();
    arrival_idx = Array.make n 0;
    served_idx = Array.make n 0;
    fifo_monotone = true;
    last_arrival = neg_infinity;
    total_pending = 0;
    serves = 0;
    last_service_time = neg_infinity;
    responsiveness = Summary.create ();
    responsiveness_q = Quantile.create ();
    responsiveness_sk = make_sketches ();
    waiting = Summary.create ();
    waiting_q = Quantile.create ();
    waiting_sk = make_sketches ();
    waiting_per_node = Array.init n (fun _ -> Summary.create ());
    token_messages = 0;
    control_messages = 0;
    cheap_messages = 0;
    search_forwards = 0;
    possessions = Array.make n 0;
    total_possessions = 0;
  }

let n t = t.n

let on_request t ~time ~node =
  Queue.push time t.pending.(node);
  if time < t.last_arrival then t.fifo_monotone <- false
  else t.last_arrival <- time;
  Queue.push (node, t.arrival_idx.(node), time) t.arrivals_fifo;
  t.arrival_idx.(node) <- t.arrival_idx.(node) + 1;
  t.total_pending <- t.total_pending + 1

(* O(n) fallback, allocation-free (no [peek_opt] option per node). *)
let scan_earliest t =
  let best = ref infinity in
  Array.iter
    (fun q ->
      if not (Queue.is_empty q) then begin
        let arrival = Queue.peek q in
        if arrival < !best then best := arrival
      end)
    t.pending;
  !best

let earliest_outstanding t =
  if not t.fifo_monotone then scan_earliest t
  else begin
    let stale = ref true in
    while !stale && not (Queue.is_empty t.arrivals_fifo) do
      let node, idx, _ = Queue.peek t.arrivals_fifo in
      if idx < t.served_idx.(node) then ignore (Queue.pop t.arrivals_fifo)
      else stale := false
    done;
    if Queue.is_empty t.arrivals_fifo then infinity
    else
      let _, _, arrival = Queue.peek t.arrivals_fifo in
      arrival
  end

let on_serve t ~time ~node =
  match Queue.take_opt t.pending.(node) with
  | None -> invalid_arg "Metrics.on_serve: no outstanding request at node"
  | Some arrival ->
      t.served_idx.(node) <- t.served_idx.(node) + 1;
      (* [arrival] has already been popped, but it still bounds the window:
         the demand window opened at the earliest outstanding request,
         which is [min arrival (earliest remaining)]. *)
      let window_open =
        Stdlib.min arrival (earliest_outstanding t)
      in
      let window_open = Stdlib.max window_open t.last_service_time in
      let sample = time -. window_open in
      Summary.add t.responsiveness sample;
      Quantile.add t.responsiveness_q sample;
      sketch_add t.responsiveness_sk sample;
      let waited = time -. arrival in
      Summary.add t.waiting waited;
      Quantile.add t.waiting_q waited;
      sketch_add t.waiting_sk waited;
      Summary.add t.waiting_per_node.(node) waited;
      t.total_pending <- t.total_pending - 1;
      t.serves <- t.serves + 1;
      t.last_service_time <- time

let on_message t channel cls =
  (match cls with
  | Token_msg -> t.token_messages <- t.token_messages + 1
  | Control_msg -> t.control_messages <- t.control_messages + 1);
  match channel with
  | Network.Cheap -> t.cheap_messages <- t.cheap_messages + 1
  | Network.Reliable -> ()

let on_token_possession t ~node =
  t.possessions.(node) <- t.possessions.(node) + 1;
  t.total_possessions <- t.total_possessions + 1

let on_search_forward t = t.search_forwards <- t.search_forwards + 1
let pending t ~node = Queue.length t.pending.(node)
let oldest_arrival t ~node = Queue.peek_opt t.pending.(node)
let total_pending t = t.total_pending
let serves t = t.serves
let responsiveness t = t.responsiveness
let responsiveness_quantiles t = t.responsiveness_q
let responsiveness_sketches t = t.responsiveness_sk
let waiting t = t.waiting
let waiting_quantiles t = t.waiting_q
let waiting_sketches t = t.waiting_sk
let token_messages t = t.token_messages
let control_messages t = t.control_messages
let cheap_messages t = t.cheap_messages
let search_forwards t = t.search_forwards
let possessions t ~node = t.possessions.(node)
let total_possessions t = t.total_possessions
let max_possessions t = Array.fold_left Stdlib.max 0 t.possessions

let waiting_by_node t ~node = t.waiting_per_node.(node)

let waiting_fairness t =
  let means =
    Array.to_list t.waiting_per_node
    |> List.filter_map (fun s ->
           if Summary.count s > 0 then Some (Summary.mean s) else None)
  in
  match means with
  | [] -> nan
  | _ ->
      let k = float_of_int (List.length means) in
      let sum = List.fold_left ( +. ) 0.0 means in
      let sum_sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 means in
      if sum_sq = 0.0 then 1.0 else sum *. sum /. (k *. sum_sq)

let possession_imbalance t =
  if t.total_possessions = 0 then nan
  else
    let mean = float_of_int t.total_possessions /. float_of_int t.n in
    float_of_int (max_possessions t) /. mean

let report ppf t =
  Format.fprintf ppf "serves: %d (pending %d)@\n" t.serves t.total_pending;
  Format.fprintf ppf "responsiveness: %a@\n" Summary.pp t.responsiveness;
  Format.fprintf ppf "waiting:        %a@\n" Summary.pp t.waiting;
  Format.fprintf ppf "messages: token=%d control=%d (cheap-channel=%d)@\n"
    t.token_messages t.control_messages t.cheap_messages;
  Format.fprintf ppf "search forwards: %d@\n" t.search_forwards;
  Format.fprintf ppf "possessions: total=%d max=%d imbalance=%.3g@\n"
    t.total_possessions (max_possessions t) (possession_imbalance t);
  Format.fprintf ppf "waiting fairness (Jain): %.3f@\n" (waiting_fairness t)
