module Summary = Tr_stats.Summary
module Quantile = Tr_stats.Quantile

type msg_class = Token_msg | Control_msg

type t = {
  n : int;
  pending : float Queue.t array; (* arrival times, FIFO per node *)
  mutable total_pending : int;
  mutable serves : int;
  mutable last_service_time : float;
  responsiveness : Summary.t;
  responsiveness_q : Quantile.t;
  waiting : Summary.t;
  waiting_q : Quantile.t;
  waiting_per_node : Summary.t array;
  mutable token_messages : int;
  mutable control_messages : int;
  mutable cheap_messages : int;
  mutable search_forwards : int;
  possessions : int array;
  mutable total_possessions : int;
}

let create ~n =
  if n < 1 then invalid_arg "Metrics.create: n < 1";
  {
    n;
    pending = Array.init n (fun _ -> Queue.create ());
    total_pending = 0;
    serves = 0;
    last_service_time = neg_infinity;
    responsiveness = Summary.create ();
    responsiveness_q = Quantile.create ();
    waiting = Summary.create ();
    waiting_q = Quantile.create ();
    waiting_per_node = Array.init n (fun _ -> Summary.create ());
    token_messages = 0;
    control_messages = 0;
    cheap_messages = 0;
    search_forwards = 0;
    possessions = Array.make n 0;
    total_possessions = 0;
  }

let n t = t.n

let on_request t ~time ~node =
  Queue.push time t.pending.(node);
  t.total_pending <- t.total_pending + 1

let earliest_outstanding t =
  let best = ref infinity in
  Array.iter
    (fun q ->
      match Queue.peek_opt q with
      | Some arrival when arrival < !best -> best := arrival
      | Some _ | None -> ())
    t.pending;
  !best

let on_serve t ~time ~node =
  match Queue.take_opt t.pending.(node) with
  | None -> invalid_arg "Metrics.on_serve: no outstanding request at node"
  | Some arrival ->
      (* [arrival] has already been popped, but it still bounds the window:
         the demand window opened at the earliest outstanding request,
         which is [min arrival (earliest remaining)]. *)
      let window_open =
        Stdlib.min arrival (earliest_outstanding t)
      in
      let window_open = Stdlib.max window_open t.last_service_time in
      let sample = time -. window_open in
      Summary.add t.responsiveness sample;
      Quantile.add t.responsiveness_q sample;
      let waited = time -. arrival in
      Summary.add t.waiting waited;
      Quantile.add t.waiting_q waited;
      Summary.add t.waiting_per_node.(node) waited;
      t.total_pending <- t.total_pending - 1;
      t.serves <- t.serves + 1;
      t.last_service_time <- time

let on_message t channel cls =
  (match cls with
  | Token_msg -> t.token_messages <- t.token_messages + 1
  | Control_msg -> t.control_messages <- t.control_messages + 1);
  match channel with
  | Network.Cheap -> t.cheap_messages <- t.cheap_messages + 1
  | Network.Reliable -> ()

let on_token_possession t ~node =
  t.possessions.(node) <- t.possessions.(node) + 1;
  t.total_possessions <- t.total_possessions + 1

let on_search_forward t = t.search_forwards <- t.search_forwards + 1
let pending t ~node = Queue.length t.pending.(node)
let oldest_arrival t ~node = Queue.peek_opt t.pending.(node)
let total_pending t = t.total_pending
let serves t = t.serves
let responsiveness t = t.responsiveness
let responsiveness_quantiles t = t.responsiveness_q
let waiting t = t.waiting
let waiting_quantiles t = t.waiting_q
let token_messages t = t.token_messages
let control_messages t = t.control_messages
let cheap_messages t = t.cheap_messages
let search_forwards t = t.search_forwards
let possessions t ~node = t.possessions.(node)
let total_possessions t = t.total_possessions
let max_possessions t = Array.fold_left Stdlib.max 0 t.possessions

let waiting_by_node t ~node = t.waiting_per_node.(node)

let waiting_fairness t =
  let means =
    Array.to_list t.waiting_per_node
    |> List.filter_map (fun s ->
           if Summary.count s > 0 then Some (Summary.mean s) else None)
  in
  match means with
  | [] -> nan
  | _ ->
      let k = float_of_int (List.length means) in
      let sum = List.fold_left ( +. ) 0.0 means in
      let sum_sq = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 means in
      if sum_sq = 0.0 then 1.0 else sum *. sum /. (k *. sum_sq)

let possession_imbalance t =
  if t.total_possessions = 0 then nan
  else
    let mean = float_of_int t.total_possessions /. float_of_int t.n in
    float_of_int (max_possessions t) /. mean

let report ppf t =
  Format.fprintf ppf "serves: %d (pending %d)@\n" t.serves t.total_pending;
  Format.fprintf ppf "responsiveness: %a@\n" Summary.pp t.responsiveness;
  Format.fprintf ppf "waiting:        %a@\n" Summary.pp t.waiting;
  Format.fprintf ppf "messages: token=%d control=%d (cheap-channel=%d)@\n"
    t.token_messages t.control_messages t.cheap_messages;
  Format.fprintf ppf "search forwards: %d@\n" t.search_forwards;
  Format.fprintf ppf "possessions: total=%d max=%d imbalance=%.3g@\n"
    t.total_possessions (max_possessions t) (possession_imbalance t);
  Format.fprintf ppf "waiting fairness (Jain): %.3f@\n" (waiting_fairness t)
