(** Stable min-priority queue keyed by simulation time.

    Entries with equal time leave the queue in insertion order (each push
    receives a monotone sequence number), which keeps executions
    deterministic when many events share a timestamp.

    The implementation is a struct-of-arrays binary heap (flat [float
    array] of times, [int array] of sequence numbers, payload slots):
    pushes and pops move scalars between slots and allocate nothing in
    steady state. Popped and cleared slots are overwritten with an
    immediate filler, so the queue never pins a payload the caller has
    already consumed. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest entry (ties: oldest insertion first).
    Allocates the option/tuple; the event-loop hot path uses
    {!top_time_exn} + {!pop_exn} instead. *)

val pop_exn : 'a t -> 'a
(** Allocation-free [pop]: remove and return the earliest payload.
    @raise Invalid_argument on an empty queue. *)

val peek_time : 'a t -> float option

val top_time_exn : 'a t -> float
(** Allocation-free [peek_time].
    @raise Invalid_argument on an empty queue. *)

val clear : 'a t -> unit
(** Drop all pending entries (releasing their payloads to the GC).

    [clear] does {e not} reset the internal sequence counter: entries
    pushed after a [clear] still order after anything pushed before it
    at an equal timestamp, so a queue reused across runs keeps the
    global FIFO tie-break. Per-run sequence numbering comes from using a
    fresh queue per run (as [Engine.create] does), never from [clear]. *)
