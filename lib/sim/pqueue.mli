(** Stable min-priority queue keyed by simulation time.

    Entries with equal time leave the queue in insertion order (each push
    receives a monotone sequence number), which keeps executions
    deterministic when many events share a timestamp. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest entry (ties: oldest insertion first). *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
