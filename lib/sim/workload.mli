(** Request (broadcast / critical-section) arrival processes.

    A workload decides when each node becomes {e ready} — i.e. wants the
    token. The paper's Figure 9/10 workload is {!Global_poisson}: "on
    average, every [mean] time units, one of the nodes in the system makes
    a request", the requester chosen uniformly. The other generators stress
    protocols in ways the paper discusses qualitatively (bursty but
    infrequent use, hotspots, adversarial single requesters). *)

type spec =
  | Nothing
      (** No requests: the idle system; the token just circulates. *)
  | Global_poisson of { mean_interarrival : float }
      (** Poisson process of aggregate rate [1/mean]; uniform node choice. *)
  | Per_node_poisson of { mean_interarrival : float }
      (** Each node runs an independent Poisson process with this mean. *)
  | Burst of { period : float; size : int }
      (** Every [period], [size] distinct random nodes become ready
          simultaneously (bursty-but-infrequent use). *)
  | Hotspot of { mean_interarrival : float; hot : int; bias : float }
      (** Global Poisson where the hot node receives a [bias] fraction of
          requests and the remainder spread uniformly. *)
  | Continuous of { node : int }
      (** [node] re-requests immediately after every service: the
          adversarial competitor of Theorem 3. *)
  | Script of (float * int) list
      (** Explicit (time, node) arrivals, for worst-case experiments. Must
          be sorted by time. *)

type t

val make : spec -> n:int -> rng:Rng.t -> t
(** Instantiate for [n] nodes with a dedicated RNG stream.
    @raise Invalid_argument on malformed specs (bad node ids, unsorted
    scripts, non-positive means, bias outside [0,1], burst size > n). *)

val first : t -> (float * int list) option
(** Earliest arrival batch: time and the nodes becoming ready. *)

val next : t -> after:float -> (float * int list) option
(** Arrival batch strictly after the batch that fired at [after]. For
    stochastic specs this is an endless stream; [None] only for finite
    scripts and [Nothing]. *)

val wants_immediate_rerequest : t -> int -> bool
(** True when the spec says this node re-requests the instant its previous
    request is served ({!Continuous}). The engine re-injects on serve. *)

val spec : t -> spec
