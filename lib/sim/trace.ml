type event =
  | Sent of { src : int; dst : int; channel : Network.channel; label : string }
  | Delivered of { src : int; dst : int; label : string }
  | Dropped of { src : int; dst : int; label : string }
  | Request of { node : int }
  | Served of { node : int; waited : float }
  | Token_at of { node : int }
  | Crashed of { node : int }
  | Note of { node : int; text : string }

type entry = { time : float; event : event }

type t = { enabled : bool; mutable rev_entries : entry list; mutable count : int }

let create ?(enabled = true) () = { enabled; rev_entries = []; count = 0 }
let enabled t = t.enabled

let record t ~time event =
  if t.enabled then begin
    t.rev_entries <- { time; event } :: t.rev_entries;
    t.count <- t.count + 1
  end

let events t = List.rev t.rev_entries
let length t = t.count
let filter t ~f = List.filter f (events t)

let token_possessions t =
  List.filter_map
    (fun { time; event } ->
      match event with Token_at { node } -> Some (time, node) | _ -> None)
    (events t)

let pending_series t =
  let count = ref 0 in
  List.filter_map
    (fun { time; event } ->
      match event with
      | Request _ ->
          incr count;
          Some (time, !count)
      | Served _ ->
          decr count;
          Some (time, !count)
      | _ -> None)
    (events t)

let served_series t =
  let count = ref 0 in
  List.filter_map
    (fun { time; event } ->
      match event with
      | Served _ ->
          incr count;
          Some (time, !count)
      | _ -> None)
    (events t)

let running_mean_waiting t ~window =
  if window < 1 then invalid_arg "Trace.running_mean_waiting: window < 1";
  (* A ring buffer of the last [window] waits keeps this linear. *)
  let buffer = Array.make window 0.0 in
  let filled = ref 0 and cursor = ref 0 and sum = ref 0.0 in
  List.filter_map
    (fun { time; event } ->
      match event with
      | Served { waited; _ } ->
          if !filled = window then sum := !sum -. buffer.(!cursor)
          else incr filled;
          buffer.(!cursor) <- waited;
          sum := !sum +. waited;
          cursor := (!cursor + 1) mod window;
          Some (time, !sum /. float_of_int !filled)
      | _ -> None)
    (events t)

let pp_event ppf = function
  | Sent { src; dst; channel; label } ->
      Format.fprintf ppf "send %d->%d [%a] %s" src dst Network.pp_channel
        channel label
  | Delivered { src; dst; label } ->
      Format.fprintf ppf "recv %d->%d %s" src dst label
  | Dropped { src; dst; label } ->
      Format.fprintf ppf "drop %d->%d %s" src dst label
  | Request { node } -> Format.fprintf ppf "request @%d" node
  | Served { node; waited } ->
      Format.fprintf ppf "served @%d (waited %.3g)" node waited
  | Token_at { node } -> Format.fprintf ppf "token @%d" node
  | Crashed { node } -> Format.fprintf ppf "crash @%d" node
  | Note { node; text } -> Format.fprintf ppf "note @%d: %s" node text

let pp ppf t =
  List.iter
    (fun { time; event } ->
      Format.fprintf ppf "%10.3f  %a@\n" time pp_event event)
    (events t)
