type event =
  | Sent of { src : int; dst : int; channel : Network.channel; label : string }
  | Delivered of { src : int; dst : int; label : string }
  | Dropped of { src : int; dst : int; label : string }
  | Request of { node : int }
  | Served of { node : int; waited : float }
  | Token_at of { node : int }
  | Crashed of { node : int }
  | Note of { node : int; text : string }

type entry = { time : float; event : event }

(* Entries live in two parallel growable arrays: an unboxed [float
   array] of times and a generic array of events. Appending is O(1) with
   no per-entry cons cell; iteration is forward, so accessors never
   [List.rev]. In ring mode ([window = Some w]) the arrays are a
   fixed-size circular buffer holding the most recent [w] entries. *)
type t = {
  enabled : bool;
  window : int; (* 0 = unbounded; > 0 = ring capacity *)
  mutable times : float array;
  mutable evs : event array;
  mutable head : int; (* index of the oldest stored entry (ring mode) *)
  mutable stored : int; (* entries currently held *)
  mutable total : int; (* entries ever recorded *)
  (* Derived views are memoized until the next [record]. *)
  mutable memo_events : entry list option;
}

(* Placeholder for unwritten slots; never returned. All [event]
   constructors are boxed, so the array is generic and safe to share. *)
let filler_event = Crashed { node = min_int }

let create ?(enabled = true) ?window () =
  let window =
    match window with
    | None -> 0
    | Some w ->
        if w < 1 then invalid_arg "Trace.create: window < 1";
        w
  in
  let initial_cap = if window > 0 then window else 0 in
  {
    enabled;
    window;
    times = Array.make initial_cap 0.0;
    evs = Array.make initial_cap filler_event;
    head = 0;
    stored = 0;
    total = 0;
    memo_events = None;
  }

let enabled t = t.enabled
let ring_window t = if t.window = 0 then None else Some t.window

let grow t =
  let cap = Array.length t.times in
  let cap' = Stdlib.max 64 (2 * cap) in
  let times = Array.make cap' 0.0 in
  let evs = Array.make cap' filler_event in
  Array.blit t.times 0 times 0 t.stored;
  Array.blit t.evs 0 evs 0 t.stored;
  t.times <- times;
  t.evs <- evs

let record t ~time event =
  if t.enabled then begin
    t.memo_events <- None;
    t.total <- t.total + 1;
    if t.window = 0 then begin
      if t.stored = Array.length t.times then grow t;
      t.times.(t.stored) <- time;
      t.evs.(t.stored) <- event;
      t.stored <- t.stored + 1
    end
    else if t.stored < t.window then begin
      let i = (t.head + t.stored) mod t.window in
      t.times.(i) <- time;
      t.evs.(i) <- event;
      t.stored <- t.stored + 1
    end
    else begin
      (* Full ring: overwrite the oldest entry and advance the head. *)
      t.times.(t.head) <- time;
      t.evs.(t.head) <- event;
      t.head <- (t.head + 1) mod t.window
    end
  end

let length t = t.total
let stored_length t = t.stored
let dropped t = t.total - t.stored

(* Chronological iteration directly over the buffer — the shared
   substrate of every accessor below. *)
let iter t f =
  if t.window = 0 then
    for i = 0 to t.stored - 1 do
      f t.times.(i) t.evs.(i)
    done
  else
    for k = 0 to t.stored - 1 do
      let i = (t.head + k) mod t.window in
      f t.times.(i) t.evs.(i)
    done

let events t =
  match t.memo_events with
  | Some cached -> cached
  | None ->
      let acc = ref [] in
      iter t (fun time event -> acc := { time; event } :: !acc);
      let result = List.rev !acc in
      t.memo_events <- Some result;
      result

let filter t ~f =
  let acc = ref [] in
  iter t (fun time event ->
      let entry = { time; event } in
      if f entry then acc := entry :: !acc);
  List.rev !acc

let collect t f =
  let acc = ref [] in
  iter t (fun time event ->
      match f time event with Some x -> acc := x :: !acc | None -> ());
  List.rev !acc

let token_possessions t =
  collect t (fun time event ->
      match event with Token_at { node } -> Some (time, node) | _ -> None)

let pending_series t =
  let count = ref 0 in
  collect t (fun time event ->
      match event with
      | Request _ ->
          incr count;
          Some (time, !count)
      | Served _ ->
          decr count;
          Some (time, !count)
      | _ -> None)

let served_series t =
  let count = ref 0 in
  collect t (fun time event ->
      match event with
      | Served _ ->
          incr count;
          Some (time, !count)
      | _ -> None)

let running_mean_waiting t ~window =
  if window < 1 then invalid_arg "Trace.running_mean_waiting: window < 1";
  (* A ring buffer of the last [window] waits keeps this linear. *)
  let buffer = Array.make window 0.0 in
  let filled = ref 0 and cursor = ref 0 and sum = ref 0.0 in
  collect t (fun time event ->
      match event with
      | Served { waited; _ } ->
          if !filled = window then sum := !sum -. buffer.(!cursor)
          else incr filled;
          buffer.(!cursor) <- waited;
          sum := !sum +. waited;
          cursor := (!cursor + 1) mod window;
          Some (time, !sum /. float_of_int !filled)
      | _ -> None)

let pp_event ppf = function
  | Sent { src; dst; channel; label } ->
      Format.fprintf ppf "send %d->%d [%a] %s" src dst Network.pp_channel
        channel label
  | Delivered { src; dst; label } ->
      Format.fprintf ppf "recv %d->%d %s" src dst label
  | Dropped { src; dst; label } ->
      Format.fprintf ppf "drop %d->%d %s" src dst label
  | Request { node } -> Format.fprintf ppf "request @%d" node
  | Served { node; waited } ->
      Format.fprintf ppf "served @%d (waited %.3g)" node waited
  | Token_at { node } -> Format.fprintf ppf "token @%d" node
  | Crashed { node } -> Format.fprintf ppf "crash @%d" node
  | Note { node; text } -> Format.fprintf ppf "note @%d: %s" node text

let pp ppf t =
  iter t (fun time event ->
      Format.fprintf ppf "%10.3f  %a@\n" time pp_event event)
