type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused when len = 0 *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }
let length t = t.len
let is_empty t = t.len = 0

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity t filler =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let bigger = Array.make (Stdlib.max 16 (2 * cap)) filler in
    Array.blit t.heap 0 bigger 0 t.len;
    t.heap <- bigger
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  ensure_capacity t entry;
  t.next_seq <- t.next_seq + 1;
  (* Sift up. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      let moved = t.heap.(t.len) in
      t.heap.(0) <- moved;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.len && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

let clear t =
  t.len <- 0;
  t.next_seq <- 0
