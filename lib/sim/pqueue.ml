(* Struct-of-arrays binary min-heap.

   The heap state lives in three parallel arrays: an unboxed [float
   array] of times (the comparison hot path never chases a pointer), an
   [int array] of insertion sequence numbers (the FIFO tie-break), and an
   [Obj.t array] of payloads. Pushing and popping move scalars between
   array slots, so steady-state operation allocates nothing; the only
   allocations are the geometric growths of the arrays themselves.

   The payload array is deliberately [Obj.t array], created from an
   immediate value, so it is always a generic (pointer) array: storing a
   boxed float payload through [Obj.repr] is a plain pointer store. A
   ['a array] with a ['a] filler would risk being specialised into a
   flat float array and then reinterpreting pointers as doubles. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable slots : Obj.t array;
  mutable len : int;
  mutable next_seq : int;
}

(* Filler for empty payload slots: an immediate, so vacated slots hold no
   reference and the GC can reclaim popped payloads immediately. *)
let empty_slot = Obj.repr 0

let create () =
  { times = [||]; seqs = [||]; slots = [||]; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.times in
  let cap' = Stdlib.max 16 (2 * cap) in
  let times = Array.make cap' 0.0 in
  let seqs = Array.make cap' 0 in
  let slots = Array.make cap' empty_slot in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.slots 0 slots 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.slots <- slots

(* (time, seq) lexicographic order: slot [i] strictly before slot [j]. *)
let[@inline] earlier t i j =
  let ti = t.times.(i) and tj = t.times.(j) in
  ti < tj || (ti = tj && t.seqs.(i) < t.seqs.(j))

let[@inline] swap t i j =
  let time = t.times.(i) and seq = t.seqs.(i) and slot = t.slots.(i) in
  t.times.(i) <- t.times.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.slots.(i) <- t.slots.(j);
  t.times.(j) <- time;
  t.seqs.(j) <- seq;
  t.slots.(j) <- slot

let push t ~time payload =
  if t.len = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Sift the new entry up through a hole, writing it once at the end. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    (* A fresh seq is the largest yet, so ties with the parent stay put. *)
    if time < t.times.(parent) then begin
      t.times.(!i) <- t.times.(parent);
      t.seqs.(!i) <- t.seqs.(parent);
      t.slots.(!i) <- t.slots.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.slots.(!i) <- Obj.repr payload

let top_time_exn t =
  if t.len = 0 then invalid_arg "Pqueue.top_time_exn: empty queue";
  t.times.(0)

let pop_exn t =
  if t.len = 0 then invalid_arg "Pqueue.pop_exn: empty queue";
  let top = t.slots.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.slots.(0) <- t.slots.(t.len);
    t.slots.(t.len) <- empty_slot;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && earlier t l !smallest then smallest := l;
      if r < t.len && earlier t r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done
  end
  else t.slots.(0) <- empty_slot;
  (Obj.obj top : 'a)

let pop t =
  if t.len = 0 then None
  else
    let time = t.times.(0) in
    Some (time, pop_exn t)

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let clear t =
  Array.fill t.slots 0 t.len empty_slot;
  t.len <- 0
