(** A fixed pool of worker domains for embarrassingly parallel sweeps.

    The experiment layer's unit of work is one seeded simulation run or
    one bounded state-space exploration — independent jobs that each own
    their RNG and engine state, so fanning them out across domains is
    data-race-free by construction. The pool is deliberately simple: no
    work stealing, one shared FIFO job queue guarded by a mutex and a
    condition variable, fixed worker domains spawned at {!create}.

    Determinism: {!map} returns results positionally (slot [i] holds
    [f] applied to the [i]-th input), so the output is identical to
    [List.map f] no matter how jobs interleave across domains — parallel
    sweeps reproduce sequential tables byte for byte. *)

type t

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — what [create] uses when
    [?domains] is omitted, and the default for the CLI's [--jobs]. *)

val create : ?domains:int -> unit -> t
(** A pool using [domains] domains in total, including the caller's:
    [domains - 1] workers are spawned, and the domain calling {!map}
    works through jobs alongside them. [domains = 1] therefore spawns
    nothing and makes {!map} run exactly like [List.map].
    Default: {!default_domains}. @raise Invalid_argument if
    [domains < 1]. *)

val domains : t -> int
(** Total domains working a {!map}, counting the caller. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every item, distributing the
    applications over the pool's domains, and returns the results in
    input order. If one or more applications raise, the exception of the
    lowest-indexed failing job is re-raised (with its backtrace) after
    every job has finished, so the pool is left quiescent and reusable.

    Jobs must not themselves call {!map} on the same pool from a worker
    domain's job (the caller's drain loop makes same-domain reentrancy
    from the submitting thread safe, but nested fan-out belongs at one
    level only — keep jobs leaf-like). *)

val shutdown : t -> unit
(** Signal workers to exit and join them. Idempotent. Calling {!map}
    after [shutdown] degrades gracefully to the caller running every job
    itself. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (also on exceptions). *)
