(** Deterministic pseudo-random numbers (SplitMix64).

    Every simulation draws exclusively from a seeded [t], so a run is a pure
    function of its configuration: identical seeds give identical executions
    on every platform. SplitMix64 passes BigCrush, needs only 64 bits of
    state, and supports cheap splitting for independent substreams. *)

type t

val create : int -> t
(** [create seed] builds a generator from any integer seed (including 0). *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream;
    advances [t]. *)

val copy : t -> t
(** Clone with identical future output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Unbiased (rejection
    sampling). @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean; never returns 0 or
    infinity. @raise Invalid_argument if [mean <= 0]. *)

val uniform_range : t -> lo:float -> hi:float -> float

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
