type channel = Reliable | Cheap

type delay_model =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Per_link of (src:int -> dst:int -> float)

type t = {
  reliable_delay : delay_model;
  cheap_delay : delay_model;
  cheap_drop_probability : float;
  partitioned : int -> int -> bool;
}

let create ?(reliable_delay = Constant 1.0) ?(cheap_delay = Constant 1.0)
    ?(cheap_drop_probability = 0.0) ?(partitioned = fun _ _ -> false) () =
  if cheap_drop_probability < 0.0 || cheap_drop_probability > 1.0 then
    invalid_arg "Network.create: drop probability outside [0,1]";
  { reliable_delay; cheap_delay; cheap_drop_probability; partitioned }

let default = create ()

let epsilon_delay = 1e-9

let sample model rng ~src ~dst =
  let raw =
    match model with
    | Constant d -> d
    | Uniform (lo, hi) -> Rng.uniform_range rng ~lo ~hi
    | Exponential mean -> Rng.exponential rng ~mean
    | Per_link f -> f ~src ~dst
  in
  Stdlib.max epsilon_delay raw

let sample_delay t rng channel ~src ~dst =
  match channel with
  | Reliable -> sample t.reliable_delay rng ~src ~dst
  | Cheap -> sample t.cheap_delay rng ~src ~dst

let dropped t rng channel ~src ~dst =
  t.partitioned src dst
  ||
  match channel with
  | Reliable -> false
  | Cheap ->
      t.cheap_drop_probability > 0.0
      && Rng.float rng 1.0 < t.cheap_drop_probability

let pp_channel ppf = function
  | Reliable -> Format.pp_print_string ppf "reliable"
  | Cheap -> Format.pp_print_string ppf "cheap"
