type channel = Reliable | Cheap

type delay_model =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Per_link of (src:int -> dst:int -> float)

type t = {
  reliable_delay : delay_model;
  cheap_delay : delay_model;
  cheap_drop_probability : float;
  partitioned : int -> int -> bool;
}

(* Delay models are validated when the network is configured, not when
   the first bad sample is drawn mid-run: a [Uniform] with inverted or
   negative bounds and a non-finite [Constant]/[Exponential] are config
   errors. [Per_link] functions can't be enumerated here, so they are
   wrapped with a guard that turns a non-positive or non-finite sample
   into a descriptive [Invalid_argument] naming the link. *)
let validate_model ~what = function
  | Constant d ->
      if not (Float.is_finite d) || d < 0.0 then
        invalid_arg
          (Printf.sprintf
             "Network.create: %s Constant delay %g must be finite and \
              non-negative"
             what d)
  | Uniform (lo, hi) ->
      if not (Float.is_finite lo && Float.is_finite hi) then
        invalid_arg
          (Printf.sprintf "Network.create: %s Uniform bounds must be finite"
             what)
      else if lo < 0.0 || hi < lo then
        invalid_arg
          (Printf.sprintf
             "Network.create: %s Uniform (%g, %g) needs 0 <= lo <= hi" what lo
             hi)
  | Exponential mean ->
      if not (Float.is_finite mean) || mean <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Network.create: %s Exponential mean %g must be positive and \
              finite"
             what mean)
  | Per_link _ -> ()

let guard_per_link ~what = function
  | Per_link f ->
      Per_link
        (fun ~src ~dst ->
          let d = f ~src ~dst in
          if not (Float.is_finite d) || d <= 0.0 then
            invalid_arg
              (Printf.sprintf
                 "Network: %s Per_link delay %g on link %d->%d must be \
                  positive and finite"
                 what d src dst);
          d)
  | model -> model

let create ?(reliable_delay = Constant 1.0) ?(cheap_delay = Constant 1.0)
    ?(cheap_drop_probability = 0.0) ?(partitioned = fun _ _ -> false) () =
  if
    (not (Float.is_finite cheap_drop_probability))
    || cheap_drop_probability < 0.0
    || cheap_drop_probability > 1.0
  then invalid_arg "Network.create: drop probability outside [0,1]";
  validate_model ~what:"reliable" reliable_delay;
  validate_model ~what:"cheap" cheap_delay;
  {
    reliable_delay = guard_per_link ~what:"reliable" reliable_delay;
    cheap_delay = guard_per_link ~what:"cheap" cheap_delay;
    cheap_drop_probability;
    partitioned;
  }

let default = create ()

let epsilon_delay = 1e-9

let sample model rng ~src ~dst =
  let raw =
    match model with
    | Constant d -> d
    | Uniform (lo, hi) -> Rng.uniform_range rng ~lo ~hi
    | Exponential mean -> Rng.exponential rng ~mean
    | Per_link f -> f ~src ~dst
  in
  Stdlib.max epsilon_delay raw

let sample_delay t rng channel ~src ~dst =
  match channel with
  | Reliable -> sample t.reliable_delay rng ~src ~dst
  | Cheap -> sample t.cheap_delay rng ~src ~dst

let dropped t rng channel ~src ~dst =
  t.partitioned src dst
  ||
  match channel with
  | Reliable -> false
  | Cheap ->
      t.cheap_drop_probability > 0.0
      && Rng.float rng 1.0 < t.cheap_drop_probability

let pp_channel ppf = function
  | Reliable -> Format.pp_print_string ppf "reliable"
  | Cheap -> Format.pp_print_string ppf "cheap"
