(** Measurement of the paper's performance quantities.

    {b Responsiveness} (paper Definition 3) is "the maximum time period
    during which at least one node requires the token and until the token
    is given to a ready node" — measured from the moment {e some} request is
    outstanding, not from the requester's own arrival. Each time a ready
    node is served at time [t] we record the sample
    [t - max(previous service time, earliest outstanding request time)]:
    the length of the window during which the system had unmet demand.
    Averaging these samples reproduces the y axis of the paper's
    Figures 9 and 10.

    {b Waiting time} is the conventional per-request latency (grant time −
    that request's arrival time); the paper contrasts it with
    responsiveness in §4.

    Message accounting distinguishes token-bearing ("expensive") messages
    from control ("cheap") messages, matching the two communication modes
    of §1. *)

type msg_class = Token_msg | Control_msg

type sketches = {
  q50 : Tr_stats.P2.t;
  q90 : Tr_stats.P2.t;
  q99 : Tr_stats.P2.t;
}
(** Streaming P² percentile estimators over one sample stream — O(1)
    memory however long the run, so [trace:false] large-N sweeps still
    get tail statistics. Read with {!Tr_stats.P2.estimate}. *)

type t

val create : n:int -> t
(** @raise Invalid_argument if [n < 1]. *)

val n : t -> int

(** {1 Feeding events} *)

val on_request : t -> time:float -> node:int -> unit
(** A node became ready (one more outstanding request at [node]). *)

val on_serve : t -> time:float -> node:int -> unit
(** The oldest outstanding request at [node] was satisfied.
    @raise Invalid_argument if [node] has no outstanding request. *)

val on_message : t -> Network.channel -> msg_class -> unit
val on_token_possession : t -> node:int -> unit
val on_search_forward : t -> unit
(** One hop of a search ("gimme") message — Lemma 6 counts these. *)

(** {1 Queries} *)

val pending : t -> node:int -> int

(** [oldest_arrival t ~node] is the arrival time of the node's oldest
    outstanding request, if any. *)
val oldest_arrival : t -> node:int -> float option
val total_pending : t -> int
val serves : t -> int
val responsiveness : t -> Tr_stats.Summary.t
val responsiveness_quantiles : t -> Tr_stats.Quantile.t

val responsiveness_sketches : t -> sketches
(** Streaming percentile sketches of the responsiveness samples. *)

val waiting : t -> Tr_stats.Summary.t
val waiting_quantiles : t -> Tr_stats.Quantile.t

val waiting_sketches : t -> sketches
(** Streaming percentile sketches of the per-request waiting times. *)

val token_messages : t -> int
val control_messages : t -> int
val cheap_messages : t -> int
(** Messages sent on the [Cheap] channel (independent of {!msg_class}). *)

val search_forwards : t -> int
val possessions : t -> node:int -> int
val total_possessions : t -> int
val max_possessions : t -> int
(** Highest possession count over all nodes (load-concentration probe). *)

val possession_imbalance : t -> float
(** [max possessions / mean possessions]; 1.0 is perfectly balanced. [nan]
    before any possession. *)

val waiting_by_node : t -> node:int -> Tr_stats.Summary.t
(** Waiting-time summary restricted to requests served at [node]. *)

val waiting_fairness : t -> float
(** Jain's fairness index over the per-node mean waiting times of nodes
    that had at least one request served:
    [(Σ xᵢ)² / (k · Σ xᵢ²)] for [k] participating nodes. 1.0 means all
    nodes wait equally on average (the ring's deterministic fairness);
    1/k means one node absorbs all the waiting. [nan] until at least one
    node has a serve. *)

val report : Format.formatter -> t -> unit
(** Human-readable one-block summary. *)
