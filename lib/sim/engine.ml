type stop =
  | At_time of float
  | After_serves of int
  | After_token_messages of int
  | First_of of stop list

type config = {
  n : int;
  seed : int;
  network : Network.t;
  workload : Workload.spec;
  trace : bool;
  trace_window : int option;
  crashes : (float * int) list;
  chaos : Tr_chaos.Injector.t option;
}

let default_config ~n ~seed =
  {
    n;
    seed;
    network = Network.default;
    workload = Workload.Nothing;
    trace = false;
    trace_window = None;
    crashes = [];
    chaos = None;
  }

(* [stop] trees compile to three scalar limits: [stop_reached] is an OR
   over leaves, and OR of [clock > l_i] (resp. [serves >= k_i]) is
   exactly [clock > min l_i] (resp. [>= min k_i]); [within_horizon]'s
   [for_all] over [First_of] takes the same minimum over [At_time]
   leaves. Checking per event is then three scalar compares with no list
   walk and no closure. *)
type compiled_stop = {
  time_limit : float; (* infinity when no At_time leaf *)
  serves_limit : int; (* max_int when no After_serves leaf *)
  token_limit : int; (* max_int when no After_token_messages leaf *)
}

let rec compile_stop acc = function
  | At_time limit -> { acc with time_limit = Stdlib.min acc.time_limit limit }
  | After_serves k -> { acc with serves_limit = Stdlib.min acc.serves_limit k }
  | After_token_messages k ->
      { acc with token_limit = Stdlib.min acc.token_limit k }
  | First_of stops -> List.fold_left compile_stop acc stops

let compile_stop stop =
  compile_stop
    { time_limit = infinity; serves_limit = max_int; token_limit = max_int }
    stop

module Make (P : Node_intf.PROTOCOL) = struct
  (* Events are pooled mutable records, not immutable variants: the run
     loop releases each event back to a free list right after copying
     its fields out, so the steady-state Deliver/Timer cycle allocates
     nothing. [tag] discriminates; only the fields of the active tag are
     meaningful. *)
  type event_tag = Deliver | Timer | Arrival | Crash

  type event = {
    mutable tag : event_tag;
    mutable src : int; (* Deliver src; Timer/Crash node *)
    mutable dst : int; (* Deliver dst; Timer key *)
    mutable epoch : int; (* Timer *)
    mutable channel : Network.channel;
    mutable msg : P.msg; (* meaningful iff tag = Deliver *)
    mutable nodes : int list; (* meaningful iff tag = Arrival *)
  }

  (* Placeholder for the [msg] field of non-Deliver events; an immediate,
     never read (the dispatch switch only touches [msg] when the tag is
     [Deliver], and every [Deliver] sets it). *)
  let no_msg : P.msg = Obj.magic 0

  type t = {
    config : config;
    (* [states] and [ctxs] are populated during [create]; handlers always
       access them through [t], so mutation is visible to every closure. *)
    mutable states : P.state array;
    mutable ctxs : P.msg Node_intf.ctx array;
    queue : event Pqueue.t;
    mutable clock : float;
    net_rng : Rng.t;
    workload : Workload.t;
    metrics : Metrics.t;
    trace : Trace.t;
    crashed : bool array;
    (* Timer epochs, scalar-keyed: slot [node * keyspace + key]. The
       keyspace grows (rebuilding the table) if a protocol uses a key
       >= the current bound; existing protocols use keys 1..5. *)
    mutable timer_epochs : int array;
    mutable keyspace : int;
    (* Free list of event records for reuse. *)
    mutable pool : event array;
    mutable pool_len : int;
    mutable events_processed : int;
    mutable initialized : bool;
  }

  let now t = t.clock
  let metrics t = t.metrics
  let trace t = t.trace
  let state t i = t.states.(i)
  let crashed t i = t.crashed.(i)
  let events_processed t = t.events_processed

  (* ---------------- event pool ---------------- *)

  let fresh_event () =
    {
      tag = Crash;
      src = 0;
      dst = 0;
      epoch = 0;
      channel = Network.Reliable;
      msg = no_msg;
      nodes = [];
    }

  let acquire t =
    if t.pool_len = 0 then fresh_event ()
    else begin
      t.pool_len <- t.pool_len - 1;
      t.pool.(t.pool_len)
    end

  let release t e =
    (* Drop payload references so pooled slots pin nothing. *)
    e.msg <- no_msg;
    e.nodes <- [];
    if t.pool_len = Array.length t.pool then begin
      let bigger = Array.make (Stdlib.max 16 (2 * t.pool_len)) e in
      Array.blit t.pool 0 bigger 0 t.pool_len;
      t.pool <- bigger
    end;
    t.pool.(t.pool_len) <- e;
    t.pool_len <- t.pool_len + 1

  (* ---------------- timer epochs ---------------- *)

  let grow_keyspace t key =
    let keyspace' = ref (Stdlib.max 8 (2 * t.keyspace)) in
    while key >= !keyspace' do
      keyspace' := 2 * !keyspace'
    done;
    let keyspace' = !keyspace' in
    let table = Array.make (t.config.n * keyspace') 0 in
    for node = 0 to t.config.n - 1 do
      for k = 0 to t.keyspace - 1 do
        table.((node * keyspace') + k) <- t.timer_epochs.((node * t.keyspace) + k)
      done
    done;
    t.timer_epochs <- table;
    t.keyspace <- keyspace'

  let timer_epoch t ~node ~key =
    if key < t.keyspace then t.timer_epochs.((node * t.keyspace) + key) else 0

  let bump_timer_epoch t ~node ~key =
    if key >= t.keyspace then grow_keyspace t key;
    let i = (node * t.keyspace) + key in
    t.timer_epochs.(i) <- t.timer_epochs.(i) + 1

  let check_timer_key key =
    if key < 0 then invalid_arg "Engine: negative timer key"

  (* ---------------- node contexts ---------------- *)

  let make_ctx t node : P.msg Node_intf.ctx =
    let rng = Rng.create ((t.config.seed * 1_000_003) + node) in
    let send ?(channel = Network.Reliable) ~dst msg =
      if dst < 0 || dst >= t.config.n then
        invalid_arg "Engine: send destination out of range";
      Metrics.on_message t.metrics channel (P.classify msg);
      if Trace.enabled t.trace then
        Trace.record t.trace ~time:t.clock
          (Trace.Sent { src = node; dst; channel; label = P.label msg });
      (* Chaos interposition, delivery side: the injector decides drop /
         duplicate / extra delay / corrupt for every protocol send. The
         simulator has no bytes, so a corrupted message is modelled as
         detect-and-drop — the abstract reading of the live decoder
         discarding a mangled frame and resyncing. *)
      let chaos_action =
        match t.config.chaos with
        | None -> None
        | Some inj ->
            Some (Tr_chaos.Injector.on_send inj ~now:t.clock ~src:node ~dst)
      in
      let chaos_dropped =
        match chaos_action with
        | Some a -> a.Tr_chaos.Injector.drop || a.Tr_chaos.Injector.corrupt
        | None -> false
      in
      if
        chaos_dropped
        || Network.dropped t.config.network t.net_rng channel ~src:node ~dst
      then begin
        if Trace.enabled t.trace then
          Trace.record t.trace ~time:t.clock
            (Trace.Dropped { src = node; dst; label = P.label msg })
      end
      else begin
        let delay =
          Network.sample_delay t.config.network t.net_rng channel ~src:node
            ~dst
        in
        let copies, extra_delay =
          match chaos_action with
          | Some a -> (a.Tr_chaos.Injector.copies, a.Tr_chaos.Injector.extra_delay)
          | None -> (1, 0.0)
        in
        for _ = 1 to copies do
          let e = acquire t in
          e.tag <- Deliver;
          e.src <- node;
          e.dst <- dst;
          e.channel <- channel;
          e.msg <- msg;
          Pqueue.push t.queue ~time:(t.clock +. delay +. extra_delay) e
        done
      end
    in
    let set_timer ~delay ~key =
      if delay < 0.0 then invalid_arg "Engine: negative timer delay";
      check_timer_key key;
      let delay =
        match t.config.chaos with
        | None -> delay
        | Some inj ->
            delay *. Tr_chaos.Injector.timer_scale inj ~now:t.clock ~node
      in
      let e = acquire t in
      e.tag <- Timer;
      e.src <- node;
      e.dst <- key;
      e.epoch <- timer_epoch t ~node ~key;
      Pqueue.push t.queue ~time:(t.clock +. delay) e
    in
    let cancel_timers ~key =
      check_timer_key key;
      bump_timer_epoch t ~node ~key
    in
    let serve () =
      match Metrics.oldest_arrival t.metrics ~node with
      | None ->
          invalid_arg
            (Printf.sprintf "Engine: node %d served with no pending request"
               node)
      | Some arrival ->
          Metrics.on_serve t.metrics ~time:t.clock ~node;
          if Trace.enabled t.trace then
            Trace.record t.trace ~time:t.clock
              (Trace.Served { node; waited = t.clock -. arrival });
          (* A [Continuous] competitor re-requests the moment it is served
             (Theorem 3's adversary). *)
          if Workload.wants_immediate_rerequest t.workload node then begin
            let e = acquire t in
            e.tag <- Arrival;
            e.nodes <- [ node ];
            Pqueue.push t.queue ~time:t.clock e
          end
    in
    {
      Node_intf.self = node;
      n = t.config.n;
      now = (fun () -> t.clock);
      rng;
      send;
      set_timer;
      cancel_timers;
      serve;
      pending = (fun () -> Metrics.pending t.metrics ~node);
      possession =
        (fun () ->
          Metrics.on_token_possession t.metrics ~node;
          if Trace.enabled t.trace then
            Trace.record t.trace ~time:t.clock (Trace.Token_at { node }));
      search_forward = (fun () -> Metrics.on_search_forward t.metrics);
      note =
        (fun thunk ->
          if Trace.enabled t.trace then
            Trace.record t.trace ~time:t.clock
              (Trace.Note { node; text = thunk () }));
    }

  let create config =
    if config.n < 2 then invalid_arg "Engine.create: n < 2";
    let workload =
      Workload.make config.workload ~n:config.n
        ~rng:(Rng.create (config.seed lxor 0x5DEECE66D))
    in
    let keyspace = 8 in
    let t =
      {
        config;
        states = [||];
        ctxs = [||];
        queue = Pqueue.create ();
        clock = 0.0;
        net_rng = Rng.create (config.seed lxor 0x2545F491);
        workload;
        metrics = Metrics.create ~n:config.n;
        trace = Trace.create ~enabled:config.trace ?window:config.trace_window ();
        crashed = Array.make config.n false;
        timer_epochs = Array.make (config.n * keyspace) 0;
        keyspace;
        pool = [||];
        pool_len = 0;
        events_processed = 0;
        initialized = false;
      }
    in
    t.ctxs <- Array.init config.n (fun node -> make_ctx t node);
    t.states <- Array.init config.n (fun node -> P.init t.ctxs.(node));
    t

  let push_arrival t ~time nodes =
    let e = acquire t in
    e.tag <- Arrival;
    e.nodes <- nodes;
    Pqueue.push t.queue ~time e

  let schedule_first_arrival t =
    match Workload.first t.workload with
    | None -> ()
    | Some (time, nodes) -> push_arrival t ~time nodes

  let schedule_next_arrival t ~after =
    match Workload.next t.workload ~after with
    | None -> ()
    | Some (time, nodes) ->
        push_arrival t ~time:(Stdlib.max time t.clock) nodes

  let schedule_crashes t =
    List.iter
      (fun (time, node) ->
        if node < 0 || node >= t.config.n then
          invalid_arg "Engine: crash node out of range";
        let e = acquire t in
        e.tag <- Crash;
        e.src <- node;
        Pqueue.push t.queue ~time e)
      t.config.crashes

  let initialize t =
    if not t.initialized then begin
      t.initialized <- true;
      schedule_first_arrival t;
      schedule_crashes t
    end

  (* Churn: a node inside a down-window is unreachable — deliveries to
     it are destroyed (that is the fault being injected: a token sent to
     a churned node is lost). *)
  let chaos_down t node =
    match t.config.chaos with
    | None -> false
    | Some inj -> Tr_chaos.Injector.node_down inj ~now:t.clock ~node

  let deliver t ~src ~dst ~msg =
    if not (t.crashed.(dst) || chaos_down t dst) then begin
      if Trace.enabled t.trace then
        Trace.record t.trace ~time:t.clock
          (Trace.Delivered { src; dst; label = P.label msg });
      t.states.(dst) <- P.on_message t.ctxs.(dst) t.states.(dst) ~src msg
    end

  let fire_timer t ~node ~key ~epoch =
    if (not t.crashed.(node)) && epoch >= timer_epoch t ~node ~key then begin
      (* Unlike deliveries, a down node's timers are parked, not lost:
         they re-fire when the node rejoins, so timeout-driven recovery
         (token regeneration) resumes against its stale state. *)
      let resume =
        match t.config.chaos with
        | None -> t.clock
        | Some inj -> Tr_chaos.Injector.down_until inj ~now:t.clock ~node
      in
      if resume > t.clock then begin
        let e = acquire t in
        e.tag <- Timer;
        e.src <- node;
        e.dst <- key;
        e.epoch <- epoch;
        Pqueue.push t.queue ~time:(resume +. 1e-9) e
      end
      else t.states.(node) <- P.on_timer t.ctxs.(node) t.states.(node) ~key
    end

  let arrive t nodes =
    let live node = not (t.crashed.(node) || chaos_down t node) in
    List.iter
      (fun node ->
        if live node then begin
          Metrics.on_request t.metrics ~time:t.clock ~node;
          if Trace.enabled t.trace then
            Trace.record t.trace ~time:t.clock (Trace.Request { node });
          t.states.(node) <- P.on_request t.ctxs.(node) t.states.(node)
        end)
      nodes

  let crash t node =
    t.crashed.(node) <- true;
    Trace.record t.trace ~time:t.clock (Trace.Crashed { node })

  let run t ~stop =
    initialize t;
    let { time_limit; serves_limit; token_limit } = compile_stop stop in
    let continue = ref true in
    while !continue do
      if
        t.clock > time_limit
        || Metrics.serves t.metrics >= serves_limit
        || Metrics.token_messages t.metrics >= token_limit
        (* Horizon check: with an [At_time] bound we must not pop events
           past it, so the clock never overshoots a time-limited run. *)
        || Pqueue.is_empty t.queue
        || Pqueue.top_time_exn t.queue > time_limit
      then continue := false
      else begin
        let time = Pqueue.top_time_exn t.queue in
        let e = Pqueue.pop_exn t.queue in
        t.events_processed <- t.events_processed + 1;
        t.clock <- Stdlib.max t.clock time;
        (* Copy the fields out, recycle the record, then dispatch — the
           handler's own sends may reuse it immediately. *)
        match e.tag with
        | Deliver ->
            let src = e.src and dst = e.dst and msg = e.msg in
            release t e;
            deliver t ~src ~dst ~msg
        | Timer ->
            let node = e.src and key = e.dst and epoch = e.epoch in
            release t e;
            fire_timer t ~node ~key ~epoch
        | Crash ->
            let node = e.src in
            release t e;
            crash t node
        | Arrival ->
            let nodes = e.nodes in
            release t e;
            let batch_time = t.clock in
            arrive t nodes;
            schedule_next_arrival t ~after:batch_time
      end
    done

  let request_now t ~node =
    if node < 0 || node >= t.config.n then
      invalid_arg "Engine.request_now: node out of range";
    initialize t;
    push_arrival t ~time:t.clock [ node ]
end
