type stop =
  | At_time of float
  | After_serves of int
  | After_token_messages of int
  | First_of of stop list

type config = {
  n : int;
  seed : int;
  network : Network.t;
  workload : Workload.spec;
  trace : bool;
  crashes : (float * int) list;
}

let default_config ~n ~seed =
  {
    n;
    seed;
    network = Network.default;
    workload = Workload.Nothing;
    trace = false;
    crashes = [];
  }

module Make (P : Node_intf.PROTOCOL) = struct
  type event =
    | Deliver of { src : int; dst : int; channel : Network.channel; msg : P.msg }
    | Timer of { node : int; key : int; epoch : int }
    | Arrival of { nodes : int list }
    | Crash of { node : int }

  type t = {
    config : config;
    (* [states] and [ctxs] are populated during [create]; handlers always
       access them through [t], so mutation is visible to every closure. *)
    mutable states : P.state array;
    mutable ctxs : P.msg Node_intf.ctx array;
    queue : event Pqueue.t;
    mutable clock : float;
    net_rng : Rng.t;
    workload : Workload.t;
    metrics : Metrics.t;
    trace : Trace.t;
    crashed : bool array;
    timer_epochs : (int * int, int) Hashtbl.t;
    mutable initialized : bool;
  }

  let now t = t.clock
  let metrics t = t.metrics
  let trace t = t.trace
  let state t i = t.states.(i)
  let crashed t i = t.crashed.(i)

  let timer_epoch t ~node ~key =
    Option.value (Hashtbl.find_opt t.timer_epochs (node, key)) ~default:0

  let make_ctx t node : P.msg Node_intf.ctx =
    let rng = Rng.create ((t.config.seed * 1_000_003) + node) in
    let send ?(channel = Network.Reliable) ~dst msg =
      if dst < 0 || dst >= t.config.n then
        invalid_arg "Engine: send destination out of range";
      Metrics.on_message t.metrics channel (P.classify msg);
      Trace.record t.trace ~time:t.clock
        (Trace.Sent { src = node; dst; channel; label = P.label msg });
      if Network.dropped t.config.network t.net_rng channel ~src:node ~dst then
        Trace.record t.trace ~time:t.clock
          (Trace.Dropped { src = node; dst; label = P.label msg })
      else begin
        let delay =
          Network.sample_delay t.config.network t.net_rng channel ~src:node
            ~dst
        in
        Pqueue.push t.queue ~time:(t.clock +. delay)
          (Deliver { src = node; dst; channel; msg })
      end
    in
    let set_timer ~delay ~key =
      if delay < 0.0 then invalid_arg "Engine: negative timer delay";
      let epoch = timer_epoch t ~node ~key in
      Pqueue.push t.queue ~time:(t.clock +. delay) (Timer { node; key; epoch })
    in
    let cancel_timers ~key =
      Hashtbl.replace t.timer_epochs (node, key) (timer_epoch t ~node ~key + 1)
    in
    let serve () =
      match Metrics.oldest_arrival t.metrics ~node with
      | None ->
          invalid_arg
            (Printf.sprintf "Engine: node %d served with no pending request"
               node)
      | Some arrival ->
          Metrics.on_serve t.metrics ~time:t.clock ~node;
          Trace.record t.trace ~time:t.clock
            (Trace.Served { node; waited = t.clock -. arrival });
          (* A [Continuous] competitor re-requests the moment it is served
             (Theorem 3's adversary). *)
          if Workload.wants_immediate_rerequest t.workload node then
            Pqueue.push t.queue ~time:t.clock (Arrival { nodes = [ node ] })
    in
    {
      Node_intf.self = node;
      n = t.config.n;
      now = (fun () -> t.clock);
      rng;
      send;
      set_timer;
      cancel_timers;
      serve;
      pending = (fun () -> Metrics.pending t.metrics ~node);
      possession =
        (fun () ->
          Metrics.on_token_possession t.metrics ~node;
          Trace.record t.trace ~time:t.clock (Trace.Token_at { node }));
      search_forward = (fun () -> Metrics.on_search_forward t.metrics);
      note =
        (fun thunk ->
          if Trace.enabled t.trace then
            Trace.record t.trace ~time:t.clock
              (Trace.Note { node; text = thunk () }));
    }

  let create config =
    if config.n < 2 then invalid_arg "Engine.create: n < 2";
    let workload =
      Workload.make config.workload ~n:config.n
        ~rng:(Rng.create (config.seed lxor 0x5DEECE66D))
    in
    let t =
      {
        config;
        states = [||];
        ctxs = [||];
        queue = Pqueue.create ();
        clock = 0.0;
        net_rng = Rng.create (config.seed lxor 0x2545F491);
        workload;
        metrics = Metrics.create ~n:config.n;
        trace = Trace.create ~enabled:config.trace ();
        crashed = Array.make config.n false;
        timer_epochs = Hashtbl.create 16;
        initialized = false;
      }
    in
    t.ctxs <- Array.init config.n (fun node -> make_ctx t node);
    t.states <- Array.init config.n (fun node -> P.init t.ctxs.(node));
    t

  let schedule_first_arrival t =
    match Workload.first t.workload with
    | None -> ()
    | Some (time, nodes) -> Pqueue.push t.queue ~time (Arrival { nodes })

  let schedule_next_arrival t ~after =
    match Workload.next t.workload ~after with
    | None -> ()
    | Some (time, nodes) ->
        Pqueue.push t.queue ~time:(Stdlib.max time t.clock) (Arrival { nodes })

  let schedule_crashes t =
    List.iter
      (fun (time, node) ->
        if node < 0 || node >= t.config.n then
          invalid_arg "Engine: crash node out of range";
        Pqueue.push t.queue ~time (Crash { node }))
      t.config.crashes

  let initialize t =
    if not t.initialized then begin
      t.initialized <- true;
      schedule_first_arrival t;
      schedule_crashes t
    end

  let deliver t ~src ~dst ~msg =
    if not t.crashed.(dst) then begin
      Trace.record t.trace ~time:t.clock
        (Trace.Delivered { src; dst; label = P.label msg });
      t.states.(dst) <- P.on_message t.ctxs.(dst) t.states.(dst) ~src msg
    end

  let fire_timer t ~node ~key ~epoch =
    if (not t.crashed.(node)) && epoch >= timer_epoch t ~node ~key then
      t.states.(node) <- P.on_timer t.ctxs.(node) t.states.(node) ~key

  let arrive t nodes =
    let live node = not t.crashed.(node) in
    List.iter
      (fun node ->
        if live node then begin
          Metrics.on_request t.metrics ~time:t.clock ~node;
          Trace.record t.trace ~time:t.clock (Trace.Request { node });
          t.states.(node) <- P.on_request t.ctxs.(node) t.states.(node)
        end)
      nodes

  let crash t node =
    t.crashed.(node) <- true;
    Trace.record t.trace ~time:t.clock (Trace.Crashed { node })

  let rec stop_reached t stop =
    match stop with
    | At_time limit -> t.clock > limit
    | After_serves k -> Metrics.serves t.metrics >= k
    | After_token_messages k -> Metrics.token_messages t.metrics >= k
    | First_of stops -> List.exists (stop_reached t) stops

  (* With an [At_time] bound we must not pop events past the horizon, so
     the clock never overshoots a time-limited run. *)
  let rec within_horizon t stop =
    match stop with
    | At_time limit -> (
        match Pqueue.peek_time t.queue with
        | None -> false
        | Some time -> time <= limit)
    | After_serves _ | After_token_messages _ -> not (Pqueue.is_empty t.queue)
    | First_of stops -> List.for_all (within_horizon t) stops

  let run t ~stop =
    initialize t;
    let continue = ref true in
    while !continue do
      if stop_reached t stop || not (within_horizon t stop) then
        continue := false
      else
        match Pqueue.pop t.queue with
        | None -> continue := false
        | Some (time, event) -> (
            t.clock <- Stdlib.max t.clock time;
            match event with
            | Deliver { src; dst; channel = _; msg } -> deliver t ~src ~dst ~msg
            | Timer { node; key; epoch } -> fire_timer t ~node ~key ~epoch
            | Crash { node } -> crash t node
            | Arrival { nodes } ->
                let batch_time = t.clock in
                arrive t nodes;
                schedule_next_arrival t ~after:batch_time)
    done

  let request_now t ~node =
    if node < 0 || node >= t.config.n then
      invalid_arg "Engine.request_now: node out of range";
    initialize t;
    Pqueue.push t.queue ~time:t.clock (Arrival { nodes = [ node ] })
end
