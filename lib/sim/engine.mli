(** Discrete-event execution of a protocol over the simulated fabric.

    [Make (P)] instantiates the event loop for protocol [P]: it creates
    [n] node states, drives the workload's request arrivals, routes
    messages through the {!Network} model, delivers timers, applies crash
    injections, and feeds {!Metrics} and {!Trace}.

    Time semantics follow the paper's §4 cost model: rules that only touch
    local state cost zero time; every message costs its sampled network
    delay (one unit by default). *)

type stop =
  | At_time of float  (** Run until virtual time exceeds this. *)
  | After_serves of int  (** Until this many requests have been served. *)
  | After_token_messages of int
      (** Until this many token-class messages were sent ("rounds": the
          paper's 1000-rounds runs stop after [1000 * n] token hops). *)
  | First_of of stop list  (** Whichever triggers first. *)

type config = {
  n : int;  (** Ring size; must be >= 2. *)
  seed : int;
  network : Network.t;
  workload : Workload.spec;
  trace : bool;  (** Record a full event trace (memory-heavy). *)
  trace_window : int option;
      (** When set (and [trace] is on), keep only the most recent
          [window] trace entries in a ring buffer — bounded memory for
          long runs. [None] retains everything. *)
  crashes : (float * int) list;  (** (time, node) fail-stop injections. *)
  chaos : Tr_chaos.Injector.t option;
      (** Fault-injection shim on the delivery path: every protocol send
          consults the injector (drop / duplicate / extra delay /
          corrupt-as-detect-and-drop), timer delays are scaled by active
          clock-skew windows, and churned nodes lose deliveries and
          arrivals while down (their timers are parked until rejoin).
          [None] — the default — is a true no-op. *)
}

val default_config : n:int -> seed:int -> config
(** Unit-delay reliable network, no workload, no trace, no crashes, no
    chaos. *)

module Make (P : Node_intf.PROTOCOL) : sig
  type t

  val create : config -> t
  (** Builds node states (calling [P.init] on each) but processes no
      events. @raise Invalid_argument if [config.n < 2]. *)

  val run : t -> stop:stop -> unit
  (** Process events until the stop condition triggers or the event queue
      drains. May be called repeatedly with later stop conditions to
      continue the same execution. *)

  val now : t -> float
  val metrics : t -> Metrics.t
  val trace : t -> Trace.t
  val state : t -> int -> P.state
  (** Peek a node's protocol state (tests and debugging). *)

  val request_now : t -> node:int -> unit
  (** Inject a request at the current time, in addition to the workload.
      Takes effect when the event loop next runs. *)

  val crashed : t -> int -> bool

  val events_processed : t -> int
  (** Total events popped from the queue over this engine's lifetime
      (delivers, timer firings, arrival batches, crashes) — the
      numerator of events/sec throughput reporting. *)
end
