(** Completion-based I/O on Linux io_uring.

    Where {!Readiness} answers "which fds could make progress?" and
    leaves the read/write/accept syscalls to the caller, a completion
    ring is handed the operations themselves: submissions are queued in
    user space ([prep_*]), flushed in batches by a single
    [io_uring_enter], and finished operations come back as completion
    events — so a token hop that costs write + epoll_wait + read on the
    readiness backends costs one enter here, and often zero when the
    completion queue already holds the event.

    The bindings are self-contained raw syscalls (no liburing). A ring
    carries a C-allocated buffer arena of [slots] fixed-size slots;
    kernel-visible I/O happens only in those slots (the OCaml GC may
    move [Bytes.t] while a blocking section runs), and callers blit
    payloads across the boundary with {!blit_to_slot} /
    {!blit_from_slot}. When the kernel accepts buffer registration the
    fixed-buffer opcodes are used automatically.

    Completions are keyed by the integer [key] given at prep time.
    Key [0] is reserved: cancellations complete with key 0 and are
    ignored by dispatchers. *)

type t

val available : unit -> bool
(** Kernel probe (cached) AND the [TR_URING_DISABLE] env kill-switch
    (re-read on every call, so tests can simulate ENOSYS/EPERM
    kernels). Requires io_uring features [SINGLE_MMAP] (5.4) and
    [EXT_ARG] (5.11). *)

val create : ?entries:int -> ?slots:int -> ?slot_bytes:int -> unit -> t
(** Fails when {!available} is false. [entries] sizes the submission
    ring; [slots]×[slot_bytes] sizes the buffer arena (defaults
    4096×4096 ≈ 16 MiB per ring). *)

val close : t -> unit
(** Unmaps the rings and closes the ring fd; the kernel cancels any
    in-flight operations. Safe to call twice. *)

val slot_bytes : t -> int

val fixed_buffers : t -> bool
(** Whether REGISTER_BUFFERS was accepted (else plain READ/WRITE). *)

val enter_syscalls : t -> int
(** Actual [io_uring_enter] syscalls made so far, including SQ-full
    flushes — the honest denominator for syscalls-per-grant. *)

val sqes_submitted : t -> int
(** Operations prepped over the ring's lifetime. *)

val sq_pending : t -> int
(** Submissions queued but not yet consumed by the kernel. *)

val cq_pending : t -> bool
(** Whether a completion is already waiting — a pure user-space read of
    the mapped CQ ring, which is what the adaptive spin window polls
    without burning syscalls. *)

val alloc_slot : t -> int
(** A free arena slot, or [-1] when exhausted (callers fall back to
    direct syscalls — honest, counted — rather than blocking). *)

val free_slot : t -> int -> unit

val free_slots : t -> int

val prep_poll : t -> Unix.file_descr -> int -> int -> unit
(** [prep_poll t fd bits key]: one-shot poll with {!Readiness}-style
    interest bits (1 = read, 2 = write). The completion [res] is a poll
    revents mask — translate with {!poll_bits}. *)

val prep_cancel : t -> int -> unit
(** Cancel the in-flight operation submitted under [key]. The target
    completes with [-ECANCELED]; the cancel itself completes under the
    reserved key 0. *)

val prep_read : t -> Unix.file_descr -> int -> int -> unit
(** [prep_read t fd slot key]: read up to [slot_bytes] into [slot]. *)

val prep_write : t -> Unix.file_descr -> int -> int -> int -> unit
(** [prep_write t fd slot len key]: write [len] bytes from [slot]. *)

val prep_accept : t -> Unix.file_descr -> int -> unit
(** [prep_accept t fd key]: accept one connection; the completion [res]
    is the new fd, already nonblocking and close-on-exec. *)

val blit_to_slot : t -> int -> Bytes.t -> int -> int -> unit
val blit_from_slot : t -> int -> Bytes.t -> int -> int -> unit

val enter : t -> timeout_ns:int -> f:(key:int -> res:int -> unit) -> int
(** Submit everything pending; when [timeout_ns > 0], block for one
    completion or the timeout (releasing the runtime lock). Every
    available completion is then dispatched through [f]; returns the
    dispatch count. With [timeout_ns = 0] and nothing to submit this
    makes no syscall at all. *)

type res_class = Ok | Retry | Canceled | Error

val classify : int -> res_class
(** Negative [res] values are negated errnos: [Retry] for
    EAGAIN/EINTR, [Canceled] for ECANCELED, [Error] otherwise. *)

val poll_bits : int -> int
(** Poll-completion revents → {!Readiness} bits, folding ERR/HUP into
    both directions like the readiness backends do. *)
