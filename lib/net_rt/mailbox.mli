(** Lock-free multi-producer / single-consumer mailbox.

    Producers on any domain [push]; the single owning consumer [drain]s
    everything in FIFO order. The implementation is a Treiber stack on an
    [Atomic]: push is one CAS loop, drain is one [exchange] plus a
    reversal — no mutex anywhere, which is what lets loopback transport
    sends cross domains without blocking a shard's event loop. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val drain : 'a t -> 'a list
(** All queued items, oldest first. The mailbox is left empty. *)

val is_empty : 'a t -> bool
