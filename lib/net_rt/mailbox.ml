type 'a t = 'a list Atomic.t

let create () = Atomic.make []

let rec push t x =
  let old = Atomic.get t in
  if not (Atomic.compare_and_set t old (x :: old)) then push t x

let drain t = List.rev (Atomic.exchange t [])
let is_empty t = match Atomic.get t with [] -> true | _ -> false
