(** Unit-scaled monotone wall clock for the live runtime.

    Protocol timer constants are written in the paper's abstract "time
    units" (one reliable hop = one unit in the default network). The live
    runtime maps a unit to [unit_s] wall seconds, so [now] ticks in the
    same units the simulator uses and live measurements overlay directly
    on simulated ones (Figure 9's axes carry over unchanged).

    Backed by [Unix.gettimeofday] against a fixed epoch — the only timing
    source the container provides. Raw wall time is not monotonic (NTP
    can step it backwards), so reads are clamped to be non-decreasing
    across all domains: [now] never goes backwards, which the runner's
    due-time ordering of timers and frame deliveries depends on. *)

type t

val create : ?unit_s:float -> unit -> t
(** [unit_s] defaults to [1e-3] (one time unit = 1 ms).
    @raise Invalid_argument if [unit_s] is not positive and finite. *)

val unit_s : t -> float

val now : t -> float
(** Time units elapsed since [create]. *)

val elapsed_wall : t -> float
(** Wall seconds since [create]. *)

val sleep_until : t -> float -> unit
(** [sleep_until t units] sleeps until the clock reads [units] (no-op if
    already past). *)
