open Tr_sim
open Tr_wire

type load =
  | No_load
  | Open_loop of { mean_interarrival : float }
  | Closed_loop of { depth : int }
  | External

type stop = Grants of int | Duration of float

type config = {
  n : int;
  seed : int;
  unit_s : float;
  shards : int;
  hop_delay : float;
  cheap_delay : float;
  load : load;
  stop : stop;
  max_wall_s : float;
  pin_cores : bool;
  readiness : Readiness.backend option;
  spin : bool;
  inproc : bool;
  chaos : Tr_chaos.Injector.t option;
}

let default_shards n = Stdlib.min n (Stdlib.max 2 (Domain.recommended_domain_count ()))

let default_config ~n ~seed =
  {
    n;
    seed;
    unit_s = 1e-3;
    shards = default_shards n;
    hop_delay = 1.0;
    cheap_delay = 1.0;
    load = No_load;
    stop = Duration 1000.0;
    max_wall_s = 60.0;
    pin_cores = false;
    readiness = None;
    spin = false;
    inproc = false;
    chaos = None;
  }

type control = {
  kill : int -> unit;
  request_stop : unit -> unit;
  live_now : unit -> float;
  inject : int -> unit;
  transport_stats : Transport.stats;
  pending_at : int -> int;
}

type report = {
  protocol : string;
  n : int;
  seed : int;
  backend : string;
  readiness : string;
  unit_s : float;
  shards : int;
  wall_s : float;
  duration_units : float;
  grants : int;
  frames_sent : int;
  bytes_sent : int;
  frames_received : int;
  decode_errors : int;
  resync_skips : int;
  reconnects : int;
  frames_dropped : int;
  out_hwm_bytes : int;
  write_syscalls : int;
  read_syscalls : int;
  wait_calls : int;
  fds_registered : int;
  avg_ready_per_wait : float;
  spin_hits : int;
  spin_misses : int;
  sqes_submitted : int;
  inproc_frames : int;
  syscalls_per_grant : float;
  corrupt_frames_detected : int;
  chaos_spec : string;
  chaos_injected : (string * int) list;
  chaos_total_injected : int;
  chaos_digest : int;
  metrics : Metrics.t;
}

type backend_spec =
  | Loopback
  | Sockets of { owned : int list; addrs : Unix.sockaddr array }

(* Per-node live state. [st] is the protocol's pure state; everything
   else is runtime plumbing owned by exactly one shard. *)
type ('state, 'msg) rt = {
  id : int;
  mutable st : 'state;
  ctx : 'msg Node_intf.ctx;
}

(* When a loopback shard can't bound its next event (frames that other
   domains may queue mid-sleep), it naps at most this many units so
   surprises are picked up promptly. Socket shards don't nap on a
   cadence at all — they block in [Transport.wait] until a descriptor
   or a wake pipe is ready. *)
let idle_cap_units = 0.5

let validate (config : config) =
  if config.n < 2 then invalid_arg "Cluster.run: n < 2";
  if config.shards < 1 then invalid_arg "Cluster.run: shards < 1";
  if not (Float.is_finite config.hop_delay) || config.hop_delay < 0.0 then
    invalid_arg "Cluster.run: hop_delay must be finite and non-negative";
  if not (Float.is_finite config.cheap_delay) || config.cheap_delay < 0.0 then
    invalid_arg "Cluster.run: cheap_delay must be finite and non-negative";
  if config.max_wall_s <= 0.0 then invalid_arg "Cluster.run: max_wall_s <= 0";
  (match config.load with
  | No_load | External -> ()
  | Open_loop { mean_interarrival } ->
      if not (Float.is_finite mean_interarrival) || mean_interarrival <= 0.0
      then invalid_arg "Cluster.run: open-loop mean interarrival <= 0"
  | Closed_loop { depth } ->
      if depth < 1 then invalid_arg "Cluster.run: closed-loop depth < 1");
  match config.stop with
  | Grants k -> if k < 1 then invalid_arg "Cluster.run: grants target < 1"
  | Duration d ->
      if not (Float.is_finite d) || d <= 0.0 then
        invalid_arg "Cluster.run: duration <= 0"

let run (type m) ?tap ?attach ?(backend = Loopback) config
    (module P : Node_intf.PROTOCOL with type msg = m) (codec : m Codec.t) :
    report =
  validate config;
  let n = config.n in
  let clock = Clock.create ~unit_s:config.unit_s () in
  let transport, owned =
    match backend with
    | Loopback -> (Transport.loopback ~clock ~n, List.init n Fun.id)
    | Sockets { owned; addrs } ->
        if owned = [] then invalid_arg "Cluster.run: no nodes to host";
        ( Transport.sockets ?readiness:config.readiness ~spin:config.spin
            ~inproc:config.inproc ~clock ~n ~owned ~addrs (),
          List.sort_uniq compare owned )
  in
  let owned_arr = Array.of_list owned in
  let n_owned = Array.length owned_arr in
  let use_poll = Transport.poll_driven transport in
  (* The shard layout is fixed before any protocol code runs so the ctx
     closures (set_timer, serve) can address their shard's structures
     directly. *)
  let shards = Stdlib.min config.shards n_owned in
  let shard_of = Array.make n (-1) in
  Array.iteri (fun idx i -> shard_of.(i) <- idx mod shards) owned_arr;
  (* Socket-shard plumbing: a wake pipe (riding in the shard's readiness
     set), an activation mailbox (which nodes to step next — the shard
     never scans its full node list), and a timer index heap (earliest
     due time per armed timer, so an idle shard knows exactly how long
     to sleep). Entries in the index may be stale after a cancel; the
     cost is one spurious activation, never a missed timer. *)
  let wakes = if use_poll then Array.init shards (fun _ -> Wakeup.create ()) else [||] in
  let act_inbox : int Mailbox.t array =
    if use_poll then Array.init shards (fun _ -> Mailbox.create ()) else [||]
  in
  let timer_index : int Pqueue.t array =
    if use_poll then Array.init shards (fun _ -> Pqueue.create ()) else [||]
  in
  let metrics = Metrics.create ~n in
  let mu = Mutex.create () in
  let with_mu f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  let stop_flag = Atomic.make false in
  let alive = Array.init n (fun _ -> Atomic.make true) in
  let failure_box : exn option Atomic.t = Atomic.make None in
  let wake_all () = Array.iter Wakeup.wake wakes in
  let signal_stop () =
    Atomic.set stop_flag true;
    wake_all ()
  in
  (* Cross-shard activation: queue the node and poke the shard's pipe
     (level-triggered: a byte written before the shard enters its wait
     still wakes it). *)
  let wake_node i =
    if use_poll && i >= 0 && i < n && shard_of.(i) >= 0 then begin
      Mailbox.push act_inbox.(shard_of.(i)) i;
      Wakeup.wake wakes.(shard_of.(i))
    end
  in
  (* Same-shard activation (a serve re-arming its own node): the shard
     drains its mailbox before every sleep, so no pipe write is needed. *)
  let note_local i =
    if use_poll && shard_of.(i) >= 0 then Mailbox.push act_inbox.(shard_of.(i)) i
  in
  (* Timer plumbing, index-addressed so ctx closures need no [rt]. *)
  let timers = Array.init n (fun _ -> Pqueue.create ()) in
  let epochs = Array.init n (fun _ -> Hashtbl.create 8) in
  let req_inbox : float Mailbox.t array = Array.init n (fun _ -> Mailbox.create ()) in
  (* Requests pushed but not yet drained by the owning shard. Metrics
     only learn of a request at drain time, so [pending_at] adds this
     on top — otherwise a poll racing the shard (chaos recovery probes)
     reads pending=0 for a request that is merely still in the mailbox. *)
  let req_inflight = Array.init n (fun _ -> Atomic.make 0) in
  let push_request i at =
    Atomic.incr req_inflight.(i);
    Mailbox.push req_inbox.(i) at
  in
  (* Chaos holdback: reordered frames wait here (per source node, owned
     by its shard) until their release time, then ship with zero delay —
     one mechanism for both backends, since the sockets transport has no
     delay of its own to piggyback on. *)
  let chaos_out : (int * string) Pqueue.t array =
    match config.chaos with
    | Some _ -> Array.init n (fun _ -> Pqueue.create ())
    | None -> [||]
  in
  let chaos_down node =
    match config.chaos with
    | None -> false
    | Some inj ->
        Tr_chaos.Injector.node_down inj ~now:(Clock.now clock) ~node
  in
  let current_epoch ~node ~key =
    match Hashtbl.find_opt epochs.(node) key with Some e -> e | None -> 0
  in
  let control =
    {
      kill =
        (fun i ->
          if i >= 0 && i < n then Atomic.set alive.(i) false);
      request_stop = signal_stop;
      live_now = (fun () -> Clock.now clock);
      inject =
        (fun i ->
          (* External request arrival (service front-end): queue it for
             the owning shard and poke that shard's wake pipe. Safe from
             any domain — the mailbox is lock-free. *)
          if i >= 0 && i < n && Atomic.get alive.(i) then begin
            push_request i (Clock.now clock);
            wake_node i
          end);
      transport_stats = Transport.stats transport;
      pending_at =
        (fun i ->
          if i < 0 || i >= n then 0
          else
            with_mu (fun () -> Metrics.pending metrics ~node:i)
            + Atomic.get req_inflight.(i));
    }
  in
  let make_ctx node : m Node_intf.ctx =
    let rng = Rng.create ((config.seed * 1_000_003) + node) in
    (* One scratch per node: only its owning shard encodes with it, so
       steady-state sends allocate no fresh buffers. *)
    let scratch = Codec.scratch () in
    let send ?(channel = Network.Reliable) ~dst msg =
      if dst < 0 || dst >= n then
        invalid_arg "Cluster: send destination out of range";
      with_mu (fun () -> Metrics.on_message metrics channel (P.classify msg));
      let delay =
        match channel with
        | Network.Reliable -> config.hop_delay
        | Network.Cheap -> config.cheap_delay
      in
      (* Chaos interposition, live side: pre-encode decisions (drop /
         duplicate / reorder), post-encode byte flips for corruption —
         mangled frames go down the real wire and must be absorbed by
         the decoder's resync path on the receiving shard. *)
      match config.chaos with
      | None ->
          let frame = Codec.encode_frame scratch codec ~src:node ~channel msg in
          Transport.send_frame transport ~src:node ~dst ~delay frame
      | Some inj ->
          let now_u = Clock.now clock in
          let a = Tr_chaos.Injector.on_send inj ~now:now_u ~src:node ~dst in
          if not a.Tr_chaos.Injector.drop then begin
            let frame =
              Codec.encode_frame scratch codec ~src:node ~channel msg
            in
            if
              (not a.Tr_chaos.Injector.corrupt)
              && a.Tr_chaos.Injector.extra_delay = 0.0
              && a.Tr_chaos.Injector.copies = 1
            then Transport.send_frame transport ~src:node ~dst ~delay frame
            else begin
              let payload = Buffer.contents frame in
              let payload =
                if a.Tr_chaos.Injector.corrupt then
                  Tr_chaos.Injector.corrupt_payload inj ~src:node ~dst
                    ~k:a.Tr_chaos.Injector.link_count payload
                else payload
              in
              for _ = 1 to a.Tr_chaos.Injector.copies do
                if a.Tr_chaos.Injector.extra_delay > 0.0 then begin
                  let release =
                    now_u +. delay +. a.Tr_chaos.Injector.extra_delay
                  in
                  Pqueue.push chaos_out.(node) ~time:release (dst, payload);
                  if use_poll then
                    Pqueue.push timer_index.(shard_of.(node)) ~time:release node
                end
                else
                  Transport.send transport ~src:node ~dst ~delay payload
              done
            end
          end
    in
    let set_timer ~delay ~key =
      if delay < 0.0 then invalid_arg "Cluster: negative timer delay";
      if key < 0 then invalid_arg "Cluster: negative timer key";
      let delay =
        match config.chaos with
        | None -> delay
        | Some inj ->
            delay
            *. Tr_chaos.Injector.timer_scale inj ~now:(Clock.now clock) ~node
      in
      let at = Clock.now clock +. delay in
      Pqueue.push timers.(node) ~time:at (key, current_epoch ~node ~key);
      if use_poll then Pqueue.push timer_index.(shard_of.(node)) ~time:at node
    in
    let cancel_timers ~key =
      if key < 0 then invalid_arg "Cluster: negative timer key";
      Hashtbl.replace epochs.(node) key (current_epoch ~node ~key + 1)
    in
    let serve () =
      let t = Clock.now clock in
      let grants =
        with_mu (fun () ->
            (match Metrics.oldest_arrival metrics ~node with
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Cluster: node %d served with no pending request" node)
            | Some _ -> Metrics.on_serve metrics ~time:t ~node);
            Metrics.serves metrics)
      in
      (match config.load with
      | Closed_loop _ ->
          (* Re-arm through the mailbox so the protocol handler finishes
             before the next on_request fires (the simulator queues the
             re-request as an event for the same reason). *)
          push_request node (Clock.now clock);
          note_local node
      | _ -> ());
      match config.stop with
      | Grants k -> if grants >= k then signal_stop ()
      | Duration _ -> ()
    in
    {
      Node_intf.self = node;
      n;
      now = (fun () -> Clock.now clock);
      rng;
      send;
      set_timer;
      cancel_timers;
      serve;
      pending = (fun () -> with_mu (fun () -> Metrics.pending metrics ~node));
      possession =
        (fun () -> with_mu (fun () -> Metrics.on_token_possession metrics ~node));
      search_forward =
        (fun () -> with_mu (fun () -> Metrics.on_search_forward metrics));
      note = (fun _ -> ());
    }
  in
  (* Initialise every hosted node before any shard runs: init sends (the
     initial token) sit queued in the transport until the loops start. *)
  let rts =
    List.map
      (fun i ->
        let ctx = make_ctx i in
        { id = i; st = P.init ctx; ctx })
      owned
  in
  (* Closed-loop priming: [depth] outstanding requests per node at t=0. *)
  (match config.load with
  | Closed_loop { depth } ->
      let t0 = Clock.now clock in
      List.iter
        (fun i ->
          for _ = 1 to depth do
            push_request i t0
          done)
        owned
  | _ -> ());
  (* Open-loop generator state: Poisson arrivals over the live hosted
     nodes, pumped by the lead shard. *)
  let open_loop =
    match config.load with
    | Open_loop { mean_interarrival } ->
        let rng = Rng.create (config.seed lxor 0x5DEECE66D) in
        let next = ref (Rng.exponential rng ~mean:mean_interarrival) in
        let pump now_u =
          while !next <= now_u && not (Atomic.get stop_flag) do
            let live =
              Array.to_list owned_arr
              |> List.filter (fun i -> Atomic.get alive.(i))
            in
            (match live with
            | [] -> signal_stop ()
            | _ ->
                let pick = List.nth live (Rng.int rng (List.length live)) in
                push_request pick !next;
                wake_node pick);
            next := !next +. Rng.exponential rng ~mean:mean_interarrival
          done
        in
        Some (pump, next)
    | _ -> None
  in
  (* Ship reordered frames whose holdback expired. Runs even while the
     source is churned down — the frames left it before the window. *)
  let flush_chaos_out i now_u =
    if Array.length chaos_out > 0 then begin
      let q = chaos_out.(i) in
      while (not (Pqueue.is_empty q)) && Pqueue.top_time_exn q <= now_u do
        let dst, payload = Pqueue.pop_exn q in
        Transport.send transport ~src:i ~dst ~delay:0.0 payload
      done
    end
  in
  let step_node rt now_u =
    let i = rt.id in
    flush_chaos_out i now_u;
    if chaos_down i then begin
      (* Churned out: frames addressed to it are destroyed, timers and
         queued arrivals are parked for rejoin. Re-index the node at the
         window's close so the socket shard re-activates it then. *)
      Transport.poll transport ~owner:i (fun _ -> ());
      if use_poll then
        match config.chaos with
        | Some inj ->
            let resume =
              Tr_chaos.Injector.down_until inj ~now:(Clock.now clock) ~node:i
            in
            Pqueue.push timer_index.(shard_of.(i)) ~time:resume i
        | None -> ()
    end
    else
    let arrivals = Mailbox.drain req_inbox.(i) in
    if Atomic.get alive.(i) then begin
      List.iter
        (fun at ->
          with_mu (fun () -> Metrics.on_request metrics ~time:at ~node:i);
          (* Decrement after the metric records it: [pending_at] may
             briefly double-count, never read 0 for a queued request. *)
          Atomic.decr req_inflight.(i);
          rt.st <- P.on_request rt.ctx rt.st)
        arrivals;
      let tq = timers.(i) in
      let deliver ?upto () =
        Transport.poll transport ?upto ~owner:i (fun view ->
            match Codec.decode_view codec view with
            | Error _ -> Transport.count_decode_error transport
            | Ok { Codec.src; channel = _; msg } ->
                if Atomic.get alive.(i) then begin
                  rt.st <- P.on_message rt.ctx rt.st ~src msg;
                  (* The tap observes a *processed* delivery, so a tap
                     that kills this node models a crash just after
                     handling the message — e.g. while holding a token
                     it has already acknowledged. *)
                  match tap with Some f -> f control ~self:i msg | None -> ()
                end)
      in
      (* Interleave timers and frame deliveries in due-time order, as
         the discrete-event engine would: when the shard runs late both
         may be due at once, and firing an ack timeout before the ack
         frame that precedes it would fabricate a failure. *)
      let continue = ref true in
      while
        !continue && (not (Pqueue.is_empty tq)) && Pqueue.top_time_exn tq <= now_u
      do
        let tt = Pqueue.top_time_exn tq in
        deliver ~upto:tt ();
        (* Deliveries may have armed an earlier timer or cancelled this
           one; only fire if this slot is still frontmost. *)
        if (not (Pqueue.is_empty tq)) && Pqueue.top_time_exn tq <= tt then begin
          let key, ep = Pqueue.pop_exn tq in
          if Atomic.get alive.(i) then begin
            if current_epoch ~node:i ~key = ep then
              rt.st <- P.on_timer rt.ctx rt.st ~key
          end
          else continue := false
        end
      done;
      if Atomic.get alive.(i) then deliver ()
      else begin
        Pqueue.clear tq;
        Transport.poll transport ~owner:i (fun _ -> ())
      end
    end
    else begin
      (* Dead node: everything addressed to it evaporates. The drained
         arrivals keep their [req_inflight] counts — a dead node can
         never serve, so [pending_at] must not read 0 for them. *)
      Pqueue.clear timers.(i);
      Transport.poll transport ~owner:i (fun _ -> ())
    end
  in
  let next_event_units shard_rts now_u =
    List.fold_left
      (fun acc rt ->
        let acc =
          if Mailbox.is_empty req_inbox.(rt.id) then acc
          else if chaos_down rt.id then
            (* Parked arrivals at a churned-down node are only due when
               the window closes — treating them as due now would make
               the shard busy-spin for the whole churn window. *)
            match config.chaos with
            | Some inj ->
                Float.min acc
                  (Tr_chaos.Injector.down_until inj ~now:now_u ~node:rt.id)
            | None -> now_u
          else Float.min acc now_u
        in
        let acc =
          match Pqueue.peek_time timers.(rt.id) with
          | Some t -> Float.min acc t
          | None -> acc
        in
        let acc =
          if Array.length chaos_out = 0 then acc
          else
            match Pqueue.peek_time chaos_out.(rt.id) with
            | Some t -> Float.min acc t
            | None -> acc
        in
        match Transport.next_due transport ~owner:rt.id with
        | Some t -> Float.min acc t
        | None -> acc)
      infinity shard_rts
  in
  let shard_rts =
    List.init shards (fun s ->
        List.filter (fun rt -> shard_of.(rt.id) = s) rts)
  in
  let pin shard =
    if config.pin_cores then ignore (Readiness.pin_cpu (shard mod Readiness.ncpus ()))
  in
  (* Loopback shard loop: deliveries carry due times ([next_due] is
     authoritative), so each pass steps every node and naps to the next
     event, capped so cross-domain surprises are noticed promptly. *)
  let loopback_loop ~lead ~shard shard_rts () =
    pin shard;
    try
      while not (Atomic.get stop_flag) do
        if Clock.elapsed_wall clock > config.max_wall_s then signal_stop ()
        else begin
          let now_u = Clock.now clock in
          if lead then begin
            (match config.stop with
            | Duration d -> if now_u >= d then signal_stop ()
            | Grants _ -> ());
            match open_loop with Some (pump, _) -> pump now_u | None -> ()
          end;
          List.iter (fun rt -> step_node rt now_u) shard_rts;
          let now2 = Clock.now clock in
          let next = next_event_units shard_rts now2 in
          let next =
            if lead then
              match open_loop with
              | Some (_, next_at) -> Float.min next !next_at
              | None -> next
            else next
          in
          if not (Atomic.get stop_flag) then begin
            let target = Float.min (now2 +. idle_cap_units) next in
            if target > now2 then Clock.sleep_until clock target
          end
        end
      done
    with e ->
      ignore (Atomic.compare_and_set failure_box None (Some e));
      signal_stop ()
  in
  (* Socket shard loop, active-set form: the shard steps only nodes
     something happened to — a ready descriptor (reported by
     [Transport.wait] through [on_ready]), an activation queued by
     another shard, or a due timer from the index heap. Idle nodes cost
     nothing per iteration, which is what lets one shard carry 10k+ of
     them. *)
  let sockets_loop ~lead ~shard shard_rts () =
    pin shard;
    let wake = wakes.(shard) in
    let inbox = act_inbox.(shard) in
    let tindex = timer_index.(shard) in
    let my_ids = List.map (fun rt -> rt.id) shard_rts in
    let rt_of = Hashtbl.create (Stdlib.max 16 (List.length shard_rts)) in
    List.iter (fun rt -> Hashtbl.replace rt_of rt.id rt) shard_rts;
    let on_q = Array.make n false in
    let q = Queue.create () in
    let activate i =
      if i >= 0 && i < n && not on_q.(i) then begin
        on_q.(i) <- true;
        Queue.add i q
      end
    in
    (* First pass sweeps everything: init sends are still unflushed. *)
    List.iter activate my_ids;
    try
      while not (Atomic.get stop_flag) do
        if Clock.elapsed_wall clock > config.max_wall_s then signal_stop ()
        else begin
          let now_u = Clock.now clock in
          if lead then begin
            (match config.stop with
            | Duration d -> if now_u >= d then signal_stop ()
            | Grants _ -> ());
            match open_loop with Some (pump, _) -> pump now_u | None -> ()
          end;
          (* Drain the wake pipe to EAGAIN before stepping: a burst of
             wakes must not leave stale readability that would turn
             every later wait into a spin. *)
          Wakeup.drain wake;
          List.iter activate (Mailbox.drain inbox);
          while
            match Pqueue.peek_time tindex with
            | Some t -> t <= now_u
            | None -> false
          do
            activate (Pqueue.pop_exn tindex)
          done;
          while not (Queue.is_empty q) do
            let i = Queue.pop q in
            on_q.(i) <- false;
            match Hashtbl.find_opt rt_of i with
            | Some rt -> step_node rt now_u
            | None -> ()
          done;
          if not (Atomic.get stop_flag) then begin
            let now2 = Clock.now clock in
            let next =
              match Pqueue.peek_time tindex with
              | Some t -> t
              | None -> infinity
            in
            let next =
              if lead then
                match open_loop with
                | Some (_, next_at) -> Float.min next !next_at
                | None -> next
              else next
            in
            let timeout_s =
              if not (Mailbox.is_empty inbox) then 0.0
              else if next = infinity then infinity
              else Float.max 0.0 ((next -. now2) *. config.unit_s)
            in
            Transport.wait transport
              ~extra_fds:[ Wakeup.read_fd wake ]
              ~on_ready:activate ~owners:my_ids ~timeout_s ();
            Wakeup.drain wake
          end
        end
      done
    with e ->
      ignore (Atomic.compare_and_set failure_box None (Some e));
      signal_stop ()
  in
  (* Hand the control handle to an embedding service (e.g. a client
     front-end injecting External load) before the shards start. *)
  (match attach with Some f -> f control | None -> ());
  let domains =
    List.mapi
      (fun s nodes ->
        let loop = if use_poll then sockets_loop else loopback_loop in
        Domain.spawn (loop ~lead:(s = 0) ~shard:s nodes))
      shard_rts
  in
  List.iter Domain.join domains;
  Array.iter Wakeup.close wakes;
  Transport.close transport;
  (match Atomic.get failure_box with Some e -> raise e | None -> ());
  (* One coherent snapshot, not a field-by-field walk of live atomics:
     the same primitive the service layer's periodic report uses, so a
     report can never pair counters from two different moments. *)
  let s = Transport.snapshot transport in
  let wait_calls = s.Transport.snap_wait_calls in
  let grants = Metrics.serves metrics in
  {
    protocol = P.name;
    n;
    seed = config.seed;
    backend = Transport.name transport;
    readiness = Transport.readiness_backend transport;
    unit_s = config.unit_s;
    shards;
    wall_s = Clock.elapsed_wall clock;
    duration_units = Clock.now clock;
    grants;
    frames_sent = s.Transport.snap_frames_sent;
    bytes_sent = s.Transport.snap_bytes_sent;
    frames_received = s.Transport.snap_frames_received;
    decode_errors = s.Transport.snap_decode_errors;
    resync_skips = s.Transport.snap_resync_skips;
    reconnects = s.Transport.snap_reconnects;
    frames_dropped = s.Transport.snap_frames_dropped;
    out_hwm_bytes = s.Transport.snap_out_hwm_bytes;
    write_syscalls = s.Transport.snap_write_syscalls;
    read_syscalls = s.Transport.snap_read_syscalls;
    wait_calls;
    fds_registered = s.Transport.snap_fds_registered;
    avg_ready_per_wait =
      (if wait_calls = 0 then 0.0
       else float_of_int s.Transport.snap_fds_ready /. float_of_int wait_calls);
    spin_hits = s.Transport.snap_spin_hits;
    spin_misses = s.Transport.snap_spin_misses;
    sqes_submitted = s.Transport.snap_sqes_submitted;
    inproc_frames = s.Transport.snap_inproc_frames;
    syscalls_per_grant =
      (if grants = 0 then 0.0
       else
         float_of_int
           (s.Transport.snap_write_syscalls + s.Transport.snap_read_syscalls
          + wait_calls)
         /. float_of_int grants);
    (* Cluster-level corruption roll-up: envelope decode failures plus
       framing-level resync skips — everything the wire layer detected
       and survived, the number chaos corruption runs assert on. *)
    corrupt_frames_detected =
      s.Transport.snap_decode_errors + s.Transport.snap_resync_skips;
    chaos_spec =
      (match config.chaos with
      | None -> ""
      | Some inj -> Tr_chaos.Scenario.spec (Tr_chaos.Injector.scenario inj));
    chaos_injected =
      (match config.chaos with
      | None -> []
      | Some inj -> Tr_chaos.Injector.counts inj);
    chaos_total_injected =
      (match config.chaos with
      | None -> 0
      | Some inj -> Tr_chaos.Injector.total_injected inj);
    chaos_digest =
      (match config.chaos with
      | None -> 0
      | Some inj -> Tr_chaos.Injector.schedule_digest inj);
    metrics;
  }

let run_packed ?backend config (Codecs.Packed ((module P), codec)) =
  run ?backend config (module P) codec

(* ---------------- multi-process fleet ---------------- *)

type fleet_member = {
  m_grants : int;
  m_frames_sent : int;
  m_wall_s : float;
  m_resp_mean : float;
  m_resp_p99 : float;
  m_wait_calls : int;
  m_fds_registered : int;
  m_decode_errors : int;
}

(* Split a socket cluster across [procs] forked children, each hosting a
   contiguous slice of the ids, all running the same wall-clock duration
   so no cross-process stop coordination is needed: a child that hit its
   duration keeps its sockets open until every slice is done, because the
   transport only closes on [run] return and the parent only reaps after
   reading all summary lines. Each child ships one scalar summary line
   over a shared pipe (far below PIPE_BUF, so lines can't interleave). *)
let run_fleet ~procs ~addrs (config : config) packed =
  let n = config.n in
  let slice p =
    let lo = p * n / procs and hi = (p + 1) * n / procs in
    List.init (hi - lo) (fun k -> lo + k)
  in
  let rpipe, wpipe = Unix.pipe () in
  let pids =
    List.init procs (fun p ->
        match Unix.fork () with
        | 0 ->
            let code =
              try
                Unix.close rpipe;
                let report =
                  run_packed
                    ~backend:(Sockets { owned = slice p; addrs })
                    config packed
                in
                let resp = Tr_sim.Metrics.responsiveness report.metrics in
                let p99 =
                  Tr_stats.Quantile.quantile
                    (Tr_sim.Metrics.responsiveness_quantiles report.metrics)
                    0.99
                in
                let line =
                  Printf.sprintf "%d %d %d %.6f %.6f %.6f %d %d %d\n" p
                    report.grants report.frames_sent report.wall_s
                    (Tr_stats.Summary.mean resp)
                    p99 report.wait_calls report.fds_registered
                    report.decode_errors
                in
                ignore
                  (Unix.write_substring wpipe line 0 (String.length line));
                0
              with e ->
                Printf.eprintf "fleet child %d: %s\n%!" p
                  (Printexc.to_string e);
                1
            in
            exit code
        | pid -> pid)
  in
  Unix.close wpipe;
  let ic = Unix.in_channel_of_descr rpipe in
  let lines =
    List.init procs (fun _ ->
        match input_line ic with
        | line -> Some line
        | exception End_of_file -> None)
  in
  let ok =
    List.for_all
      (fun pid ->
        match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> true | _ -> false)
      pids
  in
  close_in ic;
  if not ok then failwith "fleet child exited abnormally";
  (* Lines arrive in pipe order, i.e. whichever child finished first;
     sort by the reported child index to honour the slice-order doc. *)
  List.filter_map Fun.id lines
  |> List.map (fun line ->
         Scanf.sscanf line "%d %d %d %f %f %f %d %d %d"
           (fun p g f w r p99 waits fds de ->
             ( p,
               {
                 m_grants = g;
                 m_frames_sent = f;
                 m_wall_s = w;
                 m_resp_mean = r;
                 m_resp_p99 = p99;
                 m_wait_calls = waits;
                 m_fds_registered = fds;
                 m_decode_errors = de;
               } )))
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd
