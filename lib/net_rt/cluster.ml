open Tr_sim
open Tr_wire

type load =
  | No_load
  | Open_loop of { mean_interarrival : float }
  | Closed_loop of { depth : int }

type stop = Grants of int | Duration of float

type config = {
  n : int;
  seed : int;
  unit_s : float;
  shards : int;
  hop_delay : float;
  cheap_delay : float;
  load : load;
  stop : stop;
  max_wall_s : float;
}

let default_shards n = Stdlib.min n (Stdlib.max 2 (Domain.recommended_domain_count ()))

let default_config ~n ~seed =
  {
    n;
    seed;
    unit_s = 1e-3;
    shards = default_shards n;
    hop_delay = 1.0;
    cheap_delay = 1.0;
    load = No_load;
    stop = Duration 1000.0;
    max_wall_s = 60.0;
  }

type control = {
  kill : int -> unit;
  request_stop : unit -> unit;
  live_now : unit -> float;
}

type report = {
  protocol : string;
  n : int;
  seed : int;
  backend : string;
  unit_s : float;
  shards : int;
  wall_s : float;
  duration_units : float;
  grants : int;
  frames_sent : int;
  bytes_sent : int;
  frames_received : int;
  decode_errors : int;
  resync_skips : int;
  reconnects : int;
  frames_dropped : int;
  write_syscalls : int;
  read_syscalls : int;
  metrics : Metrics.t;
}

type backend_spec =
  | Loopback
  | Sockets of { owned : int list; addrs : Unix.sockaddr array }

(* Per-node live state. [st] is the protocol's pure state; everything
   else is runtime plumbing owned by exactly one shard. *)
type ('state, 'msg) rt = {
  id : int;
  mutable st : 'state;
  ctx : 'msg Node_intf.ctx;
}

(* When a loopback shard can't bound its next event (frames that other
   domains may queue mid-sleep), it naps at most this many units so
   surprises are picked up promptly. Socket shards don't nap on a
   cadence at all — they block in [Transport.wait] until a descriptor
   or a wake pipe is ready. *)
let idle_cap_units = 0.5

let validate (config : config) =
  if config.n < 2 then invalid_arg "Cluster.run: n < 2";
  if config.shards < 1 then invalid_arg "Cluster.run: shards < 1";
  if not (Float.is_finite config.hop_delay) || config.hop_delay < 0.0 then
    invalid_arg "Cluster.run: hop_delay must be finite and non-negative";
  if not (Float.is_finite config.cheap_delay) || config.cheap_delay < 0.0 then
    invalid_arg "Cluster.run: cheap_delay must be finite and non-negative";
  if config.max_wall_s <= 0.0 then invalid_arg "Cluster.run: max_wall_s <= 0";
  (match config.load with
  | No_load -> ()
  | Open_loop { mean_interarrival } ->
      if not (Float.is_finite mean_interarrival) || mean_interarrival <= 0.0
      then invalid_arg "Cluster.run: open-loop mean interarrival <= 0"
  | Closed_loop { depth } ->
      if depth < 1 then invalid_arg "Cluster.run: closed-loop depth < 1");
  match config.stop with
  | Grants k -> if k < 1 then invalid_arg "Cluster.run: grants target < 1"
  | Duration d ->
      if not (Float.is_finite d) || d <= 0.0 then
        invalid_arg "Cluster.run: duration <= 0"

let run (type m) ?tap ?(backend = Loopback) config
    (module P : Node_intf.PROTOCOL with type msg = m) (codec : m Codec.t) :
    report =
  validate config;
  let n = config.n in
  let clock = Clock.create ~unit_s:config.unit_s () in
  let transport, owned =
    match backend with
    | Loopback -> (Transport.loopback ~clock ~n, List.init n Fun.id)
    | Sockets { owned; addrs } ->
        if owned = [] then invalid_arg "Cluster.run: no nodes to host";
        (Transport.sockets ~clock ~n ~owned ~addrs, List.sort_uniq compare owned)
  in
  let owned_arr = Array.of_list owned in
  let metrics = Metrics.create ~n in
  let mu = Mutex.create () in
  let with_mu f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  let stop_flag = Atomic.make false in
  let alive = Array.init n (fun _ -> Atomic.make true) in
  let failure_box : exn option Atomic.t = Atomic.make None in
  (* Socket shards sleep in [select]; these hooks (filled in once the
     shard layout is known) poke their wake pipes so a stop request or a
     cross-shard load injection is seen immediately, not at a timeout. *)
  let wake_all = ref (fun () -> ()) in
  let wake_node = ref (fun (_ : int) -> ()) in
  let signal_stop () =
    Atomic.set stop_flag true;
    !wake_all ()
  in
  (* Timer plumbing, index-addressed so ctx closures need no [rt]. *)
  let timers = Array.init n (fun _ -> Pqueue.create ()) in
  let epochs = Array.init n (fun _ -> Hashtbl.create 8) in
  let req_inbox : float Mailbox.t array = Array.init n (fun _ -> Mailbox.create ()) in
  let current_epoch ~node ~key =
    match Hashtbl.find_opt epochs.(node) key with Some e -> e | None -> 0
  in
  let control =
    {
      kill =
        (fun i ->
          if i >= 0 && i < n then Atomic.set alive.(i) false);
      request_stop = signal_stop;
      live_now = (fun () -> Clock.now clock);
    }
  in
  let make_ctx node : m Node_intf.ctx =
    let rng = Rng.create ((config.seed * 1_000_003) + node) in
    (* One scratch per node: only its owning shard encodes with it, so
       steady-state sends allocate no fresh buffers. *)
    let scratch = Codec.scratch () in
    let send ?(channel = Network.Reliable) ~dst msg =
      if dst < 0 || dst >= n then
        invalid_arg "Cluster: send destination out of range";
      with_mu (fun () -> Metrics.on_message metrics channel (P.classify msg));
      let frame = Codec.encode_frame scratch codec ~src:node ~channel msg in
      let delay =
        match channel with
        | Network.Reliable -> config.hop_delay
        | Network.Cheap -> config.cheap_delay
      in
      Transport.send_frame transport ~src:node ~dst ~delay frame
    in
    let set_timer ~delay ~key =
      if delay < 0.0 then invalid_arg "Cluster: negative timer delay";
      if key < 0 then invalid_arg "Cluster: negative timer key";
      Pqueue.push timers.(node)
        ~time:(Clock.now clock +. delay)
        (key, current_epoch ~node ~key)
    in
    let cancel_timers ~key =
      if key < 0 then invalid_arg "Cluster: negative timer key";
      Hashtbl.replace epochs.(node) key (current_epoch ~node ~key + 1)
    in
    let serve () =
      let t = Clock.now clock in
      let grants =
        with_mu (fun () ->
            (match Metrics.oldest_arrival metrics ~node with
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Cluster: node %d served with no pending request" node)
            | Some _ -> Metrics.on_serve metrics ~time:t ~node);
            Metrics.serves metrics)
      in
      (match config.load with
      | Closed_loop _ ->
          (* Re-arm through the mailbox so the protocol handler finishes
             before the next on_request fires (the simulator queues the
             re-request as an event for the same reason). *)
          Mailbox.push req_inbox.(node) (Clock.now clock)
      | _ -> ());
      match config.stop with
      | Grants k -> if grants >= k then signal_stop ()
      | Duration _ -> ()
    in
    {
      Node_intf.self = node;
      n;
      now = (fun () -> Clock.now clock);
      rng;
      send;
      set_timer;
      cancel_timers;
      serve;
      pending = (fun () -> with_mu (fun () -> Metrics.pending metrics ~node));
      possession =
        (fun () -> with_mu (fun () -> Metrics.on_token_possession metrics ~node));
      search_forward =
        (fun () -> with_mu (fun () -> Metrics.on_search_forward metrics));
      note = (fun _ -> ());
    }
  in
  (* Initialise every hosted node before any shard runs: init sends (the
     initial token) sit queued in the transport until the loops start. *)
  let rts =
    List.map
      (fun i ->
        let ctx = make_ctx i in
        { id = i; st = P.init ctx; ctx })
      owned
  in
  (* Closed-loop priming: [depth] outstanding requests per node at t=0. *)
  (match config.load with
  | Closed_loop { depth } ->
      let t0 = Clock.now clock in
      List.iter
        (fun i ->
          for _ = 1 to depth do
            Mailbox.push req_inbox.(i) t0
          done)
        owned
  | _ -> ());
  (* Open-loop generator state: Poisson arrivals over the live hosted
     nodes, pumped by the lead shard. *)
  let open_loop =
    match config.load with
    | Open_loop { mean_interarrival } ->
        let rng = Rng.create (config.seed lxor 0x5DEECE66D) in
        let next = ref (Rng.exponential rng ~mean:mean_interarrival) in
        let pump now_u =
          while !next <= now_u && not (Atomic.get stop_flag) do
            let live =
              Array.to_list owned_arr
              |> List.filter (fun i -> Atomic.get alive.(i))
            in
            (match live with
            | [] -> signal_stop ()
            | _ ->
                let pick = List.nth live (Rng.int rng (List.length live)) in
                Mailbox.push req_inbox.(pick) !next;
                !wake_node pick);
            next := !next +. Rng.exponential rng ~mean:mean_interarrival
          done
        in
        Some (pump, next)
    | _ -> None
  in
  let step_node rt now_u =
    let i = rt.id in
    let arrivals = Mailbox.drain req_inbox.(i) in
    if Atomic.get alive.(i) then begin
      List.iter
        (fun at ->
          with_mu (fun () -> Metrics.on_request metrics ~time:at ~node:i);
          rt.st <- P.on_request rt.ctx rt.st)
        arrivals;
      let tq = timers.(i) in
      let deliver ?upto () =
        Transport.poll transport ?upto ~owner:i (fun view ->
            match Codec.decode_view codec view with
            | Error _ -> Transport.count_decode_error transport
            | Ok { Codec.src; channel = _; msg } ->
                if Atomic.get alive.(i) then begin
                  rt.st <- P.on_message rt.ctx rt.st ~src msg;
                  (* The tap observes a *processed* delivery, so a tap
                     that kills this node models a crash just after
                     handling the message — e.g. while holding a token
                     it has already acknowledged. *)
                  match tap with Some f -> f control ~self:i msg | None -> ()
                end)
      in
      (* Interleave timers and frame deliveries in due-time order, as
         the discrete-event engine would: when the shard runs late both
         may be due at once, and firing an ack timeout before the ack
         frame that precedes it would fabricate a failure. *)
      let continue = ref true in
      while
        !continue && (not (Pqueue.is_empty tq)) && Pqueue.top_time_exn tq <= now_u
      do
        let tt = Pqueue.top_time_exn tq in
        deliver ~upto:tt ();
        (* Deliveries may have armed an earlier timer or cancelled this
           one; only fire if this slot is still frontmost. *)
        if (not (Pqueue.is_empty tq)) && Pqueue.top_time_exn tq <= tt then begin
          let key, ep = Pqueue.pop_exn tq in
          if Atomic.get alive.(i) then begin
            if current_epoch ~node:i ~key = ep then
              rt.st <- P.on_timer rt.ctx rt.st ~key
          end
          else continue := false
        end
      done;
      if Atomic.get alive.(i) then deliver ()
      else begin
        Pqueue.clear tq;
        Transport.poll transport ~owner:i (fun _ -> ())
      end
    end
    else begin
      (* Dead node: everything addressed to it evaporates. *)
      Pqueue.clear timers.(i);
      Transport.poll transport ~owner:i (fun _ -> ())
    end
  in
  let next_event_units shard_rts now_u =
    List.fold_left
      (fun acc rt ->
        let acc =
          if Mailbox.is_empty req_inbox.(rt.id) then acc else now_u
        in
        let acc =
          match Pqueue.peek_time timers.(rt.id) with
          | Some t -> Float.min acc t
          | None -> acc
        in
        match Transport.next_due transport ~owner:rt.id with
        | Some t -> Float.min acc t
        | None ->
            (* Loopback with an empty queue has nothing due (new frames
               are bounded by the idle cap); socket arrivals surface as
               fd readiness in [Transport.wait], not as due times. *)
            acc)
      infinity shard_rts
  in
  let shards = Stdlib.min config.shards (List.length rts) in
  let shard_nodes =
    List.init shards (fun s ->
        List.filteri (fun idx _ -> idx mod shards = s) rts)
  in
  (* Readiness plumbing for socket shards: each shard sleeps in a
     [select] over its nodes' descriptors plus a wake pipe. Anyone
     setting the stop flag or injecting cross-shard load writes the pipe
     (level-triggered: a byte written before the shard enters [select]
     still wakes it), so there is no polling cadence to tune. *)
  let use_select = Transport.poll_driven transport in
  let wakes =
    if use_select then
      Array.init shards (fun _ ->
          let r, w = Unix.pipe () in
          Unix.set_nonblock r;
          Unix.set_nonblock w;
          (r, w))
    else [||]
  in
  let shard_of = Array.make n (-1) in
  List.iteri
    (fun s nodes -> List.iter (fun rt -> shard_of.(rt.id) <- s) nodes)
    shard_nodes;
  let wake_byte = Bytes.make 1 '!' in
  let wake_write fd =
    try ignore (Unix.write fd wake_byte 0 1)
    with Unix.Unix_error _ -> ()
  in
  if use_select then begin
    (wake_all := fun () -> Array.iter (fun (_, w) -> wake_write w) wakes);
    wake_node :=
      fun i ->
        if i >= 0 && i < n && shard_of.(i) >= 0 then
          wake_write (snd wakes.(shard_of.(i)))
  end;
  let shard_loop ~lead ~shard shard_rts () =
    let my_ids = List.map (fun rt -> rt.id) shard_rts in
    let drain_buf = Bytes.create 64 in
    let rec drain_wake fd =
      match Unix.read fd drain_buf 0 (Bytes.length drain_buf) with
      | k -> if k = Bytes.length drain_buf then drain_wake fd
      | exception Unix.Unix_error _ -> ()
    in
    try
      while not (Atomic.get stop_flag) do
        if Clock.elapsed_wall clock > config.max_wall_s then signal_stop ()
        else begin
          let now_u = Clock.now clock in
          if lead then begin
            (match config.stop with
            | Duration d -> if now_u >= d then signal_stop ()
            | Grants _ -> ());
            match open_loop with Some (pump, _) -> pump now_u | None -> ()
          end;
          List.iter (fun rt -> step_node rt now_u) shard_rts;
          let now2 = Clock.now clock in
          let next = next_event_units shard_rts now2 in
          let next =
            if lead then
              match open_loop with
              | Some (_, next_at) -> Float.min next !next_at
              | None -> next
            else next
          in
          if not (Atomic.get stop_flag) then
            if use_select then begin
              (* Block until a socket or the wake pipe is ready; timers
                 bound the sleep. [Transport.wait] caps the timeout as a
                 lost-wakeup safety net. *)
              let timeout_s =
                if next = infinity then infinity
                else Float.max 0.0 ((next -. now2) *. config.unit_s)
              in
              if timeout_s > 0.0 then begin
                let wake_r, _ = wakes.(shard) in
                Transport.wait transport ~extra_fds:[ wake_r ] ~owners:my_ids
                  ~timeout_s ();
                drain_wake wake_r
              end
            end
            else begin
              let target = Float.min (now2 +. idle_cap_units) next in
              if target > now2 then Clock.sleep_until clock target
            end
        end
      done
    with e ->
      ignore (Atomic.compare_and_set failure_box None (Some e));
      signal_stop ()
  in
  let domains =
    List.mapi
      (fun s nodes -> Domain.spawn (shard_loop ~lead:(s = 0) ~shard:s nodes))
      shard_nodes
  in
  List.iter Domain.join domains;
  Array.iter
    (fun (r, w) ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    wakes;
  Transport.close transport;
  (match Atomic.get failure_box with Some e -> raise e | None -> ());
  let s = Transport.stats transport in
  {
    protocol = P.name;
    n;
    seed = config.seed;
    backend = Transport.name transport;
    unit_s = config.unit_s;
    shards;
    wall_s = Clock.elapsed_wall clock;
    duration_units = Clock.now clock;
    grants = Metrics.serves metrics;
    frames_sent = Atomic.get s.frames_sent;
    bytes_sent = Atomic.get s.bytes_sent;
    frames_received = Atomic.get s.frames_received;
    decode_errors = Atomic.get s.decode_errors;
    resync_skips = Atomic.get s.resync_skips;
    reconnects = Atomic.get s.reconnects;
    frames_dropped = Atomic.get s.frames_dropped;
    write_syscalls = Atomic.get s.write_syscalls;
    read_syscalls = Atomic.get s.read_syscalls;
    metrics;
  }

let run_packed ?backend config (Codecs.Packed ((module P), codec)) =
  run ?backend config (module P) codec
