(** Stamped exports for live runs.

    Every artifact a live run produces carries enough provenance to be
    reproduced: protocol name, cluster size, seed, transport backend and
    the source revision ([git describe]). The JSON mirrors the
    simulator's export schema where the quantities coincide
    (responsiveness/waiting summaries in time units), so live and
    simulated runs diff cleanly. *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] outside a checkout. *)

(** {1 JSON building blocks}

    Shared by the service layer's exporter so every artifact escapes and
    formats identically. *)

val json_string : string -> string
(** Quoted and escaped JSON string literal. *)

val json_float : float -> string
(** [%.9g], or [null] for NaN/infinite values. *)

val obj : (string * string) list -> string
(** One-line JSON object from [(key, already-rendered-value)] pairs. *)

val json_of_report : Cluster.report -> string
(** One JSON object, newline-terminated. *)

val csv_of_table :
  x_label:string -> cols:string list -> (float * float list) list -> string
(** FIG9-schema CSV: header [x_label,col1,col2,...] then one row per x
    value. Row value lists shorter than [cols] are padded with blanks. *)
