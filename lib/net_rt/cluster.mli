(** Live cluster runner: the simulator's protocols over real transports.

    Every protocol in [lib/proto/] is a pure state machine against the
    {!Tr_sim.Node_intf.ctx} capability record; the simulator implements
    that record over a virtual event queue, and this module implements it
    over wall-clock time and a {!Transport} — the protocol code runs
    unchanged, byte-for-byte.

    Nodes are sharded across a configurable number of domains (the
    container may have a single core, so one-domain-per-node would
    oversubscribe; shards sleep when idle instead of spinning). Each
    shard runs an event loop over the nodes it owns: fire due timers,
    poll the transport for frames, decode them through the protocol's
    codec, and process injected load. Metrics feed the {e same}
    {!Tr_sim.Metrics} accumulator the simulator uses — responsiveness is
    Definition 3 in both worlds, in the same units. *)

type load =
  | No_load  (** Token circulation only. *)
  | Open_loop of { mean_interarrival : float }
      (** Poisson arrivals (mean gap in units), uniform over live nodes. *)
  | Closed_loop of { depth : int }
      (** Keep each node's outstanding-request count topped up to
          [depth]; a serve immediately re-arms. *)
  | External
      (** No internal generator: requests arrive only through
          {!control.inject} — the service front-end's mode. *)

type stop =
  | Grants of int  (** Stop once this many requests have been served. *)
  | Duration of float  (** Stop after this many time units. *)

type config = {
  n : int;
  seed : int;
  unit_s : float;  (** Wall seconds per time unit. *)
  shards : int;
  hop_delay : float;  (** Loopback reliable-hop delay, units. *)
  cheap_delay : float;  (** Loopback cheap-channel delay, units. *)
  load : load;
  stop : stop;
  max_wall_s : float;  (** Hard safety limit on wall time. *)
  pin_cores : bool;
      (** Pin each shard domain to one CPU ([sched_setaffinity],
          shard index modulo core count). Advisory: pinning failure is
          ignored. *)
  readiness : Readiness.backend option;
      (** Force the sockets readiness backend; [None] picks the best
          available (honouring [TR_READINESS] — see
          {!Readiness.default_backend}). Forcing [Uring] puts the
          transport in completion mode (see {!Transport.sockets}).
          Ignored on loopback. *)
  spin : bool;
      (** Adaptive spin-then-block before each shard wait (sockets
          only; see {!Transport.sockets}). Default off. *)
  inproc : bool;
      (** In-process delivery fast path between co-hosted nodes
          (sockets only; see {!Transport.sockets}). Default off. *)
  chaos : Tr_chaos.Injector.t option;
      (** Fault-injection shim on the frame path: every protocol send
          consults the injector before encoding (drop / duplicate /
          reorder holdback), corruption flips bytes in the encoded frame
          after encoding (exercising the decoder's resync path), timer
          delays are scaled by active clock-skew windows, and churned
          nodes have their deliveries destroyed and their timers and
          request arrivals parked until rejoin. [None] — the default —
          keeps the zero-copy send path untouched. *)
}

val default_config : n:int -> seed:int -> config
(** 1 ms units, one-unit hops on both channels, [No_load],
    [Duration 1000.], 60 s wall cap, shards from
    [Domain.recommended_domain_count], no pinning, default readiness,
    spin and in-process fast path off. *)

(** Handle passed to the {!run} [tap] and [attach] callbacks: lets an
    embedder kill a node mid-run, end the run early, or inject external
    request load. *)
type control = {
  kill : int -> unit;
      (** Stop delivering frames, timers and load to this node — it
          vanishes without ceremony, like a crash. *)
  request_stop : unit -> unit;
  live_now : unit -> float;
  inject : int -> unit;
      (** Queue one request arrival at this node, timestamped now.
          Callable from any domain; no-op for out-of-range or killed
          nodes. The backbone of the [External] load mode. *)
  transport_stats : Transport.stats;
      (** The run's live transport counters (atomics) — lets an embedder
          surface [frames_dropped] / [out_hwm_bytes] in a periodic
          report while the run is still going. *)
  pending_at : int -> int;
      (** Outstanding (injected but unserved) requests at a node right
          now; [0] for out-of-range ids. Callable from any domain — the
          chaos harness polls this to timestamp post-fault recovery. *)
}

type report = {
  protocol : string;
  n : int;
  seed : int;
  backend : string;
  readiness : string;
      (** Backend the shards waited in: ["uring"], ["epoll"], ["poll"],
          ["select"], or ["none"] for loopback — always the backend
          {e actually} used, after any loud fallback. *)
  unit_s : float;
  shards : int;
  wall_s : float;
  duration_units : float;
  grants : int;
  frames_sent : int;
  bytes_sent : int;
  frames_received : int;
  decode_errors : int;  (** Envelope-level failures (bad key/version/body). *)
  resync_skips : int;
      (** Framing-level skips: garbage bytes discarded to re-lock the
          stream, or unknown-version frames skipped whole. *)
  reconnects : int;
  frames_dropped : int;
  out_hwm_bytes : int;
      (** Largest backlog any single peer's outgoing buffer reached
          (bytes, sockets only) — headroom against the 4 MiB drop
          threshold. *)
  write_syscalls : int;  (** [write(2)] calls issued (sockets backends). *)
  read_syscalls : int;  (** [read(2)] calls issued (sockets backends). *)
  wait_calls : int;  (** Readiness waits issued across all shards. *)
  fds_registered : int;
      (** Fds registered in the shards' readiness sets at run end
          (listeners + connections + wake pipes). *)
  avg_ready_per_wait : float;
      (** Mean fds reported ready per wait — the O(ready) dispatch cost,
          independent of [fds_registered]. *)
  spin_hits : int;  (** Spin windows that found work without blocking. *)
  spin_misses : int;  (** Spin windows that expired into a blocking wait. *)
  sqes_submitted : int;
      (** io_uring submissions queued (completion mode only). *)
  inproc_frames : int;
      (** Frames delivered through the in-process fast path. *)
  syscalls_per_grant : float;
      (** (write + read + wait syscalls) / grants — the per-grant
          syscall floor this run actually paid. On the readiness
          backends a hop costs ~3 (write, wait, read); completion mode
          collapses it toward 1 and the in-process path toward 0. *)
  corrupt_frames_detected : int;
      (** Cluster-level corruption roll-up: [decode_errors +
          resync_skips] — every frame the wire layer had to reject or
          skip past, whatever the cause. *)
  chaos_spec : string;
      (** The chaos scenario spec in force, [""] when no injector. *)
  chaos_injected : (string * int) list;
      (** Injection counters by fault class (see
          {!Tr_chaos.Injector.counts}); [[]] when no injector. *)
  chaos_total_injected : int;
  chaos_digest : int;
      (** Order-independent digest of the injected-event schedule —
          equal digests across backends certify identical fault
          sequences for the same seed. [0] when no injector. *)
  metrics : Tr_sim.Metrics.t;
}

type backend_spec =
  | Loopback
  | Sockets of { owned : int list; addrs : Unix.sockaddr array }

val run :
  ?tap:(control -> self:int -> 'm -> unit) ->
  ?attach:(control -> unit) ->
  ?backend:backend_spec ->
  config ->
  (module Tr_sim.Node_intf.PROTOCOL with type msg = 'm) ->
  'm Tr_wire.Codec.t ->
  report
(** Blocks until the stop condition (or wall cap) is reached, then joins
    all shard domains and closes the transport. [tap] observes every
    processed delivery on the receiving shard's domain (after the
    protocol's [on_message]) — it must do its own locking if it
    accumulates state. A tap that kills the receiving node models a
    crash just after handling the message. [attach] receives the
    {!control} handle after node init but before any shard domain runs —
    an embedding service stores it to [inject] load and stop the run
    (typically from another domain, since [run] blocks). *)

val run_packed : ?backend:backend_spec -> config -> Tr_wire.Codecs.packed -> report
(** {!run} over a registry entry (protocol paired with its codec). *)

(** One forked fleet child's scalar summary (see {!run_fleet}). *)
type fleet_member = {
  m_grants : int;
  m_frames_sent : int;
  m_wall_s : float;
  m_resp_mean : float;  (** Mean responsiveness, time units. *)
  m_resp_p99 : float;  (** p99 responsiveness, time units. *)
  m_wait_calls : int;
  m_fds_registered : int;
  m_decode_errors : int;
}

val run_fleet :
  procs:int ->
  addrs:Unix.sockaddr array ->
  config ->
  Tr_wire.Codecs.packed ->
  fleet_member list
(** Fork [procs] children, each hosting a contiguous slice of the ids of
    a socket cluster over [addrs], all running [config] (which should use
    a {!Duration} stop — there is no cross-process grant coordination).
    Splits the per-process fd bill by [procs], so a 10k-node cluster fits
    under an un-raisable [RLIMIT_NOFILE]. Returns one summary per child
    in slice order; raises [Failure] if any child exits abnormally. May
    return fewer than [procs] members if a child died before reporting
    (callers should check). Must be called from a single-domain process
    ([fork] and OCaml domains don't mix). *)
