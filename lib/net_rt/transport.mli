(** Byte transport between live nodes, with two backends.

    A transport moves {e framed} byte strings (see {!Tr_wire.Frame}) from
    a source node to a destination node and hands complete frame payloads
    back to the destination's owning shard. It knows nothing about
    protocol messages — codecs live a layer up.

    {b Loopback} keeps the cluster in one process: each node has a
    lock-free {!Mailbox} fed by any domain, and deliveries honour a
    per-send [delay] (in clock units) through a min-heap, so the default
    one-unit hop reproduces the simulator's network model in real time.

    {b Sockets} runs over TCP or Unix-domain stream sockets, one
    listener per hosted node. All I/O is non-blocking: partial reads
    accumulate in an incremental frame decoder, partial writes stay in a
    bounded per-peer queue (frames past the high-water mark are dropped
    whole and counted), and a failed or refused connection backs off
    exponentially (10 ms doubling to 1 s) before reconnecting. The wire
    itself is the delay model — the [delay] argument is ignored.
    Creating a sockets transport installs a process-wide SIGPIPE ignore
    so a disconnected peer surfaces as [EPIPE] (handled by the reconnect
    path) instead of killing the process. *)

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
      (** Framing-level skips (resyncs) plus envelope decode failures
          reported via {!count_decode_error}. *)
  reconnects : int Atomic.t;
      (** Times an outgoing connection was torn down and rescheduled. *)
  frames_dropped : int Atomic.t;
      (** Sends refused because the per-peer outgoing queue was over its
          high-water mark (sockets only; an unreachable peer cannot queue
          unbounded memory). *)
}

type t

val name : t -> string
(** Backend name for report stamping: ["loopback"], ["tcp"] or ["unix"]. *)

val stats : t -> stats

val send : t -> src:int -> dst:int -> delay:float -> string -> unit
(** Ship one complete frame. [delay] is in clock units (loopback only).
    Never blocks; socket sends queue behind a reconnecting peer. *)

val poll : t -> ?upto:float -> owner:int -> (string -> unit) -> unit
(** Deliver every frame payload currently due for node [owner] to the
    callback, in arrival order. [upto] caps the delivery horizon in
    clock units (loopback only) so the caller can interleave timers and
    deliveries in due-time order; socket arrivals are physical and
    always due. Must only be called from the shard that owns the
    node. *)

val next_due : t -> owner:int -> float option
(** Clock time (units) of the earliest queued delivery for [owner], if
    the backend can know it (loopback); [None] on sockets. *)

val poll_driven : t -> bool
(** True when frames can only be discovered by polling (sockets), so the
    shard loop must wake at a fixed cadence; false when [next_due] is
    authoritative modulo the idle cap (loopback). *)

val count_decode_error : t -> unit
(** Record an envelope-level decode failure (bad codec key/version or
    malformed message) against this transport's stats. *)

val close : t -> unit

val loopback : clock:Clock.t -> n:int -> t

val sockets :
  clock:Clock.t ->
  n:int ->
  owned:int list ->
  addrs:Unix.sockaddr array ->
  t
(** Host the nodes in [owned] (listeners are bound immediately); sends
    may target any node in [addrs]. [name] reports ["unix"] if the first
    address is a Unix-domain path, ["tcp"] otherwise.
    @raise Invalid_argument on bad [owned] ids or array size. *)

val uds_addrs : dir:string -> n:int -> Unix.sockaddr array
(** [dir/node-<i>.sock] for each node. *)

val tcp_addrs : ?host:string -> base_port:int -> n:int -> unit -> Unix.sockaddr array
(** Consecutive ports on [host] (default 127.0.0.1). *)
