(** Byte transport between live nodes, with two backends.

    A transport moves {e framed} byte strings (see {!Tr_wire.Frame}) from
    a source node to a destination node and hands complete frame payloads
    back to the destination's owning shard as borrowed {!Tr_wire.Frame.view}
    slices — no per-frame copy. It knows nothing about protocol
    messages — codecs live a layer up.

    {b Loopback} keeps the cluster in one process: each node has a
    lock-free {!Mailbox} fed by any domain, and deliveries honour a
    per-send [delay] (in clock units) through a min-heap, so the default
    one-unit hop reproduces the simulator's network model in real time.
    Delivery decodes each queued frame in place ({!Tr_wire.Frame.decode_exact});
    the only steady-state allocation is the one string that carries the
    frame across domains.

    {b Sockets} runs over TCP or Unix-domain stream sockets, one
    listener per hosted node. All I/O is non-blocking. Outgoing frames
    coalesce into a flat per-peer buffer that {!poll} flushes with a
    single [write(2)] — many frames per syscall — bounded by a 4 MiB
    high-water mark (frames past it are dropped whole and counted).
    Partial reads accumulate in an incremental frame decoder; a failed
    or refused connection backs off exponentially (10 ms doubling to
    1 s) before reconnecting, and a connection torn down mid-frame drops
    the half-written frame whole so the next connection starts on a
    frame boundary. TCP peers are set [TCP_NODELAY] — batching happens
    in the transport, not in Nagle's queue. The wire itself is the delay
    model — the [delay] argument is ignored. Creating a sockets
    transport installs a process-wide SIGPIPE ignore so a disconnected
    peer surfaces as [EPIPE] (handled by the reconnect path) instead of
    killing the process, and raises [RLIMIT_NOFILE] as far as the
    process may so high-N clusters don't trip the soft default.

    {b Readiness.} Each shard's first {!wait} moves its nodes' fds into
    a per-shard {!Readiness} set (epoll on Linux, poll elsewhere, select
    as a forced baseline — see {!Readiness.backend}); fds register once
    and every subsequent wait costs O(ready), not O(connections). Ready
    events are dispatched through a persistent fd index and surfaced to
    the caller as [on_ready owner] activations so the shard loop knows
    exactly which nodes to poll. Nodes whose shard never waits (raw
    bench pumps) keep the legacy scan-everything {!poll}. *)

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
      (** Envelope decode failures reported via {!count_decode_error}. *)
  resync_skips : int Atomic.t;
      (** Framing-level skips: bytes discarded to resynchronise after
          garbage, plus unknown-version frames skipped whole. *)
  reconnects : int Atomic.t;
      (** Times an outgoing connection was torn down and rescheduled. *)
  frames_dropped : int Atomic.t;
      (** Sends refused because the per-peer outgoing buffer was over its
          high-water mark, plus half-written frames discarded at
          tear-down (sockets only). *)
  out_hwm_bytes : int Atomic.t;
      (** High-water mark: the largest backlog any single peer's outgoing
          buffer reached (sockets only) — how close the run came to the
          4 MiB drop threshold, visible while it happens. *)
  write_syscalls : int Atomic.t;
      (** [write(2)] calls issued (sockets only) — with batching this
          stays well below [frames_sent]. *)
  read_syscalls : int Atomic.t;  (** [read(2)] calls issued (sockets only). *)
  wait_calls : int Atomic.t;
      (** {!wait} invocations that reached the kernel (sockets only). *)
  fds_ready : int Atomic.t;
      (** Total fds reported ready across all waits; divided by
          [wait_calls] this gives the average readiness batch — the
          O(ready) dispatch cost — independent of [fds_registered]. *)
  fds_registered : int Atomic.t;
      (** Gauge: fds currently registered across all shard readiness
          sets (listeners, connections, wake pipes). *)
}

type t

val name : t -> string
(** Backend name for report stamping: ["loopback"], ["tcp"] or ["unix"]. *)

val readiness_backend : t -> string
(** Readiness backend driving {!wait}: ["epoll"], ["poll"] or
    ["select"] for sockets; ["none"] for loopback. *)

val stats : t -> stats

val send : t -> src:int -> dst:int -> delay:float -> string -> unit
(** Ship one complete frame. [delay] is in clock units (loopback only).
    Never blocks; socket sends coalesce until the next {!poll} flush. *)

val send_frame : t -> src:int -> dst:int -> delay:float -> Buffer.t -> unit
(** As {!send}, straight out of an encode buffer (see
    {!Tr_wire.Codec.encode_frame}): the contents are copied out before
    returning, so the caller may reuse the buffer immediately. On the
    sockets backend this path allocates nothing. *)

val poll : t -> ?upto:float -> owner:int -> (Tr_wire.Frame.view -> unit) -> unit
(** Deliver every frame payload currently due for node [owner] to the
    callback, in arrival order, as borrowed views (valid only during the
    callback). Also flushes [owner]'s coalesced outgoing buffers — one
    write syscall per busy peer per poll. [upto] caps the delivery
    horizon in clock units (loopback only) so the caller can interleave
    timers and deliveries in due-time order; socket arrivals are
    physical and always due. Once [owner]'s shard has called {!wait},
    this touches only the connections the last wait reported ready plus
    those with unflushed bytes — O(ready), not O(connections). Must only
    be called from the shard that owns the node. *)

val next_due : t -> owner:int -> float option
(** Clock time (units) of the earliest queued delivery for [owner], if
    the backend can know it (loopback); [None] on sockets. *)

val poll_driven : t -> bool
(** True when frames arrive over file descriptors (sockets), so the
    shard loop should block in {!wait} for readiness; false when
    [next_due] is authoritative modulo the idle cap (loopback). *)

val wait :
  t ->
  ?extra_fds:Unix.file_descr list ->
  ?on_ready:(int -> unit) ->
  owners:int list ->
  timeout_s:float ->
  unit ->
  unit
(** Block until work may be available for [owners] or [timeout_s]
    elapses (capped at 0.25 s as a lost-wakeup safety net). On sockets
    this blocks in the calling shard's readiness set — owners' fds are
    registered on first call and stay registered, so the per-wait cost
    is O(ready). Each ready event invokes [on_ready owner] (possibly
    several times per owner) telling the caller which nodes to {!poll};
    [extra_fds] (read side) ride in the set as wake channels and are
    never reported through [on_ready] — an idle cluster burns no CPU.
    Pending reconnect deadlines bound the sleep and activate their owner
    when due. On loopback it simply sleeps. *)

val count_decode_error : t -> unit
(** Record an envelope-level decode failure (bad codec key/version or
    malformed message) against this transport's stats. *)

val close : t -> unit

val loopback : clock:Clock.t -> n:int -> t

val sockets :
  ?readiness:Readiness.backend ->
  clock:Clock.t ->
  n:int ->
  owned:int list ->
  addrs:Unix.sockaddr array ->
  unit ->
  t
(** Host the nodes in [owned] (listeners are bound immediately); sends
    may target any node in [addrs]. [name] reports ["unix"] if the first
    address is a Unix-domain path, ["tcp"] otherwise. [readiness] forces
    a wait backend; the default honours [TR_READINESS] and otherwise
    picks the best available (epoll, then poll — see
    {!Readiness.default_backend}).
    @raise Invalid_argument on bad [owned] ids or array size.
    @raise Failure on an unavailable forced backend or a bad
    [TR_READINESS] value. *)

val uds_addrs : dir:string -> n:int -> Unix.sockaddr array
(** [dir/node-<i>.sock] for each node. *)

val tcp_addrs : ?host:string -> base_port:int -> n:int -> unit -> Unix.sockaddr array
(** Consecutive ports on [host] (default 127.0.0.1). *)
