(** Byte transport between live nodes, with two backends.

    A transport moves {e framed} byte strings (see {!Tr_wire.Frame}) from
    a source node to a destination node and hands complete frame payloads
    back to the destination's owning shard as borrowed {!Tr_wire.Frame.view}
    slices — no per-frame copy. It knows nothing about protocol
    messages — codecs live a layer up.

    {b Loopback} keeps the cluster in one process: each node has a
    lock-free {!Mailbox} fed by any domain, and deliveries honour a
    per-send [delay] (in clock units) through a min-heap, so the default
    one-unit hop reproduces the simulator's network model in real time.
    Delivery decodes each queued frame in place ({!Tr_wire.Frame.decode_exact});
    the only steady-state allocation is the one string that carries the
    frame across domains.

    {b Sockets} runs over TCP or Unix-domain stream sockets, one
    listener per hosted node. All I/O is non-blocking. Outgoing frames
    coalesce into a flat per-peer buffer that {!poll} flushes with a
    single [write(2)] — many frames per syscall — bounded by a 4 MiB
    high-water mark (frames past it are dropped whole and counted).
    Partial reads accumulate in an incremental frame decoder; a failed
    or refused connection backs off exponentially (10 ms doubling to
    1 s) before reconnecting, and a connection torn down mid-frame drops
    the half-written frame whole so the next connection starts on a
    frame boundary. TCP peers are set [TCP_NODELAY] — batching happens
    in the transport, not in Nagle's queue. The wire itself is the delay
    model — the [delay] argument is ignored. Creating a sockets
    transport installs a process-wide SIGPIPE ignore so a disconnected
    peer surfaces as [EPIPE] (handled by the reconnect path) instead of
    killing the process, and raises [RLIMIT_NOFILE] as far as the
    process may so high-N clusters don't trip the soft default.

    {b Readiness.} Each shard's first {!wait} moves its nodes' fds into
    a per-shard {!Readiness} set (epoll on Linux, poll elsewhere, select
    as a forced baseline — see {!Readiness.backend}); fds register once
    and every subsequent wait costs O(ready), not O(connections). Ready
    events are dispatched through a persistent fd index and surfaced to
    the caller as [on_ready owner] activations so the shard loop knows
    exactly which nodes to poll. Nodes whose shard never waits (raw
    bench pumps) keep the legacy scan-everything {!poll}. *)

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
      (** Envelope decode failures reported via {!count_decode_error}. *)
  resync_skips : int Atomic.t;
      (** Framing-level skips: bytes discarded to resynchronise after
          garbage, plus unknown-version frames skipped whole. *)
  reconnects : int Atomic.t;
      (** Times an outgoing connection was torn down and rescheduled. *)
  frames_dropped : int Atomic.t;
      (** Sends refused because the per-peer outgoing buffer was over its
          high-water mark, plus half-written frames discarded at
          tear-down (sockets only). *)
  out_hwm_bytes : int Atomic.t;
      (** High-water mark: the largest backlog any single peer's outgoing
          buffer reached (sockets only) — how close the run came to the
          4 MiB drop threshold, visible while it happens. *)
  write_syscalls : int Atomic.t;
      (** [write(2)] calls issued (sockets only) — with batching this
          stays well below [frames_sent]. *)
  read_syscalls : int Atomic.t;  (** [read(2)] calls issued (sockets only). *)
  wait_calls : int Atomic.t;
      (** {!wait} invocations that reached the kernel (sockets only). *)
  fds_ready : int Atomic.t;
      (** Total fds reported ready across all waits; divided by
          [wait_calls] this gives the average readiness batch — the
          O(ready) dispatch cost — independent of [fds_registered]. *)
  fds_registered : int Atomic.t;
      (** Gauge: fds currently registered across all shard readiness
          sets (listeners, connections, wake pipes). *)
  spin_hits : int Atomic.t;
      (** Adaptive-spin windows that ended with work already in hand
          (mapped completion queue or in-process mailbox non-empty), so
          the kernel wait became a free zero-timeout drain. *)
  spin_misses : int Atomic.t;
      (** Spin windows that expired empty and fell through to a blocking
          wait. *)
  sqes_submitted : int Atomic.t;
      (** io_uring submissions queued (completion mode only). Divided by
          [wait_calls] this gives the average submission batch riding
          each enter. *)
  inproc_frames : int Atomic.t;
      (** Frames delivered through the in-process fast path — no socket,
          no syscall, never counted in [write_syscalls]/[read_syscalls]. *)
}

(** One coherent reading of every counter. Each field is a single
    [Atomic.get] of the corresponding {!stats} counter, all taken in one
    call — the way to print or export totals while shard domains are
    still running (or racing to finish), instead of re-reading live
    atomics one by one mid-report. *)
type snapshot = {
  snap_frames_sent : int;
  snap_bytes_sent : int;
  snap_frames_received : int;
  snap_decode_errors : int;
  snap_resync_skips : int;
  snap_reconnects : int;
  snap_frames_dropped : int;
  snap_out_hwm_bytes : int;
  snap_write_syscalls : int;
  snap_read_syscalls : int;
  snap_wait_calls : int;
  snap_fds_ready : int;
  snap_fds_registered : int;
  snap_spin_hits : int;
  snap_spin_misses : int;
  snap_sqes_submitted : int;
  snap_inproc_frames : int;
}

type t

val name : t -> string
(** Backend name for report stamping: ["loopback"], ["tcp"] or ["unix"]. *)

val readiness_backend : t -> string
(** Backend driving {!wait}: ["uring"], ["epoll"], ["poll"] or
    ["select"] for sockets (the backend actually in use after loud
    fallback, not the one requested); ["none"] for loopback. *)

val stats : t -> stats

val snapshot : t -> snapshot
(** Read every counter once, atomically enough for reporting: no
    counter is read twice, so a report printed while shards still run
    cannot show a ratio computed from two different moments of the same
    counter. *)

val snapshot_of_stats : stats -> snapshot
(** As {!snapshot}, from a bare {!stats} record — for embedders that
    hold only {!Cluster.control.transport_stats} (the service front-end
    printing periodic reports while the cluster is live, or racing its
    teardown). *)

val send : t -> src:int -> dst:int -> delay:float -> string -> unit
(** Ship one complete frame. [delay] is in clock units (loopback only).
    Never blocks; socket sends coalesce until the next {!poll} flush. *)

val send_frame : t -> src:int -> dst:int -> delay:float -> Buffer.t -> unit
(** As {!send}, straight out of an encode buffer (see
    {!Tr_wire.Codec.encode_frame}): the contents are copied out before
    returning, so the caller may reuse the buffer immediately. On the
    sockets backend this path allocates nothing. *)

val poll : t -> ?upto:float -> owner:int -> (Tr_wire.Frame.view -> unit) -> unit
(** Deliver every frame payload currently due for node [owner] to the
    callback, in arrival order, as borrowed views (valid only during the
    callback). Also flushes [owner]'s coalesced outgoing buffers — one
    write syscall per busy peer per poll. [upto] caps the delivery
    horizon in clock units (loopback only) so the caller can interleave
    timers and deliveries in due-time order; socket arrivals are
    physical and always due. Once [owner]'s shard has called {!wait},
    this touches only the connections the last wait reported ready plus
    those with unflushed bytes — O(ready), not O(connections). Must only
    be called from the shard that owns the node. *)

val next_due : t -> owner:int -> float option
(** Clock time (units) of the earliest queued delivery for [owner], if
    the backend can know it (loopback); [None] on sockets. *)

val poll_driven : t -> bool
(** True when frames arrive over file descriptors (sockets), so the
    shard loop should block in {!wait} for readiness; false when
    [next_due] is authoritative modulo the idle cap (loopback). *)

val wait :
  t ->
  ?extra_fds:Unix.file_descr list ->
  ?on_ready:(int -> unit) ->
  owners:int list ->
  timeout_s:float ->
  unit ->
  unit
(** Block until work may be available for [owners] or [timeout_s]
    elapses (capped at 0.25 s as a lost-wakeup safety net). On sockets
    this blocks in the calling shard's readiness set — owners' fds are
    registered on first call and stay registered, so the per-wait cost
    is O(ready). Each ready event invokes [on_ready owner] (possibly
    several times per owner) telling the caller which nodes to {!poll};
    [extra_fds] (read side) ride in the set as wake channels and are
    never reported through [on_ready] — an idle cluster burns no CPU.
    Pending reconnect deadlines bound the sleep and activate their owner
    when due. On loopback it simply sleeps. *)

val count_decode_error : t -> unit
(** Record an envelope-level decode failure (bad codec key/version or
    malformed message) against this transport's stats. *)

val close : t -> unit

val loopback : clock:Clock.t -> n:int -> t

val sockets :
  ?readiness:Readiness.backend ->
  ?spin:bool ->
  ?inproc:bool ->
  clock:Clock.t ->
  n:int ->
  owned:int list ->
  addrs:Unix.sockaddr array ->
  unit ->
  t
(** Host the nodes in [owned] (listeners are bound immediately); sends
    may target any node in [addrs]. [name] reports ["unix"] if the first
    address is a Unix-domain path, ["tcp"] otherwise.

    [readiness] forces a wait backend; the default honours
    [TR_READINESS] and otherwise picks the best available (epoll, then
    poll — see {!Readiness.default_backend}). Forcing (or resolving to)
    [Uring] switches the whole transport into completion mode: reads,
    writes and accepts become batched io_uring submissions flushed by
    the single enter of each {!wait}, and an unavailable uring falls
    back loudly down the chain.

    [spin] (default [TR_SPIN], else off) enables the adaptive
    spin-then-block window before each blocking wait; it only ever
    polls user-space signals, so it never adds syscalls. On a
    single-CPU host the window is gated off with a loud stderr notice:
    an idle shard's busy-poll would steal the working shard's only
    core, inverting the trade.

    [inproc] (default [TR_INPROC], else off) routes frames between
    co-hosted nodes through lock-free in-process mailboxes — identical
    framing and delivery order, zero syscalls per hop. A {!wait} that
    drained in-process work skips the kernel visit entirely when it has
    nothing to block for (in completion mode only when the submission
    and completion queues are both provably empty; in readiness mode at
    most 63 times in a row, so socket fds are still visited).
    Cross-process peers are unaffected.
    @raise Invalid_argument on bad [owned] ids or array size.
    @raise Failure on an unavailable forced backend or a bad
    [TR_READINESS] value. *)

val uds_addrs : dir:string -> n:int -> Unix.sockaddr array
(** [dir/node-<i>.sock] for each node. *)

val tcp_addrs : ?host:string -> base_port:int -> n:int -> unit -> Unix.sockaddr array
(** Consecutive ports on [host] (default 127.0.0.1). *)
