type backend = Uring | Epoll | Poll | Select

(* Interest/result bits shared with readiness_stubs.c. *)
let bit_read = 1
let bit_write = 2

external has_epoll : unit -> bool = "tr_rd_has_epoll"
external epoll_create : unit -> Unix.file_descr = "tr_rd_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> int -> int -> unit
  = "tr_rd_epoll_ctl"

external epoll_wait_stub :
  Unix.file_descr -> int array -> int array -> int -> int = "tr_rd_epoll_wait"

external poll_stub : int array -> int array -> int array -> int -> int -> int
  = "tr_rd_poll"

external raise_nofile_stub : unit -> int = "tr_rd_raise_nofile"
external ncpus : unit -> int = "tr_rd_ncpus"
external pin_cpu : int -> bool = "tr_rd_pin_cpu"

(* Unix.file_descr is an int on every Unix port; the transport keys its
   fd->peer table by this int. *)
external fd_int : Unix.file_descr -> int = "%identity"

let backend_name = function
  | Uring -> "uring"
  | Epoll -> "epoll"
  | Poll -> "poll"
  | Select -> "select"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "uring" | "io_uring" -> Ok Uring
  | "epoll" -> Ok Epoll
  | "poll" -> Ok Poll
  | "select" -> Ok Select
  | other ->
      Error
        (Printf.sprintf
           "unknown readiness backend %S (expected uring, epoll, poll or \
            select)"
           other)

let available = function
  | Uring -> Completion.available ()
  | Epoll -> has_epoll ()
  | Poll | Select -> true

(* The degradation order for forced-but-unavailable backends. Unforced
   defaults deliberately start at Epoll: uring changes the transport's
   whole submission model, so it is opt-in (TR_READINESS=uring /
   --readiness uring), never a silent default. *)
let fallback_chain = [ Uring; Epoll; Poll; Select ]

let fallback_from b =
  let rec after = function
    | [] -> [ Select ]
    | x :: rest -> if x = b then rest else after rest
  in
  let rec pick = function
    | [] -> Select
    | x :: rest -> if available x then x else pick rest
  in
  pick (after fallback_chain)

let resolve ?(source = "forced") b =
  if available b then b
  else begin
    let b' = fallback_from b in
    Printf.eprintf
      "Readiness: %s backend %s is unavailable on this system; falling back \
       to %s\n\
       %!"
      source (backend_name b) (backend_name b');
    b'
  end

let default_backend () =
  match Sys.getenv_opt "TR_READINESS" with
  | Some s when String.trim s <> "" -> (
      match backend_of_string s with
      | Error e -> failwith ("TR_READINESS: " ^ e)
      | Ok b -> resolve ~source:"TR_READINESS" b)
  | _ -> if available Epoll then Epoll else Poll

(* epoll_ctl ops, mirrored in the stub. *)
let op_add = 0
let op_mod = 1
let op_del = 2

type slot = {
  fd : Unix.file_descr;
  mutable interest : int;  (** bit_read / bit_write mask. *)
  mutable idx : int;  (** Position in the poll backend's dense arrays. *)
}

type epoll_state = {
  epfd : Unix.file_descr;
  (* Result staging, sized to the stub's per-call event cap. *)
  ev_fds : int array;
  ev_flags : int array;
}

type poll_state = {
  (* Dense parallel arrays over the registered slots; slot.idx gives
     O(1) removal by swapping the last entry in. *)
  mutable pfds : int array;
  mutable pevents : int array;
  mutable prevents : int array;
  mutable pcount : int;
  mutable porder : slot array;  (** Slot at each dense index. *)
}

type uring_state = {
  c : Completion.t;
  (* fd -> interest armed as a one-shot POLL_ADD (keyed by fd). A
     completion disarms; the next [wait] re-arms whatever is live, so
     the observable semantics stay level-triggered. *)
  armed : (int, int) Hashtbl.t;
}

type impl = E of epoll_state | P of poll_state | S | U of uring_state

type t = {
  which : backend;
  slots : (int, slot) Hashtbl.t;
  impl : impl;
  mutable closed : bool;
}

let max_events = 512

let create ?backend () =
  let which = match backend with Some b -> b | None -> default_backend () in
  if not (available which) then
    failwith
      (Printf.sprintf "Readiness: backend %s is unavailable on this platform"
         (backend_name which));
  let impl =
    match which with
    | Epoll ->
        E
          {
            epfd = epoll_create ();
            ev_fds = Array.make max_events 0;
            ev_flags = Array.make max_events 0;
          }
    | Poll ->
        P
          {
            pfds = Array.make 16 0;
            pevents = Array.make 16 0;
            prevents = Array.make 16 0;
            pcount = 0;
            porder = Array.make 16 { fd = Unix.stdin; interest = 0; idx = -1 };
          }
    | Select -> S
    | Uring ->
        (* Poll-only rings need no buffer arena. *)
        U
          {
            c = Completion.create ~entries:1024 ~slots:0 ~slot_bytes:0 ();
            armed = Hashtbl.create 64;
          }
  in
  { which; slots = Hashtbl.create 64; impl; closed = false }

let backend t = t.which
let fds_registered t = Hashtbl.length t.slots

let interest_of ~read ~write =
  (if read then bit_read else 0) lor if write then bit_write else 0

let poll_grow p =
  let cap = 2 * Array.length p.pfds in
  let grow a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 p.pcount;
    b
  in
  p.pfds <- grow p.pfds 0;
  p.pevents <- grow p.pevents 0;
  p.prevents <- grow p.prevents 0;
  p.porder <- grow p.porder p.porder.(0)

let set t fd ~read ~write =
  let key = fd_int fd in
  let interest = interest_of ~read ~write in
  match Hashtbl.find_opt t.slots key with
  | Some slot ->
      if slot.interest <> interest then begin
        slot.interest <- interest;
        match t.impl with
        | E e -> epoll_ctl e.epfd op_mod key interest
        | P p -> p.pevents.(slot.idx) <- interest
        | S -> ()
        | U u ->
            (* A stale one-shot poll watches the wrong mask; cancel it
               and let the next wait re-arm with the new interest. *)
            if Hashtbl.mem u.armed key then begin
              Completion.prep_cancel u.c key;
              Hashtbl.remove u.armed key
            end
      end
  | None ->
      let slot = { fd; interest; idx = -1 } in
      Hashtbl.replace t.slots key slot;
      (match t.impl with
      | E e -> epoll_ctl e.epfd op_add key interest
      | P p ->
          if p.pcount = Array.length p.pfds then poll_grow p;
          slot.idx <- p.pcount;
          p.pfds.(p.pcount) <- key;
          p.pevents.(p.pcount) <- interest;
          p.porder.(p.pcount) <- slot;
          p.pcount <- p.pcount + 1
      | S | U _ -> ())

let remove t fd =
  let key = fd_int fd in
  match Hashtbl.find_opt t.slots key with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.slots key;
      (match t.impl with
      | E e -> ( try epoll_ctl e.epfd op_del key 0 with Failure _ -> ())
      | P p ->
          let last = p.pcount - 1 in
          let i = slot.idx in
          if i <> last then begin
            p.pfds.(i) <- p.pfds.(last);
            p.pevents.(i) <- p.pevents.(last);
            p.porder.(i) <- p.porder.(last);
            p.porder.(i).idx <- i
          end;
          p.pcount <- last
      | S -> ()
      | U u ->
          if Hashtbl.mem u.armed key then begin
            Completion.prep_cancel u.c key;
            Hashtbl.remove u.armed key
          end)

(* Timeouts travel to the stubs as nanoseconds (epoll_pwait2 / ppoll);
   negative would mean "forever", which the transport's lost-wakeup cap
   never requests. *)
let timeout_ns timeout_s =
  if timeout_s <= 0.0 then 0
  else if timeout_s >= 2.0 then 2_000_000_000
  else int_of_float (Float.round (timeout_s *. 1e9))

let wait t ~timeout_s f =
  match t.impl with
  | E e ->
      let n =
        epoll_wait_stub e.epfd e.ev_fds e.ev_flags (timeout_ns timeout_s)
      in
      for i = 0 to n - 1 do
        let flags = e.ev_flags.(i) in
        f ~fd:e.ev_fds.(i)
          ~readable:(flags land bit_read <> 0)
          ~writable:(flags land bit_write <> 0)
      done;
      n
  | P p ->
      let ready =
        poll_stub p.pfds p.pevents p.prevents p.pcount (timeout_ns timeout_s)
      in
      if ready > 0 then
        for i = 0 to p.pcount - 1 do
          let flags = p.prevents.(i) in
          if flags <> 0 then
            f ~fd:p.pfds.(i)
              ~readable:(flags land bit_read <> 0)
              ~writable:(flags land bit_write <> 0)
        done;
      ready
  | S ->
      (* The wall itself: rebuild both lists and let the kernel rescan
         them, every single wait. Kept for forced baselines. *)
      let reads = ref [] and writes = ref [] in
      Hashtbl.iter
        (fun _ slot ->
          if slot.interest land bit_read <> 0 then reads := slot.fd :: !reads;
          if slot.interest land bit_write <> 0 then
            writes := slot.fd :: !writes)
        t.slots;
      let r, w, x =
        match Unix.select !reads !writes [] (Float.max 0.0 timeout_s) with
        | r -> r
        | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      ignore x;
      let tbl = Hashtbl.create 16 in
      List.iter (fun fd -> Hashtbl.replace tbl (fd_int fd) bit_read) r;
      List.iter
        (fun fd ->
          let key = fd_int fd in
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
          Hashtbl.replace tbl key (prev lor bit_write))
        w;
      Hashtbl.iter
        (fun key flags ->
          f ~fd:key
            ~readable:(flags land bit_read <> 0)
            ~writable:(flags land bit_write <> 0))
        tbl;
      Hashtbl.length tbl
  | U u ->
      (* Re-arm every live interest that lost its one-shot poll, flush
         the batch and wait in the same enter, then report whatever the
         CQ holds. Cancel completions (key 0) and completions for fds
         no longer registered are skipped. *)
      Hashtbl.iter
        (fun key slot ->
          if slot.interest <> 0 && not (Hashtbl.mem u.armed key) then begin
            Completion.prep_poll u.c slot.fd slot.interest key;
            Hashtbl.replace u.armed key slot.interest
          end)
        t.slots;
      let ready = ref 0 in
      ignore
        (Completion.enter u.c ~timeout_ns:(timeout_ns timeout_s)
           ~f:(fun ~key ~res ->
             if key <> 0 then begin
               Hashtbl.remove u.armed key;
               match Completion.classify res with
               | Ok -> (
                   match Hashtbl.find_opt t.slots key with
                   | Some slot when slot.interest <> 0 ->
                       let flags = Completion.poll_bits res in
                       if flags <> 0 then begin
                         incr ready;
                         f ~fd:key
                           ~readable:(flags land bit_read <> 0)
                           ~writable:(flags land bit_write <> 0)
                       end
                   | _ -> ())
               | Retry | Canceled | Error -> ()
             end)
          : int);
      !ready

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.impl with
    | E e -> ( try Unix.close e.epfd with Unix.Unix_error _ -> ())
    | P _ | S -> ()
    | U u -> Completion.close u.c
  end

let raise_nofile =
  let limit = lazy (raise_nofile_stub ()) in
  fun () -> Lazy.force limit
