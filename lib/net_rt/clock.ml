type t = { epoch : float; unit_s : float }

let create ?(unit_s = 1e-3) () =
  if not (Float.is_finite unit_s) || unit_s <= 0.0 then
    invalid_arg "Clock.create: unit_s must be positive and finite";
  { epoch = Unix.gettimeofday (); unit_s }

let unit_s t = t.unit_s
let now t = (Unix.gettimeofday () -. t.epoch) /. t.unit_s
let elapsed_wall t = Unix.gettimeofday () -. t.epoch

let sleep_until t units =
  let target = t.epoch +. (units *. t.unit_s) in
  let d = target -. Unix.gettimeofday () in
  if d > 0.0 then Unix.sleepf d
