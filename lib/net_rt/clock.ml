type t = { epoch : float; unit_s : float; last : float Atomic.t }

let create ?(unit_s = 1e-3) () =
  if not (Float.is_finite unit_s) || unit_s <= 0.0 then
    invalid_arg "Clock.create: unit_s must be positive and finite";
  { epoch = Unix.gettimeofday (); unit_s; last = Atomic.make 0.0 }

let unit_s t = t.unit_s

(* [Unix.gettimeofday] is the only timing source the container exposes
   and it is not monotonic: an NTP step backwards would reorder timer due
   times and frame delivery. Clamp reads to be non-decreasing across all
   domains so the runner's due-time ordering survives wall-clock steps. *)
let now t =
  let v = (Unix.gettimeofday () -. t.epoch) /. t.unit_s in
  let rec bump () =
    let prev = Atomic.get t.last in
    if v <= prev then prev
    else if Atomic.compare_and_set t.last prev v then v
    else bump ()
  in
  bump ()

let elapsed_wall t = now t *. t.unit_s

let sleep_until t units =
  let d = (units -. now t) *. t.unit_s in
  if d > 0.0 then Unix.sleepf d
