(* See wakeup.mli. The read side is what shards register in their
   readiness set; level-triggered semantics make the race-free contract
   simple: a byte written before the shard enters its wait still wakes
   it, and draining to EAGAIN before sleeping guarantees a burst of
   wakes cannot leave stale readability that spins the next wait. *)

type t = { r : Unix.file_descr; w : Unix.file_descr; buf : Bytes.t }

let create () =
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  { r; w; buf = Bytes.create 4096 }

let read_fd t = t.r

let byte = Bytes.make 1 '!'

let wake t =
  (* A full pipe is fine: readability is already pending, which is all
     a wake means. Any other error means we are shutting down. *)
  try ignore (Unix.single_write t.w byte 0 1) with Unix.Unix_error _ -> ()

let drain t =
  let rec go () =
    match Unix.read t.r t.buf 0 (Bytes.length t.buf) with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let close t =
  (try Unix.close t.r with Unix.Unix_error _ -> ());
  try Unix.close t.w with Unix.Unix_error _ -> ()
