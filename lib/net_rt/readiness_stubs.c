/* Readiness backend stubs: level-triggered epoll on Linux, poll(2) as
   the portable fallback, plus the small pieces of process plumbing the
   high-N cluster needs (RLIMIT_NOFILE raising, CPU pinning).

   All fds cross the boundary as plain ints — Unix.file_descr is an int
   on every Unix OCaml port. Blocking waits release the OCaml runtime
   lock so other domains keep running; while the lock is released a
   stop-the-world GC may move any heap block (the backend's result
   arrays included), so every value touched after reacquisition is
   registered as a root with CAMLparam, and errno is captured inside
   the blocking section before pending OCaml actions can clobber it. */

#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <errno.h>
#include <poll.h>
#include <sched.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>
#include <sys/resource.h>
#include <sys/time.h>

#include <caml/alloc.h>
#include <caml/custom.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

/* Interest/result bits shared with readiness.ml. */
#define TR_RD_READ 1
#define TR_RD_WRITE 2

static void tr_rd_fail_err(const char *what, int err)
{
  char msg[256];
  snprintf(msg, sizeof(msg), "Readiness: %s failed: %s", what, strerror(err));
  caml_failwith(msg);
}

static void tr_rd_fail(const char *what) { tr_rd_fail_err(what, errno); }

CAMLprim value tr_rd_has_epoll(value unit)
{
#ifdef __linux__
  return Val_true;
#else
  return Val_false;
#endif
}

#ifdef __linux__

CAMLprim value tr_rd_epoll_create(value unit)
{
  int fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) tr_rd_fail("epoll_create1");
  return Val_int(fd);
}

/* op: 0 = add, 1 = modify, 2 = delete. events: TR_RD_* bits. */
CAMLprim value tr_rd_epoll_ctl(value epfd, value op, value fd, value events)
{
  struct epoll_event ev;
  int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  memset(&ev, 0, sizeof(ev));
  if (Int_val(events) & TR_RD_READ) ev.events |= EPOLLIN;
  if (Int_val(events) & TR_RD_WRITE) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(fd);
  if (epoll_ctl(Int_val(epfd), ops[Int_val(op)], Int_val(fd), &ev) == -1)
    tr_rd_fail("epoll_ctl");
  return Val_unit;
}

#define TR_RD_MAX_EVENTS 512

/* Wait up to timeout_ns (nanoseconds; 0 polls) and write up to
   [Array.length fds] ready descriptors into fds/flags. Returns the
   ready count; EINTR reads as "nothing ready". epoll_pwait2 gives
   nanosecond timeouts where available; older kernels fall back to
   millisecond epoll_wait, rounding the timeout up so a short sleep
   never spins. */
CAMLprim value tr_rd_epoll_wait(value epfd, value fds, value flags,
                                value timeout_ns)
{
  CAMLparam4(epfd, fds, flags, timeout_ns);
  struct epoll_event evs[TR_RD_MAX_EVENTS];
  int cap = Wosize_val(fds);
  int ep = Int_val(epfd);
  int n, i, err;
  long long ns = Long_val(timeout_ns);
  if (cap > TR_RD_MAX_EVENTS) cap = TR_RD_MAX_EVENTS;
  caml_enter_blocking_section();
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 35)
#define TR_RD_HAVE_PWAIT2 1
#endif
#endif
#ifdef TR_RD_HAVE_PWAIT2
  {
    struct timespec ts;
    ts.tv_sec = ns / 1000000000LL;
    ts.tv_nsec = ns % 1000000000LL;
    n = epoll_pwait2(ep, evs, cap, &ts, NULL);
    if (n == -1 && errno == ENOSYS) {
      int ms = (int)((ns + 999999LL) / 1000000LL);
      n = epoll_wait(ep, evs, cap, ms);
    }
  }
#else
  n = epoll_wait(ep, evs, cap, (int)((ns + 999999LL) / 1000000LL));
#endif
  err = errno;
  caml_leave_blocking_section();
  if (n == -1) {
    if (err == EINTR) CAMLreturn(Val_int(0));
    tr_rd_fail_err("epoll_wait", err);
  }
  /* fds/flags are roots, so they track the arrays even if a GC moved
     them while this domain was blocked. */
  for (i = 0; i < n; i++) {
    int f = 0;
    /* Errors and hangups surface as readability (a read returns the
       error or EOF) and writability (the flush attempt fails and tears
       the connection down) so callers need no third path. */
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP))
      f |= TR_RD_READ;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) f |= TR_RD_WRITE;
    Field(fds, i) = Val_int(evs[i].data.fd);
    Field(flags, i) = Val_int(f);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__ */

CAMLprim value tr_rd_epoll_create(value unit)
{
  caml_failwith("Readiness: epoll backend unavailable on this platform");
}

CAMLprim value tr_rd_epoll_ctl(value epfd, value op, value fd, value events)
{
  caml_failwith("Readiness: epoll backend unavailable on this platform");
}

CAMLprim value tr_rd_epoll_wait(value epfd, value fds, value flags,
                                value timeout_ns)
{
  caml_failwith("Readiness: epoll backend unavailable on this platform");
}

#endif

/* poll(2) over parallel int arrays: fds.(i) with interest events.(i)
   (TR_RD_* bits); result bits land in revents.(i). Returns the number
   of entries with a non-zero result. One malloc per call — the poll
   backend is O(nfds) in the kernel anyway; it exists as the portable
   fallback, not the fast path. */
CAMLprim value tr_rd_poll(value fds, value events, value revents, value nfds,
                          value timeout_ns)
{
  CAMLparam5(fds, events, revents, nfds, timeout_ns);
  int n = Int_val(nfds);
  int ready, i, err;
  long long ns = Long_val(timeout_ns);
  struct timespec ts;
  struct pollfd *pfds = malloc(sizeof(struct pollfd) * (n > 0 ? n : 1));
  if (pfds == NULL) caml_failwith("Readiness: poll buffer allocation failed");
  for (i = 0; i < n; i++) {
    pfds[i].fd = Int_val(Field(fds, i));
    pfds[i].events = 0;
    pfds[i].revents = 0;
    if (Int_val(Field(events, i)) & TR_RD_READ) pfds[i].events |= POLLIN;
    if (Int_val(Field(events, i)) & TR_RD_WRITE) pfds[i].events |= POLLOUT;
  }
  ts.tv_sec = ns / 1000000000LL;
  ts.tv_nsec = ns % 1000000000LL;
  caml_enter_blocking_section();
#ifdef __linux__
  ready = ppoll(pfds, n, &ts, NULL);
#else
  ready = poll(pfds, n, (int)((ns + 999999LL) / 1000000LL));
#endif
  err = errno;
  caml_leave_blocking_section();
  /* revents is a root, so it tracks the array even if a GC moved it
     while this domain was blocked. The dense arrays start small enough
     to live on the minor heap, where motion is the common case. */
  if (ready == -1) {
    free(pfds);
    if (err == EINTR) {
      for (i = 0; i < n; i++) Field(revents, i) = Val_int(0);
      CAMLreturn(Val_int(0));
    }
    tr_rd_fail_err("poll", err);
  }
  for (i = 0; i < n; i++) {
    int f = 0;
    if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL))
      f |= TR_RD_READ;
    if (pfds[i].revents & (POLLOUT | POLLERR | POLLHUP)) f |= TR_RD_WRITE;
    Field(revents, i) = Val_int(f);
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}

/* Raise RLIMIT_NOFILE as far as this process may: first to a megafd
   ceiling (works with CAP_SYS_RESOURCE — containers often run as
   root with low defaults), else soft up to hard. Returns the resulting
   soft limit; never fails. */
CAMLprim value tr_rd_raise_nofile(value unit)
{
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_int(1024);
  {
    struct rlimit want;
    want.rlim_cur = 1048576;
    want.rlim_max = 1048576;
    if (rl.rlim_max != RLIM_INFINITY && rl.rlim_max > want.rlim_max)
      want.rlim_max = rl.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &want) == 0) return Val_int(want.rlim_cur);
  }
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &rl) == 0) return Val_int(rl.rlim_cur);
  }
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_int(1024);
  return Val_int(rl.rlim_cur == RLIM_INFINITY ? 1 << 30 : (long)rl.rlim_cur);
}

CAMLprim value tr_rd_ncpus(value unit)
{
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return Val_int(n > 0 ? (int)n : 1);
}

/* Pin the calling thread (a shard domain) to one CPU. Returns whether
   the kernel accepted; callers treat failure as advisory. */
CAMLprim value tr_rd_pin_cpu(value cpu)
{
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(Int_val(cpu) % CPU_SETSIZE, &set);
  return Val_bool(sched_setaffinity(0, sizeof(set), &set) == 0);
#else
  return Val_false;
#endif
}

/* ------------------------------------------------------------------ */
/* io_uring completion backend.

   Self-contained raw-syscall bindings — no liburing, no
   <linux/io_uring.h> (the build must not depend on kernel headers
   newer than the toolchain's). The UAPI layouts below are frozen ABI:
   the 64-byte SQE, 16-byte CQE and 120-byte setup params have been
   stable since the features we require (FEAT_SINGLE_MMAP, 5.4;
   FEAT_EXT_ARG, 5.11) existed, and tr_ur_probe refuses rings that
   lack either, so a mismatch degrades to the epoll backend rather
   than to corruption.

   GC discipline mirrors the epoll stubs: the ring struct and the slot
   arena live in C memory (stable across GC), kernel-visible buffers
   are arena slots only — OCaml bytes are blitted in/out at the
   boundary while the runtime lock is held — and the CQE drain fills
   CAMLparam-rooted int arrays after the blocking section ends. */

#ifdef __linux__

#include <stdint.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>

#ifdef __NR_io_uring_setup
#define TR_NR_io_uring_setup __NR_io_uring_setup
#define TR_NR_io_uring_enter __NR_io_uring_enter
#define TR_NR_io_uring_register __NR_io_uring_register
#else
/* asm-generic numbers, shared by x86_64/aarch64/riscv64. */
#define TR_NR_io_uring_setup 425
#define TR_NR_io_uring_enter 426
#define TR_NR_io_uring_register 427
#endif

#define TR_UR_OFF_SQ_RING 0ULL
#define TR_UR_OFF_SQES 0x10000000ULL

#define TR_UR_ENTER_GETEVENTS 1u
#define TR_UR_ENTER_EXT_ARG 8u

#define TR_UR_FEAT_SINGLE_MMAP (1u << 0)
#define TR_UR_FEAT_EXT_ARG (1u << 8)

#define TR_UR_OP_READ_FIXED 4
#define TR_UR_OP_WRITE_FIXED 5
#define TR_UR_OP_POLL_ADD 6
#define TR_UR_OP_ACCEPT 13
#define TR_UR_OP_ASYNC_CANCEL 14
#define TR_UR_OP_READ 22
#define TR_UR_OP_WRITE 23

#define TR_UR_REGISTER_BUFFERS 0

struct tr_ur_sqe {
  uint8_t opcode;
  uint8_t flags;
  uint16_t ioprio;
  int32_t fd;
  uint64_t off;
  uint64_t addr;
  uint32_t len;
  uint32_t opflags; /* union of rw_flags/poll32_events/accept_flags/... */
  uint64_t user_data;
  uint16_t buf_index;
  uint16_t personality;
  int32_t splice_fd_in;
  uint64_t pad2[2];
};

struct tr_ur_cqe {
  uint64_t user_data;
  int32_t res;
  uint32_t flags;
};

struct tr_ur_sqring_offsets {
  uint32_t head, tail, ring_mask, ring_entries, flags, dropped, array, resv1;
  uint64_t resv2;
};

struct tr_ur_cqring_offsets {
  uint32_t head, tail, ring_mask, ring_entries, overflow, cqes, flags, resv1;
  uint64_t resv2;
};

struct tr_ur_params {
  uint32_t sq_entries, cq_entries, flags, sq_thread_cpu, sq_thread_idle;
  uint32_t features, wq_fd, resv[3];
  struct tr_ur_sqring_offsets sq_off;
  struct tr_ur_cqring_offsets cq_off;
};

struct tr_ur_getevents_arg {
  uint64_t sigmask;
  uint32_t sigmask_sz;
  uint32_t pad;
  uint64_t ts;
};

struct tr_ur_kts {
  int64_t tv_sec;
  long long tv_nsec;
};

struct tr_ur {
  int ring_fd;
  unsigned sq_entries, cq_entries;
  unsigned *sq_head, *sq_tail, *sq_mask, *sq_array;
  unsigned *cq_head, *cq_tail, *cq_mask;
  struct tr_ur_sqe *sqes;
  struct tr_ur_cqe *cqes;
  void *ring_ptr;
  size_t ring_sz;
  void *sqes_ptr;
  size_t sqes_sz;
  int fixed; /* REGISTER_BUFFERS accepted: READ/WRITE_FIXED usable */
  unsigned long long enters; /* actual io_uring_enter syscalls made */
  char *arena;
  long nslots, slot_bytes;
};

static int tr_ur_sys_setup(unsigned entries, struct tr_ur_params *p)
{
  return (int)syscall(TR_NR_io_uring_setup, entries, p);
}

static int tr_ur_sys_enter(int fd, unsigned to_submit, unsigned min_complete,
                           unsigned flags, void *arg, size_t argsz)
{
  return (int)syscall(TR_NR_io_uring_enter, fd, to_submit, min_complete,
                      flags, arg, argsz);
}

static int tr_ur_sys_register(int fd, unsigned op, void *arg, unsigned nr)
{
  return (int)syscall(TR_NR_io_uring_register, fd, op, arg, nr);
}

static void tr_ur_free(struct tr_ur *u)
{
  if (u == NULL) return;
  if (u->sqes_ptr != NULL && u->sqes_ptr != MAP_FAILED)
    munmap(u->sqes_ptr, u->sqes_sz);
  if (u->ring_ptr != NULL && u->ring_ptr != MAP_FAILED)
    munmap(u->ring_ptr, u->ring_sz);
  if (u->ring_fd >= 0) close(u->ring_fd);
  free(u->arena);
  free(u);
}

/* Open a ring; NULL + errbuf on failure. Requires FEAT_SINGLE_MMAP and
   FEAT_EXT_ARG so the mmap layout and the enter timeout path are
   uniform; kernels predating either fall back to epoll upstream. */
static struct tr_ur *tr_ur_open(unsigned entries, long nslots,
                                long slot_bytes, char *errbuf, size_t errsz)
{
  struct tr_ur_params p;
  struct tr_ur *u = calloc(1, sizeof(*u));
  size_t sq_sz, cq_sz;
  unsigned i;
  if (u == NULL) {
    snprintf(errbuf, errsz, "out of memory");
    return NULL;
  }
  u->ring_fd = -1;
  memset(&p, 0, sizeof(p));
  u->ring_fd = tr_ur_sys_setup(entries, &p);
  if (u->ring_fd < 0) {
    snprintf(errbuf, errsz, "io_uring_setup: %s", strerror(errno));
    tr_ur_free(u);
    return NULL;
  }
  if ((p.features & TR_UR_FEAT_SINGLE_MMAP) == 0 ||
      (p.features & TR_UR_FEAT_EXT_ARG) == 0) {
    snprintf(errbuf, errsz, "kernel io_uring too old (features=0x%x)",
             p.features);
    tr_ur_free(u);
    return NULL;
  }
  u->sq_entries = p.sq_entries;
  u->cq_entries = p.cq_entries;
  sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(struct tr_ur_cqe);
  u->ring_sz = sq_sz > cq_sz ? sq_sz : cq_sz;
  u->ring_ptr = mmap(NULL, u->ring_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, u->ring_fd,
                     TR_UR_OFF_SQ_RING);
  if (u->ring_ptr == MAP_FAILED) {
    snprintf(errbuf, errsz, "mmap(sq ring): %s", strerror(errno));
    tr_ur_free(u);
    return NULL;
  }
  u->sqes_sz = p.sq_entries * sizeof(struct tr_ur_sqe);
  u->sqes_ptr = mmap(NULL, u->sqes_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, u->ring_fd, TR_UR_OFF_SQES);
  if (u->sqes_ptr == MAP_FAILED) {
    snprintf(errbuf, errsz, "mmap(sqes): %s", strerror(errno));
    tr_ur_free(u);
    return NULL;
  }
  u->sq_head = (unsigned *)((char *)u->ring_ptr + p.sq_off.head);
  u->sq_tail = (unsigned *)((char *)u->ring_ptr + p.sq_off.tail);
  u->sq_mask = (unsigned *)((char *)u->ring_ptr + p.sq_off.ring_mask);
  u->sq_array = (unsigned *)((char *)u->ring_ptr + p.sq_off.array);
  u->cq_head = (unsigned *)((char *)u->ring_ptr + p.cq_off.head);
  u->cq_tail = (unsigned *)((char *)u->ring_ptr + p.cq_off.tail);
  u->cq_mask = (unsigned *)((char *)u->ring_ptr + p.cq_off.ring_mask);
  u->cqes = (struct tr_ur_cqe *)((char *)u->ring_ptr + p.cq_off.cqes);
  u->sqes = (struct tr_ur_sqe *)u->sqes_ptr;
  /* Identity map: slot i of the indirection array names sqe i, so the
     sqe at (tail & mask) is always the one the kernel picks up. */
  for (i = 0; i < p.sq_entries; i++) u->sq_array[i] = i;
  u->nslots = nslots;
  u->slot_bytes = slot_bytes;
  if (nslots > 0) {
    u->arena = malloc((size_t)nslots * (size_t)slot_bytes);
    if (u->arena == NULL) {
      snprintf(errbuf, errsz, "slot arena allocation failed");
      tr_ur_free(u);
      return NULL;
    }
    {
      /* Pre-registering the arena lets reads/writes use the _FIXED
         opcodes (no per-op get_user_pages). Rejection — typically
         RLIMIT_MEMLOCK — is not fatal: plain READ/WRITE still work. */
      struct iovec *iov = malloc(sizeof(struct iovec) * nslots);
      if (iov != NULL) {
        long s;
        for (s = 0; s < nslots; s++) {
          iov[s].iov_base = u->arena + s * slot_bytes;
          iov[s].iov_len = slot_bytes;
        }
        u->fixed = tr_ur_sys_register(u->ring_fd, TR_UR_REGISTER_BUFFERS,
                                      iov, (unsigned)nslots) == 0;
        free(iov);
      }
    }
  }
  return u;
}

#define Tr_ur_val(v) (*(struct tr_ur **)Data_custom_val(v))

static void tr_ur_finalize(value v)
{
  struct tr_ur *u = Tr_ur_val(v);
  if (u != NULL) {
    tr_ur_free(u);
    Tr_ur_val(v) = NULL;
  }
}

static struct custom_operations tr_ur_ops = {
  "tokenring.net_rt.uring",
  tr_ur_finalize,
  custom_compare_default,
  custom_hash_default,
  custom_serialize_default,
  custom_deserialize_default,
  custom_compare_ext_default,
  custom_fixed_length_default
};

static struct tr_ur *tr_ur_get(value v)
{
  struct tr_ur *u = Tr_ur_val(v);
  if (u == NULL) caml_failwith("Completion: ring used after close");
  return u;
}

CAMLprim value tr_ur_probe(value unit)
{
  char err[128];
  struct tr_ur *u = tr_ur_open(4, 0, 0, err, sizeof(err));
  if (u == NULL) return Val_false;
  tr_ur_free(u);
  return Val_true;
}

CAMLprim value tr_ur_create(value ventries, value vnslots, value vslot_bytes)
{
  CAMLparam3(ventries, vnslots, vslot_bytes);
  CAMLlocal1(res);
  char err[256];
  struct tr_ur *u = tr_ur_open((unsigned)Int_val(ventries),
                               Long_val(vnslots), Long_val(vslot_bytes), err,
                               sizeof(err));
  if (u == NULL) {
    char msg[320];
    snprintf(msg, sizeof(msg), "Completion: %s", err);
    caml_failwith(msg);
  }
  res = caml_alloc_custom(&tr_ur_ops, sizeof(struct tr_ur *), 0, 1);
  Tr_ur_val(res) = u;
  CAMLreturn(res);
}

CAMLprim value tr_ur_close_stub(value vt)
{
  struct tr_ur *u = Tr_ur_val(vt);
  if (u != NULL) {
    tr_ur_free(u);
    Tr_ur_val(vt) = NULL;
  }
  return Val_unit;
}

CAMLprim value tr_ur_fixed(value vt)
{
  return Val_bool(tr_ur_get(vt)->fixed);
}

CAMLprim value tr_ur_enters(value vt)
{
  return Val_long((long)tr_ur_get(vt)->enters);
}

CAMLprim value tr_ur_sq_space(value vt)
{
  struct tr_ur *u = tr_ur_get(vt);
  unsigned head = __atomic_load_n(u->sq_head, __ATOMIC_ACQUIRE);
  return Val_int((int)(u->sq_entries - (*u->sq_tail - head)));
}

CAMLprim value tr_ur_sq_pending(value vt)
{
  struct tr_ur *u = tr_ur_get(vt);
  unsigned head = __atomic_load_n(u->sq_head, __ATOMIC_ACQUIRE);
  return Val_int((int)(*u->sq_tail - head));
}

CAMLprim value tr_ur_cq_pending(value vt)
{
  struct tr_ur *u = tr_ur_get(vt);
  unsigned tail = __atomic_load_n(u->cq_tail, __ATOMIC_ACQUIRE);
  return Val_bool(tail != *u->cq_head);
}

/* Claim the next sqe, zeroed, or NULL when the SQ is full (the caller
   flushes with a submit-only enter and retries). The tail store is
   RELEASE so the kernel sees a fully-written sqe. */
static struct tr_ur_sqe *tr_ur_next_sqe(struct tr_ur *u)
{
  unsigned head = __atomic_load_n(u->sq_head, __ATOMIC_ACQUIRE);
  unsigned tail = *u->sq_tail;
  struct tr_ur_sqe *sqe;
  if (tail - head >= u->sq_entries) return NULL;
  sqe = &u->sqes[tail & *u->sq_mask];
  memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

static void tr_ur_push_sqe(struct tr_ur *u)
{
  __atomic_store_n(u->sq_tail, *u->sq_tail + 1, __ATOMIC_RELEASE);
}

CAMLprim value tr_ur_prep_poll(value vt, value vfd, value vbits, value vkey)
{
  struct tr_ur *u = tr_ur_get(vt);
  struct tr_ur_sqe *sqe = tr_ur_next_sqe(u);
  unsigned mask = 0;
  if (sqe == NULL) return Val_false;
  if (Int_val(vbits) & TR_RD_READ) mask |= POLLIN | POLLRDHUP;
  if (Int_val(vbits) & TR_RD_WRITE) mask |= POLLOUT;
  mask |= POLLERR | POLLHUP;
  sqe->opcode = TR_UR_OP_POLL_ADD;
  sqe->fd = Int_val(vfd);
  sqe->opflags = mask; /* poll32_events; LE layout matches host here */
  sqe->user_data = (uint64_t)Long_val(vkey);
  tr_ur_push_sqe(u);
  return Val_true;
}

CAMLprim value tr_ur_prep_cancel(value vt, value vkey)
{
  struct tr_ur *u = tr_ur_get(vt);
  struct tr_ur_sqe *sqe = tr_ur_next_sqe(u);
  if (sqe == NULL) return Val_false;
  sqe->opcode = TR_UR_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = (uint64_t)Long_val(vkey);
  sqe->user_data = 0; /* key 0 = ignored by the dispatcher */
  tr_ur_push_sqe(u);
  return Val_true;
}

CAMLprim value tr_ur_prep_read(value vt, value vfd, value vslot, value vkey)
{
  struct tr_ur *u = tr_ur_get(vt);
  struct tr_ur_sqe *sqe = tr_ur_next_sqe(u);
  long slot = Long_val(vslot);
  if (sqe == NULL) return Val_false;
  if (slot < 0 || slot >= u->nslots)
    caml_failwith("Completion: read slot out of range");
  sqe->opcode = u->fixed ? TR_UR_OP_READ_FIXED : TR_UR_OP_READ;
  sqe->fd = Int_val(vfd);
  sqe->addr = (uint64_t)(uintptr_t)(u->arena + slot * u->slot_bytes);
  sqe->len = (uint32_t)u->slot_bytes;
  sqe->buf_index = (uint16_t)slot;
  sqe->user_data = (uint64_t)Long_val(vkey);
  tr_ur_push_sqe(u);
  return Val_true;
}

CAMLprim value tr_ur_prep_write(value vt, value vfd, value vslot, value vlen,
                                value vkey)
{
  struct tr_ur *u = tr_ur_get(vt);
  struct tr_ur_sqe *sqe = tr_ur_next_sqe(u);
  long slot = Long_val(vslot);
  long len = Long_val(vlen);
  if (sqe == NULL) return Val_false;
  if (slot < 0 || slot >= u->nslots)
    caml_failwith("Completion: write slot out of range");
  if (len < 0 || len > u->slot_bytes)
    caml_failwith("Completion: write length out of range");
  sqe->opcode = u->fixed ? TR_UR_OP_WRITE_FIXED : TR_UR_OP_WRITE;
  sqe->fd = Int_val(vfd);
  sqe->addr = (uint64_t)(uintptr_t)(u->arena + slot * u->slot_bytes);
  sqe->len = (uint32_t)len;
  sqe->buf_index = (uint16_t)slot;
  sqe->user_data = (uint64_t)Long_val(vkey);
  tr_ur_push_sqe(u);
  return Val_true;
}

CAMLprim value tr_ur_prep_accept(value vt, value vfd, value vkey)
{
  struct tr_ur *u = tr_ur_get(vt);
  struct tr_ur_sqe *sqe = tr_ur_next_sqe(u);
  if (sqe == NULL) return Val_false;
  sqe->opcode = TR_UR_OP_ACCEPT;
  sqe->fd = Int_val(vfd);
  sqe->opflags = SOCK_NONBLOCK | SOCK_CLOEXEC; /* accept_flags */
  sqe->user_data = (uint64_t)Long_val(vkey);
  tr_ur_push_sqe(u);
  return Val_true;
}

CAMLprim value tr_ur_blit_to_slot(value vt, value vslot, value vbuf,
                                  value vpos, value vlen)
{
  struct tr_ur *u = tr_ur_get(vt);
  long slot = Long_val(vslot);
  long len = Long_val(vlen);
  if (slot < 0 || slot >= u->nslots || len < 0 || len > u->slot_bytes)
    caml_failwith("Completion: blit_to_slot out of range");
  memcpy(u->arena + slot * u->slot_bytes, Bytes_val(vbuf) + Long_val(vpos),
         (size_t)len);
  return Val_unit;
}

CAMLprim value tr_ur_blit_from_slot(value vt, value vslot, value vbuf,
                                    value vpos, value vlen)
{
  struct tr_ur *u = tr_ur_get(vt);
  long slot = Long_val(vslot);
  long len = Long_val(vlen);
  if (slot < 0 || slot >= u->nslots || len < 0 || len > u->slot_bytes)
    caml_failwith("Completion: blit_from_slot out of range");
  memcpy(Bytes_val(vbuf) + Long_val(vpos), u->arena + slot * u->slot_bytes,
         (size_t)len);
  return Val_unit;
}

/* Submit everything pending and (when timeout_ns > 0) block for one
   completion or the timeout, then drain up to [Array.length keys]
   CQEs into keys/ress. Returns the drained count; callers loop while
   tr_ur_cq_pending for the remainder. A timeout_ns of 0 with nothing
   to submit makes no syscall at all — that is what lets the adaptive
   spin window poll the CQ for free. */
CAMLprim value tr_ur_enter(value vt, value vtimeout_ns, value vkeys,
                           value vress)
{
  CAMLparam4(vt, vtimeout_ns, vkeys, vress);
  struct tr_ur *u = tr_ur_get(vt);
  long long ns = Long_val(vtimeout_ns);
  int cap = Wosize_val(vkeys);
  int need_wait = ns > 0;
  unsigned head, tail;
  int n = 0;
  if (Wosize_val(vress) < (unsigned)cap) cap = Wosize_val(vress);
  head = __atomic_load_n(u->sq_head, __ATOMIC_ACQUIRE);
  {
    unsigned to_submit = *u->sq_tail - head;
    if (to_submit > 0 || need_wait) {
      struct tr_ur_kts ts;
      struct tr_ur_getevents_arg arg;
      int ret, err;
      memset(&arg, 0, sizeof(arg));
      ts.tv_sec = ns / 1000000000LL;
      ts.tv_nsec = ns % 1000000000LL;
      arg.ts = (uint64_t)(uintptr_t)&ts;
      caml_enter_blocking_section();
      ret = tr_ur_sys_enter(
          u->ring_fd, to_submit, need_wait ? 1 : 0,
          need_wait ? (TR_UR_ENTER_GETEVENTS | TR_UR_ENTER_EXT_ARG) : 0,
          need_wait ? (void *)&arg : NULL,
          need_wait ? sizeof(arg) : 0);
      err = errno;
      caml_leave_blocking_section();
      u->enters++;
      if (ret < 0 && err != EINTR && err != ETIME && err != EBUSY &&
          err != EAGAIN)
        tr_rd_fail_err("io_uring_enter", err);
      /* EINTR/ETIME: nothing consumed or already accounted — the SQ
         head is kernel-maintained, so pending is always tail - head
         and needs no bookkeeping here. EBUSY: CQ saturated; draining
         below is exactly the remedy. */
    }
  }
  head = *u->cq_head;
  tail = __atomic_load_n(u->cq_tail, __ATOMIC_ACQUIRE);
  while (head != tail && n < cap) {
    struct tr_ur_cqe *cqe = &u->cqes[head & *u->cq_mask];
    Field(vkeys, n) = Val_long((long)cqe->user_data);
    Field(vress, n) = Val_long((long)cqe->res);
    head++;
    n++;
  }
  __atomic_store_n(u->cq_head, head, __ATOMIC_RELEASE);
  CAMLreturn(Val_int(n));
}

/* Classify a CQE res: 0 = success (res >= 0), 1 = transient (retry the
   op), 2 = canceled, 3 = hard error. */
CAMLprim value tr_ur_res_class(value vres)
{
  long res = Long_val(vres);
  if (res >= 0) return Val_int(0);
  switch ((int)-res) {
  case EAGAIN:
#if EAGAIN != EWOULDBLOCK
  case EWOULDBLOCK:
#endif
  case EINTR:
    return Val_int(1);
  case ECANCELED:
    return Val_int(2);
  default:
    return Val_int(3);
  }
}

/* Translate a poll-completion res (a poll revents mask) into TR_RD_*
   bits, folding errors/hangups into both directions exactly like the
   epoll and poll backends do. */
CAMLprim value tr_ur_poll_bits(value vres)
{
  long res = Long_val(vres);
  int f = 0;
  if (res < 0) return Val_int(0);
  if (res & (POLLIN | POLLERR | POLLHUP | POLLRDHUP | POLLNVAL))
    f |= TR_RD_READ;
  if (res & (POLLOUT | POLLERR | POLLHUP)) f |= TR_RD_WRITE;
  return Val_int(f);
}

#else /* !__linux__ */

CAMLprim value tr_ur_probe(value unit) { return Val_false; }

static value tr_ur_unavailable(void)
{
  caml_failwith("Completion: io_uring unavailable on this platform");
}

CAMLprim value tr_ur_create(value a, value b, value c)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_close_stub(value a) { return tr_ur_unavailable(); }
CAMLprim value tr_ur_fixed(value a) { return tr_ur_unavailable(); }
CAMLprim value tr_ur_enters(value a) { return tr_ur_unavailable(); }
CAMLprim value tr_ur_sq_space(value a) { return tr_ur_unavailable(); }
CAMLprim value tr_ur_sq_pending(value a) { return tr_ur_unavailable(); }
CAMLprim value tr_ur_cq_pending(value a) { return tr_ur_unavailable(); }
CAMLprim value tr_ur_prep_poll(value a, value b, value c, value d)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_prep_cancel(value a, value b)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_prep_read(value a, value b, value c, value d)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_prep_write(value a, value b, value c, value d, value e)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_prep_accept(value a, value b, value c)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_blit_to_slot(value a, value b, value c, value d, value e)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_blit_from_slot(value a, value b, value c, value d,
                                    value e)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_enter(value a, value b, value c, value d)
{
  return tr_ur_unavailable();
}
CAMLprim value tr_ur_res_class(value vres) { return Val_int(3); }
CAMLprim value tr_ur_poll_bits(value vres) { return Val_int(0); }

#endif /* __linux__ */
