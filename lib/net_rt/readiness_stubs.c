/* Readiness backend stubs: level-triggered epoll on Linux, poll(2) as
   the portable fallback, plus the small pieces of process plumbing the
   high-N cluster needs (RLIMIT_NOFILE raising, CPU pinning).

   All fds cross the boundary as plain ints — Unix.file_descr is an int
   on every Unix OCaml port. Blocking waits release the OCaml runtime
   lock so other domains keep running; while the lock is released a
   stop-the-world GC may move any heap block (the backend's result
   arrays included), so every value touched after reacquisition is
   registered as a root with CAMLparam, and errno is captured inside
   the blocking section before pending OCaml actions can clobber it. */

#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <errno.h>
#include <poll.h>
#include <sched.h>
#include <stdlib.h>
#include <string.h>
#include <unistd.h>
#include <sys/resource.h>
#include <sys/time.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

/* Interest/result bits shared with readiness.ml. */
#define TR_RD_READ 1
#define TR_RD_WRITE 2

static void tr_rd_fail_err(const char *what, int err)
{
  char msg[256];
  snprintf(msg, sizeof(msg), "Readiness: %s failed: %s", what, strerror(err));
  caml_failwith(msg);
}

static void tr_rd_fail(const char *what) { tr_rd_fail_err(what, errno); }

CAMLprim value tr_rd_has_epoll(value unit)
{
#ifdef __linux__
  return Val_true;
#else
  return Val_false;
#endif
}

#ifdef __linux__

CAMLprim value tr_rd_epoll_create(value unit)
{
  int fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) tr_rd_fail("epoll_create1");
  return Val_int(fd);
}

/* op: 0 = add, 1 = modify, 2 = delete. events: TR_RD_* bits. */
CAMLprim value tr_rd_epoll_ctl(value epfd, value op, value fd, value events)
{
  struct epoll_event ev;
  int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  memset(&ev, 0, sizeof(ev));
  if (Int_val(events) & TR_RD_READ) ev.events |= EPOLLIN;
  if (Int_val(events) & TR_RD_WRITE) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(fd);
  if (epoll_ctl(Int_val(epfd), ops[Int_val(op)], Int_val(fd), &ev) == -1)
    tr_rd_fail("epoll_ctl");
  return Val_unit;
}

#define TR_RD_MAX_EVENTS 512

/* Wait up to timeout_ns (nanoseconds; 0 polls) and write up to
   [Array.length fds] ready descriptors into fds/flags. Returns the
   ready count; EINTR reads as "nothing ready". epoll_pwait2 gives
   nanosecond timeouts where available; older kernels fall back to
   millisecond epoll_wait, rounding the timeout up so a short sleep
   never spins. */
CAMLprim value tr_rd_epoll_wait(value epfd, value fds, value flags,
                                value timeout_ns)
{
  CAMLparam4(epfd, fds, flags, timeout_ns);
  struct epoll_event evs[TR_RD_MAX_EVENTS];
  int cap = Wosize_val(fds);
  int ep = Int_val(epfd);
  int n, i, err;
  long long ns = Long_val(timeout_ns);
  if (cap > TR_RD_MAX_EVENTS) cap = TR_RD_MAX_EVENTS;
  caml_enter_blocking_section();
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 35)
#define TR_RD_HAVE_PWAIT2 1
#endif
#endif
#ifdef TR_RD_HAVE_PWAIT2
  {
    struct timespec ts;
    ts.tv_sec = ns / 1000000000LL;
    ts.tv_nsec = ns % 1000000000LL;
    n = epoll_pwait2(ep, evs, cap, &ts, NULL);
    if (n == -1 && errno == ENOSYS) {
      int ms = (int)((ns + 999999LL) / 1000000LL);
      n = epoll_wait(ep, evs, cap, ms);
    }
  }
#else
  n = epoll_wait(ep, evs, cap, (int)((ns + 999999LL) / 1000000LL));
#endif
  err = errno;
  caml_leave_blocking_section();
  if (n == -1) {
    if (err == EINTR) CAMLreturn(Val_int(0));
    tr_rd_fail_err("epoll_wait", err);
  }
  /* fds/flags are roots, so they track the arrays even if a GC moved
     them while this domain was blocked. */
  for (i = 0; i < n; i++) {
    int f = 0;
    /* Errors and hangups surface as readability (a read returns the
       error or EOF) and writability (the flush attempt fails and tears
       the connection down) so callers need no third path. */
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP))
      f |= TR_RD_READ;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) f |= TR_RD_WRITE;
    Field(fds, i) = Val_int(evs[i].data.fd);
    Field(flags, i) = Val_int(f);
  }
  CAMLreturn(Val_int(n));
}

#else /* !__linux__ */

CAMLprim value tr_rd_epoll_create(value unit)
{
  caml_failwith("Readiness: epoll backend unavailable on this platform");
}

CAMLprim value tr_rd_epoll_ctl(value epfd, value op, value fd, value events)
{
  caml_failwith("Readiness: epoll backend unavailable on this platform");
}

CAMLprim value tr_rd_epoll_wait(value epfd, value fds, value flags,
                                value timeout_ns)
{
  caml_failwith("Readiness: epoll backend unavailable on this platform");
}

#endif

/* poll(2) over parallel int arrays: fds.(i) with interest events.(i)
   (TR_RD_* bits); result bits land in revents.(i). Returns the number
   of entries with a non-zero result. One malloc per call — the poll
   backend is O(nfds) in the kernel anyway; it exists as the portable
   fallback, not the fast path. */
CAMLprim value tr_rd_poll(value fds, value events, value revents, value nfds,
                          value timeout_ns)
{
  CAMLparam5(fds, events, revents, nfds, timeout_ns);
  int n = Int_val(nfds);
  int ready, i, err;
  long long ns = Long_val(timeout_ns);
  struct timespec ts;
  struct pollfd *pfds = malloc(sizeof(struct pollfd) * (n > 0 ? n : 1));
  if (pfds == NULL) caml_failwith("Readiness: poll buffer allocation failed");
  for (i = 0; i < n; i++) {
    pfds[i].fd = Int_val(Field(fds, i));
    pfds[i].events = 0;
    pfds[i].revents = 0;
    if (Int_val(Field(events, i)) & TR_RD_READ) pfds[i].events |= POLLIN;
    if (Int_val(Field(events, i)) & TR_RD_WRITE) pfds[i].events |= POLLOUT;
  }
  ts.tv_sec = ns / 1000000000LL;
  ts.tv_nsec = ns % 1000000000LL;
  caml_enter_blocking_section();
#ifdef __linux__
  ready = ppoll(pfds, n, &ts, NULL);
#else
  ready = poll(pfds, n, (int)((ns + 999999LL) / 1000000LL));
#endif
  err = errno;
  caml_leave_blocking_section();
  /* revents is a root, so it tracks the array even if a GC moved it
     while this domain was blocked. The dense arrays start small enough
     to live on the minor heap, where motion is the common case. */
  if (ready == -1) {
    free(pfds);
    if (err == EINTR) {
      for (i = 0; i < n; i++) Field(revents, i) = Val_int(0);
      CAMLreturn(Val_int(0));
    }
    tr_rd_fail_err("poll", err);
  }
  for (i = 0; i < n; i++) {
    int f = 0;
    if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL))
      f |= TR_RD_READ;
    if (pfds[i].revents & (POLLOUT | POLLERR | POLLHUP)) f |= TR_RD_WRITE;
    Field(revents, i) = Val_int(f);
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}

/* Raise RLIMIT_NOFILE as far as this process may: first to a megafd
   ceiling (works with CAP_SYS_RESOURCE — containers often run as
   root with low defaults), else soft up to hard. Returns the resulting
   soft limit; never fails. */
CAMLprim value tr_rd_raise_nofile(value unit)
{
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_int(1024);
  {
    struct rlimit want;
    want.rlim_cur = 1048576;
    want.rlim_max = 1048576;
    if (rl.rlim_max != RLIM_INFINITY && rl.rlim_max > want.rlim_max)
      want.rlim_max = rl.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &want) == 0) return Val_int(want.rlim_cur);
  }
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    if (setrlimit(RLIMIT_NOFILE, &rl) == 0) return Val_int(rl.rlim_cur);
  }
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_int(1024);
  return Val_int(rl.rlim_cur == RLIM_INFINITY ? 1 << 30 : (long)rl.rlim_cur);
}

CAMLprim value tr_rd_ncpus(value unit)
{
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return Val_int(n > 0 ? (int)n : 1);
}

/* Pin the calling thread (a shard domain) to one CPU. Returns whether
   the kernel accepted; callers treat failure as advisory. */
CAMLprim value tr_rd_pin_cpu(value cpu)
{
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(Int_val(cpu) % CPU_SETSIZE, &set);
  return Val_bool(sched_setaffinity(0, sizeof(set), &set) == 0);
#else
  return Val_false;
#endif
}
