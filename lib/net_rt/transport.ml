open Tr_wire

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
  reconnects : int Atomic.t;
  frames_dropped : int Atomic.t;
}

let make_stats () =
  {
    frames_sent = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    frames_received = Atomic.make 0;
    decode_errors = Atomic.make 0;
    reconnects = Atomic.make 0;
    frames_dropped = Atomic.make 0;
  }

type t = {
  name : string;
  stats : stats;
  poll_driven : bool;
  send : src:int -> dst:int -> delay:float -> string -> unit;
  poll : owner:int -> upto:float -> (string -> unit) -> unit;
  next_due : owner:int -> float option;
  close : unit -> unit;
}

let name t = t.name
let stats t = t.stats
let poll_driven t = t.poll_driven
let send t = t.send
let poll t ?(upto = infinity) ~owner f = t.poll ~owner ~upto f
let next_due t = t.next_due
let count_decode_error t = Atomic.incr t.stats.decode_errors
let close t = t.close ()

(* Pull every complete payload out of [dec], counting frames and skips. *)
let drain_decoder stats dec f =
  let rec go () =
    match Frame.Decoder.next dec with
    | Frame.Decoder.Frame payload ->
        Atomic.incr stats.frames_received;
        f payload;
        go ()
    | Frame.Decoder.Skip _ ->
        Atomic.incr stats.decode_errors;
        go ()
    | Frame.Decoder.Await -> ()
  in
  go ()

let check_node ~what ~n i =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Transport: %s node %d out of range" what i)

(* ------------------------------------------------------------------ *)
(* Loopback                                                            *)
(* ------------------------------------------------------------------ *)

module Loopback = struct
  type node = {
    (* Cross-domain side: producers push (due, frame). *)
    inbox : (float * string) Mailbox.t;
    (* Owner-shard side: deliveries ordered by due time. *)
    pending : string Tr_sim.Pqueue.t;
    dec : Frame.Decoder.t;
  }

  let make_node () =
    {
      inbox = Mailbox.create ();
      pending = Tr_sim.Pqueue.create ();
      dec = Frame.Decoder.create ();
    }

  (* Move everything the other domains queued into the owner's heap. *)
  let settle node =
    List.iter
      (fun (due, frame) -> Tr_sim.Pqueue.push node.pending ~time:due frame)
      (Mailbox.drain node.inbox)

  let create ~clock ~n =
    let stats = make_stats () in
    let nodes = Array.init n (fun _ -> make_node ()) in
    let send ~src ~dst ~delay frame =
      check_node ~what:"send src" ~n src;
      check_node ~what:"send dst" ~n dst;
      ignore src;
      Atomic.incr stats.frames_sent;
      ignore (Atomic.fetch_and_add stats.bytes_sent (String.length frame));
      let due = Clock.now clock +. Float.max 0.0 delay in
      Mailbox.push nodes.(dst).inbox (due, frame)
    in
    let poll ~owner ~upto f =
      check_node ~what:"poll owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      let now = Float.min (Clock.now clock) upto in
      let rec deliver () =
        if
          (not (Tr_sim.Pqueue.is_empty node.pending))
          && Tr_sim.Pqueue.top_time_exn node.pending <= now
        then begin
          let frame = Tr_sim.Pqueue.pop_exn node.pending in
          Frame.Decoder.feed node.dec frame;
          drain_decoder stats node.dec f;
          deliver ()
        end
      in
      deliver ()
    in
    let next_due ~owner =
      check_node ~what:"next_due owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      Tr_sim.Pqueue.peek_time node.pending
    in
    {
      name = "loopback";
      stats;
      poll_driven = false;
      send;
      poll;
      next_due;
      close = (fun () -> ());
    }
end

(* ------------------------------------------------------------------ *)
(* Sockets (TCP / Unix-domain)                                         *)
(* ------------------------------------------------------------------ *)

module Sockets = struct
  let backoff_min = 0.01
  let backoff_max = 1.0

  (* Cap on bytes queued behind an unreachable peer. Past this, new
     frames are dropped whole (never split — that would corrupt the
     framing) and counted in [frames_dropped]. *)
  let high_water = 4 * 1024 * 1024

  (* [Unix.write_substring] cannot pass MSG_NOSIGNAL, so a write to a
     peer that closed its end raises SIGPIPE and the default handler
     kills the whole process before [tear_down] can run. Ignore it once,
     process-wide, so the failure surfaces as EPIPE instead. *)
  let ignore_sigpipe =
    lazy
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

  type conn_in = { fd : Unix.file_descr; dec : Frame.Decoder.t }

  type conn_out = {
    addr : Unix.sockaddr;
    mutable fd : Unix.file_descr option;
    queue : string Queue.t;  (** Frames accepted but not yet written. *)
    mutable head_off : int;  (** Bytes of the head frame already written. *)
    mutable queued_bytes : int;  (** Unwritten bytes across the queue. *)
    mutable backoff : float;
    mutable retry_at : float;  (** Wall time before which we won't dial. *)
  }

  type node = {
    id : int;
    listen : Unix.file_descr;
    mutable ins : conn_in list;
    outs : conn_out option array;
    readbuf : Bytes.t;
  }

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let tear_down stats co =
    (match co.fd with Some fd -> close_quietly fd | None -> ());
    co.fd <- None;
    co.backoff <- Float.min backoff_max (Float.max backoff_min (2.0 *. co.backoff));
    co.retry_at <- Unix.gettimeofday () +. co.backoff;
    Atomic.incr stats.reconnects

  let dial stats co =
    let fd = Unix.socket (Unix.domain_of_sockaddr co.addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    match Unix.connect fd co.addr with
    | () -> co.fd <- Some fd
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _)
      ->
        co.fd <- Some fd
    | exception Unix.Unix_error (_, _, _) ->
        close_quietly fd;
        co.fd <- None;
        tear_down stats co

  let rec flush stats co =
    if co.queued_bytes > 0 then
      match co.fd with
      | None -> if Unix.gettimeofday () >= co.retry_at then (dial stats co; flush stats co)
      | Some fd -> (
          let head = Queue.peek co.queue in
          let len = String.length head - co.head_off in
          match Unix.write_substring fd head co.head_off len with
          | wrote ->
              co.backoff <- backoff_min;
              co.queued_bytes <- co.queued_bytes - wrote;
              if wrote = len then begin
                ignore (Queue.pop co.queue);
                co.head_off <- 0;
                flush stats co
              end
              else co.head_off <- co.head_off + wrote
          | exception
              Unix.Unix_error
                ((EAGAIN | EWOULDBLOCK | EINTR | ENOTCONN | EINPROGRESS | EALREADY), _, _)
            ->
              (* Still connecting, or the kernel buffer is full; the bytes
                 stay queued for the next poll. *)
              ()
          | exception Unix.Unix_error (_, _, _) -> tear_down stats co)

  let unlink_quietly path = try Unix.unlink path with Unix.Unix_error _ -> ()

  let make_listener addr =
    (match addr with
    | Unix.ADDR_UNIX path -> unlink_quietly path
    | Unix.ADDR_INET _ -> ());
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    Unix.bind fd addr;
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd

  let accept_all node =
    let rec go () =
      match Unix.accept ~cloexec:true node.listen with
      | fd, _ ->
          Unix.set_nonblock fd;
          node.ins <- { fd; dec = Frame.Decoder.create () } :: node.ins;
          go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()

  (* Read everything available on one inbound connection. Returns false
     when the connection is finished (EOF or error) and should drop. *)
  let read_conn stats node (ci : conn_in) f =
    let rec go () =
      match Unix.read ci.fd node.readbuf 0 (Bytes.length node.readbuf) with
      | 0 ->
          close_quietly ci.fd;
          false
      | k ->
          Frame.Decoder.feed_sub ci.dec node.readbuf ~pos:0 ~len:k;
          drain_decoder stats ci.dec f;
          if k = Bytes.length node.readbuf then go () else true
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> true
      | exception Unix.Unix_error (_, _, _) ->
          close_quietly ci.fd;
          false
    in
    go ()

  let create ~clock:_ ~n ~owned ~addrs =
    Lazy.force ignore_sigpipe;
    if Array.length addrs <> n then
      invalid_arg "Transport.sockets: addrs array must have one entry per node";
    List.iter (fun i -> check_node ~what:"owned" ~n i) owned;
    let stats = make_stats () in
    let hosted = Array.make n None in
    List.iter
      (fun i ->
        hosted.(i) <-
          Some
            {
              id = i;
              listen = make_listener addrs.(i);
              ins = [];
              outs = Array.make n None;
              readbuf = Bytes.create 65536;
            })
      owned;
    let host ~what i =
      match hosted.(i) with
      | Some node -> node
      | None ->
          invalid_arg
            (Printf.sprintf "Transport.sockets: %s node %d is not hosted here"
               what i)
    in
    let out_conn node dst =
      match node.outs.(dst) with
      | Some co -> co
      | None ->
          let co =
            {
              addr = addrs.(dst);
              fd = None;
              queue = Queue.create ();
              head_off = 0;
              queued_bytes = 0;
              backoff = backoff_min;
              retry_at = 0.0;
            }
          in
          node.outs.(dst) <- Some co;
          co
    in
    let send ~src ~dst ~delay:_ frame =
      check_node ~what:"send dst" ~n dst;
      let node = host ~what:"send src" src in
      let co = out_conn node dst in
      if co.queued_bytes + String.length frame > high_water then
        Atomic.incr stats.frames_dropped
      else begin
        Atomic.incr stats.frames_sent;
        ignore (Atomic.fetch_and_add stats.bytes_sent (String.length frame));
        Queue.add frame co.queue;
        co.queued_bytes <- co.queued_bytes + String.length frame;
        flush stats co
      end
    in
    let poll ~owner ~upto:_ f =
      (* Socket arrival times are physical: any buffered byte arrived in
         the past, so an [upto] bound can never exclude it. *)
      let node = host ~what:"poll owner" owner in
      accept_all node;
      node.ins <- List.filter (fun ci -> read_conn stats node ci f) node.ins;
      Array.iter
        (function Some co -> flush stats co | None -> ())
        node.outs
    in
    let next_due ~owner:_ = None in
    let close () =
      Array.iter
        (function
          | None -> ()
          | Some node ->
              close_quietly node.listen;
              List.iter (fun (ci : conn_in) -> close_quietly ci.fd) node.ins;
              Array.iter
                (function
                  | Some co -> (
                      match co.fd with Some fd -> close_quietly fd | None -> ())
                  | None -> ())
                node.outs;
              (match addrs.(node.id) with
              | Unix.ADDR_UNIX path -> unlink_quietly path
              | Unix.ADDR_INET _ -> ()))
        hosted
    in
    let name =
      if n > 0 then
        match addrs.(0) with
        | Unix.ADDR_UNIX _ -> "unix"
        | Unix.ADDR_INET _ -> "tcp"
      else "tcp"
    in
    { name; stats; poll_driven = true; send; poll; next_due; close }
end

let loopback ~clock ~n = Loopback.create ~clock ~n

let sockets ~clock ~n ~owned ~addrs = Sockets.create ~clock ~n ~owned ~addrs

let uds_addrs ~dir ~n =
  Array.init n (fun i ->
      Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" i)))

let tcp_addrs ?(host = "127.0.0.1") ~base_port ~n () =
  let ip = Unix.inet_addr_of_string host in
  Array.init n (fun i -> Unix.ADDR_INET (ip, base_port + i))
