open Tr_wire

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
  resync_skips : int Atomic.t;
  reconnects : int Atomic.t;
  frames_dropped : int Atomic.t;
  write_syscalls : int Atomic.t;
  read_syscalls : int Atomic.t;
}

let make_stats () =
  {
    frames_sent = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    frames_received = Atomic.make 0;
    decode_errors = Atomic.make 0;
    resync_skips = Atomic.make 0;
    reconnects = Atomic.make 0;
    frames_dropped = Atomic.make 0;
    write_syscalls = Atomic.make 0;
    read_syscalls = Atomic.make 0;
  }

type t = {
  name : string;
  stats : stats;
  poll_driven : bool;
  send : src:int -> dst:int -> delay:float -> string -> unit;
  send_frame : src:int -> dst:int -> delay:float -> Buffer.t -> unit;
  poll : owner:int -> upto:float -> (Frame.view -> unit) -> unit;
  next_due : owner:int -> float option;
  wait :
    owners:int list -> extra_fds:Unix.file_descr list -> timeout_s:float -> unit;
  close : unit -> unit;
}

let name t = t.name
let stats t = t.stats
let poll_driven t = t.poll_driven
let send t = t.send
let send_frame t = t.send_frame
let poll t ?(upto = infinity) ~owner f = t.poll ~owner ~upto f
let next_due t = t.next_due

let wait t ?(extra_fds = []) ~owners ~timeout_s () =
  t.wait ~owners ~extra_fds ~timeout_s

let count_decode_error t = Atomic.incr t.stats.decode_errors
let close t = t.close ()

(* Upper bound on any readiness sleep: a safety net against a lost
   wake-up, far above the hot-path cadence and far below human patience. *)
let max_wait_s = 0.25

(* Pull every complete payload view out of [dec]. Views borrow the
   decoder's buffer; that is safe here because nothing feeds [dec]
   until the callback returns. *)
let drain_decoder stats dec f =
  let rec go () =
    match Frame.Decoder.next_view dec with
    | Frame.Decoder.View v ->
        Atomic.incr stats.frames_received;
        f v;
        go ()
    | Frame.Decoder.Skip_view _ ->
        Atomic.incr stats.resync_skips;
        go ()
    | Frame.Decoder.Await_view -> ()
  in
  go ()

let check_node ~what ~n i =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Transport: %s node %d out of range" what i)

(* ------------------------------------------------------------------ *)
(* Loopback                                                            *)
(* ------------------------------------------------------------------ *)

module Loopback = struct
  type node = {
    (* Cross-domain side: producers push (due, frame). *)
    inbox : (float * string) Mailbox.t;
    (* Owner-shard side: deliveries ordered by due time. *)
    pending : string Tr_sim.Pqueue.t;
  }

  let make_node () = { inbox = Mailbox.create (); pending = Tr_sim.Pqueue.create () }

  (* Move everything the other domains queued into the owner's heap. *)
  let settle node =
    List.iter
      (fun (due, frame) -> Tr_sim.Pqueue.push node.pending ~time:due frame)
      (Mailbox.drain node.inbox)

  let create ~clock ~n =
    let stats = make_stats () in
    let nodes = Array.init n (fun _ -> make_node ()) in
    let push ~src ~dst ~delay frame =
      check_node ~what:"send src" ~n src;
      check_node ~what:"send dst" ~n dst;
      ignore src;
      Atomic.incr stats.frames_sent;
      ignore (Atomic.fetch_and_add stats.bytes_sent (String.length frame));
      let due = Clock.now clock +. Float.max 0.0 delay in
      Mailbox.push nodes.(dst).inbox (due, frame)
    in
    let send ~src ~dst ~delay frame = push ~src ~dst ~delay frame in
    (* The frame must outlive the mailbox hop, so crossing domains costs
       exactly one string per frame — and that string is then decoded in
       place ([decode_exact]), never copied again. *)
    let send_frame ~src ~dst ~delay buf =
      push ~src ~dst ~delay (Buffer.contents buf)
    in
    let poll ~owner ~upto f =
      check_node ~what:"poll owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      let now = Float.min (Clock.now clock) upto in
      let rec deliver () =
        if
          (not (Tr_sim.Pqueue.is_empty node.pending))
          && Tr_sim.Pqueue.top_time_exn node.pending <= now
        then begin
          let frame = Tr_sim.Pqueue.pop_exn node.pending in
          (match Frame.decode_exact frame with
          | Ok v ->
              Atomic.incr stats.frames_received;
              f v
          | Error _ -> Atomic.incr stats.resync_skips);
          deliver ()
        end
      in
      deliver ()
    in
    let next_due ~owner =
      check_node ~what:"next_due owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      Tr_sim.Pqueue.peek_time node.pending
    in
    let wait ~owners:_ ~extra_fds:_ ~timeout_s =
      if timeout_s > 0.0 then Unix.sleepf (Float.min timeout_s max_wait_s)
    in
    {
      name = "loopback";
      stats;
      poll_driven = false;
      send;
      send_frame;
      poll;
      next_due;
      wait;
      close = (fun () -> ());
    }
end

(* ------------------------------------------------------------------ *)
(* Sockets (TCP / Unix-domain)                                         *)
(* ------------------------------------------------------------------ *)

module Sockets = struct
  let backoff_min = 0.01
  let backoff_max = 1.0

  (* Cap on bytes queued behind an unreachable peer. Past this, new
     frames are dropped whole (never split — that would corrupt the
     framing) and counted in [frames_dropped]. *)
  let high_water = 4 * 1024 * 1024

  (* [Unix.write] cannot pass MSG_NOSIGNAL, so a write to a peer that
     closed its end raises SIGPIPE and the default handler kills the
     whole process before [tear_down] can run. Ignore it once,
     process-wide, so the failure surfaces as EPIPE instead. *)
  let ignore_sigpipe =
    lazy
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

  (* Nagle's algorithm would hold our (already-coalesced) small writes
     back waiting for acks; batching happens in [conn_out], not in the
     kernel, so tell TCP to ship immediately. *)
  let set_nodelay fd =
    try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

  type conn_in = { fd : Unix.file_descr; dec : Frame.Decoder.t }

  (* Outgoing frames coalesce into one flat buffer, flushed with a
     single [write] per poll. [bounds] remembers each queued frame's
     length so a torn-down connection can drop its partially-written
     head frame whole — resuming mid-frame on a fresh connection would
     open the stream with garbage and force a resync at the receiver. *)
  type conn_out = {
    addr : Unix.sockaddr;
    mutable fd : Unix.file_descr option;
    mutable out : Bytes.t;  (** Unwritten bytes live in [out_pos..out_len). *)
    mutable out_pos : int;
    mutable out_len : int;
    bounds : int Queue.t;  (** Byte length of each queued frame, in order. *)
    mutable head_off : int;  (** Bytes of the head frame already written. *)
    mutable backoff : float;
    mutable retry_at : float;  (** Wall time before which we won't dial. *)
  }

  let queued co = co.out_len - co.out_pos

  type node = {
    id : int;
    listen : Unix.file_descr;
    nodelay : bool;
    mutable ins : conn_in list;
    outs : conn_out option array;
    readbuf : Bytes.t;
  }

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let reset_if_empty co =
    if queued co = 0 then begin
      co.out_pos <- 0;
      co.out_len <- 0
    end

  let tear_down stats co =
    (match co.fd with Some fd -> close_quietly fd | None -> ());
    co.fd <- None;
    if co.head_off > 0 then begin
      (* Drop the half-written head frame whole; its tail must not open
         the next connection mid-frame. *)
      let head = Queue.pop co.bounds in
      co.out_pos <- co.out_pos + (head - co.head_off);
      co.head_off <- 0;
      Atomic.incr stats.frames_dropped;
      reset_if_empty co
    end;
    co.backoff <- Float.min backoff_max (Float.max backoff_min (2.0 *. co.backoff));
    co.retry_at <- Unix.gettimeofday () +. co.backoff;
    Atomic.incr stats.reconnects

  let dial stats co =
    let fd = Unix.socket (Unix.domain_of_sockaddr co.addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (match co.addr with
    | Unix.ADDR_INET _ -> set_nodelay fd
    | Unix.ADDR_UNIX _ -> ());
    match Unix.connect fd co.addr with
    | () -> co.fd <- Some fd
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _)
      ->
        co.fd <- Some fd
    | exception Unix.Unix_error (_, _, _) ->
        close_quietly fd;
        co.fd <- None;
        tear_down stats co

  (* Append [len] frame bytes to the coalescing buffer. [blit dst dstoff]
     writes them; the caller has already counted the frame. *)
  let append co ~len blit =
    if co.out_len + len > Bytes.length co.out then begin
      if co.out_pos > 0 then begin
        Bytes.blit co.out co.out_pos co.out 0 (queued co);
        co.out_len <- queued co;
        co.out_pos <- 0
      end;
      if co.out_len + len > Bytes.length co.out then begin
        let cap = ref (Stdlib.max 4096 (2 * Bytes.length co.out)) in
        while co.out_len + len > !cap do
          cap := 2 * !cap
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit co.out 0 bigger 0 co.out_len;
        co.out <- bigger
      end
    end;
    blit co.out co.out_len;
    co.out_len <- co.out_len + len;
    Queue.add len co.bounds

  (* Account [wrote] flushed bytes against the frame-boundary queue. *)
  let advance co wrote =
    co.out_pos <- co.out_pos + wrote;
    let rec pop w =
      if w > 0 then begin
        let head = Queue.peek co.bounds in
        let rem = head - co.head_off in
        if w >= rem then begin
          ignore (Queue.pop co.bounds);
          co.head_off <- 0;
          pop (w - rem)
        end
        else co.head_off <- co.head_off + w
      end
    in
    pop wrote;
    reset_if_empty co

  (* One [write] covering every queued frame; a partial write means the
     kernel buffer is full, so stop rather than spin. Sends between two
     polls therefore cost at most one syscall total. *)
  let rec flush stats co =
    if queued co > 0 then
      match co.fd with
      | None ->
          if Unix.gettimeofday () >= co.retry_at then begin
            dial stats co;
            if co.fd <> None then flush stats co
          end
      | Some fd -> (
          match Unix.write fd co.out co.out_pos (queued co) with
          | wrote ->
              Atomic.incr stats.write_syscalls;
              co.backoff <- backoff_min;
              advance co wrote
          | exception
              Unix.Unix_error
                ( (EAGAIN | EWOULDBLOCK | EINTR | ENOTCONN | EINPROGRESS | EALREADY),
                  _,
                  _ ) ->
              (* Still connecting, or the kernel buffer is full; the bytes
                 stay queued for the next poll. *)
              Atomic.incr stats.write_syscalls
          | exception Unix.Unix_error (_, _, _) ->
              Atomic.incr stats.write_syscalls;
              tear_down stats co)

  let unlink_quietly path = try Unix.unlink path with Unix.Unix_error _ -> ()

  let make_listener addr =
    (match addr with
    | Unix.ADDR_UNIX path -> unlink_quietly path
    | Unix.ADDR_INET _ -> ());
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    Unix.bind fd addr;
    Unix.listen fd 64;
    Unix.set_nonblock fd;
    fd

  let accept_all node =
    let rec go () =
      match Unix.accept ~cloexec:true node.listen with
      | fd, _ ->
          Unix.set_nonblock fd;
          if node.nodelay then set_nodelay fd;
          node.ins <- { fd; dec = Frame.Decoder.create () } :: node.ins;
          go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()

  (* Read everything available on one inbound connection. Returns false
     when the connection is finished (EOF or error) and should drop. *)
  let read_conn stats node (ci : conn_in) f =
    let rec go () =
      match Unix.read ci.fd node.readbuf 0 (Bytes.length node.readbuf) with
      | 0 ->
          Atomic.incr stats.read_syscalls;
          close_quietly ci.fd;
          false
      | k ->
          Atomic.incr stats.read_syscalls;
          Frame.Decoder.feed_sub ci.dec node.readbuf ~pos:0 ~len:k;
          drain_decoder stats ci.dec f;
          if k = Bytes.length node.readbuf then go () else true
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          Atomic.incr stats.read_syscalls;
          true
      | exception Unix.Unix_error (_, _, _) ->
          Atomic.incr stats.read_syscalls;
          close_quietly ci.fd;
          false
    in
    go ()

  let create ~clock:_ ~n ~owned ~addrs =
    Lazy.force ignore_sigpipe;
    if Array.length addrs <> n then
      invalid_arg "Transport.sockets: addrs array must have one entry per node";
    List.iter (fun i -> check_node ~what:"owned" ~n i) owned;
    let stats = make_stats () in
    let hosted = Array.make n None in
    List.iter
      (fun i ->
        hosted.(i) <-
          Some
            {
              id = i;
              listen = make_listener addrs.(i);
              nodelay =
                (match addrs.(i) with
                | Unix.ADDR_INET _ -> true
                | Unix.ADDR_UNIX _ -> false);
              ins = [];
              outs = Array.make n None;
              readbuf = Bytes.create 65536;
            })
      owned;
    let host ~what i =
      match hosted.(i) with
      | Some node -> node
      | None ->
          invalid_arg
            (Printf.sprintf "Transport.sockets: %s node %d is not hosted here"
               what i)
    in
    let out_conn node dst =
      match node.outs.(dst) with
      | Some co -> co
      | None ->
          let co =
            {
              addr = addrs.(dst);
              fd = None;
              out = Bytes.create 4096;
              out_pos = 0;
              out_len = 0;
              bounds = Queue.create ();
              head_off = 0;
              backoff = backoff_min;
              retry_at = 0.0;
            }
          in
          node.outs.(dst) <- Some co;
          co
    in
    (* Enqueue only — the coalesced buffer is flushed once per [poll],
       so a burst of sends inside one loop iteration shares a single
       write syscall. *)
    let enqueue ~src ~dst ~len blit =
      check_node ~what:"send dst" ~n dst;
      let node = host ~what:"send src" src in
      let co = out_conn node dst in
      if queued co + len > high_water then Atomic.incr stats.frames_dropped
      else begin
        Atomic.incr stats.frames_sent;
        ignore (Atomic.fetch_and_add stats.bytes_sent len);
        append co ~len blit
      end
    in
    let send ~src ~dst ~delay:_ frame =
      enqueue ~src ~dst ~len:(String.length frame) (fun dst_buf dst_off ->
          Bytes.blit_string frame 0 dst_buf dst_off (String.length frame))
    in
    let send_frame ~src ~dst ~delay:_ buf =
      enqueue ~src ~dst ~len:(Buffer.length buf) (fun dst_buf dst_off ->
          Buffer.blit buf 0 dst_buf dst_off (Buffer.length buf))
    in
    let poll ~owner ~upto:_ f =
      (* Socket arrival times are physical: any buffered byte arrived in
         the past, so an [upto] bound can never exclude it. *)
      let node = host ~what:"poll owner" owner in
      accept_all node;
      node.ins <- List.filter (fun ci -> read_conn stats node ci f) node.ins;
      Array.iter
        (function Some co -> flush stats co | None -> ())
        node.outs
    in
    let next_due ~owner:_ = None in
    (* Block until something the owners care about can make progress:
       an inbound byte or connection, an outgoing buffer draining, or a
       caller-supplied wake fd. Reconnect timers bound the sleep so a
       peer coming back is noticed promptly. *)
    let wait ~owners ~extra_fds ~timeout_s =
      let timeout = ref (Float.min timeout_s max_wait_s) in
      let reads = ref extra_fds in
      let writes = ref [] in
      let now = ref nan in
      List.iter
        (fun i ->
          match hosted.(i) with
          | None -> ()
          | Some node ->
              reads := node.listen :: !reads;
              List.iter (fun (ci : conn_in) -> reads := ci.fd :: !reads) node.ins;
              Array.iter
                (function
                  | Some co when queued co > 0 -> (
                      match co.fd with
                      | Some fd -> writes := fd :: !writes
                      | None ->
                          if Float.is_nan !now then now := Unix.gettimeofday ();
                          timeout :=
                            Float.min !timeout
                              (Float.max backoff_min (co.retry_at -. !now)))
                  | _ -> ())
                node.outs)
        owners;
      if !timeout > 0.0 then
        match Unix.select !reads !writes [] !timeout with
        | _ -> ()
        | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> ()
    in
    let close () =
      Array.iter
        (function
          | None -> ()
          | Some node ->
              close_quietly node.listen;
              List.iter (fun (ci : conn_in) -> close_quietly ci.fd) node.ins;
              Array.iter
                (function
                  | Some co -> (
                      match co.fd with Some fd -> close_quietly fd | None -> ())
                  | None -> ())
                node.outs;
              (match addrs.(node.id) with
              | Unix.ADDR_UNIX path -> unlink_quietly path
              | Unix.ADDR_INET _ -> ()))
        hosted
    in
    let name =
      if n > 0 then
        match addrs.(0) with
        | Unix.ADDR_UNIX _ -> "unix"
        | Unix.ADDR_INET _ -> "tcp"
      else "tcp"
    in
    {
      name;
      stats;
      poll_driven = true;
      send;
      send_frame;
      poll;
      next_due;
      wait;
      close;
    }
end

let loopback ~clock ~n = Loopback.create ~clock ~n

let sockets ~clock ~n ~owned ~addrs = Sockets.create ~clock ~n ~owned ~addrs

let uds_addrs ~dir ~n =
  Array.init n (fun i ->
      Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" i)))

let tcp_addrs ?(host = "127.0.0.1") ~base_port ~n () =
  let ip = Unix.inet_addr_of_string host in
  Array.init n (fun i -> Unix.ADDR_INET (ip, base_port + i))
