open Tr_wire

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
  resync_skips : int Atomic.t;
  reconnects : int Atomic.t;
  frames_dropped : int Atomic.t;
  out_hwm_bytes : int Atomic.t;
  write_syscalls : int Atomic.t;
  read_syscalls : int Atomic.t;
  wait_calls : int Atomic.t;
  fds_ready : int Atomic.t;
  fds_registered : int Atomic.t;
}

let make_stats () =
  {
    frames_sent = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    frames_received = Atomic.make 0;
    decode_errors = Atomic.make 0;
    resync_skips = Atomic.make 0;
    reconnects = Atomic.make 0;
    frames_dropped = Atomic.make 0;
    out_hwm_bytes = Atomic.make 0;
    write_syscalls = Atomic.make 0;
    read_syscalls = Atomic.make 0;
    wait_calls = Atomic.make 0;
    fds_ready = Atomic.make 0;
    fds_registered = Atomic.make 0;
  }

type t = {
  name : string;
  readiness : string;
  stats : stats;
  poll_driven : bool;
  send : src:int -> dst:int -> delay:float -> string -> unit;
  send_frame : src:int -> dst:int -> delay:float -> Buffer.t -> unit;
  poll : owner:int -> upto:float -> (Frame.view -> unit) -> unit;
  next_due : owner:int -> float option;
  wait :
    owners:int list ->
    extra_fds:Unix.file_descr list ->
    timeout_s:float ->
    on_ready:(int -> unit) ->
    unit;
  close : unit -> unit;
}

let name t = t.name
let readiness_backend t = t.readiness
let stats t = t.stats
let poll_driven t = t.poll_driven
let send t = t.send
let send_frame t = t.send_frame
let poll t ?(upto = infinity) ~owner f = t.poll ~owner ~upto f
let next_due t = t.next_due

let wait t ?(extra_fds = []) ?(on_ready = fun _ -> ()) ~owners ~timeout_s () =
  t.wait ~owners ~extra_fds ~timeout_s ~on_ready

let count_decode_error t = Atomic.incr t.stats.decode_errors
let close t = t.close ()

(* Upper bound on any readiness sleep: a safety net against a lost
   wake-up, far above the hot-path cadence and far below human patience. *)
let max_wait_s = 0.25

(* Pull every complete payload view out of [dec]. Views borrow the
   decoder's buffer; that is safe here because nothing feeds [dec]
   until the callback returns. *)
let drain_decoder stats dec f =
  let rec go () =
    match Frame.Decoder.next_view dec with
    | Frame.Decoder.View v ->
        Atomic.incr stats.frames_received;
        f v;
        go ()
    | Frame.Decoder.Skip_view _ ->
        Atomic.incr stats.resync_skips;
        go ()
    | Frame.Decoder.Await_view -> ()
  in
  go ()

let check_node ~what ~n i =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Transport: %s node %d out of range" what i)

(* ------------------------------------------------------------------ *)
(* Loopback                                                            *)
(* ------------------------------------------------------------------ *)

module Loopback = struct
  type node = {
    (* Cross-domain side: producers push (due, frame). *)
    inbox : (float * string) Mailbox.t;
    (* Owner-shard side: deliveries ordered by due time. *)
    pending : string Tr_sim.Pqueue.t;
  }

  let make_node () = { inbox = Mailbox.create (); pending = Tr_sim.Pqueue.create () }

  (* Move everything the other domains queued into the owner's heap. *)
  let settle node =
    List.iter
      (fun (due, frame) -> Tr_sim.Pqueue.push node.pending ~time:due frame)
      (Mailbox.drain node.inbox)

  let create ~clock ~n =
    let stats = make_stats () in
    let nodes = Array.init n (fun _ -> make_node ()) in
    let push ~src ~dst ~delay frame =
      check_node ~what:"send src" ~n src;
      check_node ~what:"send dst" ~n dst;
      ignore src;
      Atomic.incr stats.frames_sent;
      ignore (Atomic.fetch_and_add stats.bytes_sent (String.length frame));
      let due = Clock.now clock +. Float.max 0.0 delay in
      Mailbox.push nodes.(dst).inbox (due, frame)
    in
    let send ~src ~dst ~delay frame = push ~src ~dst ~delay frame in
    (* The frame must outlive the mailbox hop, so crossing domains costs
       exactly one string per frame — and that string is then decoded in
       place ([decode_exact]), never copied again. *)
    let send_frame ~src ~dst ~delay buf =
      push ~src ~dst ~delay (Buffer.contents buf)
    in
    let poll ~owner ~upto f =
      check_node ~what:"poll owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      let now = Float.min (Clock.now clock) upto in
      let rec deliver () =
        if
          (not (Tr_sim.Pqueue.is_empty node.pending))
          && Tr_sim.Pqueue.top_time_exn node.pending <= now
        then begin
          let frame = Tr_sim.Pqueue.pop_exn node.pending in
          (match Frame.decode_exact frame with
          | Ok v ->
              Atomic.incr stats.frames_received;
              f v
          | Error _ -> Atomic.incr stats.resync_skips);
          deliver ()
        end
      in
      deliver ()
    in
    let next_due ~owner =
      check_node ~what:"next_due owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      Tr_sim.Pqueue.peek_time node.pending
    in
    let wait ~owners:_ ~extra_fds:_ ~timeout_s ~on_ready:_ =
      if timeout_s > 0.0 then Unix.sleepf (Float.min timeout_s max_wait_s)
    in
    {
      name = "loopback";
      readiness = "none";
      stats;
      poll_driven = false;
      send;
      send_frame;
      poll;
      next_due;
      wait;
      close = (fun () -> ());
    }
end

(* ------------------------------------------------------------------ *)
(* Sockets (TCP / Unix-domain)                                         *)
(* ------------------------------------------------------------------ *)

module Sockets = struct
  let backoff_min = 0.01
  let backoff_max = 1.0

  (* Cap on bytes queued behind an unreachable peer. Past this, new
     frames are dropped whole (never split — that would corrupt the
     framing) and counted in [frames_dropped]. *)
  let high_water = 4 * 1024 * 1024

  (* [Unix.write] cannot pass MSG_NOSIGNAL, so a write to a peer that
     closed its end raises SIGPIPE and the default handler kills the
     whole process before [tear_down] can run. Ignore it once,
     process-wide, so the failure surfaces as EPIPE instead. *)
  let ignore_sigpipe =
    lazy
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

  (* Nagle's algorithm would hold our (already-coalesced) small writes
     back waiting for acks; batching happens in [conn_out], not in the
     kernel, so tell TCP to ship immediately. *)
  let set_nodelay fd =
    try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

  (* Unix.file_descr is an int on every Unix OCaml port; the fd->peer
     index is keyed by it. *)
  external fd_int : Unix.file_descr -> int = "%identity"

  type conn_in = {
    fd : Unix.file_descr;
    dec : Frame.Decoder.t;
    mutable ready : bool;  (** Queued in its node's [ready_ins]. *)
  }

  (* Outgoing frames coalesce into one flat buffer, flushed with a
     single [write] per poll. [bounds] remembers each queued frame's
     length so a torn-down connection can drop its partially-written
     head frame whole — resuming mid-frame on a fresh connection would
     open the stream with garbage and force a resync at the receiver. *)
  type conn_out = {
    addr : Unix.sockaddr;
    mutable fd : Unix.file_descr option;
    mutable out : Bytes.t;  (** Unwritten bytes live in [out_pos..out_len). *)
    mutable out_pos : int;
    mutable out_len : int;
    bounds : int Queue.t;  (** Byte length of each queued frame, in order. *)
    mutable head_off : int;  (** Bytes of the head frame already written. *)
    mutable backoff : float;
    mutable retry_at : float;  (** Wall time before which we won't dial. *)
    mutable in_busy : bool;  (** Queued in its node's [busy]. *)
    mutable in_retry : bool;  (** Queued in its shard set's [retry_outs]. *)
  }

  let queued co = co.out_len - co.out_pos

  (* A node is {e tracked} once its owning shard first calls [wait]: its
     fds then live in that shard's readiness set and [poll] touches only
     what the last wait reported ready — O(ready), not O(connections).
     Untracked nodes (raw bench pumps that never wait) keep the legacy
     scan-everything poll. *)
  type node = {
    id : int;
    listen : Unix.file_descr;
    nodelay : bool;
    mutable ins : conn_in list;
    outs : (int, conn_out) Hashtbl.t;  (** Keyed by destination node id. *)
    readbuf : Bytes.t Lazy.t;  (** Untracked mode only; tracked reads share
                                   the shard set's buffer. *)
    mutable tracked : shard_set option;
    mutable accept_ready : bool;
    mutable ready_ins : conn_in list;
    mutable busy : conn_out list;  (** Conns with unflushed bytes. *)
  }

  (* One per waiting shard: the readiness set all the shard's fds are
     registered in, plus the fd->peer index that turns a ready fd back
     into work in O(1). *)
  and shard_set = {
    rd : Readiness.t;
    fdx : (int, entry) Hashtbl.t;
    sbuf : Bytes.t;  (** Shared read buffer — one per shard, not per node. *)
    mutable retry_outs : (node * conn_out) list;
        (** Down peers with queued bytes, waiting out their backoff. *)
    extra : (int, unit) Hashtbl.t;  (** Registered caller wake fds. *)
  }

  and entry =
    | Listener of node
    | In of node * conn_in
    | Out of node * conn_out
    | Wake

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  (* Registration keeps the [fds_registered] gauge honest: an fd counts
     once, however often its interest mask changes. Removal must happen
     before the fd is closed (epoll auto-forgets closed fds, but the
     poll/select sets would otherwise scan a dead descriptor). *)
  let reg stats set fd entry ~read ~write =
    let key = fd_int fd in
    if not (Hashtbl.mem set.fdx key) then begin
      Hashtbl.replace set.fdx key entry;
      Atomic.incr stats.fds_registered
    end;
    Readiness.set set.rd fd ~read ~write

  let unreg stats set fd =
    let key = fd_int fd in
    if Hashtbl.mem set.fdx key then begin
      Hashtbl.remove set.fdx key;
      Atomic.decr stats.fds_registered;
      Readiness.remove set.rd fd
    end

  let reset_if_empty co =
    if queued co = 0 then begin
      co.out_pos <- 0;
      co.out_len <- 0
    end

  let tear_down stats tracked co =
    (match co.fd with
    | Some fd ->
        (match tracked with Some set -> unreg stats set fd | None -> ());
        close_quietly fd
    | None -> ());
    co.fd <- None;
    if co.head_off > 0 then begin
      (* Drop the half-written head frame whole; its tail must not open
         the next connection mid-frame. *)
      let head = Queue.pop co.bounds in
      co.out_pos <- co.out_pos + (head - co.head_off);
      co.head_off <- 0;
      Atomic.incr stats.frames_dropped;
      reset_if_empty co
    end;
    co.backoff <- Float.min backoff_max (Float.max backoff_min (2.0 *. co.backoff));
    co.retry_at <- Unix.gettimeofday () +. co.backoff;
    Atomic.incr stats.reconnects

  let dial stats node co =
    let fd = Unix.socket (Unix.domain_of_sockaddr co.addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (match co.addr with
    | Unix.ADDR_INET _ -> set_nodelay fd
    | Unix.ADDR_UNIX _ -> ());
    let connected () =
      co.fd <- Some fd;
      (* Write interest from the start: dialing only ever happens with
         bytes queued, and a connect still in progress completes as a
         writability event. *)
      match node.tracked with
      | Some set -> reg stats set fd (Out (node, co)) ~read:false ~write:true
      | None -> ()
    in
    match Unix.connect fd co.addr with
    | () -> connected ()
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _)
      ->
        connected ()
    | exception Unix.Unix_error (_, _, _) ->
        close_quietly fd;
        co.fd <- None;
        tear_down stats node.tracked co

  (* Append [len] frame bytes to the coalescing buffer. [blit dst dstoff]
     writes them; the caller has already counted the frame. *)
  let append co ~len blit =
    if co.out_len + len > Bytes.length co.out then begin
      if co.out_pos > 0 then begin
        Bytes.blit co.out co.out_pos co.out 0 (queued co);
        co.out_len <- queued co;
        co.out_pos <- 0
      end;
      if co.out_len + len > Bytes.length co.out then begin
        let cap = ref (Stdlib.max 4096 (2 * Bytes.length co.out)) in
        while co.out_len + len > !cap do
          cap := 2 * !cap
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit co.out 0 bigger 0 co.out_len;
        co.out <- bigger
      end
    end;
    blit co.out co.out_len;
    co.out_len <- co.out_len + len;
    Queue.add len co.bounds

  (* Account [wrote] flushed bytes against the frame-boundary queue. *)
  let advance co wrote =
    co.out_pos <- co.out_pos + wrote;
    let rec pop w =
      if w > 0 then begin
        let head = Queue.peek co.bounds in
        let rem = head - co.head_off in
        if w >= rem then begin
          ignore (Queue.pop co.bounds);
          co.head_off <- 0;
          pop (w - rem)
        end
        else co.head_off <- co.head_off + w
      end
    in
    pop wrote;
    reset_if_empty co

  (* One [write] covering every queued frame; a partial write means the
     kernel buffer is full, so stop rather than spin. Sends between two
     polls therefore cost at most one syscall total. *)
  let rec flush stats node co =
    if queued co > 0 then
      match co.fd with
      | None ->
          if Unix.gettimeofday () >= co.retry_at then begin
            dial stats node co;
            if co.fd <> None then flush stats node co
          end
      | Some fd -> (
          match Unix.write fd co.out co.out_pos (queued co) with
          | wrote ->
              Atomic.incr stats.write_syscalls;
              co.backoff <- backoff_min;
              advance co wrote
          | exception
              Unix.Unix_error
                ( (EAGAIN | EWOULDBLOCK | EINTR | ENOTCONN | EINPROGRESS | EALREADY),
                  _,
                  _ ) ->
              (* Still connecting, or the kernel buffer is full; the bytes
                 stay queued for the next poll. *)
              Atomic.incr stats.write_syscalls
          | exception Unix.Unix_error (_, _, _) ->
              Atomic.incr stats.write_syscalls;
              tear_down stats node.tracked co)

  let unlink_quietly path = try Unix.unlink path with Unix.Unix_error _ -> ()

  let make_listener addr =
    (match addr with
    | Unix.ADDR_UNIX path -> unlink_quietly path
    | Unix.ADDR_INET _ -> ());
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    Unix.bind fd addr;
    Unix.listen fd 1024;
    Unix.set_nonblock fd;
    fd

  let accept_all stats node =
    let rec go () =
      match Unix.accept ~cloexec:true node.listen with
      | fd, _ ->
          Unix.set_nonblock fd;
          if node.nodelay then set_nodelay fd;
          let ci = { fd; dec = Frame.Decoder.create (); ready = false } in
          node.ins <- ci :: node.ins;
          (* Level-triggered registration: bytes that raced in before
             this point still report readable on the next wait. *)
          (match node.tracked with
          | Some set -> reg stats set fd (In (node, ci)) ~read:true ~write:false
          | None -> ());
          go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()

  (* Read everything available on one inbound connection. Returns false
     when the connection is finished (EOF or error) and should drop —
     the caller deregisters before closing. *)
  let read_conn stats buf (ci : conn_in) f =
    let rec go () =
      match Unix.read ci.fd buf 0 (Bytes.length buf) with
      | 0 ->
          Atomic.incr stats.read_syscalls;
          false
      | k ->
          Atomic.incr stats.read_syscalls;
          Frame.Decoder.feed_sub ci.dec buf ~pos:0 ~len:k;
          drain_decoder stats ci.dec f;
          if k = Bytes.length buf then go () else true
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          Atomic.incr stats.read_syscalls;
          true
      | exception Unix.Unix_error (_, _, _) ->
          Atomic.incr stats.read_syscalls;
          false
    in
    go ()

  let drop_in stats node (ci : conn_in) =
    (match node.tracked with Some set -> unreg stats set ci.fd | None -> ());
    close_quietly ci.fd;
    node.ins <- List.filter (fun c -> c != ci) node.ins

  (* Legacy poll: scan every connection the node has. Only nodes whose
     shard never waits (raw pumps) pay this. *)
  let poll_untracked stats node f =
    accept_all stats node;
    let buf = Lazy.force node.readbuf in
    node.ins <-
      List.filter
        (fun ci ->
          let keep = read_conn stats buf ci f in
          if not keep then close_quietly ci.fd;
          keep)
        node.ins;
    Hashtbl.iter (fun _ co -> flush stats node co) node.outs

  (* Tracked poll: touch only what readiness reported (accept_ready,
     ready_ins) plus connections with unflushed bytes (busy). Write
     interest tracks the busy state so an idle cluster registers no
     write-side events at all. *)
  let poll_tracked stats set node f =
    if node.accept_ready then begin
      node.accept_ready <- false;
      accept_all stats node
    end;
    (match node.ready_ins with
    | [] -> ()
    | ris ->
        node.ready_ins <- [];
        List.iter
          (fun ci ->
            ci.ready <- false;
            if not (read_conn stats set.sbuf ci f) then drop_in stats node ci)
          ris);
    match node.busy with
    | [] -> ()
    | busy ->
        node.busy <- [];
        List.iter
          (fun co ->
            flush stats node co;
            if queued co = 0 then begin
              co.in_busy <- false;
              match co.fd with
              | Some fd -> Readiness.set set.rd fd ~read:false ~write:false
              | None -> ()
            end
            else begin
              node.busy <- co :: node.busy;
              match co.fd with
              | Some fd -> reg stats set fd (Out (node, co)) ~read:false ~write:true
              | None ->
                  if not co.in_retry then begin
                    co.in_retry <- true;
                    set.retry_outs <- (node, co) :: set.retry_outs
                  end
            end)
          busy

  let create ?readiness ~clock:_ ~n ~owned ~addrs () =
    Lazy.force ignore_sigpipe;
    (* High-N clusters hit the default soft RLIMIT_NOFILE long before
       they hit any real resource limit; raise it once per process. *)
    ignore (Readiness.raise_nofile ());
    let rd_backend =
      match readiness with
      | Some b ->
          if not (Readiness.available b) then
            failwith
              (Printf.sprintf
                 "Transport.sockets: readiness backend %s is unavailable on \
                  this platform"
                 (Readiness.backend_name b));
          b
      | None -> Readiness.default_backend ()
    in
    if Array.length addrs <> n then
      invalid_arg "Transport.sockets: addrs array must have one entry per node";
    List.iter (fun i -> check_node ~what:"owned" ~n i) owned;
    let stats = make_stats () in
    let hosted = Array.make n None in
    List.iter
      (fun i ->
        hosted.(i) <-
          Some
            {
              id = i;
              listen = make_listener addrs.(i);
              nodelay =
                (match addrs.(i) with
                | Unix.ADDR_INET _ -> true
                | Unix.ADDR_UNIX _ -> false);
              ins = [];
              outs = Hashtbl.create 4;
              readbuf = lazy (Bytes.create 65536);
              tracked = None;
              accept_ready = false;
              ready_ins = [];
              busy = [];
            })
      owned;
    let host ~what i =
      match hosted.(i) with
      | Some node -> node
      | None ->
          invalid_arg
            (Printf.sprintf "Transport.sockets: %s node %d is not hosted here"
               what i)
    in
    let out_conn node dst =
      match Hashtbl.find_opt node.outs dst with
      | Some co -> co
      | None ->
          let co =
            {
              addr = addrs.(dst);
              fd = None;
              out = Bytes.create 4096;
              out_pos = 0;
              out_len = 0;
              bounds = Queue.create ();
              head_off = 0;
              backoff = backoff_min;
              retry_at = 0.0;
              in_busy = false;
              in_retry = false;
            }
          in
          Hashtbl.replace node.outs dst co;
          co
    in
    (* Enqueue only — the coalesced buffer is flushed once per [poll],
       so a burst of sends inside one loop iteration shares a single
       write syscall. *)
    let enqueue ~src ~dst ~len blit =
      check_node ~what:"send dst" ~n dst;
      let node = host ~what:"send src" src in
      let co = out_conn node dst in
      if queued co + len > high_water then Atomic.incr stats.frames_dropped
      else begin
        Atomic.incr stats.frames_sent;
        ignore (Atomic.fetch_and_add stats.bytes_sent len);
        append co ~len blit;
        (* Monotone max of any single peer's backlog — how close the run
           came to the high-water drop threshold. *)
        let rec bump v =
          let cur = Atomic.get stats.out_hwm_bytes in
          if v > cur && not (Atomic.compare_and_set stats.out_hwm_bytes cur v)
          then bump v
        in
        bump (queued co);
        if not co.in_busy then begin
          co.in_busy <- true;
          node.busy <- co :: node.busy
        end
      end
    in
    let send ~src ~dst ~delay:_ frame =
      enqueue ~src ~dst ~len:(String.length frame) (fun dst_buf dst_off ->
          Bytes.blit_string frame 0 dst_buf dst_off (String.length frame))
    in
    let send_frame ~src ~dst ~delay:_ buf =
      enqueue ~src ~dst ~len:(Buffer.length buf) (fun dst_buf dst_off ->
          Buffer.blit buf 0 dst_buf dst_off (Buffer.length buf))
    in
    let poll ~owner ~upto:_ f =
      (* Socket arrival times are physical: any buffered byte arrived in
         the past, so an [upto] bound can never exclude it. *)
      let node = host ~what:"poll owner" owner in
      match node.tracked with
      | Some set -> poll_tracked stats set node f
      | None -> poll_untracked stats node f
    in
    let next_due ~owner:_ = None in
    (* Shard sets are created lazily by the first wait of each shard;
       the list exists only so close can release the epoll fds. *)
    let sets_mu = Mutex.create () in
    let shard_sets = ref [] in
    let make_set () =
      let set =
        {
          rd = Readiness.create ~backend:rd_backend ();
          fdx = Hashtbl.create 256;
          sbuf = Bytes.create 65536;
          retry_outs = [];
          extra = Hashtbl.create 4;
        }
      in
      Mutex.lock sets_mu;
      shard_sets := set :: !shard_sets;
      Mutex.unlock sets_mu;
      set
    in
    (* Move a node into a shard's readiness set. Registration is
       once-per-fd; the conservative ready flags make the node's next
       poll sweep everything once, after which O(ready) takes over. *)
    let track_node set node =
      node.tracked <- Some set;
      reg stats set node.listen (Listener node) ~read:true ~write:false;
      node.accept_ready <- true;
      List.iter
        (fun (ci : conn_in) ->
          reg stats set ci.fd (In (node, ci)) ~read:true ~write:false;
          if not ci.ready then begin
            ci.ready <- true;
            node.ready_ins <- ci :: node.ready_ins
          end)
        node.ins;
      Hashtbl.iter
        (fun _ co ->
          (match co.fd with
          | Some fd ->
              reg stats set fd (Out (node, co)) ~read:false
                ~write:(queued co > 0)
          | None -> ());
          if queued co > 0 && not co.in_busy then begin
            co.in_busy <- true;
            node.busy <- co :: node.busy
          end)
        node.outs
    in
    let ensure_tracked owners =
      let existing =
        List.fold_left
          (fun acc i ->
            match acc with
            | Some _ -> acc
            | None -> (
                match hosted.(i) with
                | Some node -> node.tracked
                | None -> None))
          None owners
      in
      let set = match existing with Some s -> s | None -> make_set () in
      List.iter
        (fun i ->
          match hosted.(i) with
          | Some ({ tracked = None; _ } as node) -> track_node set node
          | _ -> ())
        owners;
      set
    in
    (* Block in the shard's readiness set until an owner's fd is ready;
       each event is dispatched through the fd index and surfaced to the
       caller as an [on_ready owner] activation, so the shard loop knows
       exactly which nodes to poll — no per-node scan at any point. *)
    let wait ~owners ~extra_fds ~timeout_s ~on_ready =
      List.iter (fun i -> check_node ~what:"wait owner" ~n i) owners;
      let set = ensure_tracked owners in
      List.iter
        (fun fd ->
          let key = fd_int fd in
          if not (Hashtbl.mem set.extra key) then begin
            Hashtbl.replace set.extra key ();
            reg stats set fd Wake ~read:true ~write:false
          end)
        extra_fds;
      let timeout = ref (Float.max 0.0 (Float.min timeout_s max_wait_s)) in
      (* Down peers with queued bytes wake their owner when the backoff
         expires; until then they bound the sleep. *)
      if set.retry_outs <> [] then begin
        let now = Unix.gettimeofday () in
        set.retry_outs <-
          List.filter
            (fun (node, co) ->
              if co.fd <> None || queued co = 0 then begin
                co.in_retry <- false;
                false
              end
              else if co.retry_at <= now then begin
                co.in_retry <- false;
                if not co.in_busy then begin
                  co.in_busy <- true;
                  node.busy <- co :: node.busy
                end;
                on_ready node.id;
                timeout := 0.0;
                false
              end
              else begin
                timeout := Float.min !timeout (co.retry_at -. now);
                true
              end)
            set.retry_outs
      end;
      Atomic.incr stats.wait_calls;
      (* Idle-Out connections torn down by the peer (ERR/HUP with zero
         write interest) are collected here and dropped only after the
         dispatch loop finishes: Readiness.wait's callback must not
         mutate the set, and an eager remove would swap-compact the poll
         backend's dense arrays mid-iteration. *)
      let dead_outs = ref [] in
      let ready =
        Readiness.wait set.rd ~timeout_s:!timeout
          (fun ~fd ~readable ~writable ->
            match Hashtbl.find_opt set.fdx fd with
            | None | Some Wake -> ()
            | Some (Listener node) ->
                if readable then begin
                  node.accept_ready <- true;
                  on_ready node.id
                end
            | Some (In (node, ci)) ->
                if readable && not ci.ready then begin
                  ci.ready <- true;
                  node.ready_ins <- ci :: node.ready_ins;
                  on_ready node.id
                end
            | Some (Out (node, co)) ->
                if queued co = 0 then begin
                  (* Zero interest, yet an event: only ERR/HUP can land
                     here — the peer closed an idle connection. Drop it
                     (deferred) or level-triggered epoll reports it on
                     every wait. *)
                  match co.fd with
                  | Some cfd when fd_int cfd = fd ->
                      dead_outs := (cfd, co) :: !dead_outs
                  | _ -> ()
                end
                else if writable then on_ready node.id)
      in
      List.iter
        (fun (cfd, co) ->
          unreg stats set cfd;
          close_quietly cfd;
          co.fd <- None)
        !dead_outs;
      if ready > 0 then ignore (Atomic.fetch_and_add stats.fds_ready ready)
    in
    let close () =
      Array.iter
        (function
          | None -> ()
          | Some node ->
              close_quietly node.listen;
              List.iter (fun (ci : conn_in) -> close_quietly ci.fd) node.ins;
              Hashtbl.iter
                (fun _ co ->
                  match co.fd with Some fd -> close_quietly fd | None -> ())
                node.outs;
              (match addrs.(node.id) with
              | Unix.ADDR_UNIX path -> unlink_quietly path
              | Unix.ADDR_INET _ -> ()))
        hosted;
      Mutex.lock sets_mu;
      let sets = !shard_sets in
      shard_sets := [];
      Mutex.unlock sets_mu;
      List.iter (fun set -> Readiness.close set.rd) sets
    in
    let name =
      if n > 0 then
        match addrs.(0) with
        | Unix.ADDR_UNIX _ -> "unix"
        | Unix.ADDR_INET _ -> "tcp"
      else "tcp"
    in
    {
      name;
      readiness = Readiness.backend_name rd_backend;
      stats;
      poll_driven = true;
      send;
      send_frame;
      poll;
      next_due;
      wait;
      close;
    }
end

let loopback ~clock ~n = Loopback.create ~clock ~n

let sockets ?readiness ~clock ~n ~owned ~addrs () =
  Sockets.create ?readiness ~clock ~n ~owned ~addrs ()

let uds_addrs ~dir ~n =
  Array.init n (fun i ->
      Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" i)))

let tcp_addrs ?(host = "127.0.0.1") ~base_port ~n () =
  let ip = Unix.inet_addr_of_string host in
  Array.init n (fun i -> Unix.ADDR_INET (ip, base_port + i))
