open Tr_wire

type stats = {
  frames_sent : int Atomic.t;
  bytes_sent : int Atomic.t;
  frames_received : int Atomic.t;
  decode_errors : int Atomic.t;
  resync_skips : int Atomic.t;
  reconnects : int Atomic.t;
  frames_dropped : int Atomic.t;
  out_hwm_bytes : int Atomic.t;
  write_syscalls : int Atomic.t;
  read_syscalls : int Atomic.t;
  wait_calls : int Atomic.t;
  fds_ready : int Atomic.t;
  fds_registered : int Atomic.t;
  spin_hits : int Atomic.t;
  spin_misses : int Atomic.t;
  sqes_submitted : int Atomic.t;
  inproc_frames : int Atomic.t;
}

let make_stats () =
  {
    frames_sent = Atomic.make 0;
    bytes_sent = Atomic.make 0;
    frames_received = Atomic.make 0;
    decode_errors = Atomic.make 0;
    resync_skips = Atomic.make 0;
    reconnects = Atomic.make 0;
    frames_dropped = Atomic.make 0;
    out_hwm_bytes = Atomic.make 0;
    write_syscalls = Atomic.make 0;
    read_syscalls = Atomic.make 0;
    wait_calls = Atomic.make 0;
    fds_ready = Atomic.make 0;
    fds_registered = Atomic.make 0;
    spin_hits = Atomic.make 0;
    spin_misses = Atomic.make 0;
    sqes_submitted = Atomic.make 0;
    inproc_frames = Atomic.make 0;
  }

(* A coherent point-in-time copy: every counter read exactly once, so a
   report racing live shards (or their teardown) can never observe a
   counter twice with different values or tear a row mid-print. *)
type snapshot = {
  snap_frames_sent : int;
  snap_bytes_sent : int;
  snap_frames_received : int;
  snap_decode_errors : int;
  snap_resync_skips : int;
  snap_reconnects : int;
  snap_frames_dropped : int;
  snap_out_hwm_bytes : int;
  snap_write_syscalls : int;
  snap_read_syscalls : int;
  snap_wait_calls : int;
  snap_fds_ready : int;
  snap_fds_registered : int;
  snap_spin_hits : int;
  snap_spin_misses : int;
  snap_sqes_submitted : int;
  snap_inproc_frames : int;
}

let snapshot_of_stats s =
  {
    snap_frames_sent = Atomic.get s.frames_sent;
    snap_bytes_sent = Atomic.get s.bytes_sent;
    snap_frames_received = Atomic.get s.frames_received;
    snap_decode_errors = Atomic.get s.decode_errors;
    snap_resync_skips = Atomic.get s.resync_skips;
    snap_reconnects = Atomic.get s.reconnects;
    snap_frames_dropped = Atomic.get s.frames_dropped;
    snap_out_hwm_bytes = Atomic.get s.out_hwm_bytes;
    snap_write_syscalls = Atomic.get s.write_syscalls;
    snap_read_syscalls = Atomic.get s.read_syscalls;
    snap_wait_calls = Atomic.get s.wait_calls;
    snap_fds_ready = Atomic.get s.fds_ready;
    snap_fds_registered = Atomic.get s.fds_registered;
    snap_spin_hits = Atomic.get s.spin_hits;
    snap_spin_misses = Atomic.get s.spin_misses;
    snap_sqes_submitted = Atomic.get s.sqes_submitted;
    snap_inproc_frames = Atomic.get s.inproc_frames;
  }

type t = {
  name : string;
  readiness : string;
  stats : stats;
  poll_driven : bool;
  send : src:int -> dst:int -> delay:float -> string -> unit;
  send_frame : src:int -> dst:int -> delay:float -> Buffer.t -> unit;
  poll : owner:int -> upto:float -> (Frame.view -> unit) -> unit;
  next_due : owner:int -> float option;
  wait :
    owners:int list ->
    extra_fds:Unix.file_descr list ->
    timeout_s:float ->
    on_ready:(int -> unit) ->
    unit;
  close : unit -> unit;
}

let name t = t.name
let readiness_backend t = t.readiness
let stats t = t.stats
let snapshot t = snapshot_of_stats t.stats
let poll_driven t = t.poll_driven
let send t = t.send
let send_frame t = t.send_frame
let poll t ?(upto = infinity) ~owner f = t.poll ~owner ~upto f
let next_due t = t.next_due

let wait t ?(extra_fds = []) ?(on_ready = fun _ -> ()) ~owners ~timeout_s () =
  t.wait ~owners ~extra_fds ~timeout_s ~on_ready

let count_decode_error t = Atomic.incr t.stats.decode_errors
let close t = t.close ()

(* Upper bound on any readiness sleep: a safety net against a lost
   wake-up, far above the hot-path cadence and far below human patience. *)
let max_wait_s = 0.25

(* Pull every complete payload view out of [dec]. Views borrow the
   decoder's buffer; that is safe here because nothing feeds [dec]
   until the callback returns. *)
let drain_decoder stats dec f =
  let rec go () =
    match Frame.Decoder.next_view dec with
    | Frame.Decoder.View v ->
        Atomic.incr stats.frames_received;
        f v;
        go ()
    | Frame.Decoder.Skip_view _ ->
        Atomic.incr stats.resync_skips;
        go ()
    | Frame.Decoder.Await_view -> ()
  in
  go ()

let check_node ~what ~n i =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Transport: %s node %d out of range" what i)

(* ------------------------------------------------------------------ *)
(* Loopback                                                            *)
(* ------------------------------------------------------------------ *)

module Loopback = struct
  type node = {
    (* Cross-domain side: producers push (due, frame). *)
    inbox : (float * string) Mailbox.t;
    (* Owner-shard side: deliveries ordered by due time. *)
    pending : string Tr_sim.Pqueue.t;
  }

  let make_node () = { inbox = Mailbox.create (); pending = Tr_sim.Pqueue.create () }

  (* Move everything the other domains queued into the owner's heap. *)
  let settle node =
    List.iter
      (fun (due, frame) -> Tr_sim.Pqueue.push node.pending ~time:due frame)
      (Mailbox.drain node.inbox)

  let create ~clock ~n =
    let stats = make_stats () in
    let nodes = Array.init n (fun _ -> make_node ()) in
    let push ~src ~dst ~delay frame =
      check_node ~what:"send src" ~n src;
      check_node ~what:"send dst" ~n dst;
      ignore src;
      Atomic.incr stats.frames_sent;
      ignore (Atomic.fetch_and_add stats.bytes_sent (String.length frame));
      let due = Clock.now clock +. Float.max 0.0 delay in
      Mailbox.push nodes.(dst).inbox (due, frame)
    in
    let send ~src ~dst ~delay frame = push ~src ~dst ~delay frame in
    (* The frame must outlive the mailbox hop, so crossing domains costs
       exactly one string per frame — and that string is then decoded in
       place ([decode_exact]), never copied again. *)
    let send_frame ~src ~dst ~delay buf =
      push ~src ~dst ~delay (Buffer.contents buf)
    in
    let poll ~owner ~upto f =
      check_node ~what:"poll owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      let now = Float.min (Clock.now clock) upto in
      let rec deliver () =
        if
          (not (Tr_sim.Pqueue.is_empty node.pending))
          && Tr_sim.Pqueue.top_time_exn node.pending <= now
        then begin
          let frame = Tr_sim.Pqueue.pop_exn node.pending in
          (match Frame.decode_exact frame with
          | Ok v ->
              Atomic.incr stats.frames_received;
              f v
          | Error _ -> Atomic.incr stats.resync_skips);
          deliver ()
        end
      in
      deliver ()
    in
    let next_due ~owner =
      check_node ~what:"next_due owner" ~n owner;
      let node = nodes.(owner) in
      settle node;
      Tr_sim.Pqueue.peek_time node.pending
    in
    let wait ~owners:_ ~extra_fds:_ ~timeout_s ~on_ready:_ =
      if timeout_s > 0.0 then Unix.sleepf (Float.min timeout_s max_wait_s)
    in
    {
      name = "loopback";
      readiness = "none";
      stats;
      poll_driven = false;
      send;
      send_frame;
      poll;
      next_due;
      wait;
      close = (fun () -> ());
    }
end

(* ------------------------------------------------------------------ *)
(* Sockets (TCP / Unix-domain)                                         *)
(* ------------------------------------------------------------------ *)

module Sockets = struct
  let backoff_min = 0.01
  let backoff_max = 1.0

  (* Cap on bytes queued behind an unreachable peer. Past this, new
     frames are dropped whole (never split — that would corrupt the
     framing) and counted in [frames_dropped]. *)
  let high_water = 4 * 1024 * 1024

  (* [Unix.write] cannot pass MSG_NOSIGNAL, so a write to a peer that
     closed its end raises SIGPIPE and the default handler kills the
     whole process before [tear_down] can run. Ignore it once,
     process-wide, so the failure surfaces as EPIPE instead. *)
  let ignore_sigpipe =
    lazy
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ | Sys_error _ -> ())

  (* Nagle's algorithm would hold our (already-coalesced) small writes
     back waiting for acks; batching happens in [conn_out], not in the
     kernel, so tell TCP to ship immediately. *)
  let set_nodelay fd =
    try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

  (* Unix.file_descr is an int on every Unix OCaml port; the fd->peer
     index is keyed by it, and completion-mode accepts return raw fds. *)
  external fd_int : Unix.file_descr -> int = "%identity"
  external fd_of_int : int -> Unix.file_descr = "%identity"

  type conn_in = {
    fd : Unix.file_descr;
    dec : Frame.Decoder.t;
    mutable ready : bool;  (** Queued in its node's [ready_ins]. *)
    mutable rd_id : int;  (** Completion mode: in-flight read/poll key. *)
    mutable rd_slot : int;
        (** Completion mode: owned arena slot, [-1] none (poll
            fallback), [-2] connection dead. *)
  }

  (* Outgoing frames coalesce into one flat buffer, flushed with a
     single [write] per poll. [bounds] remembers each queued frame's
     length so a torn-down connection can drop its partially-written
     head frame whole — resuming mid-frame on a fresh connection would
     open the stream with garbage and force a resync at the receiver. *)
  type conn_out = {
    addr : Unix.sockaddr;
    mutable fd : Unix.file_descr option;
    mutable out : Bytes.t;  (** Unwritten bytes live in [out_pos..out_len). *)
    mutable out_pos : int;
    mutable out_len : int;
    bounds : int Queue.t;  (** Byte length of each queued frame, in order. *)
    mutable head_off : int;  (** Bytes of the head frame already written. *)
    mutable backoff : float;
    mutable retry_at : float;  (** Wall time before which we won't dial. *)
    mutable in_busy : bool;  (** Queued in its node's [busy]. *)
    mutable in_retry : bool;  (** Queued in its shard set's [retry_outs]. *)
    mutable wr_id : int;  (** Completion mode: in-flight write key. *)
    mutable wr_slot : int;  (** Completion mode: owned arena slot or -1. *)
    mutable wr_len : int;  (** Length of the in-flight write. *)
    mutable po_id : int;  (** Completion mode: in-flight POLLOUT key. *)
  }

  let queued co = co.out_len - co.out_pos

  (* A node is {e tracked} once its owning shard first calls [wait]: its
     fds then live in that shard's readiness set and [poll] touches only
     what the last wait reported ready — O(ready), not O(connections).
     Untracked nodes (raw bench pumps that never wait) keep the legacy
     scan-everything poll. *)
  type node = {
    id : int;
    listen : Unix.file_descr;
    nodelay : bool;
    mutable ins : conn_in list;
    outs : (int, conn_out) Hashtbl.t;  (** Keyed by destination node id. *)
    readbuf : Bytes.t Lazy.t;  (** Untracked mode only; tracked reads share
                                   the shard set's buffer. *)
    mutable tracked : shard_set option;
    tracked_pub : shard_set option Atomic.t;
        (** [tracked], republished for cross-domain readers: in-process
            senders on other domains must see the adoption (or be seen —
            see the salvage in [track_node]); a plain mutable read gives
            neither guarantee. *)
    mutable accept_ready : bool;
    mutable ready_ins : conn_in list;
    mutable busy : conn_out list;  (** Conns with unflushed bytes. *)
    mutable accept_id : int;  (** Completion mode: in-flight accept key. *)
    ipc : string Mailbox.t;  (** In-process fast path: inbound frames. *)
    ipc_queued : bool Atomic.t;  (** Queued in its shard's [ipc_pending]. *)
  }

  (* One per waiting shard: either a readiness set all the shard's fds
     are registered in (with the fd->peer index that turns a ready fd
     back into work in O(1)), or a completion ring where the pending
     operations themselves carry the peer (keyed through [utab]). *)
  and shard_set = {
    rd : rd_impl;
    fdx : (int, entry) Hashtbl.t;  (** Readiness mode only. *)
    sbuf : Bytes.t;  (** Shared read buffer — one per shard, not per node. *)
    mutable retry_outs : (node * conn_out) list;
        (** Down peers with queued bytes, waiting out their backoff. *)
    extra : (int, unit) Hashtbl.t;  (** Registered caller wake fds. *)
    selfwake : Wakeup.t;
        (** Transport-owned wake pipe: in-process senders on other
            domains write here to interrupt this shard's sleep. *)
    idle : bool Atomic.t;
        (** True only while blocked in the kernel — the Dekker flag of
            the in-process wake protocol: senders push the frame first,
            then wake only if the receiver had already declared idle. *)
    ipc_pending : node Mailbox.t;
        (** Hosted nodes with undrained in-process frames. *)
    mutable ewma_gap : float;  (** Recent inter-event gap estimate (s). *)
    mutable last_event : float;
    (* Completion mode state. *)
    mutable rearm_accepts : node list;  (** Accept arms to retry at wait. *)
    wake_armed : (int, unit) Hashtbl.t;  (** Armed wake-fd polls. *)
    mutable next_key : int;  (** Submission keys; 0 reserved. *)
    utab : (int, uent) Hashtbl.t;  (** In-flight op by submission key. *)
    mutable last_enters : int;
        (** Ring counters already folded into the shared stats — preps
            between waits (and SQ-full flushes) are charged at the next
            wait by diffing the ring's cumulative counters. *)
    mutable wait_skips : int;
        (** Consecutive kernel waits elided because in-process work was
            already in hand (bounded in readiness mode so socket fds are
            still visited; unbounded in completion mode, where an empty
            SQ and CQ make the elided enter provably a no-op). *)
    mutable last_sqes : int;
  }

  and rd_impl = Rdy of Readiness.t | Cmp of Completion.t

  and entry =
    | Listener of node
    | In of node * conn_in
    | Out of node * conn_out
    | Wake
    | SelfWake of Wakeup.t

  (* What an in-flight completion-mode submission was. *)
  and uent =
    | U_accept of node
    | U_read of node * conn_in
    | U_pollin of node * conn_in
    | U_write of node * conn_out
    | U_pollout of node * conn_out
    | U_wake of Unix.file_descr

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  (* Registration keeps the [fds_registered] gauge honest: an fd counts
     once, however often its interest mask changes. Removal must happen
     before the fd is closed (epoll auto-forgets closed fds, but the
     poll/select sets would otherwise scan a dead descriptor). *)
  let reg stats set fd entry ~read ~write =
    match set.rd with
    | Cmp _ -> () (* completion mode: interest is submission-driven *)
    | Rdy rd ->
        let key = fd_int fd in
        if not (Hashtbl.mem set.fdx key) then begin
          Hashtbl.replace set.fdx key entry;
          Atomic.incr stats.fds_registered
        end;
        Readiness.set rd fd ~read ~write

  let unreg stats set fd =
    match set.rd with
    | Cmp _ -> ()
    | Rdy rd ->
        let key = fd_int fd in
        if Hashtbl.mem set.fdx key then begin
          Hashtbl.remove set.fdx key;
          Atomic.decr stats.fds_registered;
          Readiness.remove rd fd
        end

  let reset_if_empty co =
    if queued co = 0 then begin
      co.out_pos <- 0;
      co.out_len <- 0
    end

  let tear_down stats tracked co =
    (match co.fd with
    | Some fd ->
        (match tracked with Some set -> unreg stats set fd | None -> ());
        close_quietly fd
    | None -> ());
    co.fd <- None;
    if co.head_off > 0 then begin
      (* Drop the half-written head frame whole; its tail must not open
         the next connection mid-frame. *)
      let head = Queue.pop co.bounds in
      co.out_pos <- co.out_pos + (head - co.head_off);
      co.head_off <- 0;
      Atomic.incr stats.frames_dropped;
      reset_if_empty co
    end;
    co.backoff <- Float.min backoff_max (Float.max backoff_min (2.0 *. co.backoff));
    co.retry_at <- Unix.gettimeofday () +. co.backoff;
    Atomic.incr stats.reconnects

  let dial stats node co =
    let fd = Unix.socket (Unix.domain_of_sockaddr co.addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (match co.addr with
    | Unix.ADDR_INET _ -> set_nodelay fd
    | Unix.ADDR_UNIX _ -> ());
    let connected () =
      co.fd <- Some fd;
      (* Write interest from the start: dialing only ever happens with
         bytes queued, and a connect still in progress completes as a
         writability event. *)
      match node.tracked with
      | Some set -> reg stats set fd (Out (node, co)) ~read:false ~write:true
      | None -> ()
    in
    match Unix.connect fd co.addr with
    | () -> connected ()
    | exception Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN | EINTR), _, _)
      ->
        connected ()
    | exception Unix.Unix_error (_, _, _) ->
        close_quietly fd;
        co.fd <- None;
        tear_down stats node.tracked co

  (* Append [len] frame bytes to the coalescing buffer. [blit dst dstoff]
     writes them; the caller has already counted the frame. *)
  let append co ~len blit =
    if co.out_len + len > Bytes.length co.out then begin
      if co.out_pos > 0 then begin
        Bytes.blit co.out co.out_pos co.out 0 (queued co);
        co.out_len <- queued co;
        co.out_pos <- 0
      end;
      if co.out_len + len > Bytes.length co.out then begin
        let cap = ref (Stdlib.max 4096 (2 * Bytes.length co.out)) in
        while co.out_len + len > !cap do
          cap := 2 * !cap
        done;
        let bigger = Bytes.create !cap in
        Bytes.blit co.out 0 bigger 0 co.out_len;
        co.out <- bigger
      end
    end;
    blit co.out co.out_len;
    co.out_len <- co.out_len + len;
    Queue.add len co.bounds

  (* Account [wrote] flushed bytes against the frame-boundary queue. *)
  let advance co wrote =
    co.out_pos <- co.out_pos + wrote;
    let rec pop w =
      if w > 0 then begin
        let head = Queue.peek co.bounds in
        let rem = head - co.head_off in
        if w >= rem then begin
          ignore (Queue.pop co.bounds);
          co.head_off <- 0;
          pop (w - rem)
        end
        else co.head_off <- co.head_off + w
      end
    in
    pop wrote;
    reset_if_empty co

  (* One [write] covering every queued frame; a partial write means the
     kernel buffer is full, so stop rather than spin. Sends between two
     polls therefore cost at most one syscall total. *)
  let rec flush stats node co =
    if queued co > 0 then
      match co.fd with
      | None ->
          if Unix.gettimeofday () >= co.retry_at then begin
            dial stats node co;
            if co.fd <> None then flush stats node co
          end
      | Some fd -> (
          match Unix.write fd co.out co.out_pos (queued co) with
          | wrote ->
              Atomic.incr stats.write_syscalls;
              co.backoff <- backoff_min;
              advance co wrote
          | exception
              Unix.Unix_error
                ( (EAGAIN | EWOULDBLOCK | EINTR | ENOTCONN | EINPROGRESS | EALREADY),
                  _,
                  _ ) ->
              (* Still connecting, or the kernel buffer is full; the bytes
                 stay queued for the next poll. *)
              Atomic.incr stats.write_syscalls
          | exception Unix.Unix_error (_, _, _) ->
              Atomic.incr stats.write_syscalls;
              tear_down stats node.tracked co)

  let unlink_quietly path = try Unix.unlink path with Unix.Unix_error _ -> ()

  let make_listener addr =
    (match addr with
    | Unix.ADDR_UNIX path -> unlink_quietly path
    | Unix.ADDR_INET _ -> ());
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    Unix.bind fd addr;
    Unix.listen fd 1024;
    Unix.set_nonblock fd;
    fd

  let accept_all stats node =
    let rec go () =
      match Unix.accept ~cloexec:true node.listen with
      | fd, _ ->
          Unix.set_nonblock fd;
          if node.nodelay then set_nodelay fd;
          let ci =
            {
              fd;
              dec = Frame.Decoder.create ();
              ready = false;
              rd_id = 0;
              rd_slot = -1;
            }
          in
          node.ins <- ci :: node.ins;
          (* Level-triggered registration: bytes that raced in before
             this point still report readable on the next wait. *)
          (match node.tracked with
          | Some set -> reg stats set fd (In (node, ci)) ~read:true ~write:false
          | None -> ());
          go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()

  (* Read everything available on one inbound connection. Returns false
     when the connection is finished (EOF or error) and should drop —
     the caller deregisters before closing. *)
  let read_conn stats buf (ci : conn_in) f =
    let rec go () =
      match Unix.read ci.fd buf 0 (Bytes.length buf) with
      | 0 ->
          Atomic.incr stats.read_syscalls;
          false
      | k ->
          Atomic.incr stats.read_syscalls;
          Frame.Decoder.feed_sub ci.dec buf ~pos:0 ~len:k;
          drain_decoder stats ci.dec f;
          if k = Bytes.length buf then go () else true
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          Atomic.incr stats.read_syscalls;
          true
      | exception Unix.Unix_error (_, _, _) ->
          Atomic.incr stats.read_syscalls;
          false
    in
    go ()

  let drop_in stats node (ci : conn_in) =
    (match node.tracked with Some set -> unreg stats set ci.fd | None -> ());
    close_quietly ci.fd;
    node.ins <- List.filter (fun c -> c != ci) node.ins

  (* Legacy poll: scan every connection the node has. Only nodes whose
     shard never waits (raw pumps) pay this. *)
  let poll_untracked stats node f =
    accept_all stats node;
    let buf = Lazy.force node.readbuf in
    node.ins <-
      List.filter
        (fun ci ->
          let keep = read_conn stats buf ci f in
          if not keep then close_quietly ci.fd;
          keep)
        node.ins;
    Hashtbl.iter (fun _ co -> flush stats node co) node.outs

  (* In-process fast path: decode frames other co-resident nodes pushed
     straight into this node's mailbox — no fd, no syscall, no shard
     buffer. [decode_exact] decodes the one-hop string in place. *)
  let drain_ipc stats node f =
    match Mailbox.drain node.ipc with
    | [] -> ()
    | frames ->
        List.iter
          (fun frame ->
            match Frame.decode_exact frame with
            | Ok v ->
                Atomic.incr stats.frames_received;
                f v
            | Error _ -> Atomic.incr stats.resync_skips)
          frames

  (* Tracked poll: touch only what readiness reported (accept_ready,
     ready_ins) plus connections with unflushed bytes (busy). Write
     interest tracks the busy state so an idle cluster registers no
     write-side events at all. *)
  let poll_tracked stats set node f =
    let rd = match set.rd with Rdy rd -> rd | Cmp _ -> assert false in
    if node.accept_ready then begin
      node.accept_ready <- false;
      accept_all stats node
    end;
    (match node.ready_ins with
    | [] -> ()
    | ris ->
        node.ready_ins <- [];
        List.iter
          (fun ci ->
            ci.ready <- false;
            if not (read_conn stats set.sbuf ci f) then drop_in stats node ci)
          ris);
    match node.busy with
    | [] -> ()
    | busy ->
        node.busy <- [];
        List.iter
          (fun co ->
            flush stats node co;
            if queued co = 0 then begin
              co.in_busy <- false;
              match co.fd with
              | Some fd -> Readiness.set rd fd ~read:false ~write:false
              | None -> ()
            end
            else begin
              node.busy <- co :: node.busy;
              match co.fd with
              | Some fd -> reg stats set fd (Out (node, co)) ~read:false ~write:true
              | None ->
                  if not co.in_retry then begin
                    co.in_retry <- true;
                    set.retry_outs <- (node, co) :: set.retry_outs
                  end
            end)
          busy

  (* ---------------------------------------------------------------- *)
  (* Completion mode: the shard's hot path on the uring backend.       *)
  (*                                                                   *)
  (* Instead of readiness + read/write syscalls, every operation is a  *)
  (* submission: an ACCEPT rides on each listener, a READ (into an     *)
  (* owned arena slot) rides on each inbound connection, and queued    *)
  (* output goes out as WRITE submissions from a staging slot. All of  *)
  (* a shard's submissions flush in the single io_uring_enter of its   *)
  (* wait, which also collects every completion — one syscall per      *)
  (* wait, not three per hop. Slot or SQ exhaustion degrades honestly  *)
  (* to the direct read/write path (counted as syscalls) guarded by    *)
  (* one-shot polls.                                                   *)
  (* ---------------------------------------------------------------- *)

  let fresh_key set ent =
    let k = set.next_key in
    set.next_key <- k + 1;
    Hashtbl.replace set.utab k ent;
    k

  let cancel_key set c id = Hashtbl.remove set.utab id; Completion.prep_cancel c id

  let mark_ready node ci on_ready =
    if not ci.ready then begin
      ci.ready <- true;
      node.ready_ins <- ci :: node.ready_ins
    end;
    on_ready node.id

  let arm_accept set c node =
    if node.accept_id = 0 then begin
      let k = fresh_key set (U_accept node) in
      Completion.prep_accept c node.listen k;
      node.accept_id <- k
    end

  (* Keep a READ submission outstanding on an inbound connection; when
     the arena is exhausted, degrade to a one-shot readable poll whose
     completion routes through the direct-read fallback. *)
  let arm_read set c node ci =
    if ci.rd_id = 0 && ci.rd_slot <> -2 then begin
      let slot = if ci.rd_slot >= 0 then ci.rd_slot else Completion.alloc_slot c in
      if slot >= 0 then begin
        ci.rd_slot <- slot;
        let k = fresh_key set (U_read (node, ci)) in
        Completion.prep_read c ci.fd slot k;
        ci.rd_id <- k
      end
      else begin
        let k = fresh_key set (U_pollin (node, ci)) in
        Completion.prep_poll c ci.fd 1 k;
        ci.rd_id <- k
      end
    end

  let drop_in_cmp stats set c node ci =
    if ci.rd_id <> 0 then begin
      cancel_key set c ci.rd_id;
      ci.rd_id <- 0
    end;
    if ci.rd_slot >= 0 then Completion.free_slot c ci.rd_slot;
    ci.rd_slot <- -2;
    close_quietly ci.fd;
    Atomic.decr stats.fds_registered;
    node.ins <- List.filter (fun x -> x != ci) node.ins

  let tear_down_cmp stats set c co =
    if co.wr_id <> 0 then begin
      cancel_key set c co.wr_id;
      co.wr_id <- 0
    end;
    if co.po_id <> 0 then begin
      cancel_key set c co.po_id;
      co.po_id <- 0
    end;
    if co.wr_slot >= 0 then begin
      Completion.free_slot c co.wr_slot;
      co.wr_slot <- -1
    end;
    (* [tracked = None] on purpose: there is no readiness registration
       to unwind in completion mode. *)
    tear_down stats None co

  (* Put (more of) [co]'s queued bytes in flight. At most one WRITE
     submission per connection is outstanding; its completion chains
     the next chunk until the queue drains. The no-slot fallback is the
     classic direct write, with a POLLOUT poll to finish a short
     write. *)
  let submit_write stats set c node co =
    match co.fd with
    | None -> ()
    | Some fd ->
        if co.wr_id = 0 && queued co > 0 then begin
          let slot =
            if co.wr_slot >= 0 then co.wr_slot else Completion.alloc_slot c
          in
          if slot >= 0 then begin
            co.wr_slot <- slot;
            let len = Stdlib.min (queued co) (Completion.slot_bytes c) in
            Completion.blit_to_slot c slot co.out co.out_pos len;
            let k = fresh_key set (U_write (node, co)) in
            Completion.prep_write c fd slot len k;
            co.wr_id <- k;
            co.wr_len <- len
          end
          else begin
            flush stats node co;
            if queued co > 0 && co.fd <> None && co.po_id = 0 then begin
              let k = fresh_key set (U_pollout (node, co)) in
              Completion.prep_poll c fd 2 k;
              co.po_id <- k
            end
          end
        end

  (* One completion event. Cancellations complete under the reserved
     key 0, which is never in [utab], so they fall out at the lookup. *)
  let dispatch_cqe stats set c on_ready ~key ~res =
    match Hashtbl.find_opt set.utab key with
    | None -> ()
    | Some ent -> (
        Hashtbl.remove set.utab key;
        match ent with
        | U_wake fd ->
            Hashtbl.remove set.wake_armed (fd_int fd);
            if fd_int fd = fd_int (Wakeup.read_fd set.selfwake) then
              Wakeup.drain set.selfwake
        | U_accept node -> (
            node.accept_id <- 0;
            match Completion.classify res with
            | Completion.Ok ->
                let nfd = fd_of_int res in
                if node.nodelay then set_nodelay nfd;
                let ci =
                  {
                    fd = nfd;
                    dec = Frame.Decoder.create ();
                    ready = false;
                    rd_id = 0;
                    rd_slot = -1;
                  }
                in
                node.ins <- ci :: node.ins;
                Atomic.incr stats.fds_registered;
                arm_read set c node ci;
                arm_accept set c node
            | Completion.Retry -> arm_accept set c node
            | Completion.Canceled -> ()
            | Completion.Error ->
                (* E.g. EMFILE. Retrying at the next wait keeps the
                   listener alive without a hot error loop. *)
                set.rearm_accepts <- node :: set.rearm_accepts)
        | U_read (node, ci) ->
            ci.rd_id <- 0;
            if res > 0 then begin
              Completion.blit_from_slot c ci.rd_slot set.sbuf 0 res;
              Frame.Decoder.feed_sub ci.dec set.sbuf ~pos:0 ~len:res;
              mark_ready node ci on_ready;
              arm_read set c node ci
            end
            else if res = 0 then begin
              (* EOF after whatever was already fed: deliver the tail,
                 then drop. *)
              mark_ready node ci on_ready;
              drop_in_cmp stats set c node ci
            end
            else begin
              match Completion.classify res with
              | Completion.Retry -> arm_read set c node ci
              | Completion.Canceled ->
                  if ci.rd_slot >= 0 then begin
                    Completion.free_slot c ci.rd_slot;
                    ci.rd_slot <- -1
                  end
              | Completion.Ok | Completion.Error ->
                  mark_ready node ci on_ready;
                  drop_in_cmp stats set c node ci
            end
        | U_pollin (node, ci) -> (
            ci.rd_id <- 0;
            match Completion.classify res with
            | Completion.Ok -> mark_ready node ci on_ready
            | Completion.Retry -> arm_read set c node ci
            | Completion.Canceled -> ()
            | Completion.Error ->
                mark_ready node ci on_ready;
                drop_in_cmp stats set c node ci)
        | U_write (node, co) ->
            co.wr_id <- 0;
            if res > 0 then begin
              co.backoff <- backoff_min;
              advance co res;
              if queued co = 0 then begin
                if co.wr_slot >= 0 then begin
                  Completion.free_slot c co.wr_slot;
                  co.wr_slot <- -1
                end
              end
              else submit_write stats set c node co
            end
            else begin
              match Completion.classify res with
              | Completion.Ok | Completion.Retry ->
                  (* res = 0 cannot happen for a non-empty write;
                     transient errors just resubmit the same chunk. *)
                  if queued co > 0 then begin
                    let k = fresh_key set (U_write (node, co)) in
                    Completion.prep_write c
                      (match co.fd with Some fd -> fd | None -> assert false)
                      co.wr_slot co.wr_len k;
                    co.wr_id <- k
                  end
              | Completion.Canceled ->
                  if co.wr_slot >= 0 then begin
                    Completion.free_slot c co.wr_slot;
                    co.wr_slot <- -1
                  end
              | Completion.Error -> tear_down_cmp stats set c co
            end
        | U_pollout (node, co) -> (
            co.po_id <- 0;
            match Completion.classify res with
            | Completion.Ok ->
                if queued co > 0 then begin
                  if not co.in_busy then begin
                    co.in_busy <- true;
                    node.busy <- co :: node.busy
                  end;
                  on_ready node.id
                end
            | Completion.Retry ->
                if queued co > 0 then begin
                  match co.fd with
                  | Some fd ->
                      let k = fresh_key set (U_pollout (node, co)) in
                      Completion.prep_poll c fd 2 k;
                      co.po_id <- k
                  | None -> ()
                end
            | Completion.Canceled -> ()
            | Completion.Error -> tear_down_cmp stats set c co))

  (* Completion-mode poll: reads were already decoded into each ready
     connection's decoder by the dispatcher, so delivery is a pure
     drain; poll-fallback connections do their direct read here. Busy
     outs (re)submit writes. *)
  let poll_tracked_cmp stats set c node f =
    if node.accept_ready then node.accept_ready <- false;
    (match node.ready_ins with
    | [] -> ()
    | ris ->
        node.ready_ins <- [];
        List.iter
          (fun ci ->
            ci.ready <- false;
            if ci.rd_slot <> -1 || ci.rd_id <> 0 then drain_decoder stats ci.dec f
            else if read_conn stats set.sbuf ci f then arm_read set c node ci
            else drop_in_cmp stats set c node ci)
          ris);
    match node.busy with
    | [] -> ()
    | busy ->
        node.busy <- [];
        List.iter
          (fun co ->
            co.in_busy <- false;
            if queued co > 0 && co.wr_id = 0 then begin
              (match co.fd with
              | None ->
                  if Unix.gettimeofday () >= co.retry_at then
                    dial stats node co
              | Some _ -> ());
              match co.fd with
              | Some _ ->
                  submit_write stats set c node co;
                  if co.wr_id = 0 && queued co > 0 && co.fd <> None then begin
                    (* Direct-flush fallback left bytes; stay busy so
                       the POLLOUT completion re-drives it. *)
                    co.in_busy <- true;
                    node.busy <- co :: node.busy
                  end
              | None ->
                  if not co.in_retry then begin
                    co.in_retry <- true;
                    set.retry_outs <- (node, co) :: set.retry_outs
                  end
            end)
          busy

  let env_flag name =
    match Sys.getenv_opt name with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false

  let create ?readiness ?spin ?inproc ~clock:_ ~n ~owned ~addrs () =
    Lazy.force ignore_sigpipe;
    (* High-N clusters hit the default soft RLIMIT_NOFILE long before
       they hit any real resource limit; raise it once per process. *)
    ignore (Readiness.raise_nofile ());
    let rd_backend =
      match readiness with
      | Some b -> Readiness.resolve ~source:"forced" b
      | None -> Readiness.default_backend ()
    in
    let cmp_mode = rd_backend = Readiness.Uring in
    let spin_wanted =
      match spin with Some s -> s | None -> env_flag "TR_SPIN"
    in
    (* Spinning trades CPU for wake latency, which is only a trade when
       there is a spare core to burn: on a single-CPU host the idle
       shard's busy-poll steals the very cycles the working shard needs,
       and "adaptive" must include adapting to the machine. Gate loudly,
       like an unavailable readiness backend. *)
    let spin = spin_wanted && Readiness.ncpus () > 1 in
    if spin_wanted && not spin then
      Printf.eprintf
        "[transport] spin-wait requested but only one CPU is online; \
         disabling the spin window (waits block immediately)\n\
         %!";
    let inproc =
      match inproc with Some i -> i | None -> env_flag "TR_INPROC"
    in
    if Array.length addrs <> n then
      invalid_arg "Transport.sockets: addrs array must have one entry per node";
    List.iter (fun i -> check_node ~what:"owned" ~n i) owned;
    let stats = make_stats () in
    let hosted = Array.make n None in
    List.iter
      (fun i ->
        hosted.(i) <-
          Some
            {
              id = i;
              listen = make_listener addrs.(i);
              nodelay =
                (match addrs.(i) with
                | Unix.ADDR_INET _ -> true
                | Unix.ADDR_UNIX _ -> false);
              ins = [];
              outs = Hashtbl.create 4;
              readbuf = lazy (Bytes.create 65536);
              tracked = None;
              tracked_pub = Atomic.make None;
              accept_ready = false;
              ready_ins = [];
              busy = [];
              accept_id = 0;
              ipc = Mailbox.create ();
              ipc_queued = Atomic.make false;
            })
      owned;
    let host ~what i =
      match hosted.(i) with
      | Some node -> node
      | None ->
          invalid_arg
            (Printf.sprintf "Transport.sockets: %s node %d is not hosted here"
               what i)
    in
    let out_conn node dst =
      match Hashtbl.find_opt node.outs dst with
      | Some co -> co
      | None ->
          let co =
            {
              addr = addrs.(dst);
              fd = None;
              out = Bytes.create 4096;
              out_pos = 0;
              out_len = 0;
              bounds = Queue.create ();
              head_off = 0;
              backoff = backoff_min;
              retry_at = 0.0;
              in_busy = false;
              in_retry = false;
              wr_id = 0;
              wr_slot = -1;
              wr_len = 0;
              po_id = 0;
            }
          in
          Hashtbl.replace node.outs dst co;
          co
    in
    (* In-process delivery: the frame goes straight into the hosted
       destination's mailbox as one string (wire-format identical to
       what the socket would carry), and the destination's shard is
       woken only if it had declared itself idle — the push/idle-check
       order here mirrors the idle-set/pending-check order in [wait],
       so a wake can be skipped only when the receiver is provably
       about to see the frame anyway. *)
    let deliver_inproc dnode frame =
      Atomic.incr stats.frames_sent;
      ignore (Atomic.fetch_and_add stats.bytes_sent (String.length frame));
      Atomic.incr stats.inproc_frames;
      Mailbox.push dnode.ipc frame;
      (* Dekker pair with [track_node]: the push above and this read are
         both SC, as are the adoption's publish and its mailbox check —
         so either this sender sees the destination's shard (and
         notifies it), or the adopting shard sees the pushed frame (and
         salvages the notification). A frame sent before the
         destination's first wait cannot be silently parked. *)
      match Atomic.get dnode.tracked_pub with
      | None -> ()
      | Some dset ->
          if Atomic.compare_and_set dnode.ipc_queued false true then
            Mailbox.push dset.ipc_pending dnode;
          if Atomic.get dset.idle then Wakeup.wake dset.selfwake
    in
    (* Enqueue only — the coalesced buffer is flushed once per [poll],
       so a burst of sends inside one loop iteration shares a single
       write syscall. *)
    let enqueue ~src ~dst ~len blit =
      check_node ~what:"send dst" ~n dst;
      let node = host ~what:"send src" src in
      let co = out_conn node dst in
      if queued co + len > high_water then Atomic.incr stats.frames_dropped
      else begin
        Atomic.incr stats.frames_sent;
        ignore (Atomic.fetch_and_add stats.bytes_sent len);
        append co ~len blit;
        (* Monotone max of any single peer's backlog — how close the run
           came to the high-water drop threshold. *)
        let rec bump v =
          let cur = Atomic.get stats.out_hwm_bytes in
          if v > cur && not (Atomic.compare_and_set stats.out_hwm_bytes cur v)
          then bump v
        in
        bump (queued co);
        if not co.in_busy then begin
          co.in_busy <- true;
          node.busy <- co :: node.busy
        end
      end
    in
    let send ~src ~dst ~delay:_ frame =
      if inproc && dst >= 0 && dst < n && hosted.(dst) <> None then begin
        check_node ~what:"send src" ~n src;
        ignore (host ~what:"send src" src);
        match hosted.(dst) with
        | Some dnode -> deliver_inproc dnode frame
        | None -> assert false
      end
      else
        enqueue ~src ~dst ~len:(String.length frame) (fun dst_buf dst_off ->
            Bytes.blit_string frame 0 dst_buf dst_off (String.length frame))
    in
    let send_frame ~src ~dst ~delay:_ buf =
      if inproc && dst >= 0 && dst < n && hosted.(dst) <> None then begin
        check_node ~what:"send src" ~n src;
        ignore (host ~what:"send src" src);
        match hosted.(dst) with
        | Some dnode -> deliver_inproc dnode (Buffer.contents buf)
        | None -> assert false
      end
      else
        enqueue ~src ~dst ~len:(Buffer.length buf) (fun dst_buf dst_off ->
            Buffer.blit buf 0 dst_buf dst_off (Buffer.length buf))
    in
    let poll ~owner ~upto:_ f =
      (* Socket arrival times are physical: any buffered byte arrived in
         the past, so an [upto] bound can never exclude it. *)
      let node = host ~what:"poll owner" owner in
      if inproc then drain_ipc stats node f;
      match node.tracked with
      | Some ({ rd = Cmp c; _ } as set) -> poll_tracked_cmp stats set c node f
      | Some set -> poll_tracked stats set node f
      | None -> poll_untracked stats node f
    in
    let next_due ~owner:_ = None in
    (* Shard sets are created lazily by the first wait of each shard;
       the list exists only so close can release the epoll fds. *)
    let sets_mu = Mutex.create () in
    let shard_sets = ref [] in
    let make_set () =
      let rd =
        if cmp_mode then Cmp (Completion.create ())
        else Rdy (Readiness.create ~backend:rd_backend ())
      in
      let set =
        {
          rd;
          fdx = Hashtbl.create 256;
          sbuf = Bytes.create 65536;
          retry_outs = [];
          extra = Hashtbl.create 4;
          selfwake = Wakeup.create ();
          idle = Atomic.make false;
          ipc_pending = Mailbox.create ();
          ewma_gap = 1e-3;
          last_event = Unix.gettimeofday ();
          rearm_accepts = [];
          wake_armed = Hashtbl.create 4;
          next_key = 1;
          utab = Hashtbl.create 256;
          last_enters = 0;
          last_sqes = 0;
          wait_skips = 0;
        }
      in
      (* The shard's own wake pipe rides in its set from day one; the
         completion backend arms it lazily at each wait instead. *)
      (match set.rd with
      | Rdy _ ->
          reg stats set (Wakeup.read_fd set.selfwake)
            (SelfWake set.selfwake) ~read:true ~write:false
      | Cmp _ -> ());
      Mutex.lock sets_mu;
      shard_sets := set :: !shard_sets;
      Mutex.unlock sets_mu;
      set
    in
    (* Move a node into a shard's readiness set. Registration is
       once-per-fd; the conservative ready flags make the node's next
       poll sweep everything once, after which O(ready) takes over. *)
    let track_node set node =
      node.tracked <- Some set;
      Atomic.set node.tracked_pub (Some set);
      (* Salvage half of the Dekker pair in [deliver_inproc]: frames
         that arrived while this node was unadopted carried no
         notification — queue one now, before the wait that called us
         drains [ipc_pending]. *)
      if
        inproc
        && (not (Mailbox.is_empty node.ipc))
        && Atomic.compare_and_set node.ipc_queued false true
      then Mailbox.push set.ipc_pending node;
      (match set.rd with
      | Rdy _ ->
          reg stats set node.listen (Listener node) ~read:true ~write:false;
          node.accept_ready <- true;
          List.iter
            (fun (ci : conn_in) ->
              reg stats set ci.fd (In (node, ci)) ~read:true ~write:false;
              if not ci.ready then begin
                ci.ready <- true;
                node.ready_ins <- ci :: node.ready_ins
              end)
            node.ins
      | Cmp c ->
          (* Submission-driven adoption: an ACCEPT on the listener and
             a READ per existing connection. Bytes already buffered in
             the kernel complete those reads immediately, so no
             conservative ready sweep is needed. *)
          Atomic.incr stats.fds_registered;
          arm_accept set c node;
          List.iter
            (fun (ci : conn_in) ->
              Atomic.incr stats.fds_registered;
              arm_read set c node ci)
            node.ins);
      Hashtbl.iter
        (fun _ co ->
          (match co.fd with
          | Some fd ->
              reg stats set fd (Out (node, co)) ~read:false
                ~write:(queued co > 0)
          | None -> ());
          if queued co > 0 && not co.in_busy then begin
            co.in_busy <- true;
            node.busy <- co :: node.busy
          end)
        node.outs
    in
    let ensure_tracked owners =
      let existing =
        List.fold_left
          (fun acc i ->
            match acc with
            | Some _ -> acc
            | None -> (
                match hosted.(i) with
                | Some node -> node.tracked
                | None -> None))
          None owners
      in
      let set = match existing with Some s -> s | None -> make_set () in
      List.iter
        (fun i ->
          match hosted.(i) with
          | Some ({ tracked = None; _ } as node) -> track_node set node
          | _ -> ())
        owners;
      set
    in
    (* Block in the shard's readiness set until an owner's fd is ready;
       each event is dispatched through the fd index and surfaced to the
       caller as an [on_ready owner] activation, so the shard loop knows
       exactly which nodes to poll — no per-node scan at any point. *)
    let wait ~owners ~extra_fds ~timeout_s ~on_ready =
      List.iter (fun i -> check_node ~what:"wait owner" ~n i) owners;
      let set = ensure_tracked owners in
      (match set.rd with
      | Rdy _ ->
          List.iter
            (fun fd ->
              let key = fd_int fd in
              if not (Hashtbl.mem set.extra key) then begin
                Hashtbl.replace set.extra key ();
                reg stats set fd Wake ~read:true ~write:false
              end)
            extra_fds
      | Cmp c ->
          (* Wake fds (the shard's own pipe plus the caller's) ride as
             one-shot polls; a completion unarms in dispatch and the
             next wait re-arms here. *)
          List.iter
            (fun fd ->
              let key = fd_int fd in
              if not (Hashtbl.mem set.wake_armed key) then begin
                Hashtbl.replace set.wake_armed key ();
                let k = fresh_key set (U_wake fd) in
                Completion.prep_poll c fd 1 k
              end)
            (Wakeup.read_fd set.selfwake :: extra_fds);
          (* Listeners whose accept completed with a hard error retry
             here, once per wait, instead of respinning hot. *)
          if set.rearm_accepts <> [] then begin
            let pending = set.rearm_accepts in
            set.rearm_accepts <- [];
            List.iter (fun node -> arm_accept set c node) pending
          end);
      let timeout = ref (Float.max 0.0 (Float.min timeout_s max_wait_s)) in
      (* In-process frames need no fd: drain the senders' notifications
         into activations. Clearing [ipc_queued] before [on_ready]
         guarantees a frame pushed after the drain re-notifies. *)
      let drain_pending () =
        let woken = ref 0 in
        List.iter
          (fun (dnode : node) ->
            Atomic.set dnode.ipc_queued false;
            incr woken;
            on_ready dnode.id)
          (Mailbox.drain set.ipc_pending);
        !woken
      in
      let woken = if inproc then drain_pending () else 0 in
      if woken > 0 then timeout := 0.0;
      (* Down peers with queued bytes wake their owner when the backoff
         expires; until then they bound the sleep. *)
      if set.retry_outs <> [] then begin
        let now = Unix.gettimeofday () in
        set.retry_outs <-
          List.filter
            (fun (node, co) ->
              if co.fd <> None || queued co = 0 then begin
                co.in_retry <- false;
                false
              end
              else if co.retry_at <= now then begin
                co.in_retry <- false;
                if not co.in_busy then begin
                  co.in_busy <- true;
                  node.busy <- co :: node.busy
                end;
                on_ready node.id;
                timeout := 0.0;
                false
              end
              else begin
                timeout := Float.min !timeout (co.retry_at -. now);
                true
              end)
            set.retry_outs
      end;
      (* Adaptive spin: before paying the blocking syscall, busy-poll
         the signals visible from user space alone — the mapped CQ ring
         and the in-process mailbox — for a window sized by the recent
         inter-event gap. A hit turns the kernel wait into a free
         zero-timeout drain; a miss costs a few microseconds of CPU.
         Spinning adds zero syscalls either way, which is why only
         those two signals qualify. *)
      (if spin && !timeout > 0.0 && (cmp_mode || inproc) then begin
         let signal () =
           (inproc && not (Mailbox.is_empty set.ipc_pending))
           ||
           match set.rd with
           | Cmp c -> Completion.cq_pending c
           | Rdy _ -> false
         in
         let budget = Float.min 100e-6 (Float.max 2e-6 (4.0 *. set.ewma_gap)) in
         let t0 = Unix.gettimeofday () in
         let hit = ref (signal ()) in
         while (not !hit) && Unix.gettimeofday () -. t0 < budget do
           Domain.cpu_relax ();
           hit := signal ()
         done;
         if !hit then begin
           Atomic.incr stats.spin_hits;
           timeout := 0.0
         end
         else Atomic.incr stats.spin_misses
       end);
      (* With in-process work already in hand, the kernel visit can be
         pure overhead: there is nothing to block for (timeout 0), and
         in completion mode an empty SQ and CQ make the elided enter
         provably a no-op — an async completion landing meanwhile is
         visible in the mapped CQ from user space and forces the next
         wait in. Readiness mode cannot prove the absence of socket
         events from user space, so its skips are bounded: every 64th
         wait visits the kernel and picks up whatever accrued. *)
      let skip_kernel =
        woken > 0 && !timeout <= 0.0
        &&
        match set.rd with
        | Cmp c -> Completion.sq_pending c = 0 && not (Completion.cq_pending c)
        | Rdy _ -> set.wait_skips < 63
      in
      if skip_kernel then set.wait_skips <- set.wait_skips + 1
      else begin
      set.wait_skips <- 0;
      (* Dekker handshake with in-process senders: publish idleness,
         then re-check the mailbox. A sender pushes first and wakes only
         if it saw [idle]; whichever side loses the race, either the
         recheck sees the push or the sender sees the flag — the wake
         cannot be lost. *)
      if inproc then begin
        Atomic.set set.idle true;
        if not (Mailbox.is_empty set.ipc_pending) then timeout := 0.0
      end;
      let ready =
        match set.rd with
        | Rdy rd ->
            Atomic.incr stats.wait_calls;
            (* Idle-Out connections torn down by the peer (ERR/HUP with
               zero write interest) are collected here and dropped only
               after the dispatch loop finishes: Readiness.wait's
               callback must not mutate the set, and an eager remove
               would swap-compact the poll backend's dense arrays
               mid-iteration. *)
            let dead_outs = ref [] in
            let ready =
              Readiness.wait rd ~timeout_s:!timeout
                (fun ~fd ~readable ~writable ->
                  match Hashtbl.find_opt set.fdx fd with
                  | None | Some Wake -> ()
                  | Some (SelfWake w) -> Wakeup.drain w
                  | Some (Listener node) ->
                      if readable then begin
                        node.accept_ready <- true;
                        on_ready node.id
                      end
                  | Some (In (node, ci)) ->
                      if readable && not ci.ready then begin
                        ci.ready <- true;
                        node.ready_ins <- ci :: node.ready_ins;
                        on_ready node.id
                      end
                  | Some (Out (node, co)) ->
                      if queued co = 0 then begin
                        (* Zero interest, yet an event: only ERR/HUP can
                           land here — the peer closed an idle
                           connection. Drop it (deferred) or
                           level-triggered epoll reports it on every
                           wait. *)
                        match co.fd with
                        | Some cfd when fd_int cfd = fd ->
                            dead_outs := (cfd, co) :: !dead_outs
                        | _ -> ()
                      end
                      else if writable then on_ready node.id)
            in
            List.iter
              (fun (cfd, co) ->
                unreg stats set cfd;
                close_quietly cfd;
                co.fd <- None)
              !dead_outs;
            ready
        | Cmp c ->
            (* One enter flushes every submission queued since the last
               wait and collects every completion. [dispatch_cqe] may
               prep (re-arms, chained writes); Completion.enter keeps
               draining until the CQ is empty, so those complete in the
               same wait when they finish instantly. *)
            let timeout_ns =
              if !timeout <= 0.0 then 0
              else int_of_float (Float.round (!timeout *. 1e9))
            in
            let dispatched =
              Completion.enter c ~timeout_ns
                ~f:(dispatch_cqe stats set c on_ready)
            in
            (* Fold the ring's cumulative counters into the shared stats
               by diffing against the last wait — this charges preps and
               SQ-full flushes made outside the wait too, so
               syscalls-per-grant stays honest. *)
            let enters = Completion.enter_syscalls c
            and sqes = Completion.sqes_submitted c in
            ignore
              (Atomic.fetch_and_add stats.wait_calls
                 (enters - set.last_enters));
            ignore
              (Atomic.fetch_and_add stats.sqes_submitted
                 (sqes - set.last_sqes));
            set.last_enters <- enters;
            set.last_sqes <- sqes;
            dispatched
      in
      if inproc then begin
        Atomic.set set.idle false;
        ignore (drain_pending () : int)
      end;
      if ready > 0 then begin
        let now = Unix.gettimeofday () in
        let gap = Float.max 1e-6 (now -. set.last_event) in
        set.ewma_gap <- (0.875 *. set.ewma_gap) +. (0.125 *. gap);
        set.last_event <- now;
        ignore (Atomic.fetch_and_add stats.fds_ready ready)
      end
      end
    in
    let close () =
      Array.iter
        (function
          | None -> ()
          | Some node ->
              close_quietly node.listen;
              List.iter (fun (ci : conn_in) -> close_quietly ci.fd) node.ins;
              Hashtbl.iter
                (fun _ co ->
                  match co.fd with Some fd -> close_quietly fd | None -> ())
                node.outs;
              (match addrs.(node.id) with
              | Unix.ADDR_UNIX path -> unlink_quietly path
              | Unix.ADDR_INET _ -> ()))
        hosted;
      Mutex.lock sets_mu;
      let sets = !shard_sets in
      shard_sets := [];
      Mutex.unlock sets_mu;
      List.iter
        (fun set ->
          (match set.rd with
          | Rdy rd -> Readiness.close rd
          | Cmp c -> Completion.close c);
          Wakeup.close set.selfwake)
        sets
    in
    let name =
      if n > 0 then
        match addrs.(0) with
        | Unix.ADDR_UNIX _ -> "unix"
        | Unix.ADDR_INET _ -> "tcp"
      else "tcp"
    in
    {
      name;
      readiness = Readiness.backend_name rd_backend;
      stats;
      poll_driven = true;
      send;
      send_frame;
      poll;
      next_due;
      wait;
      close;
    }
end

let loopback ~clock ~n = Loopback.create ~clock ~n

let sockets ?readiness ?spin ?inproc ~clock ~n ~owned ~addrs () =
  Sockets.create ?readiness ?spin ?inproc ~clock ~n ~owned ~addrs ()

let uds_addrs ~dir ~n =
  Array.init n (fun i ->
      Unix.ADDR_UNIX (Filename.concat dir (Printf.sprintf "node-%d.sock" i)))

let tcp_addrs ?(host = "127.0.0.1") ~base_port ~n () =
  let ip = Unix.inet_addr_of_string host in
  Array.init n (fun i -> Unix.ADDR_INET (ip, base_port + i))
