module Metrics = Tr_sim.Metrics
module Summary = Tr_stats.Summary
module Quantile = Tr_stats.Quantile

let escape_string s =
  let buffer = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_string s = Printf.sprintf "\"%s\"" (escape_string s)

let json_float f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else Printf.sprintf "%.9g" f

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_string k) v) fields)
  ^ "}"

let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception _) -> "unknown")

let summary_json s =
  obj
    [
      ("count", string_of_int (Summary.count s));
      ("mean", json_float (Summary.mean s));
      ("stddev", json_float (Summary.stddev s));
      ("min", json_float (Summary.min s));
      ("max", json_float (Summary.max s));
    ]

let quantiles_json q =
  obj
    (List.map
       (fun (label, p) -> (label, json_float (Quantile.quantile q p)))
       [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ])

let json_of_report (r : Cluster.report) =
  let m = r.metrics in
  obj
    [
      ("kind", json_string "live_run");
      ("protocol", json_string r.protocol);
      ("n", string_of_int r.n);
      ("seed", string_of_int r.seed);
      ("backend", json_string r.backend);
      ("readiness", json_string r.readiness);
      ("git", json_string (git_describe ()));
      ("generated_at", json_float (Unix.gettimeofday ()));
      ("unit_s", json_float r.unit_s);
      ("shards", string_of_int r.shards);
      ("wall_s", json_float r.wall_s);
      ("duration_units", json_float r.duration_units);
      ("grants", string_of_int r.grants);
      ("frames_sent", string_of_int r.frames_sent);
      ("bytes_sent", string_of_int r.bytes_sent);
      ("frames_received", string_of_int r.frames_received);
      ("decode_errors", string_of_int r.decode_errors);
      ("resync_skips", string_of_int r.resync_skips);
      ("reconnects", string_of_int r.reconnects);
      ("frames_dropped", string_of_int r.frames_dropped);
      ("out_hwm_bytes", string_of_int r.out_hwm_bytes);
      ("write_syscalls", string_of_int r.write_syscalls);
      ("read_syscalls", string_of_int r.read_syscalls);
      ("wait_calls", string_of_int r.wait_calls);
      ("fds_registered", string_of_int r.fds_registered);
      ("avg_ready_per_wait", json_float r.avg_ready_per_wait);
      ("spin_hits", string_of_int r.spin_hits);
      ("spin_misses", string_of_int r.spin_misses);
      ("sqes_submitted", string_of_int r.sqes_submitted);
      ("inproc_frames", string_of_int r.inproc_frames);
      ("syscalls_per_grant", json_float r.syscalls_per_grant);
      ("corrupt_frames_detected", string_of_int r.corrupt_frames_detected);
      ("chaos_spec", json_string r.chaos_spec);
      ( "chaos_injected",
        obj (List.map (fun (k, v) -> (k, string_of_int v)) r.chaos_injected) );
      ("chaos_total_injected", string_of_int r.chaos_total_injected);
      ("chaos_digest", string_of_int r.chaos_digest);
      ("pending", string_of_int (Metrics.total_pending m));
      ("responsiveness", summary_json (Metrics.responsiveness m));
      ( "responsiveness_quantiles",
        quantiles_json (Metrics.responsiveness_quantiles m) );
      ("waiting", summary_json (Metrics.waiting m));
      ("waiting_quantiles", quantiles_json (Metrics.waiting_quantiles m));
      ("token_messages", string_of_int (Metrics.token_messages m));
      ("control_messages", string_of_int (Metrics.control_messages m));
      ("search_forwards", string_of_int (Metrics.search_forwards m));
      ("total_possessions", string_of_int (Metrics.total_possessions m));
    ]
  ^ "\n"

let csv_of_table ~x_label ~cols rows =
  let b = Buffer.create 256 in
  Buffer.add_string b (String.concat "," (x_label :: cols));
  Buffer.add_char b '\n';
  List.iter
    (fun (x, ys) ->
      let cells =
        List.mapi
          (fun i _ ->
            match List.nth_opt ys i with
            | Some y -> json_float y
            | None -> "")
          cols
      in
      Buffer.add_string b (String.concat "," (json_float x :: cells));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b
