(** Per-shard wake pipes.

    A shard sleeping in {!Transport.wait} is woken by writing a byte to
    its pipe; the pipe's read end rides in the shard's readiness set as
    an extra fd. The write side is safe from any domain; {!drain} must
    be called by the owning shard after every wake-up (it reads to
    [EAGAIN], so a burst of stop/load-inject wakes cannot leave stale
    readability behind — stale bytes would make every subsequent wait
    return immediately and spin the shard at 100% CPU). *)

type t

val create : unit -> t
(** A non-blocking pipe pair. *)

val read_fd : t -> Unix.file_descr
(** The fd to register for readability. *)

val wake : t -> unit
(** Write one wake byte. Never blocks and never raises: a full pipe
    already has readability pending, which is all a wake means. *)

val drain : t -> unit
(** Read the pipe empty (to [EAGAIN]). Owning shard only. *)

val close : t -> unit
