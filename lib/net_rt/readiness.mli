(** Level-triggered fd-readiness sets with an epoll-class fast path.

    This is the core under {!Transport.wait}: descriptors are registered
    {e once} and the kernel reports only the ready ones, so a wait costs
    O(ready) instead of the O(registered) rescans of [Unix.select] — the
    difference between an 8-node demo and a 10k-node cluster.

    Four backends share one interface:

    - {b uring} (Linux 5.11+): readiness via one-shot io_uring
      POLL_ADD submissions batched into a single [io_uring_enter] per
      wait, re-armed on report so the observable semantics stay
      level-triggered. Opt-in (never the unforced default) — it exists
      so the whole fd path can be forced through {!Completion} and is
      the selector {!Transport} uses to decide completion mode.
    - {b epoll} (Linux): persistent kernel interest list, O(ready)
      dispatch, no fd-count ceiling. Level-triggered, so a frame left
      unread keeps reporting — no edge-trigger starvation bugs.
    - {b poll}: portable [poll(2)]. The interest array is maintained
      incrementally on the OCaml side but the kernel still scans every
      entry per wait — O(registered), no fd-count ceiling.
    - {b select}: the pre-existing [Unix.select] path, kept as a forced
      baseline and a last resort. O(registered) {e and} hard-capped
      around 1024 by [FD_SETSIZE] — the wall this module exists to
      break.

    The default backend is the first available in the chain
    epoll → poll → select, overridable with
    [TR_READINESS=uring|epoll|poll|select]. An unknown forced value
    fails loudly; a known-but-unavailable forced value falls back
    loudly (stderr) down the chain uring → epoll → poll → select via
    {!resolve}, so seccomp'd or old kernels degrade gracefully without
    silently invalidating benchmark labels — the backend actually used
    is always reported by {!backend}.

    A set must only be used from one domain at a time; the transport
    gives each shard its own. *)

type backend = Uring | Epoll | Poll | Select

val backend_name : backend -> string
(** ["uring"], ["epoll"], ["poll"] or ["select"]. *)

val backend_of_string : string -> (backend, string) result
(** Parse a [TR_READINESS] value; [Error] explains the choices. *)

val available : backend -> bool
(** Whether this build can create the backend ([Poll] and [Select] are
    always available; [Epoll] only on Linux; [Uring] per
    {!Completion.available}, including the [TR_URING_DISABLE]
    kill-switch). *)

val resolve : ?source:string -> backend -> backend
(** [b] itself when available, else the first available backend after
    [b] in the chain uring → epoll → poll → select, announced with a
    loud one-line warning on stderr naming [source] (e.g.
    ["TR_READINESS"], ["--readiness"]). *)

val default_backend : unit -> backend
(** [TR_READINESS] if set (an empty value reads as unset; an
    unavailable value resolves loudly down the chain), else the first
    available of epoll → poll → select — uring stays opt-in.
    @raise Failure if [TR_READINESS] names an unknown backend. *)

type t

val create : ?backend:backend -> unit -> t
(** A fresh empty set. [backend] defaults to {!default_backend}.
    @raise Failure if the requested backend is unavailable here. *)

val backend : t -> backend

val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register [fd] (or update its interest if already registered). A
    registration with neither interest stays in the set but reports
    nothing. *)

val remove : t -> Unix.file_descr -> unit
(** Forget [fd]; a no-op if it was never registered. Must be called
    {e before} closing the descriptor. *)

val fds_registered : t -> int

val wait :
  t -> timeout_s:float -> (fd:int -> readable:bool -> writable:bool -> unit) -> int
(** Block until at least one registered fd is ready or the timeout
    elapses; invoke the callback once per ready fd and return the ready
    count. Errors and hangups are reported as readable (and writable,
    when write interest was registered) so the caller's read/flush
    discovers them. The callback must not mutate this set. A signal
    interruption reads as zero ready. *)

val close : t -> unit

(** {1 Process plumbing for high-N clusters} *)

val raise_nofile : unit -> int
(** Raise [RLIMIT_NOFILE] as far as permitted (idempotent; memoised) and
    return the resulting soft limit. A 10k-node single-process ring
    needs ~3 fds per node — far beyond most default soft limits. *)

val ncpus : unit -> int

val pin_cpu : int -> bool
(** Pin the calling domain to CPU [i mod ncpus]; returns whether the
    kernel accepted. Advisory — callers proceed either way. *)
