(* Completion-based I/O on io_uring: batched submission, one enter
   draining many completions. See completion.mli for the model. *)

type handle

external ur_probe : unit -> bool = "tr_ur_probe"
external ur_create : int -> int -> int -> handle = "tr_ur_create"
external ur_close : handle -> unit = "tr_ur_close_stub"
external ur_fixed : handle -> bool = "tr_ur_fixed"
external ur_enters : handle -> int = "tr_ur_enters"
external ur_sq_pending : handle -> int = "tr_ur_sq_pending"
external ur_cq_pending : handle -> bool = "tr_ur_cq_pending"
external ur_prep_poll : handle -> int -> int -> int -> bool = "tr_ur_prep_poll"
external ur_prep_cancel : handle -> int -> bool = "tr_ur_prep_cancel"
external ur_prep_read : handle -> int -> int -> int -> bool = "tr_ur_prep_read"

external ur_prep_write : handle -> int -> int -> int -> int -> bool
  = "tr_ur_prep_write"

external ur_prep_accept : handle -> int -> int -> bool = "tr_ur_prep_accept"

external ur_blit_to_slot : handle -> int -> Bytes.t -> int -> int -> unit
  = "tr_ur_blit_to_slot"

external ur_blit_from_slot : handle -> int -> Bytes.t -> int -> int -> unit
  = "tr_ur_blit_from_slot"

external ur_enter : handle -> int -> int array -> int array -> int
  = "tr_ur_enter"

external ur_res_class : int -> int = "tr_ur_res_class"
external ur_poll_bits : int -> int = "tr_ur_poll_bits"
external fd_int : Unix.file_descr -> int = "%identity"

let disabled () =
  match Sys.getenv_opt "TR_URING_DISABLE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* The kernel-side probe is cached (it costs a ring setup); the env
   kill-switch is re-read every call so tests can flip it at runtime
   to simulate an ENOSYS/EPERM kernel. *)
let probe = lazy (ur_probe ())
let available () = (not (disabled ())) && Lazy.force probe

type t = {
  h : handle;
  nslots : int;
  slot_bytes : int;
  mutable free_slots : int list;
  mutable free_count : int;
  keys : int array;
  ress : int array;
  mutable sqes : int; (* sqes prepped over the ring's lifetime *)
  mutable stash : (int * int) list;
      (* CQEs consumed by an SQ-full flush, owed to the next [enter] *)
}

let drain_cap = 512

let create ?(entries = 4096) ?(slots = 4096) ?(slot_bytes = 4096) () =
  if not (available ()) then
    failwith "Completion: io_uring unavailable (kernel support or disabled)";
  if slots > 65536 then invalid_arg "Completion.create: slots > 65536";
  let h = ur_create entries slots slot_bytes in
  let free = List.init slots (fun i -> slots - 1 - i) in
  {
    h;
    nslots = slots;
    slot_bytes;
    free_slots = free;
    free_count = slots;
    keys = Array.make drain_cap 0;
    ress = Array.make drain_cap 0;
    sqes = 0;
    stash = [];
  }

let close t = ur_close t.h
let slot_bytes t = t.slot_bytes
let fixed_buffers t = ur_fixed t.h
let enter_syscalls t = ur_enters t.h
let sqes_submitted t = t.sqes
let sq_pending t = ur_sq_pending t.h
let cq_pending t = t.stash <> [] || ur_cq_pending t.h

let alloc_slot t =
  match t.free_slots with
  | [] -> -1
  | s :: rest ->
      t.free_slots <- rest;
      t.free_count <- t.free_count - 1;
      s

let free_slot t s =
  t.free_slots <- s :: t.free_slots;
  t.free_count <- t.free_count + 1

let free_slots t = t.free_count

(* A full SQ is flushed with a submit-only enter (a real syscall, which
   enter_syscalls reports) and the prep retried; it cannot fail twice.
   The flush also drains whatever CQEs were ready into keys/ress, so
   those are stashed and owed to the next [enter] caller. *)
let with_room t prep =
  if prep () then ()
  else begin
    let n = ur_enter t.h 0 t.keys t.ress in
    let fresh = ref [] in
    for i = n - 1 downto 0 do
      fresh := (t.keys.(i), t.ress.(i)) :: !fresh
    done;
    t.stash <- t.stash @ !fresh;
    if not (prep ()) then failwith "Completion: submission queue stuck full"
  end

let prep_poll t fd bits key =
  with_room t (fun () -> ur_prep_poll t.h (fd_int fd) bits key);
  t.sqes <- t.sqes + 1

let prep_cancel t key =
  with_room t (fun () -> ur_prep_cancel t.h key);
  t.sqes <- t.sqes + 1

let prep_read t fd slot key =
  with_room t (fun () -> ur_prep_read t.h (fd_int fd) slot key);
  t.sqes <- t.sqes + 1

let prep_write t fd slot len key =
  with_room t (fun () -> ur_prep_write t.h (fd_int fd) slot len key);
  t.sqes <- t.sqes + 1

let prep_accept t fd key =
  with_room t (fun () -> ur_prep_accept t.h (fd_int fd) key);
  t.sqes <- t.sqes + 1

let blit_to_slot t slot buf pos len = ur_blit_to_slot t.h slot buf pos len
let blit_from_slot t slot buf pos len = ur_blit_from_slot t.h slot buf pos len

let enter t ~timeout_ns ~f =
  let dispatched = ref 0 in
  (match t.stash with
  | [] -> ()
  | owed ->
      t.stash <- [];
      List.iter
        (fun (key, res) ->
          incr dispatched;
          f ~key ~res)
        owed);
  (* Events already in hand mean the wait must not block. *)
  let timeout_ns = if !dispatched > 0 then 0 else timeout_ns in
  let n = ur_enter t.h timeout_ns t.keys t.ress in
  (* Copy out before dispatching: callbacks may prep (and flush) new
     sqes, which would reuse keys/ress. *)
  let ks = Array.sub t.keys 0 n and rs = Array.sub t.ress 0 n in
  for i = 0 to n - 1 do
    incr dispatched;
    f ~key:ks.(i) ~res:rs.(i)
  done;
  (* Drain any leftover CQEs beyond the array capacity without
     re-blocking. *)
  while cq_pending t do
    let n = ur_enter t.h 0 t.keys t.ress in
    let ks = Array.sub t.keys 0 n and rs = Array.sub t.ress 0 n in
    for i = 0 to n - 1 do
      incr dispatched;
      f ~key:ks.(i) ~res:rs.(i)
    done
  done;
  !dispatched

type res_class = Ok | Retry | Canceled | Error

let classify res =
  match ur_res_class res with
  | 0 -> Ok
  | 1 -> Retry
  | 2 -> Canceled
  | _ -> Error

let poll_bits res = ur_poll_bits res
