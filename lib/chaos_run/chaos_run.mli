(** One-call chaos runs: a protocol under a declarative fault scenario
    on either backend, with the same probe-based recovery measurement.

    Both runners follow one shape so outcomes table cleanly across
    backends: background load arrives every [mean] units while the
    scenario's fault windows are open; when the last window clears,
    every node gets one probe request; recovery is the instant the last
    probed node drains its queue. A run that leaves a probed node
    unserved past the deadline is {e flagged} — the protocol did not
    self-stabilize out of that fault. The injector's schedule digest is
    carried into the outcome, so same-seed sim/live runs can certify
    they injected the identical fault sequence. *)

type outcome = {
  protocol : string;
  backend : string;  (** ["sim"], ["loopback"] or ["unix"]. *)
  spec : string;
  seed : int;
  n : int;
  clear_time : float;
  deadline : float;  (** Absolute recovery deadline, units. *)
  duration : float;  (** Virtual time the run actually covered. *)
  grants : int;
  grant_latency_mean : float;
  grant_latency_p99 : float;
  recovered : bool;
  recovery_time : float;  (** [stabilized - clear]; [nan] when not recovered. *)
  flagged : bool;
  unrecovered_nodes : int;
  injected : (string * int) list;
  total_injected : int;
  digest : int;
  corrupt_frames_detected : int;  (** Live backends only; [0] in sim. *)
}

val default_deadline : n:int -> float
(** [40n] units — generous against the random walk's O(n log n)
    no-visit timeout at bench sizes. *)

val run_sim :
  protocol:string ->
  n:int ->
  seed:int ->
  spec:string ->
  ?mean:float ->
  ?deadline:float ->
  unit ->
  outcome
(** Discrete-event backend. [mean] (default 10) spaces the scripted
    pre-clear load; [deadline] (default {!default_deadline}) is relative
    to the scenario's clear time.
    @raise Invalid_argument on a spec that fails to parse or validate. *)

val run_live :
  protocol:string ->
  n:int ->
  seed:int ->
  spec:string ->
  ?backend:Tr_net_rt.Cluster.backend_spec ->
  ?mean:float ->
  ?deadline:float ->
  ?unit_s:float ->
  ?shards:int ->
  unit ->
  outcome
(** Live runtime backend (in-process loopback unless [backend] says
    sockets). A driver domain injects the load and probes through the
    cluster's {!Tr_net_rt.Cluster.control} handle and polls per-node
    queue depths for the recovery instant.
    @raise Invalid_argument on a spec that fails to parse or validate. *)

val outcome_json : outcome -> string
(** One JSON object, newline-terminated. *)
