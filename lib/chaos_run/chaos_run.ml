(* One-call chaos runs: a protocol under a declarative fault scenario,
   on either backend, with the same probe-based recovery measurement.

   The shape is identical on both sides so the outcomes table cleanly:
   background load arrives every [mean] units while the fault windows
   are open; when the last window clears, every node gets one probe
   request; recovery is the instant the last probed node drains its
   queue (its probe — and any backlog the faults piled up — served).
   A run that leaves a probed node unserved past the deadline is
   flagged: the protocol did not self-stabilize out of that fault. *)

module Scenario = Tr_chaos.Scenario
module Injector = Tr_chaos.Injector
module Monitor = Tr_chaos.Monitor
module Engine = Tr_sim.Engine
module Metrics = Tr_sim.Metrics
module Cluster = Tr_net_rt.Cluster
module Codecs = Tr_wire.Codecs

type outcome = {
  protocol : string;
  backend : string;  (** ["sim"], ["loopback"] or ["unix"]. *)
  spec : string;
  seed : int;
  n : int;
  clear_time : float;
  deadline : float;  (** Absolute recovery deadline, units. *)
  duration : float;  (** Virtual time the run actually covered. *)
  grants : int;
  grant_latency_mean : float;
  grant_latency_p99 : float;
  recovered : bool;
  recovery_time : float;  (** [nan] when not recovered. *)
  flagged : bool;
  unrecovered_nodes : int;
  injected : (string * int) list;
  total_injected : int;
  digest : int;
  corrupt_frames_detected : int;  (** Live backends only; [0] in sim. *)
}

let default_deadline ~n = 40.0 *. float_of_int n

let prepare ~n ~seed ~spec ~deadline =
  let scenario = Scenario.of_string_exn spec in
  (match Scenario.validate scenario ~n with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos_run: " ^ e));
  let clear = Scenario.clear_time scenario in
  let deadline_abs = clear +. deadline in
  ( scenario,
    clear,
    deadline_abs,
    Injector.create ~seed ~n scenario,
    Monitor.create ~n ~clear_time:clear ~deadline:deadline_abs )

let finish ~protocol ~backend ~spec ~seed ~n ~clear ~deadline_abs ~duration
    ~grants ~metrics ~corrupt_frames_detected inj monitor =
  let waiting = Metrics.waiting metrics in
  let q = Metrics.waiting_quantiles metrics in
  {
    protocol;
    backend;
    spec;
    seed;
    n;
    clear_time = clear;
    deadline = deadline_abs;
    duration;
    grants;
    grant_latency_mean = Tr_stats.Summary.mean waiting;
    grant_latency_p99 = Tr_stats.Quantile.quantile q 0.99;
    recovered = Monitor.recovered monitor;
    recovery_time =
      (match Monitor.recovery_time monitor with Some t -> t | None -> Float.nan);
    flagged = Monitor.flagged monitor ~now:duration;
    unrecovered_nodes = List.length (Monitor.pending_nodes monitor);
    injected = Injector.counts inj;
    total_injected = Injector.total_injected inj;
    digest = Injector.schedule_digest inj;
    corrupt_frames_detected;
  }

(* ---------------- simulator backend ---------------- *)

let run_sim ~protocol ~n ~seed ~spec ?(mean = 10.0) ?deadline () =
  let deadline = match deadline with Some d -> d | None -> default_deadline ~n in
  let scenario, clear, deadline_abs, inj, monitor =
    prepare ~n ~seed ~spec ~deadline
  in
  ignore scenario;
  (* Scripted pre-clear load: one request every [mean] units at a
     seed-chosen node — scripted rather than Poisson so the arrival
     stream stops exactly at [clear] and the post-clear drain is pure
     probe recovery. *)
  let rng = Tr_sim.Rng.create ((seed * 48611) + 7) in
  let arrivals =
    let rec gen t acc =
      if t >= clear then List.rev acc
      else gen (t +. mean) ((t, Tr_sim.Rng.int rng n) :: acc)
    in
    gen mean []
  in
  let config =
    {
      (Engine.default_config ~n ~seed) with
      workload = Tr_sim.Workload.Script arrivals;
      chaos = Some inj;
    }
  in
  let (Codecs.Packed ((module P), _codec)) = Codecs.find_exn protocol in
  let module E = Engine.Make (P) in
  let t = E.create config in
  E.run t ~stop:(Engine.At_time clear);
  for i = 0 to n - 1 do
    Monitor.note_probe monitor ~node:i;
    E.request_now t ~node:i
  done;
  (* Step to the deadline in unit slices, timestamping each node's drain
     as it happens (slice-sized granularity). *)
  let slice = Float.max 0.5 ((deadline_abs -. clear) /. 400.0) in
  let now = ref clear in
  while (not (Monitor.recovered monitor)) && !now < deadline_abs do
    now := Float.min deadline_abs (!now +. slice);
    E.run t ~stop:(Engine.At_time !now);
    List.iter
      (fun i ->
        if Metrics.pending (E.metrics t) ~node:i = 0 then
          Monitor.note_serve monitor ~now:!now ~node:i)
      (Monitor.pending_nodes monitor)
  done;
  finish ~protocol ~backend:"sim" ~spec ~seed ~n ~clear ~deadline_abs
    ~duration:!now
    ~grants:(Metrics.serves (E.metrics t))
    ~metrics:(E.metrics t) ~corrupt_frames_detected:0 inj monitor

(* ---------------- live backends ---------------- *)

let run_live ~protocol ~n ~seed ~spec ?backend ?(mean = 10.0) ?deadline
    ?(unit_s = 2e-4) ?(shards = 0) () =
  let deadline = match deadline with Some d -> d | None -> default_deadline ~n in
  let scenario, clear, deadline_abs, inj, monitor =
    prepare ~n ~seed ~spec ~deadline
  in
  ignore scenario;
  let config =
    {
      (Cluster.default_config ~n ~seed) with
      unit_s;
      load = Cluster.External;
      stop = Cluster.Duration (deadline_abs +. 2.0);
      max_wall_s = Float.max 60.0 ((deadline_abs +. 2.0) *. unit_s *. 20.0);
      chaos = Some inj;
    }
  in
  let config = if shards > 0 then { config with shards } else config in
  let driver = ref None in
  let attach (control : Cluster.control) =
    driver :=
      Some
        (Domain.spawn (fun () ->
             let rng = Random.State.make [| seed; 0xc4a05 |] in
             let tick = Float.max 1e-4 (unit_s /. 2.0) in
             (* Pre-clear background load, one request per [mean] units. *)
             let next = ref mean in
             while control.Cluster.live_now () < clear do
               let now = control.Cluster.live_now () in
               if now >= !next then begin
                 control.Cluster.inject (Random.State.int rng n);
                 next := !next +. mean
               end
               else Unix.sleepf tick
             done;
             (* Probes: one request per node the instant faults clear. *)
             for i = 0 to n - 1 do
               Monitor.note_probe monitor ~node:i;
               control.Cluster.inject i
             done;
             (* Poll for drain until recovery or the deadline passes. *)
             let rec poll () =
               let now = control.Cluster.live_now () in
               List.iter
                 (fun i ->
                   if control.Cluster.pending_at i = 0 then
                     Monitor.note_serve monitor ~now ~node:i)
                 (Monitor.pending_nodes monitor);
               if Monitor.recovered monitor || now >= deadline_abs then
                 control.Cluster.request_stop ()
               else begin
                 Unix.sleepf tick;
                 poll ()
               end
             in
             poll ()))
  in
  let (Codecs.Packed ((module P), codec)) = Codecs.find_exn protocol in
  let report = Cluster.run ~attach ?backend config (module P) codec in
  Option.iter Domain.join !driver;
  finish ~protocol ~backend:report.Cluster.backend ~spec ~seed ~n ~clear
    ~deadline_abs
    ~duration:report.Cluster.duration_units
    ~grants:report.Cluster.grants ~metrics:report.Cluster.metrics
    ~corrupt_frames_detected:report.Cluster.corrupt_frames_detected inj monitor

(* ---------------- export ---------------- *)

let outcome_json (o : outcome) =
  let open Tr_net_rt.Live_export in
  obj
    [
      ("kind", json_string "chaos_run");
      ("protocol", json_string o.protocol);
      ("backend", json_string o.backend);
      ("spec", json_string o.spec);
      ("seed", string_of_int o.seed);
      ("n", string_of_int o.n);
      ("clear_time", json_float o.clear_time);
      ("deadline", json_float o.deadline);
      ("duration_units", json_float o.duration);
      ("grants", string_of_int o.grants);
      ("grant_latency_mean", json_float o.grant_latency_mean);
      ("grant_latency_p99", json_float o.grant_latency_p99);
      ("recovered", if o.recovered then "true" else "false");
      ("recovery_time", json_float o.recovery_time);
      ("flagged", if o.flagged then "true" else "false");
      ("unrecovered_nodes", string_of_int o.unrecovered_nodes);
      ( "injected",
        obj (List.map (fun (k, v) -> (k, string_of_int v)) o.injected) );
      ("total_injected", string_of_int o.total_injected);
      ("schedule_digest", string_of_int o.digest);
      ("corrupt_frames_detected", string_of_int o.corrupt_frames_detected);
    ]
  ^ "\n"
