(** System Search — non-deterministic token search (paper §4.1, Figure 6).

    State: [SR(Q, P, T, I, O, W)]. On top of Message-Passing, a ready
    node may announce interest: rule [request] sets a local trap τ_x and
    sends a search message to some other node; rule [forward] makes a node
    receiving a search set a trap locally and pass the search on; rule
    [serve] makes a trapped token holder hand the token to the trapped
    requester (without broadcasting).

    Two restrictions keep exploration finite, both sanctioned by the
    paper: traps have set semantics (a duplicate trap is not re-added),
    and a node with its own trap pending does not issue a second request —
    §4.4's "single outstanding request" throttling. Neither affects
    safety: both only remove behaviours. *)

open Tr_trs

val system : n:int -> System.t

val system_cyclic : n:int -> System.t
(** Lemma 5's restriction: rule 4 replaced by the ring send (3′) and
    rules 5/6 send to the cyclic successor only. Its reachable states are
    a subset of {!system}'s, giving the O(N) responsiveness argument its
    safety half for free. *)

val initial : n:int -> data_budget:int -> Term.t
val local_histories : Term.t -> (int * Term.t) list
val holder : Term.t -> int option
val traps : Term.t -> (int * int) list
(** [(node, requester)] for each trap in [W]. *)

val to_msgpass : Term.t -> Term.t
(** Refinement mapping (Lemma 5's safety direction): forget [W], erase
    search messages; the image is a Message-Passing-with-pass state. *)
