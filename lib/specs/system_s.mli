(** System S — the base, abstract protocol (paper §3.1, Figure 2).

    State: [S(Q, H)]. [Q] holds one [qent(x, d_x, b_x)] per node; [H] is
    the global broadcast history. Rule [new] lets a node append a fresh
    datum to its pending data; rule [broadcast] appends some node's
    pending data to [H]. Safety (the prefix property) is immediate: [H]
    only ever grows by appending. *)

open Tr_trs

val system : n:int -> System.t
val initial : n:int -> data_budget:int -> Term.t

val global_history : Term.t -> Term.t
(** The [H] field. @raise Invalid_argument on a non-[S] term. *)

val pending_data : Term.t -> (int * Term.t) list
(** [(x, d_x)] for every [Q] entry. *)
