(** Machine-checked refinement (simulation) between systems.

    The paper proves each system safe by mapping its states and paths to a
    less restricted system (Lemmas 1–3, Theorem 1). This module performs
    that argument exhaustively on bounded instances: every transition of
    the concrete system must map, under the abstraction function, to a
    {e stutter} (same abstract state) or to a short path (at most
    [max_abstract_steps] rule applications) of the abstract system.

    A successful check of [(abstraction, abstract_system)] over the whole
    reachable transition relation, combined with the abstract system's
    prefix property, transfers the prefix property to the concrete system
    — exactly the paper's proof structure, but mechanized. *)

open Tr_trs

type failure = {
  source : Term.t;
  rule : string;  (** Concrete rule that fired. *)
  target : Term.t;
  reason : string;
}

type report = {
  edges : int;  (** Concrete transitions checked. *)
  stutters : int;  (** Transitions mapping to the same abstract state. *)
  steps : int;  (** Transitions mapping to a real abstract path. *)
  failures : failure list;
}

val check_simulation :
  ?max_abstract_steps:int ->
  abstraction:(Term.t -> Term.t) ->
  abstract_system:System.t ->
  edges:(Term.t * string * Term.t) list ->
  unit ->
  report
(** Default [max_abstract_steps] is 2 (several of the paper's rules fuse
    two abstract rules, e.g. Token's broadcast = S1's broadcast + copy). *)

val holds : report -> bool
val pp_report : Format.formatter -> report -> unit
