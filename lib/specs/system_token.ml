open Tr_trs
open Notation

let wrap q h p t = Term.App ("TK", [ q; h; p; t ])

let initial ~n ~data_budget =
  wrap (initial_q ~n ~data_budget) empty_history (initial_p ~n) (node 0)

let rule_new =
  Rule.make ~name:"new"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d2") (Term.Var "b2") ])
         Term.Wild Term.Wild Term.Wild)
    ~guard:(fun s -> Subst.find_int s "b" > 0)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" and b = Subst.find_int s "b" in
           let d = Subst.find_exn s "d" in
           [
             ("d2", Term.seq_append d (Term.datum x b));
             ("b2", Term.Int (b - 1));
           ]))
    ()

(* Rule 2: only the token holder broadcasts; its local prefix history is
   refreshed in the same step, and the token moves to an arbitrary node. *)
let rule_broadcast ~n =
  Rule.make ~name:"broadcast"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Var "H")
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") Term.Wild ])
         (Term.Var "x"))
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.Var "H2")
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H2") ])
         (Term.Var "y"))
    ~extend:
      (compose_extends
         [
           extend_with (fun s ->
               let h = Subst.find_exn s "H" and d = Subst.find_exn s "d" in
               [ ("H2", Term.seq_append h d) ]);
           extend_each "y" (fun _ -> List.map node (all_nodes ~n));
         ])
    ()

let system ~n = System.make ~name:"Token" ~rules:[ rule_new; rule_broadcast ~n ]

let global_history = function
  | Term.App ("TK", [ _; h; _; _ ]) -> h
  | other ->
      invalid_arg
        (Printf.sprintf "System_token.global_history: not a TK state: %s"
           (Term.to_string other))

let local_histories = function
  | Term.App ("TK", [ _; _; Term.Bag entries; _ ]) ->
      List.filter_map
        (function
          | Term.App ("pent", [ Term.Int y; h ]) -> Some (y, h)
          | _ -> None)
        entries
  | other ->
      invalid_arg
        (Printf.sprintf "System_token.local_histories: not a TK state: %s"
           (Term.to_string other))

let holder = function
  | Term.App ("TK", [ _; _; _; Term.Int x ]) -> x
  | other ->
      invalid_arg
        (Printf.sprintf "System_token.holder: not a TK state: %s"
           (Term.to_string other))

let to_s1 = function
  | Term.App ("TK", [ q; h; p; _ ]) -> Term.App ("S1", [ q; h; p ])
  | other ->
      invalid_arg
        (Printf.sprintf "System_token.to_s1: not a TK state: %s"
           (Term.to_string other))
