open Tr_trs
open Notation

let projected h = data_projection h

let chain histories =
  let hs = List.map projected histories in
  let rec pairs = function
    | [] -> Ok ()
    | h :: rest ->
        let bad = List.find_opt (fun h' -> not (histories_comparable h h')) rest in
        (match bad with
        | Some h' ->
            Error
              (Printf.sprintf "histories not prefix-comparable: %s vs %s"
                 (Term.to_string h) (Term.to_string h'))
        | None -> pairs rest)
  in
  pairs hs

let no_duplicate_data h =
  match projected h with
  | Term.Seq items ->
      let rec dup = function
        | [] -> Ok ()
        | x :: rest ->
            if List.exists (Term.equal x) rest then
              Error
                (Printf.sprintf "datum %s broadcast twice" (Term.to_string x))
            else dup rest
      in
      dup items
  | _ -> Error "history is not a sequence"

let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let longest histories =
  List.fold_left
    (fun best h ->
      match (best, h) with
      | Term.Seq bs, Term.Seq hs ->
          if List.length hs > List.length bs then h else best
      | _ -> best)
    (Term.Seq []) histories

let check_locals_against_global ~locals ~global =
  let rec go = function
    | [] -> Ok ()
    | (x, h) :: rest ->
        if Term.seq_is_prefix (projected h) (projected global) then go rest
        else
          Error
            (Printf.sprintf "node %d's history %s is not a prefix of %s" x
               (Term.to_string h) (Term.to_string global))
  in
  go locals

let check_s state =
  no_duplicate_data (System_s.global_history state)

let check_s1 state =
  let global = System_s1.global_history state in
  let* () = no_duplicate_data global in
  check_locals_against_global ~locals:(System_s1.local_histories state) ~global

let check_token state =
  let global = System_token.global_history state in
  let* () = no_duplicate_data global in
  check_locals_against_global
    ~locals:(System_token.local_histories state)
    ~global

let check_msgpass state =
  let locals = List.map snd (System_msgpass.local_histories state) in
  let carried =
    List.map (fun (_, _, h) -> h) (System_msgpass.in_flight_tokens state)
  in
  let histories = locals @ carried in
  let* () = chain histories in
  let* () = no_duplicate_data (longest histories) in
  let held = match System_msgpass.holder state with Some _ -> 1 | None -> 0 in
  let tokens = held + List.length carried in
  if tokens = 1 then Ok ()
  else Error (Printf.sprintf "token uniqueness violated: %d tokens" tokens)

let histories_of_bag bag =
  match bag with
  | Term.Bag items ->
      List.concat_map
        (function
          | Term.App ("msg", [ _; _; Term.App (("tok" | "loan"), [ h ]) ]) ->
              [ h ]
          | Term.App ("msg", [ _; _; Term.App ("bsrch", [ _; h; _ ]) ]) -> [ h ]
          | _ -> [])
        items
  | _ -> []

let count_tokens_of_bag bag =
  match bag with
  | Term.Bag items ->
      List.length
        (List.filter
           (function
             | Term.App ("msg", [ _; _; Term.App (("tok" | "loan"), _) ]) ->
                 true
             | _ -> false)
           items)
  | _ -> 0

let check_six_field ~tag state =
  match state with
  | Term.App (t, [ _q; p; holder; i; o; _w ]) when String.equal t tag ->
      let locals =
        match p with
        | Term.Bag entries ->
            List.filter_map
              (function
                | Term.App ("pent", [ _; h ]) -> Some h
                | _ -> None)
              entries
        | _ -> []
      in
      let histories = locals @ histories_of_bag i @ histories_of_bag o in
      let* () = chain histories in
      let* () = no_duplicate_data (longest histories) in
      let held = match holder with Term.Int _ -> 1 | _ -> 0 in
      let tokens = held + count_tokens_of_bag i + count_tokens_of_bag o in
      if tokens = 1 then Ok ()
      else Error (Printf.sprintf "token uniqueness violated: %d tokens" tokens)
  | _ -> Error (Printf.sprintf "not a %s state" tag)

let check_search state = check_six_field ~tag:"SR" state
let check_binsearch state = check_six_field ~tag:"BS" state
