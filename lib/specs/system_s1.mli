(** System S1 — local prefix histories (paper §3.2, Figure 3).

    State: [S1(Q, H, P)]. Rules [new] and [broadcast] are System S's with
    an extra pass-through field; rule [copy] copies the global history
    into some node's local prefix history, at any time and in any order.
    Lemma 1: S1 satisfies the prefix property (each local history is a
    prefix of [H]). *)

open Tr_trs

val system : n:int -> System.t
val initial : n:int -> data_budget:int -> Term.t
val global_history : Term.t -> Term.t
val local_histories : Term.t -> (int * Term.t) list
(** [(y, H_y)] for every [P] entry. *)

val to_s : Term.t -> Term.t
(** The refinement mapping of Lemma 1: forget [P]. *)
