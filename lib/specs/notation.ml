open Tr_trs

let node x = Term.Int x
let bot = Term.Const "bot"
let qent x d budget = Term.App ("qent", [ x; d; budget ])
let pent x h = Term.App ("pent", [ x; h ])
let msg a b payload = Term.App ("msg", [ a; b; payload ])
let went x trap = Term.App ("went", [ x; trap ])
let tok h = Term.App ("tok", [ h ])
let loan h = Term.App ("loan", [ h ])
let srch trap = Term.App ("srch", [ trap ])
let bsrch span h_z trap = Term.App ("bsrch", [ span; h_z; trap ])
let tau_of t = Term.App ("tau", [ t ])

let bag_mem bag elem =
  match bag with
  | Term.Bag items -> List.exists (Term.equal elem) items
  | other ->
      invalid_arg
        (Printf.sprintf "Notation.bag_mem: not a bag: %s" (Term.to_string other))

let bag_add_unique bag elem =
  if bag_mem bag elem then bag
  else
    match bag with
    | Term.Bag items -> Term.bag (elem :: items)
    | _ -> assert false
let empty_bag = Term.Bag []
let empty_history = Term.Seq []

let all_nodes ~n = List.init n (fun i -> i)

let initial_q ~n ~data_budget =
  Term.bag
    (List.map
       (fun x -> qent (node x) empty_history (Term.Int data_budget))
       (all_nodes ~n))

let initial_p ~n =
  Term.bag (List.map (fun x -> pent (node x) empty_history) (all_nodes ~n))

let extend_each v choices subst =
  List.map (fun choice -> Subst.bind subst v choice) (choices subst)

let extend_with f subst =
  [ List.fold_left (fun s (v, t) -> Subst.bind s v t) subst (f subst) ]

let compose_extends extends subst =
  List.fold_left
    (fun substs ext -> List.concat_map ext substs)
    [ subst ] extends

let forward ~n x k = (((x + k) mod n) + n) mod n

let is_rot = function Term.App ("rot", _) -> true | _ -> false

let rot_projection h = Term.seq_project ~keep:is_rot h
let data_projection h = Term.seq_project ~keep:(fun e -> not (is_rot e)) h

let histories_comparable a b =
  Term.seq_is_prefix a b || Term.seq_is_prefix b a
