open Tr_trs
open Notation

let wrap q p t i o = Term.App ("MP", [ q; p; t; i; o ])

let initial ~n ~data_budget =
  wrap (initial_q ~n ~data_budget) (initial_p ~n) (node 0) empty_bag empty_bag

let rule_new =
  Rule.make ~name:"new"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild Term.Wild Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d2") (Term.Var "b2") ])
         Term.Wild Term.Wild Term.Wild Term.Wild)
    ~guard:(fun s -> Subst.find_int s "b" > 0)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" and b = Subst.find_int s "b" in
           let d = Subst.find_exn s "d" in
           [
             ("d2", Term.seq_append d (Term.datum x b));
             ("b2", Term.Int (b - 1));
           ]))
    ()

(* Rule 2: the network moves a message from the sender's output set to the
   destination's input set. *)
let rule_transfer =
  Rule.make ~name:"transfer"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild (Term.Var "I")
         (Term.Bag [ Term.Var "O"; msg (Term.Var "a") (Term.Var "c") (Term.Var "m") ]))
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag [ Term.Var "I"; msg (Term.Var "c") (Term.Var "a") (Term.Var "m") ])
         (Term.Var "O"))
    ()

(* Rule 3 / 3': the holder broadcasts and sends the token away. *)
let rule_send ~choose_y ~name =
  Rule.make ~name
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") Term.Wild (Term.Var "O"))
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H2") ])
         bot Term.Wild
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H2")) ]))
    ~extend:
      (compose_extends
         [
           extend_with (fun s ->
               let h = Subst.find_exn s "H" and d = Subst.find_exn s "d" in
               [ ("H2", Term.seq_append h d) ]);
           (fun s -> extend_each "y" (fun s' -> choose_y s') s);
         ])
    ()

(* Rule 4: a node receives the token and adopts the carried history. *)
let rule_receive =
  Rule.make ~name:"receive"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") Term.Wild ])
         bot
         (Term.Bag [ Term.Var "I"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H")) ])
         Term.Wild)
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") (Term.Var "I") Term.Wild)
    ()

(* Token pass without broadcast: the holder relinquishes the token,
   leaving its pending data untouched. Systems Search and BinarySearch
   need this move (their rule 7 forwards the token to a trapped requester
   without broadcasting), so the abstraction target of their refinement
   proofs is Message-Passing extended with this rule. It is itself safe:
   it maps to an S1 stutter (no history changes). *)
let rule_pass ~choose_y =
  Rule.make ~name:"pass"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") Term.Wild (Term.Var "O"))
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         bot Term.Wild
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H")) ]))
    ~extend:(fun s -> extend_each "y" choose_y s)
    ()

(* Fault transitions, opt-in: the network loses an in-flight token, or
   delivers it twice. Either breaks token uniqueness — the explorer must
   surface the resulting prefix-property violation (the seed for the
   chaos/model-checking item: the same faults the live chaos suite will
   inject, checked exhaustively at small n). *)
let rule_lose_token =
  Rule.make ~name:"lose-token"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "I"; msg (Term.Var "a") (Term.Var "b") (tok (Term.Var "H")) ])
         Term.Wild)
    ~rhs:(wrap Term.Wild Term.Wild Term.Wild (Term.Var "I") Term.Wild)
    ()

let rule_dup_token =
  Rule.make ~name:"dup-token"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "I"; msg (Term.Var "a") (Term.Var "b") (tok (Term.Var "H")) ])
         Term.Wild)
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [
              Term.Var "I";
              msg (Term.Var "a") (Term.Var "b") (tok (Term.Var "H"));
              msg (Term.Var "a") (Term.Var "b") (tok (Term.Var "H"));
            ])
         Term.Wild)
    ()

(* A stale "gimme" request materialises in some node's input set — the
   model of a delayed retransmission from a past round surviving in the
   network (the live chaos engine's reorder/dup faults produce exactly
   this). The payload names the requester the receiver should ship the
   token to. *)
let gimme y = Term.App ("gimme", [ y ])

let rule_stale_gimme ~n =
  Rule.make ~name:"stale-gimme"
    ~lhs:(wrap Term.Wild Term.Wild Term.Wild (Term.Var "I") Term.Wild)
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "I"; msg (Term.Var "x") (Term.Var "y") (gimme (Term.Var "y")) ])
         Term.Wild)
    ~extend:
      (compose_extends
         [
           (fun s -> extend_each "x" (fun _ -> List.map node (all_nodes ~n)) s);
           (fun s -> extend_each "y" (fun _ -> List.map node (all_nodes ~n)) s);
         ])
    ()

(* A node honours a stale gimme by minting a fresh token from its local
   (possibly stale) history — if the real token is alive elsewhere, the
   state now carries two. This is the protocol bug the request actually
   tempts an implementor into: regenerating on request instead of on
   verified loss. *)
let rule_gimme_regenerate =
  Rule.make ~name:"gimme-regenerate"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         Term.Wild
         (Term.Bag
            [ Term.Var "I"; msg (Term.Var "x") (Term.Var "y") (gimme (Term.Var "y")) ])
         (Term.Var "O"))
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         Term.Wild (Term.Var "I")
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H")) ]))
    ()

(* The current holder fail-stops: its token evaporates with it (T goes
   to bot without any send). The guard keeps the rule off drained
   states where nobody holds. *)
let rule_crash_holder =
  Rule.make ~name:"crash-holder"
    ~lhs:(wrap Term.Wild Term.Wild (Term.Var "x") Term.Wild Term.Wild)
    ~rhs:(wrap Term.Wild Term.Wild bot Term.Wild Term.Wild)
    ~guard:(fun s ->
      match Subst.find_exn s "x" with Term.Int _ -> true | _ -> false)
    ()

let any_node ~n _subst = List.map node (all_nodes ~n)

let ring_successor ~n subst =
  let x = Subst.find_int subst "x" in
  [ node (forward ~n x 1) ]

let base_rules ~n =
  [ rule_new; rule_transfer; rule_send ~choose_y:(any_node ~n) ~name:"send";
    rule_receive ]

let system ~n = System.make ~name:"Message-Passing" ~rules:(base_rules ~n)

let system_faulty ~n =
  System.make ~name:"Message-Passing+faults"
    ~rules:
      (base_rules ~n
      @ [
          rule_lose_token; rule_dup_token; rule_stale_gimme ~n;
          rule_gimme_regenerate; rule_crash_holder;
        ])

let system_ring ~n =
  System.make ~name:"Message-Passing-ring"
    ~rules:
      [ rule_new; rule_transfer;
        rule_send ~choose_y:(ring_successor ~n) ~name:"send'"; rule_receive ]

let system_with_pass ~n =
  System.make ~name:"Message-Passing-pass"
    ~rules:
      [ rule_new; rule_transfer; rule_send ~choose_y:(any_node ~n) ~name:"send";
        rule_receive; rule_pass ~choose_y:(any_node ~n) ]

let local_histories = function
  | Term.App ("MP", [ _; Term.Bag entries; _; _; _ ]) ->
      List.filter_map
        (function
          | Term.App ("pent", [ Term.Int y; h ]) -> Some (y, h)
          | _ -> None)
        entries
  | other ->
      invalid_arg
        (Printf.sprintf "System_msgpass.local_histories: not an MP state: %s"
           (Term.to_string other))

let holder = function
  | Term.App ("MP", [ _; _; Term.Int x; _; _ ]) -> Some x
  | Term.App ("MP", [ _; _; Term.Const "bot"; _; _ ]) -> None
  | other ->
      invalid_arg
        (Printf.sprintf "System_msgpass.holder: not an MP state: %s"
           (Term.to_string other))

let tokens_in_bag = function
  | Term.Bag items ->
      List.filter_map
        (function
          | Term.App ("msg", [ Term.Int a; Term.Int b; Term.App ("tok", [ h ]) ]) ->
              Some (a, b, h)
          | _ -> None)
        items
  | _ -> []

let in_flight_tokens = function
  | Term.App ("MP", [ _; _; _; i; o ]) -> tokens_in_bag i @ tokens_in_bag o
  | other ->
      invalid_arg
        (Printf.sprintf "System_msgpass.in_flight_tokens: not an MP state: %s"
           (Term.to_string other))

(* The drained-state mapping of Lemma 3. The abstract global history is
   the longest history present anywhere in the state — every history in a
   reachable Message-Passing state is a prefix of it. The abstraction
   target is System S1, whose [copy] rule mirrors receive-time updates of
   local prefix histories. *)
let to_s1 state =
  match state with
  | Term.App ("MP", [ q; p; _; _; _ ]) ->
      let histories =
        List.map snd (local_histories state)
        @ List.map (fun (_, _, h) -> h) (in_flight_tokens state)
      in
      let longest =
        List.fold_left
          (fun best h ->
            match (best, h) with
            | Term.Seq bs, Term.Seq hs ->
                if List.length hs > List.length bs then h else best
            | _ -> best)
          empty_history histories
      in
      Term.canonicalize (Term.App ("S1", [ q; longest; p ]))
  | other ->
      invalid_arg
        (Printf.sprintf "System_msgpass.to_s1: not an MP state: %s"
           (Term.to_string other))
