open Tr_trs
open Notation

let wrap q p t i o w = Term.App ("SR", [ q; p; t; i; o; w ])

let initial ~n ~data_budget =
  wrap (initial_q ~n ~data_budget) (initial_p ~n) (node 0) empty_bag empty_bag
    empty_bag

let rule_new =
  Rule.make ~name:"new"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild Term.Wild Term.Wild Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d2") (Term.Var "b2") ])
         Term.Wild Term.Wild Term.Wild Term.Wild Term.Wild)
    ~guard:(fun s -> Subst.find_int s "b" > 0)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" and b = Subst.find_int s "b" in
           let d = Subst.find_exn s "d" in
           [
             ("d2", Term.seq_append d (Term.datum x b));
             ("b2", Term.Int (b - 1));
           ]))
    ()

let rule_transfer =
  Rule.make ~name:"transfer"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild (Term.Var "I")
         (Term.Bag [ Term.Var "O"; msg (Term.Var "a") (Term.Var "c") (Term.Var "m") ])
         Term.Wild)
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag [ Term.Var "I"; msg (Term.Var "c") (Term.Var "a") (Term.Var "m") ])
         (Term.Var "O") Term.Wild)
    ()

let rule_receive =
  Rule.make ~name:"receive"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") Term.Wild ])
         bot
         (Term.Bag [ Term.Var "I"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H")) ])
         Term.Wild Term.Wild)
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") (Term.Var "I") Term.Wild Term.Wild)
    ()

let rule_send ~n =
  Rule.make ~name:"send"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") Term.Wild (Term.Var "O") Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H2") ])
         bot Term.Wild
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H2")) ])
         Term.Wild)
    ~extend:
      (compose_extends
         [
           extend_with (fun s ->
               let h = Subst.find_exn s "H" and d = Subst.find_exn s "d" in
               [ ("H2", Term.seq_append h d) ]);
           extend_each "y" (fun _ -> List.map node (all_nodes ~n));
         ])
    ()

(* Rule 5: a node generates interest — it traps locally on its own behalf
   and sends a search message to some other node. Guarded so a node has at
   most one outstanding request (§4.4). [choose] picks the candidate
   destinations: any other node in the unrestricted system, the cyclic
   successor in Lemma 5's restriction. *)
let rule_request_with ~choose =
  Rule.make ~name:"request"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild Term.Wild (Term.Var "O") (Term.Var "W"))
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "O";
              msg (Term.Var "x") (Term.Var "y") (srch (tau_of (Term.Var "x"))) ])
         (Term.Var "W2"))
    ~guard:(fun s ->
      let x = Subst.find_int s "x" in
      not (bag_mem (Subst.find_exn s "W") (went (node x) (Term.tau x))))
    ~extend:
      (compose_extends
         [
           extend_with (fun s ->
               let x = Subst.find_int s "x" in
               let w = Subst.find_exn s "W" in
               [ ("W2", bag_add_unique w (went (node x) (Term.tau x))) ]);
           extend_each "y" choose;
         ])
    ()

(* Rule 6: a node receiving a search traps locally for the requester and
   asks some other node. *)
let rule_forward_with ~choose =
  Rule.make ~name:"forward"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "I";
              msg (Term.Var "x") (Term.Var "y") (srch (tau_of (Term.Var "z"))) ])
         (Term.Var "O") (Term.Var "W"))
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild (Term.Var "I")
         (Term.Bag
            [ Term.Var "O";
              msg (Term.Var "x") (Term.Var "u") (srch (tau_of (Term.Var "z"))) ])
         (Term.Var "W2"))
    ~extend:
      (compose_extends
         [
           extend_with (fun s ->
               let x = Subst.find_int s "x" in
               let z = Subst.find_exn s "z" in
               let w = Subst.find_exn s "W" in
               [ ("W2", bag_add_unique w (went (node x) (tau_of z))) ]);
           extend_each "u" choose;
         ])
    ()

let choose_any_other ~n s =
  let x = Subst.find_int s "x" in
  List.filter_map
    (fun y -> if y = x then None else Some (node y))
    (all_nodes ~n)

let choose_successor ~n s =
  let x = Subst.find_int s "x" in
  [ node (forward ~n x 1) ]

let rule_request ~n = rule_request_with ~choose:(choose_any_other ~n)
let rule_forward ~n = rule_forward_with ~choose:(choose_any_other ~n)

(* Rule 7: a trapped token holder removes the trap and sends the token to
   the trapped requester (no broadcast). *)
let rule_serve =
  Rule.make ~name:"serve"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") Term.Wild (Term.Var "O")
         (Term.Bag [ Term.Var "W"; went (Term.Var "x") (tau_of (Term.Var "y")) ]))
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         bot Term.Wild
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H")) ])
         (Term.Var "W"))
    ~guard:(fun s -> Subst.find_int s "x" <> Subst.find_int s "y")
    ()

let system ~n =
  System.make ~name:"Search"
    ~rules:
      [ rule_new; rule_transfer; rule_receive; rule_send ~n; rule_request ~n;
        rule_forward ~n; rule_serve ]

(* Lemma 5's restrictions: the token rotates (rule 3' replaces the
   arbitrary send), and search messages traverse the ring cyclically
   (y = x+1 in rule 5, u = x+1 in rule 6). *)
let system_cyclic ~n =
  let send_ring =
    let open Term in
    Rule.make ~name:"send'"
      ~lhs:
        (wrap
           (Bag [ Var "Q"; qent (Var "x") (Var "d") (Var "b") ])
           (Bag [ Var "P"; pent (Var "x") (Var "H") ])
           (Var "x") Wild (Var "O") Wild)
      ~rhs:
        (wrap
           (Bag [ Var "Q"; qent (Var "x") empty_history (Var "b") ])
           (Bag [ Var "P"; pent (Var "x") (Var "H2") ])
           bot Wild
           (Bag [ Var "O"; msg (Var "x") (Var "y") (tok (Var "H2")) ])
           Wild)
      ~extend:
        (compose_extends
           [
             extend_with (fun s ->
                 let h = Subst.find_exn s "H" and d = Subst.find_exn s "d" in
                 [ ("H2", Term.seq_append h d) ]);
             (fun s -> extend_each "y" (choose_successor ~n) s);
           ])
      ()
  in
  System.make ~name:"Search-cyclic"
    ~rules:
      [ rule_new; rule_transfer; rule_receive; send_ring;
        rule_request_with ~choose:(choose_successor ~n);
        rule_forward_with ~choose:(choose_successor ~n); rule_serve ]

let local_histories = function
  | Term.App ("SR", [ _; Term.Bag entries; _; _; _; _ ]) ->
      List.filter_map
        (function
          | Term.App ("pent", [ Term.Int y; h ]) -> Some (y, h)
          | _ -> None)
        entries
  | other ->
      invalid_arg
        (Printf.sprintf "System_search.local_histories: not an SR state: %s"
           (Term.to_string other))

let holder = function
  | Term.App ("SR", [ _; _; Term.Int x; _; _; _ ]) -> Some x
  | Term.App ("SR", [ _; _; Term.Const "bot"; _; _; _ ]) -> None
  | other ->
      invalid_arg
        (Printf.sprintf "System_search.holder: not an SR state: %s"
           (Term.to_string other))

let traps = function
  | Term.App ("SR", [ _; _; _; _; _; Term.Bag traps ]) ->
      List.filter_map
        (function
          | Term.App ("went", [ Term.Int x; Term.App ("tau", [ Term.Int z ]) ]) ->
              Some (x, z)
          | _ -> None)
        traps
  | other ->
      invalid_arg
        (Printf.sprintf "System_search.traps: not an SR state: %s"
           (Term.to_string other))

let erase_search_messages = function
  | Term.Bag items ->
      Term.bag
        (List.filter
           (function
             | Term.App ("msg", [ _; _; Term.App ("srch", _) ]) -> false
             | _ -> true)
           items)
  | other -> other

let to_msgpass = function
  | Term.App ("SR", [ q; p; t; i; o; _w ]) ->
      Term.canonicalize
        (Term.App
           ("MP", [ q; p; t; erase_search_messages i; erase_search_messages o ]))
  | other ->
      invalid_arg
        (Printf.sprintf "System_search.to_msgpass: not an SR state: %s"
           (Term.to_string other))
