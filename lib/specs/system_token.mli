(** System Token — broadcast gated by token possession (paper §3.3,
    Figure 4).

    State: [TK(Q, H, P, T)]. The token field [T] names the unique holder;
    rule [broadcast] (the paper's rule 2, a fusion of S1's rules 2 and 3)
    fires only at the holder, appends its data to [H], refreshes its local
    history, and passes the token to an arbitrary node. The reachable
    states are a subset of S1's, hence Lemma 2 (prefix property). *)

open Tr_trs

val system : n:int -> System.t
val initial : n:int -> data_budget:int -> Term.t
val global_history : Term.t -> Term.t
val local_histories : Term.t -> (int * Term.t) list

val holder : Term.t -> int
(** The node currently holding the token. *)

val to_s1 : Term.t -> Term.t
(** The refinement mapping of Lemma 2: forget [T]. *)
