open Tr_trs
open Notation

let wrap q h = Term.App ("S", [ q; h ])

let initial ~n ~data_budget = wrap (initial_q ~n ~data_budget) empty_history

(* Rule 1: a node decides to broadcast — a fresh datum is appended to its
   pending data. The budget [b] counts down and names the datum, keeping
   exploration finite and data distinct. *)
let rule_new =
  Rule.make ~name:"new"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d2") (Term.Var "b2") ])
         Term.Wild)
    ~guard:(fun s -> Subst.find_int s "b" > 0)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" and b = Subst.find_int s "b" in
           let d = Subst.find_exn s "d" in
           [
             ("d2", Term.seq_append d (Term.datum x b));
             ("b2", Term.Int (b - 1));
           ]))
    ()

(* Rule 2: some node's pending data is broadcast — appended to the global
   history — and its pending data resets to the empty datum (φ). *)
let rule_broadcast =
  Rule.make ~name:"broadcast"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Var "H"))
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.App ("append", [ Term.Var "H"; Term.Var "d" ])))
    ()

let system ~n =
  ignore n;
  System.make ~name:"S" ~rules:[ rule_new; rule_broadcast ]

let global_history = function
  | Term.App ("S", [ _; h ]) -> h
  | other ->
      invalid_arg
        (Printf.sprintf "System_s.global_history: not an S state: %s"
           (Term.to_string other))

let pending_data = function
  | Term.App ("S", [ Term.Bag entries; _ ]) ->
      List.filter_map
        (function
          | Term.App ("qent", [ Term.Int x; d; _ ]) -> Some (x, d)
          | _ -> None)
        entries
  | other ->
      invalid_arg
        (Printf.sprintf "System_s.pending_data: not an S state: %s"
           (Term.to_string other))
