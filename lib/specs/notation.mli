(** Shared vocabulary for the paper's system specifications.

    Encoding conventions (deviations from the paper's surface syntax are
    noted here once and apply to every system):

    - A [Q] entry is [qent(x, d_x, b_x)]: the paper's pair [(x, d_x)] plus
      a {e data budget} [b_x] bounding how many times rule 1 (new datum)
      can fire at node [x]. The budget makes exhaustive exploration
      finite; the paper uses unbounded sets "for simplicity of
      presentation" and itself notes (§4.4) that they are easily bounded.
    - [d_x] and all histories are [Seq] terms; the paper's φ_x (empty
      datum) is the empty sequence, and [⊕] with an empty right operand is
      the identity, exactly as φ is the identity for ⊕ in the paper.
    - Rules that consume a [Q] entry reset it to the empty datum rather
      than deleting the pair, following System Token's rule 2 (deleting,
      as Systems S/Message-Passing literally write, would disable every
      later rule that matches [(x, d_x)] — including token rotation — after
      a node's first broadcast).
    - Messages are flattened: the paper's [O | (x, (y, m))] becomes a bag
      element [msg(x, y, m)]; the transfer rule rewrites [O]'s
      [msg(x, y, m)] to [I]'s [msg(y, x, m)] ("y received m from x").
    - Rotation rules append a marker [rot(x)] to the history when the
      token leaves [x]; the paper's [⊂_C] comparison is prefix comparison
      after projecting onto these markers (§4.2's "projection onto the
      circular token ring rotation events"). Markers are ignored by the
      prefix-property checker, which projects them away first.
    - Token payloads: [tok(H)] is the circulating token carrying history
      [H]; [loan(H)] is the paper's decorated [ŷ] token that must be
      returned upon use (BinarySearch rules 7–8). *)

open Tr_trs

(** {1 Term builders} *)

val node : int -> Term.t
val bot : Term.t
(** The ⊥ token-in-transit marker. *)

val qent : Term.t -> Term.t -> Term.t -> Term.t
(** [qent x d budget]. *)

val pent : Term.t -> Term.t -> Term.t
(** [pent x h] — a local-history entry of [P]. *)

val msg : Term.t -> Term.t -> Term.t -> Term.t
(** [msg a b payload]. In [O]: [a] sends to [b]. In [I]: [a] received
    from [b]. *)

val went : Term.t -> Term.t -> Term.t
(** [went x tau_z] — a trap at node [x] on behalf of [z]. *)

val tok : Term.t -> Term.t
val loan : Term.t -> Term.t
val srch : Term.t -> Term.t
(** Sequential-search payload carrying a trap symbol. *)

val bsrch : Term.t -> Term.t -> Term.t -> Term.t
(** [bsrch span h_z tau_z] — binary-search payload: remaining span,
    requester's history snapshot, requester's trap symbol. *)

val tau_of : Term.t -> Term.t
(** [tau_of t] is [tau(t)] for an arbitrary term (e.g. a pattern
    variable); [Term.tau] only takes concrete node ids. *)

val bag_mem : Term.t -> Term.t -> bool
(** [bag_mem bag elem] — membership in a [Bag] term.
    @raise Invalid_argument on a non-bag. *)

val bag_add_unique : Term.t -> Term.t -> Term.t
(** Add the element unless an equal one is already present: the
    set-semantics union used to keep trap collections duplicate-free. *)

(** {1 Initial-state fields} *)

val initial_q : n:int -> data_budget:int -> Term.t
val initial_p : n:int -> Term.t
val empty_bag : Term.t
val empty_history : Term.t

(** {1 Guard / extension helpers} *)

val all_nodes : n:int -> int list

val extend_each : string -> (Subst.t -> Term.t list) -> Subst.t -> Subst.t list
(** [extend_each v choices] binds [v] to every candidate in turn —
    the building block for "send to some node y" non-determinism. *)

val extend_with : (Subst.t -> (string * Term.t) list) -> Subst.t -> Subst.t list
(** Deterministic multi-binding extension. *)

val compose_extends :
  (Subst.t -> Subst.t list) list -> Subst.t -> Subst.t list
(** Left-to-right Kleisli composition of extensions. *)

val forward : n:int -> int -> int -> int
(** [forward ~n x k] is x^{+k} with wrap-around (negative [k] allowed). *)

val rot_projection : Term.t -> Term.t
(** Keep only [rot] markers of a history. *)

val data_projection : Term.t -> Term.t
(** Drop [rot] markers of a history (for the prefix property, which is
    about broadcast data). *)

val histories_comparable : Term.t -> Term.t -> bool
(** One is a prefix of the other (on full histories). *)
