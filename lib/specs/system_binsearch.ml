open Tr_trs
open Notation

let wrap q p t i o w = Term.App ("BS", [ q; p; t; i; o; w ])

let initial ~n ~data_budget =
  wrap (initial_q ~n ~data_budget) (initial_p ~n) (node 0) empty_bag empty_bag
    empty_bag

let rule_new =
  Rule.make ~name:"new"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild Term.Wild Term.Wild Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d2") (Term.Var "b2") ])
         Term.Wild Term.Wild Term.Wild Term.Wild Term.Wild)
    ~guard:(fun s -> Subst.find_int s "b" > 0)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" and b = Subst.find_int s "b" in
           let d = Subst.find_exn s "d" in
           [
             ("d2", Term.seq_append d (Term.datum x b));
             ("b2", Term.Int (b - 1));
           ]))
    ()

let rule_transfer =
  Rule.make ~name:"transfer"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild (Term.Var "I")
         (Term.Bag [ Term.Var "O"; msg (Term.Var "a") (Term.Var "c") (Term.Var "m") ])
         Term.Wild)
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag [ Term.Var "I"; msg (Term.Var "c") (Term.Var "a") (Term.Var "m") ])
         (Term.Var "O") Term.Wild)
    ()

let rule_receive =
  Rule.make ~name:"receive"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") Term.Wild ])
         bot
         (Term.Bag [ Term.Var "I"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H")) ])
         Term.Wild Term.Wild)
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") (Term.Var "I") Term.Wild Term.Wild)
    ()

(* Rule 4: rotation. The holder broadcasts, stamps the history with a
   rot(x) circulation marker, and passes the token to its successor. *)
let rule_rotate ~n =
  Rule.make ~name:"rotate"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") Term.Wild (Term.Var "O") Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H2") ])
         bot Term.Wild
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (tok (Term.Var "H2")) ])
         Term.Wild)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" in
           let h = Subst.find_exn s "H" and d = Subst.find_exn s "d" in
           let h2 = Term.seq_append (Term.seq_append h d) (Term.rot x) in
           [ ("H2", h2); ("y", node (forward ~n x 1)) ]))
    ()

(* Rule 5: a ready node traps on its own behalf and launches a search —
   its history snapshot travels halfway across the ring. *)
let rule_request ~n =
  Rule.make ~name:"request"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         Term.Wild Term.Wild (Term.Var "O") (Term.Var "W"))
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "O";
              msg (Term.Var "x") (Term.Var "y")
                (bsrch (Term.Var "s") (Term.Var "H") (tau_of (Term.Var "x"))) ])
         (Term.Var "W2"))
    ~guard:(fun s ->
      let x = Subst.find_int s "x" in
      n >= 2 && not (bag_mem (Subst.find_exn s "W") (went (node x) (Term.tau x))))
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" in
           let w = Subst.find_exn s "W" in
           [
             ("y", node (forward ~n x (n / 2)));
             ("s", Term.Int (n / 2));
             ("W2", bag_add_unique w (went (node x) (Term.tau x)));
           ]))
    ()

let direction_of s =
  (* ⊂_C: compare the two histories projected onto rotation markers. If
     the requester's snapshot is a prefix of ours, the token passed here
     after passing the requester — chase it forward (+); otherwise it is
     behind us — search backward (−). *)
  let h = rot_projection (Subst.find_exn s "H") in
  let hz = rot_projection (Subst.find_exn s "Hz") in
  if Term.seq_is_prefix hz h then `Forward
  else if Term.seq_is_prefix h hz then `Backward
  else `Incomparable

(* Rule 6, searching case: trap locally, halve the span, continue in the
   direction the history comparison indicates. *)
let rule_forward ~n =
  Rule.make ~name:"forward"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         Term.Wild
         (Term.Bag
            [ Term.Var "I";
              msg (Term.Var "x") (Term.Var "y")
                (bsrch (Term.Var "s") (Term.Var "Hz") (tau_of (Term.Var "z"))) ])
         (Term.Var "O") (Term.Var "W"))
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         Term.Wild (Term.Var "I")
         (Term.Bag
            [ Term.Var "O";
              msg (Term.Var "x") (Term.Var "u")
                (bsrch (Term.Var "s2") (Term.Var "Hz") (tau_of (Term.Var "z"))) ])
         (Term.Var "W2"))
    ~guard:(fun s ->
      Subst.find_int s "s" >= 2 && direction_of s <> `Incomparable)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" in
           let span = Subst.find_int s "s" in
           let z = Subst.find_exn s "z" in
           let w = Subst.find_exn s "W" in
           let jump =
             match direction_of s with
             | `Forward -> span / 2
             | `Backward -> -(span / 2)
             | `Incomparable -> assert false
           in
           [
             ("u", node (forward ~n x jump));
             ("s2", Term.Int (span / 2));
             ("W2", bag_add_unique w (went (node x) (tau_of z)));
           ]))
    ()

(* Rule 6, base case: the span is exhausted — the search stops here and
   only the trap remains; the rotating token will hit it. *)
let rule_absorb =
  Rule.make ~name:"absorb"
    ~lhs:
      (wrap Term.Wild Term.Wild Term.Wild
         (Term.Bag
            [ Term.Var "I";
              msg (Term.Var "x") (Term.Var "y")
                (bsrch (Term.Var "s") (Term.Var "Hz") (tau_of (Term.Var "z"))) ])
         Term.Wild (Term.Var "W"))
    ~rhs:
      (wrap Term.Wild Term.Wild Term.Wild (Term.Var "I") Term.Wild
         (Term.Var "W2"))
    ~guard:(fun s -> Subst.find_int s "s" < 2)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" in
           let z = Subst.find_exn s "z" in
           let w = Subst.find_exn s "W" in
           [ ("W2", bag_add_unique w (went (node x) (tau_of z))) ]))
    ()

(* Rule 7: a trapped holder lends the token to the requester; the
   decorated destination (the paper's ŷ) is the loan payload, to be
   returned upon use. *)
let rule_serve =
  Rule.make ~name:"serve"
    ~lhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         (Term.Var "x") Term.Wild (Term.Var "O")
         (Term.Bag [ Term.Var "W"; went (Term.Var "x") (tau_of (Term.Var "y")) ]))
    ~rhs:
      (wrap Term.Wild
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H") ])
         bot Term.Wild
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "y") (loan (Term.Var "H")) ])
         (Term.Var "W"))
    ~guard:(fun s -> Subst.find_int s "x" <> Subst.find_int s "y")
    ()

(* Rule 8: the borrower broadcasts with the loaned token and immediately
   returns it to the lender, which resumes the rotation. *)
let rule_use_return =
  Rule.make ~name:"use_return"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") Term.Wild ])
         bot
         (Term.Bag [ Term.Var "I"; msg (Term.Var "x") (Term.Var "w") (loan (Term.Var "H")) ])
         (Term.Var "O") Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.Bag [ Term.Var "P"; pent (Term.Var "x") (Term.Var "H2") ])
         bot (Term.Var "I")
         (Term.Bag
            [ Term.Var "O"; msg (Term.Var "x") (Term.Var "w") (tok (Term.Var "H2")) ])
         Term.Wild)
    ~extend:
      (extend_with (fun s ->
           let h = Subst.find_exn s "H" and d = Subst.find_exn s "d" in
           [ ("H2", Term.seq_append h d) ]))
    ()

let system ~n =
  System.make ~name:"BinarySearch"
    ~rules:
      [ rule_new; rule_transfer; rule_receive; rule_rotate ~n; rule_request ~n;
        rule_forward ~n; rule_absorb; rule_serve; rule_use_return ]

let local_histories = function
  | Term.App ("BS", [ _; Term.Bag entries; _; _; _; _ ]) ->
      List.filter_map
        (function
          | Term.App ("pent", [ Term.Int y; h ]) -> Some (y, h)
          | _ -> None)
        entries
  | other ->
      invalid_arg
        (Printf.sprintf "System_binsearch.local_histories: not a BS state: %s"
           (Term.to_string other))

let holder = function
  | Term.App ("BS", [ _; _; Term.Int x; _; _; _ ]) -> Some x
  | Term.App ("BS", [ _; _; Term.Const "bot"; _; _; _ ]) -> None
  | other ->
      invalid_arg
        (Printf.sprintf "System_binsearch.holder: not a BS state: %s"
           (Term.to_string other))

let traps = function
  | Term.App ("BS", [ _; _; _; _; _; Term.Bag traps ]) ->
      List.filter_map
        (function
          | Term.App ("went", [ Term.Int x; Term.App ("tau", [ Term.Int z ]) ]) ->
              Some (x, z)
          | _ -> None)
        traps
  | other ->
      invalid_arg
        (Printf.sprintf "System_binsearch.traps: not a BS state: %s"
           (Term.to_string other))

let count_tokens_in_bag = function
  | Term.Bag items ->
      List.length
        (List.filter
           (function
             | Term.App ("msg", [ _; _; Term.App (("tok" | "loan"), _) ]) -> true
             | _ -> false)
           items)
  | _ -> 0

let token_count = function
  | Term.App ("BS", [ _; _; t; i; o; _ ]) ->
      let held = match t with Term.Int _ -> 1 | _ -> 0 in
      held + count_tokens_in_bag i + count_tokens_in_bag o
  | other ->
      invalid_arg
        (Printf.sprintf "System_binsearch.token_count: not a BS state: %s"
           (Term.to_string other))

let strip_rot_history h = data_projection h

let rec strip_rot = function
  | Term.Seq _ as h -> strip_rot_history h
  | Term.App (f, args) -> Term.App (f, List.map strip_rot args)
  | Term.Bag items -> Term.bag (List.map strip_rot items)
  | (Term.Const _ | Term.Int _ | Term.Var _ | Term.Wild) as t -> t

let erase_and_translate_messages = function
  | Term.Bag items ->
      Term.bag
        (List.filter_map
           (function
             | Term.App ("msg", [ _; _; Term.App ("bsrch", _) ]) -> None
             | Term.App ("msg", [ a; b; Term.App ("loan", [ h ]) ]) ->
                 Some (msg a b (tok h))
             | other -> Some other)
           items)
  | other -> other

let to_msgpass = function
  | Term.App ("BS", [ q; p; t; i; o; _w ]) ->
      Term.canonicalize
        (strip_rot
           (Term.App
              ( "MP",
                [ q; p; t; erase_and_translate_messages i;
                  erase_and_translate_messages o ] )))
  | other ->
      invalid_arg
        (Printf.sprintf "System_binsearch.to_msgpass: not a BS state: %s"
           (Term.to_string other))
