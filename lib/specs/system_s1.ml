open Tr_trs
open Notation

let wrap q h p = Term.App ("S1", [ q; h; p ])

let initial ~n ~data_budget =
  wrap (initial_q ~n ~data_budget) empty_history (initial_p ~n)

let rule_new =
  Rule.make ~name:"new"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         Term.Wild Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d2") (Term.Var "b2") ])
         Term.Wild Term.Wild)
    ~guard:(fun s -> Subst.find_int s "b" > 0)
    ~extend:
      (extend_with (fun s ->
           let x = Subst.find_int s "x" and b = Subst.find_int s "b" in
           let d = Subst.find_exn s "d" in
           [
             ("d2", Term.seq_append d (Term.datum x b));
             ("b2", Term.Int (b - 1));
           ]))
    ()

let rule_broadcast =
  Rule.make ~name:"broadcast"
    ~lhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") (Term.Var "d") (Term.Var "b") ])
         (Term.Var "H") Term.Wild)
    ~rhs:
      (wrap
         (Term.Bag [ Term.Var "Q"; qent (Term.Var "x") empty_history (Term.Var "b") ])
         (Term.App ("append", [ Term.Var "H"; Term.Var "d" ]))
         Term.Wild)
    ()

(* Rule 3: at any time, any node may refresh its local prefix history from
   the global history. *)
let rule_copy =
  Rule.make ~name:"copy"
    ~lhs:
      (wrap Term.Wild (Term.Var "H")
         (Term.Bag [ Term.Var "P"; pent (Term.Var "y") Term.Wild ]))
    ~rhs:
      (wrap Term.Wild (Term.Var "H")
         (Term.Bag [ Term.Var "P"; pent (Term.Var "y") (Term.Var "H") ]))
    ()

let system ~n =
  ignore n;
  System.make ~name:"S1" ~rules:[ rule_new; rule_broadcast; rule_copy ]

let global_history = function
  | Term.App ("S1", [ _; h; _ ]) -> h
  | other ->
      invalid_arg
        (Printf.sprintf "System_s1.global_history: not an S1 state: %s"
           (Term.to_string other))

let local_histories = function
  | Term.App ("S1", [ _; _; Term.Bag entries ]) ->
      List.filter_map
        (function
          | Term.App ("pent", [ Term.Int y; h ]) -> Some (y, h)
          | _ -> None)
        entries
  | other ->
      invalid_arg
        (Printf.sprintf "System_s1.local_histories: not an S1 state: %s"
           (Term.to_string other))

let to_s = function
  | Term.App ("S1", [ q; h; _ ]) -> Term.App ("S", [ q; h ])
  | other ->
      invalid_arg
        (Printf.sprintf "System_s1.to_s: not an S1 state: %s"
           (Term.to_string other))
