(** System Message-Passing — no global state (paper §3.4, Figure 5).

    State: [MP(Q, P, T, I, O)]. The history travels inside the token
    message [tok(H)]; [I]/[O] are the distributed input/output message
    sets; [T] is [Int x] at the holder or [bot] while the token is in
    transit. Rules:
    - [new] — a fresh datum (as in every system);
    - [transfer] — the paper's rule 2, moving [msg(x, y, m)] from [O] to
      [I] as [msg(y, x, m)];
    - [send] — the paper's rule 3: the holder broadcasts (appends to the
      history it carries), refreshes its prefix history, and sends the
      token to an {e arbitrary} node;
    - [receive] — the paper's rule 4: a node takes the token in, adopting
      the carried history.

    {!system_ring} replaces [send] by the paper's rule 3′ ([y = x⁺¹]),
    which forces circular rotation and yields Lemma 4's O(N)
    responsiveness. *)

open Tr_trs

val system : n:int -> System.t
val system_ring : n:int -> System.t

val system_with_pass : n:int -> System.t
(** [system] plus a [pass] rule (token handed on without broadcasting).
    Systems Search and BinarySearch forward the token to trapped
    requesters without broadcasting, so their refinement proofs target
    this extension; the extension itself is safe ([pass] is an S1
    stutter). *)

val system_faulty : n:int -> System.t
(** Opt-in fault model: [system] plus five fault transitions —
    [lose-token] (the network drops an in-flight token message),
    [dup-token] (the network delivers it twice), [stale-gimme] (a stale
    token request from a past round materialises in some input set),
    [gimme-regenerate] (a node honours a stale gimme by minting a fresh
    token from its local history, duplicating the live one), and
    [crash-holder] (the holder fail-stops and its token evaporates).
    Every one of them breaks token uniqueness one way or the other, so
    exploring this system with {!Prefix.check_msgpass} must surface
    prefix-property violations — the exhaustive counterpart of the chaos
    suite's loss/duplication/churn faults. *)

val initial : n:int -> data_budget:int -> Term.t
val local_histories : Term.t -> (int * Term.t) list

val holder : Term.t -> int option
(** [Some x] when [T = x], [None] while the token is in transit. *)

val in_flight_tokens : Term.t -> (int * int * Term.t) list
(** [(sender-or-receiver, peer, history)] of every [tok] payload in
    [I ∪ O]; used by the token-uniqueness invariant and the refinement
    mapping. *)

val to_s1 : Term.t -> Term.t
(** Lemma 3's drained-state mapping, targeting System S1: the abstract
    global history is the maximal history present anywhere in the state;
    the token field and message sets are forgotten. *)
