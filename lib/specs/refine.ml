open Tr_trs
module TMap = Map.Make (Term)

type failure = {
  source : Term.t;
  rule : string;
  target : Term.t;
  reason : string;
}

type report = {
  edges : int;
  stutters : int;
  steps : int;
  failures : failure list;
}

let check_simulation ?(max_abstract_steps = 2) ~abstraction ~abstract_system
    ~edges () =
  let successor_cache = ref TMap.empty in
  let successors state =
    match TMap.find_opt state !successor_cache with
    | Some s -> s
    | None ->
        let s = System.successors abstract_system state in
        successor_cache := TMap.add state s !successor_cache;
        s
  in
  (* Is [target] reachable from [source] in 1..k abstract steps? *)
  let reachable_within k source target =
    let rec expand frontier remaining =
      if remaining = 0 then false
      else
        let next = List.concat_map successors frontier in
        let next = List.sort_uniq Term.compare next in
        if List.exists (Term.equal target) next then true
        else expand next (remaining - 1)
    in
    expand [ source ] k
  in
  let edges_n = ref 0 and stutters = ref 0 and steps = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (source, rule, target) ->
      incr edges_n;
      let a = abstraction source and a' = abstraction target in
      if Term.equal a a' then incr stutters
      else if reachable_within max_abstract_steps a a' then incr steps
      else
        failures :=
          {
            source;
            rule;
            target;
            reason =
              Printf.sprintf
                "abstract step %s -> %s not reachable within %d %s moves"
                (Term.to_string a) (Term.to_string a') max_abstract_steps
                (System.name abstract_system);
          }
          :: !failures)
    edges;
  {
    edges = !edges_n;
    stutters = !stutters;
    steps = !steps;
    failures = List.rev !failures;
  }

let holds report = report.failures = []

let pp_report ppf report =
  Format.fprintf ppf
    "simulation: %d edges (%d stutters, %d abstract steps), %d failures"
    report.edges report.stutters report.steps (List.length report.failures);
  List.iteri
    (fun i f ->
      if i < 5 then
        Format.fprintf ppf "@\n  [%s] %s" f.rule f.reason)
    report.failures
