(** System BinarySearch — ring rotation + binary token search
    (paper §4.2, Figure 7; the headline contribution).

    State: [BS(Q, P, T, I, O, W)]. The eight rules:

    + [new] — fresh datum (rule 1);
    + [transfer] — message fabric (rule 2);
    + [receive] — take the token in (rule 3);
    + [rotate] — the holder broadcasts and passes the token to its ring
      successor, appending a [rot(x)] circulation marker to the history
      (rule 4);
    + [request] — a ready node traps locally and sends a search carrying
      its history snapshot halfway across the ring (rule 5);
    + [forward] — a searched node traps for the requester and forwards the
      search half the remaining span, clockwise or counter-clockwise
      according to the [⊂_C] history comparison (rule 6; {!Figure} 8) —
      realized here as prefix comparison of the histories projected onto
      [rot] markers. [absorb] is the span-exhausted base case;
    + [serve] — a trapped holder lends the token ([loan(H)], the paper's
      decorated ŷ) to the requester (rule 7);
    + [use_return] — the borrower broadcasts and immediately returns the
      token to the lender, which resumes rotation where it was intercepted
      (rule 8).

    Search spans: [request] jumps [n/2] and carries span [n/2]; [forward]
    receiving span [s ≥ 2] jumps [±s/2] and carries [s/2]; a span below 2
    is absorbed. Successive jumps [n/2, n/4, …, 1] give Lemma 6's
    O(log N) forwards.

    The same two finiteness restrictions as System Search apply (set
    semantics for traps, single outstanding request per node). *)

open Tr_trs

val system : n:int -> System.t
val initial : n:int -> data_budget:int -> Term.t
val local_histories : Term.t -> (int * Term.t) list
val holder : Term.t -> int option
val traps : Term.t -> (int * int) list

val token_count : Term.t -> int
(** Number of tokens in the state: [T = x] plus [tok]/[loan] payloads in
    [I ∪ O]. The uniqueness invariant says this is always exactly 1. *)

val to_msgpass : Term.t -> Term.t
(** Refinement mapping (Theorem 1): forget [W], erase search messages,
    strip [rot] markers from all histories, and read [loan(H)] as the
    token in transit ([tok(H)]). The image is a Message-Passing-with-pass
    state. *)
