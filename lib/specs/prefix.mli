(** The paper's safety criterion, machine-checkable per state.

    Definition 2: a protocol satisfies the {e prefix property} if each
    node's individual history is a prefix of the global history. For the
    distributed systems there is no global history; the equivalent
    statement is that all histories present in a state (local prefix
    histories, histories carried by token/loan messages, and search
    snapshots) form a {e chain} under the prefix order — each is then a
    prefix of the maximal one, which plays the role of the global history
    (this is exactly the mapping used in Lemma 3's proof).

    All checks compare {e data-projected} histories (rotation markers
    stripped), since the property is about broadcast data. Checkers
    return [Error reason] suitable for {!Tr_trs.Explore.bfs}'s [check]. *)

open Tr_trs

val chain : Term.t list -> (unit, string) result
(** Every pair of (data-projected) histories is prefix-comparable. *)

val no_duplicate_data : Term.t -> (unit, string) result
(** No datum occurs twice in the (data-projected) history: broadcasts are
    delivered exactly once. *)

val check_s : Term.t -> (unit, string) result
(** System S: the global history never contains duplicated data. *)

val check_s1 : Term.t -> (unit, string) result
(** System S1 (Lemma 1): each local history is a prefix of [H]. *)

val check_token : Term.t -> (unit, string) result
(** System Token (Lemma 2). *)

val check_msgpass : Term.t -> (unit, string) result
(** System Message-Passing (Lemma 3): chain over local histories and
    in-flight token payloads, plus token uniqueness. *)

val check_search : Term.t -> (unit, string) result
(** System Search: as Message-Passing; search messages carry no history. *)

val check_binsearch : Term.t -> (unit, string) result
(** System BinarySearch (Theorem 1): chain over local histories,
    token/loan payloads and search snapshots, token uniqueness, and
    duplicate-freedom. *)
