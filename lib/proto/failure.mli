(** Failure handling — the §5 extension, made executable.

    The paper observes that combining token traversal with searching
    already yields a failure-handling path: "if a node x with the token
    fails, then nothing will happen until some other node y needs the
    token, at which point it will quickly discover that the token holder
    has failed (provided a time-out based detection is available)... they
    can then determine if x is really dead and if the token was at x. If
    so, they can generate a new token."

    This protocol is the ring baseline hardened against fail-stop crashes:

    - {b Hop acknowledgements}: every token hop expects an [Ack]; a
      missing Ack makes the sender skip the dead successor and re-send,
      so crashes of {e non-holders} never lose the token.
    - {b Loss detection}: a ready node that has not seen the token for
      [timeout] time units broadcasts [WhoHas]; live nodes answer
      [Status] with the highest hop stamp they witnessed.
    - {b Regeneration}: the initiator asks the live node with the highest
      stamp — the last node the token visited before vanishing — to mint
      a new token with an incremented {e generation}. Stale tokens (lower
      generation) are discarded on arrival, so a regeneration race cannot
      leave two live tokens circulating.

    Crashes are injected through {!Tr_sim.Engine.config}'s [crashes]. *)

open Tr_sim

type msg =
  | Token of { gen : int; stamp : int }
  | Ack of { gen : int; stamp : int }
  | WhoHas of { initiator : int }
  | Status of { stamp : int; gen : int }
  | Regenerate of { gen : int }

type state

val make :
  ?timeout:float ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** [timeout] defaults to [3n] time units, scaling with the ring size.
    The returned package keeps [state] visible for introspection. *)

val protocol : (module Node_intf.PROTOCOL)
(** [make ()], type-erased for the registry. *)

val generation : state -> int
(** Highest token generation this node has witnessed (tests). *)
