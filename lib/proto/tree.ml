open Tr_sim

type msg = Token | Request

(* Directions are neighbour node ids; [self] is encoded as -1 so the
   queue is a plain int list. *)
let self_dir = -1

type state = {
  holder : int;  (** [self_dir] when we hold the token, else a neighbour. *)
  queue : int list;  (** FIFO of directions wanting the token. *)
  asked : bool;  (** A Request toward the holder is already in flight. *)
}

let holder_direction state =
  if state.holder = self_dir then None else Some state.holder

let queue state = state.queue

let classify = function Token -> Metrics.Token_msg | Request -> Metrics.Control_msg
let label = function Token -> "token" | Request -> "request"

let parent i = (i - 1) / 2

(* On the path from [self] to the root, the next hop toward the token is
   always the tree parent; Requests and the Token only ever travel along
   tree edges, so [holder] is always a tree neighbour. *)

let enqueue state dir =
  if List.mem dir state.queue then state
  else { state with queue = state.queue @ [ dir ] }

(* Named (rather than inline) so [protocol_t] below can expose the typed
   module the wire-codec layer pairs with {!Tr_wire.Codecs.tree}. *)
module P = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "tree"

    let describe =
      "Raymond's tree token algorithm on a static balanced binary tree: \
       O(log N) messages per request, token traffic concentrated on \
       interior nodes"

    let classify = classify
    let label = label

    let init (ctx : msg Node_intf.ctx) =
      if ctx.self = 0 then { holder = self_dir; queue = []; asked = false }
      else { holder = parent ctx.self; queue = []; asked = false }

    (* If we want the token (queue non-empty) and do not hold it, make
       sure one Request is on its way toward the holder. *)
    let solicit (ctx : msg Node_intf.ctx) state =
      if state.holder <> self_dir && state.queue <> [] && not state.asked then begin
        ctx.send ~channel:Network.Cheap ~dst:state.holder Request;
        { state with asked = true }
      end
      else state

    (* We hold the token: grant the queue head. Granting to ourselves
       serves local requests; granting to a neighbour sends the token one
       edge along the tree and, if more directions still wait, chases it
       with a Request immediately. *)
    let rec grant (ctx : msg Node_intf.ctx) state =
      match state.queue with
      | [] -> state
      | dir :: rest when dir = self_dir ->
          Proto_util.serve_all ctx;
          grant ctx { state with queue = rest }
      | dir :: rest ->
          ctx.send ~dst:dir Token;
          let state = { holder = dir; queue = rest; asked = false } in
          solicit ctx state

    let on_request (ctx : msg Node_intf.ctx) state =
      if state.holder = self_dir then begin
        Proto_util.serve_all ctx;
        state
      end
      else solicit ctx (enqueue state self_dir)

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Request ->
          ctx.search_forward ();
          let state = enqueue state src in
          if state.holder = self_dir then grant ctx state else solicit ctx state
      | Token ->
          ctx.possession ();
          let state = { state with holder = self_dir; asked = false } in
          grant ctx state

    let on_timer _ctx state ~key:_ = state
end

let protocol_t :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module P)

let protocol : (module Node_intf.PROTOCOL) = (module P)
