open Tr_sim

type msg =
  | Token of { stamp : int; pred : int; bypass : int option }
  | JoinReq of { joiner : int }
  | Welcome of { succ : int }
  | Relink of { leaver : int; new_succ : int }

type state = {
  member : bool;
  succ : int option;
      (** Successor pointer. Kept after leaving so a departed node can
          still forward a stray token ("ghost forwarding"), which makes
          the predecessor's re-pointing race-free. *)
  pred : int option;  (** Learned from each token arrival. *)
  join_queue : int list;  (** Contact only: joiners awaiting a splice. *)
  leaving : bool;
}

let is_member state = state.member
let successor state = if state.member then state.succ else None

let timer_join_trigger = 1
let timer_join_retry = 2
let timer_leave_trigger = 3

let join_retry_period = 25.0

let classify = function
  | Token _ -> Metrics.Token_msg
  | JoinReq _ | Welcome _ | Relink _ -> Metrics.Control_msg

let label = function
  | Token { stamp; pred; bypass } ->
      Printf.sprintf "token#%d(pred=%d%s)" stamp pred
        (match bypass with Some b -> Printf.sprintf " bypass=%d" b | None -> "")
  | JoinReq { joiner } -> Printf.sprintf "join-req(%d)" joiner
  | Welcome { succ } -> Printf.sprintf "welcome(succ=%d)" succ
  | Relink { leaver; new_succ } ->
      Printf.sprintf "relink(drop=%d succ=%d)" leaver new_succ

let make ?initial_members ?(contact = 0) ?(joins = []) ?(leaves = []) () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "ring-membership"

    let describe =
      "ring rotation with asynchronous join/leave (§5): token-ordered \
       splices keep reconfiguration race-free"

    let classify = classify
    let label = label

    let members_at_start (ctx : msg Node_intf.ctx) =
      match initial_members with
      | None -> ctx.n
      | Some m ->
          if m < 1 || m > ctx.n then
            invalid_arg "Membership: initial_members outside [1, n]";
          m

    let init (ctx : msg Node_intf.ctx) =
      let m = members_at_start ctx in
      if contact >= m then
        invalid_arg "Membership: the contact must be an initial member";
      if List.exists (fun (node, _) -> node = contact) leaves then
        invalid_arg "Membership: the contact cannot leave";
      if List.exists (fun (node, _) -> node < m) joins then
        invalid_arg "Membership: initial members cannot join again";
      List.iter
        (fun (node, at) ->
          if node = ctx.self then ctx.set_timer ~delay:at ~key:timer_join_trigger)
        joins;
      List.iter
        (fun (node, at) ->
          if node = ctx.self then ctx.set_timer ~delay:at ~key:timer_leave_trigger)
        leaves;
      let member = ctx.self < m in
      let succ = if member then Some ((ctx.self + 1) mod m) else None in
      if ctx.self = 0 && member then begin
        ctx.possession ();
        ctx.send ~dst:(Option.get succ) (Token { stamp = 1; pred = 0; bypass = None })
      end;
      { member; succ; pred = None; join_queue = []; leaving = false }

    (* The holder's exit actions, in priority order: leave if asked,
       splice one joiner if we are the contact, else plain rotation. *)
    let relinquish (ctx : msg Node_intf.ctx) state ~stamp =
      let next = Option.value state.succ ~default:ctx.self in
      if state.leaving && next <> ctx.self then begin
        (* Hand the token on and ask our predecessor to bypass us. *)
        (match state.pred with
        | Some p when p <> ctx.self ->
            ctx.send ~channel:Network.Cheap ~dst:p
              (Relink { leaver = ctx.self; new_succ = next })
        | Some _ | None -> ());
        ctx.send ~dst:next
          (Token { stamp = stamp + 1; pred = ctx.self; bypass = Some ctx.self });
        ctx.note (fun () -> "left the ring");
        { state with member = false; leaving = false }
      end
      else
        match state.join_queue with
        | joiner :: rest when ctx.self = contact ->
            (* Splice the joiner between us and our successor, then push
               the token through it so it starts participating at once. *)
            let old_succ = next in
            ctx.send ~channel:Network.Cheap ~dst:joiner (Welcome { succ = old_succ });
            ctx.send ~dst:joiner
              (Token { stamp = stamp + 1; pred = ctx.self; bypass = None });
            ctx.note (fun () -> Printf.sprintf "spliced node %d" joiner);
            { state with succ = Some joiner; join_queue = rest }
        | _ :: _ | [] ->
            ctx.send ~dst:next
              (Token { stamp = stamp + 1; pred = ctx.self; bypass = None });
            state

    let on_request _ctx state = state
    (* Members are served by the rotation; a non-member's request waits
       until its scheduled join completes. *)

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp; pred; bypass } ->
          if not state.member then begin
            (* Ghost forwarding: a token that reaches a departed node is
               passed straight to where it would have gone. *)
            match state.succ with
            | Some next when next <> ctx.self ->
                ctx.send ~dst:next (Token { stamp; pred; bypass });
                state
            | Some _ | None ->
                (* A never-member got the token: return it to the contact. *)
                ctx.send ~dst:contact (Token { stamp; pred; bypass });
                state
          end
          else begin
            ctx.possession ();
            Proto_util.serve_all ctx;
            let state =
              match bypass with
              | Some leaver when state.succ = Some leaver ->
                  (* We were the leaver's predecessor and the token beat
                     the Relink here: adopt the new successor now. *)
                  { state with succ = Some src; pred = Some pred }
              | Some _ | None -> { state with pred = Some pred }
            in
            relinquish ctx state ~stamp
          end
      | JoinReq { joiner } ->
          if ctx.self <> contact then state
          else if List.mem joiner state.join_queue then state
          else begin
            ctx.note (fun () -> Printf.sprintf "queued joiner %d" joiner);
            { state with join_queue = state.join_queue @ [ joiner ] }
          end
      | Welcome { succ } ->
          ctx.cancel_timers ~key:timer_join_retry;
          ctx.note (fun () -> "joined the ring");
          { state with member = true; succ = Some succ }
      | Relink { leaver; new_succ } ->
          if state.succ = Some leaver then { state with succ = Some new_succ }
          else state

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key = timer_join_trigger || key = timer_join_retry then begin
        if state.member then state
        else begin
          ctx.send ~channel:Network.Cheap ~dst:contact
            (JoinReq { joiner = ctx.self });
          ctx.set_timer ~delay:join_retry_period ~key:timer_join_retry;
          state
        end
      end
      else if key = timer_leave_trigger then
        if state.member then { state with leaving = true } else state
      else state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))
