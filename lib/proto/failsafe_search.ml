open Tr_sim
module ISet = Set.Make (Int)
module Traps = Proto_util.Traps

type msg =
  | Token of { gen : int; stamp : int }
  | Ack of { gen : int; stamp : int }
  | Loan of { gen : int; stamp : int }
  | Return of { gen : int; stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | WhoHas of { initiator : int }
  | Status of { gen : int; stamp : int }
  | Regenerate of { gen : int }

type holding =
  | Not_holding
  | Held of { gen : int; stamp : int }
  | Lent of { gen : int; stamp : int; borrower : int }

type state = {
  gen : int;
  last_stamp : int;
  last_seen : float;
  dead : ISet.t;
  traps : Traps.t;
  holding : holding;
  awaiting_ack : (int * int * int) option;  (** (gen, stamp, dst). *)
  recovering : bool;
  best_status : (int * int * int) option;  (** (gen, stamp, node). *)
}

let generation state = state.gen

let timer_ack = 1
let timer_watch = 2
let timer_collect = 3
let timer_pass = 4
let timer_loan = 5

let ack_wait = 3.0
let collect_window = 3.0
let hold_time = 0.5
let loan_wait = 5.0

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Ack _ | Gimme _ | WhoHas _ | Status _ | Regenerate _ -> Metrics.Control_msg

let label = function
  | Token { gen; stamp } -> Printf.sprintf "token(g%d,#%d)" gen stamp
  | Ack { gen; stamp } -> Printf.sprintf "ack(g%d,#%d)" gen stamp
  | Loan { gen; stamp } -> Printf.sprintf "loan(g%d,#%d)" gen stamp
  | Return { gen; stamp } -> Printf.sprintf "return(g%d,#%d)" gen stamp
  | Gimme { requester; span; stamp } ->
      Printf.sprintf "gimme(req=%d span=%d stamp=%d)" requester span stamp
  | WhoHas { initiator } -> Printf.sprintf "whohas(from=%d)" initiator
  | Status { gen; stamp } -> Printf.sprintf "status(g%d,#%d)" gen stamp
  | Regenerate { gen } -> Printf.sprintf "regenerate(g%d)" gen

let make ?timeout () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "binsearch-failsafe"

    let describe =
      "BinarySearch hardened against fail-stop crashes (§5): acknowledged \
       rotation skips dead successors, unreturned loans are reissued, and \
       a timed-out requester regenerates the token"

    let classify = classify
    let label = label

    let watch_timeout (ctx : msg Node_intf.ctx) =
      match timeout with Some t -> t | None -> 3.0 *. float_of_int ctx.n

    let next_alive (ctx : msg Node_intf.ctx) state =
      let rec scan candidate remaining =
        if remaining = 0 || candidate = ctx.self then ctx.self
        else if ISet.mem candidate state.dead then
          scan (Node_intf.succ_node ~n:ctx.n candidate) (remaining - 1)
        else candidate
      in
      scan (Node_intf.succ_node ~n:ctx.n ctx.self) ctx.n

    let send_token (ctx : msg Node_intf.ctx) state ~gen ~stamp =
      let dst = next_alive ctx state in
      if dst = ctx.self then
        (* No live successor: keep holding; the pass timer retries. *)
        let state = { state with holding = Held { gen; stamp } } in
        (ctx.set_timer ~delay:hold_time ~key:timer_pass;
         state)
      else begin
        ctx.send ~dst (Token { gen; stamp });
        ctx.set_timer ~delay:ack_wait ~key:timer_ack;
        { state with awaiting_ack = Some (gen, stamp, dst); holding = Not_holding }
      end

    (* Lend to the oldest live trapped requester or rotate onward. *)
    let rec dispatch (ctx : msg Node_intf.ctx) state ~gen ~stamp =
      match Traps.pop state.traps with
      | Some (requester, traps) ->
          let state = { state with traps } in
          if requester = ctx.self || ISet.mem requester state.dead then
            dispatch ctx state ~gen ~stamp
          else begin
            ctx.send ~dst:requester (Loan { gen; stamp });
            ctx.set_timer ~delay:loan_wait ~key:timer_loan;
            { state with holding = Lent { gen; stamp; borrower = requester } }
          end
      | None -> send_token ctx state ~gen ~stamp:(stamp + 1)

    let init (ctx : msg Node_intf.ctx) =
      let state =
        {
          gen = 1;
          last_stamp = 0;
          last_seen = 0.0;
          dead = ISet.empty;
          traps = Traps.empty;
          holding = Not_holding;
          awaiting_ack = None;
          recovering = false;
          best_status = None;
        }
      in
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.set_timer ~delay:hold_time ~key:timer_pass;
        { state with holding = Held { gen = 1; stamp = 0 } }
      end
      else state

    let launch_search (ctx : msg Node_intf.ctx) state =
      let span = ctx.n / 2 in
      if span >= 1 then begin
        let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
        ctx.send ~channel:Network.Cheap ~dst
          (Gimme { requester = ctx.self; span; stamp = state.last_stamp })
      end;
      ctx.set_timer ~delay:(watch_timeout ctx) ~key:timer_watch;
      state

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.holding with
      | Held _ -> state (* served when the hold window closes *)
      | Lent _ | Not_holding -> launch_search ctx state

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { gen; stamp } ->
          (* Always acknowledge, so a live node is never marked dead; a
             stale-generation token is destroyed on arrival. *)
          ctx.send ~channel:Network.Cheap ~dst:src (Ack { gen; stamp });
          if gen < state.gen then state
          else begin
            ctx.possession ();
            Proto_util.serve_all ctx;
            ctx.set_timer ~delay:hold_time ~key:timer_pass;
            {
              state with
              gen;
              last_stamp = stamp;
              last_seen = ctx.now ();
              holding = Held { gen; stamp };
              recovering = false;
            }
          end
      | Ack { gen; stamp } -> (
          match state.awaiting_ack with
          | Some (g, s, _) when g = gen && s = stamp ->
              ctx.cancel_timers ~key:timer_ack;
              { state with awaiting_ack = None }
          | Some _ | None -> state)
      | Loan { gen; stamp } ->
          if gen < state.gen then state
          else begin
            ctx.possession ();
            Proto_util.serve_all ctx;
            ctx.send ~dst:src (Return { gen; stamp });
            { state with gen; last_seen = ctx.now (); recovering = false }
          end
      | Return { gen; stamp } -> (
          match state.holding with
          | Lent { gen = g; stamp = s; _ } when g = gen && s = stamp ->
              ctx.cancel_timers ~key:timer_loan;
              ctx.possession ();
              Proto_util.serve_all ctx;
              dispatch ctx { state with holding = Not_holding } ~gen ~stamp
          | Lent _ | Held _ | Not_holding -> state)
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state = { state with traps = Traps.push state.traps requester } in
            (match state.holding with
            | Held _ | Lent _ -> () (* served from here when free *)
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end);
            state
          end
      | WhoHas { initiator } ->
          ctx.send ~channel:Network.Cheap ~dst:initiator
            (Status { gen = state.gen; stamp = state.last_stamp });
          state
      | Status { gen; stamp } ->
          if not state.recovering then state
          else begin
            let better =
              match state.best_status with
              | None -> true
              | Some (bg, bs, _) -> gen > bg || (gen = bg && stamp > bs)
            in
            if better then { state with best_status = Some (gen, stamp, src) }
            else state
          end
      | Regenerate { gen } ->
          if gen <= state.gen then state
          else begin
            ctx.possession ();
            ctx.note (fun () -> Printf.sprintf "regenerating token g%d" gen);
            Proto_util.serve_all ctx;
            ctx.set_timer ~delay:hold_time ~key:timer_pass;
            {
              state with
              gen;
              recovering = false;
              holding = Held { gen; stamp = state.last_stamp };
            }
          end

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key = timer_pass then
        match state.holding with
        | Held { gen; stamp } ->
            Proto_util.serve_all ctx;
            dispatch ctx state ~gen ~stamp
        | Lent _ | Not_holding -> state
      else if key = timer_ack then
        match state.awaiting_ack with
        | Some (gen, stamp, dst) ->
            ctx.note (fun () -> Printf.sprintf "suspecting node %d" dst);
            send_token ctx
              { state with dead = ISet.add dst state.dead; awaiting_ack = None }
              ~gen ~stamp
        | None -> state
      else if key = timer_loan then
        match state.holding with
        | Lent { gen; stamp; borrower } ->
            (* The borrower died holding our loan: it can be nowhere else,
               so reissue it here and move on. *)
            ctx.note (fun () -> Printf.sprintf "loan to %d lost; reissuing" borrower);
            ctx.possession ();
            Proto_util.serve_all ctx;
            dispatch ctx
              { state with dead = ISet.add borrower state.dead;
                holding = Not_holding }
              ~gen ~stamp
        | Held _ | Not_holding -> state
      else if key = timer_watch then begin
        if
          ctx.pending () > 0
          && (not state.recovering)
          && (match state.holding with Not_holding -> true | _ -> false)
          && ctx.now () -. state.last_seen >= watch_timeout ctx
        then begin
          ctx.note (fun () -> "search unanswered; broadcasting WhoHas");
          for dst = 0 to ctx.n - 1 do
            if dst <> ctx.self then
              ctx.send ~channel:Network.Cheap ~dst (WhoHas { initiator = ctx.self })
          done;
          ctx.set_timer ~delay:collect_window ~key:timer_collect;
          {
            state with
            recovering = true;
            best_status = Some (state.gen, state.last_stamp, ctx.self);
          }
        end
        else state
      end
      else if key = timer_collect then begin
        if not state.recovering then state
        else if ctx.pending () = 0 then { state with recovering = false }
        else
          match state.best_status with
          | None -> { state with recovering = false }
          | Some (gen, stamp, witness) ->
              let new_gen = gen + 1 in
              ctx.set_timer ~delay:(watch_timeout ctx) ~key:timer_watch;
              if witness = ctx.self then begin
                ctx.possession ();
                ctx.note (fun () ->
                    Printf.sprintf "regenerating token g%d locally" new_gen);
                Proto_util.serve_all ctx;
                ctx.set_timer ~delay:hold_time ~key:timer_pass;
                {
                  state with
                  gen = new_gen;
                  recovering = false;
                  best_status = None;
                  holding = Held { gen = new_gen; stamp };
                }
              end
              else begin
                ctx.send ~dst:witness (Regenerate { gen = new_gen });
                { state with recovering = false; best_status = None }
              end
      end
      else state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))
