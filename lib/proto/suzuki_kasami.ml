open Tr_sim

type msg =
  | Request of { requester : int; seq : int }
  | Token of { ln : int array; queue : int list }

type token = { ln : int array; queue : int list }

type state = {
  rn : int array;  (** Highest request number heard, per node. *)
  token : token option;
}

let has_token state = Option.is_some state.token
let request_number state ~of_node = state.rn.(of_node)
let token_queue state = Option.map (fun t -> t.queue) state.token

let classify = function
  | Request _ -> Metrics.Control_msg
  | Token _ -> Metrics.Token_msg

let label = function
  | Request { requester; seq } -> Printf.sprintf "request(%d.%d)" requester seq
  | Token { queue; _ } -> Printf.sprintf "token(queue=%d)" (List.length queue)

(* Grant order: nodes whose latest request is exactly one past their last
   grant are outstanding; append them FIFO behind the queue the token
   already carries. *)
let outstanding (ctx : msg Node_intf.ctx) state token =
  List.filter
    (fun j ->
      j <> ctx.self
      && (not (List.mem j token.queue))
      && state.rn.(j) = token.ln.(j) + 1)
    (List.init ctx.n (fun j -> j))

(* Named (rather than inline) so [protocol_t] below can expose the typed
   module the wire-codec layer pairs with its codec. *)
module P = struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "suzuki-kasami"

    let describe =
      "Suzuki-Kasami broadcast token: requests broadcast to all nodes \
       (N-1 cheap messages), the token moves only on demand and parks \
       when idle"

    let classify = classify
    let label = label

    (* Use the token here, then send it to the next waiter or park it. *)
    let dispatch (ctx : msg Node_intf.ctx) state token =
      Proto_util.serve_all ctx;
      let ln = Array.copy token.ln in
      ln.(ctx.self) <- state.rn.(ctx.self);
      let token = { ln; queue = token.queue @ outstanding ctx state { token with ln } } in
      match token.queue with
      | next :: rest ->
          ctx.send ~dst:next (Token { ln = Array.copy token.ln; queue = rest });
          { state with token = None }
      | [] -> { state with token = Some token } (* park: zero idle cost *)

    let init (ctx : msg Node_intf.ctx) =
      let token =
        if ctx.self = 0 then begin
          ctx.possession ();
          Some { ln = Array.make ctx.n 0; queue = [] }
        end
        else None
      in
      { rn = Array.make ctx.n 0; token }

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.token with
      | Some token -> dispatch ctx state token
      | None ->
          let rn = Array.copy state.rn in
          rn.(ctx.self) <- rn.(ctx.self) + 1;
          for dst = 0 to ctx.n - 1 do
            if dst <> ctx.self then
              ctx.send ~channel:Network.Cheap ~dst
                (Request { requester = ctx.self; seq = rn.(ctx.self) })
          done;
          { state with rn }

    let on_message (ctx : msg Node_intf.ctx) state ~src:_ msg =
      match msg with
      | Request { requester; seq } ->
          let rn = Array.copy state.rn in
          rn.(requester) <- Stdlib.max rn.(requester) seq;
          let state = { state with rn } in
          (match state.token with
          | Some token when ctx.pending () = 0 ->
              (* Idle holder: hand the token over if the request is new. *)
              if rn.(requester) = token.ln.(requester) + 1 then
                dispatch ctx state token
              else state
          | Some _ | None -> state)
      | Token { ln; queue } ->
          ctx.possession ();
          dispatch ctx state { ln; queue }

    let on_timer _ctx state ~key:_ = state
end

let protocol_t :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module P)

let protocol : (module Node_intf.PROTOCOL) = (module P)
