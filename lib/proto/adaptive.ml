open Tr_sim

type msg =
  | Token of { stamp : int; idle_hops : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }

type holding =
  | Not_holding
  | Parked of { stamp : int; idle_hops : int }  (** Waiting out the delay. *)
  | Lent

type state = {
  last_stamp : int;
  holding : holding;
  traps : Proto_util.Traps.t;
}

let is_parked state =
  match state.holding with Parked _ -> true | Not_holding | Lent -> false

let timer_pass = 1

let classify = function
  | Token _ | Loan _ | Return _ -> Metrics.Token_msg
  | Gimme _ -> Metrics.Control_msg

let label = function
  | Token { stamp; idle_hops } -> Printf.sprintf "token#%d(idle=%d)" stamp idle_hops
  | Loan { stamp } -> Printf.sprintf "loan#%d" stamp
  | Return { stamp } -> Printf.sprintf "return#%d" stamp
  | Gimme { requester; span; stamp } ->
      Printf.sprintf "gimme(req=%d span=%d stamp=%d)" requester span stamp

let make ?(idle_delay = 8.0) () :
    (module Node_intf.PROTOCOL with type state = state and type msg = msg) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = "adaptive"

    let describe =
      Printf.sprintf
        "BinarySearch with demand-adaptive token speed (§4.4): full speed \
         under demand, one hop per %g time units after an idle revolution"
        idle_delay

    let classify = classify
    let label = label

    (* Forward the token: lend to the oldest trap, or rotate. [demand]
       says whether this visit saw any service; it resets the idle
       counter. *)
    let rec dispatch (ctx : msg Node_intf.ctx) state ~stamp ~idle_hops =
      match Proto_util.Traps.pop state.traps with
      | Some (requester, traps) ->
          if requester = ctx.self then
            dispatch ctx { state with traps } ~stamp ~idle_hops
          else begin
            ctx.send ~dst:requester (Loan { stamp });
            { state with holding = Lent; traps }
          end
      | None ->
          if idle_hops > ctx.n then begin
            (* A full revolution without demand: park, hop later. *)
            ctx.set_timer ~delay:idle_delay ~key:timer_pass;
            { state with holding = Parked { stamp; idle_hops } }
          end
          else begin
            ctx.send
              ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
              (Token { stamp = stamp + 1; idle_hops = idle_hops + 1 });
            { state with holding = Not_holding }
          end

    (* Demand appeared while parked: release the token right away. *)
    let release_if_parked (ctx : msg Node_intf.ctx) state =
      match state.holding with
      | Parked { stamp; idle_hops = _ } ->
          ctx.cancel_timers ~key:timer_pass;
          Proto_util.serve_all ctx;
          dispatch ctx { state with holding = Not_holding } ~stamp ~idle_hops:0
      | Not_holding | Lent -> state

    let init (ctx : msg Node_intf.ctx) =
      if ctx.self = 0 then begin
        ctx.possession ();
        ctx.send ~dst:(Node_intf.succ_node ~n:ctx.n 0) (Token { stamp = 1; idle_hops = 0 })
      end;
      { last_stamp = 0; holding = Not_holding; traps = Proto_util.Traps.empty }

    let on_request (ctx : msg Node_intf.ctx) state =
      match state.holding with
      | Parked _ -> release_if_parked ctx state
      | Not_holding | Lent ->
          let span = ctx.n / 2 in
          if span < 1 then state
          else begin
            let dst = Node_intf.forward_node ~n:ctx.n ctx.self span in
            ctx.send ~channel:Network.Cheap ~dst
              (Gimme { requester = ctx.self; span; stamp = state.last_stamp });
            state
          end

    let on_message (ctx : msg Node_intf.ctx) state ~src msg =
      match msg with
      | Token { stamp; idle_hops } ->
          ctx.possession ();
          let busy =
            ctx.pending () > 0 || not (Proto_util.Traps.is_empty state.traps)
          in
          Proto_util.serve_all ctx;
          let state = { state with last_stamp = stamp } in
          dispatch ctx state ~stamp ~idle_hops:(if busy then 0 else idle_hops)
      | Loan { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          ctx.send ~dst:src (Return { stamp });
          state
      | Return { stamp } ->
          ctx.possession ();
          Proto_util.serve_all ctx;
          (* A loan is proof of demand: resume at full speed. *)
          dispatch ctx { state with holding = Not_holding } ~stamp ~idle_hops:0
      | Gimme { requester; span; stamp } ->
          if requester = ctx.self then state
          else begin
            ctx.search_forward ();
            let state =
              { state with traps = Proto_util.Traps.push state.traps requester }
            in
            match state.holding with
            | Parked _ -> release_if_parked ctx state
            | Lent -> state
            | Not_holding ->
                if span >= 2 then begin
                  let jump = span / 2 in
                  let dir = if state.last_stamp >= stamp then jump else -jump in
                  let dst = Node_intf.forward_node ~n:ctx.n ctx.self dir in
                  ctx.send ~channel:Network.Cheap ~dst
                    (Gimme { requester; span = jump; stamp })
                end;
                state
          end

    let on_timer (ctx : msg Node_intf.ctx) state ~key =
      if key <> timer_pass then state
      else
        match state.holding with
        | Parked { stamp; idle_hops } ->
            Proto_util.serve_all ctx;
            let state = { state with holding = Not_holding } in
            if Proto_util.Traps.is_empty state.traps then begin
              ctx.send
                ~dst:(Node_intf.succ_node ~n:ctx.n ctx.self)
                (Token { stamp = stamp + 1; idle_hops = idle_hops + 1 });
              state
            end
            else dispatch ctx state ~stamp ~idle_hops:0
        | Not_holding | Lent -> state
  end)

let protocol : (module Node_intf.PROTOCOL) = (module (val make ()))
