open Tr_sim

type msg = Token of { gen : int; serial : int }
type state = { last_gen : int; last_serial : int }

let name = "random-walk"

let describe =
  "self-stabilizing random-walk circulation (Bernard/Bui/Sohier): the \
   token hops to a uniformly random node, stale or duplicated tokens \
   are destroyed by a (generation, serial) order, and a staggered \
   timeout regenerates a lost token with a higher generation"

let classify (Token _) = Metrics.Token_msg
let label (Token { gen; serial }) = Printf.sprintf "walk#%d.%d" gen serial

let timer_watch = 1

(* No-visit timeout before a node assumes the token died. A random walk
   on the complete graph revisits a given node every ~n hops with
   geometric tail, so c·n·(1 + ln n) makes a spurious timeout vanishingly
   rare; the per-node stagger keeps simultaneous regenerations (which
   briefly yield rival walks the order below must then thin out) from
   being the common case. *)
let watch_timeout ~self ~n =
  let n_f = float_of_int n in
  8.0 *. n_f *. (1.0 +. log n_f) *. (1.0 +. (0.25 *. float_of_int self /. n_f))

let arm_watch (ctx : msg Node_intf.ctx) =
  ctx.cancel_timers ~key:timer_watch;
  ctx.set_timer ~delay:(watch_timeout ~self:ctx.self ~n:ctx.n) ~key:timer_watch

let serve_all (ctx : msg Node_intf.ctx) =
  while ctx.pending () > 0 do
    ctx.serve ()
  done

(* Uniform over the other n-1 nodes. *)
let random_peer (ctx : msg Node_intf.ctx) =
  let r = Rng.int ctx.rng (ctx.n - 1) in
  if r >= ctx.self then r + 1 else r

let hold_and_pass (ctx : msg Node_intf.ctx) ~gen ~serial =
  ctx.possession ();
  serve_all ctx;
  arm_watch ctx;
  let serial = serial + 1 in
  ctx.send ~dst:(random_peer ctx) (Token { gen; serial });
  { last_gen = gen; last_serial = serial }

let init (ctx : msg Node_intf.ctx) =
  arm_watch ctx;
  if ctx.self = 0 then hold_and_pass ctx ~gen:1 ~serial:0
  else { last_gen = 0; last_serial = 0 }

let on_message (ctx : msg Node_intf.ctx) state ~src:_ (Token { gen; serial }) =
  (* Strict (gen, serial) dominance: a network duplicate carries the
     serial this node already recorded when it forwarded the first copy,
     and a walk from a dead generation is below the regenerated one —
     both are destroyed here, which is the whole self-stabilization
     argument (plus the timeout below as the lost-token backstop). *)
  if gen > state.last_gen || (gen = state.last_gen && serial > state.last_serial)
  then hold_and_pass ctx ~gen ~serial
  else begin
    ctx.note (fun () ->
        Printf.sprintf "destroy stale walk#%d.%d (have %d.%d)" gen serial
          state.last_gen state.last_serial);
    state
  end

let on_timer (ctx : msg Node_intf.ctx) state ~key =
  if key <> timer_watch then state
  else begin
    (* No sighting for a whole watch window: assume the walk died and
       start a successor generation. A rival regeneration resolves by
       the dominance order above. *)
    ctx.note (fun () ->
        Printf.sprintf "regenerate walk gen %d" (state.last_gen + 1));
    hold_and_pass ctx ~gen:(state.last_gen + 1) ~serial:state.last_serial
  end

(* Circulation alone finds every request; a ready node does nothing. *)
let on_request _ctx state = state

let protocol : (module Node_intf.PROTOCOL) =
  (module struct
    type nonrec state = state
    type nonrec msg = msg

    let name = name
    let describe = describe
    let classify = classify
    let label = label
    let init = init
    let on_message = on_message
    let on_timer = on_timer
    let on_request = on_request
  end)
