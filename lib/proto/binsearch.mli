(** System BinarySearch, executable (paper §4.2, Figure 7).

    The token circulates around the ring exactly as in {!Ring}. When a
    node becomes ready it launches a "gimme" search: a cheap message sent
    halfway across the ring carrying the requester's view of the token's
    circulation. Every node the search visits lays a local {e trap} for
    the requester and forwards the search half the remaining span,
    clockwise or counter-clockwise depending on whether the token passed
    it before or after passing the requester — the paper's [⊂_C] history
    comparison, realized here by the hop-stamp order (§4.4's round-counter
    bounding of histories: the stamp a node recorded at the token's last
    rotation visit {e is} its history projected onto circulation events).

    A token holder whose trap queue is non-empty {e lends} the token to
    the trapped requester (the paper's decorated ŷ); the borrower serves
    its requests and returns it; rotation resumes where it was
    intercepted. Traps are served in FIFO order, as Theorem 2 requires.

    Responsiveness is O(log N) under all loads (Theorem 2); each search is
    forwarded O(log N) times (Lemma 6); fairness is log N (Theorem 3). *)

open Tr_sim

type msg =
  | Token of { stamp : int }  (** Rotation hop (expensive channel). *)
  | Loan of { stamp : int }  (** Token lent to a trapped requester. *)
  | Return of { stamp : int }  (** Loan coming back to the lender. *)
  | Gimme of { requester : int; span : int; stamp : int }
      (** Search: remaining span and the requester's last-visit stamp
          (cheap channel). *)

type state

val make :
  ?throttle:bool ->
  ?name:string ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** [throttle] (default [false]) enables §4.4's single-outstanding-request
    optimization: a node with a search already in flight does not launch
    another on a new local request. The package keeps [state] visible so
    tests can use the introspection functions below. *)

val protocol : (module Node_intf.PROTOCOL)
(** The base protocol, [make ()], named ["binsearch"]. *)

val protocol_throttled : (module Node_intf.PROTOCOL)
(** [make ~throttle:true ()], named ["binsearch-throttle"]. *)

(** {1 Introspection (tests)} *)

val trap_queue : state -> int list
(** Trapped requesters in FIFO order. *)

val last_stamp : state -> int
val is_searching : state -> bool
