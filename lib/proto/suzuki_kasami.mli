(** Suzuki–Kasami broadcast-based token algorithm — the third classic
    comparator (§1.1's token-based mutual-exclusion family).

    Where the paper's ring circulates the token speculatively and
    BinarySearch chases it with O(log N) hints, Suzuki–Kasami broadcasts
    every request to all N−1 nodes and moves the token {e only} on
    demand:

    - each node tracks [rn.(i)], the highest request number it has heard
      from node [i]; a request broadcasts [Request (self, rn)] (cheap);
    - the token carries [ln.(i)], the request number last {e granted} to
      node [i], plus a FIFO queue of waiting nodes;
    - after using the token, the holder appends every node with
      [rn.(j) = ln.(j) + 1] to the token queue and sends the token to the
      queue head — or parks it if nobody wants it.

    Cost profile: N−1 cheap messages per request, at most one expensive
    token transfer per grant, and zero traffic when idle — the opposite
    trade to the paper's two-tier scheme, which spends idle token hops
    (ring) or per-request O(log N) hints (binsearch) to keep requests
    cheap. The OPT-MSG/ADAPT benches show all three profiles side by
    side. *)

open Tr_sim

type msg =
  | Request of { requester : int; seq : int }  (** Broadcast (cheap). *)
  | Token of { ln : int array; queue : int list }

type state

val protocol : (module Node_intf.PROTOCOL)

val protocol_t :
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Typed handle (codec-derivation hook): lets the wire layer pair the
    protocol with its message codec without losing the [msg] equality. *)


(** {1 Introspection} *)

val has_token : state -> bool
val request_number : state -> of_node:int -> int
(** This node's view of [of_node]'s latest request number. *)

val token_queue : state -> int list option
(** The waiting queue carried by the token, when this node holds it. *)
