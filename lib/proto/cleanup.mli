(** Trap garbage collection (§4.4).

    The delegated search leaves O(log N) traps per request strewn around
    the ring; once the request is served they are garbage and cause
    useless token loans. The paper sketches two collectors, both
    implemented here over the BinarySearch base:

    {b Token-rotation cleanup} ([protocol_rotation]). Requests carry a
    per-requester sequence number; the token carries a vector of the
    highest sequence number it knows to be satisfied for each node
    (refreshed at every visit and by every loan return). As the token
    rotates, each holder discards traps whose (requester, seq) the vector
    already covers.

    {b Inverse-token cleanup} ([protocol_inverse]). Search messages record
    their trail; when a trapped holder serves a request, the loan retraces
    the trail backwards, erasing that request's traps en route to the
    requester — trading a few extra loan hops for eager cleanup. *)

open Tr_sim

type rotation_msg =
  | RToken of { stamp : int; satisfied : int array }
  | RLoan of { stamp : int; satisfied : int array }
  | RReturn of { stamp : int; satisfied : int array }
  | RGimme of { requester : int; seq : int; span : int; stamp : int }

type inverse_msg =
  | IToken of { stamp : int }
  | ILoanVia of { stamp : int; requester : int; trail : int list }
      (** Token travelling backwards along the search trail toward
          [requester], erasing traps at every hop. *)
  | IReturn of { stamp : int }
  | IGimme of { requester : int; span : int; stamp : int; trail : int list }

val protocol_rotation : (module Node_intf.PROTOCOL)
val protocol_inverse : (module Node_intf.PROTOCOL)

(** Typed handles (codec-derivation hooks) for the wire layer. *)

type rotation_state
type inverse_state

val protocol_rotation_t :
  (module Node_intf.PROTOCOL
     with type state = rotation_state
      and type msg = rotation_msg)

val protocol_inverse_t :
  (module Node_intf.PROTOCOL
     with type state = inverse_state
      and type msg = inverse_msg)
