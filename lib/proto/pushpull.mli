(** Push–pull duality (§1, end of §4.2): "when a node requires the token,
    it can either actively try to find the token or the owner of a token
    can actively try to find which node requires it... it is possible to
    combine both schemes."

    In this combined protocol the token {e parks} at its holder when the
    system is idle instead of circulating:

    - {b Push}: a parked holder periodically sends a cheap probe wave
      around the ring; the first ready node the wave reaches answers
      [Want], and the holder lends it the token directly.
    - {b Pull}: a ready node still launches a binary gimme search; if it
      reaches the holder (or a node the loan passes through), the trap is
      served immediately.

    The trade: idle expensive-message cost drops to zero (the token does
    not move at all without demand) at the price of push-wave latency —
    up to O(N) cheap hops — when the pull misses. This is the qualitative
    contrast the paper draws between shepherding with cheap messages and
    moving the expensive token. *)

open Tr_sim

type msg =
  | Token of { stamp : int }
  | Loan of { stamp : int }
  | Return of { stamp : int }
  | Gimme of { requester : int; span : int; stamp : int }
  | Probe of { holder : int; ttl : int }  (** Push wave (cheap). *)
  | Want of { requester : int }  (** Reply to a probe (cheap). *)

type state

val make :
  ?probe_interval:float ->
  unit ->
  (module Node_intf.PROTOCOL with type state = state and type msg = msg)
(** Default [probe_interval] is 4.0 time units between push waves. The
    package keeps [state] visible for introspection. *)

val protocol : (module Node_intf.PROTOCOL)
val is_parked : state -> bool
