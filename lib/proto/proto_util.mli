(** Small helpers shared by the protocol implementations. *)

open Tr_sim

val serve_all : 'msg Node_intf.ctx -> unit
(** Serve every outstanding request at this node (the holder broadcasts
    all of its queued data while it has the token). *)

(** Immutable FIFO of trapped requesters with set-semantics insertion:
    re-trapping an already-trapped requester is a no-op, matching the
    specification's duplicate-free trap sets. *)
module Traps : sig
  type t

  val empty : t
  val is_empty : t -> bool
  val mem : t -> int -> bool
  val push : t -> int -> t
  (** Appends unless already present. *)

  val pop : t -> (int * t) option
  (** Oldest requester first (Theorem 2's FIFO discipline). *)

  val to_list : t -> int list
  val size : t -> int
end
